module Jsonl = Repro_obs.Jsonl

(* ---- Robust summary over repeated seeded runs ---- *)

type summary = { median : float; iqr : float }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n = 1 then sorted.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize samples =
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  {
    median = percentile sorted 0.5;
    iqr = percentile sorted 0.75 -. percentile sorted 0.25;
  }

(* ---- Report schema ---- *)

type entry = {
  name : string;  (* e.g. "modular/n3/latency_ms" *)
  median : float;
  iqr : float;
  unit_ : string;
  higher_is_better : bool;
}

type breakdown_row = {
  stack : string;
  label : string;  (* "wire" or "<layer>/<phase>" *)
  mean_ms : float;  (* per delivery *)
  share : float;
}

type t = {
  meta : (string * string) list;
  entries : entry list;
  breakdown : breakdown_row list;
}

let entry ~name ~unit_ ~higher_is_better samples =
  let s = summarize samples in
  { name; median = s.median; iqr = s.iqr; unit_; higher_is_better }

(* ---- JSONL encoding ---- *)

let meta_line meta =
  Jsonl.to_string
    (Jsonl.Obj
       (("type", Jsonl.String "bench_meta")
       :: List.map (fun (k, v) -> (k, Jsonl.String v)) meta))

let entry_line e =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("type", Jsonl.String "bench_entry");
         ("name", Jsonl.String e.name);
         ("median", Jsonl.Float e.median);
         ("iqr", Jsonl.Float e.iqr);
         ("unit", Jsonl.String e.unit_);
         ("higher_is_better", Jsonl.Bool e.higher_is_better);
       ])

let breakdown_line (b : breakdown_row) =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("type", Jsonl.String "bench_breakdown");
         ("stack", Jsonl.String b.stack);
         ("label", Jsonl.String b.label);
         ("mean_ms", Jsonl.Float b.mean_ms);
         ("share", Jsonl.Float b.share);
       ])

let to_lines t =
  (meta_line t.meta :: List.map entry_line t.entries)
  @ List.map breakdown_line t.breakdown

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines t))

(* ---- Decoding ---- *)

let decode_entry json =
  match
    ( Jsonl.to_string_opt (Jsonl.member "name" json),
      Jsonl.to_float_opt (Jsonl.member "median" json),
      Jsonl.to_float_opt (Jsonl.member "iqr" json),
      Jsonl.to_string_opt (Jsonl.member "unit" json),
      Jsonl.member "higher_is_better" json )
  with
  | Some name, Some median, Some iqr, Some unit_, Some (Jsonl.Bool hib) ->
    Some { name; median; iqr; unit_; higher_is_better = hib }
  | _ -> None

let decode_breakdown json =
  match
    ( Jsonl.to_string_opt (Jsonl.member "stack" json),
      Jsonl.to_string_opt (Jsonl.member "label" json),
      Jsonl.to_float_opt (Jsonl.member "mean_ms" json),
      Jsonl.to_float_opt (Jsonl.member "share" json) )
  with
  | Some stack, Some label, Some mean_ms, Some share ->
    Some { stack; label; mean_ms; share }
  | _ -> None

let of_lines lines =
  let meta = ref [] and entries = ref [] and breakdown = ref [] in
  let bad = ref None in
  List.iter
    (fun json ->
      if !bad = None then
        match Jsonl.to_string_opt (Jsonl.member "type" json) with
        | Some "bench_meta" ->
          (match json with
          | Jsonl.Obj fields ->
            meta :=
              !meta
              @ List.filter_map
                  (fun (k, v) ->
                    match v with
                    | Jsonl.String s when k <> "type" -> Some (k, s)
                    | _ -> None)
                  fields
          | _ -> ())
        | Some "bench_entry" -> (
          match decode_entry json with
          | Some e -> entries := e :: !entries
          | None -> bad := Some "malformed bench_entry line")
        | Some "bench_breakdown" -> (
          match decode_breakdown json with
          | Some b -> breakdown := b :: !breakdown
          | None -> bad := Some "malformed bench_breakdown line")
        | Some _ | None -> () (* foreign lines are allowed, and ignored *))
    lines;
  match !bad with
  | Some e -> Error e
  | None ->
    Ok { meta = !meta; entries = List.rev !entries; breakdown = List.rev !breakdown }

let read_file path =
  match
    In_channel.with_open_text path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | contents -> (
    match Jsonl.parse_lines contents with
    | Error e -> Error e
    | Ok lines -> of_lines lines)

(* ---- Comparison ---- *)

type verdict = {
  entry_name : string;
  old_median : float;
  new_median : float;
  delta_pct : float;  (* signed; positive = metric value went up *)
  regression : bool;
}

(* A change only counts as a regression when it is (a) outside the noise
   band of either report — worse by more than the larger of the two IQRs —
   and (b) practically meaningful, i.e. more than [rel_threshold] relative.
   Both gates matter: IQR alone flags microscopic shifts on very stable
   metrics; a percentage alone flags noise on jittery ones. *)
let rel_threshold = 0.03

let verdict (old_e : entry) (new_e : entry) =
  let worse_by =
    if old_e.higher_is_better then old_e.median -. new_e.median
    else new_e.median -. old_e.median
  in
  let noise = Float.max old_e.iqr new_e.iqr in
  let delta_pct =
    if old_e.median = 0.0 then 0.0
    else 100.0 *. (new_e.median -. old_e.median) /. Float.abs old_e.median
  in
  let rel =
    if old_e.median = 0.0 then 0.0 else worse_by /. Float.abs old_e.median
  in
  {
    entry_name = old_e.name;
    old_median = old_e.median;
    new_median = new_e.median;
    delta_pct;
    regression = worse_by > noise && rel > rel_threshold;
  }

let compare_reports ~old_report ~new_report =
  List.filter_map
    (fun (old_e : entry) ->
      match
        List.find_opt (fun (e : entry) -> e.name = old_e.name) new_report.entries
      with
      | Some new_e -> Some (verdict old_e new_e)
      | None -> None)
    old_report.entries

let regressions verdicts = List.filter (fun v -> v.regression) verdicts

let pp_verdict ppf v =
  Fmt.pf ppf "%-34s %12.4f -> %12.4f  %+6.1f%%  %s" v.entry_name v.old_median
    v.new_median v.delta_pct
    (if v.regression then "REGRESSION" else "ok")
