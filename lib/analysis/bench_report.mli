(** Machine-readable benchmark reports and regression comparison.

    [bench/main.exe --json-out FILE] summarizes repeated seeded runs as a
    JSONL report — median and interquartile range per (stack, metric), plus
    the per-stack critical-path breakdown — and [repro compare OLD NEW]
    replays the comparison, flagging statistically meaningful regressions
    with a nonzero exit. Medians and IQRs (not means and CIs) because a
    handful of repeats is all a CI run affords, and one outlier seed must
    not move the verdict. *)

type summary = { median : float; iqr : float }

val summarize : float list -> summary
(** Median and interquartile range (linear interpolation between order
    statistics). [nan]s for an empty list. *)

type entry = {
  name : string;  (** e.g. ["modular/n3/latency_ms"] *)
  median : float;
  iqr : float;
  unit_ : string;  (** ["ms"], ["msgs/s"], … (reporting only) *)
  higher_is_better : bool;  (** direction of improvement for this metric *)
}

type breakdown_row = {
  stack : string;
  label : string;  (** ["wire"] or ["<layer>/<phase>"] *)
  mean_ms : float;  (** per delivery *)
  share : float;  (** of end-to-end latency *)
}

type t = {
  meta : (string * string) list;  (** free-form provenance, e.g. repeats *)
  entries : entry list;
  breakdown : breakdown_row list;
}

val entry :
  name:string -> unit_:string -> higher_is_better:bool -> float list -> entry
(** Summarize one metric's per-run samples into an entry. *)

val to_lines : t -> string list
(** JSONL rendering: one [bench_meta] line, then [bench_entry] lines, then
    [bench_breakdown] lines. *)

val of_lines : Repro_obs.Jsonl.json list -> (t, string) result
(** Rebuild a report from parsed JSONL. Lines of other types are ignored,
    so a report can share a file with metrics or trace lines. *)

val write_file : string -> t -> unit

val read_file : string -> (t, string) result
(** Parse [path]; [Error] on an unreadable file or malformed line. *)

type verdict = {
  entry_name : string;
  old_median : float;
  new_median : float;
  delta_pct : float;  (** signed; positive = the metric's value went up *)
  regression : bool;
}

val compare_reports : old_report:t -> new_report:t -> verdict list
(** One verdict per entry present in both reports (matched by name, in the
    old report's order). An entry regressed when it moved in the worse
    direction by more than the larger of the two IQRs AND by more than 3%
    relative — both gates, so stable metrics don't alarm on microscopic
    shifts and noisy ones don't alarm on jitter. *)

val regressions : verdict list -> verdict list
(** The verdicts with [regression = true]. *)

val pp_verdict : verdict Fmt.t
(** One aligned line: name, old -> new, signed %, ok/REGRESSION. *)
