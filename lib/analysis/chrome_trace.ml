(* Chrome/Perfetto trace-event export.

   Converts an Obs trace JSONL file (the [--trace-out] stream: [trace]
   and [span] lines) into the Trace Event Format that [about:tracing]
   and [ui.perfetto.dev] load: one process per simulated node, one
   thread per protocol layer, causal spans as complete ("X") events.

   A span records the *instant* its step happened plus a link to the
   causing span; the duration shown is the gap from cause to effect —
   parent.at → span.at — which is exactly the hop the critical-path
   analysis attributes. Spans without a recorded parent (roots) and flat
   trace events become instant ("i") events. Timestamps are microseconds
   as the format requires; virtual nanoseconds divide exactly. *)

module Jsonl = Repro_obs.Jsonl
module Span = Repro_obs.Span

type event = {
  e_name : string;
  e_cat : string;
  e_ph : char; (* 'X' complete | 'i' instant *)
  e_ts_us : float;
  e_dur_us : float; (* meaningful for 'X' only *)
  e_pid : int; (* 1-based process *)
  e_tid : int; (* layer index *)
  e_args : (string * Jsonl.json) list;
}

let layer_tid name =
  let rec go i = function
    | [] -> List.length Span.all_layers (* unknown layer: one shared tail tid *)
    | l :: rest -> if String.equal (Span.layer_name l) name then i else go (i + 1) rest
  in
  go 0 Span.all_layers

let us_of_ns ns = float_of_int ns /. 1e3

let event_of_line j =
  let str k = Jsonl.to_string_opt (Jsonl.member k j) in
  let int k = Jsonl.to_int_opt (Jsonl.member k j) in
  match (str "type", int "at_ns", int "pid", str "layer", str "phase") with
  | Some "trace", Some at_ns, Some pid, Some layer, Some phase ->
    Some
      {
        e_name = phase;
        e_cat = layer;
        e_ph = 'i';
        e_ts_us = us_of_ns at_ns;
        e_dur_us = 0.0;
        e_pid = pid + 1;
        e_tid = layer_tid layer;
        e_args =
          (match str "detail" with
          | Some d when d <> "" -> [ ("detail", Jsonl.String d) ]
          | _ -> []);
      }
  | Some "span", Some at_ns, Some pid, Some layer, Some phase ->
    let sid = Option.value ~default:0 (int "sid") in
    let parent = Option.value ~default:0 (int "parent") in
    let args =
      [ ("sid", Jsonl.Int sid); ("parent", Jsonl.Int parent) ]
      @
      match str "detail" with
      | Some d when d <> "" -> [ ("detail", Jsonl.String d) ]
      | _ -> []
    in
    Some
      {
        e_name = phase;
        e_cat = layer;
        e_ph = 'i';
        e_ts_us = us_of_ns at_ns;
        e_dur_us = 0.0;
        e_pid = pid + 1;
        e_tid = layer_tid layer;
        e_args = args;
      }
  | _ -> None

(* Spans whose parent is in the trace become 'X' complete events spanning
   cause → effect; the instant fallback stays for roots. *)
let link_spans lines events =
  let at_of = Hashtbl.create 1024 in
  List.iter
    (fun j ->
      match
        ( Jsonl.to_string_opt (Jsonl.member "type" j),
          Jsonl.to_int_opt (Jsonl.member "sid" j),
          Jsonl.to_int_opt (Jsonl.member "at_ns" j) )
      with
      | Some "span", Some sid, Some at -> Hashtbl.replace at_of sid at
      | _ -> ())
    lines;
  List.map2
    (fun j e ->
      match
        ( Jsonl.to_string_opt (Jsonl.member "type" j),
          Jsonl.to_int_opt (Jsonl.member "parent" j),
          Jsonl.to_int_opt (Jsonl.member "at_ns" j) )
      with
      | Some "span", Some parent, Some at when parent <> 0 -> (
        match Hashtbl.find_opt at_of parent with
        | Some parent_at when parent_at <= at ->
          { e with e_ph = 'X'; e_ts_us = us_of_ns parent_at; e_dur_us = us_of_ns (at - parent_at) }
        | _ -> e)
      | _ -> e)
    lines events

let json_of_event e =
  let base =
    [
      ("name", Jsonl.String e.e_name);
      ("cat", Jsonl.String e.e_cat);
      ("ph", Jsonl.String (String.make 1 e.e_ph));
      ("ts", Jsonl.Float e.e_ts_us);
      ("pid", Jsonl.Int e.e_pid);
      ("tid", Jsonl.Int e.e_tid);
    ]
  in
  let dur = if e.e_ph = 'X' then [ ("dur", Jsonl.Float e.e_dur_us) ] else [] in
  let scope = if e.e_ph = 'i' then [ ("s", Jsonl.String "t") ] else [] in
  let args = if e.e_args = [] then [] else [ ("args", Jsonl.Obj e.e_args) ] in
  Jsonl.Obj (base @ dur @ scope @ args)

(* Name the pid/tid rows: process p<i>, one thread per layer. *)
let metadata_events pids =
  List.concat_map
    (fun pid ->
      Jsonl.Obj
        [
          ("name", Jsonl.String "process_name");
          ("ph", Jsonl.String "M");
          ("pid", Jsonl.Int pid);
          ("args", Jsonl.Obj [ ("name", Jsonl.String (Printf.sprintf "p%d" pid)) ]);
        ]
      :: List.mapi
           (fun tid layer ->
             Jsonl.Obj
               [
                 ("name", Jsonl.String "thread_name");
                 ("ph", Jsonl.String "M");
                 ("pid", Jsonl.Int pid);
                 ("tid", Jsonl.Int tid);
                 ( "args",
                   Jsonl.Obj [ ("name", Jsonl.String (Span.layer_name layer)) ] );
               ])
           Span.all_layers)
    pids

let export lines =
  let events = List.filter_map (fun j -> Option.map (fun e -> (j, e)) (event_of_line j)) lines in
  let lines_kept = List.map fst events and events = List.map snd events in
  let events = link_spans lines_kept events in
  let pids =
    List.sort_uniq Int.compare (List.map (fun e -> e.e_pid) events)
  in
  Jsonl.Obj
    [
      ( "traceEvents",
        Jsonl.List (metadata_events pids @ List.map json_of_event events) );
      ("displayTimeUnit", Jsonl.String "ms");
    ]

let export_string lines = Jsonl.to_string (export lines)
