(** Critical-path reconstruction over a causal span trace.

    Every application delivery (an [`App]/"adeliver" span) terminates a
    single-parent chain that leads back, across module and process
    boundaries, to the root span of the message's lifetime (normally the
    App/"publish" at the sender). Each hop of the chain is a latency
    segment: time spent on the wire when the endpoints are on different
    processes, or time spent reaching a protocol step when they are on the
    same process. Because segment durations are differences of consecutive
    span timestamps, they telescope — per path, the segments sum exactly to
    the end-to-end latency. Aggregated over a run, the breakdown attributes
    every nanosecond of delivery latency to a layer/phase or to the wire,
    which is how the §4 optimization effects of the paper (piggybacked
    decisions, coordinator-directed acks, cheap decision diffusion) show up
    as measured time rather than message counts. *)

module Span = Repro_obs.Span

type segment = {
  label : string;  (** ["wire"] or ["<layer>/<phase>"] of the hop's child *)
  layer : string;  (** ["wire"] or the child span's layer name *)
  ns : int;  (** duration of the hop *)
}

type path = {
  delivery : Span.t;  (** the [`App]/"adeliver" terminus *)
  root : Span.t;  (** origin of the chain (normally App/"publish") *)
  segments : segment list;  (** oldest hop first *)
  total_ns : int;  (** [delivery.at - root.at]; equals the segment sum *)
}

val wire_label : string
(** ["wire"] — the label given to cross-process hops. *)

val is_delivery : Span.t -> bool
(** Recognises the [`App]/"adeliver" spans that terminate paths. *)

val paths : ?pid:int -> Span.t list -> path list
(** All critical paths in a trace, one per application delivery, in trace
    order. [?pid] restricts to deliveries at one process (useful because
    every delivery occurs at [n] processes and would otherwise be counted
    [n] times). *)

type breakdown_row = {
  row_label : string;
  row_layer : string;
  hops : int;  (** hops bearing this label, across all paths *)
  total_ms : float;
  mean_ms : float;  (** per delivery *)
  share : float;  (** fraction of summed end-to-end time *)
}

type breakdown = {
  deliveries : int;
  end_to_end_ms : float;  (** summed over deliveries *)
  mean_end_to_end_ms : float;
  rows : breakdown_row list;  (** largest total first *)
}

val breakdown : path list -> breakdown
(** Aggregate segments by label. The row totals sum to [end_to_end_ms]
    exactly (same telescoping argument as per-path). *)

val of_spans : ?pid:int -> Span.t list -> breakdown
(** [breakdown (paths ?pid spans)]. *)

val by_layer : breakdown -> (string * float) list
(** Collapse rows to (layer, total ms), ["wire"] included, largest first. *)

val pp_breakdown : breakdown Fmt.t
(** Human-readable table: one row per segment label. *)
