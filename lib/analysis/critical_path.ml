open Repro_sim
module Span = Repro_obs.Span

(* One hop of a causal chain: the time between a span and its parent,
   attributed to what the child represents. A hop whose endpoints sit on
   different processes is wire time (transmit -> receive of one message
   copy: NIC serialisation, propagation, jitter, FIFO queueing); a
   same-process hop is the receive-side CPU and queueing spent reaching
   that protocol step. *)
type segment = { label : string; layer : string; ns : int }

type path = {
  delivery : Span.t;
  root : Span.t;
  segments : segment list;  (* oldest hop first *)
  total_ns : int;
}

let wire_label = "wire"

let hop_label (child : Span.t) ~(parent : Span.t) =
  if child.Span.pid <> parent.Span.pid then (wire_label, wire_label)
  else
    let layer = Span.layer_name child.Span.layer in
    (layer ^ "/" ^ child.Span.phase, layer)

(* The chain telescopes: segment durations are differences of consecutive
   span timestamps, so their sum is exactly [delivery.at - root.at]. *)
let path_of_chain chain =
  match chain with
  | [] -> None
  | root :: _ ->
    let delivery = List.nth chain (List.length chain - 1) in
    let rec hops acc = function
      | parent :: (child :: _ as rest) ->
        let label, layer = hop_label child ~parent in
        let ns = Time.span_to_ns (Time.diff child.Span.at parent.Span.at) in
        hops ({ label; layer; ns } :: acc) rest
      | _ -> List.rev acc
    in
    Some
      {
        delivery;
        root;
        segments = hops [] chain;
        total_ns = Time.span_to_ns (Time.diff delivery.Span.at root.Span.at);
      }

let is_delivery (s : Span.t) = s.Span.layer = `App && s.Span.phase = "adeliver"

let paths ?pid spans =
  let tbl = Span.index spans in
  List.filter_map
    (fun s ->
      if is_delivery s && (match pid with None -> true | Some p -> s.Span.pid = p)
      then path_of_chain (Span.chain tbl s)
      else None)
    spans

(* ---- Aggregation ---- *)

type breakdown_row = {
  row_label : string;
  row_layer : string;
  hops : int;  (* total hops with this label across all paths *)
  total_ms : float;
  mean_ms : float;  (* per delivery: total / #paths *)
  share : float;  (* of the summed end-to-end time *)
}

type breakdown = {
  deliveries : int;
  end_to_end_ms : float;  (* summed over deliveries *)
  mean_end_to_end_ms : float;
  rows : breakdown_row list;  (* sorted by total time, largest first *)
}

let ns_to_ms ns = float_of_int ns /. 1e6

let breakdown paths =
  let tbl = Hashtbl.create 32 in
  let total_ns = ref 0 in
  List.iter
    (fun p ->
      total_ns := !total_ns + p.total_ns;
      List.iter
        (fun seg ->
          let hops, ns =
            match Hashtbl.find_opt tbl seg.label with
            | Some (h, n, _) -> (h, n)
            | None -> (0, 0)
          in
          Hashtbl.replace tbl seg.label (hops + 1, ns + seg.ns, seg.layer))
        p.segments)
    paths;
  let deliveries = List.length paths in
  let rows =
    Hashtbl.fold
      (fun label (hops, ns, layer) acc ->
        {
          row_label = label;
          row_layer = layer;
          hops;
          total_ms = ns_to_ms ns;
          mean_ms = (if deliveries = 0 then 0.0 else ns_to_ms ns /. float_of_int deliveries);
          share = (if !total_ns = 0 then 0.0 else float_of_int ns /. float_of_int !total_ns);
        }
        :: acc)
      tbl []
    |> List.sort (fun a b ->
           match compare b.total_ms a.total_ms with
           | 0 -> compare a.row_label b.row_label
           | c -> c)
  in
  {
    deliveries;
    end_to_end_ms = ns_to_ms !total_ns;
    mean_end_to_end_ms =
      (if deliveries = 0 then 0.0 else ns_to_ms !total_ns /. float_of_int deliveries);
    rows;
  }

let by_layer b =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let ms = match Hashtbl.find_opt tbl r.row_layer with Some m -> m | None -> 0.0 in
      Hashtbl.replace tbl r.row_layer (ms +. r.total_ms))
    b.rows;
  Hashtbl.fold (fun layer ms acc -> (layer, ms) :: acc) tbl []
  (* Tie-break equal totals by layer name so the JSONL/report order is a
     function of the data, not of the table's hash order. *)
  |> List.sort (fun (la, a) (lb, b) ->
         match compare b a with 0 -> compare la lb | c -> c)

let of_spans ?pid spans = breakdown (paths ?pid spans)

let pp_breakdown ppf b =
  Fmt.pf ppf "%d deliveries, mean end-to-end %.3f ms@." b.deliveries
    b.mean_end_to_end_ms;
  Fmt.pf ppf "%-22s %8s %10s %10s %7s@." "segment" "hops" "total ms" "ms/deliv"
    "share";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-22s %8d %10.3f %10.4f %6.1f%%@." r.row_label r.hops r.total_ms
        r.mean_ms (100.0 *. r.share))
    b.rows
