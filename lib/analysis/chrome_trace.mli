(** Chrome/Perfetto trace-event export of an Obs trace JSONL stream.

    [repro trace-export --chrome-out] converts the [--trace-out] file
    (lines of type [trace] and [span]) into the Trace Event Format that
    [about:tracing] and Perfetto load: pid = simulated process (1-based),
    tid = protocol layer, causal spans as complete (["X"]) events whose
    extent runs from the causing span's instant to their own — the hop
    the critical-path analysis attributes — and roots/flat trace events
    as instants (["i"]).

    {2 Determinism obligations}

    - Output order is input line order plus metadata rows sorted by pid;
      no hash iteration reaches the output. *)

val export : Repro_obs.Jsonl.json list -> Repro_obs.Jsonl.json
(** Parsed JSONL lines (unknown line types are skipped) to one Chrome
    trace JSON object. *)

val export_string : Repro_obs.Jsonl.json list -> string
