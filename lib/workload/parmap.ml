module Obs = Repro_obs.Obs
module Pool = Repro_parallel.Pool

let map ?(jobs = 1) ~obs ?(collect = fun _ _ -> ()) f items =
  if jobs <= 1 then
    (* The sequential path shares [obs] directly — byte-for-byte the
       pre-parallelism behavior, which the [jobs > 1] path is contractually
       required to reproduce. *)
    Pool.map ~jobs:1 ~collect (fun x -> f ~obs x) items
  else
    Pool.map ~jobs
      ~collect:(fun i (sink, y) ->
        Obs.absorb obs sink;
        collect i y)
      (fun x ->
        let sink = Obs.create_like obs in
        let y = f ~obs:sink x in
        (sink, y))
      items
    |> List.map snd
