(** Deterministic parallel map over independent simulation runs.

    A thin wrapper around {!Repro_parallel.Pool} that adds the
    observability discipline every parallel loop in this repo needs: with
    [jobs <= 1] the tasks run on the exact sequential code path, sharing
    [obs] directly; with [jobs > 1] each task gets a private sibling sink
    ([Obs.create_like obs]) and the collector absorbs the sinks back into
    [obs] in task order ({!Repro_obs.Obs.absorb}), so the merged metrics,
    trace and spans are byte-identical to what the sequential schedule
    would have recorded.

    Tasks must be independent: each is a closure that only touches its own
    sink and its own simulation state. All shared-state effects belong in
    [collect], which runs in the calling domain, in task order. *)

val map :
  ?jobs:int ->
  obs:Repro_obs.Obs.t ->
  ?collect:(int -> 'b -> unit) ->
  (obs:Repro_obs.Obs.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs ~obs ~collect f items] evaluates [f ~obs:sink item] for
    each item — [sink] is [obs] itself when [jobs <= 1] (default), a
    private sibling otherwise — and returns the results in input order.
    [collect i result] fires in task order after task [i]'s sink has been
    absorbed, so callbacks observe [obs] exactly as the sequential loop
    would have left it at that point. On an exception the completed prefix
    is collected and absorbed, then the exception re-raises. *)
