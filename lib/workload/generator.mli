open Repro_core

(** Symmetric constant-rate workload (§5.1).

    Every process abcasts messages of a fixed size at a constant rate; the
    global rate is the offered load T_offered. Arrivals can be strictly
    periodic (the paper's constant rate, staggered across processes so they
    do not fire in lockstep) or Poisson (for robustness experiments).
    Offers go through the replica's flow control, which blocks them when
    the window is full — the generator keeps offering regardless, exactly
    like the paper's application threads. *)

type t

type arrival = Uniform | Poisson

val start :
  Group.t ->
  offered_load:float ->
  size:int ->
  ?arrival:arrival ->
  unit ->
  t
(** Start offering [offered_load] messages per second globally, spread
    evenly over the n processes, each of [size] bytes. [arrival] defaults
    to [Uniform]. Runs until {!stop}. *)

val stop : t -> unit
(** Stop offering. In-flight protocol activity continues. *)

val offered : t -> int
(** Offers issued so far by this generator. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["workload.generator"]: offered count, stop flag
    and the arrival RNG stream; the self-reposting offer loops ride the
    world blob. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
