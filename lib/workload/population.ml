open Repro_sim

type burst = { flash_at_s : float; flash_dur_s : float; flash_mult : float }

type loop_mode = Open | Closed of { think_s : float }

type profile = {
  clients : int;
  rate_per_client : float;
  tail_alpha : float;
  size : int;
  diurnal_amp : float;
  diurnal_period_s : float;
  flashes : burst list;
  cross_fraction : float;
  loop : loop_mode;
}

let profile ~clients ~rate_per_client ?(tail_alpha = 1.1) ?(size = 1024)
    ?(diurnal_amp = 0.0) ?(diurnal_period_s = 60.0) ?(flashes = [])
    ?(cross_fraction = 0.0) ?(loop = Open) () =
  if clients < 1 then invalid_arg "Population.profile: clients must be >= 1";
  if rate_per_client < 0.0 then
    invalid_arg "Population.profile: negative rate_per_client";
  if diurnal_amp < 0.0 || diurnal_amp > 1.0 then
    invalid_arg "Population.profile: need 0 <= diurnal_amp <= 1";
  if cross_fraction < 0.0 || cross_fraction > 1.0 then
    invalid_arg "Population.profile: need 0 <= cross_fraction <= 1";
  List.iter
    (fun b ->
      if b.flash_mult < 1.0 || b.flash_dur_s < 0.0 then
        invalid_arg "Population.profile: flash needs mult >= 1 and dur >= 0")
    flashes;
  {
    clients;
    rate_per_client;
    tail_alpha;
    size;
    diurnal_amp;
    diurnal_period_s;
    flashes;
    cross_fraction;
    loop;
  }

type arrival = {
  at : Time.t;
  client : int;
  key : int;
  size : int;
  req : int;
  remote : int;
}

type plan = {
  shards : int;
  scripts : arrival array array;
  total : int;
  cross : int;
}

(* A client's routing key is a pure mix of its rank (SplitMix64 finalizer,
   as in {!Repro_shard.Router}): ranks are dense integers, and the router
   hashes keys again, so the double mixing is deliberate — it models
   "client ids are opaque keys", and it makes key collisions between
   distinct ranks as unlikely as for real ids. Masked to a non-negative
   int. *)
let key_of_client rank =
  let z = Int64.add (Int64.of_int rank) 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land max_int

(* Heavy-tailed client sampling: approximate Zipf over ranks via the
   inverse CDF of the continuous power law on [1, clients + 1] — O(1) per
   draw, no tables, so a million-client population costs the same as a
   ten-client one. [tail_alpha <= 0] degenerates to uniform. *)
let sample_client rng p =
  if p.tail_alpha <= 0.0 then Rng.int rng p.clients
  else begin
    let n1 = float_of_int p.clients +. 1.0 in
    let u = 1.0 -. Rng.float rng 1.0 (* (0, 1] *) in
    let x =
      if abs_float (p.tail_alpha -. 1.0) < 1e-9 then exp (u *. log n1)
      else
        let e = 1.0 -. p.tail_alpha in
        (((n1 ** e) -. 1.0) *. u +. 1.0) ** (1.0 /. e)
    in
    let rank = int_of_float x - 1 in
    if rank < 0 then 0 else if rank >= p.clients then p.clients - 1 else rank
  end

(* Arrival-rate modulation at [t_s] seconds: a diurnal sinusoid scaled by
   the product of the active flash-crowd windows. *)
let modulation p t_s =
  let diurnal =
    if p.diurnal_amp = 0.0 then 1.0
    else
      1.0 +. (p.diurnal_amp *. sin (2.0 *. Float.pi *. t_s /. p.diurnal_period_s))
  in
  List.fold_left
    (fun m b ->
      if t_s >= b.flash_at_s && t_s < b.flash_at_s +. b.flash_dur_s then
        m *. b.flash_mult
      else m)
    diurnal p.flashes

let peak_rate p =
  let base = float_of_int p.clients *. p.rate_per_client in
  let flash_mult =
    List.fold_left (fun m b -> m *. b.flash_mult) 1.0 p.flashes
  in
  base *. (1.0 +. p.diurnal_amp) *. flash_mult

let pop_salt = 0x10b07a71095ca1e5

let plan ~seed p ~route ~shards ~horizon_s =
  if shards < 1 then invalid_arg "Population.plan: shards must be >= 1";
  if horizon_s <= 0.0 then invalid_arg "Population.plan: horizon must be > 0";
  let rng = Rng.derive ~seed ~salt:pop_salt in
  let peak = peak_rate p in
  let per_shard = Array.make shards [] in
  let total = ref 0 and cross = ref 0 in
  let emit shard a = per_shard.(shard) <- a :: per_shard.(shard) in
  (* Nonhomogeneous Poisson by thinning (Lewis & Shedler): draw candidate
     instants at the peak rate, keep each with probability
     rate(t) / peak. Every candidate costs exactly one exponential draw
     plus one acceptance draw, so the schedule is a pure function of
     (seed, profile, horizon) independent of [shards] and [route] — the
     offered load does not change when the shard count does. *)
  let t = ref 0.0 in
  if peak > 0.0 then begin
    let mean_gap = 1.0 /. peak in
    let continue = ref true in
    while !continue do
      t := !t +. Rng.exponential rng ~mean:mean_gap;
      if !t >= horizon_s then continue := false
      else if Rng.float rng 1.0 *. peak < float_of_int p.clients *. p.rate_per_client *. modulation p !t
      then begin
        let client = sample_client rng p in
        let key = key_of_client client in
        let home = route ~key in
        let at = Time.of_ns (int_of_float (!t *. 1e9)) in
        let req = !total in
        incr total;
        let is_cross =
          p.cross_fraction > 0.0 && shards > 1
          && Rng.float rng 1.0 < p.cross_fraction
        in
        if is_cross then begin
          (* A cross-shard request touches its home shard and the home
             shard of a second sampled client; both legs are offered at
             the same instant and joined by the caller ([Repro_shard]).
             When both keys land on the same shard the request degrades
             to a single-shard one (still one leg). *)
          let partner = sample_client rng p in
          let pkey = key_of_client partner in
          let there = route ~key:pkey in
          if there = home then
            emit home { at; client; key; size = p.size; req; remote = -1 }
          else begin
            incr cross;
            emit home { at; client; key; size = p.size; req; remote = there };
            emit there
              { at; client = partner; key = pkey; size = p.size; req; remote = home }
          end
        end
        else emit home { at; client; key; size = p.size; req; remote = -1 }
      end
    done
  end;
  {
    shards;
    scripts =
      Array.map (fun l -> Array.of_list (List.rev l)) per_shard;
    total = !total;
    cross = !cross;
  }

(* Closed-loop plans only seed the pipeline: each client in a bounded
   population gets one initial offer, uniformly staggered over the first
   think period (or the horizon, if shorter); every later offer is
   generated in-world by {!Script} when the previous response is
   adelivered at the client's home process plus think time. Cross-shard
   coordination needs the precomputed schedule, so closed-loop plans are
   single-shard-request only. *)
let plan_closed ~seed p ~route ~shards ~think_s ~horizon_s =
  if shards < 1 then invalid_arg "Population.plan_closed: shards must be >= 1";
  let rng = Rng.derive ~seed ~salt:pop_salt in
  let stagger_s = Float.min (Float.max think_s 0.001) horizon_s in
  let all =
    List.init p.clients (fun client ->
        let key = key_of_client client in
        let at_s = Rng.float rng stagger_s in
        (Time.of_ns (int_of_float (at_s *. 1e9)), client, key))
  in
  let per_shard = Array.make shards [] in
  let total = ref 0 in
  List.iter
    (fun (at, client, key) ->
      let home = route ~key in
      let req = !total in
      incr total;
      per_shard.(home) <-
        { at; client; key; size = p.size; req; remote = -1 } :: per_shard.(home))
    all;
  let by_time (a : arrival) (b : arrival) =
    let c = Time.compare a.at b.at in
    if c <> 0 then c else compare a.req b.req
  in
  {
    shards;
    scripts =
      Array.map
        (fun l ->
          let arr = Array.of_list l in
          Array.sort by_time arr;
          arr)
        per_shard;
    total = !total;
    cross = 0;
  }
