open Repro_sim
open Repro_core

type t = {
  group : Group.t;
  arrivals : Population.arrival array;
  n : int;
  mutable cursor : int;
  mutable stopped : bool;
  mutable offered : int;
  (* Per arrival index: the home process it was offered at and its
     per-process offer ordinal. Offers queue FIFO in flow control and are
     admitted (seq-stamped) in offer order, so ordinal [j] at process [p]
     is exactly the record with the [j]-th smallest [seq] among origin-[p]
     latency records — the join [resolve] performs. *)
  offer_pid : int array;
  offer_ord : int array;
  pid_counts : int array;
  (* Closed loop: per-process FIFO of outstanding request sizes, completed
     by origin-[p] adeliveries at [p] in admission order; each completion
     schedules a re-offer after the think time. *)
  think : Time.span option;
  waiting : int Queue.t array;
  mutable fire : unit -> unit;
}

let pid_of_key t key = key mod t.n

let offer t ~pid ~size =
  let ord = t.pid_counts.(pid) in
  t.pid_counts.(pid) <- ord + 1;
  t.offered <- t.offered + 1;
  Group.abcast t.group pid ~size;
  ord

let fire_next t () =
  if not t.stopped then begin
    let a = t.arrivals.(t.cursor) in
    t.cursor <- t.cursor + 1;
    let pid = pid_of_key t a.Population.key in
    let ord = offer t ~pid ~size:a.Population.size in
    let i = t.cursor - 1 in
    t.offer_pid.(i) <- pid;
    t.offer_ord.(i) <- ord;
    if Option.is_some t.think then Queue.push a.Population.size t.waiting.(pid);
    if t.cursor < Array.length t.arrivals then
      Engine.post_at (Group.engine t.group) t.arrivals.(t.cursor).Population.at t.fire
  end

let on_completion t pid (msg : App_msg.t) =
  (* Only the origin's own adelivery completes a request; other processes
     merely apply it. *)
  if
    (not t.stopped)
    && msg.App_msg.id.App_msg.origin = pid
    && not (Queue.is_empty t.waiting.(pid))
  then begin
    let size = Queue.pop t.waiting.(pid) in
    match t.think with
    | None -> ()
    | Some think ->
      Engine.post_after (Group.engine t.group) think (fun () ->
          if not t.stopped then begin
            ignore (offer t ~pid ~size : int);
            Queue.push size t.waiting.(pid)
          end)
  end

let attach group ~arrivals ~loop =
  let n = (Group.params group).Repro_core.Params.n in
  let len = Array.length arrivals in
  let t =
    {
      group;
      arrivals;
      n;
      cursor = 0;
      stopped = false;
      offered = 0;
      offer_pid = Array.make len (-1);
      offer_ord = Array.make len (-1);
      pid_counts = Array.make n 0;
      think =
        (match loop with
        | Population.Open -> None
        | Population.Closed { think_s } ->
          Some (Time.span_ns (int_of_float (think_s *. 1e9))));
      waiting = Array.init n (fun _ -> Queue.create ());
      fire = (fun () -> ());
    }
  in
  t.fire <- (fun () -> fire_next t ());
  if Option.is_some t.think then Group.on_delivery group (on_completion t);
  if len > 0 then
    Engine.post_at (Group.engine group) arrivals.(0).Population.at t.fire;
  t

let stop t = t.stopped <- true
let offered t = t.offered

let resolve t =
  let per_origin = Array.make t.n [] in
  List.iter
    (fun (r : Group.latency_record) ->
      let o = r.Group.id.App_msg.origin in
      per_origin.(o) <- r :: per_origin.(o))
    (Group.latencies t.group);
  let sorted =
    Array.map
      (fun l ->
        let arr = Array.of_list l in
        Array.sort
          (fun (a : Group.latency_record) b ->
            compare a.Group.id.App_msg.seq b.Group.id.App_msg.seq)
          arr;
        arr)
      per_origin
  in
  Array.init (Array.length t.arrivals) (fun i ->
      let pid = t.offer_pid.(i) in
      if pid < 0 then None
      else
        let ord = t.offer_ord.(i) in
        let arr = sorted.(pid) in
        if ord < Array.length arr then
          let r = arr.(ord) in
          Some (r.Group.abcast_at, r.Group.first_delivery)
        else None)
