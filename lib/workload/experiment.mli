open Repro_core

(** One benchmark run: workload + measurement window.

    Reproduces the paper's methodology (§5.1): start the symmetric
    workload, let the system reach a stationary state (warm-up), then
    measure early latency and throughput over a window, reporting means
    with 95% confidence intervals. Also reports the measured per-consensus
    message and byte counts (the quantities of §5.2) and CPU utilization
    (the paper's saturation diagnostic). *)

type config = {
  kind : Replica.kind;
  n : int;
  offered_load : float;  (** msgs/s, global. *)
  size : int;  (** Message payload bytes. *)
  warmup_s : float;  (** Virtual seconds before measurement. *)
  measure_s : float;  (** Virtual seconds measured. *)
  seed : int;
  params : Params.t;  (** Base parameters; [n] and [seed] above override. *)
  fd_mode : Replica.fd_mode;
      (** Failure detection during the run. [`Good_run] (the default)
          reproduces §5.1's good-run benchmarks; fault studies mount a live
          detector (e.g. [`Heartbeat]) so crashes are actually detected. *)
  arrival : Generator.arrival;
      (** Arrival process offered by the workload generator. [Uniform]
          (the default, the paper's constant rate) consumes no randomness,
          so repeated good runs are seed-invariant; [Poisson] draws
          inter-arrival gaps from the seeded RNG, making the seed actually
          perturb the execution — what benchmark repeats want. *)
}

val config :
  kind:Replica.kind ->
  n:int ->
  offered_load:float ->
  size:int ->
  ?warmup_s:float ->
  ?measure_s:float ->
  ?seed:int ->
  ?params:Params.t ->
  ?fd_mode:Replica.fd_mode ->
  ?arrival:Generator.arrival ->
  unit ->
  config
(** Defaults: 2 s warm-up, 8 s measurement, seed 0, {!Params.default},
    [`Good_run] failure detection, [Uniform] arrivals. *)

type result = {
  config : config;
  early_latency_ms : Stats.summary;
      (** Early latency L = (min over processes of adelivery time) - t0, in
          milliseconds, over messages abcast inside the window. *)
  throughput : float;
      (** T = mean over processes of adeliver rate, msgs/s, §5.1. *)
  admitted_rate : float;  (** abcast completions per second. *)
  mean_batch : float;  (** Measured M: messages per consensus instance. *)
  msgs_per_instance : float;
      (** Wire messages per consensus instance (compare §5.2.1). *)
  bytes_per_instance : float;
      (** Wire payload bytes per consensus instance (compare §5.2.2). *)
  cpu_utilization : float;
      (** Mean busy fraction of the n CPUs during the window. *)
  max_nic_utilization : float;
      (** Busy fraction of the most-loaded NIC during the window (the
          coordinator's, in practice) — shows when a configuration becomes
          line-rate-bound. *)
  boundary_crossings_per_msg : float;
      (** Framework events per adelivered message (modularity diagnostic). *)
  events_executed : int;
      (** Simulator events executed over the whole run (warm-up included) —
          a deterministic function of the configuration, and the numerator
          of the bench harness's events-per-second metric. {!run_repeated}
          reports the sum over all repeats. *)
}

val run : ?obs:Repro_obs.Obs.t -> ?on_group:(Group.t -> unit) -> config -> result
(** Execute the run in virtual time and summarize the window. [obs]
    (default: no-op) observes the whole run — see {!Group.create} — and
    additionally receives window-normalized run gauges: [run.instances],
    [run.window_s], [run.mean_batch], [run.throughput],
    [run.msgs_per_instance]. Counters in [obs] are cumulative over the
    whole execution, warm-up included.

    [on_group] is called with the freshly built group before the workload
    starts — the hook fault studies use to install a nemesis schedule
    against the run (timestamps then count from the start of warm-up). *)

val run_raw :
  ?obs:Repro_obs.Obs.t ->
  ?on_group:(Group.t -> unit) ->
  config ->
  float list * result
(** {!run}, also returning the window's raw latency samples (what
    {!run_repeated} pools and the replay recorder reproduces). *)

val run_repeated :
  ?repeats:int ->
  ?jobs:int ->
  ?obs:Repro_obs.Obs.t ->
  ?on_group:(Group.t -> unit) ->
  config ->
  result
(** Run the same configuration [repeats] times (default 3) with seeds
    [seed, seed+1, …] and combine: latency samples are pooled across the
    executions (the paper computes means "over many messages and for
    several executions", §5.1); scalar metrics are averaged. With
    [repeats = 1] this is {!run}. A shared [obs] accumulates counters and
    histograms across all repeats; gauges keep the last run's values.

    [jobs] (default 1) runs the repeats on a {!Parmap} domain pool; the
    combined result and the final state of [obs] are byte-identical to the
    sequential schedule whatever the value of [jobs]. *)

val run_scripted :
  ?obs:Repro_obs.Obs.t ->
  kind:Replica.kind ->
  n:int ->
  ?params:Params.t ->
  ?fd_mode:Replica.fd_mode ->
  ?seed:int ->
  warmup_s:float ->
  measure_s:float ->
  arrivals:Population.arrival array ->
  loop:Population.loop_mode ->
  unit ->
  (Repro_sim.Time.t * Repro_sim.Time.t) option array * float list * result
(** One run driven by a precomputed {!Population} arrival script (via
    {!Script.attach}) instead of the symmetric generator. Returns the
    per-arrival [(abcast_at, first_delivery)] join of {!Script.resolve},
    the raw in-window latency samples (ms — what closed-loop sharded runs
    score by, since in-world re-offers never appear in the plan), and the
    usual window metrics; [result.config.offered_load] is the script's
    realised mean rate over the horizon (informational).
    The sharding layer ({!Repro_shard}) runs one of these per shard; a
    1-shard plan makes it a drop-in, event-identical replacement for the
    single-group path. *)

val kind_name : Replica.kind -> string
(** ["modular"], ["monolithic"] or ["indirect"] — the spelling used in
    metric tags and reports. *)

val pp_result : result Fmt.t
(** One human-readable line: load, latency, throughput, M, CPU. *)

(** {2 Staged runs}

    A run decomposed into its group plus timed milestones, so a driver can
    slice the in-between stretches (the replay recorder slices them at
    snapshot-frame boundaries). Executing the milestones back to back with
    [Engine.run_until] is exactly {!run}: milestones fire outside the
    event loop at clock values the engine reaches anyway, so any slicing
    of the stretches is event-identical. *)

type staged = {
  st_group : Group.t;
  st_generator : Generator.t;
  st_milestones : (Repro_sim.Time.t * (unit -> unit)) list;
      (** Ascending absolute times; run the engine to each time, then call
          the action. *)
  st_result : unit -> float list * result;
      (** Callable once every milestone has executed: the window's raw
          latencies and the summarized result. *)
}

val stage : ?obs:Repro_obs.Obs.t -> ?on_group:(Group.t -> unit) -> config -> staged
