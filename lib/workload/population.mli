open Repro_sim

(** Client-population workload model.

    Replaces the single offered-load knob for scale studies: load is
    expressed as "N clients at X req/s each", with a heavy-tailed
    (approximate Zipf) split of the aggregate rate across client ranks and
    bursty modulation of the aggregate over time (diurnal sinusoid and
    flash-crowd windows). A {!plan} precomputes the arrival schedule as a
    nonhomogeneous Poisson process by thinning and partitions it per shard
    through a routing function — see {!Repro_shard.Router}; this module
    deliberately knows nothing about shards beyond the [route] callback,
    so protocols and the workload layer never depend on the sharding
    layer.

    {2 Determinism obligations}

    - A plan is a pure function of [(seed, profile, horizon)]: the
      candidate/acceptance draw sequence never consults [route] or
      [shards], so re-routing the same population (different shard count)
      re-partitions the {e identical} global arrival schedule.
    - All randomness comes from one {!Repro_sim.Rng.derive}d stream named
      by a module-local salt; no engine stream is perturbed. *)

type burst = {
  flash_at_s : float;  (** Window start, seconds from run start. *)
  flash_dur_s : float;  (** Window length, seconds. *)
  flash_mult : float;  (** Rate multiplier while the window is open, >= 1. *)
}

type loop_mode =
  | Open  (** Precomputed arrivals regardless of response times. *)
  | Closed of { think_s : float }
      (** Each client re-offers [think_s] after its previous request is
          adelivered at its home process (driven in-world by {!Script});
          the plan only seeds one initial offer per client. *)

type profile = {
  clients : int;
  rate_per_client : float;  (** Mean req/s per client (open loop). *)
  tail_alpha : float;
      (** Zipf exponent over client ranks; [<= 0] = uniform. [1.1] is the
          web-workload default. *)
  size : int;  (** Request payload bytes. *)
  diurnal_amp : float;  (** Sinusoid amplitude in [0, 1]; 0 = flat. *)
  diurnal_period_s : float;
  flashes : burst list;
  cross_fraction : float;
      (** Probability a request also touches a second (sampled) client's
          home shard. *)
  loop : loop_mode;
}

val profile :
  clients:int ->
  rate_per_client:float ->
  ?tail_alpha:float ->
  ?size:int ->
  ?diurnal_amp:float ->
  ?diurnal_period_s:float ->
  ?flashes:burst list ->
  ?cross_fraction:float ->
  ?loop:loop_mode ->
  unit ->
  profile
(** Validated constructor. Defaults: [tail_alpha 1.1], [size 1024], flat
    arrivals, no flashes, no cross-shard traffic, open loop. *)

type arrival = {
  at : Time.t;
  client : int;  (** Client rank in [0, clients). *)
  key : int;  (** Routing key (pure mix of the rank), non-negative. *)
  size : int;
  req : int;  (** Request id, unique across the whole plan. *)
  remote : int;
      (** Partner shard of a cross-shard request (the same [req] appears
          in both shards' scripts at the same instant); [-1] for a
          single-shard request. *)
}

type plan = {
  shards : int;
  scripts : arrival array array;
      (** Per shard, ascending [(at, req)]; cross-shard requests appear in
          both partners' scripts. *)
  total : int;  (** Requests in the plan (cross counted once). *)
  cross : int;  (** Cross-shard requests among them. *)
}

val key_of_client : int -> int
(** The deterministic routing key of a client rank (SplitMix64 finalizer,
    non-negative). Exposed for router tests. *)

val modulation : profile -> float -> float
(** [modulation p t_s] is the rate multiplier at [t_s] seconds — diurnal
    sinusoid times active flash windows. Exposed for tests and plots. *)

val plan :
  seed:int -> profile -> route:(key:int -> int) -> shards:int -> horizon_s:float -> plan
(** Precompute the open-loop arrival schedule over [horizon_s] seconds and
    partition it into per-shard scripts through [route] (which must return
    a shard index in [0, shards)). *)

val plan_closed :
  seed:int ->
  profile ->
  route:(key:int -> int) ->
  shards:int ->
  think_s:float ->
  horizon_s:float ->
  plan
(** The closed-loop seed schedule: one initial offer per client, staggered
    over the first think period. Re-offers are generated in-world by
    {!Script.attach}; cross-shard requests are not supported closed-loop
    ([remote] is always [-1]). *)
