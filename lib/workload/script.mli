open Repro_sim
open Repro_core

(** Script-driven workload: offers a precomputed {!Population} arrival
    schedule to one group, one engine event per arrival (a single
    persistent driver closure re-posts itself at the next arrival's
    instant). Open-loop scripts replay the plan verbatim; closed-loop
    scripts additionally re-offer a client's next request [think_s] after
    its previous one is adelivered at its home process.

    A request's home process within the group is [key mod n] — determined
    by the same routing key the shard router hashed, so a request's
    placement is a pure function of the client rank at every scale.

    After the run, {!resolve} joins each arrival back to its admission and
    first-delivery instants: offers queue FIFO per process and are
    seq-stamped in offer order, so the per-process offer ordinal recorded
    at offer time identifies the latency record with the matching rank
    among that origin's records. Arrivals whose message was not admitted
    or not yet delivered resolve to [None]. *)

type t

val attach :
  Group.t -> arrivals:Population.arrival array -> loop:Population.loop_mode -> t
(** Register the driver on the group's engine; the first offer fires at
    [arrivals.(0).at]. With [loop = Closed _], an adelivery observer is
    installed to schedule re-offers. *)

val stop : t -> unit
(** Stop offering (pending protocol activity continues). *)

val offered : t -> int
(** Offers issued so far, closed-loop re-offers included. *)

val resolve : t -> (Time.t * Time.t) option array
(** Per arrival index: [(abcast_at, first_delivery)] of its message, or
    [None] if it was never admitted or never delivered. Closed-loop
    re-offers are not represented (they carry no plan index). *)
