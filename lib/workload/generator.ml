open Repro_sim
open Repro_core

type arrival = Uniform | Poisson

type t = {
  group : Group.t;
  size : int;
  arrival : arrival;
  interval_ns : float; (* mean inter-arrival per process *)
  rng : Rng.t;
  mutable stopped : bool;
  mutable offered : int;
}

let next_gap t =
  match t.arrival with
  | Uniform -> t.interval_ns
  | Poisson -> Rng.exponential t.rng ~mean:t.interval_ns

let rec offer_loop t pid =
  if not t.stopped then begin
    Group.abcast t.group pid ~size:t.size;
    t.offered <- t.offered + 1;
    let gap = Time.span_ns (max 1 (int_of_float (next_gap t))) in
    Engine.post_after (Group.engine t.group) gap (fun () -> offer_loop t pid)
  end

let start group ~offered_load ~size ?(arrival = Uniform) () =
  if offered_load <= 0.0 then invalid_arg "Generator.start: offered_load must be > 0";
  let n = (Group.params group).Params.n in
  let rate_per_process = offered_load /. float_of_int n in
  let interval_ns = 1e9 /. rate_per_process in
  let t =
    {
      group;
      size;
      arrival;
      interval_ns;
      rng = Rng.split (Engine.rng (Group.engine group));
      stopped = false;
      offered = 0;
    }
  in
  (* Stagger the first offers so processes do not fire in lockstep. *)
  List.iter
    (fun pid ->
      let offset =
        Time.span_ns
          (max 1 (int_of_float (interval_ns *. float_of_int pid /. float_of_int n)))
      in
      Engine.post_after (Group.engine group) offset (fun () -> offer_loop t pid))
    (Repro_net.Pid.all ~n);
  t

let stop t = t.stopped <- true
let offered t = t.offered

(* ---- Snapshot ---- *)

module Snap = Snapshot

let snapshot ?(name = "workload.generator") t =
  let rng = Rng.snapshot ~name:(name ^ ".rng") t.rng in
  Snap.make ~name ~version:1
    ~data:(Snap.pack rng)
    [
      ("stopped", Snap.Bool t.stopped);
      ("offered", Snap.Int t.offered);
      ("rng_state", Snap.find rng "state");
    ]

let restore ?(name = "workload.generator") t s =
  Snap.check s ~name ~version:1;
  t.stopped <- Snap.get_bool s "stopped";
  t.offered <- Snap.get_int s "offered";
  Rng.restore ~name:(name ^ ".rng") t.rng (Snap.unpack_data s)
(* The self-reposting offer loops ride the world blob. *)
