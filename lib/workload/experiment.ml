open Repro_sim
open Repro_net
open Repro_core
module Obs = Repro_obs.Obs

type config = {
  kind : Replica.kind;
  n : int;
  offered_load : float;
  size : int;
  warmup_s : float;
  measure_s : float;
  seed : int;
  params : Params.t;
  fd_mode : Replica.fd_mode;
  arrival : Generator.arrival;
}

let config ~kind ~n ~offered_load ~size ?(warmup_s = 2.0) ?(measure_s = 8.0) ?(seed = 0)
    ?params ?(fd_mode = `Good_run) ?(arrival = Generator.Uniform) () =
  let params = match params with Some p -> { p with Params.n } | None -> Params.default ~n in
  { kind; n; offered_load; size; warmup_s; measure_s; seed; params; fd_mode; arrival }

type result = {
  config : config;
  early_latency_ms : Stats.summary;
  throughput : float;
  admitted_rate : float;
  mean_batch : float;
  msgs_per_instance : float;
  bytes_per_instance : float;
  cpu_utilization : float;
  max_nic_utilization : float;
  boundary_crossings_per_msg : float;
  events_executed : int;
}

let span_of_s s = Time.span_ns (int_of_float (s *. 1e9))

let total_busy_ns group =
  let params = Group.params group in
  let net = Group.network group in
  List.fold_left
    (fun acc pid -> acc + Time.span_to_ns (Cpu.busy_time (Network.cpu net pid)))
    0
    (Pid.all ~n:params.Params.n)

let nic_busy_list group =
  let params = Group.params group in
  let net = Group.network group in
  List.map
    (fun pid -> Time.span_to_ns (Network.nic_busy_time net pid))
    (Pid.all ~n:params.Params.n)

let total_crossings group =
  let params = Group.params group in
  List.fold_left
    (fun acc pid ->
      acc + Repro_framework.Stack.boundary_crossings (Replica.stack (Group.replica group pid)))
    0
    (Pid.all ~n:params.Params.n)

(* A run staged as a group plus timed milestones. [run_raw] executes the
   milestones back to back with [Engine.run_until]; the replay driver
   ([lib/replay]) executes the very same list while slicing the in-between
   stretches at frame boundaries — both orderings are event-identical
   because milestones fire outside the event loop at exact clock values
   the engine reaches anyway. *)
type window_sample = {
  mutable w_at : Time.t;
  mutable w_stats : Net_stats.snapshot;
  mutable w_delivered : int array;
  mutable w_admitted : int;
  mutable w_instances : int;
  mutable w_busy : int;
  mutable w_nic : int list;
  mutable w_crossings : int;
}

type staged = {
  st_group : Group.t;
  st_generator : Generator.t;
  st_milestones : (Time.t * (unit -> unit)) list; (* ascending, absolute *)
  st_result : unit -> float list * result;
}

let sample group =
  {
    w_at = Engine.now (Group.engine group);
    w_stats = Net_stats.snapshot (Group.stats group);
    w_delivered = Group.delivered_counts group;
    w_admitted = Group.total_admitted group;
    w_instances = Replica.instances_decided (Group.replica group 0);
    w_busy = total_busy_ns group;
    w_nic = nic_busy_list group;
    w_crossings = total_crossings group;
  }

let assign_sample dst src =
  dst.w_at <- src.w_at;
  dst.w_stats <- src.w_stats;
  dst.w_delivered <- src.w_delivered;
  dst.w_admitted <- src.w_admitted;
  dst.w_instances <- src.w_instances;
  dst.w_busy <- src.w_busy;
  dst.w_nic <- src.w_nic;
  dst.w_crossings <- src.w_crossings

(* Metrics over the measurement window [s0, s1] — shared by the
   generator-driven [stage] and the script-driven [run_scripted]. *)
let window_result ~obs config group s0 s1 =
  let t_start = s0.w_at and t_end = s1.w_at in
  let window_s = Time.span_to_ms_float (Time.diff t_end t_start) /. 1e3 in
  (* Early latency over messages abcast within the window. Messages abcast
     near the window end may not be delivered yet; like the paper we only
     average over completed deliveries. *)
  let latencies =
    Group.latencies group
    |> List.filter_map (fun (r : Group.latency_record) ->
           if Time.(r.abcast_at >= t_start) && Time.(r.abcast_at <= t_end) then
             Some (Time.span_to_ms_float (Time.diff r.first_delivery r.abcast_at))
           else None)
  in
  let delivered_window =
    Array.mapi (fun i d1 -> d1 - s0.w_delivered.(i)) s1.w_delivered |> Array.to_list
  in
  let throughput =
    Stats.mean (List.map float_of_int delivered_window) /. window_s
  in
  let instances = s1.w_instances - s0.w_instances in
  let finstances = float_of_int (max 1 instances) in
  let delta = Net_stats.diff s1.w_stats s0.w_stats in
  let delivered_p1 = delivered_window |> List.hd in
  (* Run-level gauges: the window-normalized quantities the per-layer
     counters cannot express (those are cumulative and include warm-up). *)
  if Obs.enabled obs then begin
    Obs.set_gauge obs "run.instances" (float_of_int instances);
    Obs.set_gauge obs "run.window_s" window_s;
    Obs.set_gauge obs "run.mean_batch" (float_of_int delivered_p1 /. finstances);
    Obs.set_gauge obs "run.throughput" throughput;
    Obs.set_gauge obs "run.msgs_per_instance"
      (float_of_int delta.Net_stats.messages /. finstances)
  end;
  ( latencies,
    {
      config;
      early_latency_ms = Stats.summarize latencies;
      throughput;
      admitted_rate = float_of_int (s1.w_admitted - s0.w_admitted) /. window_s;
      mean_batch = float_of_int delivered_p1 /. finstances;
      msgs_per_instance = float_of_int delta.Net_stats.messages /. finstances;
      bytes_per_instance = float_of_int delta.Net_stats.payload_bytes /. finstances;
      cpu_utilization =
        float_of_int (s1.w_busy - s0.w_busy)
        /. (window_s *. 1e9 *. float_of_int config.n);
      max_nic_utilization =
        (let deltas = List.map2 (fun a b -> a - b) s1.w_nic s0.w_nic in
         float_of_int (List.fold_left max 0 deltas) /. (window_s *. 1e9));
      boundary_crossings_per_msg =
        float_of_int (s1.w_crossings - s0.w_crossings)
        /. float_of_int (max 1 (List.fold_left ( + ) 0 delivered_window));
      events_executed = Engine.events_executed (Group.engine group);
    } )

let stage ?(obs = Obs.noop) ?on_group config =
  let params = { config.params with Params.n = config.n; seed = config.seed } in
  let group =
    Group.create ~kind:config.kind ~params ~fd_mode:config.fd_mode
      ~record_deliveries:false ~obs ()
  in
  Option.iter (fun f -> f group) on_group;
  let generator =
    Generator.start group ~offered_load:config.offered_load ~size:config.size
      ~arrival:config.arrival ()
  in
  let s0 = sample group and s1 = sample group in
  let warmup_end = Time.add Time.zero (span_of_s config.warmup_s) in
  let measure_end = Time.add warmup_end (span_of_s config.measure_s) in
  let milestones =
    [
      (* Window-start snapshot. *)
      (warmup_end, fun () -> assign_sample s0 (sample group));
      ( measure_end,
        fun () ->
          Generator.stop generator;
          (* Window-end snapshot. *)
          assign_sample s1 (sample group) );
    ]
  in
  let result () = window_result ~obs config group s0 s1 in
  { st_group = group; st_generator = generator; st_milestones = milestones; st_result = result }

let run_raw ?obs ?on_group config =
  let st = stage ?obs ?on_group config in
  let engine = Group.engine st.st_group in
  List.iter
    (fun (at, act) ->
      Engine.run_until engine at;
      act ())
    st.st_milestones;
  st.st_result ()

let run ?obs ?on_group config = snd (run_raw ?obs ?on_group config)

let run_repeated ?(repeats = 3) ?jobs ?(obs = Obs.noop) ?on_group config =
  if repeats < 1 then invalid_arg "Experiment.run_repeated: repeats must be >= 1";
  let runs =
    Parmap.map ?jobs ~obs
      (fun ~obs i -> run_raw ~obs ?on_group { config with seed = config.seed + i })
      (List.init repeats Fun.id)
  in
  let pooled_latencies = List.concat_map fst runs in
  let results = List.map snd runs in
  let mean f = Stats.mean (List.map f results) in
  {
    config;
    early_latency_ms = Stats.summarize pooled_latencies;
    throughput = mean (fun r -> r.throughput);
    admitted_rate = mean (fun r -> r.admitted_rate);
    mean_batch = mean (fun r -> r.mean_batch);
    msgs_per_instance = mean (fun r -> r.msgs_per_instance);
    bytes_per_instance = mean (fun r -> r.bytes_per_instance);
    cpu_utilization = mean (fun r -> r.cpu_utilization);
    max_nic_utilization = mean (fun r -> r.max_nic_utilization);
    boundary_crossings_per_msg = mean (fun r -> r.boundary_crossings_per_msg);
    events_executed =
      List.fold_left (fun acc r -> acc + r.events_executed) 0 results;
  }

(* Script-driven variant of [run]: the offer process is a precomputed
   {!Population} arrival script instead of the symmetric generator, and
   the per-arrival admission/delivery instants come back alongside the
   window metrics so a sharding layer can join cross-shard legs. *)
let run_scripted ?(obs = Obs.noop) ~kind ~n ?params ?(fd_mode = `Good_run)
    ?(seed = 0) ~warmup_s ~measure_s ~arrivals ~loop () =
  let horizon_s = warmup_s +. measure_s in
  let offered_load =
    if horizon_s > 0.0 then float_of_int (Array.length arrivals) /. horizon_s
    else 0.0
  in
  let size =
    if Array.length arrivals > 0 then arrivals.(0).Population.size else 0
  in
  let config =
    config ~kind ~n ~offered_load ~size ~warmup_s ~measure_s ~seed ?params
      ~fd_mode ()
  in
  let params = { config.params with Params.n; seed } in
  let group =
    Group.create ~kind ~params ~fd_mode ~record_deliveries:false ~obs ()
  in
  let script = Script.attach group ~arrivals ~loop in
  let s0 = sample group and s1 = sample group in
  let warmup_end = Time.add Time.zero (span_of_s warmup_s) in
  let measure_end = Time.add warmup_end (span_of_s measure_s) in
  let engine = Group.engine group in
  Engine.run_until engine warmup_end;
  assign_sample s0 (sample group);
  Engine.run_until engine measure_end;
  Script.stop script;
  assign_sample s1 (sample group);
  let latencies, result = window_result ~obs config group s0 s1 in
  (Script.resolve script, latencies, result)

let kind_name = function
  | Replica.Modular -> "modular"
  | Replica.Monolithic -> "monolithic"
  | Replica.Indirect -> "indirect"

let pp_result ppf r =
  Fmt.pf ppf
    "%-10s n=%d load=%6.0f/s size=%6dB | lat %7.3f ±%5.3f ms | tput %7.1f/s | M=%4.1f | \
     msgs/inst %5.1f | CPU %3.0f%% | NIC %3.0f%%"
    (kind_name r.config.kind) r.config.n r.config.offered_load r.config.size
    r.early_latency_ms.Stats.mean r.early_latency_ms.Stats.ci95 r.throughput r.mean_batch
    r.msgs_per_instance
    (100.0 *. r.cpu_utilization)
    (100.0 *. r.max_nic_utilization)
