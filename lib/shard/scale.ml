open Repro_core
open Repro_workload
module Obs = Repro_obs.Obs
module Jsonl = Repro_obs.Jsonl

type row = {
  row_kind : Replica.kind;
  row_shards : int;
  row_clients : int;
  row_rate : float;
  row_result : Shard.result;
}

let all_kinds = [ Replica.Modular; Replica.Indirect; Replica.Monolithic ]
let default_shards = [ 1; 4; 16 ]
let default_clients = [ 10_000; 100_000; 1_000_000 ]

(* One cell's population: the per-shard offered load is held constant as
   the shard count grows (total load scales with shards, rate per client
   shrinks with population size), so the curve isolates the modularity
   cost at a fixed per-group operating point while the client population
   and fleet scale around it. The burstiness knobs are deliberately
   non-trivial: a Zipf tail over clients, a diurnal swing over the run and
   one mid-window flash crowd. *)
let cell_profile ~per_shard_load ~cross_fraction ~shards ~clients ~warmup_s
    ~measure_s =
  let rate_per_client =
    per_shard_load *. float_of_int shards /. float_of_int clients
  in
  let horizon_s = warmup_s +. measure_s in
  Population.profile ~clients ~rate_per_client ~tail_alpha:1.1
    ~diurnal_amp:0.25 ~diurnal_period_s:horizon_s
    ~flashes:
      [
        {
          Population.flash_at_s = warmup_s +. (measure_s /. 2.0);
          flash_dur_s = measure_s /. 5.0;
          flash_mult = 1.5;
        };
      ]
    ~cross_fraction ()

let run ?(kinds = all_kinds) ?(shard_counts = default_shards)
    ?(clients = default_clients) ?(per_shard_load = 600.0)
    ?(cross_fraction = 0.05) ?(n = 3) ?(warmup_s = 0.5) ?(measure_s = 2.0)
    ?(seed = 0) ?jobs ?(obs = Obs.noop) ?on_row () =
  if shard_counts = [] || clients = [] || kinds = [] then
    invalid_arg "Scale.run: empty axis";
  let rows = ref [] in
  List.iter
    (fun kind ->
      List.iter
        (fun shards ->
          List.iter
            (fun nclients ->
              let profile =
                cell_profile ~per_shard_load ~cross_fraction ~shards
                  ~clients:nclients ~warmup_s ~measure_s
              in
              let config =
                Shard.config ~kind ~shards ~n ~profile ~warmup_s ~measure_s
                  ~seed ()
              in
              let result = Shard.run ?jobs ~obs config in
              let row =
                {
                  row_kind = kind;
                  row_shards = shards;
                  row_clients = nclients;
                  row_rate = profile.Population.rate_per_client;
                  row_result = result;
                }
              in
              if Obs.enabled obs then begin
                let tag metric =
                  Fmt.str "scale.%s.s%d.c%d.%s" (Experiment.kind_name kind)
                    shards nclients metric
                in
                Obs.set_gauge obs (tag "latency_ms")
                  result.Shard.latency_ms.Stats.mean;
                Obs.set_gauge obs (tag "throughput") result.Shard.throughput
              end;
              Option.iter (fun f -> f row) on_row;
              rows := row :: !rows)
            clients)
        shard_counts)
    kinds;
  List.rev !rows

(* The JSONL row deliberately carries only virtual-time quantities — no
   wallclock, no jobs — so the artifact is byte-identical at any [--jobs],
   the same discipline the bench report's stripped meta keys follow. *)
let row_json r =
  let res = r.row_result in
  Jsonl.Obj
    [
      ("type", Jsonl.String "scale");
      ("stack", Jsonl.String (Experiment.kind_name r.row_kind));
      ("shards", Jsonl.Int r.row_shards);
      ("clients", Jsonl.Int r.row_clients);
      ("rate_per_client", Jsonl.Float r.row_rate);
      ("requests", Jsonl.Int res.Shard.plan_total);
      ("cross_requests", Jsonl.Int res.Shard.plan_cross);
      ("latency_ms", Jsonl.Float res.Shard.latency_ms.Stats.mean);
      ("latency_p95_ms", Jsonl.Float res.Shard.latency_ms.Stats.p95);
      ("cross_latency_ms", Jsonl.Float res.Shard.cross_latency_ms.Stats.mean);
      ("throughput", Jsonl.Float res.Shard.throughput);
      ("events_executed", Jsonl.Int res.Shard.events_executed);
    ]

let pp_row ppf r =
  Fmt.pf ppf "s=%-3d c=%-8d %a" r.row_shards r.row_clients Shard.pp_result
    r.row_result

(* The 64-shard high-load cell the batched-hop engine is sized against.
   The CLI times one run of this config with batched hops on and off and
   diffs the observable bytes — the measured-speedup + byte-identity gate
   (PERF.md has the recorded numbers). *)
let hot_cell ?(kind = Replica.Modular) ?(shards = 64) ?(clients = 1_000_000)
    ?(per_shard_load = 600.0) ?(n = 3) ?(warmup_s = 0.25) ?(measure_s = 1.0)
    ?(seed = 0) ~batched () =
  let profile =
    cell_profile ~per_shard_load ~cross_fraction:0.05 ~shards ~clients
      ~warmup_s ~measure_s
  in
  let params = { (Params.default ~n) with Params.batched_hops = batched } in
  Shard.config ~kind ~shards ~n ~profile ~warmup_s ~measure_s ~seed ~params ()
