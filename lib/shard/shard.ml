open Repro_core
open Repro_workload
module Obs = Repro_obs.Obs
module Time = Repro_sim.Time

type config = {
  kind : Replica.kind;
  shards : int;
  n : int;
  profile : Population.profile;
  warmup_s : float;
  measure_s : float;
  seed : int;
  params : Params.t option;
}

let config ~kind ~shards ~n ~profile ?(warmup_s = 2.0) ?(measure_s = 8.0)
    ?(seed = 0) ?params () =
  if shards < 1 then invalid_arg "Shard.config: shards must be >= 1";
  if n < 1 then invalid_arg "Shard.config: n must be >= 1";
  { kind; shards; n; profile; warmup_s; measure_s; seed; params }

type result = {
  config : config;
  plan_total : int;
  plan_cross : int;
  per_shard : Experiment.result array;
  latency_ms : Stats.summary;
  cross_latency_ms : Stats.summary;
  throughput : float;
  events_executed : int;
}

let span_of_s s = Time.span_ns (int_of_float (s *. 1e9))

let plan config =
  let horizon_s = config.warmup_s +. config.measure_s in
  let route ~key = Router.shard_of_key ~shards:config.shards key in
  match config.profile.Population.loop with
  | Population.Open ->
    Population.plan ~seed:config.seed config.profile ~route
      ~shards:config.shards ~horizon_s
  | Population.Closed { think_s } ->
    Population.plan_closed ~seed:config.seed config.profile ~route
      ~shards:config.shards ~think_s ~horizon_s

(* Shards are fully independent event worlds — each gets its own engine,
   network and group, seeded [seed + shard] — so they fan out across the
   domain pool exactly like repeats and study cells do. [Parmap] absorbs
   the per-shard sinks back into [obs] in shard order, which is what makes
   a sharded run's observable output byte-identical at any [jobs]. *)
let run_planned ?jobs ?(obs = Obs.noop) config plan =
  let outcomes =
    Parmap.map ?jobs ~obs
      (fun ~obs s ->
        Experiment.run_scripted ~obs ~kind:config.kind ~n:config.n
          ?params:config.params ~seed:(config.seed + s)
          ~warmup_s:config.warmup_s ~measure_s:config.measure_s
          ~arrivals:plan.Population.scripts.(s)
          ~loop:config.profile.Population.loop ())
      (List.init config.shards Fun.id)
    |> Array.of_list
  in
  (* The measurement window covers the same virtual instants in every
     shard world, so per-request filtering composes across shards. *)
  let t_start = Time.add Time.zero (span_of_s config.warmup_s) in
  let t_end = Time.add t_start (span_of_s config.measure_s) in
  let window_s = config.measure_s in
  let in_window at = Time.(at >= t_start) && Time.(at <= t_end) in
  let singles = ref [] and cross_lats = ref [] in
  let completed = ref 0 in
  (match config.profile.Population.loop with
  | Population.Closed _ ->
    (* In-world re-offers never appear in the plan, so the plan join would
       only ever see the initial seeded offers. Score the raw in-window
       samples each shard world measured instead (cross-shard traffic is
       unsupported closed-loop, so there is nothing to join). *)
    Array.iter
      (fun (_, lats, _) ->
        List.iter
          (fun l ->
            singles := l :: !singles;
            incr completed)
          lats)
      outcomes
  | Population.Open ->
    (* Cross-shard join: the first leg encountered parks in the table; the
       second completes the request. A cross request counts once, with
       latency max(first_delivery) - min(abcast_at) over its legs — the
       client's view: issued at one instant, done when the slower shard
       delivered. Iteration is shard-ascending then arrival-ascending, so
       the emission order (and hence every float sum downstream) is a pure
       function of the plan, independent of [jobs]. *)
    let pending_cross = Hashtbl.create 256 in
    Array.iteri
      (fun s (resolved, _, _) ->
        Array.iteri
          (fun i outcome ->
            let a = plan.Population.scripts.(s).(i) in
            match outcome with
            | None -> ()
            | Some (ab, del) ->
              if a.Population.remote < 0 then begin
                if in_window ab then begin
                  singles :=
                    Time.span_to_ms_float (Time.diff del ab) :: !singles;
                  incr completed
                end
              end
              else begin
                match Hashtbl.find_opt pending_cross a.Population.req with
                | None -> Hashtbl.add pending_cross a.Population.req (ab, del)
                | Some (ab0, del0) ->
                  Hashtbl.remove pending_cross a.Population.req;
                  let ab = if Time.(ab0 <= ab) then ab0 else ab in
                  let del = if Time.(del0 >= del) then del0 else del in
                  if in_window ab then begin
                    cross_lats :=
                      Time.span_to_ms_float (Time.diff del ab) :: !cross_lats;
                    incr completed
                  end
              end)
          resolved)
      outcomes);
  let per_shard = Array.map (fun (_, _, r) -> r) outcomes in
  {
    config;
    plan_total = plan.Population.total;
    plan_cross = plan.Population.cross;
    per_shard;
    latency_ms = Stats.summarize (List.rev !singles);
    cross_latency_ms = Stats.summarize (List.rev !cross_lats);
    throughput = float_of_int !completed /. window_s;
    events_executed =
      Array.fold_left
        (fun acc (r : Experiment.result) -> acc + r.Experiment.events_executed)
        0 per_shard;
  }

let run ?jobs ?obs config = run_planned ?jobs ?obs config (plan config)

let pp_result ppf r =
  Fmt.pf ppf
    "%-10s shards=%-3d n=%d clients=%-8d | lat %7.3f ±%5.3f ms | cross %7.3f ms \
     (%d reqs) | tput %8.1f/s | events %d"
    (Experiment.kind_name r.config.kind)
    r.config.shards r.config.n r.config.profile.Population.clients
    r.latency_ms.Stats.mean r.latency_ms.Stats.ci95
    r.cross_latency_ms.Stats.mean r.plan_cross r.throughput r.events_executed
