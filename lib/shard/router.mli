(** Deterministic key-hash router in front of the shard groups.

    Placement is a pure, seedless function of the routing key: the same
    key routes to the same shard in every run, at every [--jobs], from
    every caller — the property the router determinism tests pin down.

    {2 Contract}

    - {e Seed-stable}: no RNG, no per-run state; [shard_of_key] depends
      only on [(key, shards)].
    - {e Monotone under power-of-two doubling}: for power-of-two counts
      the index is the hash's low bits, so growing from [m] to [2m]
      shards maps each key from shard [s] to [s] or [s + m] — resharding
      splits shards, it never shuffles keys between unrelated ones. No
      monotonicity is promised for non-power-of-two counts (plain mod). *)

val hash : int -> int
(** SplitMix64-finalizer mix of a key, non-negative. *)

val shard_of_key : shards:int -> int -> int
(** The home shard of a key, in [0, shards).
    @raise Invalid_argument if [shards < 1]. *)

val is_pow2 : int -> bool
(** Whether the monotone-doubling promise applies to this shard count. *)
