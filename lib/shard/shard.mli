open Repro_core
open Repro_workload

(** Sharded multi-group simulation: [M] independent consensus groups
    behind the deterministic {!Router}, driven by one {!Population} plan
    partitioned per shard.

    Each shard is a complete, independent event world (own engine,
    network, group — seeded [seed + shard index]), which is exactly the
    shape the PR-5 domain pool parallelizes: {!run} fans the shards over
    {!Repro_workload.Parmap} and absorbs per-shard sinks in shard order,
    so metrics/trace/report bytes are identical at any [jobs].

    Cross-shard requests (plan [remote >= 0]) are offered in both partner
    shards at the same virtual instant; {!run} joins the two legs by
    request id and scores the request with the client-visible latency
    [max(first_delivery) - min(abcast_at)] over its legs, counting it once
    in throughput. This scatter-score models the read/update pattern of a
    router that issues both legs in parallel and waits for the slower
    one; it deliberately involves no inter-shard protocol — shards never
    exchange messages, which is what keeps them independent worlds. *)

type config = {
  kind : Replica.kind;
  shards : int;
  n : int;  (** Processes per shard group. *)
  profile : Population.profile;
  warmup_s : float;
  measure_s : float;
  seed : int;
  params : Params.t option;  (** Base params; [n]/[seed] set per shard. *)
}

val config :
  kind:Replica.kind ->
  shards:int ->
  n:int ->
  profile:Population.profile ->
  ?warmup_s:float ->
  ?measure_s:float ->
  ?seed:int ->
  ?params:Params.t ->
  unit ->
  config
(** Validated constructor; defaults mirror {!Experiment.config}
    (warmup 2 s, measure 8 s, seed 0). *)

type result = {
  config : config;
  plan_total : int;  (** Requests in the plan (cross counted once). *)
  plan_cross : int;
  per_shard : Experiment.result array;
  latency_ms : Stats.summary;
      (** Single-shard requests abcast within the window. *)
  cross_latency_ms : Stats.summary;
      (** Cross-shard requests, both legs delivered, issued within the
          window. *)
  throughput : float;  (** Completed requests/s (cross counted once). *)
  events_executed : int;  (** Sum over shard engines (deterministic). *)
}

val run : ?jobs:int -> ?obs:Repro_obs.Obs.t -> config -> result
(** Plan the population, run every shard, join cross-shard legs. With
    [shards = 1] the shard world is event-for-event identical to
    {!Experiment.run_scripted} on the same plan — the equivalence the
    router tests pin per stack. *)

val plan : config -> Population.plan
(** The plan {!run} would execute (exposed for tests, the CLI's
    plan-size reporting, and callers that time {!run_planned}
    separately from plan construction). *)

val run_planned :
  ?jobs:int -> ?obs:Repro_obs.Obs.t -> config -> Population.plan -> result
(** {!run} on a pre-built plan. [run config = run_planned config (plan
    config)]; the split lets the CLI's batching gate time the event-loop
    phase alone, with the (identical, params-independent) million-client
    plan built once and shared by the batched and unbatched runs. *)

val pp_result : result Fmt.t
