open Repro_core

(** The modularity-cost-vs-scale study: per-stack latency/throughput as
    shards × client population grows, holding the per-shard offered load
    constant. Answers ROADMAP item 2's question — does the paper's ~50%
    latency / 10–30% throughput modularity gap grow, shrink or invert at
    scale? Rows carry only virtual-time quantities, so the emitted JSONL
    is byte-identical at any [--jobs] (the CI artifact relies on this). *)

type row = {
  row_kind : Replica.kind;
  row_shards : int;
  row_clients : int;
  row_rate : float;  (** Derived per-client req/s for this cell. *)
  row_result : Shard.result;
}

val all_kinds : Replica.kind list
val default_shards : int list
(** [1; 4; 16]. *)

val default_clients : int list
(** [10_000; 100_000; 1_000_000]. *)

val run :
  ?kinds:Replica.kind list ->
  ?shard_counts:int list ->
  ?clients:int list ->
  ?per_shard_load:float ->
  ?cross_fraction:float ->
  ?n:int ->
  ?warmup_s:float ->
  ?measure_s:float ->
  ?seed:int ->
  ?jobs:int ->
  ?obs:Repro_obs.Obs.t ->
  ?on_row:(row -> unit) ->
  unit ->
  row list
(** The full grid, kinds × shard counts × client populations, in that
    (deterministic) order; [on_row] fires after each cell. Cells run
    sequentially; each cell's shards fan out over the domain pool with
    [jobs]. Per cell, [rate_per_client = per_shard_load * shards /
    clients] (default per-shard load 600 req/s, 5% cross-shard traffic,
    Zipf 1.1 tail, 25% diurnal swing, one 1.5× mid-window flash crowd). *)

val row_json : row -> Repro_obs.Jsonl.json
(** One JSONL record per cell (virtual-time fields only). *)

val pp_row : row Fmt.t

val hot_cell :
  ?kind:Replica.kind ->
  ?shards:int ->
  ?clients:int ->
  ?per_shard_load:float ->
  ?n:int ->
  ?warmup_s:float ->
  ?measure_s:float ->
  ?seed:int ->
  batched:bool ->
  unit ->
  Shard.config
(** The 64-shard / million-client cell used to gate the batched-hop
    engine: the CLI runs it with [batched] on and off, times both, and
    requires byte-identical observable output (see [repro study --scale
    --verify-batching]). *)
