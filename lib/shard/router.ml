(* SplitMix64 finalizer over the key. Stateless and seedless by design:
   routing must be a pure function of the key alone so that every client,
   every shard and every analysis tool agrees on placement without
   coordination — and so the assignment is trivially stable across run
   seeds (seed-stability is a tested contract, not an accident). *)
let hash key =
  let z = Int64.add (Int64.of_int key) 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land max_int

let is_pow2 m = m > 0 && m land (m - 1) = 0

let shard_of_key ~shards key =
  if shards < 1 then invalid_arg "Router.shard_of_key: shards must be >= 1";
  let h = hash key in
  (* Power-of-two counts take low bits, which makes doubling monotone:
     going from M to 2M shards only adds bit M to the index, so a key maps
     to [s] or [s + M] — half of each shard's keys split off, none shuffle
     between unrelated shards. Other counts fall back to mod and promise
     nothing across resizes. *)
  if is_pow2 shards then h land (shards - 1) else h mod shards
