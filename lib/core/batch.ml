module M = Map.Make (struct
  type t = App_msg.id

  let compare = App_msg.compare_id
end)

type t = App_msg.t M.t

let empty = M.empty
let is_empty = M.is_empty
let add t m = M.add m.App_msg.id m t
let of_list l = List.fold_left add empty l
let to_list t = List.map snd (M.bindings t)
let size = M.cardinal
let payload_bytes t = M.fold (fun _ m acc -> acc + m.App_msg.size) t 0
let mem t id = M.mem id t
let union a b = M.union (fun _ m _ -> Some m) a b
let remove_ids t ids = M.filter (fun id _ -> not (App_msg.Id_set.mem id ids)) t

(* Decided batches are small and [t] can be large (the coordinator pool),
   so removing per decided id beats [remove_ids]'s whole-map rebuild —
   and skips materialising the id set entirely. *)
let diff t b = M.fold (fun id _ acc -> M.remove id acc) b t
let ids t = M.fold (fun id _ acc -> App_msg.Id_set.add id acc) t App_msg.Id_set.empty
let equal a b = M.equal (fun x y -> App_msg.compare x y = 0) a b

let pp ppf t =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") App_msg.pp) (to_list t)
