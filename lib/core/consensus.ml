open Repro_sim
open Repro_net
open Repro_fd
module Obs = Repro_obs.Obs

module L = (val Logs.src_log Log.consensus)

type inst_state = {
  inst : int;
  created_at : Time.t; (* first local activity, for the decide-latency histogram *)
  mutable round : int;
  mutable estimate : Batch.t option;
  mutable ts : int; (* round of last adoption; 0 = initial value, never adopted *)
  mutable started : bool; (* propose () was called locally *)
  proposals : (int * Pid.t, Batch.t) Hashtbl.t; (* (round, proposer) -> value *)
  mutable acked_rounds : int list;
  acks : (int, Pid.t list ref) Hashtbl.t; (* coordinator side, per round *)
  estimates : (int, (Pid.t * (int * Batch.t)) list ref) Hashtbl.t;
  mutable estimate_sent : int list; (* rounds for which my estimate went out *)
  mutable proposed_rounds : int list; (* rounds I proposed as coordinator *)
  mutable solicited_rounds : int list; (* rounds I broadcast New_round for *)
  mutable decided : Batch.t option;
  mutable pending_requesters : Pid.t list;
  mutable kick_timer : Engine.timer option;
  mutable progress_timer : Engine.timer option;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  me : Pid.t;
  fd : Fd.t;
  send : dst:Pid.t -> Msg.t -> unit;
  broadcast : Msg.t -> unit;
  rbcast_decision : inst:int -> round:int -> value:Batch.t option -> unit;
  on_decide : inst:int -> Batch.t -> unit;
  obs : Obs.t;
  instances : (int, inst_state) Hashtbl.t;
  mutable max_decided : int;
  mutable catchup_from : int; (* lowest instance not known decided *)
  mutable catchup_timer : Engine.timer option;
}

let coord t ~round = Params.coordinator t.params ~round

(* The first round >= [from] whose coordinator this process does not
   currently suspect; if it suspects all n coordinators (FD gone wild),
   fall back to [from] and let the round structure sort it out. *)
let next_unsuspected_round t ~from =
  let rec scan r tries =
    if tries = 0 then from
    else if Fd.is_suspected t.fd (coord t ~round:r) then scan (r + 1) (tries - 1)
    else r
  in
  scan from t.params.Params.n

let state t inst =
  match Hashtbl.find_opt t.instances inst with
  | Some s -> s
  | None ->
    let s =
      {
        inst;
        created_at = Engine.now t.engine;
        round = 1;
        estimate = None;
        ts = 0;
        started = false;
        proposals = Hashtbl.create 4;
        acked_rounds = [];
        acks = Hashtbl.create 4;
        estimates = Hashtbl.create 4;
        estimate_sent = [];
        proposed_rounds = [];
        solicited_rounds = [];
        decided = None;
        pending_requesters = [];
        kick_timer = None;
        progress_timer = None;
      }
    in
    Hashtbl.add t.instances inst s;
    s

let cancel_timer t slot =
  match slot with Some timer -> Engine.cancel t.engine timer | None -> ()

let send_to_others t msg = t.broadcast msg

(* Safety net against permanent decision holes, mirroring the monolithic
   stack's catch-up: the decision's reliable broadcast survives a crashed
   origin through its relay step, but under a message adversary every
   copy bound for one process can be suppressed — the relay multicasts
   are each subject to the per-broadcast drop budget too — so a decided
   instance can sit above an instance nobody will ever re-announce.
   While that is the case, periodically broadcast [Decision_request] for
   the holes; decided peers answer [Decision_full], undecided ones park
   us in [pending_requesters]. Never armed while decisions arrive in
   order, i.e. never in good runs. *)
let rec arm_catchup t =
  let decided_at inst =
    match Hashtbl.find_opt t.instances inst with
    | Some s -> s.decided <> None
    | None -> false
  in
  while t.catchup_from <= t.max_decided && decided_at t.catchup_from do
    t.catchup_from <- t.catchup_from + 1
  done;
  if t.catchup_timer = None && t.catchup_from <= t.max_decided then
    t.catchup_timer <-
      Some
        (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
             t.catchup_timer <- None;
             let requested = ref 0 in
             let inst = ref t.catchup_from in
             while !inst <= t.max_decided && !requested < 64 do
               if not (decided_at !inst) then begin
                 t.broadcast (Msg.Decision_request { inst = !inst });
                 incr requested
               end;
               incr inst
             done;
             arm_catchup t))

let decide t s value =
  match s.decided with
  | Some _ -> ()
  | None ->
    s.decided <- Some value;
    cancel_timer t s.kick_timer;
    cancel_timer t s.progress_timer;
    s.kick_timer <- None;
    s.progress_timer <- None;
    List.iter
      (fun q -> t.send ~dst:q (Msg.Decision_full { inst = s.inst; value }))
      s.pending_requesters;
    s.pending_requesters <- [];
    L.debug (fun m ->
        m "%a decide i%d %a" Pid.pp t.me s.inst Batch.pp value);
    Obs.incr t.obs "consensus.decisions";
    if Obs.enabled t.obs then
      Obs.observe_since t.obs "consensus.decide_ms" s.created_at;
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Consensus ~phase:"decide"
          ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst s.round (Batch.size value))
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"decide"
          ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst s.round (Batch.size value))
          ()
      end
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () -> t.on_decide ~inst:s.inst value);
    if s.inst > t.max_decided then t.max_decided <- s.inst;
    arm_catchup t

let reply_decision t s ~dst =
  match s.decided with
  | Some value -> t.send ~dst (Msg.Decision_full { inst = s.inst; value })
  | None -> ()

(* ---- Round progression ---- *)

let estimates_for s ~round =
  match Hashtbl.find_opt s.estimates round with Some slot -> !slot | None -> []

(* Deterministic choice among a majority of estimates: maximum lock
   timestamp, then larger batch (so undelivered messages are not dropped
   needlessly), then lowest pid. *)
let choose_estimate ests =
  let better (p1, (ts1, v1)) (p2, (ts2, v2)) =
    if ts1 <> ts2 then ts1 > ts2
    else if Batch.size v1 <> Batch.size v2 then Batch.size v1 > Batch.size v2
    else p1 < p2
  in
  match ests with
  | [] -> None
  | first :: rest ->
    let _, (_, v) =
      List.fold_left (fun best e -> if better e best then e else best) first rest
    in
    Some v

let rec arm_progress_timer t s =
  cancel_timer t s.progress_timer;
  s.progress_timer <-
    Some
      (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
           if s.decided = None && (s.started || s.estimate <> None) then
             advance_round t s ~target:(next_unsuspected_round t ~from:(s.round + 1))))

(* Coordinator-side: record an estimate for [round] keyed by pid. Our own
   estimate participates without a message. *)
and coordinator_estimates t s ~round =
  let received = estimates_for s ~round in
  match s.estimate with
  | Some v when not (List.mem_assoc t.me received) -> (t.me, (s.ts, v)) :: received
  | _ -> received

and value_for_round t s ~round =
  if round = 1 then s.estimate
  else
    let ests = coordinator_estimates t s ~round in
    if List.length ests >= Params.majority t.params then choose_estimate ests else None

and maybe_propose t s ~round =
  if
    s.decided = None
    && coord t ~round = t.me
    && not (List.mem round s.proposed_rounds)
  then
    match value_for_round t s ~round with
    | None -> ()
    | Some value ->
      s.proposed_rounds <- round :: s.proposed_rounds;
      if round > s.round then s.round <- round;
      Hashtbl.replace s.proposals (round, t.me) value;
      s.estimate <- Some value;
      s.ts <- round;
      let slot =
        match Hashtbl.find_opt s.acks round with
        | Some slot -> slot
        | None ->
          let slot = ref [] in
          Hashtbl.add s.acks round slot;
          slot
      in
      slot := [ t.me ];
      L.debug (fun m ->
          m "%a propose i%d r%d (%d msgs)" Pid.pp t.me s.inst round (Batch.size value));
      Obs.incr t.obs "consensus.proposals";
      let sp =
        if Obs.tracing t.obs then begin
          Obs.event t.obs ~pid:t.me ~layer:`Consensus ~phase:"propose"
            ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst round (Batch.size value))
            ();
          Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"propose"
            ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst round (Batch.size value))
            ()
        end
        else Obs.Span.no_parent
      in
      Obs.with_span_ctx t.obs sp (fun () ->
          send_to_others t (Msg.Propose { inst = s.inst; round; value });
          arm_progress_timer t s;
          check_majority t s ~round)

and check_majority t s ~round =
  if s.decided = None && coord t ~round = t.me then
    match Hashtbl.find_opt s.acks round with
    | Some slot when List.length !slot >= Params.majority t.params -> begin
      match Hashtbl.find_opt s.proposals (round, t.me) with
      | Some value ->
        let carried =
          if t.params.Params.modular.Params.decision_tag_only then None else Some value
        in
        (* Local decision arrives through the rbcast service's local
           delivery, so the coordinator and everyone else share one path. *)
        t.rbcast_decision ~inst:s.inst ~round ~value:carried
      | None -> ()
    end
    | Some _ | None -> ()

and solicit t s ~round =
  if not (List.mem round s.solicited_rounds) then begin
    s.solicited_rounds <- round :: s.solicited_rounds;
    L.debug (fun m -> m "%a solicit i%d r%d" Pid.pp t.me s.inst round);
    send_to_others t (Msg.New_round { inst = s.inst; round })
  end

and send_estimate t s ~round =
  (* A process drawn into a recovery round without an initial value
     contributes the empty batch — the §3.3 "start a consensus even if no
     message arrives" behaviour. *)
  if s.estimate = None then s.estimate <- Some Batch.empty;
  match s.estimate with
  | Some value when not (List.mem round s.estimate_sent) ->
    s.estimate_sent <- round :: s.estimate_sent;
    Obs.incr t.obs "consensus.estimates";
    let sp =
      if Obs.tracing t.obs then
        Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"estimate"
          ~detail:(Printf.sprintf "i%d r%d" s.inst round)
          ()
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () ->
        t.send ~dst:(coord t ~round)
          (Msg.Estimate { inst = s.inst; round; value; ts = s.ts }))
  | Some _ | None -> ()

and advance_round t s ~target =
  if s.decided = None && target > s.round then begin
    L.debug (fun m ->
        m "%a advance i%d r%d->r%d (coord %a)" Pid.pp t.me s.inst s.round target Pid.pp
          (coord t ~round:target));
    s.round <- target;
    cancel_timer t s.kick_timer;
    s.kick_timer <- None;
    if coord t ~round:target = t.me then begin
      maybe_propose t s ~round:target;
      if not (List.mem target s.proposed_rounds) then solicit t s ~round:target
    end
    else send_estimate t s ~round:target;
    arm_progress_timer t s
  end

(* ---- §3.3 kick: a non-coordinator that proposed but hears nothing wakes
   the round-1 coordinator with its estimate. ---- *)

let arm_kick t s =
  if s.kick_timer = None then
    s.kick_timer <-
      Some
        (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
             if s.decided = None && s.round = 1 && s.acked_rounds = [] then
               match s.estimate with
               | Some value ->
                 t.send ~dst:(coord t ~round:1)
                   (Msg.Estimate { inst = s.inst; round = 1; value; ts = s.ts })
               | None -> ()))

(* ---- Suspicion ---- *)

let on_suspicion t suspect =
  (* Advance in instance order: the table's hash order must not decide
     which instance's round change (and its sends) is scheduled first. *)
  let affected =
    Hashtbl.fold
      (fun _ s acc ->
        if s.decided = None && (s.started || s.estimate <> None)
           && coord t ~round:s.round = suspect
        then s :: acc
        else acc)
      t.instances []
    |> List.sort (fun a b -> compare a.inst b.inst)
  in
  List.iter
    (fun s -> advance_round t s ~target:(next_unsuspected_round t ~from:(s.round + 1)))
    affected

(* ---- Public entry points ---- *)

let propose t ~inst value =
  let s = state t inst in
  if s.decided = None && not s.started then begin
    s.started <- true;
    if s.estimate = None then s.estimate <- Some value;
    let c1 = coord t ~round:1 in
    if s.round = 1 then begin
      if c1 = t.me then maybe_propose t s ~round:1
      else if Fd.is_suspected t.fd c1 then
        advance_round t s ~target:(next_unsuspected_round t ~from:2)
      else arm_kick t s
    end;
    arm_progress_timer t s
  end

let handle_propose t s ~src ~round ~value =
  if s.decided <> None then reply_decision t s ~dst:src
  else if src = coord t ~round && round >= s.round then begin
    s.round <- round;
    cancel_timer t s.kick_timer;
    s.kick_timer <- None;
    Hashtbl.replace s.proposals (round, src) value;
    if s.estimate = None then s.estimate <- Some value;
    if Fd.is_suspected t.fd src then
      advance_round t s ~target:(next_unsuspected_round t ~from:(round + 1))
    else if not (List.mem round s.acked_rounds) then begin
      s.acked_rounds <- round :: s.acked_rounds;
      s.estimate <- Some value;
      s.ts <- round;
      Obs.incr t.obs "consensus.acks";
      let sp =
        if Obs.tracing t.obs then
          Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"ack"
            ~detail:(Printf.sprintf "i%d r%d" s.inst round)
            ()
        else Obs.Span.no_parent
      in
      Obs.with_span_ctx t.obs sp (fun () ->
          t.send ~dst:src (Msg.Ack { inst = s.inst; round }));
      arm_progress_timer t s
    end
  end

let handle_ack t s ~src ~round =
  (* A late ack (after the decision) needs no reply: the decision's
     reliable broadcast reaches the acker anyway. *)
  if s.decided = None && coord t ~round = t.me then begin
    let slot =
      match Hashtbl.find_opt s.acks round with
      | Some slot -> slot
      | None ->
        let slot = ref [] in
        Hashtbl.add s.acks round slot;
        slot
    in
    if not (List.mem src !slot) then slot := src :: !slot;
    check_majority t s ~round
  end

let handle_estimate t s ~src ~round ~ts ~value =
  if s.decided <> None then reply_decision t s ~dst:src
  else if round = 1 then begin
    (* §3.3 kick: adopt the value if we have none, and propose if we are
       the (possibly idle) round-1 coordinator. *)
    if coord t ~round:1 = t.me then begin
      if s.estimate = None then s.estimate <- Some value;
      maybe_propose t s ~round:1
    end
  end
  else begin
    let previous_round = s.round in
    if round > s.round then s.round <- round;
    (match Hashtbl.find_opt s.estimates round with
    | Some slot ->
      if not (List.mem_assoc src !slot) then slot := (src, (ts, value)) :: !slot
    | None -> Hashtbl.add s.estimates round (ref [ (src, (ts, value)) ]));
    if s.estimate = None then s.estimate <- Some value;
    if coord t ~round = t.me then begin
      maybe_propose t s ~round;
      if not (List.mem round s.proposed_rounds) then solicit t s ~round
    end
    else if round > previous_round then send_estimate t s ~round
  end

let handle_new_round t s ~src ~round =
  if s.decided <> None then reply_decision t s ~dst:src
  else if round > s.round then advance_round t s ~target:round
  else if round = s.round && coord t ~round <> t.me then send_estimate t s ~round

let handle_decision_request t s ~src =
  match s.decided with
  | Some value -> t.send ~dst:src (Msg.Decision_full { inst = s.inst; value })
  | None ->
    if not (List.mem src s.pending_requesters) then
      s.pending_requesters <- src :: s.pending_requesters

let receive t ~src msg =
  match msg with
  | Msg.Propose { inst; round; value } ->
    handle_propose t (state t inst) ~src ~round ~value
  | Msg.Ack { inst; round } -> handle_ack t (state t inst) ~src ~round
  | Msg.Estimate { inst; round; value; ts } ->
    handle_estimate t (state t inst) ~src ~round ~ts ~value
  | Msg.New_round { inst; round } -> handle_new_round t (state t inst) ~src ~round
  | Msg.Decision_request { inst } -> handle_decision_request t (state t inst) ~src
  | Msg.Decision_full { inst; value } ->
    let s = state t inst in
    if s.decided = None then decide t s value
  | Msg.Heartbeat | Msg.Diffuse _ | Msg.Nack _ | Msg.Decision_tag _ | Msg.Prop_dec _
  | Msg.Ack_diff _ | Msg.Mono_estimate _ | Msg.Mono_decision_tag _ | Msg.To_coord _
  | Msg.Payload_request _ | Msg.Payload_push _ ->
    ()

let rb_deliver t ~proposer ~inst ~round ~value =
  let s = state t inst in
  if s.decided = None then
    match value with
    | Some v -> decide t s v
    | None -> begin
      match Hashtbl.find_opt s.proposals (round, proposer) with
      | Some v -> decide t s v
      | None ->
        (* §3.2: the tag reached us but the proposal did not (possible only
           if the coordinator crashed) — fetch the value explicitly. *)
        send_to_others t (Msg.Decision_request { inst })
    end

let create ~engine ~params ~me ~fd ~send ~broadcast ~rbcast_decision ~on_decide
    ?(obs = Obs.noop) () =
  let t =
    {
      engine;
      params;
      me;
      fd;
      send;
      broadcast;
      rbcast_decision;
      on_decide;
      obs;
      (* Instances are never removed, so the table grows with the run; size it
         for a full report-workload window up front instead of paying a chain
         of rehash copies on the hot path. *)
      instances = Hashtbl.create 4096;
      max_decided = -1;
      catchup_from = 0;
      catchup_timer = None;
    }
  in
  Fd.on_suspect fd (fun suspect -> on_suspicion t suspect);
  t

let decision t ~inst =
  match Hashtbl.find_opt t.instances inst with Some s -> s.decided | None -> None

let rounds_used t ~inst =
  match Hashtbl.find_opt t.instances inst with Some s -> s.round | None -> 0

(* ---- Snapshot ---- *)

module Snap = Snapshot

type cons_data = {
  cd_instances : (int * inst_state) list; (* ascending inst, timers stripped *)
  cd_max_decided : int;
  cd_catchup_from : int;
}

let snapshot ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.consensus.p%d" (t.me + 1)
  in
  let insts =
    Hashtbl.fold
      (fun k s acc -> (k, { s with kick_timer = None; progress_timer = None }) :: acc)
      t.instances []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let decided =
    List.fold_left (fun acc (_, s) -> if s.decided <> None then acc + 1 else acc) 0 insts
  in
  let max_round =
    List.fold_left (fun acc (_, s) -> max acc s.round) 0 insts
  in
  Snap.make ~name ~version:1
    ~data:(Snap.pack { cd_instances = insts; cd_max_decided = t.max_decided;
                       cd_catchup_from = t.catchup_from })
    [
      ("instances", Snap.Int (List.length insts));
      ("decided", Snap.Int decided);
      ("max_decided", Snap.Int t.max_decided);
      ("catchup_from", Snap.Int t.catchup_from);
      ("max_round", Snap.Int max_round);
    ]

let restore ?name t s =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.consensus.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  let (d : cons_data) = Snap.unpack_data s in
  Hashtbl.reset t.instances;
  List.iter (fun (k, st) -> Hashtbl.add t.instances k st) d.cd_instances;
  t.max_decided <- d.cd_max_decided;
  t.catchup_from <- d.cd_catchup_from
(* kick/progress/catchup timers ride the world blob. *)
