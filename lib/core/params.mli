open Repro_sim
open Repro_net

(** Configuration of a replica group.

    Gathers everything the experiments vary or ablate: the wire/CPU cost
    model, the flow-control window, the framework dispatch cost, protocol
    timeouts, and the individual optimizations of both stacks (each can be
    switched off to measure its contribution — the A1/A2 ablations of
    DESIGN.md). Defaults reproduce the paper's configuration. *)

type rbcast_variant =
  | Classic  (** Every process relays on first receipt: n² messages (§3.1). *)
  | Majority
      (** Only ⌊(n-1)/2⌋ designated relayers re-send, assuming a majority of
          correct processes: (n-1)·⌊(n+1)/2⌋ messages (§3.1 optimization). *)

type consensus_variant =
  | Ct_optimized
      (** §3.2: no round-1 estimate phase, rounds advance only on
          suspicion, decisions disseminated as tags. *)
  | Ct_classic
      (** The original Chandra–Toueg algorithm: estimate phase in every
          round, unconditional round cycling with nacks, full-value
          decisions. The baseline the §3.2 optimizations improve on. *)

type modular_opts = {
  consensus_variant : consensus_variant;  (** Which consensus is mounted. *)
  rbcast_variant : rbcast_variant;  (** How decisions are reliably broadcast. *)
  decision_tag_only : bool;
      (** §3.2: send the [DECISION] tag instead of the decided value.
          Ignored by the [Classic] variant, which always sends values. *)
}

type mono_opts = {
  combine_proposal_decision : bool;
      (** §4.1: piggyback decision k on proposal k+1. *)
  piggyback_on_ack : bool;
      (** §4.2: send abcast messages only to the coordinator, on acks. *)
  cheap_decision : bool;
      (** §4.3: disseminate standalone decisions with n-1 plain sends
          instead of reliable broadcast. *)
}

type transport =
  | Tcp_like
      (** The simulated network's native quasi-reliable FIFO channels —
          what TCP gave the paper's stacks. The benchmark setting. *)
  | Lossy of float
      (** Fair-lossy links dropping each copy with the given probability;
          the replicas mount a {!Repro_net.Rchannel} per process to rebuild
          quasi-reliable FIFO channels (sequence numbers, cumulative acks,
          retransmission). Shows the §2.1 assumption being earned rather
          than assumed. *)

type t = {
  n : int;  (** Group size (3 or 7 in the paper). *)
  seed : int;  (** Root random seed for the whole run. *)
  wire : Wire.t;  (** Network and CPU cost model. *)
  topology : Topology.t option;
      (** Per-link latencies; [None] = uniform at [wire.propagation], the
          paper's switched LAN. *)
  window : int;
      (** Flow control: own abcast messages a process may have unordered at
          once. The default makes the measured mean batch size M ≈ 4, the
          value the paper fixes (§5.1). *)
  dispatch_cost : Time.span;
      (** Framework cost per inter-module event (modular stack crossings;
          the monolithic stack pays it only at the network boundary). *)
  round1_kick : Time.span;
      (** §3.3 timeout: a non-coordinator that proposed but saw no round-1
          proposal for this long sends its estimate to wake the
          coordinator. Never fires in good runs. *)
  batch_cap : int;  (** Upper bound on messages per consensus proposal. *)
  transport : transport;  (** How replicas reach each other. *)
  checksums : bool;
      (** Verify payload integrity on receipt (on by default, as TCP's
          checksums were for the paper's stacks): a {!Wire_msg.Tampered}
          copy injected by the message adversary is detected and
          discarded — under [Lossy] transport the {!Repro_net.Rchannel}
          retransmission then recovers it, so corruption degrades to
          loss. With checksums off, tampered copies are processed as if
          genuine (silent corruption; the {!Repro_fault} monitor's
          integrity/agreement invariants are the only net). *)
  batched_hops : bool;
      (** Drive the wire through {!Repro_net.Network}'s batched-hop rings
          (one pump event per busy link) instead of one engine event per
          in-flight copy. Observationally identical either way — the knob
          exists so the equivalence is testable and the speedup
          measurable; leave it on. *)
  modular : modular_opts;
  mono : mono_opts;
}

val default : n:int -> t
(** The paper's configuration for a group of [n] processes, seed 0. *)

val coordinator : t -> round:int -> Pid.t
(** The rotating coordinator: process [(round - 1) mod n]. Round 1 always
    maps to p1, the property §4.1 exploits. *)

val majority : t -> int
(** ⌈(n+1)/2⌉ processes — the quorum used by consensus and by the
    optimized reliable broadcast. *)
