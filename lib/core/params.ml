open Repro_sim
open Repro_net

type rbcast_variant = Classic | Majority

type consensus_variant = Ct_optimized | Ct_classic

type modular_opts = {
  consensus_variant : consensus_variant;
  rbcast_variant : rbcast_variant;
  decision_tag_only : bool;
}

type mono_opts = {
  combine_proposal_decision : bool;
  piggyback_on_ack : bool;
  cheap_decision : bool;
}

type transport = Tcp_like | Lossy of float

type t = {
  n : int;
  seed : int;
  wire : Wire.t;
  topology : Topology.t option;
  window : int;
  dispatch_cost : Time.span;
  round1_kick : Time.span;
  batch_cap : int;
  transport : transport;
  checksums : bool;
  batched_hops : bool;
  modular : modular_opts;
  mono : mono_opts;
}

let default ~n =
  {
    n;
    seed = 0;
    wire = Wire.default;
    topology = None;
    window = 2;
    dispatch_cost = Time.span_us 5;
    round1_kick = Time.span_ms 500;
    batch_cap = 64;
    transport = Tcp_like;
    checksums = true;
    batched_hops = true;
    modular =
      { consensus_variant = Ct_optimized; rbcast_variant = Majority; decision_tag_only = true };
    mono =
      {
        combine_proposal_decision = true;
        piggyback_on_ack = true;
        cheap_decision = true;
      };
  }

let coordinator t ~round =
  if round < 1 then invalid_arg "Params.coordinator: rounds start at 1";
  (round - 1) mod t.n

let majority t = (t.n / 2) + 1
