(** Mutable dense membership sets for (origin, seq) message identities.

    The protocol layers keep two unbounded "have I processed this
    already?" sets — adelivered application messages and rdelivered
    reliable-broadcast envelopes. Both are keyed by an origin process and
    a per-origin sequence number counted densely from 0, which makes a
    per-origin bit vector the natural store: membership and insertion are
    O(1) with no allocation once a row has grown to its working size,
    where the persistent [Set] they replace pays a tree walk and
    rebalance allocation per operation, growing with the run length (see
    PERF.md).

    {2 Determinism obligations}

    - Purely content-driven: the representation depends only on the set
      of identities inserted, never on insertion order, hashing, wall
      time or randomness.
    - Membership-only: the API deliberately has no iteration, so no
      caller can pick up an internal traversal order. *)

type t

val create : n:int -> t
(** An empty table for origins [0 .. n-1]. *)

val mem : t -> origin:int -> seq:int -> bool
(** [false] for any [seq] never added (including negative ones). *)

val add : t -> origin:int -> seq:int -> unit
(** Idempotent. @raise Invalid_argument on negative [seq]. *)

val population : t -> int
(** Number of identities in the table. Content-driven arithmetic — no
    iteration order is exposed. Used by snapshot sections. *)

val assign : from:t -> t -> unit
(** Overwrite [t]'s contents with [from]'s (restore path).
    @raise Invalid_argument if the origin counts differ. *)
