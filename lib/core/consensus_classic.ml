open Repro_sim
open Repro_net
open Repro_fd
module Obs = Repro_obs.Obs

type inst_state = {
  inst : int;
  created_at : Time.t;
  mutable round : int;
  mutable estimate : Batch.t option;
  mutable ts : int;
  mutable started : bool;
  proposals : (int * Pid.t, Batch.t) Hashtbl.t;
  mutable acked_rounds : int list; (* rounds answered with ack OR nack *)
  acks : (int, Pid.t list ref) Hashtbl.t;
  estimates : (int, (Pid.t * (int * Batch.t)) list ref) Hashtbl.t;
  mutable proposed_rounds : int list;
  mutable decided : Batch.t option;
  mutable pending_requesters : Pid.t list;
  mutable progress_timer : Engine.timer option;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  me : Pid.t;
  fd : Fd.t;
  send : dst:Pid.t -> Msg.t -> unit;
  broadcast : Msg.t -> unit;
  rbcast_decision : inst:int -> round:int -> value:Batch.t option -> unit;
  on_decide : inst:int -> Batch.t -> unit;
  obs : Obs.t;
  instances : (int, inst_state) Hashtbl.t;
  mutable max_decided : int;
  mutable catchup_from : int; (* lowest instance not known decided *)
  mutable catchup_timer : Engine.timer option;
}

let coord t ~round = Params.coordinator t.params ~round

let next_unsuspected_round t ~from =
  let rec scan r tries =
    if tries = 0 then from
    else if Fd.is_suspected t.fd (coord t ~round:r) then scan (r + 1) (tries - 1)
    else r
  in
  scan from t.params.Params.n

let state t inst =
  match Hashtbl.find_opt t.instances inst with
  | Some s -> s
  | None ->
    let s =
      {
        inst;
        created_at = Engine.now t.engine;
        round = 0; (* becomes 1 on the first [enter_round] *)
        estimate = None;
        ts = 0;
        started = false;
        proposals = Hashtbl.create 4;
        acked_rounds = [];
        acks = Hashtbl.create 4;
        estimates = Hashtbl.create 4;
        proposed_rounds = [];
        decided = None;
        pending_requesters = [];
        progress_timer = None;
      }
    in
    Hashtbl.add t.instances inst s;
    s

let cancel_timer t slot =
  match slot with Some timer -> Engine.cancel t.engine timer | None -> ()

(* Safety net against permanent decision holes — same mechanism and
   rationale as {!Consensus.arm_catchup}: a message adversary can
   suppress every copy of a decision bound for one process, relays
   included, leaving a decided instance above a hole nobody will
   re-announce. Never armed while decisions arrive in order. *)
let rec arm_catchup t =
  let decided_at inst =
    match Hashtbl.find_opt t.instances inst with
    | Some s -> s.decided <> None
    | None -> false
  in
  while t.catchup_from <= t.max_decided && decided_at t.catchup_from do
    t.catchup_from <- t.catchup_from + 1
  done;
  if t.catchup_timer = None && t.catchup_from <= t.max_decided then
    t.catchup_timer <-
      Some
        (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
             t.catchup_timer <- None;
             let requested = ref 0 in
             let inst = ref t.catchup_from in
             while !inst <= t.max_decided && !requested < 64 do
               if not (decided_at !inst) then begin
                 t.broadcast (Msg.Decision_request { inst = !inst });
                 incr requested
               end;
               incr inst
             done;
             arm_catchup t))

let decide t s value =
  match s.decided with
  | Some _ -> ()
  | None ->
    s.decided <- Some value;
    cancel_timer t s.progress_timer;
    s.progress_timer <- None;
    List.iter
      (fun q -> t.send ~dst:q (Msg.Decision_full { inst = s.inst; value }))
      s.pending_requesters;
    s.pending_requesters <- [];
    Obs.incr t.obs "consensus.decisions";
    if Obs.enabled t.obs then
      Obs.observe_since t.obs "consensus.decide_ms" s.created_at;
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Consensus ~phase:"decide"
          ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst s.round (Batch.size value))
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"decide"
          ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst s.round (Batch.size value))
          ()
      end
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () -> t.on_decide ~inst:s.inst value);
    if s.inst > t.max_decided then t.max_decided <- s.inst;
    arm_catchup t

let reply_decision t s ~dst =
  match s.decided with
  | Some value -> t.send ~dst (Msg.Decision_full { inst = s.inst; value })
  | None -> ()

let record_estimate s ~round ~src ~ts ~value =
  match Hashtbl.find_opt s.estimates round with
  | Some slot -> if not (List.mem_assoc src !slot) then slot := (src, (ts, value)) :: !slot
  | None -> Hashtbl.add s.estimates round (ref [ (src, (ts, value)) ])

let choose_estimate ests =
  let better (p1, (ts1, v1)) (p2, (ts2, v2)) =
    if ts1 <> ts2 then ts1 > ts2
    else if Batch.size v1 <> Batch.size v2 then Batch.size v1 > Batch.size v2
    else p1 < p2
  in
  match ests with
  | [] -> None
  | first :: rest ->
    let _, (_, v) =
      List.fold_left (fun best e -> if better e best then e else best) first rest
    in
    Some v

(* Phase 2: the round's coordinator proposes once it holds a majority of
   estimates (its own included). *)
let rec try_propose t s ~round =
  if
    s.decided = None
    && coord t ~round = t.me
    && not (List.mem round s.proposed_rounds)
  then begin
    let ests =
      match Hashtbl.find_opt s.estimates round with Some slot -> !slot | None -> []
    in
    if List.length ests >= Params.majority t.params then
      match choose_estimate ests with
      | None -> ()
      | Some value ->
        s.proposed_rounds <- round :: s.proposed_rounds;
        Hashtbl.replace s.proposals (round, t.me) value;
        s.estimate <- Some value;
        s.ts <- round;
        Hashtbl.replace s.acks round (ref [ t.me ]);
        Obs.incr t.obs "consensus.proposals";
        let sp =
          if Obs.tracing t.obs then begin
            Obs.event t.obs ~pid:t.me ~layer:`Consensus ~phase:"propose"
              ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst round (Batch.size value))
              ();
            Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"propose"
              ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst round (Batch.size value))
              ()
          end
          else Obs.Span.no_parent
        in
        Obs.with_span_ctx t.obs sp (fun () ->
            t.broadcast (Msg.Propose { inst = s.inst; round; value });
            check_majority t s ~round)
  end

and check_majority t s ~round =
  if s.decided = None && List.mem round s.proposed_rounds then
    match Hashtbl.find_opt s.acks round with
    | Some slot when List.length !slot >= Params.majority t.params -> begin
      match Hashtbl.find_opt s.proposals (round, t.me) with
      | Some value ->
        (* Classical: the full decided value is reliably broadcast; the
           local decision arrives through the rbcast local delivery. *)
        t.rbcast_decision ~inst:s.inst ~round ~value:(Some value)
      | None -> ()
    end
    | Some _ | None -> ()

(* Phase 1: enter a round and send the estimate to its coordinator. *)
and enter_round t s ~round =
  if s.decided = None && round > s.round then begin
    let round = next_unsuspected_round t ~from:round in
    s.round <- round;
    if s.estimate = None then s.estimate <- Some Batch.empty;
    (match s.estimate with
    | Some value ->
      let c = coord t ~round in
      record_estimate s ~round ~src:t.me ~ts:s.ts ~value;
      if c <> t.me then begin
        Obs.incr t.obs "consensus.estimates";
        let sp =
          if Obs.tracing t.obs then
            Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"estimate"
              ~detail:(Printf.sprintf "i%d r%d" s.inst round)
              ()
          else Obs.Span.no_parent
        in
        Obs.with_span_ctx t.obs sp (fun () ->
            t.send ~dst:c (Msg.Estimate { inst = s.inst; round; value; ts = s.ts }))
      end
      else try_propose t s ~round
    | None -> ());
    arm_progress_timer t s
  end

(* Phase 3 refusal: suspect the coordinator, nack, move on. *)
and nack_and_advance t s =
  if s.decided = None && s.round >= 1 && not (List.mem s.round s.acked_rounds) then begin
    s.acked_rounds <- s.round :: s.acked_rounds;
    t.send ~dst:(coord t ~round:s.round) (Msg.Nack { inst = s.inst; round = s.round });
    enter_round t s ~round:(s.round + 1)
  end

and arm_progress_timer t s =
  cancel_timer t s.progress_timer;
  s.progress_timer <-
    Some
      (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
           if s.decided = None && (s.started || s.estimate <> None) then
             if List.mem s.round s.acked_rounds then enter_round t s ~round:(s.round + 1)
             else nack_and_advance t s))

(* ---- Entry points ---- *)

let propose t ~inst value =
  let s = state t inst in
  if s.decided = None && not s.started then begin
    s.started <- true;
    if s.estimate = None then s.estimate <- Some value;
    if s.round = 0 then enter_round t s ~round:1
  end

let handle_estimate t s ~src ~round ~ts ~value =
  if s.decided <> None then reply_decision t s ~dst:src
  else begin
    record_estimate s ~round ~src ~ts ~value;
    (* Participation: an estimate reveals a running instance. *)
    if s.estimate = None then s.estimate <- Some value;
    if s.round = 0 then enter_round t s ~round:1;
    if coord t ~round = t.me then try_propose t s ~round
  end

let handle_propose t s ~src ~round ~value =
  if s.decided <> None then reply_decision t s ~dst:src
  else if src = coord t ~round && not (List.mem round s.acked_rounds) && round >= s.round
  then begin
    if s.round = 0 then s.round <- round;
    if round > s.round then s.round <- round;
    Hashtbl.replace s.proposals (round, src) value;
    s.acked_rounds <- round :: s.acked_rounds;
    if Fd.is_suspected t.fd src then begin
      t.send ~dst:src (Msg.Nack { inst = s.inst; round });
      enter_round t s ~round:(round + 1)
    end
    else begin
      s.estimate <- Some value;
      s.ts <- round;
      Obs.incr t.obs "consensus.acks";
      let sp =
        if Obs.tracing t.obs then
          Obs.span t.obs ~pid:t.me ~layer:`Consensus ~phase:"ack"
            ~detail:(Printf.sprintf "i%d r%d" s.inst round)
            ()
        else Obs.Span.no_parent
      in
      Obs.with_span_ctx t.obs sp (fun () ->
          t.send ~dst:src (Msg.Ack { inst = s.inst; round }));
      (* Classical cycling: the next round starts immediately. *)
      enter_round t s ~round:(round + 1)
    end
  end

let handle_ack t s ~src ~round =
  if s.decided = None && coord t ~round = t.me then begin
    (match Hashtbl.find_opt s.acks round with
    | Some slot -> if not (List.mem src !slot) then slot := src :: !slot
    | None -> Hashtbl.add s.acks round (ref [ src ]));
    check_majority t s ~round
  end

let handle_decision_request t s ~src =
  match s.decided with
  | Some value -> t.send ~dst:src (Msg.Decision_full { inst = s.inst; value })
  | None ->
    if not (List.mem src s.pending_requesters) then
      s.pending_requesters <- src :: s.pending_requesters

let on_suspicion t suspect =
  (* Advance in instance order: the table's hash order must not decide
     which instance's nack (and round change) is scheduled first. *)
  Hashtbl.fold
    (fun _ s acc ->
      if
        s.decided = None && s.round >= 1
        && coord t ~round:s.round = suspect
        && not (List.mem s.round s.acked_rounds)
      then s :: acc
      else acc)
    t.instances []
  |> List.sort (fun a b -> compare a.inst b.inst)
  |> List.iter (fun s -> nack_and_advance t s)

let receive t ~src msg =
  match msg with
  | Msg.Estimate { inst; round; value; ts } ->
    handle_estimate t (state t inst) ~src ~round ~ts ~value
  | Msg.Propose { inst; round; value } ->
    handle_propose t (state t inst) ~src ~round ~value
  | Msg.Ack { inst; round } -> handle_ack t (state t inst) ~src ~round
  | Msg.Nack _ ->
    (* In the event-driven rendering the coordinator never blocks on a
       majority of replies, so a nack needs no action; it exists to match
       the classical protocol's message pattern. *)
    ()
  | Msg.Decision_request { inst } -> handle_decision_request t (state t inst) ~src
  | Msg.Decision_full { inst; value } ->
    let s = state t inst in
    if s.decided = None then decide t s value
  | Msg.New_round { inst; round } ->
    (* Solicitations are an optimized-variant mechanism; treat as a hint to
       catch up. *)
    let s = state t inst in
    if s.decided = None && round > s.round then enter_round t s ~round
  | Msg.Heartbeat | Msg.Diffuse _ | Msg.Decision_tag _ | Msg.Prop_dec _ | Msg.Ack_diff _
  | Msg.Mono_estimate _ | Msg.Mono_decision_tag _ | Msg.To_coord _
  | Msg.Payload_request _ | Msg.Payload_push _ ->
    ()

let rb_deliver t ~proposer ~inst ~round ~value =
  let s = state t inst in
  if s.decided = None then
    match value with
    | Some v -> decide t s v
    | None -> begin
      match Hashtbl.find_opt s.proposals (round, proposer) with
      | Some v -> decide t s v
      | None -> t.broadcast (Msg.Decision_request { inst })
    end

let create ~engine ~params ~me ~fd ~send ~broadcast ~rbcast_decision ~on_decide
    ?(obs = Obs.noop) () =
  let t =
    {
      engine;
      params;
      me;
      fd;
      send;
      broadcast;
      rbcast_decision;
      on_decide;
      obs;
      (* Instances are never removed, so the table grows with the run; size it
         for a full report-workload window up front instead of paying a chain
         of rehash copies on the hot path. *)
      instances = Hashtbl.create 4096;
      max_decided = -1;
      catchup_from = 0;
      catchup_timer = None;
    }
  in
  Fd.on_suspect fd (fun suspect -> on_suspicion t suspect);
  t

let decision t ~inst =
  match Hashtbl.find_opt t.instances inst with Some s -> s.decided | None -> None

let rounds_used t ~inst =
  match Hashtbl.find_opt t.instances inst with Some s -> s.round | None -> 0

(* ---- Snapshot ---- *)

module Snap = Snapshot

type cons_data = {
  cd_instances : (int * inst_state) list; (* ascending inst, timers stripped *)
  cd_max_decided : int;
  cd_catchup_from : int;
}

let snapshot ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.consensus_classic.p%d" (t.me + 1)
  in
  let insts =
    Hashtbl.fold
      (fun k s acc -> (k, { s with progress_timer = None }) :: acc)
      t.instances []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let decided =
    List.fold_left (fun acc (_, s) -> if s.decided <> None then acc + 1 else acc) 0 insts
  in
  let max_round = List.fold_left (fun acc (_, s) -> max acc s.round) 0 insts in
  Snap.make ~name ~version:1
    ~data:(Snap.pack { cd_instances = insts; cd_max_decided = t.max_decided;
                       cd_catchup_from = t.catchup_from })
    [
      ("instances", Snap.Int (List.length insts));
      ("decided", Snap.Int decided);
      ("max_decided", Snap.Int t.max_decided);
      ("catchup_from", Snap.Int t.catchup_from);
      ("max_round", Snap.Int max_round);
    ]

let restore ?name t s =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.consensus_classic.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  let (d : cons_data) = Snap.unpack_data s in
  Hashtbl.reset t.instances;
  List.iter (fun (k, st) -> Hashtbl.add t.instances k st) d.cd_instances;
  t.max_decided <- d.cd_max_decided;
  t.catchup_from <- d.cd_catchup_from
(* progress and catch-up timers ride the world blob. *)
