type t = {
  window : int;
  mutable in_flight : int;
  mutable on_space : unit -> unit;
}

let create ~window =
  if window < 1 then invalid_arg "Flow_control.create: window must be >= 1";
  { window; in_flight = 0; on_space = ignore }

let has_room t = t.in_flight < t.window

let acquire t =
  if not (has_room t) then invalid_arg "Flow_control.acquire: window full";
  t.in_flight <- t.in_flight + 1

let release t =
  if t.in_flight > 0 then begin
    t.in_flight <- t.in_flight - 1;
    t.on_space ()
  end

let in_flight t = t.in_flight
let set_on_space t f = t.on_space <- f

let snapshot ~name t =
  Repro_sim.Snapshot.make ~name ~version:1
    [
      ("window", Repro_sim.Snapshot.Int t.window);
      ("in_flight", Repro_sim.Snapshot.Int t.in_flight);
    ]

let restore ~name t s =
  Repro_sim.Snapshot.check s ~name ~version:1;
  if Repro_sim.Snapshot.get_int s "window" <> t.window then
    raise
      (Repro_sim.Snapshot.Codec_error
         (name ^ ": snapshot taken with a different window size"));
  t.in_flight <- Repro_sim.Snapshot.get_int s "in_flight"
