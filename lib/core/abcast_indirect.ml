open Repro_sim
open Repro_net

module L = (val Logs.src_log Log.abcast)
module Obs = Repro_obs.Obs

type consensus_service = { propose : inst:int -> Batch.t -> unit }

module Id_tbl = Hashtbl.Make (struct
  type t = App_msg.id

  let equal = App_msg.equal_id
  let hash (id : App_msg.id) = Hashtbl.hash (id.App_msg.origin, id.App_msg.seq)
end)

type t = {
  engine : Engine.t;
  params : Params.t;
  me : Pid.t;
  diffuse : App_msg.t -> unit;
  send : dst:Pid.t -> Msg.t -> unit;
  broadcast : Msg.t -> unit;
  consensus : consensus_service;
  on_adeliver : App_msg.t -> unit;
  obs : Obs.t;
  payloads : App_msg.t Id_tbl.t; (* everything diffused to us, incl. own *)
  delivered : Id_table.t;
  mutable pending : App_msg.Id_set.t; (* ids known but not yet ordered *)
  mutable ordered : App_msg.Id_set.t; (* ids in buffered decisions, undelivered *)
  mutable next_decide : int;
  mutable proposed_up_to : int;
  decisions : (int, Batch.t) Hashtbl.t;
  mutable delivered_count : int;
  mutable fetch_timer : Engine.timer option;
}

(* An identifier travels as a zero-size message: the wire model then
   prices it at exactly the 12 identifier bytes. *)
let id_only (id : App_msg.id) =
  App_msg.make ~origin:id.App_msg.origin ~seq:id.App_msg.seq ~size:0
    ~abcast_at:Time.zero

let create ~engine ~params ~me ~diffuse ~send ~broadcast ~consensus ~on_adeliver
    ?(obs = Obs.noop) () =
  {
    engine;
    params;
    me;
    diffuse;
    send;
    broadcast;
    consensus;
    on_adeliver;
    obs;
    payloads = Id_tbl.create 1024;
    delivered = Id_table.create ~n:params.Params.n;
    pending = App_msg.Id_set.empty;
    ordered = App_msg.Id_set.empty;
    next_decide = 0;
    proposed_up_to = -1;
    decisions = Hashtbl.create 16;
    delivered_count = 0;
    fetch_timer = None;
  }

let maybe_propose t =
  if t.proposed_up_to < t.next_decide && not (App_msg.Id_set.is_empty t.pending) then begin
    let ids =
      App_msg.Id_set.elements t.pending
      |> List.filteri (fun i _ -> i < t.params.Params.batch_cap)
    in
    t.proposed_up_to <- t.next_decide;
    L.debug (fun m ->
        m "%a propose instance %d (%d ids, indirect)" Pid.pp t.me t.next_decide
          (List.length ids));
    let sp =
      if Obs.tracing t.obs then
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"propose"
          ~detail:(Printf.sprintf "i%d (%d ids)" t.next_decide (List.length ids))
          ()
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () ->
        t.consensus.propose ~inst:t.next_decide (Batch.of_list (List.map id_only ids)))
  end

let delivered_mem t (id : App_msg.id) =
  Id_table.mem t.delivered ~origin:id.App_msg.origin ~seq:id.App_msg.seq

let missing_payloads t batch =
  List.filter_map
    (fun (m : App_msg.t) ->
      if Id_tbl.mem t.payloads m.id || delivered_mem t m.id then None else Some m.id)
    (Batch.to_list batch)

let cancel_fetch t =
  match t.fetch_timer with
  | Some timer ->
    Engine.cancel t.engine timer;
    t.fetch_timer <- None
  | None -> ()

let rec arm_fetch t ids =
  cancel_fetch t;
  (* Grace period: the diffusion is usually just in flight. Ask everyone if
     it does not show up, and keep asking — the request or the answer may
     race a crash. If every process holding a decided payload is faulty,
     delivery blocks (consistently, at every correct process): the same
     hazard class as the §3.3 plain-channel optimization; [12] avoids it by
     diffusing reliably before proposing. *)
  t.fetch_timer <-
    Some
      (Engine.schedule_after t.engine (Time.span_ms 20) (fun () ->
           t.fetch_timer <- None;
           let still_missing =
             List.filter (fun id -> not (Id_tbl.mem t.payloads id)) ids
           in
           if still_missing <> [] then begin
             L.debug (fun m ->
                 m "%a fetch %d missing payloads" Pid.pp t.me (List.length still_missing));
             t.broadcast (Msg.Payload_request { ids = still_missing });
             arm_fetch t still_missing
           end))

let adeliver_batch t batch =
  List.iter
    (fun (m : App_msg.t) ->
      if not (delivered_mem t m.id) then begin
        match Id_tbl.find_opt t.payloads m.id with
        | Some payload ->
          Id_table.add t.delivered ~origin:m.id.App_msg.origin
            ~seq:m.id.App_msg.seq;
          t.ordered <- App_msg.Id_set.remove m.id t.ordered;
          t.delivered_count <- t.delivered_count + 1;
          Obs.incr t.obs "abcast.adelivers";
          if Obs.enabled t.obs then
            Obs.observe_since t.obs "abcast.e2e_ms" payload.App_msg.abcast_at;
          t.on_adeliver payload
        | None ->
          (* Unreachable: the caller checked [missing_payloads] first. *)
          assert false
      end)
    (Batch.to_list batch);
  t.pending <-
    App_msg.Id_set.filter (fun id -> not (delivered_mem t id)) t.pending

let rec drain t =
  match Hashtbl.find_opt t.decisions t.next_decide with
  | None -> ()
  | Some batch -> (
    match missing_payloads t batch with
    | [] ->
      Hashtbl.remove t.decisions t.next_decide;
      cancel_fetch t;
      L.debug (fun m ->
          m "%a adeliver instance %d (%d msgs, indirect)" Pid.pp t.me t.next_decide
            (Batch.size batch));
      let sp =
        if Obs.tracing t.obs then begin
          Obs.event t.obs ~pid:t.me ~layer:`Abcast ~phase:"adeliver"
            ~detail:(Printf.sprintf "i%d (%d msgs)" t.next_decide (Batch.size batch))
            ();
          Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"adeliver"
            ~detail:(Printf.sprintf "i%d (%d msgs)" t.next_decide (Batch.size batch))
            ()
        end
        else Obs.Span.no_parent
      in
      Obs.with_span_ctx t.obs sp (fun () -> adeliver_batch t batch);
      t.next_decide <- t.next_decide + 1;
      drain t
    | missing -> if t.fetch_timer = None then arm_fetch t missing)

let note_payload t (m : App_msg.t) =
  if not (Id_tbl.mem t.payloads m.id) then begin
    Id_tbl.replace t.payloads m.id m;
    if (not (delivered_mem t m.id)) && not (App_msg.Id_set.mem m.id t.ordered)
    then t.pending <- App_msg.Id_set.add m.id t.pending;
    (* A blocked decision may now be complete. *)
    drain t;
    maybe_propose t
  end

let abcast t m =
  if not (delivered_mem t m.App_msg.id) then begin
    Obs.incr t.obs "abcast.abcasts";
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Abcast ~phase:"abcast"
          ~detail:
            (Printf.sprintf "m %d/%d" (m.App_msg.id.App_msg.origin + 1)
               m.App_msg.id.App_msg.seq)
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"abcast"
          ~detail:
            (Printf.sprintf "m %d/%d" (m.App_msg.id.App_msg.origin + 1)
               m.App_msg.id.App_msg.seq)
          ()
      end
      else Obs.Span.no_parent
    in
    (* Diffuse strictly before [note_payload], whose embedded
       [maybe_propose] may put the identifier into a consensus proposal.
       Channels are FIFO per link, so any process that sees a proposal
       naming this id has already received the payload copy sent here —
       otherwise a sender crashing between proposing and diffusing leaves
       a decided identifier whose payload died with it, blocking every
       correct process (the §3.3 hazard; [12] diffuses before proposing
       for exactly this reason). *)
    Obs.with_span_ctx t.obs sp (fun () ->
        t.diffuse m;
        note_payload t m;
        maybe_propose t)
  end

let on_diffuse t m = note_payload t m

let on_payload_request t ~src ids =
  List.iter
    (fun id ->
      match Id_tbl.find_opt t.payloads id with
      | Some m -> t.send ~dst:src (Msg.Payload_push m)
      | None -> ())
    ids

let on_payload_push t m = note_payload t m

let on_decide t ~inst batch =
  if inst >= t.next_decide && not (Hashtbl.mem t.decisions inst) then begin
    Hashtbl.replace t.decisions inst batch;
    (* The decided identifiers are ordered now; never re-propose them. *)
    List.iter
      (fun (m : App_msg.t) ->
        t.pending <- App_msg.Id_set.remove m.id t.pending;
        if not (delivered_mem t m.id) then
          t.ordered <- App_msg.Id_set.add m.id t.ordered)
      (Batch.to_list batch);
    drain t;
    maybe_propose t
  end

let next_instance t = t.next_decide
let delivered_count t = t.delivered_count

let blocked_on_payloads t =
  match Hashtbl.find_opt t.decisions t.next_decide with
  | Some batch -> List.length (missing_payloads t batch)
  | None -> 0

(* ---- Snapshot ---- *)

module Snap = Repro_sim.Snapshot

type ab_data = {
  ad_payloads : (App_msg.id * App_msg.t) list; (* ascending identity *)
  ad_delivered : Id_table.t;
  ad_pending : App_msg.Id_set.t;
  ad_ordered : App_msg.Id_set.t;
  ad_next_decide : int;
  ad_proposed_up_to : int;
  ad_decisions : (int * Batch.t) list; (* ascending inst *)
  ad_delivered_count : int;
}

let snapshot ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.abcast_indirect.p%d" (t.me + 1)
  in
  let payloads =
    Id_tbl.fold (fun id m acc -> (id, m) :: acc) t.payloads []
    |> List.sort (fun (a, _) (b, _) -> App_msg.compare_id a b)
  in
  let decisions =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.decisions []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Snap.make ~name ~version:1
    ~data:
      (Snap.pack
         {
           ad_payloads = payloads;
           ad_delivered = t.delivered;
           ad_pending = t.pending;
           ad_ordered = t.ordered;
           ad_next_decide = t.next_decide;
           ad_proposed_up_to = t.proposed_up_to;
           ad_decisions = decisions;
           ad_delivered_count = t.delivered_count;
         })
    [
      ("next_decide", Snap.Int t.next_decide);
      ("proposed_up_to", Snap.Int t.proposed_up_to);
      ("delivered_count", Snap.Int t.delivered_count);
      ("known_payloads", Snap.Int (List.length payloads));
      ("pending_ids", Snap.Int (App_msg.Id_set.cardinal t.pending));
      ("ordered_ids", Snap.Int (App_msg.Id_set.cardinal t.ordered));
      ("buffered_decisions", Snap.Int (List.length decisions));
    ]

let restore ?name t s =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.abcast_indirect.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  let (d : ab_data) = Snap.unpack_data s in
  Id_tbl.reset t.payloads;
  List.iter (fun (id, m) -> Id_tbl.add t.payloads id m) d.ad_payloads;
  Id_table.assign ~from:d.ad_delivered t.delivered;
  t.pending <- d.ad_pending;
  t.ordered <- d.ad_ordered;
  t.next_decide <- d.ad_next_decide;
  t.proposed_up_to <- d.ad_proposed_up_to;
  Hashtbl.reset t.decisions;
  List.iter (fun (k, v) -> Hashtbl.add t.decisions k v) d.ad_decisions;
  t.delivered_count <- d.ad_delivered_count
(* The identifier-fetch timer rides the world blob. *)
