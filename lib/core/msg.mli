open Repro_net

(** Wire messages of both atomic broadcast stacks.

    One closed variant covers the modular stack (§3), the monolithic stack
    (§4) and the failure detector, so a whole replica exchanges a single
    message type over the simulated network. Each stack uses its own
    constructors; nothing is shared between them except [Heartbeat] and the
    decision-recovery pair.

    {!payload_bytes} is the serialization model: it charges each message
    its protocol header plus the payload bytes it carries, making measured
    traffic directly comparable with the byte counts of §5.2.2. *)

type rb_meta = { rb_origin : Pid.t; rb_seq : int }
(** Reliable-broadcast envelope: originator and per-originator sequence
    number, used for duplicate suppression by relays. *)

type t =
  | Heartbeat  (** Failure-detector beacon. *)
  (* ------ Modular stack (§3) ------ *)
  | Diffuse of App_msg.t
      (** §3.3 optimized dissemination: an abcast message sent to all over
          plain quasi-reliable channels. *)
  | Estimate of { inst : int; round : int; value : Batch.t; ts : int }
      (** Chandra–Toueg estimate, carrying the lock timestamp. Sent in
          rounds > 1, and in round 1 only as the §3.3 timeout kick. *)
  | Propose of { inst : int; round : int; value : Batch.t }
      (** Coordinator's proposal for a round. *)
  | Ack of { inst : int; round : int }  (** Accepts the round's proposal. *)
  | Nack of { inst : int; round : int }
      (** Refuses a round after suspecting its coordinator. Only the
          classical (non-optimized) consensus variant sends nacks; the
          optimized variant's coordinators are released by round
          advancement instead (§3.2). *)
  | Decision_tag of { meta : rb_meta; inst : int; round : int; value : Batch.t option }
      (** §3.2 optimized decision: the tag [DECISION] instead of the value,
          reliably broadcast. Receivers decide the proposal they stored for
          [(inst, round)] as proposed by [meta.rb_origin] — the tag is only
          valid against that exact proposal, which is why the envelope
          origin doubles as the proposer identity. [value] is [Some] only
          in the [decision_tag_only = false] ablation. *)
  | New_round of { inst : int; round : int }
      (** Round solicitation: a coordinator that received an estimate for a
          round it cannot yet complete asks everyone to join that round.
          Restores liveness when a false suspicion strands one process in a
          higher round; never sent in good runs. Used by both stacks. *)
  (* ------ Monolithic stack (§4) ------ *)
  | Prop_dec of {
      inst : int;
      round : int;
      proposal : Batch.t;
      decided : (int * int) option;
    }
      (** §4.1: proposal for [inst] combined with the decision notification
          for a previous instance, as a [(instance, round)] tag — the
          receiver decides the proposal it stored for that instance and
          round as proposed by the sender. *)
  | Ack_diff of { inst : int; round : int; piggyback : App_msg.t list }
      (** §4.2: ack carrying the sender's fresh abcast messages, which thus
          travel only to the coordinator. *)
  | Mono_estimate of {
      inst : int;
      round : int;
      value : Batch.t;
      ts : int;
      piggyback : App_msg.t list;
    }
      (** Estimate after a coordinator change, re-piggybacking every own
          message not yet adelivered (§4.2). *)
  | Mono_decision_tag of { inst : int; round : int }
      (** §4.3: standalone decision as a bare tag, sent point-to-point to
          all (n-1 messages, no relaying) when the pipeline has no next
          proposal to combine with. In the [cheap_decision = false]
          ablation the stack uses {!Decision_tag} (reliable broadcast)
          instead. *)
  | To_coord of App_msg.t
      (** An abcast message sent directly (and only) to the coordinator
          when no ack is pending to piggyback it on. *)
  (* ------ Indirect stack (related work [12], Ekwall & Schiper 2006) ------ *)
  | Payload_request of { ids : App_msg.id list }
      (** A process holds a decision naming identifiers whose payloads it
          has not received (the diffuser crashed mid-send): ask everyone. *)
  | Payload_push of App_msg.t
      (** Answer to a {!Payload_request}: the payload itself. *)
  (* ------ Shared recovery path (both stacks, non-good runs only) ------ *)
  | Decision_request of { inst : int }
      (** Sent by a process holding a decision tag without the matching
          proposal (possible only if the coordinator crashed, cf. §3.2). *)
  | Decision_full of { inst : int; value : Batch.t }
      (** Full decided value, answering a {!Decision_request} or closing a
          recovery round. *)

val payload_bytes : t -> int
(** Serialized size of the message in bytes (protocol headers + payload). *)

val kind : t -> string
(** Constructor name, for traces and per-kind accounting. *)

val layer : t -> Repro_obs.Obs.layer
(** The protocol layer the message belongs to, for the per-layer traffic
    counters: [Diffuse] is abcast dissemination; [Estimate], [Propose],
    [Ack], [Nack], [New_round] and the decision-recovery pair are
    consensus; [Decision_tag] is reliable broadcast; every monolithic and
    indirect-stack constructor bills to [`Abcast] (the monolithic stack has
    no internal layering — that is its point); [Heartbeat] is [`Net]. *)

val pp : t Fmt.t
(** One-line rendering with instance/round and batch summaries. *)
