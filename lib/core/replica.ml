open Repro_sim
open Repro_net
open Repro_fd
open Repro_framework
module Obs = Repro_obs.Obs

type kind = Modular | Monolithic | Indirect

type fd_mode =
  [ `Good_run
  | `Heartbeat of Heartbeat_fd.config
  | `Chen of Chen_fd.config
  | `Oracle of Oracle_fd.t ]

(* The consensus service as mounted in the modular stack: either the
   optimized or the classical Chandra-Toueg variant, behind one face. *)
type consensus_impl = {
  c_propose : inst:int -> Batch.t -> unit;
  c_receive : src:Pid.t -> Msg.t -> unit;
  c_rb_deliver : proposer:Pid.t -> inst:int -> round:int -> value:Batch.t option -> unit;
  c_snapshot : unit -> Snapshot.section;
  c_restore : Snapshot.section -> unit;
}

type stack_impl =
  | Modular_stack of {
      abcast : Abcast_modular.t;
      consensus : consensus_impl;
      rbcast : (int * int * Batch.t option) Rbcast.t;
      port_net_abcast : App_msg.t Event_bus.port;
      port_net_consensus : (Pid.t * Msg.t) Event_bus.port;
      port_net_rbcast : (Pid.t * Msg.rb_meta * (int * int * Batch.t option)) Event_bus.port;
    }
  | Monolithic_stack of {
      mono : Abcast_monolithic.t;
      port_net : (Pid.t * Msg.t) Event_bus.port;
    }
  | Indirect_stack of {
      abcast : Abcast_indirect.t;
      consensus : consensus_impl;
      rbcast : (int * int * Batch.t option) Rbcast.t;
      port_net_abcast : App_msg.t Event_bus.port;
      port_net_consensus : (Pid.t * Msg.t) Event_bus.port;
      port_net_rbcast : (Pid.t * Msg.rb_meta * (int * int * Batch.t option)) Event_bus.port;
    }

type t = {
  me : Pid.t;
  kind : kind;
  params : Params.t;
  net : Wire_msg.t Network.t;
  stack : Stack.t;
  flow : Flow_control.t;
  offers : int Queue.t; (* sizes of not-yet-admitted abcast offers *)
  mutable next_seq : int;
  mutable offered : int;
  mutable admitted : int;
  mutable delivered_count : int;
  mutable rev_deliveries : App_msg.id list;
  record_deliveries : bool;
  on_adeliver : App_msg.t -> unit;
  obs : Obs.t;
  mutable heartbeat : Heartbeat_fd.t option;
  mutable chen : Chen_fd.t option;
  mutable rchannel : Msg.t Rchannel.t option;
  mutable crashed : bool;
  mutable impl : stack_impl option; (* set once at the end of [create] *)
}

let me t = t.me
let kind t = t.kind
let offered t = t.offered
let admitted t = t.admitted
let delivered_count t = t.delivered_count

let instances_decided t =
  match t.impl with
  | Some (Modular_stack s) -> Abcast_modular.next_instance s.abcast
  | Some (Monolithic_stack s) -> Abcast_monolithic.decided_instances s.mono
  | Some (Indirect_stack s) -> Abcast_indirect.next_instance s.abcast
  | None -> 0

let deliveries t = List.rev t.rev_deliveries
let queued_offers t = Queue.length t.offers
let stack t = t.stack

let engine t = Network.engine t.net

let handle_adeliver t m =
  t.delivered_count <- t.delivered_count + 1;
  if t.record_deliveries then t.rev_deliveries <- m.App_msg.id :: t.rev_deliveries;
  (* The App/adeliver span is the chain terminus the critical-path
     analysis looks for: one per delivered message, parented to the
     instance adeliver that released it. *)
  let sp =
    if Obs.tracing t.obs then begin
      Obs.event t.obs ~pid:t.me ~layer:`App ~phase:"adeliver"
        ~detail:
          (Printf.sprintf "m %d/%d (%d B)" (m.App_msg.id.App_msg.origin + 1)
             m.App_msg.id.App_msg.seq m.App_msg.size)
        ();
      Obs.span t.obs ~pid:t.me ~layer:`App ~phase:"adeliver"
        ~detail:
          (Printf.sprintf "m %d/%d" (m.App_msg.id.App_msg.origin + 1)
             m.App_msg.id.App_msg.seq)
        ()
    end
    else Obs.Span.no_parent
  in
  Obs.with_span_ctx t.obs sp (fun () ->
      if Pid.equal m.App_msg.id.App_msg.origin t.me then Flow_control.release t.flow;
      t.on_adeliver m)

let stack_abcast t m =
  match t.impl with
  | Some (Modular_stack s) -> Abcast_modular.abcast s.abcast m
  | Some (Monolithic_stack s) -> Abcast_monolithic.abcast s.mono m
  | Some (Indirect_stack s) -> Abcast_indirect.abcast s.abcast m
  | None -> assert false

let rec admit_offers t =
  if (not t.crashed) && (not (Queue.is_empty t.offers)) && Flow_control.has_room t.flow
  then begin
    let size = Queue.pop t.offers in
    Flow_control.acquire t.flow;
    let m =
      App_msg.make ~origin:t.me ~seq:t.next_seq ~size ~abcast_at:(Engine.now (engine t))
    in
    t.next_seq <- t.next_seq + 1;
    t.admitted <- t.admitted + 1;
    (* Root (in an idle system) of the message's causal chain; when the
       admission was unblocked by a delivery freeing a window slot, the
       chain truthfully extends that delivery's. *)
    let sp =
      if Obs.tracing t.obs then
        Obs.span t.obs ~pid:t.me ~layer:`App ~phase:"publish"
          ~detail:(Printf.sprintf "m %d/%d (%d B)" (t.me + 1) m.App_msg.id.App_msg.seq size)
          ()
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () -> stack_abcast t m);
    admit_offers t
  end

let abcast t ~size =
  if not t.crashed then begin
    t.offered <- t.offered + 1;
    Queue.push size t.offers;
    admit_offers t
  end

let crash t =
  t.crashed <- true;
  Queue.clear t.offers;
  (match t.heartbeat with Some hb -> Heartbeat_fd.stop hb | None -> ());
  (match t.chen with Some cd -> Chen_fd.stop cd | None -> ());
  (match t.rchannel with Some ch -> Rchannel.halt ch | None -> ());
  Network.crash t.net t.me

(* ---- Wiring ---- *)

let create ~kind ~params ~net ~me ?(fd_mode = `Good_run) ?(record_deliveries = true)
    ?(on_adeliver = ignore) ?(on_tamper = fun ~detected:_ -> ()) ?(obs = Obs.noop) () =
  let cpu = Network.cpu net me in
  let stack = Stack.create ~cpu ~dispatch_cost:params.Params.dispatch_cost in
  let t =
    {
      me;
      kind;
      params;
      net;
      stack;
      flow = Flow_control.create ~window:params.Params.window;
      offers = Queue.create ();
      next_seq = 0;
      offered = 0;
      admitted = 0;
      delivered_count = 0;
      rev_deliveries = [];
      record_deliveries;
      on_adeliver;
      obs;
      heartbeat = None;
      chen = None;
      rchannel = None;
      crashed = false;
      impl = None;
    }
  in
  Flow_control.set_on_space t.flow (fun () -> admit_offers t);
  (* Protocol messages travel either directly over the quasi-reliable
     network or through a reliable channel rebuilt over lossy links,
     depending on the configured transport. [deliver_ref] is the
     demultiplexer into the mounted stack, installed below once the stack
     exists. *)
  let deliver_ref = ref (fun ~src:_ (_ : Msg.t) -> ()) in
  let send, broadcast =
    match params.Params.transport with
    | Params.Tcp_like ->
      ( (fun ~dst msg -> Network.send net ~src:me ~dst (Wire_msg.Plain msg)),
        fun msg -> Network.send_to_others net ~src:me (Wire_msg.Plain msg) )
    | Params.Lossy _ ->
      let channel =
        Rchannel.create (engine t) ~me ~n:params.Params.n
          ~send_raw:(fun ~dst frame ->
            Network.send net ~src:me ~dst (Wire_msg.Frame frame))
          ~deliver:(fun ~src msg -> !deliver_ref ~src msg)
          ~obs ()
      in
      t.rchannel <- Some channel;
      ( (fun ~dst msg -> Rchannel.send channel ~dst msg),
        fun msg ->
          List.iter
            (fun dst -> Rchannel.send channel ~dst msg)
            (Pid.others ~n:params.Params.n me) )
  in
  let fd =
    match fd_mode with
    | `Good_run -> Fd.never_suspects
    | `Oracle oracle -> Oracle_fd.fd oracle
    | `Heartbeat config ->
      (* Heartbeats bypass the reliable channel: a retransmitted stale
         heartbeat carries no information, and detectors are loss-tolerant
         by construction. *)
      let raw_heartbeat ~dst =
        Network.send net ~src:me ~dst (Wire_msg.Plain Msg.Heartbeat)
      in
      let hb =
        Heartbeat_fd.create (engine t) config ~n:params.Params.n ~me
          ~send_heartbeat:raw_heartbeat
      in
      t.heartbeat <- Some hb;
      Heartbeat_fd.fd hb
    | `Chen config ->
      let raw_heartbeat ~dst =
        Network.send net ~src:me ~dst (Wire_msg.Plain Msg.Heartbeat)
      in
      let cd =
        Chen_fd.create (engine t) config ~n:params.Params.n ~me
          ~send_heartbeat:raw_heartbeat
      in
      t.chen <- Some cd;
      Chen_fd.fd cd
  in
  let bus = Stack.bus stack in
  (* The consensus module of a composed stack, in the configured variant. *)
  let make_consensus ~rbcast_decision ~on_decide =
    match params.Params.modular.Params.consensus_variant with
    | Params.Ct_optimized ->
      let c =
        Consensus.create ~engine:(engine t) ~params ~me ~fd ~send ~broadcast
          ~rbcast_decision ~on_decide ~obs ()
      in
      {
        c_propose = (fun ~inst value -> Consensus.propose c ~inst value);
        c_receive = (fun ~src msg -> Consensus.receive c ~src msg);
        c_rb_deliver =
          (fun ~proposer ~inst ~round ~value ->
            Consensus.rb_deliver c ~proposer ~inst ~round ~value);
        c_snapshot = (fun () -> Consensus.snapshot c);
        c_restore = (fun s -> Consensus.restore c s);
      }
    | Params.Ct_classic ->
      let c =
        Consensus_classic.create ~engine:(engine t) ~params ~me ~fd ~send ~broadcast
          ~rbcast_decision ~on_decide ~obs ()
      in
      {
        c_propose = (fun ~inst value -> Consensus_classic.propose c ~inst value);
        c_receive = (fun ~src msg -> Consensus_classic.receive c ~src msg);
        c_rb_deliver =
          (fun ~proposer ~inst ~round ~value ->
            Consensus_classic.rb_deliver c ~proposer ~inst ~round ~value);
        c_snapshot = (fun () -> Consensus_classic.snapshot c);
        c_restore = (fun s -> Consensus_classic.restore c s);
      }
  in
  let impl =
    match kind with
    | Monolithic ->
      Stack.mount stack
        {
          Stack.name = "ABcast+";
          description = "monolithic atomic broadcast (consensus and rbcast merged, \xc2\xa74)";
        };
      let mono =
        Abcast_monolithic.create ~engine:(engine t) ~params ~me ~fd ~send ~broadcast
          ~on_adeliver:(fun m -> handle_adeliver t m)
          ~obs ()
      in
      let port_net = Event_bus.port bus "net->abcast+" in
      Event_bus.subscribe port_net (fun (src, msg) ->
          Abcast_monolithic.receive mono ~src msg);
      Monolithic_stack { mono; port_net }
    | Modular ->
      Stack.mount stack
        { Stack.name = "ABcast"; description = "atomic broadcast by reduction (\xc2\xa73.3)" };
      Stack.mount stack
        { Stack.name = "Consensus"; description = "optimized Chandra-Toueg (\xc2\xa73.2)" };
      Stack.mount stack
        { Stack.name = "RBcast"; description = "reliable broadcast (\xc2\xa73.1)" };
      (* Ports between microprotocols: every signal crossing a module
         boundary is an event-bus emission, charged the dispatch cost. *)
      let port_propose = Event_bus.port bus "abcast->consensus.propose" in
      let port_decide = Event_bus.port bus "consensus->abcast.decide" in
      let port_rbcast = Event_bus.port bus "consensus->rbcast.rbcast" in
      let port_rdeliver = Event_bus.port bus "rbcast->consensus.rdeliver" in
      let port_net_abcast = Event_bus.port bus "net->abcast" in
      let port_net_consensus = Event_bus.port bus "net->consensus" in
      let port_net_rbcast = Event_bus.port bus "net->rbcast" in
      let rbcast =
        Rbcast.create ~me ~n:params.Params.n
          ~variant:params.Params.modular.Params.rbcast_variant
          ~broadcast:(fun ~meta (inst, round, value) ->
            broadcast (Msg.Decision_tag { meta; inst; round; value }))
          ~deliver:(fun ~meta payload ->
            Event_bus.emit port_rdeliver (meta, payload))
          ~obs ()
      in
      let rbcast_decision ~inst ~round ~value =
        Event_bus.emit port_rbcast (inst, round, value)
      in
      let on_decide ~inst value = Event_bus.emit port_decide (inst, value) in
      let consensus = make_consensus ~rbcast_decision ~on_decide in
      let abcast =
        Abcast_modular.create ~params ~me
          ~diffuse:(fun m -> broadcast (Msg.Diffuse m))
          ~consensus:
            {
              Abcast_modular.propose =
                (fun ~inst value -> Event_bus.emit port_propose (inst, value));
            }
          ~on_adeliver:(fun m -> handle_adeliver t m)
          ~obs ()
      in
      Event_bus.subscribe port_propose (fun (inst, value) ->
          consensus.c_propose ~inst value);
      Event_bus.subscribe port_decide (fun (inst, value) ->
          Abcast_modular.on_decide abcast ~inst value);
      Event_bus.subscribe port_rbcast (fun payload -> Rbcast.rbcast rbcast payload);
      Event_bus.subscribe port_rdeliver (fun (meta, (inst, round, value)) ->
          consensus.c_rb_deliver ~proposer:meta.Msg.rb_origin ~inst ~round ~value);
      Event_bus.subscribe port_net_abcast (fun m -> Abcast_modular.on_diffuse abcast m);
      Event_bus.subscribe port_net_consensus (fun (src, msg) ->
          consensus.c_receive ~src msg);
      Event_bus.subscribe port_net_rbcast (fun (src, meta, payload) ->
          Rbcast.receive rbcast ~src ~meta payload);
      Modular_stack
        { abcast; consensus; rbcast; port_net_abcast; port_net_consensus; port_net_rbcast }
    | Indirect ->
      Stack.mount stack
        {
          Stack.name = "ABcast-I";
          description = "atomic broadcast by indirect consensus (related work [12])";
        };
      Stack.mount stack
        { Stack.name = "Consensus"; description = "orders message identifiers (\xc2\xa73.2 engine)" };
      Stack.mount stack
        { Stack.name = "RBcast"; description = "reliable broadcast (\xc2\xa73.1)" };
      let port_propose = Event_bus.port bus "abcast-i->consensus.propose" in
      let port_decide = Event_bus.port bus "consensus->abcast-i.decide" in
      let port_rbcast = Event_bus.port bus "consensus->rbcast.rbcast" in
      let port_rdeliver = Event_bus.port bus "rbcast->consensus.rdeliver" in
      let port_net_abcast = Event_bus.port bus "net->abcast-i" in
      let port_net_consensus = Event_bus.port bus "net->consensus" in
      let port_net_rbcast = Event_bus.port bus "net->rbcast" in
      let rbcast =
        Rbcast.create ~me ~n:params.Params.n
          ~variant:params.Params.modular.Params.rbcast_variant
          ~broadcast:(fun ~meta (inst, round, value) ->
            broadcast (Msg.Decision_tag { meta; inst; round; value }))
          ~deliver:(fun ~meta payload -> Event_bus.emit port_rdeliver (meta, payload))
          ~obs ()
      in
      let rbcast_decision ~inst ~round ~value =
        Event_bus.emit port_rbcast (inst, round, value)
      in
      let on_decide ~inst value = Event_bus.emit port_decide (inst, value) in
      let consensus = make_consensus ~rbcast_decision ~on_decide in
      let abcast =
        Abcast_indirect.create ~engine:(engine t) ~params ~me
          ~diffuse:(fun m -> broadcast (Msg.Diffuse m))
          ~send ~broadcast
          ~consensus:
            {
              Abcast_indirect.propose =
                (fun ~inst value -> Event_bus.emit port_propose (inst, value));
            }
          ~on_adeliver:(fun m -> handle_adeliver t m)
          ~obs ()
      in
      Event_bus.subscribe port_propose (fun (inst, value) -> consensus.c_propose ~inst value);
      Event_bus.subscribe port_decide (fun (inst, value) ->
          Abcast_indirect.on_decide abcast ~inst value);
      Event_bus.subscribe port_rbcast (fun payload -> Rbcast.rbcast rbcast payload);
      Event_bus.subscribe port_rdeliver (fun (meta, (inst, round, value)) ->
          consensus.c_rb_deliver ~proposer:meta.Msg.rb_origin ~inst ~round ~value);
      Event_bus.subscribe port_net_abcast (fun m -> Abcast_indirect.on_diffuse abcast m);
      Event_bus.subscribe port_net_consensus (fun (src, msg) -> consensus.c_receive ~src msg);
      Event_bus.subscribe port_net_rbcast (fun (src, meta, payload) ->
          Rbcast.receive rbcast ~src ~meta payload);
      Indirect_stack
        { abcast; consensus; rbcast; port_net_abcast; port_net_consensus; port_net_rbcast }
  in
  t.impl <- Some impl;
  (* Demultiplexer: heartbeats feed the detector directly; protocol
     messages cross into the mounted module(s) through the bus. *)
  let demux ~src msg =
    if not t.crashed then
      match msg with
      | Msg.Heartbeat -> begin
        match (t.heartbeat, t.chen) with
        | Some hb, _ -> Heartbeat_fd.on_heartbeat hb ~src
        | None, Some cd -> Chen_fd.on_heartbeat cd ~src
        | None, None -> ()
      end
      | _ -> begin
        match impl with
        | Monolithic_stack s -> Event_bus.emit s.port_net (src, msg)
        | Modular_stack s -> begin
          match msg with
          | Msg.Diffuse m -> Event_bus.emit s.port_net_abcast m
          | Msg.Decision_tag { meta; inst; round; value } ->
            Event_bus.emit s.port_net_rbcast (src, meta, (inst, round, value))
          | Msg.Estimate _ | Msg.Propose _ | Msg.Ack _ | Msg.Nack _ | Msg.New_round _
          | Msg.Decision_request _ | Msg.Decision_full _ ->
            Event_bus.emit s.port_net_consensus (src, msg)
          | Msg.Heartbeat | Msg.Prop_dec _ | Msg.Ack_diff _ | Msg.Mono_estimate _
          | Msg.Mono_decision_tag _ | Msg.To_coord _ | Msg.Payload_request _
          | Msg.Payload_push _ ->
            ()
        end
        | Indirect_stack s -> begin
          match msg with
          | Msg.Diffuse m -> Event_bus.emit s.port_net_abcast m
          | Msg.Payload_push m -> Abcast_indirect.on_payload_push s.abcast m
          | Msg.Payload_request { ids } ->
            Abcast_indirect.on_payload_request s.abcast ~src ids
          | Msg.Decision_tag { meta; inst; round; value } ->
            Event_bus.emit s.port_net_rbcast (src, meta, (inst, round, value))
          | Msg.Estimate _ | Msg.Propose _ | Msg.Ack _ | Msg.Nack _ | Msg.New_round _
          | Msg.Decision_request _ | Msg.Decision_full _ ->
            Event_bus.emit s.port_net_consensus (src, msg)
          | Msg.Heartbeat | Msg.Prop_dec _ | Msg.Ack_diff _ | Msg.Mono_estimate _
          | Msg.Mono_decision_tag _ | Msg.To_coord _ ->
            ()
        end
      end
  in
  deliver_ref := demux;
  (* A [Tampered] envelope is the message adversary's in-flight payload
     flip. Checksums on (the default): the receiver detects the mismatch
     and discards the copy — under lossy transport the reliable channel's
     retransmission recovers it, so corruption degrades to loss. Checksums
     off: the inner message is processed as if genuine. Either way the
     tamper observer fires so the invariant monitor can count
     detected-vs-silent corruption. *)
  let rec handle_wire ~src wire =
    match wire with
    | Wire_msg.Plain msg -> demux ~src msg
    | Wire_msg.Frame frame -> begin
      match t.rchannel with
      | Some channel -> Rchannel.receive_raw channel ~src frame
      | None -> ()
    end
    | Wire_msg.Tampered inner ->
      if params.Params.checksums then begin
        if Obs.enabled t.obs then Obs.incr t.obs "net.corrupt_detected";
        if Obs.tracing t.obs then
          Obs.event t.obs ~pid:t.me ~layer:(Wire_msg.layer inner) ~phase:"drop"
            ~detail:("checksum: " ^ Wire_msg.kind inner) ();
        on_tamper ~detected:true
      end
      else begin
        on_tamper ~detected:false;
        handle_wire ~src inner
      end
  in
  Network.register net me (fun ~src wire ->
      if not t.crashed then handle_wire ~src wire);
  t

(* ---- Snapshot ---- *)

module Snap = Snapshot

type rep_data = {
  pd_offers : int list; (* front first *)
  pd_next_seq : int;
  pd_offered : int;
  pd_admitted : int;
  pd_delivered_count : int;
  pd_rev_deliveries : App_msg.id list;
  pd_crashed : bool;
}

let kind_name = function
  | Modular -> "modular"
  | Monolithic -> "monolithic"
  | Indirect -> "indirect"

let own_section_name t = Printf.sprintf "core.replica.p%d" (t.me + 1)

let snapshot t =
  let offers = List.rev (Queue.fold (fun acc s -> s :: acc) [] t.offers) in
  Snap.make ~name:(own_section_name t) ~version:1
    ~data:
      (Snap.pack
         {
           pd_offers = offers;
           pd_next_seq = t.next_seq;
           pd_offered = t.offered;
           pd_admitted = t.admitted;
           pd_delivered_count = t.delivered_count;
           pd_rev_deliveries = t.rev_deliveries;
           pd_crashed = t.crashed;
         })
    [
      ("kind", Snap.String (kind_name t.kind));
      ("crashed", Snap.Bool t.crashed);
      ("next_seq", Snap.Int t.next_seq);
      ("offered", Snap.Int t.offered);
      ("admitted", Snap.Int t.admitted);
      ("delivered_count", Snap.Int t.delivered_count);
      ("queued_offers", Snap.Int (Queue.length t.offers));
    ]

let restore t s =
  Snap.check s ~name:(own_section_name t) ~version:1;
  if not (String.equal (Snap.get_string s "kind") (kind_name t.kind)) then
    raise
      (Snap.Codec_error
         (own_section_name t ^ ": snapshot taken with stack kind "
        ^ Snap.get_string s "kind"));
  let (d : rep_data) = Snap.unpack_data s in
  Queue.clear t.offers;
  List.iter (fun sz -> Queue.push sz t.offers) d.pd_offers;
  t.next_seq <- d.pd_next_seq;
  t.offered <- d.pd_offered;
  t.admitted <- d.pd_admitted;
  t.delivered_count <- d.pd_delivered_count;
  t.rev_deliveries <- d.pd_rev_deliveries;
  t.crashed <- d.pd_crashed

(* The whole per-process state, one section per mounted module, in a fixed
   order (replica, flow, rchannel, fd, bus, then the stack's protocol
   modules top-down). *)
let sections t =
  let p = t.me + 1 in
  let base =
    [ snapshot t; Flow_control.snapshot ~name:(Printf.sprintf "core.replica.p%d.flow" p) t.flow ]
  in
  let rchannel =
    match t.rchannel with Some ch -> [ Rchannel.snapshot ch ] | None -> []
  in
  let fd =
    (match t.heartbeat with Some hb -> [ Heartbeat_fd.snapshot hb ] | None -> [])
    @ match t.chen with Some cd -> [ Chen_fd.snapshot cd ] | None -> []
  in
  let bus =
    Event_bus.snapshot ~name:(Printf.sprintf "framework.bus.p%d" p) (Stack.bus t.stack)
  in
  let stack =
    match t.impl with
    | None -> []
    | Some (Modular_stack { abcast; consensus; rbcast; _ }) ->
      [ Abcast_modular.snapshot abcast; consensus.c_snapshot (); Rbcast.snapshot rbcast ]
    | Some (Indirect_stack { abcast; consensus; rbcast; _ }) ->
      [ Abcast_indirect.snapshot abcast; consensus.c_snapshot (); Rbcast.snapshot rbcast ]
    | Some (Monolithic_stack { mono; _ }) -> [ Abcast_monolithic.snapshot mono ]
  in
  base @ rchannel @ fd @ [ bus ] @ stack

let restore_sections t sections =
  let p = t.me + 1 in
  let by_name name = List.find_opt (fun (s : Snap.section) -> String.equal s.name name) sections in
  let req name f =
    match by_name name with
    | Some s -> f s
    | None -> raise (Snap.Codec_error ("missing section " ^ name))
  in
  let opt name f = match by_name name with Some s -> f s | None -> () in
  req (own_section_name t) (restore t);
  req
    (Printf.sprintf "core.replica.p%d.flow" p)
    (Flow_control.restore ~name:(Printf.sprintf "core.replica.p%d.flow" p) t.flow);
  (match t.rchannel with
  | Some ch -> req (Printf.sprintf "net.rchannel.p%d" p) (Rchannel.restore ch)
  | None -> ());
  (match t.heartbeat with
  | Some hb -> req (Printf.sprintf "fd.heartbeat.p%d" p) (Heartbeat_fd.restore hb)
  | None -> ());
  (match t.chen with
  | Some cd -> req (Printf.sprintf "fd.chen.p%d" p) (Chen_fd.restore cd)
  | None -> ());
  opt
    (Printf.sprintf "framework.bus.p%d" p)
    (Event_bus.restore ~name:(Printf.sprintf "framework.bus.p%d" p) (Stack.bus t.stack));
  match t.impl with
  | None -> ()
  | Some (Modular_stack { abcast; consensus; _ }) ->
    req (Printf.sprintf "core.abcast_modular.p%d" p) (Abcast_modular.restore abcast);
    req (Printf.sprintf "core.consensus.p%d" p) consensus.c_restore;
    req (Printf.sprintf "core.rbcast.p%d" p)
      (fun s ->
        match t.impl with
        | Some (Modular_stack { rbcast; _ }) -> Rbcast.restore rbcast s
        | _ -> ())
  | Some (Indirect_stack { abcast; consensus; _ }) ->
    req (Printf.sprintf "core.abcast_indirect.p%d" p) (Abcast_indirect.restore abcast);
    req (Printf.sprintf "core.consensus.p%d" p) consensus.c_restore;
    req (Printf.sprintf "core.rbcast.p%d" p)
      (fun s ->
        match t.impl with
        | Some (Indirect_stack { rbcast; _ }) -> Rbcast.restore rbcast s
        | _ -> ())
  | Some (Monolithic_stack { mono; _ }) ->
    req (Printf.sprintf "core.abcast_monolithic.p%d" p) (Abcast_monolithic.restore mono)
