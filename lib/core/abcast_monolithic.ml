open Repro_sim
open Repro_net
open Repro_fd
module Obs = Repro_obs.Obs

module L = (val Logs.src_log Log.mono)

type inst_state = {
  inst : int;
  mutable round : int;
  mutable estimate : Batch.t option;
  mutable ts : int;
  proposals : (int * Pid.t, Batch.t) Hashtbl.t; (* (round, proposer) -> value *)
  mutable acked_rounds : int list;
  acks : (int, Pid.t list ref) Hashtbl.t;
  estimates : (int, (Pid.t * (int * Batch.t)) list ref) Hashtbl.t;
  mutable estimate_sent : int list;
  mutable proposed_rounds : int list;
  mutable solicited_rounds : int list;
  mutable decided : Batch.t option;
  mutable decided_here_round : int option; (* round in which I decided as proposer *)
  mutable announced : bool; (* decision already carried by a later proposal or tag *)
  mutable pending_requesters : Pid.t list;
  mutable progress_timer : Engine.timer option;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  me : Pid.t;
  fd : Fd.t;
  send : dst:Pid.t -> Msg.t -> unit;
  broadcast : Msg.t -> unit;
  on_adeliver : App_msg.t -> unit;
  obs : Obs.t;
  instances : (int, inst_state) Hashtbl.t;
  delivered : Id_table.t;
  mutable next_deliver : int; (* next instance to adeliver *)
  mutable max_decided : int; (* highest locally decided instance *)
  mutable launched : int; (* highest instance this process launched *)
  mutable pool : Batch.t; (* coordinator-role pool of unordered messages *)
  mutable own_unsent : App_msg.t list; (* own messages not yet conveyed *)
  mutable own_outstanding : Batch.t; (* own messages not yet adelivered *)
  decisions_buf : (int, Batch.t) Hashtbl.t;
  mutable active_acked : int;
      (* undecided instances this process has acked — nonzero means the
         pipeline is running and an ack to piggyback on is imminent *)
  mutable ack_imminent : bool;
      (* set while a proposal we are about to ack is being processed, so
         that admissions triggered by its piggybacked decision (window
         slots freeing) hold for that very ack instead of going standalone *)
  mutable delivered_count : int;
  mutable kick_timer : Engine.timer option;
  mutable catchup_timer : Engine.timer option;
      (* armed while [next_deliver <= max_decided], i.e. a decided instance
         sits above an undecided hole; see [arm_catchup] *)
  decision_rb : (int * int) Rbcast.t option ref;
      (* reliable broadcast of standalone decision tags, used only in the
         [cheap_decision = false] ablation *)
}

let coord t ~round = Params.coordinator t.params ~round

let next_unsuspected_round t ~from =
  let rec scan r tries =
    if tries = 0 then from
    else if Fd.is_suspected t.fd (coord t ~round:r) then scan (r + 1) (tries - 1)
    else r
  in
  scan from t.params.Params.n

(* The steward launches new instances and receives stray abcast messages:
   the lowest-pid process this one does not suspect (p1 in good runs). *)
let steward t =
  let rec scan p = if p < t.params.Params.n && Fd.is_suspected t.fd p then scan (p + 1) else p in
  let s = scan 0 in
  if s >= t.params.Params.n then 0 else s

let am_steward t = steward t = t.me

let state t inst =
  match Hashtbl.find_opt t.instances inst with
  | Some s -> s
  | None ->
    let s =
      {
        inst;
        round = 1;
        estimate = None;
        ts = 0;
        proposals = Hashtbl.create 4;
        acked_rounds = [];
        acks = Hashtbl.create 4;
        estimates = Hashtbl.create 4;
        estimate_sent = [];
        proposed_rounds = [];
        solicited_rounds = [];
        decided = None;
        decided_here_round = None;
        announced = false;
        pending_requesters = [];
        progress_timer = None;
      }
    in
    Hashtbl.add t.instances inst s;
    s

let cancel_timer t slot =
  match slot with Some timer -> Engine.cancel t.engine timer | None -> ()

let send_to_others t msg = t.broadcast msg

let delivered_mem t (m : App_msg.t) =
  Id_table.mem t.delivered ~origin:m.App_msg.id.App_msg.origin
    ~seq:m.App_msg.id.App_msg.seq

let pool_add t m = if not (delivered_mem t m) then t.pool <- Batch.add t.pool m

let pipeline_active t = t.active_acked > 0 || t.ack_imminent

(* ---- Delivery ---- *)

let adeliver_batch t batch =
  List.iter
    (fun m ->
      if not (delivered_mem t m) then begin
        Id_table.add t.delivered ~origin:m.App_msg.id.App_msg.origin
          ~seq:m.App_msg.id.App_msg.seq;
        t.delivered_count <- t.delivered_count + 1;
        Obs.incr t.obs "abcast.adelivers";
        if Obs.enabled t.obs then
          Obs.observe_since t.obs "abcast.e2e_ms" m.App_msg.abcast_at;
        t.on_adeliver m
      end)
    (Batch.to_list batch);
  t.pool <- Batch.diff t.pool batch;
  t.own_outstanding <- Batch.diff t.own_outstanding batch;
  t.own_unsent <-
    List.filter (fun m -> not (Batch.mem batch m.App_msg.id)) t.own_unsent

let rec drain t =
  match Hashtbl.find_opt t.decisions_buf t.next_deliver with
  | Some batch ->
    Hashtbl.remove t.decisions_buf t.next_deliver;
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Abcast ~phase:"adeliver"
          ~detail:(Printf.sprintf "i%d (%d msgs)" t.next_deliver (Batch.size batch))
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"adeliver"
          ~detail:(Printf.sprintf "i%d (%d msgs)" t.next_deliver (Batch.size batch))
          ()
      end
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () -> adeliver_batch t batch);
    t.next_deliver <- t.next_deliver + 1;
    drain t
  | None -> ()

(* ---- Decision & pipeline ---- *)

let choose_estimate ests =
  let better (p1, (ts1, v1)) (p2, (ts2, v2)) =
    if ts1 <> ts2 then ts1 > ts2
    else if Batch.size v1 <> Batch.size v2 then Batch.size v1 > Batch.size v2
    else p1 < p2
  in
  match ests with
  | [] -> None
  | first :: rest ->
    let _, (_, v) =
      List.fold_left (fun best e -> if better e best then e else best) first rest
    in
    Some v

let take_cap t batch =
  if Batch.size batch <= t.params.Params.batch_cap then batch
  else
    let msgs = Batch.to_list batch in
    let rec take acc k = function
      | m :: rest when k > 0 -> take (m :: acc) (k - 1) rest
      | _ -> acc
    in
    Batch.of_list (take [] t.params.Params.batch_cap msgs)

let take_own_unsent t =
  let piggyback = List.rev t.own_unsent in
  t.own_unsent <- [];
  piggyback

(* Safety net against permanent delivery holes: the merged stack's cheap
   decision dissemination (§4.3) rides the steward's follow-up proposals
   and one-shot tags, so if the steward crashes before its retransmissions
   complete, a process can keep deciding {e later} instances while an
   earlier one stays unknown forever — nothing ever re-announces it. (The
   modular stack's decision tags travel by reliable broadcast, whose
   relay step survives the origin's crash — but a message adversary can
   suppress the relays too, so both consensus variants now carry the same
   net; see {!Consensus.arm_catchup}.) While a
   decided instance sits above an undecided hole, periodically ask
   everyone for the missing values; deciders answer [Decision_full],
   undecided receivers park us in [pending_requesters]. Never fires in
   good runs. *)
let rec arm_catchup t =
  if t.catchup_timer = None && t.max_decided >= t.next_deliver then
    t.catchup_timer <-
      Some
        (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
             t.catchup_timer <- None;
             if t.max_decided >= t.next_deliver then begin
               let requested = ref 0 in
               let inst = ref t.next_deliver in
               while !inst <= t.max_decided && !requested < 64 do
                 let s = state t !inst in
                 if s.decided = None then begin
                   send_to_others t (Msg.Decision_request { inst = !inst });
                   incr requested
                 end;
                 incr inst
               done;
               arm_catchup t
             end))

let rec arm_progress_timer t s =
  cancel_timer t s.progress_timer;
  s.progress_timer <-
    Some
      (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
           if s.decided = None && (s.estimate <> None || s.acked_rounds <> []) then
             advance_round t s ~target:(next_unsuspected_round t ~from:(s.round + 1))))

and mono_decide t s value ~here_round =
  match s.decided with
  | Some _ -> ()
  | None ->
    s.decided <- Some value;
    s.decided_here_round <- here_round;
    if s.acked_rounds <> [] then t.active_acked <- t.active_acked - 1;
    cancel_timer t s.progress_timer;
    s.progress_timer <- None;
    if s.inst > t.max_decided then t.max_decided <- s.inst;
    List.iter
      (fun q -> t.send ~dst:q (Msg.Decision_full { inst = s.inst; value }))
      s.pending_requesters;
    s.pending_requesters <- [];
    L.debug (fun m -> m "%a decide i%d %a" Pid.pp t.me s.inst Batch.pp value);
    Obs.incr t.obs "abcast.decisions";
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Abcast ~phase:"decide"
          ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst s.round (Batch.size value))
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"decide"
          ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst s.round (Batch.size value))
          ()
      end
      else Obs.Span.no_parent
    in
    Hashtbl.replace t.decisions_buf s.inst value;
    Obs.with_span_ctx t.obs sp (fun () -> drain t);
    arm_catchup t;
    (* Idle transition: the last instance just decided and nothing else is
       running — any held own messages must reach the coordinator now. *)
    if (not (pipeline_active t)) && t.own_unsent <> [] && not (am_steward t) then begin
      let held = take_own_unsent t in
      List.iter (fun m -> t.send ~dst:(steward t) (Msg.To_coord m)) held
    end

(* Announce a decision that could not ride a follow-up proposal. *)
and announce_standalone t s =
  if not s.announced then begin
    s.announced <- true;
    match s.decided_here_round with
    | None -> ()
    | Some round ->
      if t.params.Params.mono.Params.cheap_decision then
        send_to_others t (Msg.Mono_decision_tag { inst = s.inst; round })
      else begin
        (* Ablation §4.3 off: disseminate the tag by reliable broadcast, as
           the modular stack must. *)
        match !(t.decision_rb) with
        | Some rb -> Rbcast.rbcast rb (s.inst, round)
        | None -> send_to_others t (Msg.Mono_decision_tag { inst = s.inst; round })
      end
  end

and maybe_launch t =
  let k = t.max_decided + 1 in
  if
    am_steward t && t.launched < k
    && (not (Batch.is_empty t.pool))
    && k = t.next_deliver (* all previous instances fully delivered here *)
  then begin
    let s = state t k in
    if s.decided = None && not (List.mem 1 s.proposed_rounds) then begin
      let proposal = take_cap t t.pool in
      t.pool <- Batch.diff t.pool proposal;
      t.launched <- k;
      s.proposed_rounds <- 1 :: s.proposed_rounds;
      Hashtbl.replace s.proposals (1, t.me) proposal;
      s.estimate <- Some proposal;
      s.ts <- 1;
      Hashtbl.replace s.acks 1 (ref [ t.me ]);
      let decided =
        if k = 0 then None
        else
          let prev = state t (k - 1) in
          match prev.decided_here_round with
          | Some round
            when t.params.Params.mono.Params.combine_proposal_decision
                 && not prev.announced ->
            prev.announced <- true;
            Some (k - 1, round)
          | Some _ | None -> None
      in
      L.debug (fun m ->
          m "%a launch i%d (%d msgs%s)" Pid.pp t.me k (Batch.size proposal)
            (match decided with
            | Some (d, _) -> Printf.sprintf ", +decision i%d" d
            | None -> ""));
      let sp =
        if Obs.tracing t.obs then
          Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"propose"
            ~detail:(Printf.sprintf "i%d r1 (%d msgs)" k (Batch.size proposal))
            ()
        else Obs.Span.no_parent
      in
      Obs.with_span_ctx t.obs sp (fun () ->
          send_to_others t (Msg.Prop_dec { inst = k; round = 1; proposal; decided });
          arm_progress_timer t s;
          check_majority t s ~round:1)
    end
  end

and post_decide_coordinator t s =
  (* Decided as the proposer of a round: either the decision rides the next
     proposal, or it must be announced standalone. *)
  maybe_launch t;
  if not s.announced then announce_standalone t s

and check_majority t s ~round =
  if s.decided = None && List.mem round s.proposed_rounds then
    match Hashtbl.find_opt s.acks round with
    | Some slot when List.length !slot >= Params.majority t.params -> begin
      match Hashtbl.find_opt s.proposals (round, t.me) with
      | Some value ->
        if round = 1 && t.params.Params.mono.Params.combine_proposal_decision then begin
          mono_decide t s value ~here_round:(Some round);
          post_decide_coordinator t s
        end
        else begin
          (* Recovery rounds (and the §4.1-off ablation) disseminate
             explicitly; recovery uses the full value for robustness. *)
          mono_decide t s value ~here_round:(Some round);
          if round = 1 then post_decide_coordinator t s
          else begin
            s.announced <- true;
            send_to_others t (Msg.Decision_full { inst = s.inst; value });
            maybe_launch t
          end
        end
      | None -> ()
    end
    | Some _ | None -> ()

and solicit t s ~round =
  if not (List.mem round s.solicited_rounds) then begin
    s.solicited_rounds <- round :: s.solicited_rounds;
    send_to_others t (Msg.New_round { inst = s.inst; round })
  end

and send_estimate t s ~round =
  if s.estimate = None then s.estimate <- Some Batch.empty;
  match s.estimate with
  | Some value when not (List.mem round s.estimate_sent) ->
    s.estimate_sent <- round :: s.estimate_sent;
    (* §4.2: on a coordinator change, re-piggyback every own message not
       yet adelivered — the previous coordinator may have died with them. *)
    let piggyback = Batch.to_list t.own_outstanding in
    t.own_unsent <-
      List.filter
        (fun m -> not (List.exists (fun m' -> App_msg.equal_id m.App_msg.id m'.App_msg.id) piggyback))
        t.own_unsent;
    t.send ~dst:(coord t ~round)
      (Msg.Mono_estimate { inst = s.inst; round; value; ts = s.ts; piggyback })
  | Some _ | None -> ()

and coordinator_estimates t s ~round =
  let received =
    match Hashtbl.find_opt s.estimates round with Some slot -> !slot | None -> []
  in
  match s.estimate with
  | Some v when not (List.mem_assoc t.me received) -> (t.me, (s.ts, v)) :: received
  | _ -> received

and maybe_propose_recovery t s ~round =
  if
    s.decided = None && round >= 2
    && coord t ~round = t.me
    && not (List.mem round s.proposed_rounds)
  then begin
    let ests = coordinator_estimates t s ~round in
    if List.length ests >= Params.majority t.params then begin
      match choose_estimate ests with
      | None -> ()
      | Some value ->
        s.proposed_rounds <- round :: s.proposed_rounds;
        if round > s.round then s.round <- round;
        Hashtbl.replace s.proposals (round, t.me) value;
        s.estimate <- Some value;
        s.ts <- round;
        Hashtbl.replace s.acks round (ref [ t.me ]);
        let sp =
          if Obs.tracing t.obs then
            Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"propose"
              ~detail:(Printf.sprintf "i%d r%d (%d msgs)" s.inst round (Batch.size value))
              ()
          else Obs.Span.no_parent
        in
        Obs.with_span_ctx t.obs sp (fun () ->
            send_to_others t (Msg.Prop_dec { inst = s.inst; round; proposal = value; decided = None });
            arm_progress_timer t s;
            check_majority t s ~round)
    end
  end

and advance_round t s ~target =
  if s.decided = None && target > s.round then begin
    L.debug (fun m ->
        m "%a advance i%d r%d->r%d" Pid.pp t.me s.inst s.round target);
    s.round <- target;
    if coord t ~round:target = t.me then begin
      maybe_propose_recovery t s ~round:target;
      if not (List.mem target s.proposed_rounds) then solicit t s ~round:target
    end
    else send_estimate t s ~round:target;
    arm_progress_timer t s
  end

(* ---- Decision tags ---- *)

let handle_decision_tag t ~inst ~round ~proposer =
  let s = state t inst in
  if s.decided = None then
    match Hashtbl.find_opt s.proposals (round, proposer) with
    | Some value -> mono_decide t s value ~here_round:None
    | None ->
      (* Tag without the matching proposal: fetch the value from anyone who
         decided (at least the proposer, if correct). *)
      send_to_others t (Msg.Decision_request { inst })

(* ---- Abcast entry ---- *)

let flush_kick t =
  (* Safety net, armed while own messages are outstanding: re-convey them
     to the current steward. Never fires in good runs. *)
  if not (Batch.is_empty t.own_outstanding) then begin
    if am_steward t then begin
      List.iter (fun m -> pool_add t m) (Batch.to_list t.own_outstanding);
      t.own_unsent <- [];
      maybe_launch t
    end
    else begin
      t.own_unsent <- [];
      List.iter
        (fun m -> t.send ~dst:(steward t) (Msg.To_coord m))
        (Batch.to_list t.own_outstanding)
    end
  end

let rec arm_kick t =
  cancel_timer t t.kick_timer;
  t.kick_timer <-
    Some
      (Engine.schedule_after t.engine t.params.Params.round1_kick (fun () ->
           flush_kick t;
           if not (Batch.is_empty t.own_outstanding) then arm_kick t))

let abcast t m =
  if not (delivered_mem t m) then begin
    Obs.incr t.obs "abcast.abcasts";
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Abcast ~phase:"abcast"
          ~detail:
            (Printf.sprintf "m %d/%d" (m.App_msg.id.App_msg.origin + 1)
               m.App_msg.id.App_msg.seq)
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"abcast"
          ~detail:
            (Printf.sprintf "m %d/%d" (m.App_msg.id.App_msg.origin + 1)
               m.App_msg.id.App_msg.seq)
          ()
      end
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () ->
        t.own_outstanding <- Batch.add t.own_outstanding m;
        arm_kick t;
        if am_steward t then begin
          pool_add t m;
          maybe_launch t
        end
        else if t.params.Params.mono.Params.piggyback_on_ack && pipeline_active t then
          (* §4.2: hold for the next ack to the coordinator. *)
          t.own_unsent <- t.own_unsent @ [ m ]
        else if t.params.Params.mono.Params.piggyback_on_ack then
          (* Idle system: straight to the coordinator, and only to it. *)
          t.send ~dst:(steward t) (Msg.To_coord m)
        else
          (* Ablation §4.2 off: diffuse to everyone like the modular stack;
             the steward will pick it up below via [receive]. *)
          send_to_others t (Msg.To_coord m))
  end

(* ---- Receive ---- *)

let handle_prop_dec t ~src ~inst ~round ~proposal ~decided =
  (* Will this proposal be acked? Decide before processing the carried
     decision: the decision frees window slots, and those admissions must
     ride the ack we are about to send (Fig. 6's "ack + diffusion"). *)
  let will_ack =
    let s = state t inst in
    s.decided = None && round >= s.round
    && (not (Fd.is_suspected t.fd src))
    && not (List.mem round s.acked_rounds)
  in
  if will_ack then t.ack_imminent <- true;
  (match decided with
  | Some (d, dr) -> handle_decision_tag t ~inst:d ~round:dr ~proposer:src
  | None -> ());
  t.ack_imminent <- false;
  let s = state t inst in
  if s.decided <> None then begin
    match s.decided with
    | Some value when round >= s.round ->
      (* The proposer missed our decision (e.g. recovery ended first). *)
      t.send ~dst:src (Msg.Decision_full { inst; value })
    | Some _ | None -> ()
  end
  else if round >= s.round then begin
    s.round <- round;
    Hashtbl.replace s.proposals (round, src) proposal;
    if s.estimate = None then s.estimate <- Some proposal;
    if Fd.is_suspected t.fd src then
      advance_round t s ~target:(next_unsuspected_round t ~from:(round + 1))
    else if not (List.mem round s.acked_rounds) then begin
      if s.acked_rounds = [] then t.active_acked <- t.active_acked + 1;
      s.acked_rounds <- round :: s.acked_rounds;
      s.estimate <- Some proposal;
      s.ts <- round;
      let piggyback =
        if t.params.Params.mono.Params.piggyback_on_ack then take_own_unsent t else []
      in
      let sp =
        if Obs.tracing t.obs then
          Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"ack"
            ~detail:(Printf.sprintf "i%d r%d" inst round)
            ()
        else Obs.Span.no_parent
      in
      Obs.with_span_ctx t.obs sp (fun () ->
          t.send ~dst:src (Msg.Ack_diff { inst; round; piggyback }));
      arm_progress_timer t s
    end
  end

let handle_ack_diff t ~src ~inst ~round ~piggyback =
  (* Piggybacked messages are ingested no matter how late the ack is —
     otherwise they would be lost. *)
  List.iter (fun m -> pool_add t m) piggyback;
  let s = state t inst in
  (if s.decided = None && List.mem round s.proposed_rounds then begin
     let slot =
       match Hashtbl.find_opt s.acks round with
       | Some slot -> slot
       | None ->
         let slot = ref [] in
         Hashtbl.add s.acks round slot;
         slot
     in
     if not (List.mem src !slot) then slot := src :: !slot;
     check_majority t s ~round
   end);
  (* New pool content may allow launching the next instance. *)
  maybe_launch t

let handle_mono_estimate t ~src ~inst ~round ~ts ~value ~piggyback =
  List.iter (fun m -> pool_add t m) piggyback;
  let s = state t inst in
  if s.decided <> None then begin
    match s.decided with
    | Some value -> t.send ~dst:src (Msg.Decision_full { inst; value })
    | None -> ()
  end
  else if round >= 2 then begin
    if round > s.round then s.round <- round;
    (match Hashtbl.find_opt s.estimates round with
    | Some slot ->
      if not (List.mem_assoc src !slot) then slot := (src, (ts, value)) :: !slot
    | None -> Hashtbl.add s.estimates round (ref [ (src, (ts, value)) ]));
    if coord t ~round = t.me then begin
      maybe_propose_recovery t s ~round;
      if not (List.mem round s.proposed_rounds) then solicit t s ~round
    end
  end;
  maybe_launch t

let handle_new_round t ~src ~inst ~round =
  let s = state t inst in
  match s.decided with
  | Some value -> t.send ~dst:src (Msg.Decision_full { inst; value })
  | None ->
    if round > s.round then advance_round t s ~target:round
    else if round = s.round && coord t ~round <> t.me then send_estimate t s ~round

let handle_decision_request t ~src ~inst =
  let s = state t inst in
  match s.decided with
  | Some value -> t.send ~dst:src (Msg.Decision_full { inst; value })
  | None ->
    if not (List.mem src s.pending_requesters) then
      s.pending_requesters <- src :: s.pending_requesters

let on_suspicion t suspect =
  (* Advance in instance order: the table's hash order must not decide
     which instance's round change (and its sends) is scheduled first. *)
  let affected =
    Hashtbl.fold
      (fun _ s acc ->
        if s.decided = None && (s.estimate <> None || s.acked_rounds <> []) then
          let waiting_on =
            (* The process whose silence blocks this instance: the proposer
               we acked in the current round (lowest pid when several
               proposed, so hash order never picks), or the schedule
               coordinator. *)
            let acked_proposer =
              Hashtbl.fold
                (fun (r, p) _ acc -> if r = s.round then p :: acc else acc)
                s.proposals []
              |> List.sort compare
              |> function p :: _ -> Some p | [] -> None
            in
            match acked_proposer with Some p -> p | None -> coord t ~round:s.round
          in
          if waiting_on = suspect then s :: acc else acc
        else acc)
      t.instances []
    |> List.sort (fun a b -> compare a.inst b.inst)
  in
  List.iter
    (fun s -> advance_round t s ~target:(next_unsuspected_round t ~from:(s.round + 1)))
    affected;
  (* Stewardship may have changed; stray messages are re-routed by the
     kick timer, which is armed whenever own messages are outstanding. *)
  maybe_launch t

let receive t ~src msg =
  match msg with
  | Msg.Prop_dec { inst; round; proposal; decided } ->
    handle_prop_dec t ~src ~inst ~round ~proposal ~decided
  | Msg.Ack_diff { inst; round; piggyback } ->
    handle_ack_diff t ~src ~inst ~round ~piggyback
  | Msg.Mono_estimate { inst; round; value; ts; piggyback } ->
    handle_mono_estimate t ~src ~inst ~round ~ts ~value ~piggyback
  | Msg.Mono_decision_tag { inst; round } ->
    handle_decision_tag t ~inst ~round ~proposer:src
  | Msg.To_coord m ->
    pool_add t m;
    maybe_launch t
  | Msg.New_round { inst; round } -> handle_new_round t ~src ~inst ~round
  | Msg.Decision_request { inst } -> handle_decision_request t ~src ~inst
  | Msg.Decision_full { inst; value } ->
    let s = state t inst in
    if s.decided = None then begin
      mono_decide t s value ~here_round:None;
      maybe_launch t
    end
  | Msg.Decision_tag { meta; inst; round; value = _ } -> begin
    (* Cheap-decision ablation: tags arrive through reliable broadcast. *)
    match !(t.decision_rb) with
    | Some rb -> Rbcast.receive rb ~src ~meta (inst, round)
    | None -> handle_decision_tag t ~inst ~round ~proposer:meta.Msg.rb_origin
  end
  | Msg.Heartbeat | Msg.Diffuse _ | Msg.Estimate _ | Msg.Propose _ | Msg.Ack _
  | Msg.Nack _ | Msg.Payload_request _ | Msg.Payload_push _ ->
    ()

let create ~engine ~params ~me ~fd ~send ~broadcast ~on_adeliver ?(obs = Obs.noop) () =
  let t =
    {
      engine;
      params;
      me;
      fd;
      send;
      broadcast;
      on_adeliver;
      obs;
      (* Instances are never removed, so the table grows with the run; size it
         for a full report-workload window up front instead of paying a chain
         of rehash copies on the hot path. *)
      instances = Hashtbl.create 4096;
      delivered = Id_table.create ~n:params.Params.n;
      next_deliver = 0;
      max_decided = -1;
      launched = -1;
      pool = Batch.empty;
      own_unsent = [];
      own_outstanding = Batch.empty;
      decisions_buf = Hashtbl.create 16;
      active_acked = 0;
      ack_imminent = false;
      delivered_count = 0;
      kick_timer = None;
      catchup_timer = None;
      decision_rb = ref None;
    }
  in
  if not params.Params.mono.Params.cheap_decision then begin
    let rb =
      Rbcast.create ~me ~n:params.Params.n ~variant:params.Params.modular.Params.rbcast_variant
        ~broadcast:(fun ~meta (inst, round) ->
          broadcast (Msg.Decision_tag { meta; inst; round; value = None }))
        ~deliver:(fun ~meta (inst, round) ->
          handle_decision_tag t ~inst ~round ~proposer:meta.Msg.rb_origin)
        ~obs ()
    in
    t.decision_rb := Some rb
  end;
  Fd.on_suspect fd (fun suspect -> on_suspicion t suspect);
  t

let delivered_count t = t.delivered_count
let decided_instances t = t.next_deliver

let rounds_used t ~inst =
  match Hashtbl.find_opt t.instances inst with Some s -> s.round | None -> 0

(* ---- Snapshot ---- *)

module Snap = Snapshot

type ab_data = {
  ad_instances : (int * inst_state) list; (* ascending inst, timers stripped *)
  ad_delivered : Id_table.t;
  ad_next_deliver : int;
  ad_max_decided : int;
  ad_launched : int;
  ad_pool : Batch.t;
  ad_own_unsent : App_msg.t list;
  ad_own_outstanding : Batch.t;
  ad_decisions_buf : (int * Batch.t) list; (* ascending inst *)
  ad_active_acked : int;
  ad_ack_imminent : bool;
  ad_delivered_count : int;
}

let snapshot ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.abcast_monolithic.p%d" (t.me + 1)
  in
  let instances =
    Hashtbl.fold
      (fun k s acc -> (k, { s with progress_timer = None }) :: acc)
      t.instances []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let decisions_buf =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.decisions_buf []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (* Decided values for the most recent instances, rendered for bisect's
     state-diff report: when a total-order violation localizes to a
     window, these are the per-process decision logs that disagree. *)
  let decision_window =
    List.filter_map
      (fun k ->
        if k < 0 then None
        else
          match Hashtbl.find_opt t.instances k with
          | Some { decided = Some b; _ } ->
            Some
              ( Printf.sprintf "decision.i%d" k,
                Snap.String (Fmt.str "%a" Batch.pp b) )
          | _ -> None)
      (List.init 8 (fun i -> t.max_decided - 7 + i))
  in
  Snap.make ~name ~version:1
    ~data:
      (Snap.pack
         {
           ad_instances = instances;
           ad_delivered = t.delivered;
           ad_next_deliver = t.next_deliver;
           ad_max_decided = t.max_decided;
           ad_launched = t.launched;
           ad_pool = t.pool;
           ad_own_unsent = t.own_unsent;
           ad_own_outstanding = t.own_outstanding;
           ad_decisions_buf = decisions_buf;
           ad_active_acked = t.active_acked;
           ad_ack_imminent = t.ack_imminent;
           ad_delivered_count = t.delivered_count;
         })
    ([
       ("next_deliver", Snap.Int t.next_deliver);
       ("max_decided", Snap.Int t.max_decided);
       ("launched", Snap.Int t.launched);
       ("delivered_count", Snap.Int t.delivered_count);
       ("active_acked", Snap.Int t.active_acked);
       ("ack_imminent", Snap.Bool t.ack_imminent);
       ("instances", Snap.Int (List.length instances));
       ("pool", Snap.Int (Batch.size t.pool));
       ("own_unsent", Snap.Int (List.length t.own_unsent));
       ("own_outstanding", Snap.Int (Batch.size t.own_outstanding));
       ("buffered_decisions", Snap.Int (List.length decisions_buf));
     ]
    @ decision_window)

let restore ?name t s =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.abcast_monolithic.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  let (d : ab_data) = Snap.unpack_data s in
  Hashtbl.reset t.instances;
  List.iter (fun (k, st) -> Hashtbl.add t.instances k st) d.ad_instances;
  Id_table.assign ~from:d.ad_delivered t.delivered;
  t.next_deliver <- d.ad_next_deliver;
  t.max_decided <- d.ad_max_decided;
  t.launched <- d.ad_launched;
  t.pool <- d.ad_pool;
  t.own_unsent <- d.ad_own_unsent;
  t.own_outstanding <- d.ad_own_outstanding;
  Hashtbl.reset t.decisions_buf;
  List.iter (fun (k, v) -> Hashtbl.add t.decisions_buf k v) d.ad_decisions_buf;
  t.active_acked <- d.ad_active_acked;
  t.ack_imminent <- d.ad_ack_imminent;
  t.delivered_count <- d.ad_delivered_count
(* kick/catch-up/per-instance progress timers and the [decision_rb]
   ablation channel ride the world blob. *)
