open Repro_sim
open Repro_net
open Repro_fd

(** Classical Chandra–Toueg consensus — the unoptimized baseline of §3.2.

    The original ◇S/majority algorithm as published [7], without the three
    optimizations the paper's modular stack applies:

    - {b estimate phase in every round}, including round 1: on [propose],
      every process sends its timestamped estimate to the round-1
      coordinator, which picks the maximum-timestamp value and proposes it;
    - {b unconditional round cycling}: after acking (or nacking) round r a
      process immediately enters round r+1 and sends its estimate to the
      next coordinator — it does not wait to suspect anyone. A process in
      phase 3 sends an explicit [Nack] when it suspects the coordinator,
      releasing the coordinator's wait for a majority of replies;
    - {b full-value decisions}: the decided batch itself (not a tag) is
      reliably broadcast.

    Same safety argument as {!Consensus} — ack-once per round, decisions
    from one majority-acked proposal, max-timestamp selection over a
    majority of estimates — and the same external interface, so the
    modular stack can mount either variant
    ({!Params.modular_opts.consensus_variant}). Comparing the two isolates
    what the §3.2 optimizations themselves are worth; see ablation A4. *)

type t

val create :
  engine:Engine.t ->
  params:Params.t ->
  me:Pid.t ->
  fd:Fd.t ->
  send:(dst:Pid.t -> Msg.t -> unit) ->
  broadcast:(Msg.t -> unit) ->
  rbcast_decision:(inst:int -> round:int -> value:Batch.t option -> unit) ->
  on_decide:(inst:int -> Batch.t -> unit) ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  t
(** Same contract as {!Consensus.create}, including the [obs] metric and
    trace names. [rbcast_decision] is always called with
    [value = Some batch] (full-value decisions). *)

val propose : t -> inst:int -> Batch.t -> unit
val receive : t -> src:Pid.t -> Msg.t -> unit

val rb_deliver :
  t -> proposer:Pid.t -> inst:int -> round:int -> value:Batch.t option -> unit

val decision : t -> inst:int -> Batch.t option

val rounds_used : t -> inst:int -> int
(** Highest round entered. Note: ≥ 2 even in good runs, because the
    classical algorithm enters the next round as soon as it has acked. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["core.consensus_classic.p<me>"]; same layout as
    {!Consensus.snapshot}. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
