open Repro_net

(** Reliable broadcast (§3.1).

    Guarantees that a payload is rdelivered either by all correct processes
    or by none, even if the broadcaster crashes mid-send, assuming
    quasi-reliable channels. Two variants:

    - {!Params.Classic}: every process re-sends on first receipt — about n²
      messages per broadcast;
    - {!Params.Majority}: only the ⌊(n-1)/2⌋ lowest-pid processes other
      than the origin re-send, for (n-1)·⌊(n+1)/2⌋ messages, sound under
      the majority-correct assumption the stack already makes for
      consensus. The origin plus the relayers form a majority, so at least
      one of them is correct; if the origin is correct everyone receives
      directly, and otherwise the relay of any correct member reaches all.
      (In the enclosing consensus, the corner case where only non-relayers
      receive the payload is masked by the round structure — a new round
      re-decides the locked value; cf. §3.2.)

    The module is transport-agnostic and generic in its payload so it can
    be tested in isolation: the owner supplies [send] and feeds received
    envelopes through {!receive}. *)

type 'p t

val create :
  me:Pid.t ->
  n:int ->
  variant:Params.rbcast_variant ->
  broadcast:(meta:Msg.rb_meta -> 'p -> unit) ->
  deliver:(meta:Msg.rb_meta -> 'p -> unit) ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  'p t
(** [deliver] is invoked exactly once per rdelivered payload (duplicates
    from relays are suppressed by the envelope's origin/sequence pair); it
    receives the envelope so consumers can identify the broadcaster.

    [obs] (default: no-op) counts [rbcast.broadcasts], [rbcast.delivers]
    and [rbcast.relays], and traces [rbcast]/[rdeliver] phases in the
    [`Rbcast] layer. *)

val rbcast : 'p t -> 'p -> unit
(** Broadcast a payload: deliver locally and send to every other process. *)

val receive : 'p t -> src:Pid.t -> meta:Msg.rb_meta -> 'p -> unit
(** Feed an envelope received from the network. First receipt delivers and,
    if this process is a designated relayer (or the variant is classic),
    re-sends to everyone else. *)

val relayers : n:int -> origin:Pid.t -> Pid.t list
(** The designated relay set of the majority variant: the ⌊(n-1)/2⌋
    lowest-pid processes excluding [origin]. Exposed for tests. *)

val snapshot : ?name:string -> 'p t -> Repro_sim.Snapshot.section
(** Default section name ["core.rbcast.p<me>"]; stacks that mount several
    rbcast instances pass their own. Carries the rdelivered identity set
    and the next local sequence number. *)

val restore : ?name:string -> 'p t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
