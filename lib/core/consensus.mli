open Repro_sim
open Repro_net
open Repro_fd

(** Optimized Chandra–Toueg consensus (§3.2).

    A multi-instance consensus engine as mounted in the modular stack. The
    algorithm is the ◇S/majority rotating-coordinator protocol of Chandra
    and Toueg with the optimizations of §3.2 (following Urbán [25]):

    - round 1 has no estimate phase — its coordinator proposes its own
      initial value directly;
    - a new round starts only when the current round's coordinator is
      suspected (or a progress timeout fires), not unconditionally;
    - decisions are disseminated as a [DECISION] tag through the reliable
      broadcast service; receivers decide the proposal they stored for the
      tag's exact (instance, round, proposer) coordinates, falling back to
      an explicit request if the coordinator crashed before their proposal
      arrived.

    Safety is the standard locking argument: a process acks at most once
    per round, a value decided in round r was acked by a majority, and any
    later round's proposal is chosen as the maximum-timestamp estimate over
    a majority — which intersects the ack quorum, so the locked value is
    preserved. Two liveness aids never exercised in good runs: a round-1
    estimate "kick" after the §3.3 timeout, and a {!Msg.New_round}
    solicitation that re-synchronizes processes stranded in a higher round
    by a false suspicion.

    Modularity boundary: the module sends its point-to-point messages
    through [send], hands decisions to an opaque reliable broadcast service
    through [rbcast_decision], and reports decisions through [on_decide].
    It knows nothing of atomic broadcast, and atomic broadcast learns
    nothing of rounds or coordinators — the black-box constraint whose cost
    the paper measures. *)

type t

val create :
  engine:Engine.t ->
  params:Params.t ->
  me:Pid.t ->
  fd:Fd.t ->
  send:(dst:Pid.t -> Msg.t -> unit) ->
  broadcast:(Msg.t -> unit) ->
  rbcast_decision:(inst:int -> round:int -> value:Batch.t option -> unit) ->
  on_decide:(inst:int -> Batch.t -> unit) ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  t
(** [rbcast_decision] must eventually feed back into {!rb_deliver} on every
    correct process (including this one — the local rbcast delivery is how
    the deciding coordinator itself decides).

    [obs] (default: no-op) counts [consensus.proposals], [consensus.acks],
    [consensus.estimates] and [consensus.decisions], records the
    first-activity-to-decision latency in the [consensus.decide_ms]
    histogram, and traces [propose]/[decide] phases in the [`Consensus]
    layer. *)

val propose : t -> inst:int -> Batch.t -> unit
(** Start (or join) instance [inst] with an initial value. Idempotent per
    instance; ignored once the instance has decided. *)

val receive : t -> src:Pid.t -> Msg.t -> unit
(** Feed a consensus wire message ([Estimate], [Propose], [Ack],
    [New_round], [Decision_request], [Decision_full]). Other constructors
    are ignored. *)

val rb_deliver :
  t -> proposer:Pid.t -> inst:int -> round:int -> value:Batch.t option -> unit
(** Deliver a decision notification from the reliable broadcast service.
    [value = None] is the optimized tag; the receiver decides its stored
    proposal for [(inst, round, proposer)] or falls back to recovery. *)

val decision : t -> inst:int -> Batch.t option
(** The decided value of an instance, if this process has decided. *)

val rounds_used : t -> inst:int -> int
(** Highest round this process entered for the instance (1 in good runs);
    0 if the instance is unknown. For tests and diagnostics. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["core.consensus.p<me>"]. Fields summarize the
    instance table (counts, highest decided, catch-up low-water mark,
    highest active round); the bulk payload carries every instance's full
    round state with timer handles stripped. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** Rebuild the instance table from the payload. Round kick, progress and
    catch-up timers ride the world blob.
    @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
