open Repro_net

type rb_meta = { rb_origin : Pid.t; rb_seq : int }

type t =
  | Heartbeat
  | Diffuse of App_msg.t
  | Estimate of { inst : int; round : int; value : Batch.t; ts : int }
  | Propose of { inst : int; round : int; value : Batch.t }
  | Ack of { inst : int; round : int }
  | Nack of { inst : int; round : int }
  | Decision_tag of { meta : rb_meta; inst : int; round : int; value : Batch.t option }
  | New_round of { inst : int; round : int }
  | Prop_dec of {
      inst : int;
      round : int;
      proposal : Batch.t;
      decided : (int * int) option;
    }
  | Ack_diff of { inst : int; round : int; piggyback : App_msg.t list }
  | Mono_estimate of {
      inst : int;
      round : int;
      value : Batch.t;
      ts : int;
      piggyback : App_msg.t list;
    }
  | Mono_decision_tag of { inst : int; round : int }
  | To_coord of App_msg.t
  | Payload_request of { ids : App_msg.id list }
  | Payload_push of App_msg.t
  | Decision_request of { inst : int }
  | Decision_full of { inst : int; value : Batch.t }

(* Serialization model: a small per-constructor header (message type,
   instance, round, counts) plus the bytes of every application message
   carried. An application message costs its payload size plus a 12-byte
   identity (origin + sequence). These constants match the paper's
   assumption that fixed-size messages (acks, tags) are negligible next to
   payload-bearing ones. *)

let header = 12
let app_id_bytes = 12
let app_msg_bytes (m : App_msg.t) = app_id_bytes + m.size
let list_bytes l = List.fold_left (fun acc m -> acc + app_msg_bytes m) 0 l
let batch_bytes b = list_bytes (Batch.to_list b)

let payload_bytes = function
  | Heartbeat -> 8
  | Diffuse m -> header + app_msg_bytes m
  | Estimate { value; _ } -> header + 8 + batch_bytes value
  | Propose { value; _ } -> header + batch_bytes value
  | Ack _ | Nack _ -> header
  | Decision_tag { value; _ } ->
    header + 8 + (match value with Some b -> batch_bytes b | None -> 0)
  | New_round _ -> header
  | Prop_dec { proposal; decided; _ } ->
    header + (match decided with Some _ -> 8 | None -> 0) + batch_bytes proposal
  | Ack_diff { piggyback; _ } -> header + list_bytes piggyback
  | Mono_estimate { value; piggyback; _ } ->
    header + 8 + batch_bytes value + list_bytes piggyback
  | Mono_decision_tag _ -> header
  | To_coord m -> header + app_msg_bytes m
  | Payload_request { ids } -> header + (app_id_bytes * List.length ids)
  | Payload_push m -> header + app_msg_bytes m
  | Decision_request _ -> header
  | Decision_full { value; _ } -> header + batch_bytes value

(* Layer attribution for the observability counters: which protocol layer
   pays for this message. The monolithic stack has no internal layering
   (that is its point), so all its messages bill to the abcast layer. *)
let layer : t -> Repro_obs.Obs.layer = function
  | Heartbeat -> `Net
  | Diffuse _ -> `Abcast
  | Estimate _ | Propose _ | Ack _ | Nack _ | New_round _ | Decision_request _
  | Decision_full _ ->
    `Consensus
  | Decision_tag _ -> `Rbcast
  | Prop_dec _ | Ack_diff _ | Mono_estimate _ | Mono_decision_tag _ | To_coord _
  | Payload_request _ | Payload_push _ ->
    `Abcast

let kind = function
  | Heartbeat -> "heartbeat"
  | Diffuse _ -> "diffuse"
  | Estimate _ -> "estimate"
  | Propose _ -> "propose"
  | Ack _ -> "ack"
  | Nack _ -> "nack"
  | Decision_tag _ -> "decision-tag"
  | New_round _ -> "new-round"
  | Prop_dec _ -> "prop-dec"
  | Ack_diff _ -> "ack-diff"
  | Mono_estimate _ -> "mono-estimate"
  | Mono_decision_tag _ -> "mono-decision-tag"
  | To_coord _ -> "to-coord"
  | Payload_request _ -> "payload-request"
  | Payload_push _ -> "payload-push"
  | Decision_request _ -> "decision-request"
  | Decision_full _ -> "decision-full"

let pp ppf = function
  | Heartbeat -> Fmt.string ppf "heartbeat"
  | Diffuse m -> Fmt.pf ppf "diffuse %a" App_msg.pp m
  | Estimate { inst; round; value; ts } ->
    Fmt.pf ppf "estimate i%d r%d ts%d %a" inst round ts Batch.pp value
  | Propose { inst; round; value } ->
    Fmt.pf ppf "propose i%d r%d %a" inst round Batch.pp value
  | Ack { inst; round } -> Fmt.pf ppf "ack i%d r%d" inst round
  | Nack { inst; round } -> Fmt.pf ppf "nack i%d r%d" inst round
  | Decision_tag { meta; inst; round; value } ->
    Fmt.pf ppf "decision-tag i%d r%d (rb %a/%d)%a" inst round Pid.pp meta.rb_origin
      meta.rb_seq
      (Fmt.option (fun ppf b -> Fmt.pf ppf " %a" Batch.pp b))
      value
  | New_round { inst; round } -> Fmt.pf ppf "new-round i%d r%d" inst round
  | Prop_dec { inst; round; proposal; decided } ->
    Fmt.pf ppf "prop-dec i%d r%d %a%a" inst round Batch.pp proposal
      (Fmt.option (fun ppf (d, r) -> Fmt.pf ppf " +decision(i%d r%d)" d r))
      decided
  | Ack_diff { inst; round; piggyback } ->
    Fmt.pf ppf "ack-diff i%d r%d [%a]" inst round
      (Fmt.list ~sep:(Fmt.any ", ") App_msg.pp)
      piggyback
  | Mono_estimate { inst; round; ts; value; piggyback } ->
    Fmt.pf ppf "mono-estimate i%d r%d ts%d %a [%a]" inst round ts Batch.pp value
      (Fmt.list ~sep:(Fmt.any ", ") App_msg.pp)
      piggyback
  | Mono_decision_tag { inst; round } -> Fmt.pf ppf "mono-decision-tag i%d r%d" inst round
  | To_coord m -> Fmt.pf ppf "to-coord %a" App_msg.pp m
  | Payload_request { ids } ->
    Fmt.pf ppf "payload-request [%a]" (Fmt.list ~sep:(Fmt.any ", ") App_msg.pp_id) ids
  | Payload_push m -> Fmt.pf ppf "payload-push %a" App_msg.pp m
  | Decision_request { inst } -> Fmt.pf ppf "decision-request i%d" inst
  | Decision_full { inst; value } -> Fmt.pf ppf "decision-full i%d %a" inst Batch.pp value
