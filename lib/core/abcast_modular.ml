module L = (val Logs.src_log Log.abcast)
module Obs = Repro_obs.Obs

type consensus_service = { propose : inst:int -> Batch.t -> unit }

type t = {
  params : Params.t;
  me : Repro_net.Pid.t;
  diffuse : App_msg.t -> unit;
  consensus : consensus_service;
  on_adeliver : App_msg.t -> unit;
  obs : Obs.t;
  delivered : Id_table.t;
  mutable pending : Batch.t;
  mutable next_decide : int; (* next instance to adeliver *)
  mutable proposed_up_to : int; (* highest instance proposed locally *)
  decisions : (int, Batch.t) Hashtbl.t; (* buffered out-of-order decisions *)
  mutable delivered_count : int;
}

let create ~params ~me ~diffuse ~consensus ~on_adeliver ?(obs = Obs.noop) () =
  {
    params;
    me;
    diffuse;
    consensus;
    on_adeliver;
    obs;
    delivered = Id_table.create ~n:params.Params.n;
    pending = Batch.empty;
    next_decide = 0;
    proposed_up_to = -1;
    decisions = Hashtbl.create 16;
    delivered_count = 0;
  }

(* Propose the pending batch for the next undecided instance — at most one
   outstanding proposal, renewed as soon as the previous instance decides
   (the Fig. 5 pipeline). *)
let maybe_propose t =
  if t.proposed_up_to < t.next_decide && not (Batch.is_empty t.pending) then begin
    let batch =
      (* Common case: everything pending fits under the cap, and the
         proposal is the pending batch itself — no list round-trip. *)
      if Batch.size t.pending <= t.params.Params.batch_cap then t.pending
      else
        let msgs = Batch.to_list t.pending in
        let rec take acc k = function
          | m :: rest when k > 0 -> take (m :: acc) (k - 1) rest
          | _ -> acc
        in
        Batch.of_list (take [] t.params.Params.batch_cap msgs)
    in
    t.proposed_up_to <- t.next_decide;
    L.debug (fun m ->
        m "%a propose instance %d (%d msgs, %d pending)" Repro_net.Pid.pp t.me
          t.next_decide (Batch.size batch) (Batch.size t.pending));
    let sp =
      if Obs.tracing t.obs then
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"propose"
          ~detail:(Printf.sprintf "i%d (%d msgs)" t.next_decide (Batch.size batch))
          ()
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () -> t.consensus.propose ~inst:t.next_decide batch)
  end

let adeliver_batch t batch =
  List.iter
    (fun m ->
      (* Integrity guard: a message appears in the total order once. *)
      let id = m.App_msg.id in
      if not (Id_table.mem t.delivered ~origin:id.App_msg.origin ~seq:id.App_msg.seq)
      then begin
        Id_table.add t.delivered ~origin:id.App_msg.origin ~seq:id.App_msg.seq;
        t.delivered_count <- t.delivered_count + 1;
        Obs.incr t.obs "abcast.adelivers";
        if Obs.enabled t.obs then
          Obs.observe_since t.obs "abcast.e2e_ms" m.App_msg.abcast_at;
        t.on_adeliver m
      end)
    (Batch.to_list batch);
  t.pending <- Batch.diff t.pending batch

let rec drain t =
  match Hashtbl.find_opt t.decisions t.next_decide with
  | Some batch ->
    Hashtbl.remove t.decisions t.next_decide;
    L.debug (fun m ->
        m "%a adeliver instance %d (%d msgs)" Repro_net.Pid.pp t.me t.next_decide
          (Batch.size batch));
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Abcast ~phase:"adeliver"
          ~detail:(Printf.sprintf "i%d (%d msgs)" t.next_decide (Batch.size batch))
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"adeliver"
          ~detail:(Printf.sprintf "i%d (%d msgs)" t.next_decide (Batch.size batch))
          ()
      end
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () -> adeliver_batch t batch);
    t.next_decide <- t.next_decide + 1;
    drain t
  | None -> ()

let delivered_mem t (m : App_msg.t) =
  Id_table.mem t.delivered ~origin:m.App_msg.id.App_msg.origin
    ~seq:m.App_msg.id.App_msg.seq

let abcast t m =
  if not (delivered_mem t m) then begin
    t.pending <- Batch.add t.pending m;
    Obs.incr t.obs "abcast.abcasts";
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Abcast ~phase:"abcast"
          ~detail:(Printf.sprintf "m %d/%d" (m.App_msg.id.App_msg.origin + 1) m.App_msg.id.App_msg.seq)
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Abcast ~phase:"abcast"
          ~detail:(Printf.sprintf "m %d/%d" (m.App_msg.id.App_msg.origin + 1) m.App_msg.id.App_msg.seq)
          ()
      end
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () ->
        t.diffuse m;
        maybe_propose t)
  end

let on_diffuse t m =
  if not (delivered_mem t m) then begin
    t.pending <- Batch.add t.pending m;
    maybe_propose t
  end

let on_decide t ~inst batch =
  if inst >= t.next_decide && not (Hashtbl.mem t.decisions inst) then begin
    Hashtbl.replace t.decisions inst batch;
    drain t;
    maybe_propose t
  end

let next_instance t = t.next_decide
let delivered_count t = t.delivered_count
let pending_count t = Batch.size t.pending

(* ---- Snapshot ---- *)

module Snap = Repro_sim.Snapshot

type ab_data = {
  ad_pending : Batch.t;
  ad_delivered : Id_table.t;
  ad_next_decide : int;
  ad_proposed_up_to : int;
  ad_decisions : (int * Batch.t) list; (* ascending inst *)
  ad_delivered_count : int;
}

let snapshot ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.abcast_modular.p%d" (t.me + 1)
  in
  let decisions =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.decisions []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Snap.make ~name ~version:1
    ~data:
      (Snap.pack
         {
           ad_pending = t.pending;
           ad_delivered = t.delivered;
           ad_next_decide = t.next_decide;
           ad_proposed_up_to = t.proposed_up_to;
           ad_decisions = decisions;
           ad_delivered_count = t.delivered_count;
         })
    [
      ("next_decide", Snap.Int t.next_decide);
      ("proposed_up_to", Snap.Int t.proposed_up_to);
      ("delivered_count", Snap.Int t.delivered_count);
      ("pending", Snap.Int (Batch.size t.pending));
      ("buffered_decisions", Snap.Int (List.length decisions));
    ]

let restore ?name t s =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "core.abcast_modular.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  let (d : ab_data) = Snap.unpack_data s in
  t.pending <- d.ad_pending;
  Id_table.assign ~from:d.ad_delivered t.delivered;
  t.next_decide <- d.ad_next_decide;
  t.proposed_up_to <- d.ad_proposed_up_to;
  Hashtbl.reset t.decisions;
  List.iter (fun (k, v) -> Hashtbl.add t.decisions k v) d.ad_decisions;
  t.delivered_count <- d.ad_delivered_count
