open Repro_net

(** What actually travels on the simulated wire.

    Under the default {!Params.Tcp_like} transport, protocol messages go
    directly ([Plain]); under {!Params.Lossy}, they are framed by the
    per-process reliable channel ([Frame] wraps data frames carrying a
    sequence number, and the channel's cumulative acks). Kind labels and
    sizes pass through to the inner message so traffic statistics stay
    comparable across transports (channel acks are labelled
    ["channel-ack"]).

    [Tampered] is the message adversary's corruption envelope: a copy
    mutated in flight. It models a flipped payload whose framing is still
    parseable — receivers with checksums on ({!Params.checksums}, the
    default) detect the tamper and discard the copy; receivers with
    checksums off unwrap and process the inner message as if genuine
    (silent corruption). Size passes through unchanged (the flip does not
    change the length). *)

type t =
  | Plain of Msg.t
  | Frame of Msg.t Rchannel.wire
  | Tampered of t

val payload_bytes : t -> int
(** Inner message size, plus 8 bytes of sequencing for data frames;
    channel acks are 16 bytes. [Tampered] is transparent. *)

val kind : t -> string
(** The inner {!Msg.kind}, or ["channel-ack"]; tampered copies are
    prefixed ["tampered-"]. *)

val layer : t -> Repro_obs.Obs.layer
(** The inner {!Msg.layer}; channel acks bill to the [`Net] layer. *)
