open Repro_sim
open Repro_net
open Repro_fd

(** Monolithic atomic broadcast (§4).

    The same algorithms as the modular stack — Chandra–Toueg consensus over
    batches, decisions disseminated to all — merged into a single module,
    which legalizes the three cross-layer optimizations of the paper:

    - {b §4.1} the decision of instance k travels inside the proposal of
      instance k+1 ([Prop_dec]), exploiting that the good-run coordinator
      of consecutive instances is the same process;
    - {b §4.2} a non-coordinator's abcast messages are not diffused to
      everyone; they ride the next consensus ack ([Ack_diff]) to the
      coordinator only — and after a coordinator change they are
      re-piggybacked on the estimate to the new coordinator
      ([Mono_estimate]);
    - {b §4.3} a standalone decision (pipeline tail) is sent as n-1 plain
      tags with no relaying ([Mono_decision_tag]); the messages of the next
      instance act as its acknowledgment.

    In steady state an instance costs exactly 2·(n-1) messages (§5.2.1).

    Correctness outside good runs follows the same locking discipline as
    {!Consensus} (ack-once per round, majority quorums, max-timestamp
    estimate selection), with recovery rounds that disseminate full
    decision values. Each optimization can be disabled independently
    through {!Params.mono_opts} for the ablation benchmarks. *)

type t

val create :
  engine:Engine.t ->
  params:Params.t ->
  me:Pid.t ->
  fd:Fd.t ->
  send:(dst:Pid.t -> Msg.t -> unit) ->
  broadcast:(Msg.t -> unit) ->
  on_adeliver:(App_msg.t -> unit) ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  t
(** [obs] (default: no-op) counts [abcast.abcasts], [abcast.adelivers] and
    [abcast.decisions], records the abcast-to-adelivery latency in the
    [abcast.e2e_ms] histogram, and traces [abcast]/[decide]/[adeliver]
    phases — all in the [`Abcast] layer, since the monolithic stack has no
    internal consensus/rbcast boundary to attribute to. *)

val abcast : t -> App_msg.t -> unit
(** Broadcast a message admitted by flow control. At the coordinator it
    enters the proposal pool directly; elsewhere it waits for the next ack
    (active pipeline) or goes straight to the coordinator (idle system). *)

val receive : t -> src:Pid.t -> Msg.t -> unit
(** Feed a wire message (all [Mono_*], [Prop_dec], [Ack_diff], [To_coord],
    [New_round], [Decision_*], and — in the cheap-decision ablation —
    [Decision_tag]). Other constructors are ignored. *)

val delivered_count : t -> int
(** Total messages adelivered. *)

val decided_instances : t -> int
(** Instances adelivered so far (= next expected instance number). *)

val rounds_used : t -> inst:int -> int
(** Highest round entered for an instance (1 in good runs); 0 if unknown. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["core.abcast_monolithic.p<me>"]. Carries every
    consensus instance (timers stripped), the delivery cursor, the
    coordinator pool, and [decision.i<k>] fields rendering the decided
    batches of the most recent instances for bisect's state-diff report. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
