open Repro_sim
open Repro_net
module Obs = Repro_obs.Obs

type latency_record = {
  id : App_msg.id;
  size : int;
  abcast_at : Time.t;
  first_delivery : Time.t;
}

type t = {
  engine : Engine.t;
  network : Wire_msg.t Network.t;
  params : Params.t;
  mutable replicas : Replica.t array;
  seen : Id_table.t; (* ids already seen delivered somewhere *)
  mutable rev_latencies : latency_record list;
  mutable observers : (Pid.t -> App_msg.t -> unit) list;
  mutable tamper_observers : (Pid.t -> detected:bool -> unit) list;
}

let handle_delivery t pid m =
  let id = m.App_msg.id in
  if not (Id_table.mem t.seen ~origin:id.App_msg.origin ~seq:id.App_msg.seq)
  then begin
    Id_table.add t.seen ~origin:id.App_msg.origin ~seq:id.App_msg.seq;
    t.rev_latencies <-
      {
        id = m.App_msg.id;
        size = m.App_msg.size;
        abcast_at = m.App_msg.abcast_at;
        first_delivery = Engine.now t.engine;
      }
      :: t.rev_latencies
  end;
  List.iter (fun f -> f pid m) t.observers

let create ~kind ~params ?(fd_mode = `Good_run) ?(record_deliveries = true)
    ?(obs = Obs.noop) () =
  let engine = Engine.create ~seed:params.Params.seed () in
  (* The observability sink is usually created before any engine exists
     (e.g. by the CLI, from flags); attach it to this group's virtual
     clock so every metric and event is stamped with Engine time. *)
  Obs.set_clock obs (fun () -> Engine.now engine);
  let network =
    Network.create engine ~wire:params.Params.wire ?topology:params.Params.topology
      ~kind_of:Wire_msg.kind ~layer_of:Wire_msg.layer ~obs
      ~batched:params.Params.batched_hops ~n:params.Params.n
      ~payload_bytes:Wire_msg.payload_bytes ()
  in
  (match params.Params.transport with
  | Params.Lossy p -> Network.set_loss_rate network p
  | Params.Tcp_like -> ());
  let t =
    {
      engine;
      network;
      params;
      replicas = [||];
      seen = Id_table.create ~n:params.Params.n;
      rev_latencies = [];
      observers = [];
      tamper_observers = [];
    }
  in
  t.replicas <-
    Array.init params.Params.n (fun pid ->
        Replica.create ~kind ~params ~net:network ~me:pid ~fd_mode ~record_deliveries
          ~on_adeliver:(fun m -> handle_delivery t pid m)
          ~on_tamper:(fun ~detected ->
            List.iter (fun f -> f pid ~detected) t.tamper_observers)
          ~obs ());
  t

let engine t = t.engine
let network t = t.network
let params t = t.params
let replica t pid = t.replicas.(pid)
let abcast t pid ~size = Replica.abcast t.replicas.(pid) ~size
let run_for t span = Engine.run_until t.engine (Time.add (Engine.now t.engine) span)

let run_until_quiescent t ?limit () =
  match limit with
  | None ->
    Engine.run t.engine;
    true
  | Some span ->
    let deadline = Time.add (Engine.now t.engine) span in
    let rec loop () =
      if Engine.pending t.engine = 0 then true
      else if Time.(Engine.now t.engine >= deadline) then false
      else begin
        ignore (Engine.step t.engine);
        loop ()
      end
    in
    loop ()

let crash t pid = Replica.crash t.replicas.(pid)
let deliveries t pid = Replica.deliveries t.replicas.(pid)
let delivered_counts t = Array.map Replica.delivered_count t.replicas

let total_admitted t =
  Array.fold_left (fun acc r -> acc + Replica.admitted r) 0 t.replicas

let latencies t =
  List.sort
    (fun a b -> Time.compare a.first_delivery b.first_delivery)
    (List.rev t.rev_latencies)

let on_delivery t f = t.observers <- t.observers @ [ f ]
let on_tamper t f = t.tamper_observers <- t.tamper_observers @ [ f ]
let stats t = Network.stats t.network

let mean_batch_size t =
  let r = t.replicas.(0) in
  let instances = Replica.instances_decided r in
  if instances = 0 then 0.0
  else float_of_int (Replica.delivered_count r) /. float_of_int instances

(* ---- Snapshot ---- *)

module Snap = Snapshot

type grp_data = { gd_seen : Id_table.t; gd_rev_latencies : latency_record list }

let section_name = "core.group"

let snapshot t =
  Snap.make ~name:section_name ~version:1
    ~data:(Snap.pack { gd_seen = t.seen; gd_rev_latencies = t.rev_latencies })
    [
      ("n", Snap.Int t.params.Params.n);
      ("distinct_delivered", Snap.Int (Id_table.population t.seen));
      ("latency_records", Snap.Int (List.length t.rev_latencies));
    ]

let restore t s =
  Snap.check s ~name:section_name ~version:1;
  if Snap.get_int s "n" <> t.params.Params.n then
    raise (Snap.Codec_error (section_name ^ ": snapshot taken with a different n"));
  let (d : grp_data) = Snap.unpack_data s in
  Id_table.assign ~from:d.gd_seen t.seen;
  t.rev_latencies <- d.gd_rev_latencies

(* The whole world, one section per module: engine (clock, RNG, queue
   residency), per-node CPUs, network, every replica's mounted modules,
   then the group's own delivery ledger. *)
let sections t =
  [
    Engine.snapshot t.engine;
    Engine.rng_snapshot t.engine;
    Engine.queue_snapshot t.engine;
  ]
  @ List.concat_map
      (fun pid ->
        [ Cpu.snapshot ~name:(Printf.sprintf "sim.cpu.p%d" (pid + 1)) (Network.cpu t.network pid) ])
      (Pid.all ~n:t.params.Params.n)
  @ [ Network.snapshot t.network ]
  @ List.concat_map
      (fun pid -> Replica.sections t.replicas.(pid))
      (Pid.all ~n:t.params.Params.n)
  @ [ snapshot t ]

let restore_sections t sections =
  let by_name name =
    List.find_opt (fun (s : Snap.section) -> String.equal s.name name) sections
  in
  let req name f =
    match by_name name with
    | Some s -> f s
    | None -> raise (Snap.Codec_error ("missing section " ^ name))
  in
  req "sim.engine" (Engine.restore t.engine);
  req "sim.engine.rng" (Engine.rng_restore t.engine);
  req "sim.event_queue" (Engine.queue_restore t.engine);
  List.iter
    (fun pid ->
      let name = Printf.sprintf "sim.cpu.p%d" (pid + 1) in
      req name (Cpu.restore ~name (Network.cpu t.network pid)))
    (Pid.all ~n:t.params.Params.n);
  req Network.section_name (Network.restore t.network);
  List.iter
    (fun pid -> Replica.restore_sections t.replicas.(pid) sections)
    (Pid.all ~n:t.params.Params.n);
  req section_name (restore t)
