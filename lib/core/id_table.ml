(* Dense membership sets for (origin, seq) message identities.

   [delivered]/[seen] sets grow for the whole run, so the persistent
   [Set] they replaced paid an ever-deepening tree walk plus rebalance
   allocation on every adeliver — by far the largest lib/core line in the
   PERF.md profile. Identities are per-origin sequence numbers assigned
   contiguously from 0, so a per-origin bit vector gives O(1) mem/add
   with no steady-state allocation. Content-driven only: growth depends
   on the largest seq inserted, never on wall time or hashing order, so
   replacing the Set cannot reorder anything (see PERF.md §determinism). *)

type t = { rows : Bytes.t array (* rows.(origin): bit per seq *) }

let create ~n = { rows = Array.init n (fun _ -> Bytes.make 64 '\000') }

let mem t ~origin ~seq =
  let row = t.rows.(origin) in
  let byte = seq lsr 3 in
  seq >= 0
  && byte < Bytes.length row
  && Char.code (Bytes.get row byte) land (1 lsl (seq land 7)) <> 0

let add t ~origin ~seq =
  if seq < 0 then invalid_arg "Id_table.add: negative seq";
  let byte = seq lsr 3 in
  let row =
    let row = t.rows.(origin) in
    let len = Bytes.length row in
    if byte < len then row
    else begin
      let len' = ref (len * 2) in
      while byte >= !len' do
        len' := !len' * 2
      done;
      let row' = Bytes.make !len' '\000' in
      Bytes.blit row 0 row' 0 len;
      t.rows.(origin) <- row';
      row'
    end
  in
  Bytes.set row byte
    (Char.chr (Char.code (Bytes.get row byte) lor (1 lsl (seq land 7))))

let population t =
  let bits_of_byte = Array.init 256 (fun c ->
      let rec pop c = if c = 0 then 0 else (c land 1) + pop (c lsr 1) in
      pop c)
  in
  Array.fold_left
    (fun acc row ->
      let total = ref acc in
      Bytes.iter (fun c -> total := !total + bits_of_byte.(Char.code c)) row;
      !total)
    0 t.rows

let assign ~from t =
  if Array.length t.rows <> Array.length from.rows then
    invalid_arg "Id_table.assign: group size mismatch";
  Array.iteri (fun i row -> t.rows.(i) <- Bytes.copy row) from.rows
