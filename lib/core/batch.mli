(** Batches of application messages — the values decided by consensus.

    The atomic broadcast reduction (§3.3) runs consensus on {e sets} of
    unordered messages; a decided batch is then adelivered "in some
    deterministic order". We keep batches sorted by message identity, which
    makes them canonical: two batches with the same messages are equal, and
    delivery order is determined by the batch alone. *)

type t
(** A canonical (sorted, duplicate-free) batch. *)

val empty : t
val is_empty : t -> bool

val of_list : App_msg.t list -> t
(** Sorts and deduplicates (by identity). *)

val to_list : t -> App_msg.t list
(** Ascending identity order — the adelivery order. *)

val size : t -> int
(** Number of messages (the paper's per-consensus [M]). *)

val payload_bytes : t -> int
(** Sum of the payload sizes of all messages. *)

val mem : t -> App_msg.id -> bool
val add : t -> App_msg.t -> t
val union : t -> t -> t

val remove_ids : t -> App_msg.Id_set.t -> t
(** Drop all messages whose identity is in the set. *)

val diff : t -> t -> t
(** [diff t b] drops from [t] every message whose identity appears in
    [b]. Equivalent to [remove_ids t (ids b)] without building the set;
    cost is [|b| log |t|] rather than a full rebuild of [t]. *)

val ids : t -> App_msg.Id_set.t

val equal : t -> t -> bool
(** Same message identities. *)

val pp : t Fmt.t
(** Prints [{p1#0, p2#3}]. *)
