(** Flow control (§5.1).

    Both stacks share one mechanism: a process may have at most [window] of
    its own abcast messages admitted but not yet adelivered; further abcast
    events block (queue) until deliveries free slots. This is what bounds
    the per-process backlog, produces the latency/throughput plateaus of
    Figs. 8 and 10, and (with the default window) keeps the measured mean
    consensus batch size near the paper's M = 4. *)

type t

val create : window:int -> t
(** @raise Invalid_argument if [window < 1]. *)

val has_room : t -> bool
(** Whether a new own message may be admitted now. *)

val acquire : t -> unit
(** Take one slot. @raise Invalid_argument if no room. *)

val release : t -> unit
(** Free one slot (an own message was adelivered) and run the registered
    drain callback if one is set. *)

val in_flight : t -> int
(** Currently admitted, not yet adelivered own messages. *)

val set_on_space : t -> (unit -> unit) -> unit
(** Register the callback invoked after each {!release}; the owner uses it
    to admit queued offers. Replaces any previous callback. *)

val snapshot : name:string -> t -> Repro_sim.Snapshot.section
(** Window size and in-flight count. The [on_space] callback is wiring,
    not state, and rides the world blob. *)

val restore : name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch, including a
    changed window size. *)
