open Repro_sim
open Repro_net

(** Atomic broadcast by {e indirect} consensus — the related-work middle
    ground the paper discusses (§6, citing Ekwall & Schiper, DSN 2006).

    The modular stack's byte overhead comes from every payload travelling
    twice: once in the diffusion, once inside the consensus proposal
    (§5.2.2). Indirect consensus widens the consensus interface just
    enough to fix that while keeping the module boundary: consensus still
    knows nothing of atomic broadcast, but it now agrees on {e message
    identifiers} instead of full payloads. Payloads travel exactly once
    (the diffusion); proposals, estimates and recovery values shrink to a
    few bytes per message.

    The price is a new coupling at delivery time: a decision may name an
    identifier whose payload has not arrived yet (diffusion in flight) or
    never will arrive on its own (the diffuser crashed mid-send, possible
    under the §3.3 plain-channel optimization). Delivery blocks on the
    missing payloads, and after a grace period the process asks everyone
    ([Payload_request] / [Payload_push]) — some process has it, because
    the decided identifiers come from a proposer that did.

    This module reuses the unchanged {!Consensus} engine: identifier
    batches are encoded as zero-size message batches, so the wire-size
    model prices a proposal at exactly the identifier bytes. *)

type consensus_service = { propose : inst:int -> Batch.t -> unit }

type t

val create :
  engine:Engine.t ->
  params:Params.t ->
  me:Pid.t ->
  diffuse:(App_msg.t -> unit) ->
  send:(dst:Pid.t -> Msg.t -> unit) ->
  broadcast:(Msg.t -> unit) ->
  consensus:consensus_service ->
  on_adeliver:(App_msg.t -> unit) ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  t
(** [diffuse] sends the payload to every other process; [broadcast]/[send]
    carry the payload-recovery messages. The consensus decisions must be
    fed back through {!on_decide}. [obs] follows the same metric and trace
    names as {!Abcast_modular.create}. *)

val abcast : t -> App_msg.t -> unit
val on_diffuse : t -> App_msg.t -> unit

val on_payload_request : t -> src:Pid.t -> App_msg.id list -> unit
(** Answer with {!Msg.Payload_push} for every requested payload held. *)

val on_payload_push : t -> App_msg.t -> unit

val on_decide : t -> inst:int -> Batch.t -> unit
(** Feed an identifier-batch decision; delivery happens in instance order
    once all named payloads are present. *)

val next_instance : t -> int
val delivered_count : t -> int

val blocked_on_payloads : t -> int
(** Identifiers named by the next pending decision whose payloads are
    still missing (diagnostics; 0 in good runs at quiescence). *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["core.abcast_indirect.p<me>"]. Carries known
    payloads, delivered/pending/ordered identity sets, decision cursor and
    buffered decisions; the fetch timer rides the world blob. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
