open Repro_net
open Repro_fd
open Repro_framework

(** One process of the group: a composed protocol stack on a simulated
    machine.

    A replica owns the application-side offer queue and flow control
    (shared by both stacks, §5.1), a failure detector, and either the
    modular composition (ABcast + Consensus + RBcast microprotocols bound
    over an event bus) or the monolithic module. It registers itself as the
    network handler for its pid and demultiplexes incoming wire messages to
    the mounted modules — each hand-over crossing the framework boundary at
    the configured dispatch cost. *)

type kind =
  | Modular  (** ABcast / Consensus / RBcast composed over the framework (§3). *)
  | Monolithic  (** The merged §4 stack. *)
  | Indirect
      (** Modular, but with the widened consensus interface of the related
          work [12]: consensus orders message identifiers while payloads
          travel once ({!Abcast_indirect}). *)

type fd_mode =
  [ `Good_run  (** No failure detection at all: no heartbeats, no
                   suspicions. The benchmark setting (§5.1 measures good
                   runs only). *)
  | `Heartbeat of Heartbeat_fd.config  (** Live ◇P detection. *)
  | `Chen of Chen_fd.config  (** Adaptive arrival-prediction detection. *)
  | `Oracle of Oracle_fd.t  (** Test-scripted suspicions. *) ]

type t

val create :
  kind:kind ->
  params:Params.t ->
  net:Wire_msg.t Network.t ->
  me:Pid.t ->
  ?fd_mode:fd_mode ->
  ?record_deliveries:bool ->
  ?on_adeliver:(App_msg.t -> unit) ->
  ?on_tamper:(detected:bool -> unit) ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  t
(** Build and wire the replica. [fd_mode] defaults to [`Good_run];
    [record_deliveries] (default [true]) keeps the full in-order delivery
    log in memory for assertions. [on_adeliver] observes every adelivered
    message (after internal bookkeeping). [on_tamper] (default: ignore)
    observes every {!Wire_msg.Tampered} copy that reaches this replica,
    with [detected] telling whether checksums caught it (the copy was
    discarded) or it was processed as genuine ({!Params.checksums} off).

    [obs] (default: no-op) is handed to every mounted protocol module (see
    their [create] docs for the metric names) and additionally records an
    [`App]-layer [adeliver] trace event per delivered message at this
    process. *)

val me : t -> Pid.t
val kind : t -> kind

val abcast : t -> size:int -> unit
(** Offer one message of [size] bytes. Admission is immediate if the
    flow-control window has room, otherwise the offer queues and is
    admitted (and timestamped) when a slot frees — the paper's "blocks
    further abcast events" semantics. *)

val offered : t -> int
(** Messages offered so far. *)

val admitted : t -> int
(** Messages admitted (abcast events completed, each stamping its [t0]). *)

val delivered_count : t -> int
(** Messages adelivered at this replica. *)

val instances_decided : t -> int
(** Consensus instances adelivered at this replica (denominator of the
    measured mean batch size M). *)

val deliveries : t -> App_msg.id list
(** The delivery log, oldest first. Empty if recording is off. *)

val queued_offers : t -> int
(** Offers waiting for a flow-control slot. *)

val stack : t -> Stack.t
(** The framework composition (modules, boundary-crossing count). *)

val crash : t -> unit
(** Crash this process: network I/O stops, heartbeating stops, queued
    offers are discarded. *)

(** {2 Snapshots} *)

val snapshot : t -> Repro_sim.Snapshot.section
(** The replica's own section, ["core.replica.p<me>"]: admission queue,
    sequence allocator, delivery log and crash flag. *)

val restore : t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch (including a
    snapshot taken with a different stack kind). *)

val sections : t -> Repro_sim.Snapshot.section list
(** Every mounted module's section in a fixed order: replica, flow
    control, reliable channel (lossy transport only), failure detector (if
    any), event bus, then the stack's protocol modules top-down. *)

val restore_sections : t -> Repro_sim.Snapshot.section list -> unit
(** Re-seat every mounted module from [sections]-shaped output. Sections
    for modules this replica does not mount are ignored; sections it does
    mount must be present.
    @raise Repro_sim.Snapshot.Codec_error on a missing section or any
    per-module mismatch. *)
