(** Modular atomic broadcast (§3.3): reduction to consensus.

    The ABcast microprotocol of the modular stack. It diffuses every abcast
    message to all processes over plain quasi-reliable channels (the §3.3
    optimization of the original rbcast-based dissemination), accumulates
    received messages in a pending set, and runs a sequence of consensus
    instances — each proposed with the current pending batch — to agree on
    delivery order. Decided batches are adelivered in instance order, and
    within a batch in the deterministic message-identity order.

    Modularity boundary: consensus is reachable only through the
    [propose]/[on_decide] pair ({!consensus_service}); this module cannot
    see coordinators, rounds, or consensus messages — so it cannot
    piggyback diffusions on acks or merge decisions into proposals, which
    is precisely the §4 head start the monolithic stack enjoys. *)

type consensus_service = { propose : inst:int -> Batch.t -> unit }
(** The black-box view of the consensus module. Decisions flow back through
    {!on_decide}, wired by the stack composition. *)

type t

val create :
  params:Params.t ->
  me:Repro_net.Pid.t ->
  diffuse:(App_msg.t -> unit) ->
  consensus:consensus_service ->
  on_adeliver:(App_msg.t -> unit) ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  t
(** [diffuse] must send the message to every other process (the stack wires
    it to the network). [on_adeliver] observes the total order.

    [obs] (default: no-op) counts [abcast.abcasts] and [abcast.adelivers],
    records the abcast-to-adelivery latency at this process in the
    [abcast.e2e_ms] histogram, and traces [abcast]/[adeliver] phases in the
    [`Abcast] layer. *)

val abcast : t -> App_msg.t -> unit
(** Broadcast a message admitted by flow control: diffuse it and make sure
    a consensus instance will order it. *)

val on_diffuse : t -> App_msg.t -> unit
(** Receive another process's diffused message. *)

val on_decide : t -> inst:int -> Batch.t -> unit
(** Receive a consensus decision. Out-of-order decisions are buffered and
    adelivered in instance order. *)

val next_instance : t -> int
(** The next instance this process will decide (= number of instances
    adelivered so far). *)

val delivered_count : t -> int
(** Total messages adelivered. *)

val pending_count : t -> int
(** Messages known but not yet ordered (diagnostics). *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["core.abcast_modular.p<me>"]. Carries the
    pending pool, delivered-identity set, decision cursor and buffered
    out-of-order decisions. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
