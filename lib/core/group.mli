open Repro_sim
open Repro_net

(** A whole simulated group: engine, network and n replicas.

    The top-level entry point of the library. Builds the cluster described
    by {!Params}, mounts the chosen stack on every process, and exposes the
    operations experiments and examples need: abcast, virtual-time
    execution, crash injection, delivery inspection, traffic statistics and
    the early-latency record of every message (§5.1's [L = min_i t_i - t0],
    computed from the first adelivery of each message anywhere). *)

type t

val create :
  kind:Replica.kind ->
  params:Params.t ->
  ?fd_mode:Replica.fd_mode ->
  ?record_deliveries:bool ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  t
(** [obs] (default: the no-op sink) receives every metric and trace event
    of the run: the network's per-layer traffic counters and tx/rx events,
    and each mounted protocol module's counters, latency histograms and
    phase events. The group binds the sink's clock to its engine, so all
    timestamps are virtual (Engine) time — never wall time. *)

val engine : t -> Engine.t
val network : t -> Wire_msg.t Network.t
val params : t -> Params.t
val replica : t -> Pid.t -> Replica.t

val abcast : t -> Pid.t -> size:int -> unit
(** Offer one message at a process (see {!Replica.abcast}). *)

val run_for : t -> Time.span -> unit
(** Advance the simulation by a span of virtual time. *)

val run_until_quiescent : t -> ?limit:Time.span -> unit -> bool
(** Run until no events remain (all protocol activity finished) or the
    optional virtual-time limit is hit; [true] on quiescence. Note that
    heartbeat failure detectors never go quiescent — use [limit]. *)

val crash : t -> Pid.t -> unit
(** Crash a process (§2.1: silent, permanent). *)

val deliveries : t -> Pid.t -> App_msg.id list
(** The in-order delivery log of one replica. *)

val delivered_counts : t -> int array
(** Per-process adelivered message counts. *)

val total_admitted : t -> int
(** Messages admitted (abcast completed) across all processes. *)

type latency_record = {
  id : App_msg.id;
  size : int;
  abcast_at : Time.t;  (** t0 *)
  first_delivery : Time.t;  (** min over processes of the adelivery time *)
}

val latencies : t -> latency_record list
(** One record per message adelivered anywhere, in first-delivery order. *)

val on_delivery : t -> (Pid.t -> App_msg.t -> unit) -> unit
(** Register an observer of every adelivery at every process. *)

val on_tamper : t -> (Pid.t -> detected:bool -> unit) -> unit
(** Register an observer of every adversary-tampered copy reaching a
    replica: the pid of the receiver and whether checksums detected (and
    discarded) the copy or it was processed as genuine. Only fires when a
    message adversary with a nonzero corrupt rate is armed. *)

val stats : t -> Net_stats.t
(** Live wire-traffic counters of the group's network. *)

val mean_batch_size : t -> float
(** Measured mean number of messages adelivered per consensus instance at
    process p1 — the paper's M (§5.1 fixes it to ≈ 4 by flow control). *)

(** {2 Snapshots} *)

val snapshot : t -> Repro_sim.Snapshot.section
(** The group's own section, ["core.group"]: the first-delivery ledger. *)

val restore : t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)

val sections : t -> Repro_sim.Snapshot.section list
(** One section per module for the whole world, in a fixed order: engine
    (clock, root RNG, event-queue residency), per-node CPUs, network,
    every replica's mounted modules, then the group ledger. This is the
    frame metadata [Repro_replay] persists and [repro bisect] diffs. *)

val restore_sections : t -> Repro_sim.Snapshot.section list -> unit
(** Re-seat the whole world's serializable state from {!sections}-shaped
    output (pending-event {e contents} ride the replay driver's world
    blob; see [lib/replay]).
    @raise Repro_sim.Snapshot.Codec_error on a missing section or any
    per-module mismatch. *)
