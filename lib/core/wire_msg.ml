open Repro_net

type t =
  | Plain of Msg.t
  | Frame of Msg.t Rchannel.wire
  | Tampered of t

let rec payload_bytes = function
  | Plain m -> Msg.payload_bytes m
  | Frame (Rchannel.Data { payload; _ }) -> 8 + Msg.payload_bytes payload
  | Frame (Rchannel.Ack _) -> 16
  | Tampered inner -> payload_bytes inner

let rec kind = function
  | Plain m -> Msg.kind m
  | Frame (Rchannel.Data { payload; _ }) -> Msg.kind payload
  | Frame (Rchannel.Ack _) -> "channel-ack"
  | Tampered inner -> "tampered-" ^ kind inner

let rec layer = function
  | Plain m -> Msg.layer m
  | Frame (Rchannel.Data { payload; _ }) -> Msg.layer payload
  | Frame (Rchannel.Ack _) -> `Net
  | Tampered inner -> layer inner
