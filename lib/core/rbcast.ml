open Repro_net
module Obs = Repro_obs.Obs

type 'p t = {
  me : Pid.t;
  n : int;
  variant : Params.rbcast_variant;
  broadcast : meta:Msg.rb_meta -> 'p -> unit;
  deliver : meta:Msg.rb_meta -> 'p -> unit;
  obs : Obs.t;
  seen : Id_table.t; (* rdelivered (origin, seq) envelopes *)
  mutable next_seq : int;
}

let create ~me ~n ~variant ~broadcast ~deliver ?(obs = Obs.noop) () =
  { me; n; variant; broadcast; deliver; obs; seen = Id_table.create ~n; next_seq = 0 }

let relayers ~n ~origin =
  let count = (n - 1) / 2 in
  let rec take acc k pid =
    if k = 0 || pid >= n then List.rev acc
    else if pid = origin then take acc k (pid + 1)
    else take (pid :: acc) (k - 1) (pid + 1)
  in
  take [] count 0

let send_to_others t ~meta payload = t.broadcast ~meta payload

let rbcast t payload =
  let meta = { Msg.rb_origin = t.me; rb_seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  Id_table.add t.seen ~origin:meta.rb_origin ~seq:meta.rb_seq;
  Obs.incr t.obs "rbcast.broadcasts";
  Obs.incr t.obs "rbcast.delivers";
  let sp =
    if Obs.tracing t.obs then begin
      Obs.event t.obs ~pid:t.me ~layer:`Rbcast ~phase:"rbcast"
        ~detail:(Printf.sprintf "rb %d/%d" (meta.rb_origin + 1) meta.rb_seq)
        ();
      Obs.span t.obs ~pid:t.me ~layer:`Rbcast ~phase:"rbcast"
        ~detail:(Printf.sprintf "rb %d/%d" (meta.rb_origin + 1) meta.rb_seq)
        ()
    end
    else Obs.Span.no_parent
  in
  Obs.with_span_ctx t.obs sp (fun () ->
      t.deliver ~meta payload;
      send_to_others t ~meta payload)

(* Arithmetic membership in [relayers ~n ~origin] — the relay set is the
   first ⌊(n-1)/2⌋ pids with [origin] skipped, so [me]'s rank among
   non-origin pids decides it without building the list per receipt. *)
let should_relay t ~origin =
  match t.variant with
  | Params.Classic -> true
  | Params.Majority ->
    t.me <> origin && (if t.me < origin then t.me else t.me - 1) < (t.n - 1) / 2

let receive t ~src:_ ~meta payload =
  let origin = meta.Msg.rb_origin and seq = meta.Msg.rb_seq in
  if not (Id_table.mem t.seen ~origin ~seq) then begin
    Id_table.add t.seen ~origin ~seq;
    Obs.incr t.obs "rbcast.delivers";
    let sp =
      if Obs.tracing t.obs then begin
        Obs.event t.obs ~pid:t.me ~layer:`Rbcast ~phase:"rdeliver"
          ~detail:(Printf.sprintf "rb %d/%d" (meta.Msg.rb_origin + 1) meta.Msg.rb_seq)
          ();
        Obs.span t.obs ~pid:t.me ~layer:`Rbcast ~phase:"rdeliver"
          ~detail:(Printf.sprintf "rb %d/%d" (meta.Msg.rb_origin + 1) meta.Msg.rb_seq)
          ()
      end
      else Obs.Span.no_parent
    in
    Obs.with_span_ctx t.obs sp (fun () ->
        t.deliver ~meta payload;
        if should_relay t ~origin:meta.Msg.rb_origin then begin
          Obs.incr t.obs "rbcast.relays";
          send_to_others t ~meta payload
        end)
  end

(* ---- Snapshot ---- *)

module Snap = Repro_sim.Snapshot

let snapshot ?name t =
  let name =
    match name with Some n -> n | None -> Printf.sprintf "core.rbcast.p%d" (t.me + 1)
  in
  Snap.make ~name ~version:1 ~data:(Snap.pack t.seen)
    [
      ("next_seq", Snap.Int t.next_seq);
      ("seen", Snap.Int (Id_table.population t.seen));
    ]

let restore ?name t s =
  let name =
    match name with Some n -> n | None -> Printf.sprintf "core.rbcast.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  t.next_seq <- Snap.get_int s "next_seq";
  Id_table.assign ~from:(Snap.unpack_data s) t.seen
