(* A calendar queue (R. Brown, CACM 31(10), 1988), specialised for the
   near-monotone timer pattern of a discrete-event simulation. The
   observable contract is identical to the binary heap it replaced — pops
   come out in ascending [(time, seq)] order with [seq] assigned at
   insertion, so same-instant events pop in insertion order and the
   whole-simulation determinism argument is unchanged (see the .mli).

   Layout: a power-of-two array of buckets. Bucket [i] holds the events
   whose [time lsr width_log] is congruent to [i] modulo the bucket
   count, as a sorted intrusive singly-linked list (ascending
   [(time, seq)]) with a tail pointer for the O(1) same-instant append
   that dominates under FIFO timer traffic. A pop resumes a cyclic scan
   at [cur_slot]: an event found at the head of the current slot whose
   instant falls inside the slot's current "year window" is the global
   minimum. If a whole cycle finds nothing, the next event is more than
   one year ahead and a direct minimum-over-heads search jumps the scan
   there. The bucket count doubles/halves with occupancy and the bucket
   width is re-estimated from the live events' mean spacing on each
   rehash, so both parameters track the workload; every decision depends
   only on queue content, never on wall time, so rehashing cannot perturb
   determinism.

   Cells are mutable and pooled on a free list, so the steady-state
   push/pop cycle of a running simulation allocates nothing. A handle
   names a cell *generation* — the [(cell, seq)] pair — and a freed cell
   is stamped [seq = -1], so cancelling through a stale handle after the
   cell was recycled is a guaranteed no-op instead of a corruption.

   The sentinel [nil] terminates every list; it is recognised by its
   unique [seq] ([nil_seq]) rather than by physical identity, which keeps
   the module inside the repo's determinism lint (no [==] at mutable
   types). *)

type 'a cell = {
  mutable time : Time.t;
  mutable seq : int; (* nil_seq: sentinel; -1: freed; >= 0: resident *)
  mutable value : 'a;
  mutable cancelled : bool;
  mutable next : 'a cell; (* [nil]-terminated; the free list reuses it *)
}

type handle = H : 'a cell * int -> handle

(* Bucket array plus scan state. Created lazily at the first push because
   the [nil] sentinel needs an ['a] value to exist (it permanently holds
   the first value pushed; harmless, and freed cells are re-pointed at it
   so popped payloads do not outlive their event). *)
type 'a slots = {
  nil : 'a cell;
  mutable buckets : 'a cell array; (* list heads; [nil] means empty *)
  mutable tails : 'a cell array; (* meaningful only for non-empty buckets *)
  mutable mask : int; (* bucket count - 1; the count is a power of two *)
  mutable width_log : int; (* log2 of the bucket width in ns *)
  mutable cur_slot : int; (* where the scan for the next pop resumes *)
  mutable bucket_top : int; (* exclusive end (ns) of cur_slot's window *)
  mutable free : 'a cell; (* free-list head; [nil] means empty *)
}

type 'a t = {
  mutable slots : 'a slots option;
  mutable size : int; (* resident cells, cancelled included *)
  mutable pending : int; (* live (non-cancelled) cells *)
  mutable next_seq : int;
}

let nil_seq = min_int
let is_nil c = c.seq = nil_seq
let ns (time : Time.t) = (time :> int)
let min_buckets = 16

let create () = { slots = None; size = 0; pending = 0; next_seq = 0 }

let make_slots ~time value =
  let rec nil = { time; seq = nil_seq; value; cancelled = true; next = nil } in
  {
    nil;
    buckets = Array.make min_buckets nil;
    tails = Array.make min_buckets nil;
    mask = min_buckets - 1;
    width_log = 13 (* 8.192 us; re-estimated on the first rehash *);
    cur_slot = 0;
    bucket_top = 0;
    free = nil;
  }

let slot_of s tns = (tns lsr s.width_log) land s.mask
let window_top s tns = ((tns lsr s.width_log) + 1) lsl s.width_log

(* Predecessor of the insertion point for [(tns, seq)] inside a bucket
   list, starting at [prev] (which must sort before the new cell). The
   [is_nil] guard is unreachable when the caller has already excluded the
   tail-append case, but keeps a corrupted list from looping forever. *)
let rec find_prev tns seq prev =
  let nx = prev.next in
  if is_nil nx then prev
  else
    let nx_t = ns nx.time in
    if tns < nx_t || (tns = nx_t && seq < nx.seq) then prev
    else find_prev tns seq nx

(* Insert a resident cell into its bucket, keeping the list sorted by
   [(time, seq)]. The common case under timer traffic — later than
   everything already there — is the O(1) tail check. *)
let insert s cell =
  let tns = ns cell.time in
  let i = slot_of s tns in
  let head = s.buckets.(i) in
  if is_nil head then begin
    cell.next <- s.nil;
    s.buckets.(i) <- cell;
    s.tails.(i) <- cell
  end
  else begin
    let tl = s.tails.(i) in
    let tl_t = ns tl.time in
    if tl_t < tns || (tl_t = tns && tl.seq < cell.seq) then begin
      cell.next <- s.nil;
      tl.next <- cell;
      s.tails.(i) <- cell
    end
    else begin
      let h_t = ns head.time in
      if tns < h_t || (tns = h_t && cell.seq < head.seq) then begin
        cell.next <- head;
        s.buckets.(i) <- cell
      end
      else begin
        let prev = find_prev tns cell.seq head in
        cell.next <- prev.next;
        prev.next <- cell
      end
    end
  end

let free_cell s cell =
  cell.seq <- -1;
  cell.cancelled <- true;
  cell.value <- s.nil.value;
  cell.next <- s.free;
  s.free <- cell

let unlink_head s i head =
  let nx = head.next in
  s.buckets.(i) <- nx;
  if is_nil nx then s.tails.(i) <- s.nil

let ilog2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* Rebuild the bucket array sized to the live population; cancelled cells
   are collected here. Runs amortised-rarely (doubling policy). *)
let resize t s =
  let kept = ref s.nil in
  let live = ref 0 in
  let tmin = ref max_int and tmax = ref 0 in
  for i = 0 to s.mask do
    let c = ref s.buckets.(i) in
    while not (is_nil !c) do
      let cell = !c in
      c := cell.next;
      if cell.cancelled then begin
        t.size <- t.size - 1;
        free_cell s cell
      end
      else begin
        incr live;
        let tn = ns cell.time in
        if tn < !tmin then tmin := tn;
        if tn > !tmax then tmax := tn;
        cell.next <- !kept;
        kept := cell
      end
    done
  done;
  let nbuckets =
    let rec pow2 k = if k >= !live then k else pow2 (k * 2) in
    pow2 min_buckets
  in
  if !live > 1 then begin
    (* Aim for a bucket width of about the mean spacing of the live
       events, clamped to [16 ns, 64 s] per bucket. Event times are
       heavily skewed towards the near future (deliveries) with a thin
       far tail (timers), so the mean overestimates typical spacing —
       erring narrow keeps the hot near-term chains short, and the tail
       only makes the cyclic scan skip a few more empty buckets. *)
    let gap = max 1 ((!tmax - !tmin) / !live) in
    let wl = ilog2 gap in
    s.width_log <- (if wl < 4 then 4 else if wl > 36 then 36 else wl)
  end;
  s.mask <- nbuckets - 1;
  s.buckets <- Array.make nbuckets s.nil;
  s.tails <- Array.make nbuckets s.nil;
  let c = ref !kept in
  while not (is_nil !c) do
    let cell = !c in
    c := cell.next;
    insert s cell
  done;
  if t.pending > 0 then begin
    s.cur_slot <- slot_of s !tmin;
    s.bucket_top <- window_top s !tmin
  end

let reserve_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

(* Insert with an explicit sequence number — either freshly drawn by the
   caller ([push_cell]) or reserved earlier via [reserve_seq]. [insert]
   keeps buckets sorted by [(time, seq)], so a reserved seq arriving after
   younger seqs lands exactly where an immediate insertion would have. *)
let push_cell_seq t ~time ~seq value =
  let s =
    match t.slots with
    | Some s -> s
    | None ->
      let s = make_slots ~time value in
      t.slots <- Some s;
      s
  in
  let cell =
    if is_nil s.free then { time; seq; value; cancelled = false; next = s.nil }
    else begin
      let c = s.free in
      s.free <- c.next;
      c.time <- time;
      c.seq <- seq;
      c.value <- value;
      c.cancelled <- false;
      c
    end
  in
  insert s cell;
  t.size <- t.size + 1;
  t.pending <- t.pending + 1;
  let tns = ns time in
  if t.pending = 1 || tns < s.bucket_top - (1 lsl s.width_log) then begin
    (* The new event precedes the scan window (or the queue was empty):
       rewind the scan so it cannot be missed. Rewinding is always safe;
       skipping forward is only done when nothing was pending. *)
    s.cur_slot <- slot_of s tns;
    s.bucket_top <- window_top s tns
  end;
  if t.size > 2 * (s.mask + 1) then resize t s;
  cell

let push_cell t ~time value = push_cell_seq t ~time ~seq:(reserve_seq t) value

let push t ~time value =
  let cell = push_cell t ~time value in
  H (cell, cell.seq)

let push_unit t ~time value = ignore (push_cell t ~time value : _ cell)

let push_reserved t ~time ~seq value =
  ignore (push_cell_seq t ~time ~seq value : _ cell)

(* Full cycle without a hit: the next event is more than one year ahead.
   Take the minimum over bucket heads directly and jump the scan there.
   Cancelled prefixes are collected so every inspected head is live. *)
let direct_search t s =
  let best = ref s.nil in
  for i = 0 to s.mask do
    let rec clean () =
      let h = s.buckets.(i) in
      if (not (is_nil h)) && h.cancelled then begin
        unlink_head s i h;
        t.size <- t.size - 1;
        free_cell s h;
        clean ()
      end
    in
    clean ();
    let h = s.buckets.(i) in
    if not (is_nil h) then begin
      let b = !best in
      if
        is_nil b
        || ns h.time < ns b.time
        || (ns h.time = ns b.time && h.seq < b.seq)
      then best := h
    end
  done;
  let front = !best in
  (* [pending > 0] at the caller, so a live head exists. *)
  let tns = ns front.time in
  s.cur_slot <- slot_of s tns;
  s.bucket_top <- window_top s tns;
  front

(* The cyclic scan: visit [steps] more slots, each paired with its year
   window [top - width, top). A live head inside the window is the global
   minimum — every earlier window was empty when the scan passed it, and
   pushes behind the scan rewind it. Top-level (not a closure) so the pop
   path allocates nothing. *)
let rec scan_front t s width slot top steps =
  let head = s.buckets.(slot) in
  if (not (is_nil head)) && head.cancelled then begin
    unlink_head s slot head;
    t.size <- t.size - 1;
    free_cell s head;
    scan_front t s width slot top steps
  end
  else if (not (is_nil head)) && ns head.time < top then begin
    s.cur_slot <- slot;
    s.bucket_top <- top;
    head
  end
  else if steps = 0 then direct_search t s
  else scan_front t s width ((slot + 1) land s.mask) (top + width) (steps - 1)

(* The earliest live cell, still linked at the head of bucket
   [cur_slot]; [nil] when nothing is pending. *)
let find_front t s =
  if t.pending = 0 then s.nil
  else scan_front t s (1 lsl s.width_log) s.cur_slot s.bucket_top (s.mask + 1)

(* Detach the front cell returned by [find_front] and shrink the table if
   occupancy dropped far below the bucket count. *)
let take_front t s front =
  unlink_head s s.cur_slot front;
  t.size <- t.size - 1;
  t.pending <- t.pending - 1;
  if s.mask + 1 > min_buckets && t.size * 4 < s.mask + 1 then resize t s

let cancel t (H (cell, seq)) =
  if cell.seq = seq && not cell.cancelled then begin
    cell.cancelled <- true;
    t.pending <- t.pending - 1
  end

let pop t =
  match t.slots with
  | None -> None
  | Some s ->
    let front = find_front t s in
    if is_nil front then None
    else begin
      let time = front.time and value = front.value in
      take_front t s front;
      free_cell s front;
      Some (time, value)
    end

let pop_apply t f =
  match t.slots with
  | None -> false
  | Some s ->
    let front = find_front t s in
    if is_nil front then false
    else begin
      let time = front.time and value = front.value in
      take_front t s front;
      free_cell s front;
      f time value;
      true
    end

(* The engine's merged hot loop: drain events in ascending [(time, seq)]
   order while the front precedes both the [limit] instant (inclusive)
   and the cosource bound [(!bound_ns, !bound_seq)] (exclusive — the
   bound names an item the caller executes itself). The bound refs are
   re-read every iteration, because an applied handler may hand the
   co-scheduled source new work that precedes the old bound; a stale
   bound would let a later queue event run first. Per-event overhead
   versus [pop_apply] is two loads and two compares — no closure calls,
   which is what makes the merged loop cheaper than materialising one
   queue event per co-scheduled item. *)
let pop_apply_bounded t ~limit ~bound_ns ~bound_seq f =
  match t.slots with
  | None -> ()
  | Some s ->
    let limit_ns = ns limit in
    let continue_ = ref true in
    while !continue_ do
      let front = find_front t s in
      if is_nil front then continue_ := false
      else begin
        let tns = ns front.time in
        if tns > limit_ns then continue_ := false
        else begin
          let bns = !bound_ns in
          if bns < tns || (bns = tns && !bound_seq < front.seq) then
            continue_ := false
          else begin
            let time = front.time and value = front.value in
            take_front t s front;
            free_cell s front;
            f time value
          end
        end
      end
    done

let pop_apply_until t ~limit f =
  match t.slots with
  | None -> false
  | Some s ->
    let front = find_front t s in
    if is_nil front || ns front.time > ns limit then false
    else begin
      let time = front.time and value = front.value in
      take_front t s front;
      free_cell s front;
      f time value;
      true
    end

let peek_time t =
  match t.slots with
  | None -> None
  | Some s ->
    let front = find_front t s in
    if is_nil front then None else Some front.time

(* Allocation-free peeks for the engine's merge loop: [max_int] when the
   queue is empty. [find_front] leaves the scan parked on the front cell,
   so the second peek (and the pop that follows) re-find it in O(1). *)
let peek_ns t =
  match t.slots with
  | None -> max_int
  | Some s ->
    let front = find_front t s in
    if is_nil front then max_int else ns front.time

let peek_seq t =
  match t.slots with
  | None -> max_int
  | Some s ->
    let front = find_front t s in
    if is_nil front then max_int else front.seq

let is_empty t = t.pending = 0
let length t = t.pending

let snapshot t =
  Snapshot.make ~name:"sim.event_queue" ~version:1
    [
      ("pending", Snapshot.Int t.pending);
      ("resident", Snapshot.Int t.size);
      ("next_seq", Snapshot.Int t.next_seq);
    ]

let restore t s =
  Snapshot.check s ~name:"sim.event_queue" ~version:1;
  let pending = Snapshot.get_int s "pending" in
  if pending <> t.pending then
    raise
      (Snapshot.Codec_error
         (Printf.sprintf
            "sim.event_queue: %d pending events recorded but %d live; queue \
             contents are closures and travel only in the world blob"
            pending t.pending));
  (* Raising the insertion counter preserves relative order of everything
     already resident and everything pushed later, so pop order is
     unchanged; it only keeps sequence numbers from colliding if the
     section is older than the live queue. *)
  t.next_seq <- max t.next_seq (Snapshot.get_int s "next_seq")
