(** Priority queue of timestamped events.

    A calendar queue (hierarchical time buckets over sorted intrusive
    lists) keyed by [(time, sequence)]. The sequence number is assigned at
    insertion, so events scheduled for the same instant pop in insertion
    order — the tie-break that makes whole-simulation determinism
    possible. Elements can be cancelled lazily in O(1); cancelled cells
    are skipped (and collected) during later scans.

    {2 Determinism obligations}

    - Pop order is a pure function of the push/pop/cancel history:
      ascending [(time, seq)] with [seq] the global insertion counter.
      Bucket sizing and width adapt to occupancy, but only as a function
      of queue content — never of wall time or allocation addresses — so
      two runs issuing the same operations observe identical pop
      sequences, byte for byte downstream.
    - Internal cells are pooled and reused. A {!handle} therefore names an
      event {e generation}, not a cell: cancelling after the event popped
      (or was cancelled) is a guaranteed no-op even if the cell has been
      recycled for a later event.
    - The queue never calls polymorphic comparison or hashing on user
      values; ['a] values are only stored and returned. *)

type 'a t
(** A queue of events carrying values of type ['a]. *)

type handle
(** Names one inserted event, for cancellation. *)

val create : unit -> 'a t
(** An empty queue. *)

val push : 'a t -> time:Time.t -> 'a -> handle
(** Insert an event at the given instant. *)

val push_unit : 'a t -> time:Time.t -> 'a -> unit
(** {!push} without materialising a handle — the zero-allocation path for
    the overwhelmingly common fire-and-forget schedule. *)

val reserve_seq : 'a t -> int
(** Draw the next insertion sequence number without inserting anything.
    The ticket occupies the exact ordering slot a {!push} at that moment
    would have taken; hand it back through {!push_reserved}. A batching
    layer uses this to defer materialising an event (one pump event stands
    in for many reserved deliveries) while keeping the pop order — hence
    every downstream byte — identical to the unbatched schedule. Each
    reserved ticket must be pushed at most once. *)

val push_reserved : 'a t -> time:Time.t -> seq:int -> 'a -> unit
(** Insert an event under a sequence number previously drawn with
    {!reserve_seq}. Pop order remains ascending [(time, seq)]; the only
    difference from {!push_unit} is that the tie-break rank was fixed at
    reservation time rather than at insertion time. *)

val cancel : 'a t -> handle -> unit
(** Remove the event named by the handle, if it is still pending.
    Cancelling an already-popped or already-cancelled event is a no-op. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest pending event, insertion order breaking
    ties. [None] if no pending event remains. *)

val pop_apply : 'a t -> (Time.t -> 'a -> unit) -> bool
(** [pop_apply t f] removes the earliest pending event and calls
    [f time value] on it; [false] (and no call) if none remained. Same
    order as {!pop} but allocation-free — the engine's hot loop. [f] may
    push further events. *)

val pop_apply_until : 'a t -> limit:Time.t -> (Time.t -> 'a -> unit) -> bool
(** Like {!pop_apply} but leaves the queue untouched (returning [false])
    when the earliest pending event is later than [limit]. *)

val pop_apply_bounded :
  'a t ->
  limit:Time.t ->
  bound_ns:int ref ->
  bound_seq:int ref ->
  (Time.t -> 'a -> unit) ->
  unit
(** Drain events in ascending [(time, seq)] order while the front
    precedes both [limit] (inclusive) and the bound
    [(!bound_ns, !bound_seq)] (exclusive). The engine's merged hot loop:
    the bound is the front of a co-scheduled event source (see
    {!Repro_sim.Engine.set_cosource}), passed as refs and re-read every
    iteration because [f] may hand the source new, earlier work. Returns
    with the queue parked on the first event at or past the bound/limit,
    or empty. *)

val peek_time : 'a t -> Time.t option
(** The instant of the earliest pending event without removing it. *)

val peek_ns : 'a t -> int
(** The earliest pending instant in nanoseconds, [max_int] when the queue
    is empty — the allocation-free peek of the engine's merge loop. The
    scan state is left parked on the front event, so a directly following
    {!peek_seq} or pop re-finds it in O(1). *)

val peek_seq : 'a t -> int
(** The sequence number of the earliest pending event, [max_int] when
    empty. Call directly after {!peek_ns} to read the full [(time, seq)]
    key of the front event. *)

val is_empty : 'a t -> bool
(** No pending (non-cancelled) events. *)

val length : 'a t -> int
(** Number of pending (non-cancelled) events. *)

val snapshot : 'a t -> Snapshot.section
(** Occupancy summary: pending events, resident cells, the insertion
    counter. Queue {e contents} are arbitrary closures and are captured
    only by the world blob ([Repro_replay.World]). *)

val restore : 'a t -> Snapshot.section -> unit
(** Validate that the live queue's occupancy matches the section (the
    world blob is the contents carrier) and re-align the insertion
    counter. @raise Snapshot.Codec_error on mismatch. *)
