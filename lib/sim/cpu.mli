(** A single-core CPU resource.

    Models the per-message processing cost that dominates the paper's
    experimental results (§5.3: "99% of CPU resources were used with an
    offered load bigger than 500 msgs/s"). Work items are executed in FIFO
    order; each occupies the CPU for its stated duration, and its completion
    closure runs at the instant the CPU finishes it. Utilization statistics
    let experiments report saturation.

    {2 Determinism obligations}

    - Completion instants are a pure function of the submission history:
      strict FIFO, exact {!Time.span} addition, completions scheduled on
      the engine's deterministic queue (so ties against other events
      resolve by insertion order).
    - Work closures run on the virtual clock only; nothing here consults
      wall time, and utilization is derived arithmetic over virtual
      instants. *)

type t

val create : Engine.t -> t
(** A fresh, idle CPU driven by the engine's clock. *)

val submit : t -> cost:Time.span -> (unit -> unit) -> unit
(** Enqueue a work item: after all previously submitted work completes, the
    CPU is busy for [cost], then the closure runs. A zero-cost item still
    respects FIFO order but consumes no time. *)

val charge : t -> Time.span -> unit
(** Occupy the CPU for the given duration without a completion callback:
    everything submitted afterwards starts that much later. Used for
    in-line costs such as framework event dispatch, where the caller
    continues synchronously but the time must still be accounted. *)

val busy_until : t -> Time.t
(** The instant the CPU becomes idle given current queue contents; [now] if
    it is idle. *)

val queue_length : t -> int
(** Work items submitted but not yet completed. *)

val busy_time : t -> Time.span
(** Cumulative time spent executing work since creation. *)

val utilization : t -> since:Time.t -> float
(** Fraction of wall time the CPU was busy between [since] and the current
    instant. Counts only work already completed or in progress. *)

val snapshot : ?name:string -> t -> Snapshot.section
(** Accounting state: next-free instant, queue depth, cumulative busy
    time. Default section name ["sim.cpu"]. *)

val restore : ?name:string -> t -> Snapshot.section -> unit
(** Re-seat the accounting state. Queued completion closures are restored
    by the world blob, not here.
    @raise Snapshot.Codec_error on a name/version mismatch. *)
