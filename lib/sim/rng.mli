(** Deterministic pseudo-random number generator.

    A small splittable PRNG (SplitMix64 core) owned by the simulation
    engine. Every random choice in a simulation flows from a single seed, so
    any run is exactly reproducible. [split] derives an independent stream,
    which lets components (network jitter, workload, fault injector) draw
    numbers without perturbing each other's sequences.

    {2 Determinism obligations}

    - The stream is a pure function of the seed and the draw/split
      history — never of stdlib [Random] state, wall time, or hashing.
      This module is the {e only} sanctioned randomness source in [lib/]
      (enforced by [repro lint]'s determinism pass).
    - [split] must be used, not seed arithmetic, to derive component
      streams: it guarantees the child's draws cannot perturb the
      parent's sequence, so adding a consumer never shifts another
      component's numbers.
    - The exception is a stream that must be independent of the engine's
      {e by construction} (a [split] advances the parent): such streams
      come from {!derive}, never from ad-hoc seed arithmetic at the use
      site — [repro lint]'s [rng-stream] rule flags raw seed arithmetic
      outside this module. *)

type t

val create : seed:int -> t
(** A fresh generator from a seed. Equal seeds give equal streams. *)

val derive : seed:int -> salt:int -> t
(** [derive ~seed ~salt] is a named stream for the component identified by
    [salt]: equal to [create ~seed:(seed lxor salt)], but keeping the seed
    arithmetic inside this module. Distinct salts give streams independent
    of each other and of [create ~seed] itself, without advancing any
    existing stream (unlike {!split}). *)

val split : t -> t
(** [split t] is a new generator whose stream is independent of the numbers
    subsequently drawn from [t]. *)

val bits64 : t -> int64
(** Next 64 raw pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** A fair coin flip. *)

val exponential : t -> mean:float -> float
(** A draw from the exponential distribution with the given mean. Used for
    Poisson arrival processes in the workload generator. *)

val pick : t -> 'a array -> 'a
(** A uniformly random element.
    @raise Invalid_argument on an empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val snapshot : ?name:string -> t -> Snapshot.section
(** The full generator state (one 64-bit word). Default section name
    ["sim.rng"]; components snapshotting their private stream pass their
    own name. *)

val restore : ?name:string -> t -> Snapshot.section -> unit
(** Re-seat the stream exactly where the snapshot left it.
    @raise Snapshot.Codec_error on a name/version mismatch. *)
