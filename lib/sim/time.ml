type t = int
type span = int

let zero = 0

let of_ns n =
  if n < 0 then invalid_arg "Time.of_ns: negative";
  n

let to_ns t = t

let span_ns n =
  if n < 0 then invalid_arg "Time.span_ns: negative";
  n

let span_us n = span_ns (n * 1_000)
let span_ms n = span_ns (n * 1_000_000)
let span_s n = span_ns (n * 1_000_000_000)
let span_to_ns d = d
let span_zero = 0
let add t d = t + d

let diff later earlier =
  if later < earlier then invalid_arg "Time.diff: negative duration";
  later - earlier

let span_add a b = a + b

let span_scale k d =
  if k < 0 then invalid_arg "Time.span_scale: negative factor";
  k * d

let span_max a b = Stdlib.max a b

(* Branch-based rather than [Stdlib.compare]: instants are compared on
   the engine's hot path, and the polymorphic compare entry point costs a
   C call per comparison. The annotations pin the int specialisation. *)
let compare (a : t) (b : t) = if a < b then -1 else if a > b then 1 else 0
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let max (a : t) b = Stdlib.max a b
let min (a : t) b = Stdlib.min a b
let to_ms_float t = float_of_int t /. 1e6
let span_to_ms_float d = float_of_int d /. 1e6
let span_to_us_float d = float_of_int d /. 1e3
let pp ppf t = Fmt.pf ppf "%.3fms" (to_ms_float t)
let pp_span ppf d = Fmt.pf ppf "%.3fms" (span_to_ms_float d)
