type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  root_rng : Rng.t;
  mutable executed : int;
}

type timer = Event_queue.handle

let create ?(seed = 0) () =
  {
    queue = Event_queue.create ();
    clock = Time.zero;
    root_rng = Rng.create ~seed;
    executed = 0;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t time thunk =
  if Time.(time < t.clock) then invalid_arg "Engine.schedule_at: instant in the past";
  Event_queue.push t.queue ~time thunk

let schedule_after t delay thunk = schedule_at t (Time.add t.clock delay) thunk

let post_at t time thunk =
  if Time.(time < t.clock) then invalid_arg "Engine.post_at: instant in the past";
  Event_queue.push_unit t.queue ~time thunk

let post_after t delay thunk = post_at t (Time.add t.clock delay) thunk
let cancel t timer = Event_queue.cancel t.queue timer

(* The single dispatch point of the hot loop: advance the clock, count,
   run. Top-level so [exec t] is one partial application per [run] —
   the per-event path allocates nothing. *)
let exec t time thunk =
  t.clock <- time;
  t.executed <- t.executed + 1;
  thunk ()

let step t = Event_queue.pop_apply t.queue (exec t)

let run t =
  let f = exec t in
  while Event_queue.pop_apply t.queue f do
    ()
  done

let run_until t limit =
  let f = exec t in
  while Event_queue.pop_apply_until t.queue ~limit f do
    ()
  done;
  if Time.(t.clock < limit) then t.clock <- limit

let pending t = Event_queue.length t.queue
let events_executed t = t.executed

let snapshot t =
  Snapshot.make ~name:"sim.engine" ~version:1
    [
      ("clock_ns", Snapshot.Int (Time.to_ns t.clock));
      ("executed", Snapshot.Int t.executed);
      ("pending", Snapshot.Int (Event_queue.length t.queue));
    ]

let restore t s =
  Snapshot.check s ~name:"sim.engine" ~version:1;
  t.clock <- Time.of_ns (Snapshot.get_int s "clock_ns");
  t.executed <- Snapshot.get_int s "executed"

let rng_snapshot t = Rng.snapshot ~name:"sim.engine.rng" t.root_rng
let rng_restore t s = Rng.restore ~name:"sim.engine.rng" t.root_rng s
let queue_snapshot t = Event_queue.snapshot t.queue
let queue_restore t s = Event_queue.restore t.queue s
