(* A co-scheduled event source (the batched network): an external store of
   pending work ordered by the same [(time, seq)] key space as the
   calendar queue — seqs drawn from {!reserve_seq}, so the two streams
   interleave into one total order. The run loops merge it with the queue
   instead of the source materialising one queue event per item.

   The source's front key lives *here*, in [cs_ns]/[cs_seq], pushed by
   the source whenever its front changes ([cosource_front]) rather than
   polled through a closure per event: the merged drain loop then costs
   two loads and two compares per queue event, the difference between
   batching paying for itself and not (see PERF.md). [cs_ns = max_int]
   means the source is empty (or absent). The refs are shared with
   [Event_queue.pop_apply_bounded] so the queue's internal loop sees
   front changes made by the handlers it applies. *)
type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  root_rng : Rng.t;
  mutable executed : int;
  cs_ns : int ref; (* cosource front instant in ns; max_int = empty *)
  cs_seq : int ref; (* its reserved ticket; meaningful when cs_ns < max_int *)
  mutable cs_fire : unit -> unit; (* execute exactly the front item *)
  mutable cs_attached : bool;
}

type timer = Event_queue.handle

let create ?(seed = 0) () =
  {
    queue = Event_queue.create ();
    clock = Time.zero;
    root_rng = Rng.create ~seed;
    executed = 0;
    cs_ns = ref max_int;
    cs_seq = ref 0;
    cs_fire = ignore;
    cs_attached = false;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t time thunk =
  if Time.(time < t.clock) then invalid_arg "Engine.schedule_at: instant in the past";
  Event_queue.push t.queue ~time thunk

let schedule_after t delay thunk = schedule_at t (Time.add t.clock delay) thunk

let post_at t time thunk =
  if Time.(time < t.clock) then invalid_arg "Engine.post_at: instant in the past";
  Event_queue.push_unit t.queue ~time thunk

let post_after t delay thunk = post_at t (Time.add t.clock delay) thunk
let cancel t timer = Event_queue.cancel t.queue timer
let reserve_seq t = Event_queue.reserve_seq t.queue

let set_cosource t ~fire =
  if t.cs_attached then
    invalid_arg "Engine.set_cosource: a cosource is already attached";
  t.cs_attached <- true;
  t.cs_fire <- fire

let cosource_front t ~ns ~seq =
  t.cs_ns := ns;
  t.cs_seq := seq

(* The single dispatch point of the hot loop: advance the clock, count,
   run. Top-level so [exec t] is one partial application per [run] —
   the per-event path allocates nothing. *)
let exec t time thunk =
  t.clock <- time;
  t.executed <- t.executed + 1;
  thunk ()

(* Merged loop: execute queue events and cosource items in ascending
   [(time, seq)] order up to [limit] inclusive. The queue drains itself
   up to the cosource front (re-reading [cs_ns]/[cs_seq] every
   iteration, because any handler may feed the source earlier work);
   when it parks, whatever the source holds inside the limit is the
   global front, so fire it and go again. Ticket uniqueness (both
   streams draw seqs from the queue's counter) makes the order total, so
   the merged execution sequence is exactly what one queue holding both
   streams would pop — the byte-identity argument for batched hops. *)
let rec run_merged t limit limit_ns =
  Event_queue.pop_apply_bounded t.queue ~limit ~bound_ns:t.cs_ns
    ~bound_seq:t.cs_seq (exec t);
  let cns = !(t.cs_ns) in
  if cns <> max_int && cns <= limit_ns then begin
    t.clock <- Time.of_ns cns;
    t.executed <- t.executed + 1;
    t.cs_fire ();
    run_merged t limit limit_ns
  end

let step t =
  let cns = !(t.cs_ns) in
  if cns = max_int then Event_queue.pop_apply t.queue (exec t)
  else
    let qns = Event_queue.peek_ns t.queue in
    if qns < cns || (qns = cns && Event_queue.peek_seq t.queue < !(t.cs_seq))
    then Event_queue.pop_apply t.queue (exec t)
    else begin
      t.clock <- Time.of_ns cns;
      t.executed <- t.executed + 1;
      t.cs_fire ();
      true
    end

let run t =
  if t.cs_attached then run_merged t (Time.of_ns max_int) max_int
  else
    let f = exec t in
    while Event_queue.pop_apply t.queue f do
      ()
    done

let run_until t limit =
  (if t.cs_attached then run_merged t limit (Time.to_ns limit)
   else
     let f = exec t in
     while Event_queue.pop_apply_until t.queue ~limit f do
       ()
     done);
  if Time.(t.clock < limit) then t.clock <- limit

let pending t = Event_queue.length t.queue
let events_executed t = t.executed

let snapshot t =
  Snapshot.make ~name:"sim.engine" ~version:1
    [
      ("clock_ns", Snapshot.Int (Time.to_ns t.clock));
      ("executed", Snapshot.Int t.executed);
      ("pending", Snapshot.Int (Event_queue.length t.queue));
    ]

let restore t s =
  Snapshot.check s ~name:"sim.engine" ~version:1;
  t.clock <- Time.of_ns (Snapshot.get_int s "clock_ns");
  t.executed <- Snapshot.get_int s "executed"

let rng_snapshot t = Rng.snapshot ~name:"sim.engine.rng" t.root_rng
let rng_restore t s = Rng.restore ~name:"sim.engine.rng" t.root_rng s
let queue_snapshot t = Event_queue.snapshot t.queue
let queue_restore t s = Event_queue.restore t.queue s
