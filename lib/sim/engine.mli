(** The discrete-event simulation engine.

    An engine owns the virtual clock, the event queue and the root random
    generator. Components schedule closures at future instants; [run]
    executes them in timestamp order (insertion order breaking ties),
    advancing the clock to each event's instant. All state mutation in a
    simulation happens inside scheduled closures, so a run is a
    deterministic function of the seed and the initial schedule.

    {2 Determinism obligations}

    - Execution order is exactly ascending [(instant, schedule order)]:
      two events at the same instant run in the order they were
      scheduled. Every protocol-level tie in the repo (simultaneous
      message arrivals, expiring timers) is broken by this rule alone.
    - The clock only moves inside {!step}/{!run}/{!run_until}, to the
      instant of the event being dispatched; closures must derive all
      timing from {!now} and all randomness from (streams split off)
      {!rng}. Nothing here reads wall time.
    - [run]/[run_until] drive the queue through the allocation-free
      {!Event_queue.pop_apply} path; per-event cost is the closure call
      plus queue bookkeeping, which is what makes events/sec a stable,
      benchmarkable property (see PERF.md). *)

type t

type timer
(** Names a scheduled event so it can be cancelled. *)

val create : ?seed:int -> unit -> t
(** A fresh engine with clock at {!Time.zero}. Default [seed] is 0. *)

val now : t -> Time.t
(** The current virtual instant. *)

val rng : t -> Rng.t
(** The engine's root random generator. Components that need their own
    stream should {!Rng.split} it once at setup. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> timer
(** Run the closure when the clock reaches the given instant.
    @raise Invalid_argument if the instant is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> timer
(** Run the closure after the given delay. *)

val post_at : t -> Time.t -> (unit -> unit) -> unit
(** {!schedule_at} without materialising a timer. Identical semantics and
    ordering; the allocation-free path for fire-and-forget events, which
    are the vast majority (message deliveries, CPU completions).
    @raise Invalid_argument if the instant is in the past. *)

val post_after : t -> Time.span -> (unit -> unit) -> unit
(** {!post_at} after the given delay. *)

val cancel : t -> timer -> unit
(** Forget a scheduled event. No-op if it already fired or was cancelled. *)

val reserve_seq : t -> int
(** Draw the schedule-order ticket a {!post_at} issued right now would
    receive, without posting anything. This is the contract that lets
    {!Repro_net.Network}'s batched-hop engine keep in-flight deliveries
    out of the calendar queue while executing them in exactly the order
    the unbatched schedule would have (see the .mli preamble's determinism
    obligations — the tie-break rank is part of the observable
    contract): each delivery carries its reserved ticket and re-enters the
    run loop through the {!cosource} merge. *)

val set_cosource : t -> fire:(unit -> unit) -> unit
(** Attach a co-scheduled event source: an external store of pending work
    ordered by the same [(instant, ticket)] key space as the event queue,
    tickets drawn from {!reserve_seq}. The run loops merge it with the
    queue — each iteration executes whichever front is earlier — so the
    execution sequence is exactly what one queue holding both streams
    would pop, without the source materialising a queue event per item.
    The batched {!Repro_net.Network} attaches its per-link frame rings
    this way.

    The source publishes its front through {!cosource_front} (and must,
    before any event runs, whenever the front changes); the engine calls
    [fire] to execute exactly that front item, with the clock already
    advanced to its instant and the event counted. At most one source per
    engine — one simulated world has one network.
    @raise Invalid_argument if one is already attached. *)

val cosource_front : t -> ns:int -> seq:int -> unit
(** Publish the cosource's current front key: earliest pending instant in
    ns and its reserved ticket. Pass [ns:max_int] when the source is
    empty. Kept as plain engine fields rather than polled through a
    closure so the merged drain loop costs two loads and two compares per
    queue event (see {!Event_queue.pop_apply_bounded}). *)

val step : t -> bool
(** Execute the single earliest pending event (queue or cosource). [false]
    if none remained. *)

val run : t -> unit
(** Execute events until the queue (and any cosource) is empty. *)

val run_until : t -> Time.t -> unit
(** Execute events with instants [<=] the limit, then set the clock to the
    limit. Events scheduled beyond the limit stay pending. *)

val pending : t -> int
(** Number of scheduled events not yet executed or cancelled. *)

val events_executed : t -> int
(** Total closures executed since creation (a cheap progress/cost probe,
    and the numerator of the bench harness's [events_per_sec]). *)

val snapshot : t -> Snapshot.section
(** Clock, executed-event count and queue occupancy, as ["sim.engine"]. *)

val restore : t -> Snapshot.section -> unit
(** Re-seat clock and executed count. Pending events are closures and are
    restored by the world blob.
    @raise Snapshot.Codec_error on a name/version mismatch. *)

val rng_snapshot : t -> Snapshot.section
(** The root generator's stream state, as ["sim.engine.rng"]. *)

val rng_restore : t -> Snapshot.section -> unit

val queue_snapshot : t -> Snapshot.section
(** The event queue's occupancy summary (see {!Event_queue.snapshot}). *)

val queue_restore : t -> Snapshot.section -> unit
