type t = {
  engine : Engine.t;
  mutable free_at : Time.t; (* instant the last queued item completes *)
  mutable queued : int;
  mutable busy_ns : int;
}

let create engine = { engine; free_at = Time.zero; queued = 0; busy_ns = 0 }

let submit t ~cost thunk =
  let now = Engine.now t.engine in
  let start = Time.max t.free_at now in
  let finish = Time.add start cost in
  t.free_at <- finish;
  t.queued <- t.queued + 1;
  t.busy_ns <- t.busy_ns + Time.span_to_ns cost;
  Engine.post_at t.engine finish (fun () ->
      t.queued <- t.queued - 1;
      thunk ())

let charge t cost =
  let start = Time.max t.free_at (Engine.now t.engine) in
  t.free_at <- Time.add start cost;
  t.busy_ns <- t.busy_ns + Time.span_to_ns cost

let busy_until t = Time.max t.free_at (Engine.now t.engine)
let queue_length t = t.queued
let busy_time t = Time.span_ns t.busy_ns

let utilization t ~since =
  let now = Engine.now t.engine in
  let wall = Time.span_to_ns (Time.diff now since) in
  if wall = 0 then 0.0
  else
    let busy = float_of_int (min t.busy_ns wall) in
    busy /. float_of_int wall

let snapshot ?(name = "sim.cpu") t =
  Snapshot.make ~name ~version:1
    [
      ("free_at_ns", Snapshot.Int (Time.to_ns t.free_at));
      ("queued", Snapshot.Int t.queued);
      ("busy_ns", Snapshot.Int t.busy_ns);
    ]

let restore ?(name = "sim.cpu") t s =
  Snapshot.check s ~name ~version:1;
  t.free_at <- Time.of_ns (Snapshot.get_int s "free_at_ns");
  (* In-flight completion closures live in the engine queue; the world
     blob restores them. This pair re-seats the accounting state. *)
  t.queued <- Snapshot.get_int s "queued";
  t.busy_ns <- Snapshot.get_int s "busy_ns"
