type t = {
  engine : Engine.t;
  mutable free_at : Time.t; (* instant the last queued item completes *)
  mutable queued : int;
  mutable busy_ns : int;
}

let create engine = { engine; free_at = Time.zero; queued = 0; busy_ns = 0 }

let submit t ~cost thunk =
  let now = Engine.now t.engine in
  let start = Time.max t.free_at now in
  let finish = Time.add start cost in
  t.free_at <- finish;
  t.queued <- t.queued + 1;
  t.busy_ns <- t.busy_ns + Time.span_to_ns cost;
  Engine.post_at t.engine finish (fun () ->
      t.queued <- t.queued - 1;
      thunk ())

let charge t cost =
  let start = Time.max t.free_at (Engine.now t.engine) in
  t.free_at <- Time.add start cost;
  t.busy_ns <- t.busy_ns + Time.span_to_ns cost

let busy_until t = Time.max t.free_at (Engine.now t.engine)
let queue_length t = t.queued
let busy_time t = Time.span_ns t.busy_ns

let utilization t ~since =
  let now = Engine.now t.engine in
  let wall = Time.span_to_ns (Time.diff now since) in
  if wall = 0 then 0.0
  else
    let busy = float_of_int (min t.busy_ns wall) in
    busy /. float_of_int wall
