(* The snapshot codec: a versioned, self-describing container for module
   state. Every simulated component exposes [snapshot : t -> section]
   (its enumerable data-plane state as ordered key/field pairs plus an
   optional opaque bulk payload) and [restore : t -> section -> unit].
   Sections serve three masters: the binary frame log written by
   [Repro_replay], the JSON state-diff reports emitted by [repro bisect],
   and the codec round-trip property tests.

   The binary encoding is hand-rolled (not [Marshal]) so frame *metadata*
   stays readable across rebuilds of the binary; only the world blob
   (pending events are closures) is build-pinned. *)

type field =
  | Bool of bool
  | Int of int
  | I64 of int64
  | Float of float
  | String of string
  | List of field list

type section = {
  name : string;
  version : int;
  fields : (string * field) list;
  data : string;
}

exception Codec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Codec_error s)) fmt
let make ~name ~version ?(data = "") fields = { name; version; fields; data }

let check s ~name ~version =
  if not (String.equal s.name name) then
    fail "restore %s: section is %s" name s.name;
  if s.version <> version then
    fail "restore %s: version %d, expected %d" name s.version version

let find s key =
  match List.assoc_opt key s.fields with
  | Some f -> f
  | None -> fail "section %s: missing field %s" s.name key

let get_bool s key =
  match find s key with Bool b -> b | _ -> fail "section %s: %s is not a bool" s.name key

let get_int s key =
  match find s key with Int i -> i | _ -> fail "section %s: %s is not an int" s.name key

let get_i64 s key =
  match find s key with I64 i -> i | _ -> fail "section %s: %s is not an int64" s.name key

let get_float s key =
  match find s key with
  | Float f -> f
  | _ -> fail "section %s: %s is not a float" s.name key

let get_string s key =
  match find s key with
  | String v -> v
  | _ -> fail "section %s: %s is not a string" s.name key

let rec equal_field a b =
  match (a, b) with
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | I64 x, I64 y -> Int64.equal x y
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal_field x y
  | _ -> false

let equal_section a b =
  String.equal a.name b.name && a.version = b.version
  && List.equal
       (fun (ka, fa) (kb, fb) -> String.equal ka kb && equal_field fa fb)
       a.fields b.fields
  && String.equal a.data b.data

(* ---- binary codec ---- *)

let magic = "REPRO-SNAP\x01"

let add_i64 buf i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 i;
  Buffer.add_bytes buf b

let add_int buf i = add_i64 buf (Int64.of_int i)

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let rec add_field buf = function
  | Bool b ->
    Buffer.add_char buf '\000';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Int i ->
    Buffer.add_char buf '\001';
    add_int buf i
  | I64 i ->
    Buffer.add_char buf '\002';
    add_i64 buf i
  | Float f ->
    Buffer.add_char buf '\003';
    add_i64 buf (Int64.bits_of_float f)
  | String s ->
    Buffer.add_char buf '\004';
    add_string buf s
  | List items ->
    Buffer.add_char buf '\005';
    add_int buf (List.length items);
    List.iter (add_field buf) items

let add_section buf s =
  add_string buf s.name;
  add_int buf s.version;
  add_int buf (List.length s.fields);
  List.iter
    (fun (k, f) ->
      add_string buf k;
      add_field buf f)
    s.fields;
  add_string buf s.data

let encode_sections sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_int buf (List.length sections);
  List.iter (add_section buf) sections;
  Buffer.contents buf

type reader = { src : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.src then fail "truncated snapshot at byte %d" r.pos

let read_i64 r =
  need r 8;
  let i = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  i

let read_int r =
  let i = read_i64 r in
  let v = Int64.to_int i in
  if Int64.of_int v <> i then fail "int out of range at byte %d" (r.pos - 8);
  v

let read_byte r =
  need r 1;
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  Char.code c

let read_string r =
  let n = read_int r in
  if n < 0 then fail "negative length at byte %d" (r.pos - 8);
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let rec read_field r =
  match read_byte r with
  | 0 -> Bool (read_byte r <> 0)
  | 1 -> Int (read_int r)
  | 2 -> I64 (read_i64 r)
  | 3 -> Float (Int64.float_of_bits (read_i64 r))
  | 4 -> String (read_string r)
  | 5 ->
    let n = read_int r in
    if n < 0 then fail "negative list length at byte %d" (r.pos - 8);
    List (List.init n (fun _ -> read_field r))
  | t -> fail "unknown field tag %d at byte %d" t (r.pos - 1)

let read_section r =
  let name = read_string r in
  let version = read_int r in
  let nfields = read_int r in
  if nfields < 0 then fail "negative field count in %s" name;
  let fields =
    List.init nfields (fun _ ->
        let k = read_string r in
        let f = read_field r in
        (k, f))
  in
  let data = read_string r in
  { name; version; fields; data }

let decode_sections src =
  let r = { src; pos = 0 } in
  need r (String.length magic);
  if not (String.equal (String.sub src 0 (String.length magic)) magic) then
    fail "bad snapshot magic";
  r.pos <- String.length magic;
  let n = read_int r in
  if n < 0 then fail "negative section count";
  let sections = List.init n (fun _ -> read_section r) in
  if r.pos <> String.length src then fail "trailing bytes after section %d" n;
  sections

(* ---- JSON rendering (for reports; write-only) ---- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec field_to_json = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | I64 i -> Printf.sprintf "\"0x%Lx\"" i
  | Float f -> float_literal f
  | String s -> "\"" ^ escape_json s ^ "\""
  | List items -> "[" ^ String.concat "," (List.map field_to_json items) ^ "]"

let section_to_json s =
  let fields =
    List.map (fun (k, f) -> "\"" ^ escape_json k ^ "\":" ^ field_to_json f) s.fields
  in
  Printf.sprintf "{\"section\":\"%s\",\"version\":%d,\"data_bytes\":%d%s%s}"
    (escape_json s.name) s.version (String.length s.data)
    (if fields = [] then "" else ",")
    (String.concat "," fields)

(* ---- structural diff (bisect's state-diff report) ---- *)

type field_diff = { key : string; before : field option; after : field option }

type section_diff = {
  section : string;
  changed : field_diff list;
  data_changed : bool;
}

let diff_one a b =
  let keys =
    List.map fst a.fields
    @ List.filter
        (fun k -> not (List.mem_assoc k a.fields))
        (List.map fst b.fields)
  in
  let changed =
    List.filter_map
      (fun key ->
        let before = List.assoc_opt key a.fields in
        let after = List.assoc_opt key b.fields in
        match (before, after) with
        | Some x, Some y when equal_field x y -> None
        | _ -> Some { key; before; after })
      keys
  in
  let data_changed = not (String.equal a.data b.data) in
  if changed = [] && not data_changed then None
  else Some { section = a.name; changed; data_changed }

let diff_sections before after =
  let names =
    List.map (fun s -> s.name) before
    @ List.filter_map
        (fun s ->
          if List.exists (fun s' -> String.equal s'.name s.name) before then None
          else Some s.name)
        after
  in
  List.filter_map
    (fun name ->
      let fa = List.find_opt (fun s -> String.equal s.name name) before in
      let fb = List.find_opt (fun s -> String.equal s.name name) after in
      match (fa, fb) with
      | Some a, Some b -> diff_one a b
      | Some a, None ->
        Some
          {
            section = name;
            changed =
              List.map (fun (key, f) -> { key; before = Some f; after = None }) a.fields;
            data_changed = String.length a.data > 0;
          }
      | None, Some b ->
        Some
          {
            section = name;
            changed =
              List.map (fun (key, f) -> { key; before = None; after = Some f }) b.fields;
            data_changed = String.length b.data > 0;
          }
      | None, None -> None)
    names

let section_diff_to_json d =
  let field_opt = function None -> "null" | Some f -> field_to_json f in
  let changes =
    List.map
      (fun c ->
        Printf.sprintf "{\"field\":\"%s\",\"before\":%s,\"after\":%s}"
          (escape_json c.key) (field_opt c.before) (field_opt c.after))
      d.changed
  in
  Printf.sprintf
    "{\"section\":\"%s\",\"data_changed\":%b,\"changes\":[%s]}"
    (escape_json d.section) d.data_changed
    (String.concat "," changes)

(* ---- bulk payload helpers ----

   Pure-data bulk state (tables, queues, logs — no closures) rides in
   [section.data] via [Marshal] without [Closures]; this is what lets a
   module's [restore] rebuild real structures, not just counters. The
   caller must read at the type it wrote — the same contract as
   [Marshal], confined to each module's own snapshot/restore pair. *)

let pack v = Marshal.to_string v []
let unpack (s : string) = Marshal.from_string s 0

let unpack_data section =
  if String.length section.data = 0 then
    fail "section %s: no bulk payload to restore" section.name;
  try unpack section.data
  with Failure m -> fail "section %s: bad bulk payload (%s)" section.name m
