(** Versioned snapshot codec for module state.

    Every simulated component exposes a [snapshot : t -> Snapshot.section]
    / [restore : t -> Snapshot.section -> unit] pair. A {!section} is the
    component's enumerable data-plane state: ordered key/{!field} pairs
    plus an optional opaque bulk payload ([Marshal]ed pure data). Sections
    are what the frame log persists per module, what [repro bisect] diffs
    between the last-good and first-bad frames, and what the codec
    round-trip tests exercise.

    {2 Restore contract}

    [restore] re-seats a component's {e serializable} state — counters,
    sequence numbers, tables, logs. State that is inherently a closure
    (pending events, armed timers, subscriber callbacks) is restored by
    the whole-world blob captured by [Repro_replay.World], which preserves
    the engine queue with [Marshal.Closures]; section-level [restore]
    validates name and version (raising {!Codec_error}) and documents per
    module which residue the world blob carries.

    {2 Determinism obligations}

    - Encoding is a pure function of the section values: hand-rolled
      little-endian framing, no [Marshal] for metadata, no hash-order
      iteration (callers must emit fields in a deterministic order).
    - Floats are compared and round-tripped bit-exactly
      ([Int64.bits_of_float]); the JSON rendering is for human reports
      only and never parsed back. *)

type field =
  | Bool of bool
  | Int of int
  | I64 of int64
  | Float of float
  | String of string
  | List of field list

type section = {
  name : string;  (** e.g. ["sim.engine"], ["core.replica.p2"] *)
  version : int;  (** per-module codec version; bumped on layout change *)
  fields : (string * field) list;  (** ordered, keys unique *)
  data : string;  (** opaque bulk payload; [""] if none *)
}

exception Codec_error of string

val make : name:string -> version:int -> ?data:string -> (string * field) list -> section

val check : section -> name:string -> version:int -> unit
(** Validate a section header before restoring from it.
    @raise Codec_error on name or version mismatch. *)

val find : section -> string -> field
(** @raise Codec_error if the key is absent. *)

val get_bool : section -> string -> bool
val get_int : section -> string -> int
val get_i64 : section -> string -> int64
val get_float : section -> string -> float
val get_string : section -> string -> string

val equal_field : field -> field -> bool
(** Structural equality; floats compare by bit pattern. *)

val equal_section : section -> section -> bool

val encode_sections : section list -> string
(** The versioned binary encoding (magic-prefixed, little-endian framed).
    Readable across rebuilds of the binary — unlike the world blob. *)

val decode_sections : string -> section list
(** Inverse of {!encode_sections}. @raise Codec_error on malformed input. *)

val field_to_json : field -> string
val section_to_json : section -> string
(** One JSON object per section (write-only rendering for reports). *)

(** Structural diff between two frames' section lists. *)

type field_diff = { key : string; before : field option; after : field option }

type section_diff = {
  section : string;
  changed : field_diff list;
  data_changed : bool;  (** bulk payloads differ byte-wise *)
}

val diff_sections : section list -> section list -> section_diff list
(** Per-module field diffs, in [before]'s section order (sections only in
    [after] appended). Unchanged sections are omitted. *)

val section_diff_to_json : section_diff -> string

val pack : 'a -> string
(** [Marshal] (pure data, no closures) a module's bulk payload. *)

val unpack_data : section -> 'a
(** Read back a bulk payload at the type it was written.
    @raise Codec_error if the section has no payload or it is corrupt. *)
