type t = { mutable state : int64 }

(* SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, passes BigCrush when
   used as here, and trivially splittable -- exactly what a deterministic
   simulation needs. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

(* The one sanctioned form of seed arithmetic: a component that must own a
   stream *independent of the engine's by construction* (so that arming it
   cannot perturb later engine draws the way [split] would) derives it here
   by constant mixing. Keeping the xor in this module lets `repro lint`'s
   rng-stream rule reject ad-hoc seed arithmetic everywhere else. *)
let derive ~seed ~salt = create ~seed:(seed lxor salt)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    (* Reject the biased tail of the range. *)
    if r >= max_int - (max_int mod bound) then draw () else r mod bound
  in
  draw ()

let float t bound =
  (* 53 uniform bits, the mantissa width of a double. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* u = 0 would give infinity; nudge into (0, 1]. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let snapshot ?(name = "sim.rng") t =
  Snapshot.make ~name ~version:1 [ ("state", Snapshot.I64 t.state) ]

let restore ?(name = "sim.rng") t s =
  Snapshot.check s ~name ~version:1;
  t.state <- Snapshot.get_i64 s "state"
