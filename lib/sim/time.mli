(** Virtual time for the discrete-event simulation.

    Time is an absolute instant measured in integer nanoseconds since the
    start of the simulation. Spans are durations, also in nanoseconds. Using
    integers keeps the engine exactly deterministic: no rounding, no
    accumulation error, total order on instants.

    {2 Determinism obligations}

    - All arithmetic is exact integer arithmetic; there is no float on any
      path that feeds back into scheduling. The [*_float] conversions are
      one-way, for reporting only.
    - Values never encode wall-clock time: an instant is defined purely by
      the event history that produced it, so equal op sequences yield
      equal instants on any machine. *)

type t = private int
(** An absolute instant, in nanoseconds since simulation start. *)

type span = private int
(** A duration in nanoseconds. Spans may be zero but never negative. *)

val zero : t
(** The simulation start instant. *)

val of_ns : int -> t
(** [of_ns n] is the instant [n] nanoseconds after start.
    @raise Invalid_argument if [n < 0]. *)

val to_ns : t -> int
(** Nanoseconds since simulation start. *)

val span_ns : int -> span
(** [span_ns n] is a duration of [n] nanoseconds.
    @raise Invalid_argument if [n < 0]. *)

val span_us : int -> span
(** [span_us n] is a duration of [n] microseconds. *)

val span_ms : int -> span
(** [span_ms n] is a duration of [n] milliseconds. *)

val span_s : int -> span
(** [span_s n] is a duration of [n] seconds. *)

val span_to_ns : span -> int
(** The duration in nanoseconds. *)

val span_zero : span
(** The empty duration. *)

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff later earlier] is the duration between the two instants.
    @raise Invalid_argument if [later < earlier]. *)

val span_add : span -> span -> span
(** Sum of two durations. *)

val span_scale : int -> span -> span
(** [span_scale k d] is [k] times duration [d].
    @raise Invalid_argument if [k < 0]. *)

val span_max : span -> span -> span
(** The longer of two durations. *)

val compare : t -> t -> int
(** Total order on instants. *)

val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val max : t -> t -> t
(** The later of two instants. *)

val min : t -> t -> t
(** The earlier of two instants. *)

val to_ms_float : t -> float
(** Instant as fractional milliseconds (for reporting only). *)

val span_to_ms_float : span -> float
(** Duration as fractional milliseconds (for reporting only). *)

val span_to_us_float : span -> float
(** Duration as fractional microseconds (for reporting only). *)

val pp : t Fmt.t
(** Prints an instant as [<ms>ms] with microsecond precision. *)

val pp_span : span Fmt.t
(** Prints a duration as [<ms>ms] with microsecond precision. *)
