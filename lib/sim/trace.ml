type 'a entry = { at : Time.t; event : 'a }

type 'a t = {
  mutable now : unit -> Time.t;
  mutable rev_entries : 'a entry list;
  mutable length : int;
}

let create_with_clock now = { now; rev_entries = []; length = 0 }
let create engine = create_with_clock (fun () -> Engine.now engine)
let set_clock t now = t.now <- now

let record t event =
  t.rev_entries <- { at = t.now (); event } :: t.rev_entries;
  t.length <- t.length + 1

let entries t = List.rev t.rev_entries
let events t = List.rev_map (fun e -> e.event) t.rev_entries
let length t = t.length

(* Append [src]'s entries onto [into], oldest first, preserving their
   stamps (the clock is not consulted), until [into] holds [limit]
   entries; the rest are counted, not kept. [map] rewrites each event on
   the way in — the observability layer uses it to renumber span ids. *)
let absorb ?(limit = max_int) ?map ~into src =
  let map = match map with Some f -> f | None -> fun e -> e in
  List.fold_left
    (fun dropped e ->
      if into.length < limit then begin
        into.rev_entries <- { e with event = map e.event } :: into.rev_entries;
        into.length <- into.length + 1;
        dropped
      end
      else dropped + 1)
    0 (entries src)
let find_last t ~f = List.find_opt (fun e -> f e.event) t.rev_entries

let pp pp_event ppf t =
  List.iter
    (fun { at; event } -> Fmt.pf ppf "%a %a@." Time.pp at pp_event event)
    (entries t)
