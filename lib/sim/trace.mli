(** Timestamped event recorder.

    A lightweight append-only log of labelled events, used by tests to
    assert on protocol histories, by examples to narrate runs, and by the
    observability layer ([Repro_obs.Obs]) as the store behind its
    structured trace events. Recording is O(1); the log lives entirely in
    memory.

    The clock is a plain closure so the recorder does not depend on who
    owns the engine: {!create} wires it to an engine's virtual clock, and
    {!create_with_clock} accepts any [unit -> Time.t] (the observability
    sink wires its clock after construction via {!set_clock}).

    {2 Determinism obligations}

    - Entries are stored and returned strictly in record order with their
      virtual timestamps; no hash-ordered container is involved, so two
      identical runs export byte-identical traces.
    - {!absorb} preserves source order and timestamps, which is what lets
      the parallel harness merge per-task traces into exactly the log a
      sequential run would have written. *)

type 'a t
(** A trace of events of type ['a]. *)

type 'a entry = { at : Time.t; event : 'a }

val create : Engine.t -> 'a t
(** A fresh empty trace stamping entries with the engine's clock. *)

val create_with_clock : (unit -> Time.t) -> 'a t
(** A fresh empty trace stamping entries with an arbitrary clock. *)

val set_clock : 'a t -> (unit -> Time.t) -> unit
(** Replace the clock used for subsequent entries. Existing entries keep
    their timestamps. *)

val record : 'a t -> 'a -> unit
(** Append an event at the current instant. *)

val entries : 'a t -> 'a entry list
(** All entries, oldest first. *)

val events : 'a t -> 'a list
(** All events, oldest first, without timestamps. *)

val length : 'a t -> int
(** Number of recorded entries. *)

val absorb : ?limit:int -> ?map:('a -> 'a) -> into:'a t -> 'a t -> int
(** [absorb ~limit ~map ~into src] appends [src]'s entries onto [into] in
    order, preserving their timestamps and rewriting each event through
    [map] (default identity), but never growing [into] past [limit]
    entries (default unbounded). Returns the number of entries dropped by
    the limit. [src] is not modified. *)

val find_last : 'a t -> f:('a -> bool) -> 'a entry option
(** The most recent entry satisfying [f], if any. *)

val pp : 'a Fmt.t -> 'a t Fmt.t
(** One line per entry, oldest first, each terminated by a newline:
    [<at> <event>] where [<at>] is {!Time.pp}'s millisecond rendering —
    e.g. [1.000ms one] for an event recorded at 1 ms. *)
