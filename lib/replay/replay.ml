(* Time-travel driver: whole-world snapshot frames, deterministic resume,
   and divergence diagnostics over a recorded frame log.

   The design splits every module's state in two:

   - The *data plane* — counters, tables, queues of values — which each
     module exposes through its [snapshot]/[restore] pair as a
     {!Repro_sim.Snapshot.section}. Sections are encoded with the
     hand-rolled codec, so frame *metadata* stays readable across rebuilds
     of the binary; [repro bisect] works from metadata alone.

   - The *control plane* — pending events, armed timers, subscriber
     callbacks — which is inherently closures. It travels in the frame's
     *world blob*: one [Marshal.to_string root [Closures]] of the whole
     {!World.t}. Marshal preserves sharing within a single call, so the
     unmarshaled copy is a self-consistent world whose queued events
     reference exactly the records its tables hold; the copy *becomes*
     the live world on resume. The price is that blobs are pinned to the
     binary that wrote them (the header records the executable digest and
     resume checks it).

   Frames are only ever taken *between* engine slices, never inside the
   event loop: the recorder cuts each [run_until] stretch at frame
   boundaries, which is event-identical to running the stretch in one
   piece (the calendar queue pops the same (time, seq) order either way).
   With [--snapshot-every 0] no frame is taken and no counter is bumped,
   so the run is bit-for-bit the unrecorded one. *)

open Repro_sim
open Repro_core
module Obs = Repro_obs.Obs
module Jsonl = Repro_obs.Jsonl
module Experiment = Repro_workload.Experiment
module Generator = Repro_workload.Generator
module Campaign = Repro_fault.Campaign
module Monitor = Repro_fault.Monitor
module Schedule = Repro_fault.Schedule

exception Replay_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Replay_error s)) fmt

(* Metric names whose values legitimately differ between a t=0 run and a
   resumed suffix (a resumed run restores once and stops taking frames).
   [verify] strips these lines before diffing observables — the same
   contract as the timing-class [bench_meta] fields ([wallclock_s] …)
   that [@parallel-smoke] strips. *)
let snapshot_metrics = [ "snapshots_taken"; "snapshot_bytes"; "restore_count" ]

let is_snapshot_metric_line line =
  List.exists
    (fun m ->
      let needle = Printf.sprintf "\"name\":\"%s\"" m in
      let nl = String.length needle and ll = String.length line in
      let rec scan i = i + nl <= ll && (String.sub line i nl = needle || scan (i + 1)) in
      scan 0)
    snapshot_metrics

(* ---- The world ---- *)

module World = struct
  type shape = Report of Experiment.staged | Nemesis of Campaign.staged

  type t = {
    shape : shape;
    obs : Obs.t;
    mutable milestones : (Time.t * (unit -> unit)) list; (* remaining *)
    mutable finished : bool;
    mutable report : string; (* final report text, set by [finish] *)
  }

  let make shape obs milestones = { shape; obs; milestones; finished = false; report = "" }

  let group w =
    match w.shape with
    | Report st -> st.Experiment.st_group
    | Nemesis st -> st.Campaign.ca_group

  let engine w = Group.engine (group w)

  (* Every module's section, whole world: the group's composition plus
     the drivers living outside it (workload generator, fault monitor)
     and the observability sink itself. *)
  let sections w =
    Group.sections (group w)
    @ (match w.shape with
      | Report st -> [ Generator.snapshot st.Experiment.st_generator ]
      | Nemesis st ->
        [
          Generator.snapshot st.Campaign.ca_generator;
          Monitor.snapshot st.Campaign.ca_monitor;
        ])
    @ [ Obs.snapshot w.obs ]

  let finish w =
    if not w.finished then begin
      w.finished <- true;
      match w.shape with
      | Report st ->
        let _latencies, r = st.Experiment.st_result () in
        w.report <- Fmt.str "%a" Experiment.pp_result r
      | Nemesis st ->
        let v = st.Campaign.ca_result () in
        let violations =
          List.map
            (fun viol -> Fmt.str "%a" Monitor.pp_violation viol)
            (Monitor.violations st.Campaign.ca_monitor)
        in
        w.report <-
          String.concat "\n" (Campaign.verdict_line v :: violations)
    end

  (* The observable byte streams replay equality is defined over. *)
  let observables w =
    if not w.finished then fail "observables requested before the run finished";
    let cat lines = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
    [
      ("metrics", cat (Jsonl.metric_lines w.obs));
      ("trace", cat (Jsonl.trace_lines w.obs @ Jsonl.span_lines w.obs));
      ("report", w.report ^ "\n");
    ]
end

(* Run the remaining milestones, slicing each stretch at frame
   boundaries. [every_ns = 0] means no frames: the milestones run back to
   back, which is exactly [Experiment.run_raw] / [Campaign.run_one]. *)
let drive w ~every_ns ~take_frame =
  let engine = World.engine w in
  let next_frame now =
    if every_ns <= 0 then None
    else
      let k = (Time.to_ns now / every_ns) + 1 in
      Some (Time.of_ns (k * every_ns))
  in
  let rec go () =
    match w.World.milestones with
    | [] -> ()
    | (at, act) :: rest -> (
      match next_frame (Engine.now engine) with
      | Some f when Time.(f <= at) ->
        Engine.run_until engine f;
        take_frame ();
        go ()
      | _ ->
        Engine.run_until engine at;
        act ();
        w.World.milestones <- rest;
        go ())
  in
  go ()

(* ---- Frame log ---- *)

type frame = {
  f_index : int;
  f_at_ns : int;
  f_sections : Snapshot.section list;
  f_blob : string; (* Marshal [Closures] of the World.t root *)
}

type log = {
  l_path : string;
  l_digest : string; (* Digest.file of the writing executable *)
  l_descriptor : string; (* one JSON object describing the run *)
  l_every_ns : int;
  l_frames : frame array;
  l_final_at_ns : int;
  l_final_sections : Snapshot.section list;
  l_observables : (string * string) list;
}

let log_magic = "REPRO-RLOG\x01"

let self_digest () = Digest.file Sys.executable_name

let add_i64 buf i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 i;
  Buffer.add_bytes buf b

let add_int buf i = add_i64 buf (Int64.of_int i)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

type reader = { src : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.src then fail "truncated frame log"

let read_int r =
  need r 8;
  let i = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int i

let read_str r =
  let n = read_int r in
  if n < 0 then fail "corrupt frame log (negative length)";
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_byte r =
  need r 1;
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let write_header oc ~descriptor ~every_ns =
  let buf = Buffer.create 256 in
  Buffer.add_string buf log_magic;
  add_str buf (self_digest ());
  add_str buf descriptor;
  add_int buf every_ns;
  Buffer.output_buffer oc buf

let write_frame oc ~index ~at_ns ~meta ~blob =
  let buf = Buffer.create (String.length meta + String.length blob + 64) in
  Buffer.add_char buf 'F';
  add_int buf index;
  add_int buf at_ns;
  add_str buf meta;
  add_str buf blob;
  Buffer.output_buffer oc buf

let write_trailer oc ~at_ns ~meta ~observables =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf 'T';
  add_int buf at_ns;
  add_str buf meta;
  add_int buf (List.length observables);
  List.iter
    (fun (name, bytes) ->
      add_str buf name;
      add_str buf bytes)
    observables;
  Buffer.output_buffer oc buf

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let r = { src; pos = 0 } in
  need r (String.length log_magic);
  if String.sub src 0 (String.length log_magic) <> log_magic then
    fail "%s is not a repro frame log" path;
  r.pos <- String.length log_magic;
  let digest = read_str r in
  let descriptor = read_str r in
  let every_ns = read_int r in
  let frames = ref [] in
  let trailer = ref None in
  let rec records () =
    if r.pos < String.length src then begin
      (match read_byte r with
      | 'F' ->
        let f_index = read_int r in
        let f_at_ns = read_int r in
        let meta = read_str r in
        let f_blob = read_str r in
        frames := { f_index; f_at_ns; f_sections = Snapshot.decode_sections meta; f_blob } :: !frames
      | 'T' ->
        let at_ns = read_int r in
        let meta = read_str r in
        let n = read_int r in
        let observables =
          List.init n (fun _ ->
              let name = read_str r in
              let bytes = read_str r in
              (name, bytes))
        in
        trailer := Some (at_ns, Snapshot.decode_sections meta, observables)
      | c -> fail "%s: unknown record tag %C" path c);
      records ()
    end
  in
  records ();
  match !trailer with
  | None -> fail "%s: no trailer — the recording did not run to completion" path
  | Some (l_final_at_ns, l_final_sections, l_observables) ->
    {
      l_path = path;
      l_digest = digest;
      l_descriptor = descriptor;
      l_every_ns = every_ns;
      l_frames = Array.of_list (List.rev !frames);
      l_final_at_ns;
      l_final_sections;
      l_observables;
    }

(* ---- Recording ---- *)

(* Record a staged run to [path], one frame every [every_ns] of virtual
   time plus frame 0 at the start, and the trailer with the final
   sections and observable bytes. Returns the finished world. *)
let record world ~every_ns ~descriptor ~path =
  if every_ns <= 0 then invalid_arg "Replay.record: every_ns must be > 0";
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  write_header oc ~descriptor ~every_ns;
  let index = ref 0 in
  let engine = World.engine world in
  let take_frame () =
    Obs.incr world.World.obs "snapshots_taken";
    let sections = World.sections world in
    let meta = Snapshot.encode_sections sections in
    let blob = Marshal.to_string world [ Marshal.Closures ] in
    Obs.incr world.World.obs ~by:(String.length meta + String.length blob)
      "snapshot_bytes";
    write_frame oc ~index:!index ~at_ns:(Time.to_ns (Engine.now engine)) ~meta ~blob;
    incr index
  in
  take_frame ();
  drive world ~every_ns ~take_frame;
  World.finish world;
  write_trailer oc
    ~at_ns:(Time.to_ns (Engine.now engine))
    ~meta:(Snapshot.encode_sections (World.sections world))
    ~observables:(World.observables world);
  world

(* ---- Resume ---- *)

let frame_count log = Array.length log.l_frames

let check_frame log k =
  if k < 0 || k >= frame_count log then
    fail "%s has frames 0..%d, not %d" log.l_path (frame_count log - 1) k

let resume log k =
  check_frame log k;
  if log.l_digest <> self_digest () then
    fail
      "%s was recorded by a different build of this binary; world blobs carry \
       closures and cannot cross builds (frame metadata still can: try repro \
       bisect)"
      log.l_path;
  let world : World.t = Marshal.from_string log.l_frames.(k).f_blob 0 in
  Obs.incr world.World.obs "restore_count";
  world

(* Resume from frame [k] and run the suffix to completion, taking no new
   frames. Returns the finished world. *)
let replay log ~from_frame =
  let world = resume log from_frame in
  drive world ~every_ns:0 ~take_frame:(fun () -> ());
  World.finish world;
  world

(* ---- Verification ---- *)

type divergence = { d_frame : int; d_stream : string; d_detail : string }

let strip_snapshot_lines bytes =
  String.split_on_char '\n' bytes
  |> List.filter (fun l -> not (is_snapshot_metric_line l))
  |> String.concat "\n"

let first_diff a b =
  let la = String.length a and lb = String.length b in
  let rec go i = if i < la && i < lb && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let diff_observables ~frame base ours =
  List.concat_map
    (fun (stream, base_bytes) ->
      let base_bytes = strip_snapshot_lines base_bytes in
      match List.assoc_opt stream ours with
      | None ->
        [ { d_frame = frame; d_stream = stream; d_detail = "stream missing from replay" } ]
      | Some got ->
        let got = strip_snapshot_lines got in
        if String.equal base_bytes got then []
        else
          let i = first_diff base_bytes got in
          [
            {
              d_frame = frame;
              d_stream = stream;
              d_detail =
                Printf.sprintf
                  "first divergence at byte %d (recorded %d bytes, replayed %d)" i
                  (String.length base_bytes) (String.length got);
            };
          ])
    base

(* Re-run the suffix from every frame and diff the observable bytes
   against the recording's trailer. An empty list means every frame's
   suffix reproduced the run byte-identically. *)
let verify ?(progress = fun ~frame:_ ~frames:_ -> ()) log =
  let frames = frame_count log in
  List.concat_map
    (fun k ->
      progress ~frame:k ~frames;
      let world = replay log ~from_frame:k in
      diff_observables ~frame:k log.l_observables (World.observables world))
    (List.init frames Fun.id)

(* ---- Divergence diagnostics (bisect) ---- *)

let violations_of sections =
  List.find_opt (fun (s : Snapshot.section) -> s.name = "fault.monitor") sections
  |> Option.map (fun s -> Snapshot.get_int s "violations")

type bisect_report = {
  b_invariant : string;
  b_process : int; (* 1-based, as printed *)
  b_at_ms : float;
  b_detail : string;
  b_from_frame : int;
  b_to_frame : int option; (* None: window ends at the trailer *)
  b_from_ms : float;
  b_to_ms : float;
  b_diff : Snapshot.section_diff list;
  b_window_spans : string list; (* span/trace JSONL lines inside the window *)
}

let ms_of_ns ns = float_of_int ns /. 1e6

(* Binary-search the frame log for the first frame whose monitor section
   already counts a violation; the causal window is (previous frame, that
   frame]. Returns [None] if the recorded run never violated. *)
let bisect log =
  let frames = log.l_frames in
  let viol k =
    match violations_of frames.(k).f_sections with
    | Some v -> v
    | None -> fail "%s: frame %d has no fault.monitor section — record the run with repro nemesis" log.l_path k
  in
  let final =
    match violations_of log.l_final_sections with
    | Some v -> v
    | None -> fail "%s: trailer has no fault.monitor section — record the run with repro nemesis" log.l_path
  in
  if final = 0 then None
  else begin
    let n = Array.length frames in
    if n = 0 then fail "%s has no frames" log.l_path;
    (* Invariant: violations are monotone in time. Find the first bad
       frame, if any frame is bad at all. *)
    let first_bad =
      if viol (n - 1) = 0 then None
      else begin
        let lo = ref 0 and hi = ref (n - 1) in
        (* viol !hi > 0; find least k with viol k > 0 *)
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if viol mid > 0 then hi := mid else lo := mid + 1
        done;
        Some !lo
      end
    in
    let from_frame, to_frame, bad_sections, to_ns =
      match first_bad with
      | Some 0 ->
        fail "%s: frame 0 already carries a violation; nothing to bisect" log.l_path
      | Some k -> (k - 1, Some k, frames.(k).f_sections, frames.(k).f_at_ns)
      | None ->
        (* The violation happened after the last frame: the window runs to
           the trailer. *)
        (n - 1, None, log.l_final_sections, log.l_final_at_ns)
    in
    let good = frames.(from_frame) in
    let diff = Snapshot.diff_sections good.f_sections bad_sections in
    (* The violation record and the window's causal spans come from the
       first-bad world (the violation is in (t_good, t_bad], and the
       monitor/trace state rides the blob). *)
    let world =
      match to_frame with
      | Some k -> resume log k
      | None -> replay log ~from_frame
    in
    let monitor =
      match world.World.shape with
      | World.Nemesis st -> st.Campaign.ca_monitor
      | World.Report _ -> fail "%s records a report run, not a monitored one" log.l_path
    in
    let v =
      match Monitor.first_violation monitor with
      | Some v -> v
      | None -> fail "monitor lost its violation on resume (codec bug)"
    in
    let from_t = Time.of_ns good.f_at_ns in
    let to_t = Time.of_ns to_ns in
    let window_spans =
      let keep at = Time.(at > from_t) && Time.(at <= to_t) in
      (Jsonl.trace_lines world.World.obs @ Jsonl.span_lines world.World.obs)
      |> List.filter (fun line ->
             match Jsonl.parse line with
             | Error _ -> false
             | Ok j -> (
               match Jsonl.to_int_opt (Jsonl.member "at_ns" j) with
               | Some at -> keep (Time.of_ns at)
               | None -> false))
    in
    Some
      {
        b_invariant = Monitor.invariant_name v.Monitor.invariant;
        b_process = v.Monitor.at_process + 1;
        b_at_ms = Time.to_ms_float v.Monitor.at;
        b_detail = v.Monitor.detail;
        b_from_frame = from_frame;
        b_to_frame = to_frame;
        b_from_ms = ms_of_ns good.f_at_ns;
        b_to_ms = ms_of_ns to_ns;
        b_diff = diff;
        b_window_spans = window_spans;
      }
  end

let bisect_report_lines r =
  let summary =
    Jsonl.to_string
      (Jsonl.Obj
         [
           ("type", Jsonl.String "bisect");
           ("invariant", Jsonl.String r.b_invariant);
           ("process", Jsonl.Int r.b_process);
           ("at_ms", Jsonl.Float r.b_at_ms);
           ("detail", Jsonl.String r.b_detail);
           ("from_frame", Jsonl.Int r.b_from_frame);
           ( "to_frame",
             match r.b_to_frame with Some k -> Jsonl.Int k | None -> Jsonl.Null );
           ("window_from_ms", Jsonl.Float r.b_from_ms);
           ("window_to_ms", Jsonl.Float r.b_to_ms);
           ("changed_sections", Jsonl.Int (List.length r.b_diff));
           ("window_spans", Jsonl.Int (List.length r.b_window_spans));
         ])
  in
  (summary :: List.map Snapshot.section_diff_to_json r.b_diff) @ r.b_window_spans

(* ---- Recording entry points (what the CLI drives) ---- *)

let report_descriptor (config : Experiment.config) =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("mode", Jsonl.String "report");
         ("stack", Jsonl.String (Experiment.kind_name config.Experiment.kind));
         ("n", Jsonl.Int config.Experiment.n);
         ("load", Jsonl.Float config.Experiment.offered_load);
         ("size", Jsonl.Int config.Experiment.size);
         ("warmup_s", Jsonl.Float config.Experiment.warmup_s);
         ("measure_s", Jsonl.Float config.Experiment.measure_s);
         ("seed", Jsonl.Int config.Experiment.seed);
       ])

let nemesis_descriptor ~kind ~n ~seed ~load ~settle_s ~schedule =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("mode", Jsonl.String "nemesis");
         ("stack", Jsonl.String (Experiment.kind_name kind));
         ("n", Jsonl.Int n);
         ("seed", Jsonl.Int seed);
         ("load", Jsonl.Float load);
         ("settle_s", Jsonl.Float settle_s);
         ("plan", Jsonl.String (Schedule.to_string schedule));
       ])

let record_report ?(obs = Obs.noop) ~every_ns ~path config =
  let st = Experiment.stage ~obs config in
  let world =
    World.make (World.Report st) obs st.Experiment.st_milestones
  in
  let (_ : World.t) =
    record world ~every_ns ~descriptor:(report_descriptor config) ~path
  in
  (* [st_result] is a pure recomputation from the window samples; calling
     it again after [World.finish] yields the very same value. *)
  st.Experiment.st_result ()

let record_nemesis ?(obs = Obs.noop) ~kind ~n ~seed ~schedule ~offered_load ~settle_s
    ~every_ns ~path () =
  let st = Campaign.stage ~kind ~n ~seed ~schedule ~offered_load ~settle_s ~obs () in
  let world = World.make (World.Nemesis st) obs st.Campaign.ca_milestones in
  let (_ : World.t) =
    record world ~every_ns
      ~descriptor:
        (nemesis_descriptor ~kind ~n ~seed ~load:offered_load ~settle_s ~schedule)
      ~path
  in
  st.Campaign.ca_result ()

(* ---- Log accessors for the CLI ---- *)

type world = World.t

let descriptor log = log.l_descriptor
let every_ns log = log.l_every_ns
let frame_times log =
  Array.to_list (Array.map (fun f -> (f.f_index, f.f_at_ns)) log.l_frames)
let final_at_ns log = log.l_final_at_ns
let recorded_observables log = log.l_observables
let report_text (w : World.t) = w.World.report
let observables = World.observables
