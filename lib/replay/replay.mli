open Repro_core

(** Time-travel driver: whole-world snapshot frames, deterministic resume,
    and divergence diagnostics over a recorded frame log.

    A frame carries two representations of the same instant. The {e data
    plane} — every module's counters, tables and queues — is a list of
    {!Repro_sim.Snapshot.section}s in the versioned codec, readable across
    rebuilds of the binary ([bisect] works from it alone). The {e control
    plane} — pending events, armed timers, subscriber callbacks — is a
    whole-world [Marshal] blob with closures, pinned to the writing binary
    (the log header records the executable digest; {!replay} checks it).
    Resume goes only through the blob: unmarshaling reproduces a
    self-consistent world whose queued events reference exactly the
    records its tables hold, and that copy becomes the live world.

    Frames are taken only {e between} engine slices, never inside the
    event loop, so a recorded run is event-identical to an unrecorded one;
    with an interval of 0 no frame is taken and the run is bit-for-bit the
    plain [Experiment.run_raw] / [Campaign.run_one]. *)

exception Replay_error of string
(** Raised on malformed logs, out-of-range frames, cross-build resume
    attempts and misuse (e.g. bisecting an unmonitored report run). *)

val snapshot_metrics : string list
(** Obs counter names bumped by recording/resume ([snapshots_taken],
    [snapshot_bytes], [restore_count]). They legitimately differ between a
    t=0 run and a resumed suffix, so {!verify} strips their metric lines
    before diffing — the same contract as the timing-class [bench_meta]
    fields ([wallclock_s] …) that [@parallel-smoke] strips. *)

(** {2 Recording} *)

val record_report :
  ?obs:Repro_obs.Obs.t ->
  every_ns:int ->
  path:string ->
  Repro_workload.Experiment.config ->
  float list * Repro_workload.Experiment.result
(** Run the report workload exactly as [Experiment.run_raw] while writing
    a frame log to [path]: frame 0 at t=0, one frame every [every_ns] of
    virtual time, and a trailer holding the final sections plus the
    observable byte streams (metrics / trace / report). Returns
    [run_raw]'s value. @raise Invalid_argument if [every_ns <= 0]. *)

val record_nemesis :
  ?obs:Repro_obs.Obs.t ->
  kind:Replica.kind ->
  n:int ->
  seed:int ->
  schedule:Repro_fault.Schedule.t ->
  offered_load:float ->
  settle_s:float ->
  every_ns:int ->
  path:string ->
  unit ->
  Repro_fault.Campaign.verdict
(** Same, for a monitored fault-injection run: exactly
    [Campaign.run_one], plus the frame log. Only nemesis logs can be
    {!bisect}ed (the monitor section carries the violation counter). *)

(** {2 Loading and resuming} *)

type log

val load : string -> log
(** Parse a frame log written by {!record_report} / {!record_nemesis}.
    @raise Replay_error if the file is not a complete log. *)

val frame_count : log -> int
val descriptor : log -> string  (** The run's one-line JSON descriptor. *)

val every_ns : log -> int
val frame_times : log -> (int * int) list  (** [(index, at_ns)] pairs. *)

val final_at_ns : log -> int

val recorded_observables : log -> (string * string) list
(** The trailer's observable byte streams, by name. *)

type world
(** A finished (resumed and run-to-completion) run. *)

val replay : log -> from_frame:int -> world
(** Unmarshal frame [from_frame]'s world blob and run the remaining
    milestones to completion, taking no new frames. @raise Replay_error
    if the frame is out of range or the log was written by a different
    build of this binary. *)

val observables : world -> (string * string) list
(** The replayed run's observable byte streams, same names and shapes as
    {!recorded_observables}. *)

val report_text : world -> string
(** The replayed run's final report: the experiment result line, or the
    campaign verdict JSONL followed by one line per violation. *)

(** {2 Self-verification} *)

type divergence = { d_frame : int; d_stream : string; d_detail : string }

val verify : ?progress:(frame:int -> frames:int -> unit) -> log -> divergence list
(** Replay the suffix from {e every} frame and diff each stream against
    the recording's trailer (snapshot-counter metric lines stripped on
    both sides). Empty result = every frame reproduced the run
    byte-identically. *)

(** {2 Divergence diagnostics} *)

type bisect_report = {
  b_invariant : string;
  b_process : int;  (** 1-based, as printed. *)
  b_at_ms : float;
  b_detail : string;
  b_from_frame : int;  (** Last frame with zero violations. *)
  b_to_frame : int option;  (** First bad frame; [None]: the trailer. *)
  b_from_ms : float;
  b_to_ms : float;
  b_diff : Repro_sim.Snapshot.section_diff list;
      (** Per-module field diffs, last-good frame vs first-bad frame. *)
  b_window_spans : string list;
      (** Trace/span JSONL lines timestamped inside the window. *)
}

val bisect : log -> bisect_report option
(** Binary-search the monitor's monotone violation counter over the frame
    log: [None] if the recorded run never violated, otherwise the
    narrowest inter-frame window containing the first violation, with the
    structured state diff across it. Works from frame metadata except for
    the window spans (which resume the first-bad world). @raise
    Replay_error on report-mode logs or if frame 0 already violates. *)

val bisect_report_lines : bisect_report -> string list
(** The report as JSONL: one [{"type":"bisect",…}] summary line, one
    [{"section":…,"changes":…}] line per changed section, then the
    window's span/trace lines. *)
