open Repro_sim
open Repro_net
open Repro_core
open Repro_workload
module Jsonl = Repro_obs.Jsonl

type outcome = Pass | Fail of Monitor.violation

type verdict = {
  kind : Replica.kind;
  n : int;
  seed : int;
  schedule : Schedule.t;
  outcome : outcome;
  crashed : int;
  delivered : int;
  admitted : int;
  mean_latency_ms : float;
}

let span_of_s s = Time.span_ns (int_of_float (s *. 1e9))

(* ---- Schedule generation ---- *)

let random_schedule ?(adversary = false) ?(equivocation = false) rng ~n ~horizon =
  let h = Time.span_to_ns horizon in
  if h <= 0 then invalid_arg "Campaign.random_schedule: empty horizon";
  if n < 3 then invalid_arg "Campaign.random_schedule: need n >= 3";
  let steps = ref [] in
  let push at action = steps := { Schedule.at = Time.span_ns at; action } :: !steps in
  (* Crashes: a random minority, half of them mid-broadcast. *)
  let f = (n - 1) / 2 in
  let victims = Array.of_list (Pid.all ~n) in
  Rng.shuffle_in_place rng victims;
  let n_crashes = Rng.int rng (f + 1) in
  for i = 0 to n_crashes - 1 do
    let at = (h / 10) + Rng.int rng (max 1 (h * 6 / 10)) in
    let p = victims.(i) in
    if Rng.bool rng then push at (Schedule.Crash p)
    else push at (Schedule.Crash_after_sends (p, Rng.int rng ((2 * n) + 1)))
  done;
  (* Link-fault windows. Starts and durations are bounded so every window
     closes by 0.9 h, where the unconditional cleanup below runs. *)
  let n_windows = Rng.int rng 3 in
  for _ = 1 to n_windows do
    let start = (h / 10) + Rng.int rng (max 1 (h / 2)) in
    let stop = start + (h / 20) + Rng.int rng (max 1 (h / 4)) in
    match Rng.int rng 4 with
    | 0 ->
      let src = Rng.int rng n in
      let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
      push start (Schedule.Cut (src, dst));
      push stop (Schedule.Heal (src, dst))
    | 1 ->
      let pids = Array.of_list (Pid.all ~n) in
      Rng.shuffle_in_place rng pids;
      let k = 1 + Rng.int rng (n - 1) in
      let block lo hi = Array.to_list (Array.sub pids lo (hi - lo)) in
      push start (Schedule.Partition [ block 0 k; block k n ]);
      push stop Schedule.Heal_all
    | 2 ->
      push start (Schedule.Loss_rate (0.01 +. Rng.float rng 0.25));
      push stop (Schedule.Loss_rate 0.0)
    | _ ->
      push start (Schedule.Delay_spike (Time.span_us (100 + Rng.int rng 1900)));
      push stop (Schedule.Delay_spike Time.span_zero)
  done;
  (* Message-adversary windows, opt-in so that crash/partition campaigns
     keep their historical draw sequence (and verdicts) bit-for-bit.
     Equivocation is a further opt-in: no signature-free stack can mask
     conflicting payloads, so default adversary campaigns stick to the
     powers the stacks are expected to absorb. *)
  let n_adv = if adversary then Rng.int rng 3 else 0 in
  for _ = 1 to n_adv do
    let start = (h / 10) + Rng.int rng (max 1 (h / 2)) in
    let stop = start + (h / 20) + Rng.int rng (max 1 (h / 4)) in
    match Rng.int rng (if equivocation then 5 else 4) with
    | 0 ->
      push start (Schedule.Adv_drop_budget (1 + Rng.int rng (n - 2)));
      push stop (Schedule.Adv_drop_budget 0)
    | 1 ->
      push start (Schedule.Corrupt_rate (0.005 +. Rng.float rng 0.05));
      push stop (Schedule.Corrupt_rate 0.0)
    | 2 ->
      push start (Schedule.Duplicate_rate (0.01 +. Rng.float rng 0.1));
      push stop (Schedule.Duplicate_rate 0.0)
    | 3 ->
      push start (Schedule.Reorder_window (Time.span_us (100 + Rng.int rng 1900)));
      push stop (Schedule.Reorder_window Time.span_zero)
    | _ ->
      push start (Schedule.Equivocate_rate (0.005 +. Rng.float rng 0.05));
      push stop (Schedule.Equivocate_rate 0.0)
  done;
  let body =
    List.stable_sort
      (fun (a : Schedule.step) (b : Schedule.step) ->
        compare (Time.span_to_ns a.at) (Time.span_to_ns b.at))
      (List.rev !steps)
  in
  if n_windows = 0 && n_adv = 0 then body
  else begin
    (* Cleanup: whatever the windows left behind, nothing stays cut, lossy
       or slow past 0.9 h — liveness is only required of healed runs. *)
    let cleanup_at = Time.span_ns (h * 9 / 10) in
    let link_cleanup =
      if n_windows = 0 then []
      else
        [
          { Schedule.at = cleanup_at; action = Schedule.Heal_all };
          { Schedule.at = cleanup_at; action = Schedule.Loss_rate 0.0 };
          { Schedule.at = cleanup_at; action = Schedule.Delay_spike Time.span_zero };
        ]
    in
    let adv_cleanup =
      if n_adv = 0 then []
      else
        [
          { Schedule.at = cleanup_at; action = Schedule.Adv_drop_budget 0 };
          { Schedule.at = cleanup_at; action = Schedule.Corrupt_rate 0.0 };
          { Schedule.at = cleanup_at; action = Schedule.Duplicate_rate 0.0 };
          { Schedule.at = cleanup_at; action = Schedule.Reorder_window Time.span_zero };
          { Schedule.at = cleanup_at; action = Schedule.Equivocate_rate 0.0 };
        ]
    in
    body @ link_cleanup @ adv_cleanup
  end

(* ---- Single run ---- *)

(* A trial staged as a group+monitor plus timed milestones, the same
   decomposition as [Experiment.stage]: [run_one] executes the milestones
   back to back, the replay recorder slices the stretches in between at
   frame boundaries — event-identical either way. *)
type staged = {
  ca_group : Group.t;
  ca_monitor : Monitor.t;
  ca_generator : Generator.t;
  ca_milestones : (Time.t * (unit -> unit)) list; (* ascending, absolute *)
  ca_result : unit -> verdict;
}

let stage ~kind ~n ~seed ~schedule ?(offered_load = 600.0) ?(settle_s = 5.0)
    ?(obs = Repro_obs.Obs.noop) () =
  (match Schedule.validate ~n schedule with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Campaign.run_one: " ^ e));
  (* Message-dropping plans run over the Lossy transport (baseline 0) so
     Rchannel earns the quasi-reliability assumption back by retransmission;
     crash-only and delay-only plans keep the native Tcp_like channels. *)
  let transport =
    if Schedule.drops_messages schedule then Params.Lossy 0.0 else Params.Tcp_like
  in
  let params = { (Params.default ~n) with Params.seed; transport } in
  let group =
    Group.create ~kind ~params
      ~fd_mode:(`Heartbeat Repro_fd.Heartbeat_fd.default_config)
      ~record_deliveries:false ~obs ()
  in
  let monitor = Monitor.create ~seed ~schedule ~n () in
  Monitor.attach monitor group;
  ignore (Nemesis.install_exn group schedule);
  let generator = Generator.start group ~offered_load ~size:1024 () in
  let load_end =
    Time.add Time.zero (Time.span_add (Schedule.duration schedule) (Time.span_ms 200))
  in
  let settle_end = Time.add load_end (span_of_s settle_s) in
  let crashed = Schedule.crashed_pids schedule in
  let correct = List.filter (fun p -> not (List.mem p crashed)) (Pid.all ~n) in
  let milestones =
    [
      (load_end, fun () -> Generator.stop generator);
      (settle_end, fun () -> Monitor.check_final monitor ~correct ());
    ]
  in
  let result () =
    let outcome =
      match Monitor.first_violation monitor with None -> Pass | Some v -> Fail v
    in
    let delivered =
      match correct with [] -> 0 | p :: _ -> Monitor.delivered_count monitor p
    in
    let mean_latency_ms =
      match Group.latencies group with
      | [] -> nan
      | ls ->
        List.fold_left
          (fun acc (r : Group.latency_record) ->
            acc +. Time.span_to_ms_float (Time.diff r.first_delivery r.abcast_at))
          0.0 ls
        /. float_of_int (List.length ls)
    in
    {
      kind;
      n;
      seed;
      schedule;
      outcome;
      crashed = List.length crashed;
      delivered;
      admitted = Group.total_admitted group;
      mean_latency_ms;
    }
  in
  {
    ca_group = group;
    ca_monitor = monitor;
    ca_generator = generator;
    ca_milestones = milestones;
    ca_result = result;
  }

let run_one ~kind ~n ~seed ~schedule ?offered_load ?settle_s () =
  let st = stage ~kind ~n ~seed ~schedule ?offered_load ?settle_s () in
  let engine = Group.engine st.ca_group in
  List.iter
    (fun (at, act) ->
      Engine.run_until engine at;
      act ())
    st.ca_milestones;
  st.ca_result ()

(* ---- Shrinking ---- *)

let shrink ~fails schedule =
  if not (fails schedule) then schedule
  else begin
    let rec go s =
      let len = List.length s in
      let rec try_idx i =
        if i >= len then s
        else begin
          let candidate = List.filteri (fun j _ -> j <> i) s in
          if fails candidate then go candidate else try_idx (i + 1)
        end
      in
      try_idx 0
    in
    go schedule
  end

(* Time coarsening: snap every timestamp to the coarsest grid on which the
   failure still reproduces, so minimal reproducers read "at 1s", not
   "at 937561ns". Snapping is to the nearest multiple, with a running max
   keeping timestamps non-decreasing (so the plan stays valid). Runs after
   subsequence shrinking — the result is no longer a subsequence of the
   original plan, but it is a plan the same invariant still fails on. *)
let coarsen ~fails schedule =
  match schedule with
  | [] -> schedule
  | _ ->
    let snap grid =
      let prev = ref 0 in
      List.map
        (fun (s : Schedule.step) ->
          let ns = Time.span_to_ns s.Schedule.at in
          let snapped = (ns + (grid / 2)) / grid * grid in
          let snapped = max snapped !prev in
          prev := snapped;
          { s with Schedule.at = Time.span_ns snapped })
        schedule
    in
    let rec try_grids = function
      | [] -> schedule
      | grid :: finer ->
        let candidate = snap grid in
        if Schedule.equal candidate schedule then schedule
        else if fails candidate then candidate
        else try_grids finer
    in
    try_grids [ 1_000_000_000; 100_000_000; 10_000_000; 1_000_000 ]

let minimize ?offered_load ?settle_s v =
  match v.outcome with
  | Pass -> v.schedule
  | Fail viol ->
    let fails s =
      match
        (run_one ~kind:v.kind ~n:v.n ~seed:v.seed ~schedule:s ?offered_load
           ?settle_s ())
          .outcome
      with
      | Fail viol' -> viol'.Monitor.invariant = viol.Monitor.invariant
      | Pass -> false
    in
    coarsen ~fails (shrink ~fails v.schedule)

(* ---- Campaign ---- *)

let all_kinds = [ Replica.Modular; Replica.Monolithic; Replica.Indirect ]

let run ?(kinds = all_kinds) ?(base_seed = 1) ?offered_load ?(horizon_s = 2.0)
    ?settle_s ?(on_verdict = fun _ -> ()) ?jobs ?adversary ?equivocation ~n
    ~seeds () =
  let horizon = span_of_s horizon_s in
  (* Schedule generation stays sequential (it is cheap and shares one RNG
     per seed); the independent (seed, schedule, kind) runs go on the
     pool. The schedule depends on the seed only, so every stack faces
     the same fault pattern. Tasks are enumerated seed-major, and
     [Pool.map]'s ordered collection keeps the verdict stream — and
     [on_verdict] calls — in seed-then-stack order whatever [jobs] is. *)
  let tasks =
    List.concat_map
      (fun i ->
        let seed = base_seed + i in
        let schedule =
          random_schedule ?adversary ?equivocation (Rng.create ~seed) ~n ~horizon
        in
        List.map (fun kind -> (seed, schedule, kind)) kinds)
      (List.init seeds (fun i -> i))
  in
  Repro_parallel.Pool.map ?jobs
    ~collect:(fun _ v -> on_verdict v)
    (fun (seed, schedule, kind) ->
      run_one ~kind ~n ~seed ~schedule ?offered_load ?settle_s ())
    tasks

let failures verdicts =
  List.filter (fun v -> match v.outcome with Pass -> false | Fail _ -> true) verdicts

(* ---- Reporting ---- *)

let verdict_json v =
  let float_or_null x = if Float.is_nan x then Jsonl.Null else Jsonl.Float x in
  let base =
    [
      ("type", Jsonl.String "verdict");
      ("stack", Jsonl.String (Experiment.kind_name v.kind));
      ("n", Jsonl.Int v.n);
      ("seed", Jsonl.Int v.seed);
      ( "result",
        Jsonl.String (match v.outcome with Pass -> "pass" | Fail _ -> "fail") );
      ("crashed", Jsonl.Int v.crashed);
      ("delivered", Jsonl.Int v.delivered);
      ("admitted", Jsonl.Int v.admitted);
      ("mean_latency_ms", float_or_null v.mean_latency_ms);
      ("schedule", Jsonl.String (Schedule.to_string v.schedule));
    ]
  in
  let failure =
    match v.outcome with
    | Pass -> []
    | Fail viol ->
      [
        ("invariant", Jsonl.String (Monitor.invariant_name viol.Monitor.invariant));
        ("process", Jsonl.Int (viol.Monitor.at_process + 1));
        ("at_ms", Jsonl.Float (Time.to_ms_float viol.Monitor.at));
        ("detail", Jsonl.String viol.Monitor.detail);
      ]
  in
  Jsonl.Obj (base @ failure)

let verdict_line v = Jsonl.to_string (verdict_json v)

let pp_verdict ppf v =
  match v.outcome with
  | Pass ->
    Fmt.pf ppf "seed %-3d %-10s pass  (%d crashed, %d delivered, %.2f ms mean)"
      v.seed (Experiment.kind_name v.kind) v.crashed v.delivered v.mean_latency_ms
  | Fail viol ->
    Fmt.pf ppf "seed %-3d %-10s FAIL  %a" v.seed (Experiment.kind_name v.kind)
      Monitor.pp_violation viol
