open Repro_sim
open Repro_net
open Repro_core

type invariant =
  | Integrity
  | Total_order
  | Agreement
  | Validity
  | Liveness
  | Corruption
  | Equivocation

let invariant_name = function
  | Integrity -> "integrity"
  | Total_order -> "total-order"
  | Agreement -> "agreement"
  | Validity -> "validity"
  | Liveness -> "liveness"
  | Corruption -> "corruption"
  | Equivocation -> "equivocation"

type violation = {
  at : Time.t;
  invariant : invariant;
  at_process : Pid.t;
  detail : string;
}

type t = {
  n : int;
  seed : int;
  schedule : Schedule.t;
  (* Per-process delivery logs, newest first, plus counts for O(1) index. *)
  rev_logs : App_msg.id list array;
  counts : int array;
  seen : (App_msg.id, unit) Hashtbl.t array;
  (* The global order: the longest delivery sequence observed so far.
     Prefix compatibility of all logs is equivalent to each log being a
     prefix of this one, so every delivery checks one slot. *)
  mutable global : App_msg.id array;
  mutable global_len : int;
  (* First content fingerprint adelivered for each identity, anywhere in
     the group; a later delivery of the same identity with a different
     fingerprint is channel equivocation made visible. *)
  fingerprints : (App_msg.id, int * Pid.t) Hashtbl.t;
  mutable tampered_detected : int;
  mutable tampered_silent : int;
  mutable clock : unit -> Time.t;
  mutable admitted_of : Pid.t -> int option;
  mutable rev_violations : violation list;
}

let create ?(seed = 0) ?(schedule = []) ~n () =
  {
    n;
    seed;
    schedule;
    rev_logs = Array.make n [];
    counts = Array.make n 0;
    seen = Array.init n (fun _ -> Hashtbl.create 64);
    global = Array.make 64 { App_msg.origin = 0; seq = -1 };
    global_len = 0;
    fingerprints = Hashtbl.create 64;
    tampered_detected = 0;
    tampered_silent = 0;
    clock = (fun () -> Time.zero);
    admitted_of = (fun _ -> None);
    rev_violations = [];
  }

let violate t invariant at_process detail =
  t.rev_violations <-
    { at = t.clock (); invariant; at_process; detail } :: t.rev_violations

let global_push t id =
  if t.global_len = Array.length t.global then begin
    let bigger = Array.make (2 * t.global_len) id in
    Array.blit t.global 0 bigger 0 t.global_len;
    t.global <- bigger
  end;
  t.global.(t.global_len) <- id;
  t.global_len <- t.global_len + 1

let observe t ?fingerprint p id =
  if p < 0 || p >= t.n then invalid_arg "Monitor.observe: pid out of range";
  (* Equivocation agreement: every process adelivering an identity must
     see the same content fingerprint as the first process that did. *)
  (match fingerprint with
  | None -> ()
  | Some fp -> (
    match Hashtbl.find_opt t.fingerprints id with
    | None -> Hashtbl.replace t.fingerprints id (fp, p)
    | Some (fp0, p0) ->
      if fp <> fp0 then
        violate t Equivocation p
          (Fmt.str "%a delivered with fingerprint %d but %a saw %d"
             App_msg.pp_id id fp Pid.pp p0 fp0)));
  (* Integrity: no duplicate delivery at one process. *)
  if Hashtbl.mem t.seen.(p) id then
    violate t Integrity p (Fmt.str "%a delivered twice" App_msg.pp_id id)
  else Hashtbl.replace t.seen.(p) id ();
  (* Validity: the message must have been admitted by its origin. *)
  (if id.App_msg.origin < 0 || id.App_msg.origin >= t.n then
     violate t Validity p (Fmt.str "%a has no such origin" App_msg.pp_id id)
   else
     match t.admitted_of id.App_msg.origin with
     | Some admitted when id.App_msg.seq >= admitted ->
       violate t Validity p
         (Fmt.str "%a delivered but origin admitted only %d messages"
            App_msg.pp_id id admitted)
     | _ -> ());
  (* Total order: this log must stay a prefix of the global order. *)
  let i = t.counts.(p) in
  if i < t.global_len then begin
    if not (App_msg.equal_id t.global.(i) id) then
      violate t Total_order p
        (Fmt.str "position %d: delivered %a where the group order has %a" i
           App_msg.pp_id id App_msg.pp_id t.global.(i))
  end
  else global_push t id;
  t.rev_logs.(p) <- id :: t.rev_logs.(p);
  t.counts.(p) <- i + 1

(* Corruption detection: the simulator knows which copies were tampered
   (the [Tampered] envelope is an oracle a real system lacks), so the
   invariant is sharp — every tampered copy must be caught by checksums;
   one processed as genuine is a silent-corruption safety violation. *)
let note_tamper t p ~detected =
  if p < 0 || p >= t.n then invalid_arg "Monitor.note_tamper: pid out of range";
  if detected then t.tampered_detected <- t.tampered_detected + 1
  else begin
    t.tampered_silent <- t.tampered_silent + 1;
    violate t Corruption p "tampered copy processed as genuine (checksums off)"
  end

let tampered_detected t = t.tampered_detected
let tampered_silent t = t.tampered_silent

let attach t group =
  let engine = Group.engine group in
  t.clock <- (fun () -> Engine.now engine);
  t.admitted_of <- (fun p -> Some (Replica.admitted (Group.replica group p)));
  Group.on_delivery group (fun p (msg : App_msg.t) ->
      (* The payload size doubles as the content fingerprint: the
         adversary's alternate payloads differ exactly in size. *)
      observe t ~fingerprint:msg.size p msg.id);
  Group.on_tamper group (fun p ~detected -> note_tamper t p ~detected)

let check_final t ~correct ?(min_delivered = 1) () =
  List.iter
    (fun p ->
      if p < 0 || p >= t.n then invalid_arg "Monitor.check_final: pid out of range")
    correct;
  (* Uniform agreement among correct processes: online total order already
     guarantees prefix compatibility, so equality reduces to equal length. *)
  (match correct with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun p ->
        if t.counts.(p) <> t.counts.(first) then
          violate t Agreement p
            (Fmt.str "correct %a delivered %d messages but correct %a delivered %d"
               Pid.pp p t.counts.(p) Pid.pp first t.counts.(first)))
      rest);
  (* Liveness of the correct majority. *)
  if 2 * List.length correct > t.n then begin
    List.iter
      (fun p ->
        if t.counts.(p) < min_delivered then
          violate t Liveness p
            (Fmt.str "correct %a delivered %d < %d messages" Pid.pp p
               t.counts.(p) min_delivered))
      correct;
    (* Every message admitted by a correct origin must be delivered at every
       correct process; with agreement checked, membership in one correct
       log suffices. *)
    match correct with
    | [] -> ()
    | witness :: _ ->
      List.iter
        (fun origin ->
          match t.admitted_of origin with
          | None -> ()
          | Some admitted ->
            for seq = 0 to admitted - 1 do
              let id = { App_msg.origin; seq } in
              if not (Hashtbl.mem t.seen.(witness) id) then
                violate t Liveness witness
                  (Fmt.str "%a admitted by correct origin but never delivered"
                     App_msg.pp_id id)
            done)
        correct
  end

let violations t = List.rev t.rev_violations
let first_violation t = match violations t with [] -> None | v :: _ -> Some v

(* ---- Graceful-degradation classification ---- *)

type degradation = Live | Safe_stall | Safety_violation

let degradation_name = function
  | Live -> "live"
  | Safe_stall -> "safe-stall"
  | Safety_violation -> "safety-violation"

let classify t =
  let is_safety = function
    | Integrity | Total_order | Agreement | Validity | Corruption | Equivocation
      ->
      true
    | Liveness -> false
  in
  if List.exists (fun v -> is_safety v.invariant) (violations t) then
    Safety_violation
  else if t.rev_violations <> [] then Safe_stall
  else Live
let seed t = t.seed
let schedule t = t.schedule
let delivered_count t p = t.counts.(p)
let log t p = List.rev t.rev_logs.(p)

let pp_violation ppf v =
  Fmt.pf ppf "%s violated at %a by %a: %s" (invariant_name v.invariant) Time.pp
    v.at Pid.pp v.at_process v.detail

let pp_report ppf t =
  match first_violation t with
  | None -> Fmt.string ppf "no violations"
  | Some v ->
    Fmt.pf ppf "%a@ (seed %d, schedule: %a)" pp_violation v t.seed Schedule.pp
      t.schedule

(* ---- Snapshot ---- *)

module Snap = Snapshot

type mon_data = {
  md_rev_logs : App_msg.id list array;
  md_counts : int array;
  md_seen : (App_msg.id, unit) Hashtbl.t array;
  md_global : App_msg.id array;
  md_global_len : int;
  md_fingerprints : (App_msg.id, int * Pid.t) Hashtbl.t;
  md_tampered_detected : int;
  md_tampered_silent : int;
  md_rev_violations : violation list;
}

let snapshot ?(name = "fault.monitor") t =
  Snap.make ~name ~version:1
    ~data:
      (Snap.pack
         {
           md_rev_logs = t.rev_logs;
           md_counts = t.counts;
           md_seen = t.seen;
           md_global = Array.sub t.global 0 t.global_len;
           md_global_len = t.global_len;
           md_fingerprints = t.fingerprints;
           md_tampered_detected = t.tampered_detected;
           md_tampered_silent = t.tampered_silent;
           md_rev_violations = t.rev_violations;
         })
    [
      ("violations", Snap.Int (List.length t.rev_violations));
      ( "delivered",
        Snap.List (Array.to_list (Array.map (fun c -> Snap.Int c) t.counts)) );
      ("global_len", Snap.Int t.global_len);
      ("tampered_detected", Snap.Int t.tampered_detected);
      ("tampered_silent", Snap.Int t.tampered_silent);
    ]

let restore ?(name = "fault.monitor") t s =
  Snap.check s ~name ~version:1;
  let (d : mon_data) = Snap.unpack_data s in
  if Array.length d.md_counts <> t.n then
    raise (Snap.Codec_error (name ^ ": snapshot taken with a different group size"));
  Array.blit d.md_rev_logs 0 t.rev_logs 0 t.n;
  Array.blit d.md_counts 0 t.counts 0 t.n;
  Array.iteri
    (fun i seen ->
      Hashtbl.reset t.seen.(i);
      Hashtbl.fold (fun k () acc -> k :: acc) seen []
      |> List.sort App_msg.compare_id
      |> List.iter (fun k -> Hashtbl.add t.seen.(i) k ()))
    d.md_seen;
  t.global <- Array.copy d.md_global;
  t.global_len <- d.md_global_len;
  (if t.global_len = 0 then t.global <- Array.make 64 { App_msg.origin = 0; seq = -1 });
  Hashtbl.reset t.fingerprints;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) d.md_fingerprints []
  |> List.sort (fun (a, _) (b, _) -> App_msg.compare_id a b)
  |> List.iter (fun (k, v) -> Hashtbl.add t.fingerprints k v);
  t.tampered_detected <- d.md_tampered_detected;
  t.tampered_silent <- d.md_tampered_silent;
  t.rev_violations <- d.md_rev_violations
(* [clock] and [admitted_of] are wiring closures installed by [attach];
   they ride the world blob. *)
