open Repro_sim
open Repro_net
open Repro_core

(** Continuous invariant monitoring for atomic broadcast under faults.

    A monitor watches every adelivery of a run and checks the abcast
    contract {e online}, in O(1) per delivery:

    - {b integrity} — no process delivers the same message twice;
    - {b total order} — all delivery sequences are prefix-compatible at
      all times;
    - {b validity} — every delivered message was actually abcast (its
      per-origin sequence number is below the origin's admitted count).

    Under an armed message adversary two more online checks apply:

    - {b corruption detection} — every tampered copy the adversary
      injected must be caught by checksums; one processed as genuine
      (checksums off) is a silent-corruption violation ({!note_tamper});
    - {b equivocation agreement} — every process adelivering an identity
      must see the same content fingerprint as the first process that
      did ({!observe}'s [fingerprint]).

    Two more invariants only make sense once the run has settled, so
    {!check_final} verifies them at the end:

    - {b uniform agreement} — the correct processes' delivery sequences
      are {e equal}, not merely prefix-compatible;
    - {b liveness of the correct majority} — when the correct processes
      form a majority, each of them delivered at least [min_delivered]
      messages {e and} every message admitted by a correct process was
      delivered (a crashed process' messages may be lost; a correct
      one's may not).

    Violations are recorded, not raised, and each report carries the
    virtual time, the run's seed and the offending fault schedule — the
    triple that reproduces the run bit-for-bit.

    The monitor generalizes {!Repro_core.Order_checker} (which predates
    it and remains for light-weight assertions): it adds validity,
    final agreement/liveness, and the seed + schedule reproduction
    context the campaign needs. *)

type invariant =
  | Integrity
  | Total_order
  | Agreement
  | Validity
  | Liveness
  | Corruption
  | Equivocation

val invariant_name : invariant -> string
(** ["integrity"], ["total-order"], ["agreement"], ["validity"],
    ["liveness"], ["corruption"], ["equivocation"]. *)

type violation = {
  at : Time.t;  (** Virtual instant the violation was detected. *)
  invariant : invariant;
  at_process : Pid.t;
  detail : string;
}

type t

val create : ?seed:int -> ?schedule:Schedule.t -> n:int -> unit -> t
(** A fresh monitor for [n] processes. [seed] (default 0) and [schedule]
    (default empty) are carried into violation reports. *)

val attach : t -> Group.t -> unit
(** Observe every adelivery of the group (with the payload size as its
    content fingerprint) and every tampered copy reaching a replica
    ({!Group.on_tamper}), stamp violations with the group's virtual
    clock, and validate sequence numbers against the replicas' admitted
    counts. *)

val observe : t -> ?fingerprint:int -> Pid.t -> App_msg.id -> unit
(** Feed one adelivery by hand (used by tests that replay — possibly
    corrupted — delivery logs without a live group). [fingerprint]
    (default: none, which skips the check) is an integer digest of the
    delivered content; processes disagreeing on a given identity's
    fingerprint is an equivocation violation. *)

val note_tamper : t -> Pid.t -> detected:bool -> unit
(** Record one adversary-tampered copy reaching a process. [detected]
    false — the copy was processed as genuine — is a corruption
    violation; true just counts (detection {e is} the graceful path). *)

val tampered_detected : t -> int
val tampered_silent : t -> int

val check_final : t -> correct:Pid.t list -> ?min_delivered:int -> unit -> unit
(** Run the end-of-run checks (agreement always; liveness only if
    [correct] is a majority of n). [min_delivered] defaults to 1. *)

val violations : t -> violation list
(** All violations, oldest first. *)

val first_violation : t -> violation option

(** How a run degraded under its faults, coarsened to the three classes
    the robustness study tabulates. *)
type degradation =
  | Live  (** No violations: full service under the adversary. *)
  | Safe_stall
      (** Liveness violations only: the stack stopped delivering (or
          lost admitted messages) but never lied — the graceful failure
          mode. *)
  | Safety_violation
      (** At least one safety invariant (integrity, total order,
          agreement, validity, corruption, equivocation) broken:
          ungraceful. *)

val classify : t -> degradation
(** Classify the run from the violations recorded so far (call after
    {!check_final}). *)

val degradation_name : degradation -> string
(** ["live"], ["safe-stall"], ["safety-violation"]. *)

val seed : t -> int
val schedule : t -> Schedule.t
val delivered_count : t -> Pid.t -> int

val log : t -> Pid.t -> App_msg.id list
(** The observed delivery sequence of one process, oldest first. *)

val pp_violation : violation Fmt.t
(** One line: invariant, process, virtual time, detail. *)

val pp_report : t Fmt.t
(** The first violation plus the reproduction context (seed and
    schedule); ["no violations"] when clean. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["fault.monitor"]. The ["violations"] count field
    is the key [repro bisect] binary-searches over the frame log; the bulk
    payload carries the full delivery logs, global order, fingerprints and
    violation records. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
