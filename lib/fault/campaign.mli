open Repro_sim
open Repro_core

(** Randomized fault-injection campaigns.

    A campaign draws fault schedules from a deterministic {!Rng} — minority
    crashes, link cuts, partitions, loss-rate windows and delay spikes, all
    healed before the end of the faulty window — and runs each (seed,
    schedule) pair against the chosen stacks under a live heartbeat failure
    detector, with a {!Monitor} attached. Every run yields a {!verdict};
    a failing verdict can be {!shrink}ed to a locally minimal schedule that
    still reproduces the violated invariant, and (seed, minimal schedule)
    then reproduces the failure bit-for-bit.

    Schedules depend only on the seed, never on the stack, so for a given
    seed all stacks face the same fault pattern — the comparison the
    modularity-cost-under-faults study needs.

    Runs with link faults (cut / partition / loss / delay) use the
    {!Params.Lossy} transport with zero baseline loss, which mounts the
    retransmitting {!Repro_net.Rchannel}: quasi-reliable channels are then
    {e earned}, so messages dropped inside a fault window are recovered
    after healing and the liveness invariant is meaningful. Crash-only
    schedules keep the native [Tcp_like] transport. *)

type outcome = Pass | Fail of Monitor.violation

type verdict = {
  kind : Replica.kind;
  n : int;
  seed : int;
  schedule : Schedule.t;
  outcome : outcome;
  crashed : int;  (** Processes the schedule crashed. *)
  delivered : int;  (** Deliveries at the first correct process. *)
  admitted : int;  (** abcast completions across the group. *)
  mean_latency_ms : float;
      (** Mean early latency over the whole run, fault windows included —
          the campaign's degradation signal. [nan] if nothing delivered. *)
}

val random_schedule :
  ?adversary:bool ->
  ?equivocation:bool ->
  Rng.t ->
  n:int ->
  horizon:Time.span ->
  Schedule.t
(** Draw a schedule for [n] processes: up to ⌊(n-1)/2⌋ crashes (half of
    them mid-broadcast via [crash-after-sends]), up to two link-fault
    windows (cut, partition, loss or delay spike), every disruption healed
    by [0.9 × horizon]. The result always passes {!Schedule.validate}.

    [adversary] (default false) additionally draws up to two
    message-adversary windows (drop budget, corruption, duplication or
    reordering, each closed by its disarming action and all knobs zeroed
    by the cleanup); with it false the draw sequence — and hence every
    schedule and verdict — is bit-for-bit what it was before the
    adversary existed. [equivocation] (default false) lets those windows
    also draw equivocation, which no signature-free stack can absorb —
    only enable it when violations are the expected result. *)

val run_one :
  kind:Replica.kind ->
  n:int ->
  seed:int ->
  schedule:Schedule.t ->
  ?offered_load:float ->
  ?settle_s:float ->
  unit ->
  verdict
(** Execute one run: build the group (heartbeat failure detection, seeded
    from [seed]), attach a monitor, install the schedule, offer load for
    the schedule's duration plus a short margin, then stop the workload and
    let the system settle for [settle_s] (default 5) virtual seconds before
    the final agreement/liveness checks. [offered_load] defaults to 600
    msgs/s. @raise Invalid_argument if the schedule does not validate. *)

(** {2 Staged trials}

    {!run_one} decomposed into its group, monitor and timed milestones —
    the same shape as [Experiment.stage] — so the replay recorder can
    slice the stretches between milestones at snapshot-frame boundaries.
    Executing the milestones back to back is exactly {!run_one}. *)

type staged = {
  ca_group : Group.t;
  ca_monitor : Monitor.t;
  ca_generator : Repro_workload.Generator.t;
  ca_milestones : (Repro_sim.Time.t * (unit -> unit)) list;
      (** Ascending absolute times; run the engine to each, then act. *)
  ca_result : unit -> verdict;  (** Callable after every milestone ran. *)
}

val stage :
  kind:Replica.kind ->
  n:int ->
  seed:int ->
  schedule:Schedule.t ->
  ?offered_load:float ->
  ?settle_s:float ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  staged

val shrink : fails:(Schedule.t -> bool) -> Schedule.t -> Schedule.t
(** Greedy delta-debugging: repeatedly remove any single step whose removal
    keeps [fails] true, to a fixpoint. The result is a subsequence of the
    input and 1-minimal (removing any one further step makes [fails]
    false). If the input itself does not fail, it is returned unchanged. *)

val coarsen : fails:(Schedule.t -> bool) -> Schedule.t -> Schedule.t
(** Snap every timestamp to the coarsest grid (1s, then 100ms, 10ms, 1ms)
    on which [fails] still holds — nearest multiple, kept non-decreasing —
    so minimal reproducers read [at 1s] rather than [at 937561ns]. Returns
    the input unchanged if no coarser grid reproduces (or the plan is
    already on its coarsest reproducing grid). *)

val minimize : ?offered_load:float -> ?settle_s:float -> verdict -> Schedule.t
(** Shrink a failing verdict's schedule ({!shrink}, then {!coarsen}) so
    that re-running the same (kind, n, seed) still violates the {e same}
    invariant. The result is 1-minimal but, after coarsening, not
    necessarily a subsequence of the original. For a passing verdict, the
    schedule is returned unchanged. *)

val run :
  ?kinds:Replica.kind list ->
  ?base_seed:int ->
  ?offered_load:float ->
  ?horizon_s:float ->
  ?settle_s:float ->
  ?on_verdict:(verdict -> unit) ->
  ?jobs:int ->
  ?adversary:bool ->
  ?equivocation:bool ->
  n:int ->
  seeds:int ->
  unit ->
  verdict list
(** The full campaign: seeds [base_seed … base_seed + seeds - 1] (default
    base 1), each generating one schedule over a [horizon_s] (default 2)
    virtual-second faulty window, run against every stack in [kinds]
    (default all three). [on_verdict] (default ignore) observes each
    verdict as it completes, for progress output. Verdicts are ordered by
    seed, then by stack.

    [jobs] (default 1) runs the independent (seed, stack) executions on a
    {!Repro_parallel.Pool}; verdict order and [on_verdict] order are
    unchanged whatever the value — each run is seeded and virtual-time
    deterministic, so the verdict list is identical too. Shrinking
    ({!minimize}) is always sequential. [adversary]/[equivocation] pass
    through to {!random_schedule}. *)

val failures : verdict list -> verdict list

val verdict_json : verdict -> Repro_obs.Jsonl.json
(** One Obs-JSONL object: [{"type":"verdict","stack":…,"n":…,"seed":…,
    "result":"pass"|"fail",…,"schedule":…}]; failing verdicts add
    ["invariant"], ["process"], ["at_ms"] and ["detail"]. *)

val verdict_line : verdict -> string
(** [verdict_json] rendered compactly (one JSONL line, no newline). *)

val pp_verdict : verdict Fmt.t
