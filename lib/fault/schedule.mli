open Repro_sim
open Repro_net

(** Declarative, serializable fault plans.

    A schedule is a time-ordered list of fault actions to inject into a
    running group: crashes (immediate or mid-broadcast), directed link
    cuts and heals, symmetric partitions, loss-rate windows, delay
    spikes, and the message-adversary powers (per-broadcast drop budgets,
    corruption, duplication, reordering, equivocation — see
    {!Network.arm_adversary}). Timestamps are virtual-time spans relative
    to the instant the schedule is installed (see {!Nemesis.install}).

    Schedules have a line-oriented concrete syntax so they can be stored
    in files, passed to [repro nemesis --fault-plan], printed as minimal
    reproducers by the campaign shrinker, and re-run bit-for-bit:

    {v
# one action per line; '#' starts a comment
at 100ms  crash p1
at 150ms  crash-after-sends p2 3
at 200ms  cut p1 p3
at 250ms  heal p1 p3
at 300ms  partition p1 p2 | p3
at 500ms  heal-all
at 600ms  loss 0.02
at 900ms  loss 0
at 1s     delay 2ms
at 1200ms delay 0ms
at 1.5s   adv-drop-budget 2
at 1.5s   corrupt 0.01
at 1.5s   duplicate 0.05
at 1.5s   reorder 1ms
at 1.5s   equivocate 0.02
at 2s     adv-drop-budget 0
    v}

    Times are a non-negative decimal (fractions allowed down to 1 ns:
    [1.5ms], but not [1.ms] or [.5ms]) with unit [ns], [us], [ms] or [s];
    processes use the paper's 1-based [p1] … [pn] names; [partition]
    separates blocks with [|] (unlisted processes form implicit singleton
    blocks). [validate] checks a plan up front — before any simulation
    starts — so a bad plan fails fast with a position-tagged error. *)

type action =
  | Crash of Pid.t  (** Silent, permanent crash (§2.1). *)
  | Crash_after_sends of Pid.t * int
      (** Crash after [k] more point-to-point sends — mid-broadcast with
          [k] below the fan-out (§3.3). *)
  | Cut of Pid.t * Pid.t  (** Cut the directed link src -> dst. *)
  | Heal of Pid.t * Pid.t  (** Heal the directed link src -> dst. *)
  | Partition of Pid.t list list
      (** Symmetric partition into blocks ({!Network.partition}). *)
  | Heal_all  (** Heal every cut link ({!Network.heal_all}). *)
  | Loss_rate of float
      (** Set the per-copy drop probability; a window is a pair of
          actions, [Loss_rate p] then [Loss_rate baseline]. *)
  | Delay_spike of Time.span
      (** Set the extra propagation delay; end the spike with
          [Delay_spike Time.span_zero]. *)
  | Adv_drop_budget of int
      (** Let the message adversary suppress up to [d] copies of each
          multicast ({!Network.set_adv_drop_budget}); [0] disarms. *)
  | Corrupt_rate of float
      (** Tamper each copy with this probability
          ({!Network.set_corrupt_rate}); [0] disarms. *)
  | Duplicate_rate of float
      (** Deliver each copy twice with this probability
          ({!Network.set_duplicate_rate}); [0] disarms. *)
  | Reorder_window of Time.span
      (** Delay each copy by up to this span outside the FIFO clamp
          ({!Network.set_reorder_window}); [span_zero] disarms. *)
  | Equivocate_rate of float
      (** Per multicast, substitute an alternate payload on some copies
          with this probability ({!Network.set_equivocate_rate}); [0]
          disarms. *)

type step = { at : Time.span;  (** Relative to installation. *) action : action }
type t = step list

val validate : n:int -> t -> (t, string) result
(** Check a plan against a group of [n] processes: timestamps must be
    non-decreasing, every pid in range, send budgets non-negative, loss
    and adversary rates in [0, 1), drop budgets in [0, n-2] (one copy of
    every multicast must survive), reorder windows non-negative,
    partition blocks disjoint. [Ok] returns the plan unchanged; [Error]
    carries a human-readable reason naming the offending step. *)

val crashed_pids : t -> Pid.t list
(** Processes the plan crashes (immediately or after sends), ascending
    and without duplicates — the complement of the correct set a monitor
    should check. *)

val duration : t -> Time.span
(** Timestamp of the last step ([span_zero] for the empty plan). *)

val drops_messages : t -> bool
(** Whether any step can make a message vanish in a way retransmission
    repairs: a cut, a partition, a positive loss rate, or a positive
    corrupt rate (checksummed receivers discard tampered copies). Such
    plans should mount the retransmitting {!Repro_net.Rchannel}
    ({!Params.Lossy} transport). The other adversary powers deliberately
    do {e not} count: the drop budget and equivocation grip wire-level
    multicasts, which the per-destination reliable channel replaces with
    point-to-point frames (mounting it would silently disarm them), and
    duplicated or reordered copies still arrive — absorbing them is the
    protocols' own job. Crashes and delay spikes drop nothing. *)

val uses_adversary : t -> bool
(** Whether any step is a message-adversary action (even a disarming,
    zero-valued one) — such plans need {!Network.arm_adversary} before
    they can be applied, which {!Nemesis.install} does automatically. *)

val equal : t -> t -> bool

val is_subsequence : t -> of_:t -> bool
(** Whether every step of the first plan appears, in order, in the
    second — the shrinker's contract. *)

val action_to_string : action -> string
val pp_action : action Fmt.t
val pp_step : step Fmt.t
val pp : t Fmt.t

val to_string : t -> string
(** The concrete plan syntax; [of_string] round-trips it exactly. *)

val of_string : string -> (t, string) result
(** Parse the plan syntax. Errors are tagged with the line number. Does
    not check pid ranges (that needs [n]) — run {!validate} next. *)

val load : string -> (t, string) result
(** Read and parse a plan file; an unreadable path is an [Error], not an
    exception. *)
