open Repro_sim
open Repro_net

type action =
  | Crash of Pid.t
  | Crash_after_sends of Pid.t * int
  | Cut of Pid.t * Pid.t
  | Heal of Pid.t * Pid.t
  | Partition of Pid.t list list
  | Heal_all
  | Loss_rate of float
  | Delay_spike of Time.span
  | Adv_drop_budget of int
  | Corrupt_rate of float
  | Duplicate_rate of float
  | Reorder_window of Time.span
  | Equivocate_rate of float

type step = { at : Time.span; action : action }
type t = step list

(* ---- Pretty-printing / serialization ---- *)

(* Spans print with the coarsest exact unit so plans stay readable and
   round-trip bit-for-bit. *)
let span_to_string d =
  let ns = Time.span_to_ns d in
  if ns mod 1_000_000_000 = 0 then Printf.sprintf "%ds" (ns / 1_000_000_000)
  else if ns mod 1_000_000 = 0 then Printf.sprintf "%dms" (ns / 1_000_000)
  else if ns mod 1_000 = 0 then Printf.sprintf "%dus" (ns / 1_000)
  else Printf.sprintf "%dns" ns

let pid_to_string p = Printf.sprintf "p%d" (p + 1)

(* Shortest decimal form that parses back to the same float, so plans
   round-trip bit-for-bit through the file syntax. *)
let float_to_string p =
  let s = Printf.sprintf "%g" p in
  if float_of_string s = p then s
  else
    let s = Printf.sprintf "%.12g" p in
    if float_of_string s = p then s else Printf.sprintf "%.17g" p

let action_to_string = function
  | Crash p -> "crash " ^ pid_to_string p
  | Crash_after_sends (p, k) ->
    Printf.sprintf "crash-after-sends %s %d" (pid_to_string p) k
  | Cut (src, dst) -> Printf.sprintf "cut %s %s" (pid_to_string src) (pid_to_string dst)
  | Heal (src, dst) ->
    Printf.sprintf "heal %s %s" (pid_to_string src) (pid_to_string dst)
  | Partition blocks ->
    "partition "
    ^ String.concat " | "
        (List.map (fun b -> String.concat " " (List.map pid_to_string b)) blocks)
  | Heal_all -> "heal-all"
  | Loss_rate p -> "loss " ^ float_to_string p
  | Delay_spike d -> "delay " ^ span_to_string d
  | Adv_drop_budget d -> Printf.sprintf "adv-drop-budget %d" d
  | Corrupt_rate p -> "corrupt " ^ float_to_string p
  | Duplicate_rate p -> "duplicate " ^ float_to_string p
  | Reorder_window w -> "reorder " ^ span_to_string w
  | Equivocate_rate p -> "equivocate " ^ float_to_string p

let step_to_string s = Printf.sprintf "at %s %s" (span_to_string s.at) (action_to_string s.action)
let to_string t = String.concat "\n" (List.map step_to_string t) ^ if t = [] then "" else "\n"
let pp_action ppf a = Fmt.string ppf (action_to_string a)
let pp_step ppf s = Fmt.string ppf (step_to_string s)
let pp ppf t = Fmt.(list ~sep:(any "; ") pp_step) ppf t

(* ---- Parsing ---- *)

(* Durations may be fractional ([1.5ms]); the value is computed in integer
   nanoseconds (whole·unit + frac·unit/10^digits) so no float rounding can
   leak into round-trips. Fractions that land below 1 ns are rejected
   rather than silently truncated. *)
let parse_span s =
  let len = String.length s in
  let digits_end from =
    let rec go i = if i < len && s.[i] >= '0' && s.[i] <= '9' then go (i + 1) else i in
    go from
  in
  let whole_end = digits_end 0 in
  let frac_start, frac_end =
    if whole_end < len && s.[whole_end] = '.' then
      (whole_end + 1, digits_end (whole_end + 1))
    else (whole_end, whole_end)
  in
  let had_dot = frac_start <> whole_end in
  if whole_end = 0 || (had_dot && frac_end = frac_start) then
    Error (Printf.sprintf "expected a duration, got %S" s)
  else
    let mult =
      match String.sub s frac_end (len - frac_end) with
      | "ns" -> Some 1
      | "us" -> Some 1_000
      | "ms" -> Some 1_000_000
      | "s" -> Some 1_000_000_000
      | _ -> None
    in
    match mult with
    | None -> Error (Printf.sprintf "unknown time unit in %S (ns|us|ms|s)" s)
    | Some m ->
      let whole = int_of_string (String.sub s 0 whole_end) in
      if frac_end = frac_start then Ok (Time.span_ns (whole * m))
      else
        let frac_digits = frac_end - frac_start in
        let pow10 =
          let rec go acc k = if k = 0 then acc else go (acc * 10) (k - 1) in
          go 1 frac_digits
        in
        if m mod pow10 <> 0 then
          Error (Printf.sprintf "duration %S is finer than 1ns" s)
        else
          let frac = int_of_string (String.sub s frac_start frac_digits) in
          Ok (Time.span_ns ((whole * m) + (frac * (m / pow10))))

let parse_pid s =
  let len = String.length s in
  if len >= 2 && s.[0] = 'p' then
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some k when k >= 1 -> Ok (k - 1)
    | _ -> Error (Printf.sprintf "bad process name %S (use p1, p2, …)" s)
  else Error (Printf.sprintf "bad process name %S (use p1, p2, …)" s)

let parse_action words =
  let pid2 name src dst k =
    match (parse_pid src, parse_pid dst) with
    | Ok a, Ok b -> Ok (k a b)
    | (Error _ as e), _ | _, (Error _ as e) ->
      (match e with Error e -> Error (name ^ ": " ^ e) | Ok _ -> assert false)
  in
  match words with
  | [ "crash"; p ] -> Result.map (fun p -> Crash p) (parse_pid p)
  | [ "crash-after-sends"; p; k ] -> (
    match (parse_pid p, int_of_string_opt k) with
    | Ok p, Some k -> Ok (Crash_after_sends (p, k))
    | Error e, _ -> Error e
    | _, None -> Error (Printf.sprintf "crash-after-sends: bad send count %S" k))
  | [ "cut"; src; dst ] -> pid2 "cut" src dst (fun a b -> Cut (a, b))
  | [ "heal"; src; dst ] -> pid2 "heal" src dst (fun a b -> Heal (a, b))
  | [ "heal-all" ] -> Ok Heal_all
  | [ "loss"; p ] -> (
    match float_of_string_opt p with
    | Some p -> Ok (Loss_rate p)
    | None -> Error (Printf.sprintf "loss: bad probability %S" p))
  | [ "delay"; d ] -> Result.map (fun d -> Delay_spike d) (parse_span d)
  | [ "adv-drop-budget"; d ] -> (
    match int_of_string_opt d with
    | Some d -> Ok (Adv_drop_budget d)
    | None -> Error (Printf.sprintf "adv-drop-budget: bad copy count %S" d))
  | [ "corrupt"; p ] -> (
    match float_of_string_opt p with
    | Some p -> Ok (Corrupt_rate p)
    | None -> Error (Printf.sprintf "corrupt: bad probability %S" p))
  | [ "duplicate"; p ] -> (
    match float_of_string_opt p with
    | Some p -> Ok (Duplicate_rate p)
    | None -> Error (Printf.sprintf "duplicate: bad probability %S" p))
  | [ "reorder"; w ] -> Result.map (fun w -> Reorder_window w) (parse_span w)
  | [ "equivocate"; p ] -> (
    match float_of_string_opt p with
    | Some p -> Ok (Equivocate_rate p)
    | None -> Error (Printf.sprintf "equivocate: bad probability %S" p))
  | "partition" :: rest when rest <> [] ->
    let rec blocks acc cur = function
      | [] -> Ok (List.rev (List.rev cur :: acc))
      | "|" :: rest ->
        if cur = [] then Error "partition: empty block"
        else blocks (List.rev cur :: acc) [] rest
      | p :: rest -> (
        match parse_pid p with
        | Ok p -> blocks acc (p :: cur) rest
        | Error e -> Error ("partition: " ^ e))
    in
    Result.map (fun bs -> Partition bs) (blocks [] [] rest)
  | verb :: _ -> Error (Printf.sprintf "unknown action %S" verb)
  | [] -> Error "empty action"

let parse_line line =
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  with
  | "at" :: time :: action -> (
    match parse_span time with
    | Error e -> Error e
    | Ok at -> Result.map (fun action -> { at; action }) (parse_action action))
  | _ -> Error "expected 'at <time> <action>'"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      if String.trim line = "" then go (lineno + 1) acc rest
      else (
        match parse_line line with
        | Ok step -> go (lineno + 1) (step :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let load path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read fault plan: %s" e)
  | text -> of_string text

(* ---- Validation ---- *)

let validate ~n t =
  let check_pid what p =
    if p < 0 || p >= n then
      Error (Printf.sprintf "%s: %s out of range for n=%d" what (pid_to_string p) n)
    else Ok ()
  in
  let check_action = function
    | Crash p -> check_pid "crash" p
    | Crash_after_sends (p, k) ->
      if k < 0 then Error "crash-after-sends: negative send count"
      else check_pid "crash-after-sends" p
    | Cut (src, dst) | Heal (src, dst) ->
      Result.bind (check_pid "cut/heal" src) (fun () -> check_pid "cut/heal" dst)
    | Partition blocks ->
      let listed = List.concat blocks in
      let rec all_ok = function
        | [] ->
          if List.length (List.sort_uniq compare listed) <> List.length listed then
            Error "partition: a process appears in two blocks"
          else Ok ()
        | p :: rest -> Result.bind (check_pid "partition" p) (fun () -> all_ok rest)
      in
      all_ok listed
    | Heal_all -> Ok ()
    | Loss_rate p ->
      if p < 0.0 || p >= 1.0 then
        Error (Printf.sprintf "loss: probability %g outside [0, 1)" p)
      else Ok ()
    | Delay_spike _ -> Ok ()
    | Adv_drop_budget d ->
      (* At least one copy of every multicast must survive, so the budget
         is capped below the n-1 remote copies of a broadcast. *)
      if d < 0 then Error "adv-drop-budget: negative copy count"
      else if d > n - 2 then
        Error
          (Printf.sprintf
             "adv-drop-budget: %d would suppress whole broadcasts for n=%d (max %d)"
             d n (n - 2))
      else Ok ()
    | Corrupt_rate p ->
      if p < 0.0 || p >= 1.0 then
        Error (Printf.sprintf "corrupt: probability %g outside [0, 1)" p)
      else Ok ()
    | Duplicate_rate p ->
      if p < 0.0 || p >= 1.0 then
        Error (Printf.sprintf "duplicate: probability %g outside [0, 1)" p)
      else Ok ()
    | Reorder_window w ->
      if Time.span_to_ns w < 0 then Error "reorder: negative window" else Ok ()
    | Equivocate_rate p ->
      if p < 0.0 || p >= 1.0 then
        Error (Printf.sprintf "equivocate: probability %g outside [0, 1)" p)
      else Ok ()
  in
  let rec go i prev = function
    | [] -> Ok t
    | step :: rest -> (
      if Time.span_to_ns step.at < Time.span_to_ns prev then
        Error
          (Printf.sprintf "step %d (%s): timestamps must be non-decreasing" i
             (step_to_string step))
      else
        match check_action step.action with
        | Error e -> Error (Printf.sprintf "step %d: %s" i e)
        | Ok () -> go (i + 1) step.at rest)
  in
  go 1 Time.span_zero t

(* ---- Helpers ---- *)

let crashed_pids t =
  List.filter_map
    (fun s ->
      match s.action with
      | Crash p | Crash_after_sends (p, _) -> Some p
      | _ -> None)
    t
  |> List.sort_uniq Pid.compare

let duration = function
  | [] -> Time.span_zero
  | t -> (List.nth t (List.length t - 1)).at

let drops_messages t =
  List.exists
    (fun s ->
      match s.action with
      | Cut _ | Partition _ -> true
      | Loss_rate p -> p > 0.0
      (* Of the adversary powers, only corruption turns into message loss
         (checksummed receivers discard tampered copies), so only it
         mounts the retransmitting channel. The others must not: the drop
         budget and equivocation act on wire-level multicasts, which the
         per-destination reliable channel replaces with point-to-point
         frames — mounting it would silently disarm them — while
         duplicated and reordered copies still arrive and are the
         protocols' own duplicate-suppression and asynchrony-tolerance to
         absorb. *)
      | Corrupt_rate p -> p > 0.0
      | Crash _ | Crash_after_sends _ | Heal _ | Heal_all | Delay_spike _
      | Adv_drop_budget _ | Duplicate_rate _ | Reorder_window _
      | Equivocate_rate _ ->
        false)
    t

let uses_adversary t =
  List.exists
    (fun s ->
      match s.action with
      | Adv_drop_budget _ | Corrupt_rate _ | Duplicate_rate _
      | Reorder_window _ | Equivocate_rate _ ->
        true
      | Crash _ | Crash_after_sends _ | Cut _ | Heal _ | Partition _ | Heal_all
      | Loss_rate _ | Delay_spike _ ->
        false)
    t

let equal a b = a = b

let rec is_subsequence sub ~of_ =
  match (sub, of_) with
  | [], _ -> true
  | _, [] -> false
  | s :: sub', o :: of_' ->
    if s = o then is_subsequence sub' ~of_:of_' else is_subsequence sub ~of_:of_'
