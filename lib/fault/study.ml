open Repro_sim
open Repro_net
open Repro_core
open Repro_workload
module Obs = Repro_obs.Obs
module Jsonl = Repro_obs.Jsonl

type row = {
  kind : Replica.kind;
  scenario : string;
  result : Experiment.result;
}

let span_of_s s = Time.span_ns (int_of_float (s *. 1e9))

let scenarios ~warmup_s ~n =
  let at s = span_of_s (warmup_s +. s) in
  let maj = (n / 2) + 1 in
  let majority_block = List.init maj (fun i -> i) in
  let minority_block = List.init (n - maj) (fun i -> maj + i) in
  [
    ("none", []);
    ("crash-coord", [ { Schedule.at = at 1.0; action = Schedule.Crash 0 } ]);
    ( "loss-2pct",
      [
        { Schedule.at = at 1.0; action = Schedule.Loss_rate 0.02 };
        { Schedule.at = at 3.0; action = Schedule.Loss_rate 0.0 };
      ] );
    ( "partition-heal",
      [
        {
          Schedule.at = at 1.0;
          action = Schedule.Partition [ majority_block; minority_block ];
        };
        { Schedule.at = at 2.0; action = Schedule.Heal_all };
      ] );
  ]

let run ?(kinds = [ Replica.Modular; Replica.Monolithic ]) ?(offered_load = 1000.0)
    ?(size = 1024) ?(warmup_s = 1.0) ?(measure_s = 4.0) ?(obs = Obs.noop)
    ?(on_row = fun _ -> ()) ?jobs ~n () =
  (* One task per (stack, scenario) cell. The study gauges go on the
     task-private sink; [Parmap] absorbs sinks in cell order, so the
     shared [obs] ends up exactly as the sequential nested loop left it.
     [on_row] likewise fires in cell order from the collector. *)
  let cells =
    List.concat_map
      (fun kind -> List.map (fun sc -> (kind, sc)) (scenarios ~warmup_s ~n))
      kinds
  in
  Parmap.map ?jobs ~obs
    ~collect:(fun _ row -> on_row row)
    (fun ~obs (kind, (scenario, schedule)) ->
      let transport =
        if Schedule.drops_messages schedule then Params.Lossy 0.0
        else Params.Tcp_like
      in
      let params = { (Params.default ~n) with Params.transport = transport } in
      let config =
        Experiment.config ~kind ~n ~offered_load ~size ~warmup_s ~measure_s
          ~params
          ~fd_mode:(`Heartbeat Repro_fd.Heartbeat_fd.default_config)
          ()
      in
      let result =
        Experiment.run ~obs
          ~on_group:(fun g -> ignore (Nemesis.install_exn g schedule))
          config
      in
      let row = { kind; scenario; result } in
      if Obs.enabled obs then begin
        let prefix =
          Printf.sprintf "study.%s.%s" (Experiment.kind_name kind) scenario
        in
        Obs.set_gauge obs (prefix ^ ".latency_ms")
          result.Experiment.early_latency_ms.Stats.mean;
        Obs.set_gauge obs (prefix ^ ".throughput") result.Experiment.throughput
      end;
      row)
    cells

let baseline rows kind =
  List.find_opt (fun r -> r.kind = kind && r.scenario = "none") rows

let degradation rows row =
  if row.scenario = "none" then None
  else
    match baseline rows row.kind with
    | None -> None
    | Some b ->
      Some
        ( row.result.Experiment.early_latency_ms.Stats.mean
          /. b.result.Experiment.early_latency_ms.Stats.mean,
          row.result.Experiment.throughput /. b.result.Experiment.throughput )

let row_json row =
  Jsonl.Obj
    [
      ("type", Jsonl.String "study");
      ("stack", Jsonl.String (Experiment.kind_name row.kind));
      ("scenario", Jsonl.String row.scenario);
      ("n", Jsonl.Int row.result.Experiment.config.Experiment.n);
      ("latency_ms", Jsonl.Float row.result.Experiment.early_latency_ms.Stats.mean);
      ("ci95_ms", Jsonl.Float row.result.Experiment.early_latency_ms.Stats.ci95);
      ("throughput", Jsonl.Float row.result.Experiment.throughput);
      ("cpu", Jsonl.Float row.result.Experiment.cpu_utilization);
    ]

let pp_row ppf row =
  Fmt.pf ppf "%-10s %-14s n=%d | lat %7.3f ±%5.3f ms | tput %7.1f/s | CPU %3.0f%%"
    (Experiment.kind_name row.kind) row.scenario
    row.result.Experiment.config.Experiment.n
    row.result.Experiment.early_latency_ms.Stats.mean
    row.result.Experiment.early_latency_ms.Stats.ci95
    row.result.Experiment.throughput
    (100.0 *. row.result.Experiment.cpu_utilization)

(* ---- The message-adversary sweep (robustness vs. performance) ---- *)

type adversary_row = {
  kind : Replica.kind;
  level : Adversary.level;
  result : Experiment.result;
  classification : Monitor.degradation;
  violations : Monitor.violation list;
  adv : Network.adversary_stats;
  tampered_detected : int;
  tampered_silent : int;
}

let adversary_off =
  {
    Adversary.name = "off";
    drop_budget = 0;
    corrupt = 0.0;
    duplicate = 0.0;
    reorder = Time.span_ns 0;
    equivocate = 0.0;
  }

let run_adversary
    ?(kinds = [ Replica.Modular; Replica.Monolithic; Replica.Indirect ])
    ?(offered_load = 1000.0) ?(size = 1024) ?(warmup_s = 1.0) ?(measure_s = 4.0)
    ?(settle_s = 5.0) ?(seed = 0) ?(obs = Obs.noop) ?(on_row = fun _ -> ())
    ?jobs ~n () =
  let cells =
    List.concat_map
      (fun kind -> List.map (fun lv -> (kind, lv)) (Adversary.levels ~n))
      kinds
  in
  Parmap.map ?jobs ~obs
    ~collect:(fun _ row -> on_row row)
    (fun ~obs (kind, level) ->
      (* Arm every knob at the start of the measurement window, disarm at
         its end, then settle: the graceful-degradation question is
         whether everything admitted under the adversary is eventually
         delivered once it stops. *)
      let schedule =
        Adversary.schedule_of_level ~at:(span_of_s warmup_s) level
        @ Adversary.schedule_of_level
            ~at:(span_of_s (warmup_s +. measure_s))
            adversary_off
      in
      (* Every cell runs on [Tcp_like]: the fan-out powers (drop budget,
         equivocation) act on wire-level multicasts, which the per-link
         rchannels of the [Lossy] transport would bypass; the [off] level
         is then exactly the plain benchmark baseline. *)
      let params = Params.default ~n in
      let config =
        Experiment.config ~kind ~n ~offered_load ~size ~warmup_s ~measure_s
          ~seed ~params
          ~fd_mode:(`Heartbeat Repro_fd.Heartbeat_fd.default_config)
          ()
      in
      let captured = ref None in
      let result =
        Experiment.run ~obs
          ~on_group:(fun g ->
            let m = Monitor.create ~seed ~schedule ~n () in
            Monitor.attach m g;
            ignore (Nemesis.install_exn g schedule);
            captured := Some (g, m))
          config
      in
      let group, monitor =
        match !captured with Some gm -> gm | None -> assert false
      in
      Group.run_for group (span_of_s settle_s);
      Monitor.check_final monitor ~correct:(Pid.all ~n) ();
      let row =
        {
          kind;
          level;
          result;
          classification = Monitor.classify monitor;
          violations = Monitor.violations monitor;
          adv = Network.adversary_stats (Group.network group);
          tampered_detected = Monitor.tampered_detected monitor;
          tampered_silent = Monitor.tampered_silent monitor;
        }
      in
      if Obs.enabled obs then begin
        let prefix =
          Printf.sprintf "study.adv.%s.%s" (Experiment.kind_name kind)
            level.Adversary.name
        in
        Obs.set_gauge obs (prefix ^ ".latency_ms")
          result.Experiment.early_latency_ms.Stats.mean;
        Obs.set_gauge obs (prefix ^ ".throughput") result.Experiment.throughput
      end;
      row)
    cells

let adversary_baseline rows kind =
  List.find_opt
    (fun r -> r.kind = kind && r.level.Adversary.name = "off")
    rows

let adversary_degradation rows row =
  if row.level.Adversary.name = "off" then None
  else
    match adversary_baseline rows row.kind with
    | None -> None
    | Some b ->
      Some
        ( row.result.Experiment.early_latency_ms.Stats.mean
          /. b.result.Experiment.early_latency_ms.Stats.mean,
          row.result.Experiment.throughput /. b.result.Experiment.throughput )

let adversary_row_json row =
  let base =
    [
      ("type", Jsonl.String "study-adversary");
      ("stack", Jsonl.String (Experiment.kind_name row.kind));
      ("level", Jsonl.String row.level.Adversary.name);
      ("n", Jsonl.Int row.result.Experiment.config.Experiment.n);
      ("latency_ms", Jsonl.Float row.result.Experiment.early_latency_ms.Stats.mean);
      ("throughput", Jsonl.Float row.result.Experiment.throughput);
      ("degradation", Jsonl.String (Monitor.degradation_name row.classification));
      ("violations", Jsonl.Int (List.length row.violations));
      ("adv_dropped", Jsonl.Int row.adv.Network.adv_dropped);
      ("adv_corrupted", Jsonl.Int row.adv.Network.adv_corrupted);
      ("adv_duplicated", Jsonl.Int row.adv.Network.adv_duplicated);
      ("adv_reordered", Jsonl.Int row.adv.Network.adv_reordered);
      ("adv_equivocated", Jsonl.Int row.adv.Network.adv_equivocated);
      ("tampered_detected", Jsonl.Int row.tampered_detected);
      ("tampered_silent", Jsonl.Int row.tampered_silent);
    ]
  in
  let tail =
    match row.violations with
    | [] -> []
    | v :: _ ->
      [
        ("invariant", Jsonl.String (Monitor.invariant_name v.Monitor.invariant));
        ("detail", Jsonl.String v.Monitor.detail);
      ]
  in
  Jsonl.Obj (base @ tail)

let pp_adversary_row ppf row =
  Fmt.pf ppf
    "%-10s %-6s n=%d | lat %7.3f ms | tput %7.1f/s | drop %4d corr %3d dup %4d \
     reord %4d equiv %3d | caught %d/%d | %s"
    (Experiment.kind_name row.kind) row.level.Adversary.name
    row.result.Experiment.config.Experiment.n
    row.result.Experiment.early_latency_ms.Stats.mean
    row.result.Experiment.throughput row.adv.Network.adv_dropped
    row.adv.Network.adv_corrupted row.adv.Network.adv_duplicated
    row.adv.Network.adv_reordered row.adv.Network.adv_equivocated
    row.tampered_detected
    (row.tampered_detected + row.tampered_silent)
    (Monitor.degradation_name row.classification)
