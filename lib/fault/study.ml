open Repro_sim
open Repro_core
open Repro_workload
module Obs = Repro_obs.Obs
module Jsonl = Repro_obs.Jsonl

type row = {
  kind : Replica.kind;
  scenario : string;
  result : Experiment.result;
}

let span_of_s s = Time.span_ns (int_of_float (s *. 1e9))

let scenarios ~warmup_s ~n =
  let at s = span_of_s (warmup_s +. s) in
  let maj = (n / 2) + 1 in
  let majority_block = List.init maj (fun i -> i) in
  let minority_block = List.init (n - maj) (fun i -> maj + i) in
  [
    ("none", []);
    ("crash-coord", [ { Schedule.at = at 1.0; action = Schedule.Crash 0 } ]);
    ( "loss-2pct",
      [
        { Schedule.at = at 1.0; action = Schedule.Loss_rate 0.02 };
        { Schedule.at = at 3.0; action = Schedule.Loss_rate 0.0 };
      ] );
    ( "partition-heal",
      [
        {
          Schedule.at = at 1.0;
          action = Schedule.Partition [ majority_block; minority_block ];
        };
        { Schedule.at = at 2.0; action = Schedule.Heal_all };
      ] );
  ]

let run ?(kinds = [ Replica.Modular; Replica.Monolithic ]) ?(offered_load = 1000.0)
    ?(size = 1024) ?(warmup_s = 1.0) ?(measure_s = 4.0) ?(obs = Obs.noop)
    ?(on_row = fun _ -> ()) ?jobs ~n () =
  (* One task per (stack, scenario) cell. The study gauges go on the
     task-private sink; [Parmap] absorbs sinks in cell order, so the
     shared [obs] ends up exactly as the sequential nested loop left it.
     [on_row] likewise fires in cell order from the collector. *)
  let cells =
    List.concat_map
      (fun kind -> List.map (fun sc -> (kind, sc)) (scenarios ~warmup_s ~n))
      kinds
  in
  Parmap.map ?jobs ~obs
    ~collect:(fun _ row -> on_row row)
    (fun ~obs (kind, (scenario, schedule)) ->
      let transport =
        if Schedule.drops_messages schedule then Params.Lossy 0.0
        else Params.Tcp_like
      in
      let params = { (Params.default ~n) with Params.transport = transport } in
      let config =
        Experiment.config ~kind ~n ~offered_load ~size ~warmup_s ~measure_s
          ~params
          ~fd_mode:(`Heartbeat Repro_fd.Heartbeat_fd.default_config)
          ()
      in
      let result =
        Experiment.run ~obs
          ~on_group:(fun g -> ignore (Nemesis.install g schedule))
          config
      in
      let row = { kind; scenario; result } in
      if Obs.enabled obs then begin
        let prefix =
          Printf.sprintf "study.%s.%s" (Experiment.kind_name kind) scenario
        in
        Obs.set_gauge obs (prefix ^ ".latency_ms")
          result.Experiment.early_latency_ms.Stats.mean;
        Obs.set_gauge obs (prefix ^ ".throughput") result.Experiment.throughput
      end;
      row)
    cells

let baseline rows kind =
  List.find_opt (fun r -> r.kind = kind && r.scenario = "none") rows

let degradation rows row =
  if row.scenario = "none" then None
  else
    match baseline rows row.kind with
    | None -> None
    | Some b ->
      Some
        ( row.result.Experiment.early_latency_ms.Stats.mean
          /. b.result.Experiment.early_latency_ms.Stats.mean,
          row.result.Experiment.throughput /. b.result.Experiment.throughput )

let row_json row =
  Jsonl.Obj
    [
      ("type", Jsonl.String "study");
      ("stack", Jsonl.String (Experiment.kind_name row.kind));
      ("scenario", Jsonl.String row.scenario);
      ("n", Jsonl.Int row.result.Experiment.config.Experiment.n);
      ("latency_ms", Jsonl.Float row.result.Experiment.early_latency_ms.Stats.mean);
      ("ci95_ms", Jsonl.Float row.result.Experiment.early_latency_ms.Stats.ci95);
      ("throughput", Jsonl.Float row.result.Experiment.throughput);
      ("cpu", Jsonl.Float row.result.Experiment.cpu_utilization);
    ]

let pp_row ppf row =
  Fmt.pf ppf "%-10s %-14s n=%d | lat %7.3f ±%5.3f ms | tput %7.1f/s | CPU %3.0f%%"
    (Experiment.kind_name row.kind) row.scenario
    row.result.Experiment.config.Experiment.n
    row.result.Experiment.early_latency_ms.Stats.mean
    row.result.Experiment.early_latency_ms.Stats.ci95
    row.result.Experiment.throughput
    (100.0 *. row.result.Experiment.cpu_utilization)
