open Repro_core

(** Executes a {!Schedule} against a live group.

    Installing a schedule registers one engine event per step, at the
    step's timestamp relative to the installation instant; each event
    applies its fault through the network's injection primitives
    ({!Repro_net.Network.crash_after_sends}, [cut], [heal], [partition],
    [heal_all], [set_loss_rate], [set_extra_delay], and the
    message-adversary knobs [set_adv_drop_budget], [set_corrupt_rate],
    [set_duplicate_rate], [set_reorder_window], [set_equivocate_rate]) or
    through {!Group.crash} (so a crashed replica also stops heartbeating
    and discards queued offers).

    The nemesis never consumes randomness and the engine executes its
    events deterministically, so a (seed, schedule) pair reproduces a run
    bit-for-bit — the property the campaign shrinker relies on. *)

type t

val install : ?obs:Repro_obs.Obs.t -> Group.t -> Schedule.t -> (t, string) result
(** Validate the plan against the group ({!Schedule.validate} with the
    group's [n]) and, on success, schedule every step. A bad plan is an
    [Error] before any event is registered — nothing is half-installed.
    Plans containing adversary actions ({!Schedule.uses_adversary}) arm
    the message adversary ({!Adversary.arm}) as part of installation.
    [obs] (default: the group would normally share its sink) records one
    [`Net]-layer [fault] trace event per applied action. *)

val install_exn : ?obs:Repro_obs.Obs.t -> Group.t -> Schedule.t -> t
(** {!install}, raising [Invalid_argument] on a bad plan — for callers
    that validated already (the campaign runner). *)

val applied : t -> Schedule.step list
(** Steps applied so far, oldest first (for assertions and reporting). *)
