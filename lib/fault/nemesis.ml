open Repro_sim
open Repro_core
module Obs = Repro_obs.Obs

type t = { mutable rev_applied : Schedule.step list }

let apply ~obs group (step : Schedule.step) =
  let net = Group.network group in
  (match step.Schedule.action with
  | Schedule.Crash p -> Group.crash group p
  | Schedule.Crash_after_sends (p, k) -> Repro_net.Network.crash_after_sends net p k
  | Schedule.Cut (src, dst) -> Repro_net.Network.cut net ~src ~dst
  | Schedule.Heal (src, dst) -> Repro_net.Network.heal net ~src ~dst
  | Schedule.Partition blocks -> Repro_net.Network.partition net blocks
  | Schedule.Heal_all -> Repro_net.Network.heal_all net
  | Schedule.Loss_rate p -> Repro_net.Network.set_loss_rate net p
  | Schedule.Delay_spike d -> Repro_net.Network.set_extra_delay net d
  | Schedule.Adv_drop_budget d -> Repro_net.Network.set_adv_drop_budget net d
  | Schedule.Corrupt_rate p -> Repro_net.Network.set_corrupt_rate net p
  | Schedule.Duplicate_rate p -> Repro_net.Network.set_duplicate_rate net p
  | Schedule.Reorder_window w -> Repro_net.Network.set_reorder_window net w
  | Schedule.Equivocate_rate p -> Repro_net.Network.set_equivocate_rate net p);
  if Obs.tracing obs then
    Obs.event obs ~pid:0 ~layer:`Net ~phase:"fault"
      ~detail:(Schedule.action_to_string step.Schedule.action) ()

let install ?(obs = Obs.noop) group schedule =
  (* Validate against the live group before registering anything, so a bad
     plan is a clean [Error] up front instead of an exception mid-run. *)
  match Schedule.validate ~n:(Group.params group).Params.n schedule with
  | Error _ as e -> e
  | Ok schedule ->
    (* Plans touching adversary knobs need the adversary armed; arming is
       draw-free and idempotent, so doing it unconditionally for such
       plans cannot perturb the run. *)
    if Schedule.uses_adversary schedule then Adversary.arm group;
    let t = { rev_applied = [] } in
    let engine = Group.engine group in
    let base = Engine.now engine in
    List.iter
      (fun (step : Schedule.step) ->
        ignore
          (Engine.schedule_at engine (Time.add base step.Schedule.at) (fun () ->
               apply ~obs group step;
               t.rev_applied <- step :: t.rev_applied)))
      schedule;
    Ok t

let install_exn ?obs group schedule =
  match install ?obs group schedule with
  | Ok t -> t
  | Error e -> invalid_arg ("Nemesis.install: " ^ e)

let applied t = List.rev t.rev_applied
