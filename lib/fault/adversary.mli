open Repro_core

(** The message adversary: Wire_msg-specific mutators and arming.

    {!Network.arm_adversary} is generic in the message type, so the
    knowledge of what a corrupted or equivocated {!Wire_msg.t} looks like
    lives here, on the fault side of the layering boundary (protocol
    layers never see this module — see [lint/boundaries.spec]). The
    adversary model follows the message-adversary literature (PAPERS.md:
    Albouy et al.): per-multicast suppression of up to [d] copies,
    in-flight payload corruption, duplication, bounded reordering, and
    channel-level equivocation — different receivers handed conflicting
    payloads for the same logical broadcast.

    {2 Determinism obligations}

    The adversary RNG is derived from the run seed by constant mixing,
    {e not} by splitting the engine's stream — splitting would advance the
    engine stream and perturb every later protocol draw. Arming is
    therefore free: an armed adversary with all knobs at zero produces
    event-for-event the same run as an unarmed network. *)

val corrupt_msg : Msg.t -> Msg.t option
(** Flip one small field (an app-message identity bit, an instance/round/
    timestamp) leaving the message well-formed; [None] for messages with
    nothing worth flipping (heartbeats, empty payload requests). *)

val equivocate_msg : Msg.t -> Msg.t option
(** A well-formed alternate payload for the same logical broadcast: same
    identities, every carried application payload one byte larger (the
    size doubles as the content fingerprint {!Monitor} compares across
    receivers). [None] for messages carrying no application payload. *)

val corrupt_wire : Wire_msg.t -> Wire_msg.t option
(** Wrap a copy in the {!Wire_msg.Tampered} envelope, mutating the inner
    protocol message via {!corrupt_msg} when possible; [None] on an
    already-tampered copy. *)

val equivocate_wire : Wire_msg.t -> Wire_msg.t option
(** {!equivocate_msg} under the wire framing; [None] for channel acks and
    tampered copies. *)

val arm : Group.t -> unit
(** Arm the group's network with the wire mutators and a seed-derived
    adversary RNG (all knobs zero). Idempotent. {!Nemesis.install} calls
    this automatically for plans with adversary actions. *)

(** {2 Strength levels for the study sweep} *)

type level = {
  name : string;  (** ["off"], ["weak"], ["medium"], ["strong"] *)
  drop_budget : int;
  corrupt : float;
  duplicate : float;
  reorder : Repro_sim.Time.span;
  equivocate : float;
}

val levels : n:int -> level list
(** The four standard strengths of the [repro study --adversary] sweep,
    weakest first. Drop budgets are clamped to the [n-2] maximum
    {!Schedule.validate} allows; only ["strong"] equivocates (an attack no
    signature-free stack can fully absorb — the study measures who
    {e detects} it). *)

val schedule_of_level : at:Repro_sim.Time.span -> level -> Schedule.t
(** The five-step plan arming every knob of [level] at instant [at]. *)
