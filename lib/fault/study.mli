open Repro_core
open Repro_workload

(** The modularity-cost-under-faults study (EXPERIMENTS.md S-faults).

    The paper measures the modular/monolithic gap in good runs only (§5.1).
    This study re-measures both stacks while a scripted fault hits the
    measurement window, asking whether modularity costs {e more} when
    things go wrong:

    - [none] — fault-free baseline, but under the same live heartbeat
      failure detector as the faulty runs, so the comparison isolates the
      fault itself rather than detector overhead;
    - [crash-coord] — the round-1 coordinator p1 crashes 1 s into the
      window (the §3.3/§4 worst-case victim);
    - [loss-2pct] — a 2% message-loss window lasting 2 s (runs over the
      {!Params.Lossy} transport so {!Repro_net.Rchannel} retransmits);
    - [partition-heal] — a majority/minority partition held for 1 s, then
      healed.

    Each scenario runs through {!Experiment.run} with the fault installed
    by a {!Nemesis} before warm-up, timed to strike inside the measurement
    window.

    {!run_adversary} is the second half of the study: the same
    performance measurement, but against the {!Adversary}'s strength
    levels instead of the scripted scenarios, with a {!Monitor} attached
    so every row also reports {e how} the stack degraded (live,
    safe-stall, or safety violation) — the robustness-vs-performance
    table of EXPERIMENTS.md. *)

type row = {
  kind : Replica.kind;
  scenario : string;
  result : Experiment.result;
}

val scenarios : warmup_s:float -> n:int -> (string * Schedule.t) list
(** The four scenarios above, with timestamps placed [1 s] past the end of
    the warm-up. *)

val run :
  ?kinds:Replica.kind list ->
  ?offered_load:float ->
  ?size:int ->
  ?warmup_s:float ->
  ?measure_s:float ->
  ?obs:Repro_obs.Obs.t ->
  ?on_row:(row -> unit) ->
  ?jobs:int ->
  n:int ->
  unit ->
  row list
(** Run every scenario for every stack in [kinds] (default modular and
    monolithic). Defaults: 1000 msgs/s offered load, 1 KiB messages, 1 s
    warm-up, 4 s measurement. When [obs] is enabled, each row additionally
    sets the gauges [study.<stack>.<scenario>.latency_ms] and
    [study.<stack>.<scenario>.throughput] — the degradation metrics the
    JSONL export carries. [on_row] observes rows as they complete.

    [jobs] (default 1) runs the independent (stack, scenario) cells on a
    {!Parmap} pool; row order, [on_row] order and the final state of [obs]
    are byte-identical to the sequential schedule. *)

val baseline : row list -> Replica.kind -> row option
(** The same-stack [none] row, if present. *)

val degradation : row list -> row -> (float * float) option
(** [(latency_ratio, throughput_ratio)] of a row against its same-stack
    baseline ([latency / baseline latency], [throughput / baseline
    throughput]); [None] for the baseline itself or when no baseline row
    exists. *)

val row_json : row -> Repro_obs.Jsonl.json
(** One Obs-JSONL object: [{"type":"study","stack":…,"scenario":…,"n":…,
    "latency_ms":…,"ci95_ms":…,"throughput":…,"cpu":…}]. *)

val pp_row : row Fmt.t

(** {2 The message-adversary sweep} *)

type adversary_row = {
  kind : Replica.kind;
  level : Adversary.level;
  result : Experiment.result;
  classification : Monitor.degradation;
      (** How the run degraded, judged {e after} the settle phase. *)
  violations : Monitor.violation list;
  adv : Repro_net.Network.adversary_stats;
      (** What the adversary actually did during the run. *)
  tampered_detected : int;  (** Tampered copies caught by checksums. *)
  tampered_silent : int;  (** Tampered copies processed as genuine. *)
}

val run_adversary :
  ?kinds:Replica.kind list ->
  ?offered_load:float ->
  ?size:int ->
  ?warmup_s:float ->
  ?measure_s:float ->
  ?settle_s:float ->
  ?seed:int ->
  ?obs:Repro_obs.Obs.t ->
  ?on_row:(adversary_row -> unit) ->
  ?jobs:int ->
  n:int ->
  unit ->
  adversary_row list
(** Run every {!Adversary.levels} strength for every stack in [kinds]
    (default all three). Each cell arms every knob at the start of the
    measurement window, disarms at its end, then lets the group settle
    [settle_s] (default 5) virtual seconds before the final
    agreement/liveness checks — so [classification] answers whether
    everything admitted under the adversary was eventually delivered
    once it stopped.

    Every cell runs on the native [Tcp_like] transport: the fan-out
    powers (per-broadcast drop budget, equivocation) act on wire-level
    multicasts, which the per-link rchannels of the [Lossy] transport
    would bypass, and the [off] level is then exactly the plain
    benchmark baseline. Defaults otherwise match {!run}; rows are
    deterministic in (seed, level) and byte-identical whatever [jobs].
    When [obs] is enabled each row sets the
    [study.adv.<stack>.<level>.latency_ms] and [.throughput] gauges. *)

val adversary_baseline : adversary_row list -> Replica.kind -> adversary_row option
(** The same-stack [off] row, if present. *)

val adversary_degradation :
  adversary_row list -> adversary_row -> (float * float) option
(** [(latency_ratio, throughput_ratio)] against the same-stack [off]
    baseline; [None] for the baseline itself or when no baseline row
    exists. *)

val adversary_row_json : adversary_row -> Repro_obs.Jsonl.json
(** One Obs-JSONL object: [{"type":"study-adversary","stack":…,
    "level":…,"n":…,"latency_ms":…,"throughput":…,"degradation":…,
    "violations":…,"adv_dropped":…,…,"tampered_detected":…,
    "tampered_silent":…}], plus ["invariant"] (the first violation's)
    on degraded rows. *)

val pp_adversary_row : adversary_row Fmt.t
