open Repro_core
open Repro_workload

(** The modularity-cost-under-faults study (EXPERIMENTS.md S-faults).

    The paper measures the modular/monolithic gap in good runs only (§5.1).
    This study re-measures both stacks while a scripted fault hits the
    measurement window, asking whether modularity costs {e more} when
    things go wrong:

    - [none] — fault-free baseline, but under the same live heartbeat
      failure detector as the faulty runs, so the comparison isolates the
      fault itself rather than detector overhead;
    - [crash-coord] — the round-1 coordinator p1 crashes 1 s into the
      window (the §3.3/§4 worst-case victim);
    - [loss-2pct] — a 2% message-loss window lasting 2 s (runs over the
      {!Params.Lossy} transport so {!Repro_net.Rchannel} retransmits);
    - [partition-heal] — a majority/minority partition held for 1 s, then
      healed.

    Each scenario runs through {!Experiment.run} with the fault installed
    by a {!Nemesis} before warm-up, timed to strike inside the measurement
    window. *)

type row = {
  kind : Replica.kind;
  scenario : string;
  result : Experiment.result;
}

val scenarios : warmup_s:float -> n:int -> (string * Schedule.t) list
(** The four scenarios above, with timestamps placed [1 s] past the end of
    the warm-up. *)

val run :
  ?kinds:Replica.kind list ->
  ?offered_load:float ->
  ?size:int ->
  ?warmup_s:float ->
  ?measure_s:float ->
  ?obs:Repro_obs.Obs.t ->
  ?on_row:(row -> unit) ->
  ?jobs:int ->
  n:int ->
  unit ->
  row list
(** Run every scenario for every stack in [kinds] (default modular and
    monolithic). Defaults: 1000 msgs/s offered load, 1 KiB messages, 1 s
    warm-up, 4 s measurement. When [obs] is enabled, each row additionally
    sets the gauges [study.<stack>.<scenario>.latency_ms] and
    [study.<stack>.<scenario>.throughput] — the degradation metrics the
    JSONL export carries. [on_row] observes rows as they complete.

    [jobs] (default 1) runs the independent (stack, scenario) cells on a
    {!Parmap} pool; row order, [on_row] order and the final state of [obs]
    are byte-identical to the sequential schedule. *)

val baseline : row list -> Replica.kind -> row option
(** The same-stack [none] row, if present. *)

val degradation : row list -> row -> (float * float) option
(** [(latency_ratio, throughput_ratio)] of a row against its same-stack
    baseline ([latency / baseline latency], [throughput / baseline
    throughput]); [None] for the baseline itself or when no baseline row
    exists. *)

val row_json : row -> Repro_obs.Jsonl.json
(** One Obs-JSONL object: [{"type":"study","stack":…,"scenario":…,"n":…,
    "latency_ms":…,"ci95_ms":…,"throughput":…,"cpu":…}]. *)

val pp_row : row Fmt.t
