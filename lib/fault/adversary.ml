open Repro_sim
open Repro_net
open Repro_core

(* ---- Payload mutators ----
   The network is generic in its message type, so the Wire_msg-specific
   knowledge of what a "corrupted" or "equivocated" copy looks like lives
   here, on the fault side of the boundary. *)

(* Corruption: flip one small field — the identity bit of an application
   message, the instance/round/timestamp of a protocol message — modelling
   a bit flip that leaves the framing parseable. With checksums off these
   mutants are processed as genuine, which is exactly what the monitor's
   integrity/agreement invariants exist to catch. *)

let flip_app (m : App_msg.t) =
  { m with App_msg.id = { m.App_msg.id with App_msg.seq = m.App_msg.id.App_msg.seq lxor 1 } }

let flip_id (id : App_msg.id) = { id with App_msg.seq = id.App_msg.seq lxor 1 }

let corrupt_msg (msg : Msg.t) : Msg.t option =
  match msg with
  | Msg.Heartbeat -> None
  | Msg.Diffuse m -> Some (Msg.Diffuse (flip_app m))
  | Msg.Estimate { inst; round; value; ts } ->
    Some (Msg.Estimate { inst; round; value; ts = ts lxor 1 })
  | Msg.Propose { inst; round; value } ->
    Some (Msg.Propose { inst = inst lxor 1; round; value })
  | Msg.Ack { inst; round } -> Some (Msg.Ack { inst; round = round + 1 })
  | Msg.Nack { inst; round } -> Some (Msg.Nack { inst; round = round + 1 })
  | Msg.Decision_tag { meta; inst; round; value } ->
    Some (Msg.Decision_tag { meta; inst = inst lxor 1; round; value })
  | Msg.New_round { inst; round } -> Some (Msg.New_round { inst; round = round + 1 })
  | Msg.Prop_dec { inst; round; proposal; decided } ->
    Some (Msg.Prop_dec { inst = inst lxor 1; round; proposal; decided })
  | Msg.Ack_diff { inst; round; piggyback } ->
    Some (Msg.Ack_diff { inst; round = round + 1; piggyback })
  | Msg.Mono_estimate { inst; round; value; ts; piggyback } ->
    Some (Msg.Mono_estimate { inst; round; value; ts = ts lxor 1; piggyback })
  | Msg.Mono_decision_tag { inst; round } ->
    Some (Msg.Mono_decision_tag { inst = inst lxor 1; round })
  | Msg.To_coord m -> Some (Msg.To_coord (flip_app m))
  | Msg.Payload_request { ids } -> (
    match ids with
    | [] -> None
    | id :: rest -> Some (Msg.Payload_request { ids = flip_id id :: rest }))
  | Msg.Payload_push m -> Some (Msg.Payload_push (flip_app m))
  | Msg.Decision_request { inst } -> Some (Msg.Decision_request { inst = inst lxor 1 })
  | Msg.Decision_full { inst; value } ->
    Some (Msg.Decision_full { inst = inst lxor 1; value })

(* Equivocation: a {e well-formed} alternate payload for the same logical
   broadcast — same identities, every carried payload one byte larger.
   The size doubles as the content fingerprint the monitor compares across
   receivers, so two processes adelivering the "same" message with
   different sizes is the smoking gun. Messages carrying no application
   payload are not worth lying about ([None]). *)

let bump_app (m : App_msg.t) = { m with App_msg.size = m.App_msg.size + 1 }
let bump_batch b = Batch.of_list (List.map bump_app (Batch.to_list b))

let equivocate_msg (msg : Msg.t) : Msg.t option =
  match msg with
  | Msg.Diffuse m -> Some (Msg.Diffuse (bump_app m))
  | Msg.Estimate { inst; round; value; ts } ->
    Some (Msg.Estimate { inst; round; value = bump_batch value; ts })
  | Msg.Propose { inst; round; value } ->
    Some (Msg.Propose { inst; round; value = bump_batch value })
  | Msg.Decision_tag { meta; inst; round; value = Some b } ->
    Some (Msg.Decision_tag { meta; inst; round; value = Some (bump_batch b) })
  | Msg.Prop_dec { inst; round; proposal; decided } ->
    Some (Msg.Prop_dec { inst; round; proposal = bump_batch proposal; decided })
  | Msg.Mono_estimate { inst; round; value; ts; piggyback } ->
    Some
      (Msg.Mono_estimate
         { inst; round; value = bump_batch value; ts; piggyback = List.map bump_app piggyback })
  | Msg.Ack_diff { inst; round; piggyback } when piggyback <> [] ->
    Some (Msg.Ack_diff { inst; round; piggyback = List.map bump_app piggyback })
  | Msg.To_coord m -> Some (Msg.To_coord (bump_app m))
  | Msg.Payload_push m -> Some (Msg.Payload_push (bump_app m))
  | Msg.Decision_full { inst; value } ->
    Some (Msg.Decision_full { inst; value = bump_batch value })
  | Msg.Heartbeat | Msg.Ack _ | Msg.Nack _ | Msg.New_round _
  | Msg.Decision_tag { value = None; _ }
  | Msg.Ack_diff _ | Msg.Mono_decision_tag _ | Msg.Payload_request _
  | Msg.Decision_request _ ->
    None

let corrupt_wire (w : Wire_msg.t) : Wire_msg.t option =
  match w with
  | Wire_msg.Tampered _ -> None
  | Wire_msg.Plain msg ->
    let inner = match corrupt_msg msg with Some m -> m | None -> msg in
    Some (Wire_msg.Tampered (Wire_msg.Plain inner))
  | Wire_msg.Frame (Rchannel.Data { seq; payload }) ->
    let payload = match corrupt_msg payload with Some m -> m | None -> payload in
    Some (Wire_msg.Tampered (Wire_msg.Frame (Rchannel.Data { seq; payload })))
  | Wire_msg.Frame (Rchannel.Ack _) -> Some (Wire_msg.Tampered w)

let equivocate_wire (w : Wire_msg.t) : Wire_msg.t option =
  match w with
  | Wire_msg.Plain msg -> Option.map (fun m -> Wire_msg.Plain m) (equivocate_msg msg)
  | Wire_msg.Frame (Rchannel.Data { seq; payload }) ->
    Option.map
      (fun p -> Wire_msg.Frame (Rchannel.Data { seq; payload = p }))
      (equivocate_msg payload)
  | Wire_msg.Frame (Rchannel.Ack _) | Wire_msg.Tampered _ -> None

(* ---- Arming ---- *)

(* The adversary's RNG stream is owned by [Network]: it derives a
   dedicated stream from the run seed ([Rng.derive] under its own salt),
   independent of the engine's stream by construction, so arming an idle
   adversary changes nothing. This module only forwards the seed and the
   message-type-specific mutators. *)
let arm group =
  let net = Group.network group in
  if not (Network.adversary_armed net) then begin
    let params = Group.params group in
    Network.arm_adversary net ~seed:params.Params.seed ~corrupt:corrupt_wire
      ~equivocate:equivocate_wire
  end

(* ---- Strength levels for the study sweep ---- *)

type level = {
  name : string;
  drop_budget : int;
  corrupt : float;
  duplicate : float;
  reorder : Repro_sim.Time.span;
  equivocate : float;
}

let levels ~n =
  let budget k = min k (max 0 (n - 2)) in
  [
    {
      name = "off";
      drop_budget = 0;
      corrupt = 0.0;
      duplicate = 0.0;
      reorder = Time.span_zero;
      equivocate = 0.0;
    };
    {
      name = "weak";
      drop_budget = budget 1;
      corrupt = 0.001;
      duplicate = 0.005;
      reorder = Time.span_us 200;
      equivocate = 0.0;
    };
    {
      name = "medium";
      drop_budget = budget 1;
      corrupt = 0.005;
      duplicate = 0.02;
      reorder = Time.span_ms 1;
      equivocate = 0.0;
    };
    {
      name = "strong";
      drop_budget = budget 2;
      corrupt = 0.02;
      duplicate = 0.05;
      reorder = Time.span_ms 2;
      equivocate = 0.02;
    };
  ]

let schedule_of_level ~at level =
  [
    { Schedule.at; action = Schedule.Adv_drop_budget level.drop_budget };
    { Schedule.at; action = Schedule.Corrupt_rate level.corrupt };
    { Schedule.at; action = Schedule.Duplicate_rate level.duplicate };
    { Schedule.at; action = Schedule.Reorder_window level.reorder };
    { Schedule.at; action = Schedule.Equivocate_rate level.equivocate };
  ]
