(* RNG-stream discipline: every subsystem draws only from its own named
   stream. The repo's reproducibility story (DESIGN §3) rests on two
   invariants: adding a consumer never shifts another component's draw
   sequence, and a stream's provenance is auditable — you can point at
   the one [split]/[derive] that created it. Three idioms erode that:

   1. {b Raw seed arithmetic}: [Rng.create ~seed:(seed lxor 0xbeef)] at
      a use site invents an unregistered stream whose independence from
      every other such site is a convention nobody checks. The
      sanctioned form is [Rng.derive ~seed ~salt], which keeps the
      mixing inside [lib/sim/rng.ml]. The rule flags any [Rng.create]
      whose [~seed] argument contains arithmetic/bitwise operators,
      anywhere outside [sim.Rng] itself.

   2. {b Drawing from another module's stream}: [Rng.int (Engine.rng e)
      6] makes this module's draws interleave with the owner's — adding
      a draw in either shifts the other. The rule flags draw calls
      ([Rng.int]/[float]/[bool]/[bits64]/[exponential]/[pick]/
      [shuffle_in_place]) whose stream argument comes straight from a
      cross-unit call or a cross-unit record field. Obtaining a stream
      via [Rng.split]/[Rng.derive] is the sanctioned alternative and is
      never flagged (the callee unit is [sim.Rng]).

   3. {b Handing a stream across a module boundary}: passing an [Rng.t]
      argument to another unit's function shares the stream by
      construction — both sides now draw from one sequence. Flagged at
      the application site; the receiving module should own a stream
      ([split] off its parent at creation, or [derive] from the seed)
      instead of borrowing its caller's.

   Soundness envelope: "another module's stream" is judged from the
   visible head of the stream expression, so a stream laundered through
   a local [let] is not tracked (one-step analysis); cross-unit
   ownership is per compilation unit, so a unit freely shares streams
   between its own nested modules; only calls whose callee path is a
   global identifier into a repo unit are boundary-checked, so passing a
   stream to a local helper that forwards it is invisible. [sim.Rng]
   itself is exempt from all three checks — it is where the arithmetic
   and the stream plumbing are supposed to live. *)

open Typedtree

let rule = "rng-stream"

let rng_unit u = Boundaries.unit_name u = "sim.Rng"

let draws =
  [ "int"; "float"; "bool"; "bits64"; "exponential"; "pick"; "shuffle_in_place" ]

let arith_ops =
  [ "+"; "-"; "*"; "/"; "mod"; "abs"; "lxor"; "lor"; "land"; "lsl"; "lsr"; "asr" ]

let head_ident (e : expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* Does the expression tree apply an arithmetic/bitwise operator? *)
let contains_arith (e : expression) =
  let found = ref false in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_apply (f, _) -> (
      match head_ident f with
      | Some p when List.mem (Rules.norm_path p) arith_ops -> found := true
      | _ -> ())
    | _ -> ());
    if not !found then default.expr sub e
  in
  let it = { default with expr } in
  it.expr it e;
  !found

let rec type_contains_rng depth (ty : Types.type_expr) =
  depth > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
    (Path.last p = "t"
    && match Boundaries.unit_of_path p with
       | Some u -> rng_unit u
       | None -> false)
    || List.exists (type_contains_rng (depth - 1)) args
  | Types.Ttuple l -> List.exists (type_contains_rng (depth - 1)) l
  | Types.Tarrow (_, a, b, _) ->
    type_contains_rng (depth - 1) a || type_contains_rng (depth - 1) b
  | Types.Tlink ty | Types.Tsubst (ty, _) -> type_contains_rng depth ty
  | _ -> false

let type_contains_rng ty = type_contains_rng 12 ty

let same_unit unit u =
  match unit with
  | Some unit -> Boundaries.unit_name unit = Boundaries.unit_name u
  | None -> false

(* The foreign unit owning the stream expression [e], if its visible
   head is a cross-unit call or a field of a cross-unit record type. *)
let foreign_stream_owner ~unit (e : expression) =
  let owner_of_path p =
    match Boundaries.unit_of_path p with
    | Some u when (not (rng_unit u)) && not (same_unit unit u) -> Some u
    | _ -> None
  in
  match e.exp_desc with
  | Texp_apply (f, _) -> Option.bind (head_ident f) owner_of_path
  | Texp_ident (p, _, _) when Ident.global (Path.head p) -> owner_of_path p
  | Texp_field (_, _, ld) -> (
    match Types.get_desc ld.Types.lbl_res with
    | Types.Tconstr (p, _, _) -> owner_of_path p
    | _ -> None)
  | _ -> None

let first_positional args =
  List.find_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let check ?unit ~file (str : structure) : Violation.t list =
  if (match unit with Some u -> rng_unit u | None -> false) then []
  else begin
    let out = ref [] in
    let flag loc msg = out := Violation.make ~rule ~file ~loc msg :: !out in
    let default = Tast_iterator.default_iterator in
    let expr sub (e : expression) =
      (match e.exp_desc with
      | Texp_apply (f, args) -> (
        match head_ident f with
        | Some p -> (
          match Boundaries.unit_of_path p with
          | Some u when rng_unit u ->
            let fn = Path.last p in
            if fn = "create" then begin
              match
                List.find_map
                  (function
                    | Asttypes.Labelled "seed", Some a -> Some a | _ -> None)
                  args
              with
              | Some seed_expr when contains_arith seed_expr ->
                flag e.exp_loc
                  "raw seed arithmetic at an [Rng.create] site invents an \
                   unregistered stream; use [Rng.derive ~seed ~salt] (or \
                   [Rng.split] off the owner) so the mixing stays inside \
                   sim.Rng"
              | _ -> ()
            end
            else if List.mem fn draws then begin
              match Option.bind (first_positional args) (fun stream ->
                        foreign_stream_owner ~unit stream)
              with
              | Some owner ->
                flag e.exp_loc
                  (Printf.sprintf
                     "draw from a stream owned by %s; interleaved draws \
                      mean adding a consumer on either side shifts the \
                      other's sequence — [Rng.split] (or [Rng.derive]) a \
                      stream this module owns instead"
                     (Boundaries.unit_name owner))
              | None -> ()
            end
          | Some u when not (same_unit unit u) ->
            (* Cross-unit call: does any argument hand over a stream? *)
            List.iter
              (fun (_, arg) ->
                match arg with
                | Some (a : expression) when type_contains_rng a.exp_type ->
                  flag a.exp_loc
                    (Printf.sprintf
                       "an [Rng.t] stream is handed across the module \
                        boundary to %s; both sides would draw from one \
                        sequence — pass the seed (or let the receiver \
                        [split]/[derive] its own stream) instead"
                       (Boundaries.unit_name u))
                | _ -> ())
              args
          | _ -> ())
        | None -> ())
      | _ -> ());
      default.expr sub e
    in
    let it = { default with expr } in
    it.structure it str;
    List.sort Violation.order !out
  end
