(* Snapshot-completeness: every module exposing a [snapshot]/[restore]
   pair must capture all of the mutable state reachable from its state
   type, or replay from a frame silently diverges ([repro replay
   --verify] catches it dynamically — if a test happens to exercise the
   forgotten field; this rule catches it at lint time).

   For each structure (the compilation unit, or a nested module) that
   binds both [snapshot] and [restore] at its toplevel and declares a
   type [t], the rule

   1. collects the *obligations*: walking the declarations reachable
      from [t] through locally-declared records, variants and visible
      containers (option/list/array/tuple), every record label that is
      declared [mutable], or whose type visibly contains an accumulating
      mutable container ([ref], [Hashtbl.t], [Queue.t], [Stack.t],
      [Buffer.t], [Atomic.t]);
   2. collects the *coverage*: the record labels read ([Texp_field], a
      record pattern, or the [Kept] labels of a [{ base with ... }]
      copy) by the [snapshot] binding — and by the [sections] binding
      when one exists, the aggregator idiom of [core.Replica] /
      [core.Group] where [snapshot] builds the module's own section and
      [sections] mounts the sub-components' — transitively through
      every same-structure toplevel helper either references (so a
      [frame_at]-style accessor counts);
   3. flags each obligation outside the coverage, at the label's
      declaration site.

   Sanctioned runtime-topology exemptions — state the PR-8 snapshot
   design intentionally re-seats via the [Marshal] world blob rather
   than the introspectable codec — are cut out of the walk:

   - any label whose type visibly contains a function arrow (callbacks,
     handler slots, subscriber lists: closures cannot round-trip the
     codec at all);
   - labels of a type in [topology_types] (an [Engine.timer] names a
     live cell in the engine's queue — the world blob re-seats it);
   - the unit-qualified labels in [topology_fields] (the calendar
     queue's bucket structure holds the pending-event closures; its
     [restore] count-checks [pending] instead).

   Soundness envelope (what this rule cannot prove): named types from
   other units stay opaque (a module hiding mutable state behind an
   abstract type from elsewhere is that unit's obligation, checked when
   *its* pair is linted); an immutable label holding a bare [array] or
   [Bytes.t] is treated as a constant table (the same deliberate
   under-approximation as the [toplevel-state] rule) unless the label is
   itself mutable; coverage is read-based, so a snapshot that reads a
   field and then drops it on the floor still counts as covering it. *)

open Typedtree

let rule = "snapshot-completeness"

let accumulators =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "Atomic.t" ]

(* (unit, type) pairs that name runtime topology wherever they appear. *)
let topology_types = [ ("sim.Engine", "timer") ]

(* (unit, type, label) triples assigned to the world blob by design. *)
let topology_fields =
  [
    (* Pending events are closures; [Event_queue.restore] count-checks
       [pending] against the blob-restored queue instead. *)
    ("sim.Event_queue", "t", "slots");
    (* The ablation-only decision channel is wired once at stack
       construction and holds handler closures; its source documents
       that it rides the world blob with the timers. *)
    ("core.Abcast_monolithic", "t", "decision_rb");
    (* Interned counter-name memo: contents are a pure function of the
       kind strings, repopulated on demand; it rides the world blob and
       capturing it in the codec would be dead weight. *)
    ("net.Network", "t", "kind_ctrs");
    (* Batched-hop wire state: in-flight frames (payloads included), the
       per-link rings holding them and the busy-link heap ride the world
       blob with the pending-event closures they replace; [restore]
       count-checks [frames_in_flight] the same way [Event_queue.restore]
       count-checks [pending]. [link.l_len] is deliberately absent here —
       it is the one field the codec does read, through
       [frames_in_flight]. *)
    ("net.Network", "frame", "f_at");
    ("net.Network", "frame", "f_seq");
    ("net.Network", "frame", "f_sid");
    ("net.Network", "frame", "f_msg");
    ("net.Network", "link", "l_ring");
    ("net.Network", "link", "l_head");
    ("net.Network", "link", "l_pos");
    ("net.Network", "t", "h_links");
    ("net.Network", "t", "h_len");
    (* Cached copy of the head frame's (arrival, ticket) key, maintained
       so heap sifts compare plain ints instead of chasing the ring;
       derived from [l_ring]/[l_head] above and rebuilt with them. *)
    ("net.Network", "link", "l_key_ns");
    ("net.Network", "link", "l_key_seq");
    (* The engine's cosource slots are runtime wiring, not state:
       [cs_fire] is a closure attached once by [Network.create] when the
       world is (re)built (exactly like the handler slots the arrow rule
       already exempts — [cs_attached] just records that it happened),
       and [cs_ns]/[cs_seq] mirror the cosource's front key, republished
       by the network whenever its heap root moves. *)
    ("sim.Engine", "t", "cs_ns");
    ("sim.Engine", "t", "cs_seq");
    ("sim.Engine", "t", "cs_attached");
  ]

let unit_name = function Some u -> Boundaries.unit_name u | None -> ""

let rec core_type_exists p (ct : core_type) =
  p ct
  ||
  match ct.ctyp_desc with
  | Ttyp_arrow (_, a, b) -> core_type_exists p a || core_type_exists p b
  | Ttyp_tuple l -> List.exists (core_type_exists p) l
  | Ttyp_constr (_, _, args) -> List.exists (core_type_exists p) args
  | Ttyp_alias (t, _) -> core_type_exists p t
  | Ttyp_poly (_, t) -> core_type_exists p t
  | _ -> false

let contains_arrow =
  core_type_exists (fun ct ->
      match ct.ctyp_desc with Ttyp_arrow _ -> true | _ -> false)

let contains_accumulator =
  core_type_exists (fun ct ->
      match ct.ctyp_desc with
      | Ttyp_constr (p, _, _) -> List.mem (Rules.norm_path p) accumulators
      | _ -> false)

let contains_topology_type ~unit =
  ignore unit;
  core_type_exists (fun ct ->
      match ct.ctyp_desc with
      | Ttyp_constr (p, _, _) -> (
        match Boundaries.unit_of_path p with
        | Some u -> List.mem (Boundaries.unit_name u, Path.last p) topology_types
        | None -> false)
      | _ -> false)

(* Heads of a label type that may name locally-declared types to recurse
   into: every [Ttyp_constr] head whose path is local (non-global head). *)
let local_heads (ct : core_type) =
  let out = ref [] in
  ignore
    (core_type_exists
       (fun ct ->
         (match ct.ctyp_desc with
         | Ttyp_constr (p, _, _) when not (Ident.global (Path.head p)) ->
           out := Path.last p :: !out
         | _ -> ());
         false)
       ct);
  !out

type obligation = { tname : string; label : string; loc : Location.t }

(* One structure's toplevel inventory. *)
type inventory = {
  decls : (string, type_declaration) Hashtbl.t;
  bindings : (string, (string * string) list * string list) Hashtbl.t;
      (* unique name -> labels read, local unique names referenced *)
  named : (string, string) Hashtbl.t; (* binding name -> unique name *)
}

let label_key (ld : Types.label_description) =
  let tname =
    match Types.get_desc ld.Types.lbl_res with
    | Types.Tconstr (p, _, _) -> Path.last p
    | _ -> "?"
  in
  (tname, ld.Types.lbl_name)

(* Labels read and same-structure toplevel values referenced by [e]. *)
let reads_of_expr (e : expression) =
  let labels = ref [] and refs = ref [] in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_field (_, _, ld) -> labels := label_key ld :: !labels
    | Texp_ident (Path.Pident id, _, _) -> refs := Ident.unique_name id :: !refs
    | Texp_record { fields; extended_expression = Some _; _ } ->
      (* [{ base with l = ... }] copies every [Kept] label from [base] —
         the whole-record-copy idiom snapshots rely on. *)
      Array.iter
        (fun (ld, def) ->
          match def with
          | Kept _ -> labels := label_key ld :: !labels
          | Overridden _ -> ())
        fields
    | _ -> ());
    default.expr sub e
  in
  let pat : type k. _ -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_record (fields, _) ->
      List.iter (fun (_, ld, _) -> labels := label_key ld :: !labels) fields
    | _ -> ());
    default.pat sub p
  in
  let it = { default with expr; pat } in
  it.expr it e;
  (!labels, !refs)

let binding_name (vb : value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> Some (Ident.name id, Ident.unique_name id)
  | _ -> None

(* Obligations reachable from the declaration named [root]. *)
let obligations_from ~unit inv root =
  let visited = Hashtbl.create 8 in
  let out = ref [] in
  let rec walk_decl name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match Hashtbl.find_opt inv.decls name with
      | None -> ()
      | Some decl ->
        let tname = Ident.name decl.typ_id in
        let walk_labels lds = List.iter (walk_label tname) lds in
        (match decl.typ_kind with
        | Ttype_record lds -> walk_labels lds
        | Ttype_variant cds ->
          List.iter
            (fun (cd : constructor_declaration) ->
              match cd.cd_args with
              | Cstr_tuple cts -> List.iter walk_type cts
              | Cstr_record lds -> walk_labels lds)
            cds
        | Ttype_abstract | Ttype_open -> ());
        Option.iter walk_type decl.typ_manifest
    end
  and walk_label tname (ld : label_declaration) =
    let label = Ident.name ld.ld_id in
    let exempt =
      contains_arrow ld.ld_type
      || contains_topology_type ~unit ld.ld_type
      || List.mem (unit_name unit, tname, label) topology_fields
    in
    if not exempt then begin
      if ld.ld_mutable = Asttypes.Mutable || contains_accumulator ld.ld_type
      then out := { tname; label; loc = ld.ld_loc } :: !out;
      walk_type ld.ld_type
    end
  and walk_type ct = List.iter walk_decl (local_heads ct) in
  walk_decl root;
  List.rev !out

(* The labels the root bindings read, transitively through
   same-structure toplevel helpers. *)
let coverage_from inv starts =
  let covered = Hashtbl.create 16 in
  let seen = Hashtbl.create 8 in
  let rec visit stamp =
    if not (Hashtbl.mem seen stamp) then begin
      Hashtbl.replace seen stamp ();
      match Hashtbl.find_opt inv.bindings stamp with
      | None -> ()
      | Some (labels, refs) ->
        List.iter (fun k -> Hashtbl.replace covered k ()) labels;
        List.iter visit refs
    end
  in
  List.iter visit starts;
  covered

(* Coverage roots: [snapshot], plus the [sections] aggregator when the
   module has one (the Replica/Group idiom: [snapshot] builds the
   module's own section, [sections] mounts the sub-components'). *)
let coverage_roots inv snap_stamp =
  snap_stamp
  :: (match Hashtbl.find_opt inv.named "sections" with
     | Some s -> [ s ]
     | None -> [])

let inventory_of_items items =
  let inv =
    {
      decls = Hashtbl.create 16;
      bindings = Hashtbl.create 16;
      named = Hashtbl.create 16;
    }
  in
  let submodules = ref [] in
  let rec scan items =
    List.iter
      (fun (item : structure_item) ->
        match item.str_desc with
        | Tstr_type (_, decls) ->
          List.iter
            (fun (d : type_declaration) ->
              let name = Ident.name d.typ_id in
              if not (Hashtbl.mem inv.decls name) then
                Hashtbl.replace inv.decls name d)
            decls
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              match binding_name vb with
              | Some (name, stamp) ->
                Hashtbl.replace inv.bindings stamp (reads_of_expr vb.vb_expr);
                if not (Hashtbl.mem inv.named name) then
                  Hashtbl.replace inv.named name stamp
              | None -> ())
            vbs
        | Tstr_module mb -> scan_module mb.mb_expr
        | Tstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.mb_expr) mbs
        | _ -> ())
      items
  and scan_module (m : module_expr) =
    match m.mod_desc with
    | Tmod_structure s -> submodules := s.str_items :: !submodules
    | Tmod_constraint (me, _, _, _) -> scan_module me
    | _ -> ()
  in
  scan items;
  (inv, List.rev !submodules)

let check_items ~unit ~file items =
  let out = ref [] in
  let rec go items =
    let inv, submodules = inventory_of_items items in
    (* Submodule type declarations are visible to the parent's walk (a
       state type may reference [Inner.t]); merge them in by name after
       the parent's own, which keeps the parent's names winning. *)
    List.iter
      (fun sub_items ->
        let sub_inv, _ = inventory_of_items sub_items in
        Hashtbl.fold (fun name d acc -> (name, d) :: acc) sub_inv.decls []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.iter (fun (name, d) ->
               if not (Hashtbl.mem inv.decls name) then
                 Hashtbl.replace inv.decls name d))
      submodules;
    (match
       ( Hashtbl.find_opt inv.named "snapshot",
         Hashtbl.find_opt inv.named "restore",
         Hashtbl.mem inv.decls "t" )
     with
    | Some snap_stamp, Some _, true ->
      let obligations = obligations_from ~unit inv "t" in
      let covered = coverage_from inv (coverage_roots inv snap_stamp) in
      List.iter
        (fun o ->
          if not (Hashtbl.mem covered (o.tname, o.label)) then
            out :=
              Violation.make ~rule ~file ~loc:o.loc
                (Printf.sprintf
                   "mutable state %s.%s is not read by this module's \
                    [snapshot]; a restored run would silently diverge under \
                    `repro replay --verify` (capture it, or re-seat it via \
                    the world blob and exempt it as runtime topology)"
                   o.tname o.label)
              :: !out)
        obligations
    | _ -> ());
    List.iter go submodules
  in
  go items;
  !out

let check ?unit ~file (str : structure) : Violation.t list =
  List.sort Violation.order (check_items ~unit ~file str.str_items)

(* Exposed for tests: the obligation and coverage sets the toplevel
   structure's pair is checked against (empty when it has no pair). *)
let debug_pairs ?unit (str : structure) =
  let inv, _ = inventory_of_items str.str_items in
  match
    ( Hashtbl.find_opt inv.named "snapshot",
      Hashtbl.find_opt inv.named "restore",
      Hashtbl.mem inv.decls "t" )
  with
  | Some snap_stamp, Some _, true ->
    let obligations = obligations_from ~unit inv "t" in
    let covered = coverage_from inv (coverage_roots inv snap_stamp) in
    ( List.map (fun o -> (o.tname, o.label)) obligations,
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) covered []) )
  | _ -> ([], [])
