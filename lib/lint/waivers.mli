(** The committed waiver file: `<rule> <file> -- <justification>` lines
    silencing acknowledged rule violations. Justifications are mandatory,
    and waivers matching nothing are reported so the file cannot rot. *)

type t = { rule : string; path : string; reason : string; line : int }

val parse : string -> (t list, string) result
val load : string -> (t list, string) result
val covers : t -> Violation.t -> bool

val apply : t list -> Violation.t list -> Violation.t list * Violation.t list * t list
(** [apply waivers vs] is [(active, waived, unused_waivers)]. *)

val pp : Format.formatter -> t -> unit
