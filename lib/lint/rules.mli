(** Determinism lints over one compilation unit's typed AST: stdlib
    [Random.*] and wall-clock reads, hash-order escapes from
    [Hashtbl.iter]/[Hashtbl.fold], physical equality at non-immediate
    types, and polymorphic comparison at types visibly containing
    functions or mutable containers. A [Hashtbl.fold] whose result is
    piped straight into [List.sort*] is recognized as sanctioned. *)

val norm_path : Path.t -> string
(** "Stdlib__Random.int" / "Stdlib.Random.int" -> "Random.int"; project
    paths are left untouched. Exposed for tests. *)

val check_structure : file:string -> Typedtree.structure -> Violation.t list
(** Violations in source-position order. *)
