(** Determinism lints over one compilation unit's typed AST: stdlib
    [Random.*] and wall-clock reads, hash-order escapes from
    [Hashtbl.iter]/[Hashtbl.fold], physical equality at non-immediate
    types, and polymorphic comparison at types visibly containing
    functions or mutable containers. A [Hashtbl.fold] whose result is
    piped straight into [List.sort*] is recognized as sanctioned.

    Plus one isolation rule: [toplevel-state] flags module-toplevel [let]
    bindings that allocate mutable state ([ref], [Hashtbl.create],
    [Buffer.create], [Queue.create], [Stack.create], [Atomic.make]) —
    such state outlives a run and is shared by every task once
    independent runs execute on the [Repro_parallel] domain pool.
    Function-local allocations are never flagged. *)

val norm_path : Path.t -> string
(** "Stdlib__Random.int" / "Stdlib.Random.int" -> "Random.int"; project
    paths are left untouched. Exposed for tests. *)

val state_makers : string list
(** Normalized allocator paths whose result, bound at module toplevel,
    counts as long-lived mutable state ([ref], [Hashtbl.create], ...).
    Shared with {!Capture_rule} so "mutable state" means the same thing
    to the isolation rule and the domain-capture rule. *)

val check_structure : file:string -> Typedtree.structure -> Violation.t list
(** Violations in source-position order. *)
