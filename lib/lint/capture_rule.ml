(* Domain-capture safety: at every [Parallel.Pool.map] /
   [Workload.Parmap] call site, the task closure runs on a worker domain
   while the calling domain keeps executing. A closure that captures
   shared mutable state therefore races — or, just as bad for this
   repo, makes the merged result depend on domain scheduling, breaking
   the byte-identical-across[--jobs] contract (DESIGN §9).

   The sanctioned pattern is the one [Parmap] itself uses: give each
   task a private sink created by [Obs.create_like], return it with the
   task's result, and merge in task order via [Obs.absorb] in the
   calling domain (the labelled [~collect] callback of [Pool.map] also
   runs in the calling domain and is exempt by construction — only the
   first positional argument is the task closure).

   For the task closure (the first [Nolabel] argument, when it is a
   syntactic [fun]), the rule flags free variables — identifiers bound
   outside the closure — that are:

   - module-toplevel mutable bindings ([ref]/[Hashtbl.create]/... at the
     unit's toplevel): shared by every domain, always a race;
   - of a type visibly containing an accumulating container ([ref],
     [Hashtbl.t], [Queue.t], [Stack.t], [Buffer.t], [Atomic.t]):
     captured shared accumulators — even "thread-safe" [Atomic.t]
     accumulation is flagged because merge order would depend on
     scheduling;
   - mutated inside the closure ([<-] on a captured record, [:=] /
     [incr] / [decr], or a known mutator such as [Hashtbl.replace] /
     [Buffer.add_*] / [Array.set] applied to a captured identifier) —
     this is what catches writes through captures whose type the
     container check cannot see (e.g. a captured record with mutable
     fields, or a captured [array]).

   Soundness envelope: a task function that is not a syntactic [fun] at
   the call site (a named toplevel function, a partial application) is
   not analyzed — hoisting the closure out of the call site moves it
   out of the analysis, which is the standard trade for a local
   analysis; captures reached through further calls are likewise
   invisible. Immutable [array]/[Bytes.t] captures are read-only tables
   until written through, so only the in-closure mutation check fires
   on them. *)

open Typedtree

let rule = "domain-capture"

(* Call sites whose first positional argument runs on worker domains. *)
let targets = [ ("parallel.Pool", "map"); ("workload.Parmap", "map") ]

let accumulators =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "Atomic.t" ]

(* Mutators whose first positional argument is the mutated value. *)
let mutators =
  [
    ":=";
    "incr";
    "decr";
    "Hashtbl.replace";
    "Hashtbl.add";
    "Hashtbl.remove";
    "Hashtbl.reset";
    "Hashtbl.clear";
    "Queue.add";
    "Queue.push";
    "Queue.pop";
    "Queue.take";
    "Queue.clear";
    "Stack.push";
    "Stack.pop";
    "Stack.clear";
    "Buffer.add_string";
    "Buffer.add_char";
    "Buffer.add_bytes";
    "Buffer.add_buffer";
    "Buffer.clear";
    "Buffer.reset";
    "Array.set";
    "Array.fill";
    "Array.blit";
    "Bytes.set";
    "Bytes.fill";
    "Bytes.blit";
    "Atomic.set";
    "Atomic.incr";
    "Atomic.decr";
    "Atomic.fetch_and_add";
    "Atomic.exchange";
    "Atomic.compare_and_set";
  ]

let head_ident (e : expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let rec type_contains_accumulator depth (ty : Types.type_expr) =
  depth > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
    List.mem (Rules.norm_path p) accumulators
    || List.exists (type_contains_accumulator (depth - 1)) args
  | Types.Ttuple l -> List.exists (type_contains_accumulator (depth - 1)) l
  | Types.Tlink ty | Types.Tsubst (ty, _) ->
    type_contains_accumulator depth ty
  | _ -> false

let type_contains_accumulator ty = type_contains_accumulator 12 ty

(* Stamps (and names, for messages) of module-toplevel mutable bindings,
   mirroring the [toplevel-state] rule's notion of mutable state. *)
let toplevel_mutables (str : structure) =
  let out = Hashtbl.create 8 in
  let rec scan_items items =
    List.iter
      (fun (item : structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              match (vb.vb_pat.pat_desc, head_ident vb.vb_expr) with
              | Tpat_var (id, _), Some p
                when List.mem (Rules.norm_path p) Rules.state_makers ->
                Hashtbl.replace out (Ident.unique_name id) (Ident.name id)
              | _ -> ())
            vbs
        | Tstr_module mb -> scan_module mb.mb_expr
        | Tstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.mb_expr) mbs
        | _ -> ())
      items
  and scan_module (m : module_expr) =
    match m.mod_desc with
    | Tmod_structure s -> scan_items s.str_items
    | Tmod_constraint (me, _, _, _) -> scan_module me
    | _ -> ()
  in
  scan_items str.str_items;
  out

(* Idents bound by patterns anywhere inside [e] (function params, lets,
   match cases): anything else referenced as a [Pident] is captured. *)
let bound_idents (e : expression) =
  let bound = Hashtbl.create 16 in
  let default = Tast_iterator.default_iterator in
  let pat : type k. _ -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
    | Tpat_alias (_, id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
    | _ -> ());
    default.pat sub p
  in
  let it = { default with pat } in
  it.expr it e;
  bound

let captured_pident bound (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when not (Hashtbl.mem bound (Ident.unique_name id))
    ->
    Some id
  | _ -> None

(* Violations for one task closure. *)
let check_task ~toplevel ~file (task : expression) =
  let bound = bound_idents task in
  let out = ref [] in
  let seen = Hashtbl.create 8 in
  let flag id loc msg =
    if not (Hashtbl.mem seen (Ident.unique_name id)) then begin
      Hashtbl.replace seen (Ident.unique_name id) ();
      out := Violation.make ~rule ~file ~loc msg :: !out
    end
  in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _)
      when not (Hashtbl.mem bound (Ident.unique_name id)) ->
      if Hashtbl.mem toplevel (Ident.unique_name id) then
        flag id e.exp_loc
          (Printf.sprintf
             "task closure captures module-toplevel mutable state [%s]; \
              every worker domain shares it — give each task its own \
              accumulator ([Obs.create_like]) and merge in task order in \
              the calling domain ([Obs.absorb] / Pool.map's ~collect)"
             (Ident.name id))
      else if type_contains_accumulator e.exp_type then
        flag id e.exp_loc
          (Printf.sprintf
             "task closure captures [%s], whose type carries a mutable \
              accumulator; worker domains would race on it — use the \
              per-task sink pattern ([Obs.create_like] inside the task, \
              [Obs.absorb] in task order in the calling domain)"
             (Ident.name id))
    | Texp_setfield (r, _, ld, _) -> (
      match captured_pident bound r with
      | Some id ->
        flag id e.exp_loc
          (Printf.sprintf
             "task closure mutates captured [%s] (field %s); the write \
              races with other worker domains — return the value and \
              apply it in task order in the calling domain"
             (Ident.name id) ld.Types.lbl_name)
      | None -> ())
    | Texp_apply (f, args) -> (
      match head_ident f with
      | Some p when List.mem (Rules.norm_path p) mutators -> (
        let first_positional =
          List.find_map
            (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
            args
        in
        match Option.bind first_positional (captured_pident bound) with
        | Some id ->
          flag id e.exp_loc
            (Printf.sprintf
               "task closure mutates captured [%s] via %s; the write races \
                with other worker domains — return the value and apply it \
                in task order in the calling domain"
               (Ident.name id) (Rules.norm_path p))
        | None -> ())
      | _ -> ())
    | _ -> ());
    default.expr sub e
  in
  let it = { default with expr } in
  it.expr it task;
  !out

let target_of_apply (f : expression) =
  match head_ident f with
  | Some p -> (
    match Boundaries.unit_of_path p with
    | Some u -> (
      let key = (Boundaries.unit_name u, Path.last p) in
      match List.mem key targets with true -> Some key | false -> None)
    | None -> None)
  | None -> None

let check ~file (str : structure) : Violation.t list =
  let toplevel = toplevel_mutables str in
  let out = ref [] in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_apply (f, args) when target_of_apply f <> None -> (
      let task =
        List.find_map
          (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
          args
      in
      match task with
      | Some ({ exp_desc = Texp_function _; _ } as task) ->
        out := check_task ~toplevel ~file task @ !out
      | _ -> ())
    | _ -> ());
    default.expr sub e
  in
  let it = { default with expr } in
  it.structure it str;
  List.sort Violation.order !out
