(** Static analysis driver for the reproduction's two load-bearing
    invariants: runs are a deterministic function of the seed (no ambient
    randomness or wall-clock reads, no hash-order escapes), and the modular
    stack's protocol modules stay black boxes to each other (the declared
    layering of lint/boundaries.spec, reconstructed from the .cmt reference
    graph). See DESIGN.md "Boundary model and determinism rules". *)

type report = {
  violations : Violation.t list;  (** active, i.e. not waived *)
  waived : Violation.t list;  (** silenced by the waiver file *)
  unused_waivers : Waivers.t list;  (** waivers that matched nothing *)
  units : Boundaries.unit_id list;  (** linted compilation units *)
  edges : Boundaries.edge list;  (** deduplicated cross-unit references *)
  stale : (string * string) list;
      (** [(source, cmt)] pairs where the source outdates its artifact;
          non-empty only under [~allow_stale:true] (otherwise stale
          artifacts are an [Error]) *)
}

val find_cmts : string -> string list
(** All [*.cmt] files below a directory, sorted. *)

val lint_cmt_file :
  string ->
  ((string * Boundaries.unit_id option * Violation.t list * Boundaries.edge list)
   option,
   string)
  result
(** Analyse one .cmt: [(source_file, unit, determinism violations, outgoing
    references)], or [None] for generated / interface-only artifacts. *)

val is_stale : cmt:string -> source:string -> bool
(** Whether [source] is newer (by mtime) than the [cmt] compiled from
    it. A missing source is never stale (generated units). *)

val run :
  build_root:string ->
  ?src_dirs:string list ->
  ?spec_file:string ->
  ?waivers_file:string ->
  ?source_root:string ->
  ?allow_stale:bool ->
  unit ->
  (report, string) result
(** Lint every unit under [build_root]/[src_dirs] (default [["lib"]]),
    check boundaries against [spec_file] and silence [waivers_file].

    When [source_root] is given, each linted [.cmt] is checked against
    its recorded source file under that root: a stale artifact (source
    newer than [.cmt]) is an [Error] telling the user to rebuild,
    unless [allow_stale] is [true], in which case the pairs are carried
    in the report's [stale] field and linting proceeds. *)

val json_lines : report -> string list
(** One JSON object per violation (active first, then waived, each in
    report order), for [repro lint --json]. Round-trips through
    {!Violation.of_json}. *)

val pp_summary : Format.formatter -> report -> unit
