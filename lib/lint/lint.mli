(** Static analysis driver for the reproduction's two load-bearing
    invariants: runs are a deterministic function of the seed (no ambient
    randomness or wall-clock reads, no hash-order escapes), and the modular
    stack's protocol modules stay black boxes to each other (the declared
    layering of lint/boundaries.spec, reconstructed from the .cmt reference
    graph). See DESIGN.md "Boundary model and determinism rules". *)

type report = {
  violations : Violation.t list;  (** active, i.e. not waived *)
  waived : Violation.t list;  (** silenced by the waiver file *)
  unused_waivers : Waivers.t list;  (** waivers that matched nothing *)
  units : Boundaries.unit_id list;  (** linted compilation units *)
  edges : Boundaries.edge list;  (** deduplicated cross-unit references *)
}

val find_cmts : string -> string list
(** All [*.cmt] files below a directory, sorted. *)

val lint_cmt_file :
  string ->
  ((string * Boundaries.unit_id option * Violation.t list * Boundaries.edge list)
   option,
   string)
  result
(** Analyse one .cmt: [(source_file, unit, determinism violations, outgoing
    references)], or [None] for generated / interface-only artifacts. *)

val run :
  build_root:string ->
  ?src_dirs:string list ->
  ?spec_file:string ->
  ?waivers_file:string ->
  unit ->
  (report, string) result
(** Lint every unit under [build_root]/[src_dirs] (default [["lib"]]),
    check boundaries against [spec_file] and silence [waivers_file]. *)

val pp_summary : Format.formatter -> report -> unit
