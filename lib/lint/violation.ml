(* One finding of the static analysis: a rule, a source position, and a
   human-readable explanation. [file] is the path recorded in the .cmt,
   relative to the build context root (e.g. "lib/core/consensus.ml"), which
   is also the path a waiver names. *)

type t = { rule : string; file : string; line : int; col : int; message : string }

let make ~rule ~file ~(loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

(* Stable report order: by position, then rule name for same-position hits. *)
let order a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let pp ppf v = Fmt.pf ppf "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message
