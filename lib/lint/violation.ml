(* One finding of the static analysis: a rule, a source position, and a
   human-readable explanation. [file] is the path recorded in the .cmt,
   relative to the build context root (e.g. "lib/core/consensus.ml"), which
   is also the path a waiver names. *)

type t = { rule : string; file : string; line : int; col : int; message : string }

let make ~rule ~file ~(loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

(* Stable report order: by position, then rule name for same-position hits. *)
let order a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let pp ppf v = Fmt.pf ppf "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

(* ---- JSON (for `repro lint --json` and the CI annotation step) ----

   One flat object per violation, emitted one per line (JSONL). The
   format is hand-rolled — the repo takes no JSON dependency — so the
   escaper and the parser below are each other's inverses for exactly
   the value shapes [to_json] produces: string, int and bool fields,
   no nesting. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(waived = false) v =
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s","waived":%b}|}
    (json_escape v.rule) (json_escape v.file) v.line v.col
    (json_escape v.message) waived

(* Minimal parser for the flat objects [to_json] writes. Returns the
   violation and its [waived] flag. *)
let of_json s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> failwith m) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos
    else error "expected %c at offset %d" c !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then error "dangling escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; incr pos
             | '\\' -> Buffer.add_char b '\\'; incr pos
             | 'n' -> Buffer.add_char b '\n'; incr pos
             | 't' -> Buffer.add_char b '\t'; incr pos
             | 'r' -> Buffer.add_char b '\r'; incr pos
             | 'u' ->
               if !pos + 4 >= n then error "truncated \\u escape";
               let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
               if code > 0xff then error "non-latin \\u escape";
               Buffer.add_char b (Char.chr code);
               pos := !pos + 5
             | c -> error "unknown escape \\%c" c);
          go ()
        | c -> Buffer.add_char b c; incr pos; go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> `String (parse_string ())
    | Some ('t' | 'f') ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4; `Bool true
      end
      else if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5; `Bool false
      end
      else error "bad literal at offset %d" !pos
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
      `Int (int_of_string (String.sub s start (!pos - start)))
    | _ -> error "bad value at offset %d" !pos
  in
  match
    let fields = ref [] in
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; members ()
        | Some '}' -> incr pos
        | _ -> error "expected , or } at offset %d" !pos
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then error "trailing input at offset %d" !pos;
    let str k =
      match List.assoc_opt k !fields with
      | Some (`String s) -> s
      | _ -> error "missing string field %s" k
    in
    let int k =
      match List.assoc_opt k !fields with
      | Some (`Int i) -> i
      | _ -> error "missing int field %s" k
    in
    let waived =
      match List.assoc_opt "waived" !fields with
      | Some (`Bool b) -> b
      | _ -> error "missing bool field waived"
    in
    ( {
        rule = str "rule";
        file = str "file";
        line = int "line";
        col = int "col";
        message = str "message";
      },
      waived )
  with
  | v -> Ok v
  | exception Failure m -> Error m
