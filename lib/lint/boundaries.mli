(** The modularity-boundary checker: the cross-module reference graph of
    the repro_* libraries, reconstructed from .cmt typedtrees, checked
    against the layering declared in lint/boundaries.spec, and exportable
    as Graphviz for the modular-vs-monolithic dependency-shape figure. *)

type unit_id = { lib : string; m : string }
(** A compilation unit, e.g. [{lib="core"; m="Consensus"}]; [m = ""] is the
    library entry module. *)

val unit_name : unit_id -> string
(** "core.Consensus", or "core" for a library entry. *)

val unit_order : unit_id -> unit_id -> int

val unit_of_modname : string -> unit_id option
(** "Repro_core__Replica" -> core.Replica; non-repro units -> [None]. *)

val unit_of_path : Path.t -> unit_id option
(** The repro unit a typedtree path refers to, if any. *)

type edge = { src : unit_id; dst : unit_id; file : string; line : int }
(** One cross-unit reference; [line] is its first occurrence. *)

val edge_order : edge -> edge -> int
val collect : src:unit_id -> file:string -> Typedtree.structure -> edge list

(** {2 Layering spec} *)

type pattern = Any | Lib of string | Mod of string * string

type verdict = Only | Deny | Allow

type rule = {
  verdict : verdict;
  src_pat : pattern;
  dst_pats : pattern list;
  line : int;
  text : string;
}

val parse_pattern : string -> (pattern, string) result
val matches : pattern -> unit_id -> bool
val parse_spec : string -> (rule list, string) result
val load_spec : string -> (rule list, string) result

val check : ?spec_name:string -> rule list -> edge list -> Violation.t list
(** An edge passes if an allow rule covers it; otherwise a covering deny,
    or an only-rule on the source missing the destination, is a violation
    (rule id ["boundary"]). *)

val to_dot : edge list -> string
(** Graphviz digraph, one cluster per library. *)
