(* Determinism lints over the typed AST of one compilation unit.

   The reproduction's invariant is that a run is a deterministic function of
   the seed and the initial schedule (DESIGN.md), so nothing in lib/ may
   consult an ambient source of nondeterminism. Each rule is a syntactic /
   type-directed approximation, checked against the .cmt typedtree:

   - random        stdlib Random.* (draws must go through Sim.Rng)
   - wall-clock    Unix.gettimeofday, Unix.time, Sys.time, ... (time must
                   come from the virtual clock, Sim.Time / Engine.now)
   - hashtbl-order Hashtbl.iter, and Hashtbl.fold whose result is not
                   directly handed to List.sort* — binding order is hash
                   order and must not escape unsorted
   - phys-eq       (==) / (!=) at a type that is not provably immediate
   - poly-compare  polymorphic =, <>, <, compare, min, max, ... instantiated
                   at a type visibly containing a function or a mutable
                   container (compare raises on closures and walks the
                   physical bucket layout of a Hashtbl.t)
   - toplevel-state  a module-toplevel let binding allocating mutable
                   state (ref, Hashtbl.create, Buffer.create, ...): such
                   state outlives a run (leaks between runs) and is
                   shared by every task once independent runs execute on
                   the Parallel domain pool

   Known approximations: a Hashtbl.fold with a commutative accumulator is
   still flagged (waive it); module aliases like `module H = Hashtbl` hide
   the path from the rules; named record/variant types are not expanded
   when looking for risky components (no typing env is reconstructed from
   the .cmt), so only types visible at the use site are inspected. *)

open Typedtree

(* "Stdlib__Random.int" / "Stdlib.Random.int" -> "Random.int". Project
   paths keep their "Repro_*" prefix, so Time.(>=) or a local (==) never
   collides with the stdlib names matched below. *)
let norm_path p =
  let n = Path.name p in
  let strip prefix n =
    if String.starts_with ~prefix n then
      Some (String.sub n (String.length prefix) (String.length n - String.length prefix))
    else None
  in
  match strip "Stdlib__" n with
  | Some rest -> rest
  | None -> ( match strip "Stdlib." n with Some rest -> rest | None -> n)

let wall_clocks =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime"; "Sys.time" ]

let hashtbl_iters = [ "Hashtbl.iter"; "Hashtbl.filter_map_inplace" ]
let hashtbl_folds = [ "Hashtbl.fold" ]
let sorters = [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]
let phys_eqs = [ "=="; "!=" ]
let poly_cmps = [ "="; "<>"; "<"; "<="; ">"; ">="; "compare"; "min"; "max" ]

(* Types whose (==) is well-defined because values are unboxed. Abstract
   types that happen to be immediate (e.g. an int-backed Pid.t) are not
   recognized; waive those sites if they ever appear. *)
let immediates = [ "int"; "bool"; "char"; "unit" ]

let is_immediate ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> List.mem (norm_path p) immediates
  | _ -> false

let mutable_containers =
  [ "ref"; "array"; "bytes"; "Bytes.t"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t";
    "Atomic.t" ]

(* Allocators whose result, bound at module toplevel, is long-lived
   mutable state. Array/Bytes literals and [make] are deliberately not
   listed: constant lookup tables are idiomatic and flagged sites would
   be mostly noise — the rule targets accumulating state. *)
let state_makers =
  [ "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Atomic.make" ]

(* Does [ty] visibly contain a component polymorphic compare chokes on?
   Only structure visible at the use site is inspected — named types stay
   opaque (a deliberate under-approximation, see the header). *)
let rec risky_component ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> Some "a function"
  | Types.Ttuple tys -> List.find_map risky_component tys
  | Types.Tconstr (p, args, _) ->
    let n = norm_path p in
    if List.mem n mutable_containers then Some ("the mutable container " ^ n)
    else List.find_map risky_component args
  | _ -> None

let first_arg_type ty =
  match Types.get_desc ty with Types.Tarrow (_, a, _, _) -> Some a | _ -> None

let check_structure ~file (str : structure) : Violation.t list =
  let out = ref [] in
  (* cnum ranges that sit under a List.sort* application: a Hashtbl.fold in
     one of them hands its hash-ordered list straight to a sort, which
     makes the escaping order deterministic. *)
  let sorted_regions = ref [] in
  (* Ident nodes already judged at an enclosing application (so the plain
     ident visit must not double-report), keyed by cnum range. *)
  let consumed = Hashtbl.create 16 in
  let add loc rule message = out := Violation.make ~rule ~file ~loc message :: !out in
  let range (loc : Location.t) =
    (loc.Location.loc_start.Lexing.pos_cnum, loc.Location.loc_end.Lexing.pos_cnum)
  in
  let in_sorted loc =
    let s, e = range loc in
    List.exists (fun (a, b) -> a <= s && e <= b) !sorted_regions
  in
  let rec head_ident (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some (p, e)
    | Texp_apply (f, _) -> head_ident f
    | _ -> None
  in
  (* Comparisons against a constant constructor (x = None, x = []) only
     inspect the tag, so they are safe even when the full type contains
     functions. *)
  let is_tag_only (e : expression) =
    match e.exp_desc with
    | Texp_construct (_, _, []) -> true
    | Texp_variant (_, None) -> true
    | _ -> false
  in
  let flag_ident p (e : expression) =
    let n = norm_path p in
    let loc = e.exp_loc in
    if String.starts_with ~prefix:"Random." n then
      add loc "random"
        (Printf.sprintf "stdlib %s bypasses the seeded simulation RNG; draw from Sim.Rng"
           n)
    else if List.mem n wall_clocks then
      add loc "wall-clock"
        (Printf.sprintf
           "%s reads the host clock; simulated time must come from Sim.Time / Engine.now"
           n)
    else if List.mem n hashtbl_iters then
      add loc "hashtbl-order"
        (Printf.sprintf
           "%s visits bindings in hash order; iterate a sorted snapshot instead (or \
            waive with a justification)"
           n)
    else if List.mem n hashtbl_folds then begin
      if not (in_sorted loc) then
        add loc "hashtbl-order"
          (Printf.sprintf
             "%s accumulates in hash order and the result escapes unsorted; pipe it \
              into List.sort (or waive a commutative fold)"
             n)
    end
    else if List.mem n phys_eqs then begin
      match first_arg_type e.exp_type with
      | Some t when is_immediate t -> ()
      | _ ->
        add loc "phys-eq"
          (Printf.sprintf
             "(%s) at a type not provably immediate depends on sharing, not value; use \
              structural equality or an explicit key"
             n)
    end
    else if List.mem n poly_cmps then begin
      match Option.bind (first_arg_type e.exp_type) risky_component with
      | Some what ->
        add loc "poly-compare"
          (Printf.sprintf
             "polymorphic %s instantiated at a type containing %s; supply an explicit \
              comparison"
             (if String.length n <= 2 then "(" ^ n ^ ")" else n)
             what)
      | None -> ()
    end
  in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
     | Texp_apply (f, args) -> (
       match head_ident f with
       | Some (p, fident) ->
         let n = norm_path p in
         if List.mem n sorters then
           List.iter
             (fun (_, a) ->
               Option.iter
                 (fun (a : expression) ->
                   sorted_regions := range a.exp_loc :: !sorted_regions)
                 a)
             args;
         if
           List.mem n poly_cmps
           && List.exists
                (fun (_, a) -> match a with Some a -> is_tag_only a | None -> false)
                args
         then Hashtbl.replace consumed (range fident.exp_loc) ()
       | None -> ())
     | Texp_ident (p, _, _) ->
       if not (Hashtbl.mem consumed (range e.exp_loc)) then flag_ident p e
     | _ -> ());
    default.expr sub e
  in
  let module_expr sub (m : module_expr) =
    (match m.mod_desc with
     | Tmod_ident (p, _) ->
       let n = norm_path p in
       if n = "Random" || String.starts_with ~prefix:"Random." n then
         add m.mod_loc "random" "aliasing stdlib Random; draw from Sim.Rng instead"
     | _ -> ());
    default.module_expr sub m
  in
  let it = { default with expr; module_expr } in
  it.structure it str;
  (* toplevel-state walks structure items directly rather than through the
     iterator: only module-toplevel bindings are suspect — a ref local to a
     function is per-call state and perfectly fine. *)
  let rec scan_items items =
    List.iter
      (fun (item : structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              match head_ident vb.vb_expr with
              | Some (p, _) ->
                let n = norm_path p in
                if List.mem n state_makers then
                  add vb.vb_expr.exp_loc "toplevel-state"
                    (Printf.sprintf
                       "module-toplevel mutable state (%s) outlives a run and is \
                        shared across parallel domains; allocate it inside the \
                        function that uses it (or waive with a justification)"
                       n)
              | None -> ())
            vbs
        | Tstr_module mb -> scan_module_expr mb.mb_expr
        | Tstr_recmodule mbs -> List.iter (fun mb -> scan_module_expr mb.mb_expr) mbs
        | _ -> ())
      items
  and scan_module_expr (m : module_expr) =
    match m.mod_desc with
    | Tmod_structure s -> scan_items s.str_items
    | Tmod_constraint (me, _, _, _) -> scan_module_expr me
    | _ -> ()
  in
  scan_items str.str_items;
  List.sort Violation.order !out
