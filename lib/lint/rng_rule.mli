(** RNG-stream discipline analysis.

    Flags, everywhere outside [lib/sim/rng.ml] itself: raw seed
    arithmetic at [Rng.create] sites (the sanctioned form is
    [Rng.derive ~seed ~salt]); draw calls whose stream argument visibly
    comes from another unit (a cross-unit call or cross-unit record
    field — each subsystem draws only from streams it owns, obtained
    via [Rng.split]/[Rng.derive]); and [Rng.t] arguments handed across
    a unit boundary (stream sharing by construction). See the
    implementation header for the soundness envelope. *)

val rule : string
(** ["rng-stream"]. *)

val check :
  ?unit:Boundaries.unit_id ->
  file:string ->
  Typedtree.structure ->
  Violation.t list
(** All violations in one implementation's typedtree, sorted. [unit]
    identifies the file's own unit (so same-unit calls are not treated
    as boundary crossings) and exempts [sim.Rng] itself. *)
