(** Domain-capture safety analysis.

    At every [Parallel.Pool.map] / [Workload.Parmap.map] call site whose
    task argument is a syntactic closure, flags free variables that name
    shared mutable state: module-toplevel mutable bindings, captures
    whose type visibly carries an accumulating container, and in-closure
    mutations of captured identifiers. The sanctioned alternative is the
    per-task [Obs.create_like] sink merged in task order by
    [Obs.absorb] (or [Pool.map]'s calling-domain [~collect]), which the
    rule never flags. See the implementation header for the soundness
    envelope. *)

val rule : string
(** ["domain-capture"]. *)

val check : file:string -> Typedtree.structure -> Violation.t list
(** All violations in one implementation's typedtree, sorted. *)
