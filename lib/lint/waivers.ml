(* The committed waiver file: acknowledged exceptions to the lint rules.

   One waiver per line:

     <rule> <file> -- <justification>

   A waiver silences every violation of <rule> in <file>; the justification
   is mandatory, so the file doubles as a record of *why* each exception is
   sound. Waivers that match nothing are reported so the file cannot rot. *)

type t = { rule : string; path : string; reason : string; line : int }

let pp ppf w = Fmt.pf ppf "%s %s -- %s" w.rule w.path w.reason

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_line ~line_no line =
  let line = strip_comment line in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> Ok None
  | rule :: path :: "--" :: (_ :: _ as reason) ->
    Ok (Some { rule; path; reason = String.concat " " reason; line = line_no })
  | _ ->
    Error
      (Printf.sprintf
         "line %d: expected `<rule> <file> -- <justification>` (the justification is \
          required)"
         line_no)

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go acc line_no = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse_line ~line_no l with
      | Error e -> Error e
      | Ok None -> go acc (line_no + 1) rest
      | Ok (Some w) -> go (w :: acc) (line_no + 1) rest)
  in
  go [] 1 lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match parse contents with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok ws -> Ok ws)

let covers w (v : Violation.t) = w.rule = v.rule && w.path = v.file

(* Split violations into (active, waived) and report waivers that matched
   nothing. *)
let apply waivers violations =
  let active, waived =
    List.partition (fun v -> not (List.exists (fun w -> covers w v) waivers)) violations
  in
  let unused =
    List.filter (fun w -> not (List.exists (fun v -> covers w v) violations)) waivers
  in
  (active, waived, unused)
