(** Snapshot-completeness analysis.

    For every structure that binds a [snapshot]/[restore] pair and
    declares a state type [t], cross-checks the mutable state reachable
    from [t] (mutable record labels, and labels whose type visibly
    contains [ref], [Hashtbl.t], [Queue.t], [Stack.t], [Buffer.t] or
    [Atomic.t]) against the record labels the [snapshot] function
    actually reads, transitively through same-structure toplevel
    helpers. Uncaptured state is reported at the label's declaration
    site under rule [snapshot-completeness].

    Sanctioned runtime-topology exemptions (state the snapshot design
    re-seats via the [Marshal] world blob): labels whose type contains a
    function arrow, labels of a type listed in [topology_types]
    (e.g. [Engine.timer]), and the explicit per-unit entries in
    [topology_fields]. See the implementation header for the full
    soundness envelope. *)

val rule : string
(** ["snapshot-completeness"]. *)

val check :
  ?unit:Boundaries.unit_id ->
  file:string ->
  Typedtree.structure ->
  Violation.t list
(** All violations in one implementation's typedtree, sorted. [unit]
    (when the file belongs to a [lib/] unit) keys the per-unit
    [topology_fields] exemptions. *)

val debug_pairs :
  ?unit:Boundaries.unit_id ->
  Typedtree.structure ->
  (string * string) list * (string * string) list
(** [(obligations, coverage)] for the toplevel structure's pair, as
    [(type, label)] pairs — [( [], [] )] when the structure has no
    [snapshot]/[restore] pair. Exposed so tests can pin down that a
    specific field write is an obligation and currently covered (the
    "deleting a field read makes lint fail" acceptance check). *)
