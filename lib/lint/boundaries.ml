(* The modularity-boundary checker: reconstruct the cross-module reference
   graph of the repro_* libraries from the .cmt typedtrees, and enforce the
   layering declared in lint/boundaries.spec.

   Units are named "lib.Module" after the dune wrapping: the compilation
   unit Repro_core__Consensus (and any typedtree path through the library
   entry, Repro_core.Consensus.create) both map to core.Consensus. External
   units (Stdlib, Fmt, ...) are not part of the graph. *)

type unit_id = { lib : string; m : string }

let unit_name u = if u.m = "" then u.lib else u.lib ^ "." ^ u.m
let unit_order a b = compare (unit_name a) (unit_name b)

(* "Repro_core__Replica" -> core.Replica; "Repro_obs" -> the obs library
   entry; anything else -> not a repro unit. *)
let unit_of_modname name =
  if not (String.starts_with ~prefix:"Repro_" name) then None
  else begin
    let rest = String.sub name 6 (String.length name - 6) in
    let rec find_sep i =
      if i + 1 >= String.length rest then None
      else if rest.[i] = '_' && rest.[i + 1] = '_' then Some i
      else find_sep (i + 1)
    in
    match find_sep 0 with
    | Some i ->
      Some
        {
          lib = String.sub rest 0 i;
          m = String.sub rest (i + 2) (String.length rest - i - 2);
        }
    | None -> Some { lib = rest; m = "" }
  end

(* A typedtree path names a repro unit either directly
   ("Repro_core__Consensus.create") or through the library entry
   ("Repro_core.Consensus.create"); in the latter case the module is the
   next path component. Locally bound module aliases have a non-global
   head and are skipped — the alias binding itself records the edge. *)
let unit_of_path p =
  if not (Ident.global (Path.head p)) then None
  else
    match String.split_on_char '.' (Path.name p) with
    | [] -> None
    | head :: rest -> (
      match unit_of_modname head with
      | Some u when u.m = "" -> (
        match rest with
        | m :: _ when m <> "" && m.[0] >= 'A' && m.[0] <= 'Z' -> Some { u with m }
        | _ -> Some u)
      | u -> u)

type edge = { src : unit_id; dst : unit_id; file : string; line : int }

let edge_order a b =
  compare (unit_name a.src, unit_name a.dst) (unit_name b.src, unit_name b.dst)

(* ---- Reference collection ---- *)

let collect ~src ~file (str : Typedtree.structure) : edge list =
  let open Typedtree in
  let firsts = Hashtbl.create 32 in
  let note (loc : Location.t) = function
    | Some dst when dst <> src ->
      let line = loc.Location.loc_start.Lexing.pos_lnum in
      (match Hashtbl.find_opt firsts dst with
      | Some l0 when l0 <= line -> ()
      | _ -> Hashtbl.replace firsts dst line)
    | _ -> ()
  in
  let note_type loc ty =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) -> note loc (unit_of_path p)
    | _ -> ()
  in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
     | Texp_ident (p, _, _) -> note e.exp_loc (unit_of_path p)
     | Texp_construct (_, cd, _) -> note_type e.exp_loc cd.Types.cstr_res
     | Texp_field (_, _, ld) | Texp_setfield (_, _, ld, _) ->
       note_type e.exp_loc ld.Types.lbl_res
     | _ -> ());
    default.expr sub e
  in
  let typ sub (t : core_type) =
    (match t.ctyp_desc with
     | Ttyp_constr (p, _, _) -> note t.ctyp_loc (unit_of_path p)
     | _ -> ());
    default.typ sub t
  in
  let module_expr sub (m : module_expr) =
    (match m.mod_desc with
     | Tmod_ident (p, _) -> note m.mod_loc (unit_of_path p)
     | _ -> ());
    default.module_expr sub m
  in
  let pat : type k. _ -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
     | Tpat_construct (_, cd, _, _) -> note_type p.pat_loc cd.Types.cstr_res
     | Tpat_record (fields, _) ->
       List.iter (fun (_, ld, _) -> note_type p.pat_loc ld.Types.lbl_res) fields
     | _ -> ());
    default.pat sub p
  in
  let it = { default with expr; typ; module_expr; pat } in
  it.structure it str;
  Hashtbl.fold (fun dst line acc -> { src; dst; file; line } :: acc) firsts []
  |> List.sort edge_order

(* ---- The layering spec ---- *)

type pattern = Any | Lib of string | Mod of string * string

let parse_pattern s =
  if s = "*" then Ok Any
  else
    match String.split_on_char '.' s with
    | [ lib ] when lib <> "" -> Ok (Lib lib)
    | [ lib; m ] when lib <> "" && m <> "" -> Ok (Mod (lib, m))
    | _ -> Error (Printf.sprintf "bad pattern %S (expected lib, lib.Module or *)" s)

let matches pat u =
  match pat with
  | Any -> true
  | Lib l -> u.lib = l
  | Mod (l, m) -> u.lib = l && u.m = m

type verdict = Only | Deny | Allow

type rule = {
  verdict : verdict;
  src_pat : pattern;
  dst_pats : pattern list;
  line : int;
  text : string;
}

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_rule ~line_no raw =
  let tokens =
    String.split_on_char ' ' (strip_comment raw) |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Ok None
  | kw :: rest -> (
    let verdict =
      match kw with
      | "only" -> Ok Only
      | "deny" -> Ok Deny
      | "allow" -> Ok Allow
      | other -> Error (Printf.sprintf "unknown keyword %S (only|deny|allow)" other)
    in
    match verdict with
    | Error e -> Error (Printf.sprintf "line %d: %s" line_no e)
    | Ok verdict -> (
      match rest with
      | src :: "->" :: (_ :: _ as dsts) when src <> "->" -> (
        let pats = List.map parse_pattern (src :: dsts) in
        match List.find_map (function Error e -> Some e | Ok _ -> None) pats with
        | Some e -> Error (Printf.sprintf "line %d: %s" line_no e)
        | None ->
          let pats = List.filter_map Result.to_option pats in
          Ok
            (Some
               {
                 verdict;
                 src_pat = List.hd pats;
                 dst_pats = List.tl pats;
                 line = line_no;
                 text = String.concat " " tokens;
               }))
      | _ -> Error (Printf.sprintf "line %d: expected `%s SRC -> DST...`" line_no kw)))

let parse_spec contents =
  let lines = String.split_on_char '\n' contents in
  let rec go acc line_no = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse_rule ~line_no l with
      | Error e -> Error e
      | Ok None -> go acc (line_no + 1) rest
      | Ok (Some r) -> go (r :: acc) (line_no + 1) rest)
  in
  go [] 1 lines

let load_spec path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match parse_spec contents with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok rules -> Ok rules)

(* An edge passes if an allow rule covers it; otherwise any covering deny,
   or any only-rule on the source whose destination list misses the target,
   is a violation. *)
let check ?(spec_name = "boundaries.spec") rules edges : Violation.t list =
  List.filter_map
    (fun e ->
      let covering v =
        List.filter (fun r -> r.verdict = v && matches r.src_pat e.src) rules
      in
      let dst_hit r = List.exists (fun p -> matches p e.dst) r.dst_pats in
      if List.exists dst_hit (covering Allow) then None
      else
        let violated =
          match List.find_opt dst_hit (covering Deny) with
          | Some r -> Some r
          | None -> List.find_opt (fun r -> not (dst_hit r)) (covering Only)
        in
        Option.map
          (fun r ->
            {
              Violation.rule = "boundary";
              file = e.file;
              line = e.line;
              col = 0;
              message =
                Printf.sprintf
                  "%s references %s, breaking `%s` (%s:%d); modules compose only \
                   through Framework.Event_bus / Stack wiring"
                  (unit_name e.src) (unit_name e.dst) r.text spec_name r.line;
            })
          violated)
    edges

(* ---- Graphviz export ---- *)

let to_dot edges =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph repro_modules {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  let units =
    List.concat_map (fun e -> [ e.src; e.dst ]) edges
    |> List.sort_uniq unit_order
  in
  let libs = List.map (fun u -> u.lib) units |> List.sort_uniq compare in
  List.iter
    (fun lib ->
      Buffer.add_string buf (Printf.sprintf "  subgraph \"cluster_%s\" {\n    label=\"lib/%s\";\n" lib lib);
      List.iter
        (fun u ->
          if u.lib = lib then
            Buffer.add_string buf (Printf.sprintf "    \"%s\";\n" (unit_name u)))
        units;
      Buffer.add_string buf "  }\n")
    libs;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\";\n" (unit_name e.src) (unit_name e.dst)))
    (List.sort_uniq (fun a b -> edge_order a b) edges);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
