open Repro_sim

(** Causal spans: the per-message counterpart of the flat {!Obs.event}
    trace.

    A span is an instantaneous, timestamped protocol step with a link to
    the step that caused it — the [parent]. Because the simulation is
    single-threaded and every event has exactly one trigger, following
    parent links from an application delivery back to its root replays
    the {e critical path} of that message: the one causal chain whose
    hops sum exactly to the end-to-end latency (see
    {!Repro_analysis.Critical_path}).

    Spans are recorded through {!Obs.span}; an implicit "current span"
    carried by the sink ({!Obs.span_ctx} / {!Obs.set_span_ctx}) supplies
    the parent across module boundaries, so a consensus step triggered
    by a network delivery parents to that delivery without any protocol
    code passing ids around. *)

type layer = [ `Abcast | `Consensus | `Rbcast | `Net | `App ]
(** Same structural type as {!Obs.layer}. *)

val layer_name : layer -> string
val layer_of_name : string -> layer option
val all_layers : layer list

type t = {
  sid : int;  (** Unique id, assigned from 1 in causal (recording) order. *)
  parent : int;  (** The causing span's [sid], or {!no_parent} for a root. *)
  at : Time.t;  (** Simulated instant (never wall time). *)
  pid : int;
  layer : layer;
  phase : string;  (** e.g. "abcast", "propose", "tx", "rx", "adeliver". *)
  detail : string;
}

val no_parent : int
(** The sentinel parent id (0) marking a chain root. *)

val is_root : t -> bool

val index : t list -> (int, t) Hashtbl.t
(** Index a trace by [sid] for chain walks. *)

val chain : (int, t) Hashtbl.t -> t -> t list
(** The causal chain ending at the given span, root first. Stops early
    (treating the span as a root) if a parent id is missing from the
    index — e.g. beyond a truncated trace — or not strictly older. *)

val orphans : t list -> t list
(** Spans whose parent id is neither {!no_parent} nor present in the
    trace. Empty on any complete (untruncated) trace. *)

val pp : t Fmt.t
(** Prints [#sid<-#parent p<pid+1> <layer>/<phase> <detail>]. *)
