open Repro_sim

(** Fixed-bucket latency histogram.

    Buckets are defined by an ascending array of upper edges; a value [v]
    lands in the first bucket with [v <= edge], and values beyond the last
    edge land in an implicit overflow (+inf) bucket. The raw samples are
    retained alongside the bucket counts so summaries report exact
    {!Stats.percentile}-based quantiles rather than bucket-interpolated
    approximations — simulation runs are short enough that memory is not a
    concern, and exactness matters when comparing stacks whose latencies
    differ by tens of percent. *)

type t

val default_edges : float array
(** Upper edges in milliseconds: 0.05 ms up to 1 s, roughly geometric. *)

val create : ?edges:float array -> unit -> t
(** A fresh histogram. [edges] must be strictly increasing.
    @raise Invalid_argument otherwise. *)

val observe : t -> float -> unit
(** Record one sample. *)

val observe_span : t -> Time.span -> unit
(** Record a duration, converted to fractional milliseconds. *)

val count : t -> int
(** Number of samples recorded. *)

val edges : t -> float array
(** The bucket upper edges in force. *)

val buckets : t -> (float option * int) list
(** Per-bucket counts, ascending; [None] is the overflow (+inf) bucket.
    Counts are per-bucket, not cumulative. *)

val samples : t -> float list
(** All recorded samples, in recording order. *)

val absorb : into:t -> t -> unit
(** [absorb ~into src] replays [src]'s samples onto [into], in [src]'s
    recording order, leaving [src] unchanged. The two histograms must
    share bucket edges.
    @raise Invalid_argument when the edges differ. *)

val summary : t -> Stats.summary
(** Exact summary (mean, p50/p95/p99, …) over the retained samples. *)
