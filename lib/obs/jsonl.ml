open Repro_sim

(* ---- A minimal JSON value type, encoder and parser ----

   The schemas emitted here are flat-ish (objects of scalars plus one
   array of bucket pairs), but the parser handles arbitrary JSON so the
   round-trip tests and the @obs-smoke checker need no external
   dependency. Not a validating parser: it accepts exactly the grammar it
   needs and reports the first offending position otherwise. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> float_literal f
  | String s -> "\"" ^ escape_string s ^ "\""
  | List items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ escape_string k ^ "\":" ^ to_string v) fields)
    ^ "}"

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Codepoints beyond one byte are rare in our output; encode the
             low byte, enough for the control characters we escape. *)
          Buffer.add_char buf (Char.chr (code land 0xff))
        | _ -> fail "bad escape");
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at %d" !pos)
    else Ok v
  with
  | Parse_error (p, msg) -> Error (Printf.sprintf "at %d: %s" p msg)
  | Failure msg -> Error msg

let parse_lines text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec loop acc i = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse l with
      | Ok v -> loop (v :: acc) (i + 1) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" (i + 1) e))
  in
  loop [] 1 lines

(* ---- Accessors (for consumers of parsed lines) ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Some (Int i) -> Some (float_of_int i)
  | Some (Float f) -> Some f
  | _ -> None

let to_int_opt = function Some (Int i) -> Some i | _ -> None
let to_string_opt = function Some (String s) -> Some s | _ -> None

(* ---- Exporters ---- *)

let tag_fields tags = List.map (fun (k, v) -> (k, String v)) tags

let metric_lines ?(tags = []) obs =
  let tags = tag_fields tags in
  let counter (name, value) =
    Obj (tags @ [ ("type", String "counter"); ("name", String name); ("value", Int value) ])
  in
  let gauge (name, value) =
    Obj (tags @ [ ("type", String "gauge"); ("name", String name); ("value", Float value) ])
  in
  let histogram (name, h) =
    let s = Histogram.summary h in
    let bucket (upper, count) =
      List [ (match upper with Some e -> Float e | None -> Null); Int count ]
    in
    Obj
      (tags
      @ [
          ("type", String "histogram");
          ("name", String name);
          ("count", Int s.Stats.count);
          ("mean", Float s.Stats.mean);
          ("p50", Float s.Stats.p50);
          ("p95", Float s.Stats.p95);
          ("p99", Float s.Stats.p99);
          ("max", Float s.Stats.max);
          ("buckets", List (List.map bucket (Histogram.buckets h)));
        ])
  in
  List.map counter (Obs.counters obs)
  @ List.map gauge (Obs.gauges obs)
  @ List.map histogram (Obs.histograms obs)
  |> List.map to_string

(* A single marker line flags a stream hitting the [max_events] cap, so a
   truncated export can never be mistaken for a complete one. *)
let truncation_line tags ~stream ~dropped =
  if dropped = 0 then []
  else
    [
      to_string
        (Obj
           (tags
           @ [
               ("type", String "trace_truncated");
               ("stream", String stream);
               ("dropped", Int dropped);
             ]));
    ]

let trace_lines ?(tags = []) obs =
  let tags = tag_fields tags in
  List.map
    (fun (e : Obs.event) ->
      to_string
        (Obj
           (tags
           @ [
               ("type", String "trace");
               ("at_ns", Int (Time.to_ns e.Obs.at));
               ("pid", Int e.Obs.pid);
               ("layer", String (Obs.layer_name e.Obs.layer));
               ("phase", String e.Obs.phase);
               ("detail", String e.Obs.detail);
             ])))
    (Obs.events obs)
  @ truncation_line tags ~stream:"events" ~dropped:(Obs.dropped_events obs)

let span_lines ?(tags = []) obs =
  let tags = tag_fields tags in
  List.map
    (fun (s : Span.t) ->
      to_string
        (Obj
           (tags
           @ [
               ("type", String "span");
               ("sid", Int s.Span.sid);
               ("parent", Int s.Span.parent);
               ("at_ns", Int (Time.to_ns s.Span.at));
               ("pid", Int s.Span.pid);
               ("layer", String (Span.layer_name s.Span.layer));
               ("phase", String s.Span.phase);
               ("detail", String s.Span.detail);
             ])))
    (Obs.spans obs)
  @ truncation_line tags ~stream:"spans" ~dropped:(Obs.dropped_spans obs)

(* Read spans back out of a parsed JSONL trace (lines of any other type
   are ignored), for offline critical-path analysis. *)
let span_of_json j =
  match member "type" j with
  | Some (String "span") -> (
    match
      ( to_int_opt (member "sid" j),
        to_int_opt (member "parent" j),
        to_int_opt (member "at_ns" j),
        to_int_opt (member "pid" j),
        Option.bind (to_string_opt (member "layer" j)) Span.layer_of_name,
        to_string_opt (member "phase" j) )
    with
    | Some sid, Some parent, Some at_ns, Some pid, Some layer, Some phase ->
      Some
        {
          Span.sid;
          parent;
          at = Time.of_ns at_ns;
          pid;
          layer;
          phase;
          detail =
            (match to_string_opt (member "detail" j) with Some d -> d | None -> "");
        }
    | _ -> None)
  | _ -> None

let spans_of_lines lines = List.filter_map span_of_json lines

let write oc lines = List.iter (fun l -> output_string oc l; output_char oc '\n') lines
let write_metrics ?tags oc obs = write oc (metric_lines ?tags obs)
let write_trace ?tags oc obs = write oc (trace_lines ?tags obs @ span_lines ?tags obs)

let write_metrics_file ?tags path obs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_metrics ?tags oc obs)

let write_trace_file ?tags path obs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_trace ?tags oc obs)

let append_metrics_file ?tags path obs =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_metrics ?tags oc obs)

let append_trace_file ?tags path obs =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_trace ?tags oc obs)
