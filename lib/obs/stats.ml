type summary = {
  count : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let empty =
  {
    count = 0;
    mean = 0.0;
    stddev = 0.0;
    ci95 = 0.0;
    min = 0.0;
    max = 0.0;
    p50 = 0.0;
    p95 = 0.0;
    p99 = 0.0;
  }

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize samples =
  match samples with
  | [] -> empty
  | _ ->
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    let fn = float_of_int n in
    let mean = Array.fold_left ( +. ) 0.0 a /. fn in
    let var =
      if n < 2 then 0.0
      else
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
        /. (fn -. 1.0)
    in
    let stddev = sqrt var in
    {
      count = n;
      mean;
      stddev;
      ci95 = 1.96 *. stddev /. sqrt fn;
      min = a.(0);
      max = a.(n - 1);
      p50 = percentile a 0.5;
      p95 = percentile a 0.95;
      p99 = percentile a 0.99;
    }

let pp_summary ppf s =
  Fmt.pf ppf "%.3f ±%.3f (p50=%.3f, p95=%.3f, n=%d)" s.mean s.ci95 s.p50 s.p95 s.count
