open Repro_sim
module Span = Span

type layer = [ `Abcast | `Consensus | `Rbcast | `Net | `App ]

let layer_name = Span.layer_name
let all_layers : layer list = Span.all_layers

type event = { at : Time.t; pid : int; layer : layer; phase : string; detail : string }

type t = {
  enabled : bool;
  mutable now : unit -> Time.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  trace : event Trace.t;
  spans : Span.t Trace.t;
  max_events : int;
  mutable dropped_events : int;
  mutable dropped_spans : int;
  mutable next_sid : int;
  mutable ctx : int;
}

let make ~enabled ~max_events =
  let now = ref (fun () -> Time.zero) in
  {
    enabled;
    now = (fun () -> !now ());
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    trace = Trace.create_with_clock (fun () -> !now ());
    spans = Trace.create_with_clock (fun () -> !now ());
    max_events;
    dropped_events = 0;
    dropped_spans = 0;
    next_sid = 0;
    ctx = Span.no_parent;
  }

(* The shared no-op sink: disabled forever, so every instrumentation call
   reduces to one branch. A single instance is safe because a disabled
   sink never mutates its tables. *)
let noop = make ~enabled:false ~max_events:0

let create ?(max_events = 2_000_000) () = make ~enabled:true ~max_events

(* A sibling sink for one parallel task: same retention cap, same
   enabledness. [create_like noop] is [noop], so callers can split any
   sink per task and absorb the pieces back without special-casing the
   disabled path. *)
let create_like t = if t.enabled then make ~enabled:true ~max_events:t.max_events else t

let set_clock t now =
  if t.enabled then begin
    t.now <- now;
    Trace.set_clock t.trace now;
    Trace.set_clock t.spans now
  end

let of_engine engine =
  let t = create () in
  set_clock t (fun () -> Engine.now engine);
  t

let enabled t = t.enabled

(* Metrics and tracing are separable: a [max_events = 0] sink keeps full
   counters while retaining no events or spans. Hot paths that build an
   event's [detail] string ask this before formatting — with tracing off
   the string would be allocated only to be dropped inside [event]. *)
let tracing t = t.enabled && t.max_events > 0
let now t = t.now ()

(* ---- Metrics ---- *)

(* [Hashtbl.find] + [Not_found] rather than [find_opt]: the option would
   be a fresh allocation per bump, and counters are bumped on every wire
   copy when a sink is enabled. *)
let incr t ?(by = 1) name =
  if t.enabled then
    match Hashtbl.find t.counters name with
    | slot -> slot := !slot + by
    | exception Not_found -> Hashtbl.add t.counters name (ref by)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some slot -> !slot | None -> 0

let counters t =
  Hashtbl.fold (fun name slot acc -> (name, !slot) :: acc) t.counters []
  |> List.sort compare

let set_gauge t name v =
  if t.enabled then
    match Hashtbl.find t.gauges name with
    | slot -> slot := v
    | exception Not_found -> Hashtbl.add t.gauges name (ref v)

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some slot -> Some !slot | None -> None

let gauges t =
  Hashtbl.fold (fun name slot acc -> (name, !slot) :: acc) t.gauges []
  |> List.sort compare

let histogram t ?edges name =
  match Hashtbl.find t.histograms name with
  | h -> h
  | exception Not_found ->
    let h = Histogram.create ?edges () in
    Hashtbl.add t.histograms name h;
    h

let observe t ?edges name v = if t.enabled then Histogram.observe (histogram t ?edges name) v

let observe_span t ?edges name span =
  if t.enabled then Histogram.observe_span (histogram t ?edges name) span

let observe_since t ?edges name since =
  if t.enabled then
    let at = t.now () in
    (* A sink whose clock was never wired (or an event stamped before the
       clock advanced) must not crash the protocol it observes. *)
    if Time.(at >= since) then
      Histogram.observe_span (histogram t ?edges name) (Time.diff at since)

let histogram_summary t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> Some (Histogram.summary h)
  | None -> None

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- Trace ---- *)

let event t ~pid ~layer ~phase ?(detail = "") () =
  if t.enabled then begin
    if Trace.length t.trace < t.max_events then
      Trace.record t.trace { at = t.now (); pid; layer; phase; detail }
    else t.dropped_events <- t.dropped_events + 1
  end

let events t = Trace.events t.trace
let event_count t = Trace.length t.trace
let dropped_events t = t.dropped_events
let trace t = t.trace

(* ---- Causal spans ----

   Ids count up from 1 whether or not the record is retained, so a trace
   truncated by [max_events] still has globally consistent parent links
   (children of a dropped span reference an id that is simply absent). *)

let span t ?parent ~pid ~layer ~phase ?(detail = "") () =
  if not t.enabled then Span.no_parent
  else begin
    let parent = match parent with Some p -> p | None -> t.ctx in
    let sid = t.next_sid + 1 in
    t.next_sid <- sid;
    if Trace.length t.spans < t.max_events then
      Trace.record t.spans { Span.sid; parent; at = t.now (); pid; layer; phase; detail }
    else t.dropped_spans <- t.dropped_spans + 1;
    sid
  end

let span_ctx t = if t.enabled then t.ctx else Span.no_parent
let set_span_ctx t sid = if t.enabled then t.ctx <- sid

(* The ambient context is only ever consumed by [span] as a default
   parent, and [span] records nothing unless [tracing]. So on a
   metrics-only sink ([max_events = 0], which includes [noop]) the
   save/set/restore — and its [Fun.protect] frame — would be dead work
   on every delivered message; skip it. *)
let with_span_ctx t sid f =
  if t.max_events = 0 then f ()
  else begin
    let saved = t.ctx in
    t.ctx <- sid;
    Fun.protect ~finally:(fun () -> t.ctx <- saved) f
  end

let spans t = Trace.events t.spans
let span_count t = Trace.length t.spans
let dropped_spans t = t.dropped_spans

(* ---- Merging (parallel harness support) ----

   [absorb dst src] appends everything [src] recorded onto [dst] as if it
   had been recorded there directly, in [src]'s order: counters add,
   gauges overwrite (last write wins, as in a sequential schedule),
   histogram samples replay in order, trace events and spans append until
   [dst]'s cap with the excess counted as dropped. Span ids are shifted
   past every id [dst] has allocated — including ids of records the cap
   discarded — which reproduces exactly the ids a single shared sink
   would have handed out under the sequential schedule; parent links
   shift with them ([no_parent] stays put).

   The parallel harness gives each task a private sink ([create_like])
   and absorbs them back in task order, so a parallel run's JSONL export
   is byte-identical to the sequential one. *)

let absorb dst src =
  if dst.enabled && src.enabled then begin
    List.iter (fun (name, v) -> incr dst ~by:v name) (counters src);
    List.iter (fun (name, v) -> set_gauge dst name v) (gauges src);
    List.iter
      (fun (name, h) ->
        Histogram.absorb ~into:(histogram dst ~edges:(Histogram.edges h) name) h)
      (histograms src);
    dst.dropped_events <-
      dst.dropped_events + src.dropped_events
      + Trace.absorb ~limit:dst.max_events ~into:dst.trace src.trace;
    let offset = dst.next_sid in
    let shift sid = if sid = Span.no_parent then sid else sid + offset in
    dst.dropped_spans <-
      dst.dropped_spans + src.dropped_spans
      + Trace.absorb ~limit:dst.max_events
          ~map:(fun (s : Span.t) ->
            { s with Span.sid = shift s.Span.sid; parent = shift s.Span.parent })
          ~into:dst.spans src.spans;
    dst.next_sid <- dst.next_sid + src.next_sid
  end

let pp_event ppf e =
  Fmt.pf ppf "p%d %s/%s%s" (e.pid + 1) (layer_name e.layer) e.phase
    (if e.detail = "" then "" else " " ^ e.detail)

(* ---- Snapshot ---- *)

module Snap = Snapshot

type obs_data = {
  od_counters : (string * int) list; (* sorted by name *)
  od_gauges : (string * float) list;
  od_histograms : (string * Histogram.t) list;
  od_dropped_events : int;
  od_dropped_spans : int;
  od_next_sid : int;
  od_ctx : int;
}

let snapshot ?(name = "obs.sink") t =
  let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let counters = sorted (counters t) in
  let gauges = sorted (gauges t) in
  let histograms = sorted (histograms t) in
  Snap.make ~name ~version:1
    ~data:
      (Snap.pack
         {
           od_counters = counters;
           od_gauges = gauges;
           od_histograms = histograms;
           od_dropped_events = t.dropped_events;
           od_dropped_spans = t.dropped_spans;
           od_next_sid = t.next_sid;
           od_ctx = t.ctx;
         })
    [
      ("enabled", Snap.Bool t.enabled);
      ("counters", Snap.Int (List.length counters));
      ("gauges", Snap.Int (List.length gauges));
      ("histograms", Snap.Int (List.length histograms));
      ("trace_events", Snap.Int (Trace.length t.trace));
      ("spans", Snap.Int (Trace.length t.spans));
      ("dropped_events", Snap.Int t.dropped_events);
      ("dropped_spans", Snap.Int t.dropped_spans);
      ("next_sid", Snap.Int t.next_sid);
      ("ctx", Snap.Int t.ctx);
    ]

let restore ?(name = "obs.sink") t s =
  Snap.check s ~name ~version:1;
  let (d : obs_data) = Snap.unpack_data s in
  Hashtbl.reset t.counters;
  List.iter (fun (k, v) -> Hashtbl.add t.counters k (ref v)) d.od_counters;
  Hashtbl.reset t.gauges;
  List.iter (fun (k, v) -> Hashtbl.add t.gauges k (ref v)) d.od_gauges;
  Hashtbl.reset t.histograms;
  List.iter (fun (k, h) -> Hashtbl.add t.histograms k h) d.od_histograms;
  t.dropped_events <- d.od_dropped_events;
  t.dropped_spans <- d.od_dropped_spans;
  t.next_sid <- d.od_next_sid;
  t.ctx <- d.od_ctx
(* Trace and span buffers (and the clock closure) ride the world blob. *)
