open Repro_sim

(** Unified observability sink: per-module metrics and phase-tagged
    protocol tracing.

    One [Obs.t] is shared by every layer of a simulated group. Protocol
    modules receive it as an optional argument defaulting to {!noop}, so
    instrumentation costs a single branch when observation is off and
    existing call sites need no change.

    Three metric families, all keyed by dotted names:

    - {e counters} — monotone event counts (messages per layer, acks,
      retransmissions, …);
    - {e gauges} — last-written scalars (run-level summaries such as
      instances decided in the measurement window);
    - {e histograms} — fixed-bucket latency distributions with exact
      p50/p95/p99 (see {!Histogram}).

    Plus a structured {e trace}: one {!event} per protocol step, stamped
    with the simulated clock, the process, the protocol {!layer} and a
    free-form phase tag ("propose", "ack", "decide", …).

    All timestamps come from the engine's virtual clock through the [now]
    closure wired by {!set_clock} (done by [Group.create]); recording never
    schedules events, charges CPU cost, or consumes randomness, so an
    instrumented run is event-for-event identical to an uninstrumented
    one.

    PR 3 adds a fourth stream: {e causal spans} ({!Span}) — timestamped
    protocol steps with parent links that follow one application message
    across module boundaries, recorded with {!span} and stitched together
    by the ambient context ({!span_ctx}/{!set_span_ctx}) that the network
    layer maintains around each message handler. *)

module Span = Span

type layer = [ `Abcast | `Consensus | `Rbcast | `Net | `App ]
(** The protocol layer an event or message belongs to: the three
    microprotocols of the modular stack (the monolithic ABcast+ module
    counts as [`Abcast]), the network/transport below them, and the
    application above. *)

val layer_name : layer -> string
(** Lower-case name as used in metric keys and JSONL ("abcast", …). *)

val all_layers : layer list

type event = {
  at : Time.t;  (** Simulated instant (never wall time). *)
  pid : int;  (** Process the event happened at. *)
  layer : layer;
  phase : string;  (** Protocol phase, e.g. "propose", "ack", "decide". *)
  detail : string;  (** Free-form context, e.g. "i3 r1". *)
}

type t

val noop : t
(** The shared disabled sink: every recording call is a no-op. This is the
    default everywhere, so building a group without an explicit [Obs.t]
    observes nothing and costs (almost) nothing. *)

val create : ?max_events:int -> unit -> t
(** A fresh enabled sink. Its clock reads {!Time.zero} until {!set_clock}
    is called. At most [max_events] (default 2,000,000) trace events are
    retained; later events are counted in {!dropped_events} instead. *)

val of_engine : Engine.t -> t
(** [create ()] with the clock already wired to the engine. *)

val create_like : t -> t
(** A fresh sink with the same retention cap and enabledness: an enabled
    sink yields a fresh enabled sibling, {!noop} yields {!noop}. The
    parallel harness gives each task [create_like shared] as its private
    sink and merges them back with {!absorb}. *)

val absorb : t -> t -> unit
(** [absorb dst src] appends everything [src] recorded onto [dst], in
    [src]'s recording order: counters add, gauges overwrite, histogram
    samples replay, trace events and spans append (respecting [dst]'s
    [max_events] cap, excess counted as dropped), and span ids — parents
    included — are renumbered past every id [dst] has allocated, so
    absorbing per-task sinks in task order reproduces byte-for-byte the
    stream a single shared sink would have recorded sequentially. [src]
    is left unchanged; no-op unless both sinks are enabled. *)

val set_clock : t -> (unit -> Time.t) -> unit
(** Wire the clock used to stamp events and compute spans. [Group.create]
    calls this with the group engine's [now]; no-op on {!noop}. *)

val enabled : t -> bool
(** [false] exactly for {!noop}. Guard metric updates on this at hot call
    sites. *)

val tracing : t -> bool
(** Enabled {e and} retaining trace events ([max_events > 0]). Guard
    expensive per-event work — detail-string formatting, span creation —
    on this rather than {!enabled}: a metrics-only sink
    ([create ~max_events:0]) keeps counters exact while skipping the
    event/span machinery entirely, which is what makes it cheap enough
    for the sharded million-client cells. *)

val now : t -> Time.t
(** The sink's current clock reading. *)

(** {1 Counters} *)

val incr : t -> ?by:int -> string -> unit
val counter_value : t -> string -> int
(** 0 if never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float option
val gauges : t -> (string * float) list

(** {1 Histograms} *)

val observe : t -> ?edges:float array -> string -> float -> unit
(** Record a sample in the named histogram, created on first use with
    [edges] (default {!Histogram.default_edges}, milliseconds). *)

val observe_span : t -> ?edges:float array -> string -> Time.span -> unit
(** {!observe} of a duration as fractional milliseconds. *)

val observe_since : t -> ?edges:float array -> string -> Time.t -> unit
(** Record [now - since] in milliseconds. Silently skipped when the clock
    has not reached [since] (e.g. on a sink whose clock was never wired). *)

val histogram_summary : t -> string -> Stats.summary option
val histograms : t -> (string * Histogram.t) list

(** {1 Trace} *)

val event : t -> pid:int -> layer:layer -> phase:string -> ?detail:string -> unit -> unit
(** Record one structured trace event at the current instant. *)

val events : t -> event list
(** All events, oldest first. *)

val event_count : t -> int

val dropped_events : t -> int
(** Events discarded after [max_events] was reached. *)

val trace : t -> event Trace.t
(** The underlying {!Trace} recorder (the generic [Sim.Trace] generalised
    by these structured events), for [Trace.find_last]-style assertions. *)

(** {1 Causal spans}

    See {!Span} for the data model. The protocol rule: record a span at
    each step of interest; its parent defaults to the sink's current
    context, which the network layer sets to the receive-span around each
    delivered message handler (and resets afterwards), so within-handler
    steps chain to their trigger automatically. Asynchronous hand-offs
    (CPU submissions, scheduled deliveries) capture the context
    explicitly and pass it as [?parent]. *)

val span :
  t ->
  ?parent:int ->
  pid:int ->
  layer:layer ->
  phase:string ->
  ?detail:string ->
  unit ->
  int
(** Record one causal span at the current instant and return its fresh
    [sid] ([Span.no_parent] on a disabled sink). [parent] defaults to
    {!span_ctx}. Ids keep advancing after the [max_events] cap so parent
    links stay globally consistent; capped-out records are counted in
    {!dropped_spans} instead of retained. *)

val span_ctx : t -> int
(** The ambient "current span" used as default parent; [Span.no_parent]
    when no handler is executing (or on a disabled sink). *)

val set_span_ctx : t -> int -> unit
(** Set the ambient context (no-op on a disabled sink). The network layer
    brackets handler invocations with this; protocol code normally never
    calls it. *)

val with_span_ctx : t -> int -> (unit -> 'a) -> 'a
(** Run a thunk with the ambient context set, restoring it afterwards. *)

val spans : t -> Span.t list
(** All retained spans, oldest first. *)

val span_count : t -> int

val dropped_spans : t -> int
(** Spans discarded after [max_events] was reached. *)

val pp_event : event Fmt.t
(** Prints [p<pid+1> <layer>/<phase> <detail>], e.g. [p1 consensus/propose i0 r1]. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["obs.sink"]. Carries counters, gauges,
    histograms, span-id allocator and ambient span context; the trace and
    span buffers (closures over the clock) ride the world blob. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
