open Repro_sim

type layer = [ `Abcast | `Consensus | `Rbcast | `Net | `App ]

let layer_name = function
  | `Abcast -> "abcast"
  | `Consensus -> "consensus"
  | `Rbcast -> "rbcast"
  | `Net -> "net"
  | `App -> "app"

let layer_of_name = function
  | "abcast" -> Some `Abcast
  | "consensus" -> Some `Consensus
  | "rbcast" -> Some `Rbcast
  | "net" -> Some `Net
  | "app" -> Some `App
  | _ -> None

let all_layers : layer list = [ `Abcast; `Consensus; `Rbcast; `Net; `App ]

type t = {
  sid : int;
  parent : int;
  at : Time.t;
  pid : int;
  layer : layer;
  phase : string;
  detail : string;
}

let no_parent = 0
let is_root s = s.parent = no_parent

let index spans =
  let tbl = Hashtbl.create (max 16 (2 * List.length spans)) in
  List.iter (fun s -> Hashtbl.replace tbl s.sid s) spans;
  tbl

(* Walk the parent links from [s] to its root, oldest first. Ids are
   assigned in causal order, so a well-formed chain has strictly
   decreasing parents; the guard makes a corrupted trace terminate
   instead of looping. *)
let chain tbl s =
  let rec up acc s =
    if is_root s then s :: acc
    else
      match Hashtbl.find_opt tbl s.parent with
      | Some p when p.sid < s.sid -> up (s :: acc) p
      | Some _ | None -> s :: acc
  in
  up [] s

let orphans spans =
  let tbl = index spans in
  List.filter (fun s -> (not (is_root s)) && not (Hashtbl.mem tbl s.parent)) spans

let pp ppf s =
  Fmt.pf ppf "#%d<-#%d p%d %s/%s%s" s.sid s.parent (s.pid + 1) (layer_name s.layer)
    s.phase
    (if s.detail = "" then "" else " " ^ s.detail)
