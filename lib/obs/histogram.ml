open Repro_sim

type t = {
  edges : float array;
  bucket_counts : int array; (* length = edges + 1; last slot is overflow *)
  mutable samples : float array;
  mutable count : int;
}

(* Geometric-ish latency edges in milliseconds, spanning sub-CPU-cost
   events to badly stalled instances. *)
let default_edges =
  [| 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 1000.0 |]

let create ?(edges = default_edges) () =
  let edges = Array.copy edges in
  Array.iteri
    (fun i e ->
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Histogram.create: edges must be strictly increasing")
    edges;
  {
    edges;
    bucket_counts = Array.make (Array.length edges + 1) 0;
    samples = Array.make 64 0.0;
    count = 0;
  }

let bucket_index t v =
  (* First bucket whose upper edge admits v; the trailing slot catches
     everything past the last edge. *)
  let n = Array.length t.edges in
  let rec scan i = if i >= n || v <= t.edges.(i) then i else scan (i + 1) in
  scan 0

let observe t v =
  t.bucket_counts.(bucket_index t v) <- t.bucket_counts.(bucket_index t v) + 1;
  if t.count = Array.length t.samples then begin
    let bigger = Array.make (2 * t.count) 0.0 in
    Array.blit t.samples 0 bigger 0 t.count;
    t.samples <- bigger
  end;
  t.samples.(t.count) <- v;
  t.count <- t.count + 1

let observe_span t span = observe t (Time.span_to_ms_float span)
let count t = t.count
let edges t = Array.copy t.edges

let buckets t =
  let upper i =
    if i < Array.length t.edges then Some t.edges.(i) else None (* +inf *)
  in
  Array.to_list (Array.mapi (fun i c -> (upper i, c)) t.bucket_counts)

let samples t = Array.to_list (Array.sub t.samples 0 t.count)
let summary t = Stats.summarize (samples t)

let absorb ~into src =
  if
    not
      (Array.length into.edges = Array.length src.edges
      && Array.for_all2 (fun a b -> Float.equal a b) into.edges src.edges)
  then invalid_arg "Histogram.absorb: bucket edges differ";
  List.iter (observe into) (samples src)
