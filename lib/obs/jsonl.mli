(** JSONL export of an {!Obs} sink, plus the minimal JSON codec used to
    read it back.

    Two line-oriented schemas, one JSON object per line, both optionally
    prefixed with caller-supplied string [tags] (e.g.
    [("stack", "modular")]) so several runs can share one file:

    Metrics ({!write_metrics}) — one line per metric:
    {v
{"type":"counter","name":"net.msgs.consensus","value":124}
{"type":"gauge","name":"run.instances","value":31.0}
{"type":"histogram","name":"consensus.decide_ms","count":31,"mean":1.93,
 "p50":1.87,"p95":2.4,"p99":2.9,"max":3.1,"buckets":[[0.05,0],…,[null,0]]}
    v}
    Histogram buckets are [[upper_edge, count]] pairs, per-bucket (not
    cumulative) counts, with [null] as the +inf overflow edge.

    Trace ({!write_trace}) — one line per {!Obs.event}, followed by one
    line per causal {!Span.t}:
    {v
{"type":"trace","at_ns":2514836,"pid":0,"layer":"consensus","phase":"propose","detail":"i3 r1"}
{"type":"span","sid":17,"parent":12,"at_ns":2514836,"pid":0,"layer":"consensus","phase":"propose","detail":"i3 r1"}
    v}
    If either stream hit the sink's [max_events] cap, a single marker line
    [{"type":"trace_truncated","stream":"events"|"spans","dropped":K}]
    closes it, so a truncated export is self-describing.

    The parser accepts general JSON (objects, arrays, scalars), enough for
    the round-trip tests and the [@obs-smoke] checker without an external
    dependency. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact (single-line) rendering. *)

val parse : string -> (json, string) result
(** Parse one JSON value; [Error] carries a position-tagged message. *)

val parse_lines : string -> (json list, string) result
(** Parse a JSONL document: one value per non-blank line; fails on the
    first unparsable line. *)

val member : string -> json -> json option
(** Field lookup in an [Obj]; [None] on other variants. *)

val to_float_opt : json option -> float option
(** Numeric field as float ([Int] widens); [None] otherwise. *)

val to_int_opt : json option -> int option
val to_string_opt : json option -> string option

val metric_lines : ?tags:(string * string) list -> Obs.t -> string list
(** The metrics schema, one rendered line per counter, gauge and
    histogram (counters first, each family sorted by name). *)

val trace_lines : ?tags:(string * string) list -> Obs.t -> string list
(** The trace schema, one rendered line per event, oldest first, plus the
    truncation marker when events were dropped. *)

val span_lines : ?tags:(string * string) list -> Obs.t -> string list
(** One rendered line per causal span, oldest first, plus the truncation
    marker when spans were dropped. *)

val span_of_json : json -> Span.t option
(** Decode one parsed line back into a span; [None] for lines of any
    other type (metrics, flat trace events, markers). *)

val spans_of_lines : json list -> Span.t list
(** All spans in a parsed JSONL document, in file order. *)

val write_metrics : ?tags:(string * string) list -> out_channel -> Obs.t -> unit
val write_trace : ?tags:(string * string) list -> out_channel -> Obs.t -> unit

val write_metrics_file : ?tags:(string * string) list -> string -> Obs.t -> unit
(** Create/truncate [path] and write the metrics lines. *)

val write_trace_file : ?tags:(string * string) list -> string -> Obs.t -> unit

val append_metrics_file : ?tags:(string * string) list -> string -> Obs.t -> unit
(** Append to [path] (created if missing) — used to collect several tagged
    runs in one file. *)

val append_trace_file : ?tags:(string * string) list -> string -> Obs.t -> unit
