open Repro_sim
open Repro_net

(** Adaptive failure detector after Chen, Toueg & Aguilera (TC 2002).

    Like {!Heartbeat_fd}, every process sends periodic heartbeats; unlike
    it, the suspicion deadline is not a fixed timeout but a prediction:
    the detector keeps a sliding window of the last [window] heartbeat
    arrival times, estimates the next arrival as the window average plus
    one period, and adds a safety margin α. A peer is suspected when the
    clock passes [estimated next arrival + α]; a later heartbeat retracts
    the suspicion and the estimate adapts.

    Compared to the fixed-timeout detector, the adaptive one reacts faster
    on stable links (the margin can be much smaller than a conservative
    fixed timeout) while still converging on jittery ones — the classical
    QoS trade-off studied in the paper's companion literature [25].

    Transport-agnostic, same contract as {!Heartbeat_fd}. *)

type t

type config = {
  period : Time.span;  (** Interval between heartbeat rounds. *)
  margin : Time.span;  (** Safety margin α added to the predicted arrival. *)
  window : int;  (** Number of past arrivals used for prediction. *)
}

val default_config : config
(** 10 ms period, 10 ms margin, window of 16 arrivals. *)

val create :
  Engine.t -> config -> n:int -> me:Pid.t -> send_heartbeat:(dst:Pid.t -> unit) -> t

val fd : t -> Fd.t
(** The service view consumed by protocols. *)

val on_heartbeat : t -> src:Pid.t -> unit
(** Feed one received heartbeat. *)

val stop : t -> unit
(** Stop heartbeating and monitoring. *)

val suspects : t -> Pid.t list
(** Current suspect list, ascending. *)

val predicted_deadline : t -> Pid.t -> Time.t option
(** The instant after which the peer will be suspected if silent — the
    current prediction plus margin ([None] for self or before any
    arrival). Exposed for tests and calibration. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["fd.chen.p<me>"]. Carries per-peer arrival
    windows, predicted deadlines and suspicion flags; watchdog timers ride
    the world blob. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
