open Repro_net

type t = {
  mutable suspected : Pid.t list;
  mutable listeners : (Pid.t -> unit) list;
}

let create () = { suspected = []; listeners = [] }

let fd t =
  Fd.make
    ~is_suspected:(fun p -> List.mem p t.suspected)
    ~add_listener:(fun f -> t.listeners <- f :: t.listeners)

let suspect t p =
  if not (List.mem p t.suspected) then begin
    t.suspected <- p :: t.suspected;
    List.iter (fun f -> f p) (List.rev t.listeners)
  end

let restore t p = t.suspected <- List.filter (fun q -> q <> p) t.suspected
let suspects t = List.sort Pid.compare t.suspected

(* ---- Snapshot ---- *)

module Snap = Repro_sim.Snapshot

let snapshot ?(name = "fd.oracle") t =
  Snap.make ~name ~version:1
    [
      ( "suspected",
        Snap.List (List.map (fun p -> Snap.Int (p : Pid.t :> int)) (suspects t)) );
    ]

let restore_snapshot ?(name = "fd.oracle") t s =
  Snap.check s ~name ~version:1;
  match Snap.find s "suspected" with
  | Snap.List pids ->
    t.suspected <-
      List.rev_map
        (function
          | Snap.Int p -> (p : Pid.t)
          | _ -> raise (Snap.Codec_error (name ^ ": suspected entries must be ints")))
        pids
  | _ -> raise (Snap.Codec_error (name ^ ": suspected must be a list"))
(* Suspicion listeners ride the world blob. *)
