open Repro_net

(** Scripted failure detector for tests.

    Suspicions are injected and retracted explicitly by the test, so
    scenarios like "suspect the coordinator exactly between its proposal and
    the acks" are expressed directly. Starts with an empty suspect list. *)

type t

val create : unit -> t

val fd : t -> Fd.t
(** The service view consumed by protocols. *)

val suspect : t -> Pid.t -> unit
(** Add a process to the suspect list and fire listeners. Idempotent. *)

val restore : t -> Pid.t -> unit
(** Remove a process from the suspect list. Idempotent. *)

val suspects : t -> Pid.t list
(** Current suspect list, ascending. *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["fd.oracle"]: the sorted suspect list. *)

val restore_snapshot : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** Named to leave [restore] (un-suspect a process) untouched.
    @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
