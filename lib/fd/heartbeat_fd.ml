open Repro_sim
open Repro_net

type config = {
  period : Time.span;
  initial_timeout : Time.span;
  timeout_increment : Time.span;
  timeout_decay : Time.span;
}

let default_config =
  {
    period = Time.span_ms 10;
    initial_timeout = Time.span_ms 50;
    timeout_increment = Time.span_ms 50;
    timeout_decay = Time.span_ms 1;
  }

type peer = {
  pid : Pid.t;
  mutable timeout : Time.span;
  mutable suspected : bool;
  mutable watchdog : Engine.timer option;
}

type t = {
  engine : Engine.t;
  config : config;
  me : Pid.t;
  peers : peer array; (* indexed by pid; slot [me] is unused *)
  send_heartbeat : dst:Pid.t -> unit;
  mutable listeners : (Pid.t -> unit) list;
  mutable stopped : bool;
}

let notify t p = List.iter (fun f -> f p) (List.rev t.listeners)

let rec arm_watchdog t peer =
  peer.watchdog <-
    Some
      (Engine.schedule_after t.engine peer.timeout (fun () ->
           if not t.stopped && not peer.suspected then begin
             peer.suspected <- true;
             notify t peer.pid
           end))

and heartbeat_received t peer =
  (match peer.watchdog with
  | Some timer -> Engine.cancel t.engine timer
  | None -> ());
  if peer.suspected then begin
    (* False suspicion: be more patient with this peer from now on. *)
    peer.suspected <- false;
    peer.timeout <- Time.span_add peer.timeout t.config.timeout_increment
  end
  else begin
    (* Healthy heartbeat: decay a grown timeout back toward the configured
       floor, so a transient partition does not permanently inflate
       crash-detection latency. *)
    let floor_ns = Time.span_to_ns t.config.initial_timeout in
    let cur_ns = Time.span_to_ns peer.timeout in
    if cur_ns > floor_ns then
      peer.timeout <-
        Time.span_ns (max floor_ns (cur_ns - Time.span_to_ns t.config.timeout_decay))
  end;
  arm_watchdog t peer

let rec heartbeat_round t =
  if not t.stopped then begin
    Array.iter
      (fun peer -> if peer.pid <> t.me then t.send_heartbeat ~dst:peer.pid)
      t.peers;
    ignore (Engine.schedule_after t.engine t.config.period (fun () -> heartbeat_round t))
  end

let create engine config ~n ~me ~send_heartbeat =
  let peer pid = { pid; timeout = config.initial_timeout; suspected = false; watchdog = None } in
  let t =
    {
      engine;
      config;
      me;
      peers = Array.init n peer;
      send_heartbeat;
      listeners = [];
      stopped = false;
    }
  in
  Array.iter (fun peer -> if peer.pid <> me then arm_watchdog t peer) t.peers;
  heartbeat_round t;
  t

let fd t =
  Fd.make
    ~is_suspected:(fun p -> p <> t.me && t.peers.(p).suspected)
    ~add_listener:(fun f -> t.listeners <- f :: t.listeners)

let on_heartbeat t ~src = if not t.stopped && src <> t.me then heartbeat_received t t.peers.(src)
let stop t = t.stopped <- true

let current_timeout t p = t.peers.(p).timeout

let suspects t =
  Array.to_list t.peers
  |> List.filter_map (fun peer ->
         if peer.pid <> t.me && peer.suspected then Some peer.pid else None)
  |> List.sort Pid.compare

(* ---- Snapshot ---- *)

module Snap = Snapshot

type hb_data = { hd_peers : peer array; hd_stopped : bool }

let snapshot ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "fd.heartbeat.p%d" (t.me + 1)
  in
  let peers = Array.map (fun p -> { p with watchdog = None }) t.peers in
  Snap.make ~name ~version:1
    ~data:(Snap.pack { hd_peers = peers; hd_stopped = t.stopped })
    [
      ("stopped", Snap.Bool t.stopped);
      ( "suspected",
        Snap.List
          (Array.to_list (Array.map (fun p -> Snap.Bool p.suspected) t.peers)) );
      ( "timeout_ns",
        Snap.List
          (Array.to_list
             (Array.map (fun p -> Snap.Int (Time.span_to_ns p.timeout)) t.peers)) );
    ]

let restore ?name t s =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "fd.heartbeat.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  let (d : hb_data) = Snap.unpack_data s in
  if Array.length d.hd_peers <> Array.length t.peers then
    raise (Snap.Codec_error (name ^ ": snapshot taken with a different group size"));
  Array.iteri
    (fun i p ->
      let live = t.peers.(i) in
      live.timeout <- p.timeout;
      live.suspected <- p.suspected)
    d.hd_peers;
  t.stopped <- d.hd_stopped
(* Heartbeat loop, watchdog timers and suspicion listeners ride the world blob. *)
