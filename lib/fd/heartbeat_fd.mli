open Repro_sim
open Repro_net

(** Heartbeat-based eventually-perfect failure detector (◇P).

    Every process periodically sends a heartbeat to every other process. A
    process [q] is suspected when no heartbeat from [q] arrives within its
    current timeout. On a false suspicion — a heartbeat from a suspected
    process arrives — [q] is unsuspected and its timeout increased, so in
    any run with eventually-timely links every correct process eventually
    stops being suspected (eventual strong accuracy) while every crashed
    process is eventually suspected forever (strong completeness).

    Transport-agnostic: the owner supplies [send_heartbeat] and feeds
    incoming heartbeats through {!on_heartbeat}, so FD traffic shares the
    stack's wire type, its CPU and its NIC. *)

type t

type config = {
  period : Time.span;  (** Interval between heartbeat rounds. *)
  initial_timeout : Time.span;  (** Starting silence threshold per peer. *)
  timeout_increment : Time.span;
      (** Added to a peer's threshold after each false suspicion. *)
  timeout_decay : Time.span;
      (** Subtracted from a grown threshold on each healthy heartbeat,
          never below [initial_timeout]. Makes the detector recover its
          detection latency after a transient partition instead of staying
          permanently pessimistic. [span_zero] disables decay. *)
}

val default_config : config
(** 10 ms period, 50 ms initial timeout, 50 ms increment, 1 ms decay —
    snappy enough for tests, far above any good-run message delay; a
    timeout grown by one false suspicion decays back to the floor after
    half a second of healthy heartbeats. *)

val create :
  Engine.t ->
  config ->
  n:int ->
  me:Pid.t ->
  send_heartbeat:(dst:Pid.t -> unit) ->
  t
(** Start heartbeating and monitoring all peers. Monitoring starts with a
    fresh grace period for every peer. *)

val fd : t -> Fd.t
(** The service view consumed by protocols. *)

val on_heartbeat : t -> src:Pid.t -> unit
(** Feed one received heartbeat into the detector. *)

val stop : t -> unit
(** Stop sending heartbeats and stop updating suspicions (used when the
    owning process crashes). *)

val suspects : t -> Pid.t list
(** Current suspect list, ascending (for tests and introspection). *)

val current_timeout : t -> Pid.t -> Time.span
(** The silence threshold currently applied to one peer (for tests and
    introspection). *)

val snapshot : ?name:string -> t -> Repro_sim.Snapshot.section
(** Default section name ["fd.heartbeat.p<me>"]. Carries per-peer adaptive
    timeouts and suspicion flags; the heartbeat loop and watchdog timers
    ride the world blob. *)

val restore : ?name:string -> t -> Repro_sim.Snapshot.section -> unit
(** @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
