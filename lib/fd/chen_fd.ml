open Repro_sim
open Repro_net

type config = { period : Time.span; margin : Time.span; window : int }

let default_config =
  { period = Time.span_ms 10; margin = Time.span_ms 10; window = 16 }

type peer = {
  pid : Pid.t;
  arrivals : int array; (* ring buffer of arrival instants, ns *)
  mutable count : int; (* arrivals recorded (caps at window) *)
  mutable next_slot : int;
  mutable suspected : bool;
  mutable deadline : Time.t option;
  mutable watchdog : Engine.timer option;
}

type t = {
  engine : Engine.t;
  config : config;
  me : Pid.t;
  peers : peer array;
  send_heartbeat : dst:Pid.t -> unit;
  mutable listeners : (Pid.t -> unit) list;
  mutable stopped : bool;
}

let notify t p = List.iter (fun f -> f p) (List.rev t.listeners)

(* Chen's estimator: EA = mean of the last k arrival instants
   + (k+1)/2 * period … simplified to "mean arrival + period relative to
   the window centre". With a full window of perfectly periodic arrivals
   this predicts exactly the next beat. *)
let predict t peer =
  if peer.count = 0 then None
  else begin
    let k = min peer.count t.config.window in
    let sum = ref 0 in
    for i = 0 to k - 1 do
      sum := !sum + peer.arrivals.(i)
    done;
    let mean = !sum / k in
    (* arrivals in the window span (k-1) periods around their mean; the
       next arrival is (k+1)/2 periods after the mean. *)
    let period_ns = Time.span_to_ns t.config.period in
    let next = mean + ((k + 1) * period_ns / 2) in
    Some (Time.of_ns (next + Time.span_to_ns t.config.margin))
  end

let cancel_watchdog t peer =
  match peer.watchdog with
  | Some timer ->
    Engine.cancel t.engine timer;
    peer.watchdog <- None
  | None -> ()

let rec arm_watchdog t peer =
  cancel_watchdog t peer;
  match peer.deadline with
  | None -> ()
  | Some deadline ->
    let now = Engine.now t.engine in
    let fire_at = Time.max deadline now in
    peer.watchdog <-
      Some
        (Engine.schedule_at t.engine fire_at (fun () ->
             if not t.stopped then check_deadline t peer))

and check_deadline t peer =
  match peer.deadline with
  | Some deadline when Time.(Engine.now t.engine >= deadline) ->
    if not peer.suspected then begin
      peer.suspected <- true;
      notify t peer.pid
    end
  | Some _ -> arm_watchdog t peer
  | None -> ()

let heartbeat_received t peer =
  let now = Time.to_ns (Engine.now t.engine) in
  if peer.suspected then begin
    (* Retraction after a silence gap: the window contents predate the gap
       and would predict a deadline already in the past, re-suspecting the
       peer instantly. Restart the estimate from this arrival. *)
    peer.suspected <- false;
    peer.count <- 0;
    peer.next_slot <- 0
  end;
  peer.arrivals.(peer.next_slot) <- now;
  peer.next_slot <- (peer.next_slot + 1) mod t.config.window;
  if peer.count < t.config.window then peer.count <- peer.count + 1;
  peer.deadline <- predict t peer;
  arm_watchdog t peer

let rec heartbeat_round t =
  if not t.stopped then begin
    Array.iter
      (fun peer -> if peer.pid <> t.me then t.send_heartbeat ~dst:peer.pid)
      t.peers;
    ignore (Engine.schedule_after t.engine t.config.period (fun () -> heartbeat_round t))
  end

let create engine config ~n ~me ~send_heartbeat =
  if config.window < 1 then invalid_arg "Chen_fd.create: window must be >= 1";
  let peer pid =
    {
      pid;
      arrivals = Array.make config.window 0;
      count = 0;
      next_slot = 0;
      suspected = false;
      deadline = None;
      watchdog = None;
    }
  in
  let t =
    {
      engine;
      config;
      me;
      peers = Array.init n peer;
      send_heartbeat;
      listeners = [];
      stopped = false;
    }
  in
  (* Grace period before the first prediction exists: treat "no arrival
     yet" by seeding a deadline one period + margin from now. *)
  Array.iter
    (fun peer ->
      if peer.pid <> me then begin
        peer.deadline <-
          Some
            (Time.add
               (Time.add (Engine.now engine) config.period)
               (Time.span_add config.margin config.margin));
        arm_watchdog t peer
      end)
    t.peers;
  heartbeat_round t;
  t

let fd t =
  Fd.make
    ~is_suspected:(fun p -> p <> t.me && t.peers.(p).suspected)
    ~add_listener:(fun f -> t.listeners <- f :: t.listeners)

let on_heartbeat t ~src = if (not t.stopped) && src <> t.me then heartbeat_received t t.peers.(src)
let stop t = t.stopped <- true

let suspects t =
  Array.to_list t.peers
  |> List.filter_map (fun peer ->
         if peer.pid <> t.me && peer.suspected then Some peer.pid else None)
  |> List.sort Pid.compare

let predicted_deadline t p = if p = t.me then None else t.peers.(p).deadline

(* ---- Snapshot ---- *)

module Snap = Snapshot

type ch_data = { cd_peers : peer array; cd_stopped : bool }

let snapshot ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "fd.chen.p%d" (t.me + 1)
  in
  let peers = Array.map (fun p -> { p with watchdog = None }) t.peers in
  Snap.make ~name ~version:1
    ~data:(Snap.pack { cd_peers = peers; cd_stopped = t.stopped })
    [
      ("stopped", Snap.Bool t.stopped);
      ( "suspected",
        Snap.List
          (Array.to_list (Array.map (fun p -> Snap.Bool p.suspected) t.peers)) );
      ( "arrivals",
        Snap.List
          (Array.to_list (Array.map (fun p -> Snap.Int p.count) t.peers)) );
    ]

let restore ?name t s =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "fd.chen.p%d" (t.me + 1)
  in
  Snap.check s ~name ~version:1;
  let (d : ch_data) = Snap.unpack_data s in
  if Array.length d.cd_peers <> Array.length t.peers then
    raise (Snap.Codec_error (name ^ ": snapshot taken with a different group size"));
  Array.iteri
    (fun i p ->
      let live = t.peers.(i) in
      Array.blit p.arrivals 0 live.arrivals 0 (Array.length live.arrivals);
      live.count <- p.count;
      live.next_slot <- p.next_slot;
      live.suspected <- p.suspected;
      live.deadline <- p.deadline)
    d.cd_peers;
  t.stopped <- d.cd_stopped
(* Heartbeat loop, watchdog timers and suspicion listeners ride the world blob. *)
