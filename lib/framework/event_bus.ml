open Repro_sim

type t = {
  cpu : Cpu.t;
  dispatch_cost : Time.span;
  mutable emissions : int;
}

type 'a port = {
  bus : t;
  name : string;
  mutable subscribers : ('a -> unit) list; (* subscription order *)
}

let create ~cpu ~dispatch_cost = { cpu; dispatch_cost; emissions = 0 }
let port bus name = { bus; name; subscribers = [] }

(* Append at subscribe time (cold) so [emit] (hot, per message) iterates
   the list as stored instead of reversing it per emission. *)
let subscribe port f = port.subscribers <- port.subscribers @ [ f ]

let emit port event =
  let bus = port.bus in
  bus.emissions <- bus.emissions + 1;
  Cpu.charge bus.cpu bus.dispatch_cost;
  List.iter (fun f -> f event) port.subscribers

let emissions t = t.emissions
let port_name port = port.name

(* ---- Snapshot ---- *)

let snapshot ~name t =
  Snapshot.make ~name ~version:1 [ ("emissions", Snapshot.Int t.emissions) ]

let restore ~name t s =
  Snapshot.check s ~name ~version:1;
  t.emissions <- Snapshot.get_int s "emissions"
(* Port subscriber lists are closures wired at mount time; they ride the
   world blob. *)
