open Repro_sim

(** Typed event bus for microprotocol composition.

    Models the event-based binding of Cactus-style protocol frameworks
    (§5.3.1 of the paper: the experiments ran Fortika modules composed with
    Cactus). Modules interact only by emitting on and subscribing to named
    ports; each emission crosses a module boundary and is charged a fixed
    dispatch cost to the owning CPU — the {e framework} share of the
    modularity overhead, as opposed to the {e algorithmic} share the paper
    focuses on. The cost is a parameter so it can be ablated to zero. *)

type t

type 'a port
(** A typed, named connection point carrying events of type ['a]. *)

val create : cpu:Cpu.t -> dispatch_cost:Time.span -> t
(** A bus whose emissions charge [dispatch_cost] to [cpu]. *)

val port : t -> string -> 'a port
(** A fresh port on the bus. The name is for diagnostics only. *)

val subscribe : 'a port -> ('a -> unit) -> unit
(** Add a handler. Handlers run in subscription order on each emission. *)

val emit : 'a port -> 'a -> unit
(** Charge the dispatch cost and deliver the event to every subscriber,
    synchronously. An emission with no subscribers still pays the cost. *)

val emissions : t -> int
(** Total events emitted on all ports of this bus. *)

val port_name : 'a port -> string
(** The diagnostic name given at creation. *)

val snapshot : name:string -> t -> Snapshot.section
(** Boundary-crossing counter; subscriber closures ride the world blob. *)

val restore : name:string -> t -> Snapshot.section -> unit
(** @raise Snapshot.Codec_error on mismatch. *)
