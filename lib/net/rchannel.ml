open Repro_sim
module Obs = Repro_obs.Obs

type 'msg wire = Data of { seq : int; payload : 'msg } | Ack of { cumulative : int }

(* Frames are pooled: a slot's frame is mutated in place when the window
   wraps back over it, so steady-state sends allocate nothing. A popped
   frame keeps its last payload reference until the slot is reused — the
   retention is bounded by the ring capacity. *)
type 'msg frame = {
  mutable seq : int;
  mutable payload : 'msg;
  mutable sent_at : Time.t; (* first transmission, for RTT sampling *)
  mutable ctx : int; (* span context at first transmission, to root retransmits *)
  mutable retransmitted : bool;
}

(* The send window as a ring buffer: slots [head, head+len) (mod capacity,
   a power of two) hold the unacked frames in ascending seq order. The
   previous list representation paid an O(window) append per send and a
   full partition per ack; here both ends are O(1). *)
type 'msg link_out = {
  mutable next_seq : int;
  mutable ring : 'msg frame option array;
  mutable head : int;
  mutable len : int;
  mutable timer : Engine.timer option;
  mutable backoff : int; (* consecutive timeouts without ack progress *)
  mutable srtt : Time.span option; (* smoothed RTT, queueing included *)
}

type 'msg link_in = {
  mutable expected : int; (* next in-order seq *)
  mutable buffered : (int * 'msg) list; (* out-of-order, ascending *)
}

type 'msg t = {
  engine : Engine.t;
  me : Pid.t;
  send_raw : dst:Pid.t -> 'msg wire -> unit;
  deliver : src:Pid.t -> 'msg -> unit;
  rto : Time.span;
  burst : int;
  obs : Obs.t;
  outgoing : 'msg link_out array;
  incoming : 'msg link_in array;
  mutable retransmissions : int;
  mutable halted : bool;
}

let create engine ~me ~n ~send_raw ~deliver ?(rto = Time.span_ms 20) ?(burst = 32)
    ?(obs = Obs.noop) () =
  if burst < 1 then invalid_arg "Rchannel.create: burst must be >= 1";
  {
    engine;
    me;
    send_raw;
    deliver;
    rto;
    burst;
    obs;
    outgoing =
      Array.init n (fun _ ->
          {
            next_seq = 0;
            ring = Array.make 8 None;
            head = 0;
            len = 0;
            timer = None;
            backoff = 0;
            srtt = None;
          });
    incoming = Array.init n (fun _ -> { expected = 0; buffered = [] });
    retransmissions = 0;
    halted = false;
  }

let cancel_timer t link =
  match link.timer with
  | Some timer ->
    Engine.cancel t.engine timer;
    link.timer <- None
  | None -> ()

(* The [i]-th oldest unacked frame, [0 <= i < len]. *)
let frame_at link i =
  match link.ring.((link.head + i) land (Array.length link.ring - 1)) with
  | Some f -> f
  | None -> assert false (* slots inside the window always hold a frame *)

(* Append a fresh frame at the tail, reusing the slot's retired frame when
   the window has wrapped over it before. Doubles the ring when full,
   re-packing the window at slots [0, len). *)
let push_frame t link payload =
  let cap = Array.length link.ring in
  if link.len = cap then begin
    let ring' = Array.make (cap * 2) None in
    for i = 0 to link.len - 1 do
      ring'.(i) <- link.ring.((link.head + i) land (cap - 1))
    done;
    link.ring <- ring';
    link.head <- 0
  end;
  let idx = (link.head + link.len) land (Array.length link.ring - 1) in
  let seq = link.next_seq in
  link.next_seq <- seq + 1;
  link.len <- link.len + 1;
  (match link.ring.(idx) with
  | Some f ->
    f.seq <- seq;
    f.payload <- payload;
    f.sent_at <- Engine.now t.engine;
    f.ctx <- Obs.span_ctx t.obs;
    f.retransmitted <- false
  | None ->
    link.ring.(idx) <-
      Some
        {
          seq;
          payload;
          sent_at = Engine.now t.engine;
          ctx = Obs.span_ctx t.obs;
          retransmitted = false;
        });
  seq

(* The effective timeout adapts to the measured round-trip time (which
   includes the receiver's CPU queueing delay): a receiver digging out of a
   post-partition backlog acks seconds late, and retransmitting on a fixed
   short timer floods it with duplicates faster than it can process them —
   a metastable collapse where the duplicates themselves keep the queue
   long. [2 * srtt] keeps at most one retransmission per true round trip. *)
let base_timeout t link =
  match link.srtt with
  | None -> t.rto
  | Some srtt -> Time.span_max t.rto (Time.span_scale 2 srtt)

(* On timeout, re-send only the oldest [burst] unacknowledged frames (the
   receiver buffers out of order, so cumulative acks advance burst by
   burst), and back the timer off exponentially while no ack makes
   progress. An unbounded re-send of the whole backlog every fixed rto —
   what a long partition leaves behind — injects frames faster than the
   NIC drains them and congestion-collapses the healed network; the fault
   campaign's partition/heal schedules catch exactly that. *)
let rec arm_timer t ~dst link =
  cancel_timer t link;
  if link.len > 0 then begin
    let delay = Time.span_scale (1 lsl min link.backoff 4) (base_timeout t link) in
    link.timer <-
      Some
        (Engine.schedule_after t.engine delay (fun () ->
             if (not t.halted) && link.len > 0 then begin
               link.backoff <- link.backoff + 1;
               for i = 0 to min t.burst link.len - 1 do
                 let frame = frame_at link i in
                 frame.retransmitted <- true;
                 t.retransmissions <- t.retransmissions + 1;
                 Obs.incr t.obs "rchannel.retransmissions";
                 (* The timer fires with no ambient context; parent the
                    retransmit to the span that caused the original send
                    so the copy that finally gets through keeps a chain
                    back to the message's origin. *)
                 let sp =
                   if Obs.tracing t.obs then begin
                     Obs.event t.obs ~pid:t.me ~layer:`Net ~phase:"retransmit"
                       ~detail:(Printf.sprintf "seq %d -> p%d" frame.seq (dst + 1))
                       ();
                     Obs.span t.obs ~parent:frame.ctx ~pid:t.me ~layer:`Net
                       ~phase:"retransmit"
                       ~detail:(Printf.sprintf "seq %d -> p%d" frame.seq (dst + 1))
                       ()
                   end
                   else Obs.Span.no_parent
                 in
                 Obs.with_span_ctx t.obs sp (fun () ->
                     t.send_raw ~dst (Data { seq = frame.seq; payload = frame.payload }))
               done;
               arm_timer t ~dst link
             end))
  end

let send t ~dst payload =
  if dst = t.me then t.deliver ~src:t.me payload
  else if not t.halted then begin
    let link = t.outgoing.(dst) in
    let seq = push_frame t link payload in
    t.send_raw ~dst (Data { seq; payload });
    if link.timer = None then arm_timer t ~dst link
  end

(* Karn's rule: sample the round trip only from frames acked on their first
   transmission — a retransmitted frame's ack is ambiguous. EWMA with the
   classic 1/8 gain, applied to the acked frames in ascending seq order. *)
let sample_rtt t link frame =
  if not frame.retransmitted then begin
    let rtt = Time.diff (Engine.now t.engine) frame.sent_at in
    link.srtt <-
      Some
        (match link.srtt with
        | None -> rtt
        | Some srtt ->
          Time.span_ns (((7 * Time.span_to_ns srtt) + Time.span_to_ns rtt) / 8))
  end

let handle_ack t ~src ~cumulative =
  let link = t.outgoing.(src) in
  let progressed = ref false in
  while link.len > 0 && (frame_at link 0).seq <= cumulative do
    sample_rtt t link (frame_at link 0);
    link.head <- (link.head + 1) land (Array.length link.ring - 1);
    link.len <- link.len - 1;
    progressed := true
  done;
  if link.len = 0 then begin
    cancel_timer t link;
    link.backoff <- 0
  end
  else if !progressed then begin
    (* Progress: reset the backoff and give the remainder a fresh timeout. *)
    link.backoff <- 0;
    arm_timer t ~dst:src link
  end

let rec drain_in_order t ~src link =
  match link.buffered with
  | (seq, payload) :: rest when seq = link.expected ->
    link.buffered <- rest;
    link.expected <- seq + 1;
    t.deliver ~src payload;
    drain_in_order t ~src link
  | _ -> ()

let handle_data t ~src ~seq ~payload =
  let link = t.incoming.(src) in
  if seq >= link.expected && not (List.mem_assoc seq link.buffered) then begin
    link.buffered <-
      List.merge (fun (a, _) (b, _) -> compare a b) link.buffered [ (seq, payload) ];
    drain_in_order t ~src link
  end
  else Obs.incr t.obs "rchannel.duplicates";
  (* Always (re-)acknowledge what we have — lost acks are recovered by the
     sender's retransmission provoking a fresh one. *)
  t.send_raw ~dst:src (Ack { cumulative = link.expected - 1 })

let receive_raw t ~src frame =
  if not t.halted then
    match frame with
    | Data { seq; payload } -> handle_data t ~src ~seq ~payload
    | Ack { cumulative } -> handle_ack t ~src ~cumulative

let retransmissions t = t.retransmissions
let unacked t ~dst = t.outgoing.(dst).len
let srtt t ~dst = t.outgoing.(dst).srtt

let halt t =
  t.halted <- true;
  Array.iteri (fun _ link -> cancel_timer t link) t.outgoing

(* ---- Snapshot ---- *)

type 'msg frame_data = {
  fd_seq : int;
  fd_payload : 'msg;
  fd_sent_ns : int;
  fd_ctx : int;
  fd_retransmitted : bool;
}

type 'msg rc_data = {
  (* per destination: next_seq, unacked window oldest-first, backoff, srtt *)
  rd_out : (int * 'msg frame_data list * int * int option) array;
  (* per source: expected, out-of-order buffer *)
  rd_in : (int * (int * 'msg) list) array;
}

let section_name me = Printf.sprintf "net.rchannel.p%d" (me + 1)

let snapshot t =
  let n = Array.length t.outgoing in
  let frames link =
    List.init link.len (fun i ->
        let f = frame_at link i in
        {
          fd_seq = f.seq;
          fd_payload = f.payload;
          fd_sent_ns = Time.to_ns f.sent_at;
          fd_ctx = f.ctx;
          fd_retransmitted = f.retransmitted;
        })
  in
  let data =
    Snapshot.pack
      {
        rd_out =
          Array.map
            (fun l -> (l.next_seq, frames l, l.backoff, Option.map Time.span_to_ns l.srtt))
            t.outgoing;
        rd_in = Array.map (fun l -> (l.expected, l.buffered)) t.incoming;
      }
  in
  Snapshot.make ~name:(section_name t.me) ~version:1 ~data
    [
      ("retransmissions", Snapshot.Int t.retransmissions);
      ("halted", Snapshot.Bool t.halted);
      ( "unacked",
        Snapshot.Int (Array.fold_left (fun acc l -> acc + l.len) 0 t.outgoing) );
      ( "out_next_seq",
        Snapshot.List (List.init n (fun i -> Snapshot.Int t.outgoing.(i).next_seq)) );
      ( "in_expected",
        Snapshot.List (List.init n (fun i -> Snapshot.Int t.incoming.(i).expected)) );
    ]

let restore t s =
  Snapshot.check s ~name:(section_name t.me) ~version:1;
  t.retransmissions <- Snapshot.get_int s "retransmissions";
  t.halted <- Snapshot.get_bool s "halted";
  let (d : _ rc_data) = Snapshot.unpack_data s in
  if
    Array.length d.rd_out <> Array.length t.outgoing
    || Array.length d.rd_in <> Array.length t.incoming
  then
    raise
      (Snapshot.Codec_error
         (Printf.sprintf "%s: snapshot is for a different group size"
            (section_name t.me)));
  Array.iteri
    (fun i (next_seq, frames, backoff, srtt_ns) ->
      let link = t.outgoing.(i) in
      link.next_seq <- next_seq;
      link.backoff <- backoff;
      link.srtt <- Option.map Time.span_ns srtt_ns;
      let len = List.length frames in
      let cap =
        let rec up c = if c >= len && c >= 8 then c else up (c * 2) in
        up 8
      in
      (* Rebuild the window ring from scratch; retransmission timers ride
         the world blob (they reference this link record, so a live timer
         keeps working over the restored window). *)
      link.ring <- Array.make cap None;
      link.head <- 0;
      link.len <- len;
      List.iteri
        (fun j fd ->
          link.ring.(j) <-
            Some
              {
                seq = fd.fd_seq;
                payload = fd.fd_payload;
                sent_at = Time.of_ns fd.fd_sent_ns;
                ctx = fd.fd_ctx;
                retransmitted = fd.fd_retransmitted;
              })
        frames)
    d.rd_out;
  Array.iteri
    (fun i (expected, buffered) ->
      let link = t.incoming.(i) in
      link.expected <- expected;
      link.buffered <- buffered)
    d.rd_in
