open Repro_sim
module Obs = Repro_obs.Obs

type 'msg wire = Data of { seq : int; payload : 'msg } | Ack of { cumulative : int }

type 'msg frame = {
  seq : int;
  payload : 'msg;
  sent_at : Time.t; (* first transmission, for RTT sampling *)
  ctx : int; (* span context at first transmission, to root retransmits *)
  mutable retransmitted : bool;
}

type 'msg link_out = {
  mutable next_seq : int;
  mutable unacked : 'msg frame list; (* ascending seq, awaiting ack *)
  mutable timer : Engine.timer option;
  mutable backoff : int; (* consecutive timeouts without ack progress *)
  mutable srtt : Time.span option; (* smoothed RTT, queueing included *)
}

type 'msg link_in = {
  mutable expected : int; (* next in-order seq *)
  mutable buffered : (int * 'msg) list; (* out-of-order, ascending *)
}

type 'msg t = {
  engine : Engine.t;
  me : Pid.t;
  send_raw : dst:Pid.t -> 'msg wire -> unit;
  deliver : src:Pid.t -> 'msg -> unit;
  rto : Time.span;
  burst : int;
  obs : Obs.t;
  outgoing : 'msg link_out array;
  incoming : 'msg link_in array;
  mutable retransmissions : int;
  mutable halted : bool;
}

let create engine ~me ~n ~send_raw ~deliver ?(rto = Time.span_ms 20) ?(burst = 32)
    ?(obs = Obs.noop) () =
  if burst < 1 then invalid_arg "Rchannel.create: burst must be >= 1";
  {
    engine;
    me;
    send_raw;
    deliver;
    rto;
    burst;
    obs;
    outgoing =
      Array.init n (fun _ ->
          { next_seq = 0; unacked = []; timer = None; backoff = 0; srtt = None });
    incoming = Array.init n (fun _ -> { expected = 0; buffered = [] });
    retransmissions = 0;
    halted = false;
  }

let cancel_timer t link =
  match link.timer with
  | Some timer ->
    Engine.cancel t.engine timer;
    link.timer <- None
  | None -> ()

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

(* The effective timeout adapts to the measured round-trip time (which
   includes the receiver's CPU queueing delay): a receiver digging out of a
   post-partition backlog acks seconds late, and retransmitting on a fixed
   short timer floods it with duplicates faster than it can process them —
   a metastable collapse where the duplicates themselves keep the queue
   long. [2 * srtt] keeps at most one retransmission per true round trip. *)
let base_timeout t link =
  match link.srtt with
  | None -> t.rto
  | Some srtt -> Time.span_max t.rto (Time.span_scale 2 srtt)

(* On timeout, re-send only the oldest [burst] unacknowledged frames (the
   receiver buffers out of order, so cumulative acks advance burst by
   burst), and back the timer off exponentially while no ack makes
   progress. An unbounded re-send of the whole backlog every fixed rto —
   what a long partition leaves behind — injects frames faster than the
   NIC drains them and congestion-collapses the healed network; the fault
   campaign's partition/heal schedules catch exactly that. *)
let rec arm_timer t ~dst link =
  cancel_timer t link;
  if link.unacked <> [] then begin
    let delay = Time.span_scale (1 lsl min link.backoff 4) (base_timeout t link) in
    link.timer <-
      Some
        (Engine.schedule_after t.engine delay (fun () ->
             if (not t.halted) && link.unacked <> [] then begin
               link.backoff <- link.backoff + 1;
               List.iter
                 (fun frame ->
                   frame.retransmitted <- true;
                   t.retransmissions <- t.retransmissions + 1;
                   Obs.incr t.obs "rchannel.retransmissions";
                   (* The timer fires with no ambient context; parent the
                      retransmit to the span that caused the original send
                      so the copy that finally gets through keeps a chain
                      back to the message's origin. *)
                   let sp =
                     if Obs.enabled t.obs then begin
                       Obs.event t.obs ~pid:t.me ~layer:`Net ~phase:"retransmit"
                         ~detail:(Printf.sprintf "seq %d -> p%d" frame.seq (dst + 1))
                         ();
                       Obs.span t.obs ~parent:frame.ctx ~pid:t.me ~layer:`Net
                         ~phase:"retransmit"
                         ~detail:(Printf.sprintf "seq %d -> p%d" frame.seq (dst + 1))
                         ()
                     end
                     else Obs.Span.no_parent
                   in
                   Obs.with_span_ctx t.obs sp (fun () ->
                       t.send_raw ~dst (Data { seq = frame.seq; payload = frame.payload })))
                 (take t.burst link.unacked);
               arm_timer t ~dst link
             end))
  end

let send t ~dst payload =
  if dst = t.me then t.deliver ~src:t.me payload
  else if not t.halted then begin
    let link = t.outgoing.(dst) in
    let seq = link.next_seq in
    link.next_seq <- seq + 1;
    link.unacked <-
      link.unacked
      @ [
          {
            seq;
            payload;
            sent_at = Engine.now t.engine;
            ctx = Obs.span_ctx t.obs;
            retransmitted = false;
          };
        ];
    t.send_raw ~dst (Data { seq; payload });
    if link.timer = None then arm_timer t ~dst link
  end

(* Karn's rule: sample the round trip only from frames acked on their first
   transmission — a retransmitted frame's ack is ambiguous. EWMA with the
   classic 1/8 gain. *)
let sample_rtt t link acked =
  List.iter
    (fun frame ->
      if not frame.retransmitted then begin
        let rtt = Time.diff (Engine.now t.engine) frame.sent_at in
        link.srtt <-
          Some
            (match link.srtt with
            | None -> rtt
            | Some srtt ->
              Time.span_ns
                (((7 * Time.span_to_ns srtt) + Time.span_to_ns rtt) / 8))
      end)
    acked

let handle_ack t ~src ~cumulative =
  let link = t.outgoing.(src) in
  let acked, remaining =
    List.partition (fun frame -> frame.seq <= cumulative) link.unacked
  in
  link.unacked <- remaining;
  sample_rtt t link acked;
  if remaining = [] then begin
    cancel_timer t link;
    link.backoff <- 0
  end
  else if acked <> [] then begin
    (* Progress: reset the backoff and give the remainder a fresh timeout. *)
    link.backoff <- 0;
    arm_timer t ~dst:src link
  end

let rec drain_in_order t ~src link =
  match link.buffered with
  | (seq, payload) :: rest when seq = link.expected ->
    link.buffered <- rest;
    link.expected <- seq + 1;
    t.deliver ~src payload;
    drain_in_order t ~src link
  | _ -> ()

let handle_data t ~src ~seq ~payload =
  let link = t.incoming.(src) in
  if seq >= link.expected && not (List.mem_assoc seq link.buffered) then begin
    link.buffered <-
      List.merge (fun (a, _) (b, _) -> compare a b) link.buffered [ (seq, payload) ];
    drain_in_order t ~src link
  end
  else Obs.incr t.obs "rchannel.duplicates";
  (* Always (re-)acknowledge what we have — lost acks are recovered by the
     sender's retransmission provoking a fresh one. *)
  t.send_raw ~dst:src (Ack { cumulative = link.expected - 1 })

let receive_raw t ~src frame =
  if not t.halted then
    match frame with
    | Data { seq; payload } -> handle_data t ~src ~seq ~payload
    | Ack { cumulative } -> handle_ack t ~src ~cumulative

let retransmissions t = t.retransmissions
let unacked t ~dst = List.length t.outgoing.(dst).unacked
let srtt t ~dst = t.outgoing.(dst).srtt

let halt t =
  t.halted <- true;
  Array.iteri (fun _ link -> cancel_timer t link) t.outgoing
