type snapshot = { messages : int; payload_bytes : int; wire_bytes : int }

(* Native counters rather than the previous shim over a private [Obs.t]:
   [record_send] runs once per wire copy, squarely on the transmit hot
   path, and the shim paid two string builds plus five string-keyed
   hashtable updates per copy. Here the totals are three int stores, the
   per-sender counts an int-array slot, and only the per-kind split still
   touches a (small, interned-key) hashtable. *)
type t = {
  mutable messages : int;
  mutable payload : int;
  mutable wire : int;
  sent : int array; (* messages per source pid *)
  kinds : (string, int ref) Hashtbl.t; (* messages per protocol kind *)
}

let zero = { messages = 0; payload_bytes = 0; wire_bytes = 0 }

let create ~n =
  {
    messages = 0;
    payload = 0;
    wire = 0;
    sent = Array.make n 0;
    kinds = Hashtbl.create 16;
  }

let record_send t ~src ~kind ~payload_bytes ~wire_bytes =
  t.messages <- t.messages + 1;
  t.payload <- t.payload + payload_bytes;
  t.wire <- t.wire + wire_bytes;
  t.sent.(src) <- t.sent.(src) + 1;
  match Hashtbl.find t.kinds kind with
  | slot -> incr slot
  | exception Not_found -> Hashtbl.add t.kinds kind (ref 1)

let by_kind t =
  Hashtbl.fold (fun kind slot acc -> (kind, !slot) :: acc) t.kinds []
  |> List.sort compare

let snapshot t =
  { messages = t.messages; payload_bytes = t.payload; wire_bytes = t.wire }

let sent_by t p = t.sent.(p)

let diff (later : snapshot) (earlier : snapshot) =
  {
    messages = later.messages - earlier.messages;
    payload_bytes = later.payload_bytes - earlier.payload_bytes;
    wire_bytes = later.wire_bytes - earlier.wire_bytes;
  }

let pp_snapshot ppf (s : snapshot) =
  Fmt.pf ppf "%d msgs, %d B payload, %d B on wire" s.messages s.payload_bytes
    s.wire_bytes

type dump = {
  d_messages : int;
  d_payload : int;
  d_wire : int;
  d_sent : int array;
  d_kinds : (string * int) list;
}

let dump t =
  {
    d_messages = t.messages;
    d_payload = t.payload;
    d_wire = t.wire;
    d_sent = Array.copy t.sent;
    d_kinds = by_kind t;
  }

let load t d =
  if Array.length d.d_sent <> Array.length t.sent then
    invalid_arg "Net_stats.load: group size mismatch";
  t.messages <- d.d_messages;
  t.payload <- d.d_payload;
  t.wire <- d.d_wire;
  Array.blit d.d_sent 0 t.sent 0 (Array.length t.sent);
  Hashtbl.reset t.kinds;
  List.iter (fun (k, v) -> Hashtbl.add t.kinds k (ref v)) d.d_kinds
