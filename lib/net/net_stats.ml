module Obs = Repro_obs.Obs

type snapshot = { messages : int; payload_bytes : int; wire_bytes : int }

(* The counters live in a private, always-enabled [Obs.t] with no trace
   buffer: [Net_stats] is now a thin compatibility shim over the same
   counter machinery every other module uses. The namespace mirrors the
   per-run observability counters ([net.msgs], [net.payload_bytes],
   [net.wire_bytes], [net.sent_by.<pid>], [net.kind_msgs.<kind>]). *)
type t = { obs : Obs.t }

let k_msgs = "net.msgs"
let k_payload = "net.payload_bytes"
let k_wire = "net.wire_bytes"
let k_sent_by p = Printf.sprintf "net.sent_by.%d" p
let k_kind kind = "net.kind_msgs." ^ kind

let zero = { messages = 0; payload_bytes = 0; wire_bytes = 0 }
let create ~n:_ = { obs = Obs.create ~max_events:0 () }

let record_send t ~src ~kind ~payload_bytes ~wire_bytes =
  Obs.incr t.obs k_msgs;
  Obs.incr t.obs ~by:payload_bytes k_payload;
  Obs.incr t.obs ~by:wire_bytes k_wire;
  Obs.incr t.obs (k_sent_by src);
  Obs.incr t.obs (k_kind kind)

let kind_prefix = "net.kind_msgs."

let by_kind t =
  List.filter_map
    (fun (name, count) ->
      if String.starts_with ~prefix:kind_prefix name then
        Some
          ( String.sub name (String.length kind_prefix)
              (String.length name - String.length kind_prefix),
            count )
      else None)
    (Obs.counters t.obs)
  |> List.sort compare

let snapshot t =
  {
    messages = Obs.counter_value t.obs k_msgs;
    payload_bytes = Obs.counter_value t.obs k_payload;
    wire_bytes = Obs.counter_value t.obs k_wire;
  }

let sent_by t p = Obs.counter_value t.obs (k_sent_by p)

let diff later earlier =
  {
    messages = later.messages - earlier.messages;
    payload_bytes = later.payload_bytes - earlier.payload_bytes;
    wire_bytes = later.wire_bytes - earlier.wire_bytes;
  }

let pp_snapshot ppf s =
  Fmt.pf ppf "%d msgs, %d B payload, %d B on wire" s.messages s.payload_bytes
    s.wire_bytes
