open Repro_sim
module Obs = Repro_obs.Obs

type 'msg node = {
  cpu : Cpu.t;
  mutable nic_free_at : Time.t;
  mutable nic_busy_ns : int;
  mutable handler : (src:Pid.t -> 'msg -> unit) option;
  mutable crashed : bool;
  mutable sends_before_crash : int option;
}

(* Message-adversary state (armed by the fault layer, never in benchmark
   runs). The mutators are supplied by the armer because the network is
   generic in ['msg]: corruption wraps a copy in a detectable tamper
   envelope, equivocation produces a well-formed alternate payload. The
   adversary owns a dedicated RNG stream so that arming it — or leaving
   every knob at zero — perturbs none of the base network's draws. *)
type 'msg mutators = {
  corrupt : 'msg -> 'msg option;
  equivocate : 'msg -> 'msg option;
}

type 'msg adversary = {
  adv_rng : Repro_sim.Rng.t;
  mutators : 'msg mutators;
  mutable drop_budget : int;
  mutable corrupt_rate : float;
  mutable duplicate_rate : float;
  mutable reorder_window : Time.span;
  mutable equivocate_rate : float;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable equivocated : int;
}

type adversary_stats = {
  adv_dropped : int;
  adv_corrupted : int;
  adv_duplicated : int;
  adv_reordered : int;
  adv_equivocated : int;
}

(* A flat, pooled record of one in-flight hop on a directed link: the
   clamped arrival instant, the schedule-order ticket reserved for it at
   transmit time, the transmit span it parents, and the payload. Ring
   slots are mutated in place, so the steady-state wire path allocates
   nothing. *)
type 'msg frame = {
  mutable f_at : Time.t;
  mutable f_seq : int;
  mutable f_sid : int;
  mutable f_msg : 'msg;
}

(* Per directed link: a circular buffer of frames sorted by
   [(f_at, f_seq)] — the FIFO clamp makes arrivals non-decreasing and
   tickets are reserved in push order, so appending keeps it sorted. Busy
   links (non-empty rings) sit in the network's head heap, keyed by their
   head frame; [l_pos] is the link's heap slot, [-1] while idle. *)
type 'msg link = {
  l_src : Pid.t;
  l_dst : Pid.t;
  mutable l_ring : 'msg frame array; (* capacity is a power of two *)
  mutable l_head : int;
  mutable l_len : int;
  mutable l_pos : int;
  (* The head frame's [(f_at, f_seq)] key, copied out whenever the head
     changes: heap sifts compare plain int fields instead of chasing
     [l_ring.(l_head)] — the hot comparison of the batched wire path. *)
  mutable l_key_ns : int;
  mutable l_key_seq : int;
}

type 'msg t = {
  engine : Engine.t;
  wire : Wire.t;
  topology : Topology.t;
  rng : Repro_sim.Rng.t;
  nodes : 'msg node array;
  (* Per directed link: last scheduled arrival instant, to keep FIFO under
     jitter. *)
  last_arrival : Time.t array array;
  (* Per directed link: cut while [true]. A matrix rather than an
     association list so the per-copy admission check on the transmit
     path is two array reads. *)
  cut : bool array array;
  (* [others.(p)] is [Pid.others ~n p], computed once — broadcasts are
     per-message, the membership is static. *)
  others : Pid.t list array;
  payload_bytes : 'msg -> int;
  kind_of : 'msg -> string;
  layer_of : 'msg -> Obs.layer;
  obs : Obs.t;
  stats : Net_stats.t;
  (* Counter names interned up front ([net.msgs.<layer>], …): building
     them per copy put two string concatenations on every transmit. *)
  ctr_msgs : string array;
  ctr_payload : string array;
  ctr_wire : string array;
  kind_ctrs : (string, string) Hashtbl.t;
  (* Batched hops: in-flight copies live in flat per-link frame rings and
     re-enter the engine through its cosource merge, instead of one queue
     event (and one closure) per copy. Byte-identical to the unbatched
     schedule (see the comment block above [cs_fire]); bypassed while an
     adversary is armed, because adversarial reordering breaks the
     per-link arrival monotonicity the rings rely on. *)
  batched : bool;
  links : 'msg link option array array; (* created lazily per busy link *)
  (* Binary min-heap of the busy links, keyed by the head frame's
     [(f_at, f_seq)]; its root is the network's earliest pending
     delivery — what the engine's cosource peeks. *)
  mutable h_links : 'msg link array;
  mutable h_len : int;
  mutable loss_rate : float;
  mutable extra_delay : Time.span;
  mutable adversary : 'msg adversary option;
}

(* Dense index for the (closed) layer variant, keying the interned
   counter-name arrays. Must agree with [Obs.all_layers]. *)
let layer_index = function
  | `Abcast -> 0
  | `Consensus -> 1
  | `Rbcast -> 2
  | `Net -> 3
  | `App -> 4

(* [create] lives below the batched-hop machinery: registering the
   cosource needs [cs_fire], which needs [deliver]. *)

let n t = Array.length t.nodes
let engine t = t.engine
let wire t = t.wire
let nic_busy_time t p = Time.span_ns t.nodes.(p).nic_busy_ns
let register t p handler = t.nodes.(p).handler <- Some handler
let cpu t p = t.nodes.(p).cpu
let is_crashed t p = t.nodes.(p).crashed
let crash t p = t.nodes.(p).crashed <- true

let crash_after_sends t p k =
  if k < 0 then invalid_arg "Network.crash_after_sends: negative count";
  t.nodes.(p).sends_before_crash <- Some k

let set_loss_rate t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Network.set_loss_rate: need 0 <= p < 1";
  t.loss_rate <- p

let cut t ~src ~dst = t.cut.(src).(dst) <- true
let heal t ~src ~dst = t.cut.(src).(dst) <- false

let heal_all t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) false) t.cut

let partition t blocks =
  let n = Array.length t.nodes in
  let listed = List.concat blocks in
  List.iter
    (fun p ->
      if p < 0 || p >= n then
        invalid_arg (Printf.sprintf "Network.partition: pid %d out of range" p))
    listed;
  if List.length (List.sort_uniq compare listed) <> List.length listed then
    invalid_arg "Network.partition: a pid appears in two blocks";
  (* Processes not listed in any block form implicit singleton blocks. *)
  let block_of = Array.make n (-1) in
  List.iteri (fun i block -> List.iter (fun p -> block_of.(p) <- n + i) block) blocks;
  List.iter (fun p -> if block_of.(p) < 0 then block_of.(p) <- p)
    (List.init n (fun p -> p));
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && block_of.(src) <> block_of.(dst) then
        t.cut.(src).(dst) <- true
    done
  done

let set_extra_delay t d = t.extra_delay <- d
let extra_delay t = t.extra_delay

(* ---- Message adversary ---- *)

(* The adversary's stream is derived from the run seed by constant mixing
   ([Rng.derive]) rather than by [Rng.split] of the engine's stream: a
   split would advance the engine stream and so perturb every later
   protocol draw, breaking the contract that arming an idle adversary
   changes nothing. The salt names the stream; deriving it here keeps the
   adversary's randomness owned by the module that draws from it. *)
let adv_seed_salt = 0x2adc0de5ea51ab1e

let arm_adversary t ~seed ~corrupt ~equivocate =
  match t.adversary with
  | Some _ -> ()
  | None ->
    t.adversary <-
      Some
        {
          adv_rng = Repro_sim.Rng.derive ~seed ~salt:adv_seed_salt;
          mutators = { corrupt; equivocate };
          drop_budget = 0;
          corrupt_rate = 0.0;
          duplicate_rate = 0.0;
          reorder_window = Time.span_zero;
          equivocate_rate = 0.0;
          dropped = 0;
          corrupted = 0;
          duplicated = 0;
          reordered = 0;
          equivocated = 0;
        }

let adversary_armed t = match t.adversary with Some _ -> true | None -> false

let with_adversary t what f =
  match t.adversary with
  | Some adv -> f adv
  | None -> invalid_arg ("Network." ^ what ^ ": no adversary armed")

let set_adv_drop_budget t d =
  if d < 0 then invalid_arg "Network.set_adv_drop_budget: negative budget";
  with_adversary t "set_adv_drop_budget" (fun adv -> adv.drop_budget <- d)

let rate_setter what t p set =
  if p < 0.0 || p >= 1.0 then invalid_arg ("Network." ^ what ^ ": need 0 <= p < 1");
  with_adversary t what set

let set_corrupt_rate t p =
  rate_setter "set_corrupt_rate" t p (fun adv -> adv.corrupt_rate <- p)

let set_duplicate_rate t p =
  rate_setter "set_duplicate_rate" t p (fun adv -> adv.duplicate_rate <- p)

let set_equivocate_rate t p =
  rate_setter "set_equivocate_rate" t p (fun adv -> adv.equivocate_rate <- p)

let set_reorder_window t w =
  if Time.span_to_ns w < 0 then
    invalid_arg "Network.set_reorder_window: negative window";
  with_adversary t "set_reorder_window" (fun adv -> adv.reorder_window <- w)

let adversary_stats t =
  match t.adversary with
  | None ->
    {
      adv_dropped = 0;
      adv_corrupted = 0;
      adv_duplicated = 0;
      adv_reordered = 0;
      adv_equivocated = 0;
    }
  | Some a ->
    {
      adv_dropped = a.dropped;
      adv_corrupted = a.corrupted;
      adv_duplicated = a.duplicated;
      adv_reordered = a.reordered;
      adv_equivocated = a.equivocated;
    }

let kind_counter t kind =
  match Hashtbl.find t.kind_ctrs kind with
  | name -> name
  | exception Not_found ->
    let name = "net.kind_msgs." ^ kind in
    Hashtbl.add t.kind_ctrs kind name;
    name

(* [sid] is the transmit span of the copy being delivered, so the receive
   span parents across the wire hop. The receive span is stamped at the
   arrival instant (now), while the handler — and the ambient span context
   pointing at the receive span — runs after the receive CPU charge, so
   wire time and receive processing separate cleanly in the causal
   chain. *)
let deliver t ~src ~dst ~sid msg =
  let node = t.nodes.(dst) in
  if not node.crashed then begin
    let rx =
      if Obs.tracing t.obs then
        Obs.span t.obs ~parent:sid ~pid:dst ~layer:(t.layer_of msg) ~phase:"rx"
          ~detail:(t.kind_of msg) ()
      else Obs.Span.no_parent
    in
    let cost = Wire.recv_cpu_cost t.wire ~payload_bytes:(t.payload_bytes msg) in
    Cpu.submit node.cpu ~cost (fun () ->
        if not node.crashed then
          match node.handler with
          | Some handler ->
            if Obs.tracing t.obs then begin
              Obs.event t.obs ~pid:dst ~layer:(t.layer_of msg) ~phase:"rx"
                ~detail:
                  (Printf.sprintf "%s <- p%d" (t.kind_of msg) (src + 1))
                ();
              Obs.set_span_ctx t.obs rx
            end;
            handler ~src msg;
            Obs.set_span_ctx t.obs Obs.Span.no_parent
          | None -> ())
  end

(* ---- Batched hops (DESIGN.md §16) ----

   Without batching, every admitted copy posts its own delivery closure on
   the calendar queue. With [t.batched] (the default; bypassed while a
   message adversary is armed) admitted copies never touch the queue:
   each is written into a flat pooled frame in its link's ring, the busy
   links sit in a small min-heap keyed by their head frame, and the heap
   root is what the engine's cosource merge executes ([Engine.cosource]).

   Why this is byte-identical to the unbatched schedule: a schedule-order
   ticket is reserved for every admitted copy at the moment the unbatched
   path would have posted it ([Engine.reserve_seq] in [transmit_copy]), so
   the global tie-break ranks are unchanged. The FIFO clamp makes per-link
   arrivals non-decreasing and tickets increase in push order, so each
   ring is always sorted by [(arrival, ticket)] — the link's head frame is
   its earliest copy, and the heap root is the network-wide earliest. The
   engine's merge loop executes queue events and frames in ascending
   [(instant, ticket)] order, which by ticket uniqueness is exactly the
   pop order of one queue holding both streams: deliveries, RNG draw
   order, span instants, [events_executed] and every counter are
   unchanged. What changes is the cost model — a delivery costs a ring
   append plus (only when its link's head changes) an O(log links) sift on
   a heap of at most n(n-1) entries, instead of a calendar insert, a
   scan/pop and a per-copy closure. *)

let new_frame ~at ~seq ~sid msg = { f_at = at; f_seq = seq; f_sid = sid; f_msg = msg }

(* [a]'s head frame sorts before [b]'s. Only called on busy links, whose
   cached head keys are current. *)
let link_lt a b =
  a.l_key_ns < b.l_key_ns
  || (a.l_key_ns = b.l_key_ns && a.l_key_seq < b.l_key_seq)

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let li = t.h_links.(i) and lp = t.h_links.(p) in
    if link_lt li lp then begin
      t.h_links.(i) <- lp;
      lp.l_pos <- i;
      t.h_links.(p) <- li;
      li.l_pos <- p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let c1 = (2 * i) + 1 in
  if c1 < t.h_len then begin
    let c =
      let c2 = c1 + 1 in
      if c2 < t.h_len && link_lt t.h_links.(c2) t.h_links.(c1) then c2 else c1
    in
    let li = t.h_links.(i) and lc = t.h_links.(c) in
    if link_lt lc li then begin
      t.h_links.(i) <- lc;
      lc.l_pos <- i;
      t.h_links.(c) <- li;
      li.l_pos <- c;
      sift_down t c
    end
  end

let heap_push t l =
  if t.h_len = Array.length t.h_links then begin
    let grown = Array.make (max 8 (2 * t.h_len)) l in
    Array.blit t.h_links 0 grown 0 t.h_len;
    t.h_links <- grown
  end;
  t.h_links.(t.h_len) <- l;
  l.l_pos <- t.h_len;
  t.h_len <- t.h_len + 1;
  sift_up t (t.h_len - 1)

let heap_remove_root t =
  let l = t.h_links.(0) in
  l.l_pos <- -1;
  t.h_len <- t.h_len - 1;
  if t.h_len > 0 then begin
    let last = t.h_links.(t.h_len) in
    t.h_links.(0) <- last;
    last.l_pos <- 0;
    sift_down t 0
  end

(* Publish the heap root's head frame — the network-wide earliest
   in-flight copy — as the engine's cosource front. Called after every
   mutation that can move the root; the engine's merged drain loop then
   reads the front as two plain fields instead of polling a closure per
   event (see [Engine.cosource_front]). *)
let publish_front t =
  if t.h_len = 0 then Engine.cosource_front t.engine ~ns:max_int ~seq:0
  else
    let l = t.h_links.(0) in
    Engine.cosource_front t.engine ~ns:l.l_key_ns ~seq:l.l_key_seq

(* The engine cosource fire: pop the heap root's head frame, re-key the
   heap, publish the new front, then deliver. The heap is fixed *before*
   the delivery runs so transmits from the receive handler (which may
   push this or any other link) always see a consistent structure. The
   frame's fields are copied out first: the handler may append to this
   ring and recycle the popped slot. *)
let cs_fire t =
  let l = t.h_links.(0) in
  let f = l.l_ring.(l.l_head) in
  let sid = f.f_sid and msg = f.f_msg in
  l.l_head <- (l.l_head + 1) land (Array.length l.l_ring - 1);
  l.l_len <- l.l_len - 1;
  if l.l_len = 0 then heap_remove_root t
  else begin
    let nf = l.l_ring.(l.l_head) in
    l.l_key_ns <- Time.to_ns nf.f_at;
    l.l_key_seq <- nf.f_seq;
    sift_down t 0
  end;
  publish_front t;
  deliver t ~src:l.l_src ~dst:l.l_dst ~sid msg

let get_link t ~src ~dst msg =
  match t.links.(src).(dst) with
  | Some l -> l
  | None ->
    let l =
      {
        l_src = src;
        l_dst = dst;
        l_ring =
          Array.init 8 (fun _ ->
              new_frame ~at:Time.zero ~seq:0 ~sid:Obs.Span.no_parent msg);
        l_head = 0;
        l_len = 0;
        l_pos = -1;
        l_key_ns = 0;
        l_key_seq = 0;
      }
    in
    t.links.(src).(dst) <- Some l;
    l

let link_grow l msg =
  let cap = Array.length l.l_ring in
  let ring =
    Array.init (2 * cap) (fun i ->
        if i < l.l_len then l.l_ring.((l.l_head + i) land (cap - 1))
        else new_frame ~at:Time.zero ~seq:0 ~sid:Obs.Span.no_parent msg)
  in
  l.l_ring <- ring;
  l.l_head <- 0

(* Append an admitted copy to its link ring. Appending keeps the ring
   sorted (see the block comment above); only an idle link's head — hence
   heap key — changes, so pushes to a busy link cost no heap work. *)
let link_push t ~src ~dst ~arrival ~seq ~sid msg =
  let l = get_link t ~src ~dst msg in
  if l.l_len = Array.length l.l_ring then link_grow l msg;
  let f = l.l_ring.((l.l_head + l.l_len) land (Array.length l.l_ring - 1)) in
  f.f_at <- arrival;
  f.f_seq <- seq;
  f.f_sid <- sid;
  f.f_msg <- msg;
  l.l_len <- l.l_len + 1;
  if l.l_len = 1 then begin
    (* Only a formerly-idle link can change the heap root (a busy link's
       head — its key — is untouched by an append). *)
    l.l_key_ns <- Time.to_ns arrival;
    l.l_key_seq <- seq;
    heap_push t l;
    publish_front t
  end

let frames_in_flight t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc lk -> match lk with Some l -> acc + l.l_len | None -> acc)
        acc row)
    0 t.links

let create engine ?(wire = Wire.default) ?topology ?(kind_of = fun _ -> "msg")
    ?(layer_of = fun _ -> `Net) ?(obs = Obs.noop) ?(batched = true) ~n
    ~payload_bytes () =
  if n < 1 then invalid_arg "Network.create: n must be >= 1";
  let node _ =
    {
      cpu = Cpu.create engine;
      nic_free_at = Time.zero;
      nic_busy_ns = 0;
      handler = None;
      crashed = false;
      sends_before_crash = None;
    }
  in
  let topology =
    match topology with Some t -> t | None -> Topology.uniform wire.Wire.propagation
  in
  let layers = Array.of_list Obs.all_layers in
  let interned prefix = Array.map (fun l -> prefix ^ Obs.layer_name l) layers in
  let t =
    {
      engine;
      wire;
      topology;
      rng = Repro_sim.Rng.split (Engine.rng engine);
      nodes = Array.init n node;
      last_arrival = Array.init n (fun _ -> Array.make n Time.zero);
      cut = Array.init n (fun _ -> Array.make n false);
      others = Array.init n (fun p -> Pid.others ~n p);
      payload_bytes;
      kind_of;
      layer_of;
      obs;
      stats = Net_stats.create ~n;
      ctr_msgs = interned "net.msgs.";
      ctr_payload = interned "net.payload_bytes.";
      ctr_wire = interned "net.wire_bytes.";
      kind_ctrs = Hashtbl.create 16;
      batched;
      links = Array.init n (fun _ -> Array.make n None);
      h_links = [||];
      h_len = 0;
      loss_rate = 0.0;
      extra_delay = Time.span_zero;
      adversary = None;
    }
  in
  if batched then Engine.set_cosource engine ~fire:(fun () -> cs_fire t);
  t

(* Layer-attributed traffic accounting: the [Net_stats] totals split by
   the protocol layer that produced each message — the measured side of
   the paper's per-layer message/byte argument (§5.2). Returns the
   transmit span (a child of [parent], the span context captured when the
   sender handed the message to the network). Only called when the sink
   is enabled. *)
let record_tx t ~parent ~src ~dst msg ~payload_bytes =
  let layer = t.layer_of msg in
  let li = layer_index layer in
  Obs.incr t.obs t.ctr_msgs.(li);
  Obs.incr t.obs ~by:payload_bytes t.ctr_payload.(li);
  Obs.incr t.obs
    ~by:(Wire.on_wire_bytes t.wire ~payload_bytes)
    t.ctr_wire.(li);
  Obs.incr t.obs (kind_counter t (t.kind_of msg));
  if Obs.tracing t.obs then begin
    let detail = Printf.sprintf "%s -> p%d" (t.kind_of msg) (dst + 1) in
    Obs.event t.obs ~pid:src ~layer ~phase:"tx" ~detail ();
    Obs.span t.obs ~parent ~pid:src ~layer ~phase:"tx" ~detail ()
  end
  else Obs.Span.no_parent

(* A sender that is past its crash budget silently loses the message; this
   is how a crash "in the middle of" a broadcast manifests. *)
let sender_alive node =
  if node.crashed then false
  else
    match node.sends_before_crash with
    | None -> true
    | Some 0 ->
      node.crashed <- true;
      false
    | Some k ->
      node.sends_before_crash <- Some (k - 1);
      true

let deliver_local t ~src msg =
  let sender = t.nodes.(src) in
  (* The span context is captured now, at hand-off, because the handler
     runs from the scheduler where the ambient context is already gone. *)
  let parent = Obs.span_ctx t.obs in
  if not sender.crashed then
    Engine.post_after t.engine Time.span_zero (fun () ->
        if not sender.crashed then
          match sender.handler with
          | Some handler ->
            if Obs.tracing t.obs then begin
              let local =
                Obs.span t.obs ~parent ~pid:src ~layer:(t.layer_of msg)
                  ~phase:"local" ~detail:(t.kind_of msg) ()
              in
              Obs.set_span_ctx t.obs local
            end;
            handler ~src msg;
            Obs.set_span_ctx t.obs Obs.Span.no_parent
          | None -> ())

(* One admitted copy through the NIC towards [dst]: serialize at wire
   bandwidth, account, draw loss/jitter, respect cuts, schedule the
   arrival. Runs inside the sender's marshalling completion, once per
   destination, in destination order — the RNG draw order (at most one
   loss draw then one jitter draw per copy, each behind its own guard) is
   part of the determinism contract. Adversary draws (corrupt, reorder,
   duplicate — likewise each behind a nonzero-knob guard) come from the
   adversary's private stream, so an armed-but-idle adversary leaves the
   base draws, and hence the whole run, untouched. [adv_drop] marks a
   copy the message adversary suppressed at fan-out: it is charged to the
   NIC like a randomly lost copy (it left the sender) and then
   vanishes. *)
let transmit_copy t ?(adv_drop = false) ~src ~dst ~payload_bytes ~parent msg =
  let sender = t.nodes.(src) in
  (* Corruption mutates the copy before accounting, so receiver and
     statistics both see the tampered message. *)
  let msg =
    match t.adversary with
    | Some adv
      when adv.corrupt_rate > 0.0
           && Repro_sim.Rng.float adv.adv_rng 1.0 < adv.corrupt_rate -> (
      match adv.mutators.corrupt msg with
      | Some tampered ->
        adv.corrupted <- adv.corrupted + 1;
        if Obs.enabled t.obs then Obs.incr t.obs "net.adv.corrupted";
        tampered
      | None -> msg)
    | _ -> msg
  in
  let now = Engine.now t.engine in
  let tx_start = Time.max sender.nic_free_at now in
  let tx_time = Wire.tx_time t.wire ~payload_bytes in
  let tx_end = Time.add tx_start tx_time in
  sender.nic_free_at <- tx_end;
  sender.nic_busy_ns <- sender.nic_busy_ns + Time.span_to_ns tx_time;
  Net_stats.record_send t.stats ~src ~kind:(t.kind_of msg) ~payload_bytes
    ~wire_bytes:(Wire.on_wire_bytes t.wire ~payload_bytes);
  let tx_sid =
    if Obs.enabled t.obs then record_tx t ~parent ~src ~dst msg ~payload_bytes
    else Obs.Span.no_parent
  in
  if adv_drop then begin
    (match t.adversary with
    | Some adv -> adv.dropped <- adv.dropped + 1
    | None -> ());
    if Obs.enabled t.obs then Obs.incr t.obs "net.adv.dropped"
  end;
  let dropped =
    adv_drop
    || (t.loss_rate > 0.0 && Repro_sim.Rng.float t.rng 1.0 < t.loss_rate)
  in
  if (not t.cut.(src).(dst)) && not dropped then begin
    let latency = Topology.latency t.topology ~src ~dst in
    let jitter =
      let bound = Time.span_to_ns t.wire.Wire.propagation_jitter in
      if bound = 0 then Time.span_zero
      else Time.span_ns (Repro_sim.Rng.int t.rng (bound + 1))
    in
    let arrival =
      Time.add (Time.add (Time.add tx_end latency) jitter) t.extra_delay
    in
    (* FIFO clamp: never overtake an earlier message on this link. *)
    let arrival = Time.max arrival t.last_arrival.(src).(dst) in
    t.last_arrival.(src).(dst) <- arrival;
    (* Adversarial reordering: an extra per-copy delay drawn {e after} the
       FIFO clamp and excluded from it, so a delayed copy can be overtaken
       by later traffic on the same link — channels stop being FIFO while
       the window is open. *)
    let arrival =
      match t.adversary with
      | Some adv when Time.span_to_ns adv.reorder_window > 0 ->
        let extra =
          Repro_sim.Rng.int adv.adv_rng
            (Time.span_to_ns adv.reorder_window + 1)
        in
        if extra > 0 then begin
          adv.reordered <- adv.reordered + 1;
          if Obs.enabled t.obs then Obs.incr t.obs "net.adv.reordered"
        end;
        Time.add arrival (Time.span_ns extra)
      | _ -> arrival
    in
    (* The batched path reserves the exact schedule-order ticket the
       [Engine.post_at] below would have consumed, so both paths advance
       the engine's insertion counter identically. *)
    (match t.adversary with
    | None when t.batched ->
      let seq = Engine.reserve_seq t.engine in
      link_push t ~src ~dst ~arrival ~seq ~sid:tx_sid msg
    | _ ->
      Engine.post_at t.engine arrival (fun () ->
          deliver t ~src ~dst ~sid:tx_sid msg));
    (* Adversarial duplication: a second arrival of the same copy shortly
       after the first, also outside the FIFO clamp. *)
    match t.adversary with
    | Some adv
      when adv.duplicate_rate > 0.0
           && Repro_sim.Rng.float adv.adv_rng 1.0 < adv.duplicate_rate ->
      adv.duplicated <- adv.duplicated + 1;
      if Obs.enabled t.obs then Obs.incr t.obs "net.adv.duplicated";
      Engine.post_at t.engine
        (Time.add arrival (Time.span_us 1))
        (fun () -> deliver t ~src ~dst ~sid:tx_sid msg)
    | _ -> ()
  end
  else if Obs.enabled t.obs then begin
    Obs.incr t.obs "net.dropped_msgs";
    if Obs.tracing t.obs then begin
      Obs.event t.obs ~pid:src ~layer:(t.layer_of msg) ~phase:"drop"
        ~detail:(t.kind_of msg) ();
      ignore
        (Obs.span t.obs ~parent:tx_sid ~pid:src ~layer:(t.layer_of msg)
           ~phase:"drop" ~detail:(t.kind_of msg) ())
    end
  end

let marshal_cost t ~payload_bytes ~copies =
  Time.span_add
    (Time.span_ns (payload_bytes * t.wire.Wire.send_cpu_per_byte_ns))
    (Time.span_scale copies t.wire.Wire.send_cpu_fixed)

(* Per-multicast adversary effects, applied in destination order inside
   the marshalling completion. Two budgeted powers act on the fan-out as a
   whole rather than per copy:
   - drop budget: suppress up to [drop_budget] copies of this multicast,
     victims chosen by shuffling the destination indices — but never all
     copies, one always survives (the adversary of the BRB literature may
     silence a minority of each broadcast, not erase it);
   - equivocation: substitute a well-formed alternate payload on some
     copies while at least the first surviving destination keeps the
     original, so different receivers see conflicting contents for the
     same logical broadcast.
   Every draw is behind a nonzero-knob guard and comes from the adversary
   stream; with all knobs zero this degenerates to exactly the plain
   [List.iter transmit_copy] it replaced. *)
let fanout t adv ~src ~payload_bytes ~parent ~copies dsts msg =
  let drops = Array.make copies false in
  if adv.drop_budget > 0 && copies > 1 then begin
    let victims = min adv.drop_budget (copies - 1) in
    let k = Repro_sim.Rng.int adv.adv_rng (victims + 1) in
    if k > 0 then begin
      let idx = Array.init copies (fun i -> i) in
      Repro_sim.Rng.shuffle_in_place adv.adv_rng idx;
      for i = 0 to k - 1 do
        drops.(idx.(i)) <- true
      done
    end
  end;
  let alt =
    if
      adv.equivocate_rate > 0.0
      && Repro_sim.Rng.float adv.adv_rng 1.0 < adv.equivocate_rate
    then adv.mutators.equivocate msg
    else None
  in
  let original_kept = ref false in
  List.iteri
    (fun i dst ->
      let adv_drop = drops.(i) in
      let msg, payload_bytes =
        match alt with
        | Some alt_msg
          when (not adv_drop) && !original_kept
               && Repro_sim.Rng.bool adv.adv_rng ->
          adv.equivocated <- adv.equivocated + 1;
          if Obs.enabled t.obs then Obs.incr t.obs "net.adv.equivocated";
          (alt_msg, t.payload_bytes alt_msg)
        | _ ->
          if not adv_drop then original_kept := true;
          (msg, payload_bytes)
      in
      transmit_copy t ~adv_drop ~src ~dst ~payload_bytes ~parent msg)
    dsts

(* Push admitted copies through the NIC after one marshalling charge on the
   sender's CPU. Admission is the crash point: a copy accepted here reaches
   the wire even if the sender crashes moments later (kernel buffers
   flush), which is exactly what [crash_after_sends] relies on. *)
let transmit t ~src ~dsts ~copies msg =
  let sender = t.nodes.(src) in
  let payload_bytes = t.payload_bytes msg in
  let parent = Obs.span_ctx t.obs in
  Cpu.submit sender.cpu ~cost:(marshal_cost t ~payload_bytes ~copies)
    (fun () ->
      match t.adversary with
      | Some adv -> fanout t adv ~src ~payload_bytes ~parent ~copies dsts msg
      | None ->
        List.iter
          (fun dst -> transmit_copy t ~src ~dst ~payload_bytes ~parent msg)
          dsts)

(* The point-to-point fast path: no destination list at all. *)
let transmit_one t ~src ~dst msg =
  let sender = t.nodes.(src) in
  let payload_bytes = t.payload_bytes msg in
  let parent = Obs.span_ctx t.obs in
  Cpu.submit sender.cpu ~cost:(marshal_cost t ~payload_bytes ~copies:1)
    (fun () -> transmit_copy t ~src ~dst ~payload_bytes ~parent msg)

let count_remote dsts src =
  List.fold_left (fun acc dst -> if dst = src then acc else acc + 1) 0 dsts

let multicast t ~src ~dsts msg =
  let sender = t.nodes.(src) in
  (* Local delivery: no wire, no CPU charge, no statistics. *)
  if (not sender.crashed) && List.exists (fun dst -> dst = src) dsts then
    deliver_local t ~src msg;
  match sender.sends_before_crash with
  | None when not sender.crashed ->
    (* No crash budget armed — every remote copy is admitted, and when
       [dsts] has no self entry (the broadcast path) the caller's list is
       reused as is. *)
    let copies = count_remote dsts src in
    if copies > 0 then
      let remote =
        if copies = List.length dsts then dsts
        else List.filter (fun dst -> dst <> src) dsts
      in
      transmit t ~src ~dsts:remote ~copies msg
  | _ ->
    (* The crash budget is consumed copy by copy, in destination order, so
       a crash can land in the middle of the fan-out. *)
    let remote = List.filter (fun dst -> dst <> src) dsts in
    let admitted = List.filter (fun _ -> sender_alive sender) remote in
    if admitted <> [] then
      transmit t ~src ~dsts:admitted ~copies:(List.length admitted) msg

let send t ~src ~dst msg =
  if dst = src then begin
    if not t.nodes.(src).crashed then deliver_local t ~src msg
  end
  else if sender_alive t.nodes.(src) then transmit_one t ~src ~dst msg

let send_to_others t ~src msg = multicast t ~src ~dsts:t.others.(src) msg
let stats t = t.stats

(* ---- Snapshot ----

   The section carries every enumerable knob and counter; the bulk
   payload carries the matrices, per-node NIC accounting and the RNG
   stream states. Handler closures and in-flight arrival events are
   restored by the world blob, not here. *)

type node_data = {
  d_nic_free_ns : int;
  d_nic_busy_ns : int;
  d_crashed : bool;
  d_sends_before_crash : int option;
}

type net_data = {
  d_last_arrival : int array array;
  d_cut : bool array array;
  d_nodes : node_data array;
  d_rng : Snapshot.section;
  d_adv_rng : Snapshot.section option;
  d_stats : Net_stats.dump;
}

let section_name = "net.network"

let snapshot t =
  let count_row acc row =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row
  in
  let adv_fields =
    match t.adversary with
    | None -> [ ("adversary", Snapshot.Bool false) ]
    | Some a ->
      [
        ("adversary", Snapshot.Bool true);
        ("adv.drop_budget", Snapshot.Int a.drop_budget);
        ("adv.corrupt_rate", Snapshot.Float a.corrupt_rate);
        ("adv.duplicate_rate", Snapshot.Float a.duplicate_rate);
        ("adv.reorder_window_ns", Snapshot.Int (Time.span_to_ns a.reorder_window));
        ("adv.equivocate_rate", Snapshot.Float a.equivocate_rate);
        ("adv.dropped", Snapshot.Int a.dropped);
        ("adv.corrupted", Snapshot.Int a.corrupted);
        ("adv.duplicated", Snapshot.Int a.duplicated);
        ("adv.reordered", Snapshot.Int a.reordered);
        ("adv.equivocated", Snapshot.Int a.equivocated);
      ]
  in
  let data =
    Snapshot.pack
      {
        d_last_arrival = Array.map (Array.map Time.to_ns) t.last_arrival;
        d_cut = Array.map Array.copy t.cut;
        d_nodes =
          Array.map
            (fun nd ->
              {
                d_nic_free_ns = Time.to_ns nd.nic_free_at;
                d_nic_busy_ns = nd.nic_busy_ns;
                d_crashed = nd.crashed;
                d_sends_before_crash = nd.sends_before_crash;
              })
            t.nodes;
        d_rng = Repro_sim.Rng.snapshot ~name:"net.rng" t.rng;
        d_adv_rng =
          Option.map
            (fun a -> Repro_sim.Rng.snapshot ~name:"net.adv_rng" a.adv_rng)
            t.adversary;
        d_stats = Net_stats.dump t.stats;
      }
  in
  Snapshot.make ~name:section_name ~version:1 ~data
    ([
       ("n", Snapshot.Int (Array.length t.nodes));
       ("batched", Snapshot.Bool t.batched);
       (* In-flight frames live in link rings (closures and payloads ride
          the world blob, like queue contents); the count is recorded so a
          restore can check the blob carried them. *)
       ("frames_in_flight", Snapshot.Int (frames_in_flight t));
       ("loss_rate", Snapshot.Float t.loss_rate);
       ("extra_delay_ns", Snapshot.Int (Time.span_to_ns t.extra_delay));
       ( "crashed",
         Snapshot.Int
           (Array.fold_left
              (fun acc nd -> if nd.crashed then acc + 1 else acc)
              0 t.nodes) );
       ("cut_links", Snapshot.Int (Array.fold_left count_row 0 t.cut));
       ("msgs_sent", Snapshot.Int (Net_stats.snapshot t.stats).Net_stats.messages);
     ]
    @ adv_fields)

let restore t s =
  Snapshot.check s ~name:section_name ~version:1;
  let n = Array.length t.nodes in
  if Snapshot.get_int s "n" <> n then
    raise
      (Snapshot.Codec_error
         (Printf.sprintf "net.network: snapshot has n=%d, live network has n=%d"
            (Snapshot.get_int s "n") n));
  if Snapshot.get_bool s "batched" <> t.batched then
    raise
      (Snapshot.Codec_error
         "net.network: snapshot and live network disagree on batched hops");
  let frames = Snapshot.get_int s "frames_in_flight" in
  if frames <> frames_in_flight t then
    raise
      (Snapshot.Codec_error
         (Printf.sprintf
            "net.network: %d in-flight frames recorded but %d live; frames \
             travel only in the world blob"
            frames (frames_in_flight t)));
  t.loss_rate <- Snapshot.get_float s "loss_rate";
  t.extra_delay <- Time.span_ns (Snapshot.get_int s "extra_delay_ns");
  let (d : net_data) = Snapshot.unpack_data s in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> t.last_arrival.(i).(j) <- Time.of_ns v) row)
    d.d_last_arrival;
  Array.iteri (fun i row -> Array.blit row 0 t.cut.(i) 0 n) d.d_cut;
  Array.iteri
    (fun i nd ->
      let node = t.nodes.(i) in
      node.nic_free_at <- Time.of_ns nd.d_nic_free_ns;
      node.nic_busy_ns <- nd.d_nic_busy_ns;
      node.crashed <- nd.d_crashed;
      node.sends_before_crash <- nd.d_sends_before_crash)
    d.d_nodes;
  Repro_sim.Rng.restore ~name:"net.rng" t.rng d.d_rng;
  Net_stats.load t.stats d.d_stats;
  match (Snapshot.get_bool s "adversary", t.adversary) with
  | false, None -> ()
  | false, Some a ->
    (* Snapshot taken before arming (or with a disarmed adversary):
       zero every knob and counter on the live one. *)
    a.drop_budget <- 0;
    a.corrupt_rate <- 0.0;
    a.duplicate_rate <- 0.0;
    a.reorder_window <- Time.span_zero;
    a.equivocate_rate <- 0.0;
    a.dropped <- 0;
    a.corrupted <- 0;
    a.duplicated <- 0;
    a.reordered <- 0;
    a.equivocated <- 0
  | true, None ->
    raise
      (Snapshot.Codec_error
         "net.network: snapshot has an armed adversary; call arm_adversary \
          first (its mutators are closures and cannot be restored)")
  | true, Some a ->
    a.drop_budget <- Snapshot.get_int s "adv.drop_budget";
    a.corrupt_rate <- Snapshot.get_float s "adv.corrupt_rate";
    a.duplicate_rate <- Snapshot.get_float s "adv.duplicate_rate";
    a.reorder_window <- Time.span_ns (Snapshot.get_int s "adv.reorder_window_ns");
    a.equivocate_rate <- Snapshot.get_float s "adv.equivocate_rate";
    a.dropped <- Snapshot.get_int s "adv.dropped";
    a.corrupted <- Snapshot.get_int s "adv.corrupted";
    a.duplicated <- Snapshot.get_int s "adv.duplicated";
    a.reordered <- Snapshot.get_int s "adv.reordered";
    a.equivocated <- Snapshot.get_int s "adv.equivocated";
    (match d.d_adv_rng with
    | Some rs -> Repro_sim.Rng.restore ~name:"net.adv_rng" a.adv_rng rs
    | None -> ())
