open Repro_sim

(** Reliable FIFO channels over fair-lossy links — a simplified TCP.

    The system model of the paper (§2.1) assumes quasi-reliable channels:
    if correct [p] sends m to correct [q], then [q] eventually receives m.
    The paper's testbed gets this from TCP; the simulated {!Network}
    provides it natively. This module closes the loop: it {e implements}
    quasi-reliable FIFO channels on top of links that drop messages (the
    network's {!Network.set_loss_rate} mode), with the standard mechanism —
    per-link sequence numbers, cumulative acknowledgments, out-of-order
    buffering, and timeout-driven retransmission.

    Properties provided towards each peer, as long as both endpoints are
    correct and the link is fair-lossy (every retransmission has an
    independent chance of arriving):

    - every payload sent is eventually delivered (quasi-reliability),
    - exactly once (duplicates suppressed),
    - in send order (FIFO).

    Transport-agnostic: wrap the payloads in {!wire} frames, hand them to
    any unreliable [send_raw], and feed incoming frames to {!receive_raw}.

    {2 Determinism obligations}

    - Retransmission instants derive only from the virtual clock, the rto
      constant and RTT samples of simulated round trips — all functions of
      the simulated history, so a given loss pattern replays identically.
    - The send window is a ring buffer of pooled frame cells mutated in
      place; pooling changes allocation behaviour, never observable
      behaviour: frames are retransmitted oldest-first and acked in seq
      order exactly as a list representation would.
    - [deliver] runs synchronously inside {!receive_raw} in per-link FIFO
      order; no timer interleaving can reorder deliveries. *)

type 'msg wire =
  | Data of { seq : int; payload : 'msg }
      (** [seq] is the per-directed-link sequence number, from 0. *)
  | Ack of { cumulative : int }
      (** All [Data] frames with [seq <= cumulative] have been received. *)

type 'msg t

val create :
  Engine.t ->
  me:Pid.t ->
  n:int ->
  send_raw:(dst:Pid.t -> 'msg wire -> unit) ->
  deliver:(src:Pid.t -> 'msg -> unit) ->
  ?rto:Time.span ->
  ?burst:int ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  'msg t
(** [rto] is the {e floor} of the retransmission timeout (default 20 ms).
    The effective timeout per link is [max rto (2 * srtt)] where [srtt] is
    a smoothed round-trip estimate sampled per Karn's rule (only frames
    acked on their first transmission, EWMA gain 1/8); while no ack makes
    progress it additionally doubles per expiry, up to 16×, and the
    doubling resets on progress. Tracking the measured RTT matters because
    it includes the receiver's CPU queueing delay: retransmitting into a
    backlogged receiver on a fixed short timer floods it with duplicates
    faster than it can process them, and the duplicates themselves then
    keep its queue long (metastable receive-side collapse). [burst]
    (default 32) bounds how many of the oldest unacknowledged frames one
    expiry re-sends — re-sending an {e entire} partition backlog every rto
    injects frames faster than the NIC drains them and
    congestion-collapses the healed network. [deliver] is invoked exactly
    once per payload, in per-link FIFO order. [obs] (default: no-op)
    counts [rchannel.retransmissions] and [rchannel.duplicates] and traces
    each retransmission (layer [`Net], phase [retransmit]). *)

val send : 'msg t -> dst:Pid.t -> 'msg -> unit
(** Queue a payload for reliable delivery to [dst]. A self-send is
    delivered immediately without framing. *)

val receive_raw : 'msg t -> src:Pid.t -> 'msg wire -> unit
(** Feed one frame received from the unreliable network. *)

val retransmissions : 'msg t -> int
(** Total [Data] frames re-sent so far (the cost of the loss). *)

val unacked : 'msg t -> dst:Pid.t -> int
(** Frames awaiting acknowledgment towards one peer. *)

val srtt : 'msg t -> dst:Pid.t -> Time.span option
(** Smoothed round-trip estimate towards one peer; [None] before the
    first sample. *)

val halt : 'msg t -> unit
(** Stop all retransmission timers (when the owner crashes). *)

val snapshot : 'msg t -> Repro_sim.Snapshot.section
(** The ["net.rchannel.p<me>"] section: retransmission count, halt flag,
    per-link sequence state in the fields; the unacked send windows,
    smoothed RTTs, backoffs and out-of-order receive buffers in the bulk
    payload. *)

val restore : 'msg t -> Repro_sim.Snapshot.section -> unit
(** Rebuild the window rings and receive buffers from the payload.
    Retransmission timers ride the world blob.
    @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
