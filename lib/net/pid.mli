(** Process identifiers.

    The paper's system model (§2.1) is a static set Π = {p1 … pn}. We number
    processes 0 … n-1; the pretty-printer shows the paper's 1-based [p1]
    names.

    {2 Determinism obligations}

    - Identifiers are plain dense ints; {!all} and {!others} enumerate in
      ascending order, the canonical iteration order every layer uses so
      that "for each process" loops schedule events identically on every
      run. *)

type t = int
(** A process identifier in [0, n). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val all : n:int -> t list
(** [all ~n] is [0; 1; …; n-1]. *)

val others : n:int -> t -> t list
(** [others ~n p] is every process except [p], ascending. *)

val pp : t Fmt.t
(** Prints [p1], [p2], … (1-based, as in the paper's figures). *)
