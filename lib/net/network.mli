open Repro_sim

(** Simulated cluster network with quasi-reliable channels.

    Models the paper's testbed (§5.3.1): n dedicated machines on a switched
    Gigabit Ethernet, connected pairwise by TCP. Each process owns

    - a single-core {!Cpu} charged for every send and receive
      (per-message fixed cost plus per-byte cost), and
    - a NIC that serializes outgoing messages at wire bandwidth.

    A message from [p] to [q] therefore experiences: [p]'s CPU queue, [p]'s
    NIC queue, transmission time, propagation delay, [q]'s CPU queue — and
    only then reaches [q]'s handler. Channels between correct processes are
    quasi-reliable and FIFO (§2.1), exactly the guarantee TCP gives the
    paper's stacks.

    Fault injection: processes can crash (silently and permanently, §2.1),
    optionally part-way through a multi-send so that broadcast atomicity
    violations can be exercised; directed links can be cut and healed to
    test failure-detector behaviour. Neither facility is used in good-run
    benchmarks.

    {2 Determinism obligations}

    - Delivery instants are a pure function of the send history and the
      wire/topology constants; optional jitter draws come from the
      engine's seeded {!Rng} stream, never ambient randomness.
    - Per-link FIFO is preserved even under jitter (arrival times are
      clamped to the link's previous arrival), and multi-destination sends
      iterate destinations in ascending pid order, so the event queue sees
      the same insertion sequence every run.
    - Internal per-process state lives in plain arrays indexed by pid;
      no hash-ordered iteration can leak into delivery order. *)

type 'msg t
(** A network carrying messages of type ['msg]. *)

val create :
  Engine.t ->
  ?wire:Wire.t ->
  ?topology:Topology.t ->
  ?kind_of:('msg -> string) ->
  ?layer_of:('msg -> Repro_obs.Obs.layer) ->
  ?obs:Repro_obs.Obs.t ->
  ?batched:bool ->
  n:int ->
  payload_bytes:('msg -> int) ->
  unit ->
  'msg t
(** [create engine ~n ~payload_bytes ()] builds an [n]-process cluster.
    [payload_bytes] gives the serialized size of a message, used for both
    timing and traffic accounting. [kind_of] (default: constant ["msg"])
    labels messages for the per-kind statistics. [topology] overrides the
    wire model's uniform propagation latency per link.

    [batched] (default [true]) selects the batched-hop wire path: each
    directed link keeps a flat ring of pooled in-flight hop records and at
    most one pending engine event (a pump armed under the head record's
    reserved schedule-order ticket), instead of one queue event per copy.
    The observable run — deliveries, RNG draws, span instants, counters,
    [events_executed] — is byte-identical to [batched:false]; only
    resident queue cells and wallclock change. Arming a message adversary
    silently reverts new traffic to the unbatched path (adversarial
    reordering breaks the per-link FIFO monotonicity the ring exploits),
    which is no observable change either.

    [obs] (default: the no-op sink) receives layer-attributed traffic
    counters ([net.msgs.<layer>], [net.payload_bytes.<layer>],
    [net.wire_bytes.<layer>], [net.kind_msgs.<kind>], [net.dropped_msgs])
    and per-copy trace events (phases [tx], [rx], [drop]); [layer_of]
    (default: constant [`Net]) attributes each message to its protocol
    layer for that accounting. *)

val n : _ t -> int
(** Number of processes in the (static) system. *)

val engine : _ t -> Engine.t
(** The engine driving this network. *)

val wire : _ t -> Wire.t
(** The wire cost model in force. *)

val register : 'msg t -> Pid.t -> (src:Pid.t -> 'msg -> unit) -> unit
(** Install the receive handler for a process. Replaces any previous
    handler. Messages arriving for a process with no handler are dropped. *)

val send : 'msg t -> src:Pid.t -> dst:Pid.t -> 'msg -> unit
(** Transmit a message. A self-send ([src = dst]) is delivered locally
    after the engine's next scheduling point, costs no CPU or wire time and
    is not counted in the traffic statistics. Sends by crashed processes
    and deliveries to crashed processes vanish silently. *)

val multicast : 'msg t -> src:Pid.t -> dsts:Pid.t list -> 'msg -> unit
(** Send one copy to each destination (self entries are delivered
    locally). The sender's CPU marshals the message {e once} (one per-byte
    charge plus one fixed charge per destination); the NIC then serializes
    one copy per destination — the cost structure of a process fanning one
    buffer out over n-1 TCP connections, and the reason a large-group
    coordinator saturates its NIC before its CPU. *)

val send_to_others : 'msg t -> src:Pid.t -> 'msg -> unit
(** {!multicast} to every process except [src], in ascending pid order. *)

val cpu : _ t -> Pid.t -> Cpu.t
(** The CPU of a process, so protocol layers can charge their own
    processing costs (e.g. framework dispatch) to the same core. *)

val nic_busy_time : _ t -> Pid.t -> Time.span
(** Cumulative time the process's NIC has spent transmitting — the probe
    that shows when a coordinator becomes line-rate-bound (see
    EXPERIMENTS.md on Fig. 10). *)

val crash : _ t -> Pid.t -> unit
(** Crash a process now: all its subsequent sends and receives vanish. *)

val crash_after_sends : _ t -> Pid.t -> int -> unit
(** Crash a process after it initiates [k] more point-to-point sends. With
    [k] smaller than the fan-out, this crashes a process in the middle of a
    broadcast — the scenario that distinguishes reliable broadcast from
    plain send-to-all (§3.3). *)

val is_crashed : _ t -> Pid.t -> bool
(** Whether the process has crashed. *)

val set_loss_rate : _ t -> float -> unit
(** Drop each transmitted copy independently with the given probability
    (0.0 by default). While nonzero, channels are only {e fair-lossy} —
    the §2.1 quasi-reliability assumption is violated, so this is for
    exercising the {!Rchannel} layer (which rebuilds quasi-reliable FIFO
    channels on top) and failure-detector stress, never for protocol
    benchmarks. @raise Invalid_argument outside [0, 1). *)

val cut : _ t -> src:Pid.t -> dst:Pid.t -> unit
(** Drop all messages subsequently sent on the directed link. In-flight
    messages still arrive. Violates quasi-reliability while in force; for
    failure-detector tests only. *)

val heal : _ t -> src:Pid.t -> dst:Pid.t -> unit
(** Undo {!cut} for the directed link. *)

val partition : _ t -> Pid.t list list -> unit
(** [partition t blocks] cuts, in both directions, every link between
    processes in different blocks (a symmetric group partition built from
    the directed {!cut} primitive). Processes absent from every block form
    implicit singleton blocks. Links inside a block are untouched, as are
    links already cut. Undo with {!heal_all}.
    @raise Invalid_argument on an out-of-range pid or a pid listed twice. *)

val heal_all : _ t -> unit
(** Heal every cut link (whether cut directly or via {!partition}). *)

val set_extra_delay : _ t -> Time.span -> unit
(** Add a fixed extra propagation delay to every copy transmitted from now
    on (a delay spike). Zero by default; set back to {!Time.span_zero} to
    end the spike. Per-link FIFO is preserved. In force, message delays
    exceed the good-run bounds, so failure detectors may wrongly suspect —
    which is the point. *)

val extra_delay : _ t -> Time.span
(** The delay spike currently in force. *)

(** {2 Message adversary}

    A channel-level adversary over the quasi-reliable network, armed by the
    fault layer (never in benchmark runs). The adversary owns a {e private}
    RNG stream and every one of its draws sits behind a nonzero-knob
    guard, so an armed adversary with all knobs at zero is event-for-event
    identical to no adversary at all — the non-perturbation contract the
    fault tests pin down. Because the network is generic in ['msg], the
    armer supplies the two payload mutators: [corrupt] wraps a copy in a
    detectable tamper envelope (return [None] to leave it untouched),
    [equivocate] builds a well-formed alternate payload for the same
    logical broadcast (return [None] when the message carries no payload
    worth lying about). *)

type adversary_stats = {
  adv_dropped : int;  (** copies suppressed by the drop budget *)
  adv_corrupted : int;  (** copies tampered in flight *)
  adv_duplicated : int;  (** extra deliveries injected *)
  adv_reordered : int;  (** copies delayed past the FIFO clamp *)
  adv_equivocated : int;  (** copies substituted with the alternate payload *)
}

val arm_adversary :
  'msg t ->
  seed:int ->
  corrupt:('msg -> 'msg option) ->
  equivocate:('msg -> 'msg option) ->
  unit
(** Arm the message adversary with all knobs at zero and counters at zero.
    Idempotent: re-arming an armed network is a no-op. [seed] is the run
    seed; the adversary derives its own dedicated stream from it
    ({!Rng.derive} under a module-private salt) without touching the
    engine's stream, so arming an idle adversary perturbs nothing. *)

val adversary_armed : _ t -> bool
(** Whether {!arm_adversary} has been called. *)

val set_adv_drop_budget : _ t -> int -> unit
(** Allow the adversary to suppress up to [d] copies of each subsequent
    multicast (victims drawn per multicast; at least one copy always
    survives, and point-to-point sends — including {!Rchannel}
    retransmissions — are never subject to the budget, so suppressed
    traffic is recoverable). [0] disarms the power.
    @raise Invalid_argument on a negative budget or an unarmed network. *)

val set_corrupt_rate : _ t -> float -> unit
(** Tamper each transmitted copy independently with the given probability,
    via the armer's [corrupt] mutator.
    @raise Invalid_argument outside [0, 1) or on an unarmed network. *)

val set_duplicate_rate : _ t -> float -> unit
(** Deliver each admitted copy twice with the given probability (the second
    arrival lands shortly after the first, outside the FIFO clamp).
    @raise Invalid_argument outside [0, 1) or on an unarmed network. *)

val set_reorder_window : _ t -> Time.span -> unit
(** Add a uniform extra delay in [0, w] to each admitted copy, applied
    {e after} the per-link FIFO clamp and excluded from it — while the
    window is open, channels stop being FIFO. {!Time.span_zero} disarms.
    @raise Invalid_argument on a negative span or an unarmed network. *)

val set_equivocate_rate : _ t -> float -> unit
(** For each multicast, with the given probability, substitute the armer's
    [equivocate] payload on a coin-flipped subset of the surviving copies
    (the first surviving destination always keeps the original), so
    different receivers see conflicting contents for the same logical
    broadcast. @raise Invalid_argument outside [0, 1) or on an unarmed
    network. *)

val adversary_stats : _ t -> adversary_stats
(** Cumulative injection counts since arming (all zero when unarmed). *)

val stats : _ t -> Net_stats.t
(** Live traffic counters (see {!Net_stats}). *)

val section_name : string
(** ["net.network"]. *)

val snapshot : 'msg t -> Repro_sim.Snapshot.section
(** The ["net.network"] section: loss/delay knobs, per-node crash and NIC
    accounting, link matrices, traffic statistics, base and adversary RNG
    stream states, adversary knobs and counters. *)

val restore : 'msg t -> Repro_sim.Snapshot.section -> unit
(** Re-seat the data-plane state. Handler closures and in-flight arrival
    events ride the world blob. If the snapshot was taken with an armed
    adversary, the live network must already be armed (mutators are
    closures). @raise Repro_sim.Snapshot.Codec_error on mismatch. *)
