(** Network traffic counters.

    The analytical evaluation of the paper (§5.2) is entirely in terms of
    how many messages and how many bytes each stack puts on the wire. These
    counters are the measured side of that comparison: every message that
    physically leaves a NIC is recorded here. Local (self) deliveries are
    not counted, matching the paper's accounting.

    {2 Determinism obligations}

    - Counters are pure accumulators over the (deterministic) send
      history; {!by_kind} sorts its result by kind name so no
      hash-ordered iteration reaches reports. *)

type t

type snapshot = {
  messages : int;  (** Messages sent on the wire. *)
  payload_bytes : int;  (** Protocol payload bytes, headers excluded. *)
  wire_bytes : int;  (** Bytes including per-message framing. *)
}

val create : n:int -> t
(** Fresh zeroed counters for an [n]-process system. *)

val record_send :
  t -> src:Pid.t -> kind:string -> payload_bytes:int -> wire_bytes:int -> unit
(** Count one message of the given protocol kind leaving [src]'s NIC. *)

val by_kind : t -> (string * int) list
(** Message counts per protocol kind since creation, sorted by kind. *)

val snapshot : t -> snapshot
(** Current totals. *)

val sent_by : t -> Pid.t -> int
(** Messages sent by one process since creation. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the traffic between two snapshots. *)

val zero : snapshot
(** The empty snapshot. *)

val pp_snapshot : snapshot Fmt.t
(** One line, no trailing newline:
    [<messages> msgs, <payload_bytes> B payload, <wire_bytes> B on wire] —
    e.g. [42 msgs, 4096 B payload, 5462 B on wire]. For the same totals
    split by protocol layer, observe the run with [Repro_obs.Obs] (the
    [net.msgs.*] / [net.*_bytes.*] counters). *)

type dump = {
  d_messages : int;
  d_payload : int;
  d_wire : int;
  d_sent : int array;
  d_kinds : (string * int) list;  (** sorted by kind *)
}
(** The full counter state as pure data, for {!Network}'s snapshot
    payload. [d_kinds] is sorted, so a dump is a canonical value. *)

val dump : t -> dump

val load : t -> dump -> unit
(** Overwrite the live counters with a dump's.
    @raise Invalid_argument if the per-sender array sizes differ. *)
