open Repro_sim

(** Wire cost model.

    Collects the constants that turn a logical message into network and CPU
    occupancy. Defaults approximate the paper's testbed: Gigabit Ethernet
    with TCP framing, and the heavyweight per-message processing of a
    2005-era JVM stack (the paper reports CPU saturation above 500 msgs/s,
    so per-message CPU cost — not the wire — is the first bottleneck).

    {2 Determinism obligations}

    - Pure constants: every cost is exact integer arithmetic over them,
      and the only stochastic field, [propagation_jitter], is an upper
      bound for draws taken from the seeded {!Rng} — zero by default,
      keeping good-run latencies fully deterministic. *)

type t = {
  header_bytes : int;
      (** Framing added to every message (Ethernet + IP + TCP + protocol
          headers). *)
  bandwidth_bytes_per_s : int;
      (** NIC serialization rate. 125_000_000 for Gigabit Ethernet. *)
  propagation : Time.span;
      (** One-way switch + cable latency between any two cluster nodes
          (overridden per link when the network is given a topology). *)
  propagation_jitter : Time.span;
      (** Upper bound of the uniform random jitter added to each message's
          propagation delay. Per-link FIFO is preserved by clamping: a
          message never arrives before one sent earlier on the same link.
          Zero (the default) keeps runs latency-deterministic. *)
  send_cpu_fixed : Time.span;
      (** CPU cost to marshal and hand one message to the kernel,
          independent of size. *)
  send_cpu_per_byte_ns : int;
      (** Additional CPU nanoseconds per payload byte sent. *)
  recv_cpu_fixed : Time.span;
      (** CPU cost to take one message from the kernel and unmarshal it,
          independent of size. *)
  recv_cpu_per_byte_ns : int;
      (** Additional CPU nanoseconds per payload byte received. *)
}

val default : t
(** Constants calibrated against the paper's testbed; see DESIGN.md §6 and
    EXPERIMENTS.md for the calibration story. *)

val on_wire_bytes : t -> payload_bytes:int -> int
(** Total bytes a message occupies on the wire: payload plus headers. *)

val tx_time : t -> payload_bytes:int -> Time.span
(** Time the sender's NIC is busy serializing the message. *)

val send_cpu_cost : t -> payload_bytes:int -> Time.span
(** CPU time charged at the sender for one message. *)

val recv_cpu_cost : t -> payload_bytes:int -> Time.span
(** CPU time charged at the receiver for one message. *)
