open Repro_sim

(** Network topologies: per-link propagation latency.

    The paper's testbed is a single switched LAN (uniform latency), but the
    simulator supports arbitrary pairwise latencies so experiments can
    explore rack- or WAN-like layouts (e.g. how the modular/monolithic gap
    behaves when the coordinator is far away). Latencies are symmetric in
    the built-in constructors; {!of_matrix} accepts asymmetric ones.

    {2 Determinism obligations}

    - A topology is an immutable total function [src, dst -> span] fixed
      at construction; latency lookups have no state and no randomness, so
      they cannot perturb event ordering between runs. *)

type t

val uniform : Time.span -> t
(** Every pair of distinct processes at the same one-way latency — the
    paper's cluster. *)

val racks : rack_size:int -> intra:Time.span -> inter:Time.span -> t
(** Processes grouped into racks of [rack_size] consecutive pids:
    [intra] latency within a rack, [inter] across racks.
    @raise Invalid_argument if [rack_size < 1]. *)

val star : center:Pid.t -> near:Time.span -> far:Time.span -> t
(** Links touching [center] have latency [near]; all others [far] — a
    coordinator-close / replicas-remote layout. *)

val of_matrix : Time.span array array -> t
(** Explicit latency matrix; [m.(src).(dst)] is the one-way latency.
    @raise Invalid_argument if the matrix is not square. *)

val latency : t -> src:Pid.t -> dst:Pid.t -> Time.span
(** One-way propagation latency of the directed link.
    @raise Invalid_argument on out-of-range pids for {!of_matrix}
    topologies. *)
