(** Fixed-size domain pool with deterministic, ordered collection.

    The experiment harness is a matrix of independent seeded simulations
    (stack × group size × seed, campaign trials, study sweep points). Each
    cell is a pure function of its inputs — it builds its own engine,
    group and observability sink — so cells can run on separate domains.
    What must NOT change with parallelism is the output: verdict files,
    metrics dumps and printed tables are defined by the sequential
    schedule. [map] therefore keeps a strict contract:

    - tasks are claimed FIFO (task [i] starts no later than task [i+1]);
    - every task writes its own result slot, nothing else shared;
    - [collect] fires in task order 0, 1, 2, … regardless of completion
      order, streaming as the completed prefix grows;
    - the returned list is in task order;
    - an exception raised by task [i] is re-raised (with its backtrace)
      after [collect] has fired for exactly the tasks before [i] — the
      sequential semantics.

    With [jobs <= 1] no domain is spawned and [map] is exactly the
    sequential [List.map] loop, so [--jobs 1] is the pre-parallelism code
    path, not a one-worker pool.

    Tasks must not print, write files, or touch shared mutable state —
    side effects belong in [collect], which always runs in the calling
    domain (`repro lint`'s [toplevel-state] rule enforces the absence of
    shared toplevel state across [lib/]). *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the collector, never go below sequential. *)

val map : ?jobs:int -> ?collect:(int -> 'b -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs ~collect f items] applies [f] to every item on a pool of
    [min jobs (length items)] worker domains and returns the results in
    item order. [collect i y] is called in the calling domain, in item
    order, as results become available. Exceptions from [f] or [collect]
    propagate after all workers have been joined; remaining tasks are
    abandoned (never started), matching sequential behaviour. *)
