(* A fixed-size domain pool with a FIFO task queue, per-task result
   slots, and ordered collection.

   Concurrency structure: [next] (the queue head), [slots] and [stop] are
   only touched under [lock]; task bodies run outside it. Workers claim
   ascending indices, so claims are FIFO and — key invariant — every index
   below a claimed one has also been claimed. The collector walks the
   slots in index order, waiting on [filled] for the next slot; results
   therefore stream out in the sequential order however the domains
   interleave.

   Failure: the first task that raises records the exception in its slot
   and sets [stop], which makes every worker exit instead of claiming
   further tasks (in-flight tasks still complete and fill their slots).
   The collector flushes the prefix before the failed index, joins the
   pool, and re-raises with the original backtrace — exactly what the
   sequential loop would have done, minus any tasks that were already
   in flight (whose results are discarded). *)

type 'b slot =
  | Empty
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* The [jobs <= 1] path: the exact sequential loop, no domains, no
   queue. Callers rely on this being indistinguishable from the
   pre-parallelism code. *)
let map_seq ~collect f items =
  List.mapi
    (fun i x ->
      let y = f x in
      collect i y;
      y)
    items

let map ?(jobs = 1) ?(collect = fun _ _ -> ()) f items =
  if jobs <= 1 then map_seq ~collect f items
  else begin
    let tasks = Array.of_list items in
    let n = Array.length tasks in
    if n = 0 then []
    else begin
      let slots = Array.make n Empty in
      let lock = Mutex.create () in
      let filled = Condition.create () in
      let next = ref 0 in
      let stop = ref false in
      let worker () =
        let rec loop () =
          Mutex.lock lock;
          let i = if !stop then n else !next in
          if i < n then incr next;
          Mutex.unlock lock;
          if i < n then begin
            let r =
              try Done (f tasks.(i))
              with e -> Raised (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock lock;
            slots.(i) <- r;
            (match r with Raised _ -> stop := true | Empty | Done _ -> ());
            Condition.broadcast filled;
            Mutex.unlock lock;
            loop ()
          end
        in
        loop ()
      in
      let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
      let joined = ref false in
      let join_all () =
        if not !joined then begin
          joined := true;
          List.iter Domain.join domains
        end
      in
      let halt () =
        Mutex.lock lock;
        stop := true;
        Mutex.unlock lock;
        join_all ()
      in
      (* Stream the completed prefix in task order. Stops early (without
         flushing) as soon as [stop] is observed with the next slot still
         empty — the failure, if any, is ahead of us and is handled after
         the join. *)
      let streamed = ref 0 in
      (try
         let continue = ref true in
         while !continue && !streamed < n do
           Mutex.lock lock;
           while slots.(!streamed) = Empty && not !stop do
             Condition.wait filled lock
           done;
           let s = slots.(!streamed) in
           Mutex.unlock lock;
           match s with
           | Done y ->
             collect !streamed y;
             incr streamed
           | Raised _ | Empty -> continue := false
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         halt ();
         Printexc.raise_with_backtrace e bt);
      join_all ();
      (* Post-join: flush whatever completed beyond the streamed prefix up
         to the first failure, then re-raise it. Claims are FIFO, so below
         the first [Raised] slot every slot is [Done]; [Empty] can only
         appear above it (tasks abandoned by [stop]). *)
      let rec finish k =
        if k < n then
          match slots.(k) with
          | Done y ->
            collect k y;
            finish (k + 1)
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | Empty ->
            (* No failure at or below an empty slot means the pool stopped
               without a cause — impossible by construction. *)
            assert false
      in
      finish !streamed;
      List.init n (fun i ->
          match slots.(i) with Done y -> y | Raised _ | Empty -> assert false)
    end
  end
