(* Tests for the simulation substrate: virtual time, deterministic RNG,
   event queue, engine and CPU model. *)

open Repro_sim

let span_ms_f = Time.span_to_ms_float

(* ---- Time ---- *)

let test_time_basics () =
  Alcotest.(check int) "zero" 0 (Time.to_ns Time.zero);
  Alcotest.(check int) "of_ns/to_ns" 42 (Time.to_ns (Time.of_ns 42));
  Alcotest.(check int) "add" 15 (Time.to_ns (Time.add (Time.of_ns 5) (Time.span_ns 10)));
  Alcotest.(check int) "diff" 7
    (Time.span_to_ns (Time.diff (Time.of_ns 10) (Time.of_ns 3)));
  Alcotest.(check int) "span units: us" 3_000 (Time.span_to_ns (Time.span_us 3));
  Alcotest.(check int) "span units: ms" 2_000_000 (Time.span_to_ns (Time.span_ms 2));
  Alcotest.(check int) "span units: s" 1_000_000_000 (Time.span_to_ns (Time.span_s 1));
  Alcotest.(check int) "span_add" 30
    (Time.span_to_ns (Time.span_add (Time.span_ns 10) (Time.span_ns 20)));
  Alcotest.(check int) "span_scale" 50
    (Time.span_to_ns (Time.span_scale 5 (Time.span_ns 10)))

let test_time_invalid () =
  Alcotest.check_raises "negative instant" (Invalid_argument "Time.of_ns: negative")
    (fun () -> ignore (Time.of_ns (-1)));
  Alcotest.check_raises "negative span" (Invalid_argument "Time.span_ns: negative")
    (fun () -> ignore (Time.span_ns (-5)));
  Alcotest.check_raises "negative diff" (Invalid_argument "Time.diff: negative duration")
    (fun () -> ignore (Time.diff (Time.of_ns 1) (Time.of_ns 2)))

let test_time_order () =
  let a = Time.of_ns 1 and b = Time.of_ns 2 in
  Alcotest.(check bool) "lt" true Time.(a < b);
  Alcotest.(check bool) "le" true Time.(a <= a);
  Alcotest.(check bool) "gt" true Time.(b > a);
  Alcotest.(check int) "max" 2 (Time.to_ns (Time.max a b));
  Alcotest.(check int) "min" 1 (Time.to_ns (Time.min a b));
  Alcotest.(check (float 1e-9)) "ms float" 0.000002 (span_ms_f (Time.span_ns 2))

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:3 in
  let child = Rng.split a in
  (* Drawing from the child must not perturb the parent's stream. *)
  for _ = 1 to 10 do
    ignore (Rng.bits64 child)
  done;
  let after_split = Rng.bits64 a in
  let c = Rng.create ~seed:3 in
  let _ = Rng.split c in
  Alcotest.(check int64) "parent stream unchanged by child draws" after_split
    (Rng.bits64 c)

let test_rng_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "int in bounds" true (x >= 0 && x < 17);
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in bounds" true (f >= 0.0 && f < 2.5)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:10.0 in
    Alcotest.(check bool) "nonnegative" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean near 10 (got %f)" mean)
    true
    (mean > 9.0 && mean < 11.0)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ---- Event queue ---- *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:(Time.of_ns 30) "c");
  ignore (Event_queue.push q ~time:(Time.of_ns 10) "a");
  ignore (Event_queue.push q ~time:(Time.of_ns 20) "b");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "END" in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  Alcotest.(check (list string)) "pops in time order" [ "a"; "b"; "c"; "END" ]
    [ p1; p2; p3; p4 ]

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  let t = Time.of_ns 5 in
  List.iter (fun v -> ignore (Event_queue.push q ~time:t v)) [ "1"; "2"; "3"; "4" ];
  let rec drain acc =
    match Event_queue.pop q with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list string)) "ties pop in insertion order" [ "1"; "2"; "3"; "4" ]
    (drain [])

let test_queue_cancel () =
  let q = Event_queue.create () in
  let _ = Event_queue.push q ~time:(Time.of_ns 1) "keep1" in
  let h = Event_queue.push q ~time:(Time.of_ns 2) "gone" in
  let _ = Event_queue.push q ~time:(Time.of_ns 3) "keep2" in
  Event_queue.cancel q h;
  Event_queue.cancel q h;
  (* double cancel is a no-op *)
  Alcotest.(check int) "length after cancel" 2 (Event_queue.length q);
  let rec drain acc =
    match Event_queue.pop q with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list string)) "cancelled event skipped" [ "keep1"; "keep2" ] (drain [])

let test_queue_cancel_after_pop () =
  (* Regression: cancelling a handle whose event already popped must be a
     no-op — it used to drive the pending counter negative. *)
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:(Time.of_ns 1) "x" in
  ignore (Event_queue.push q ~time:(Time.of_ns 2) "y");
  ignore (Event_queue.pop q);
  Event_queue.cancel q h;
  Alcotest.(check int) "pending stays correct" 1 (Event_queue.length q);
  ignore (Event_queue.pop q);
  Alcotest.(check int) "empty at the end" 0 (Event_queue.length q);
  Alcotest.(check bool) "is_empty" true (Event_queue.is_empty q)

let test_queue_peek () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty peek" true (Event_queue.peek_time q = None);
  let h = Event_queue.push q ~time:(Time.of_ns 4) "x" in
  ignore (Event_queue.push q ~time:(Time.of_ns 9) "y");
  Alcotest.(check (option int)) "peek earliest" (Some 4)
    (Option.map Time.to_ns (Event_queue.peek_time q));
  Event_queue.cancel q h;
  Alcotest.(check (option int)) "peek skips cancelled" (Some 9)
    (Option.map Time.to_ns (Event_queue.peek_time q))

(* Property: popping the queue yields (time, seq)-sorted order for any
   insertion sequence with arbitrary times. *)
let prop_queue_sorted =
  QCheck.Test.make ~name:"event queue pops sorted by (time, insertion)" ~count:300
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i time -> ignore (Event_queue.push q ~time:(Time.of_ns time) i)) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (time, seq) -> drain ((Time.to_ns time, seq) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.sort compare popped in
      popped = sorted && List.length popped = List.length times)

let prop_queue_cancel_subset =
  QCheck.Test.make ~name:"cancelling a subset removes exactly that subset" ~count:200
    QCheck.(pair (list (int_bound 100)) (list bool))
    (fun (times, cancels) ->
      let q = Event_queue.create () in
      let handles =
        List.mapi (fun i t -> (i, Event_queue.push q ~time:(Time.of_ns t) i)) times
      in
      let cancelled =
        List.filteri
          (fun i _ -> match List.nth_opt cancels i with Some true -> true | _ -> false)
          handles
      in
      List.iter (fun (_, h) -> Event_queue.cancel q h) cancelled;
      let cancelled_ids = List.map fst cancelled in
      let rec drain acc =
        match Event_queue.pop q with Some (_, v) -> drain (v :: acc) | None -> acc
      in
      let survivors = drain [] in
      List.for_all (fun i -> not (List.mem i survivors)) cancelled_ids
      && List.length survivors = List.length times - List.length cancelled_ids)

(* ---- Calendar queue vs reference binary heap ---- *)

(* The oracle: the binary heap the calendar queue replaced, keyed by
   (time, seq) with the same lazy-cancellation semantics. Deliberately
   naive — a correctness model, not a performance contender. *)
module Ref_heap = struct
  type 'a cell = {
    time : int;
    seq : int;
    value : 'a;
    mutable gone : bool; (* popped or cancelled *)
  }

  type 'a t = {
    mutable arr : 'a cell option array;
    mutable size : int;
    mutable next_seq : int;
    mutable pending : int;
  }

  let create () = { arr = Array.make 16 None; size = 0; next_seq = 0; pending = 0 }
  let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)
  let get t i = match t.arr.(i) with Some c -> c | None -> assert false

  let swap t i j =
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(j);
    t.arr.(j) <- tmp

  let push t ~time value =
    if t.size = Array.length t.arr then begin
      let arr' = Array.make (2 * t.size) None in
      Array.blit t.arr 0 arr' 0 t.size;
      t.arr <- arr'
    end;
    let c = { time; seq = t.next_seq; value; gone = false } in
    t.next_seq <- t.next_seq + 1;
    t.pending <- t.pending + 1;
    let i = ref t.size in
    t.size <- t.size + 1;
    t.arr.(!i) <- Some c;
    while !i > 0 && before (get t !i) (get t ((!i - 1) / 2)) do
      let p = (!i - 1) / 2 in
      swap t !i p;
      i := p
    done;
    c

  let cancel t c =
    (* Cancelling a popped or already-cancelled event is a no-op, exactly
       like a stale Event_queue handle. *)
    if not c.gone then begin
      c.gone <- true;
      t.pending <- t.pending - 1
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < t.size && before (get t l) (get t !m) then m := l;
    if r < t.size && before (get t r) (get t !m) then m := r;
    if !m <> i then begin
      swap t i !m;
      sift_down t !m
    end

  let rec pop t =
    if t.size = 0 then None
    else begin
      let c = get t 0 in
      t.size <- t.size - 1;
      t.arr.(0) <- t.arr.(t.size);
      t.arr.(t.size) <- None;
      if t.size > 0 then sift_down t 0;
      if c.gone then pop t (* cancelled: skip *)
      else begin
        c.gone <- true;
        t.pending <- t.pending - 1;
        Some (c.time, c.value)
      end
    end

  let length t = t.pending
end

type churn_op = Push of int | Pop | Cancel of int

(* Property: under an arbitrary interleaving of pushes, pops and cancels —
   including cancels aimed at already-popped events, which exercise the
   calendar queue's handle-generation check against recycled pool cells —
   the calendar queue is observably indistinguishable from the reference
   heap: same pop results (equal-time ties included), same lengths, same
   residual drain order. *)
let prop_queue_matches_heap =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (5, map (fun t -> Push t) (int_bound 300));
          (3, return Pop);
          (4, map (fun i -> Cancel i) (int_bound 2000));
        ])
  in
  let print_op = function
    | Push t -> Printf.sprintf "Push %d" t
    | Pop -> "Pop"
    | Cancel i -> Printf.sprintf "Cancel %d" i
  in
  let ops_arb =
    QCheck.make
      ~print:(QCheck.Print.list print_op)
      QCheck.Gen.(list_size (int_range 0 400) op_gen)
  in
  QCheck.Test.make ~name:"calendar queue equivalent to reference heap under churn"
    ~count:200 ops_arb
    (fun ops ->
      let q = Event_queue.create () in
      let h = Ref_heap.create () in
      let handles = ref [] (* newest first *) in
      let npushed = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun op ->
          if !ok then begin
            (match op with
            | Push time ->
              let hq = Event_queue.push q ~time:(Time.of_ns time) !npushed in
              let hc = Ref_heap.push h ~time !npushed in
              handles := (hq, hc) :: !handles;
              incr npushed
            | Pop -> (
              match (Event_queue.pop q, Ref_heap.pop h) with
              | None, None -> ()
              | Some (tq, vq), Some (th, vh) -> check (Time.to_ns tq = th && vq = vh)
              | _ -> check false)
            | Cancel i ->
              if !npushed > 0 then begin
                let hq, hc = List.nth !handles (i mod !npushed) in
                Event_queue.cancel q hq;
                Ref_heap.cancel h hc
              end);
            check (Event_queue.length q = Ref_heap.length h)
          end)
        ops;
      let rec drain_q acc =
        match Event_queue.pop q with
        | Some (t, v) -> drain_q ((Time.to_ns t, v) :: acc)
        | None -> List.rev acc
      in
      let rec drain_h acc =
        match Ref_heap.pop h with
        | Some (t, v) -> drain_h ((t, v) :: acc)
        | None -> List.rev acc
      in
      !ok && drain_q [] = drain_h [])

let test_queue_cancel_heavy_stress () =
  (* 10k events with a deterministic pseudo-random time pattern, 90%
     cancelled — the cancellation load the retransmission-timer layers
     approximate — then stale cancels aimed at recycled pool cells. *)
  let q = Event_queue.create () in
  let n = 10_000 in
  let lcg = ref 12345 in
  let next_time () =
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    !lcg mod 5_000
  in
  let handles =
    Array.init n (fun i ->
        let time = next_time () in
        (time, i, Event_queue.push q ~time:(Time.of_ns time) i))
  in
  let survivors = ref [] in
  Array.iter
    (fun (time, i, h) ->
      if i mod 10 <> 0 then Event_queue.cancel q h
      else survivors := (time, i) :: !survivors)
    handles;
  Alcotest.(check int) "pending after mass cancel" (n / 10) (Event_queue.length q);
  (* seq order equals insertion order i, so sorting (time, i) pairs gives
     the expected pop order, FIFO at equal times included. *)
  let expected = List.sort compare !survivors in
  let rec drain acc =
    match Event_queue.pop q with
    | Some (t, v) -> drain ((Time.to_ns t, v) :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list (pair int int))) "survivors pop sorted" expected (drain []);
  (* All cells are back in the pool. A fresh push recycles them; stale
     handles from the first generation must not touch the new event. *)
  ignore (Event_queue.push q ~time:(Time.of_ns 7) 424242);
  Array.iter (fun (_, _, h) -> Event_queue.cancel q h) handles;
  Alcotest.(check int) "stale cancels spare recycled cells" 1 (Event_queue.length q);
  match Event_queue.pop q with
  | Some (t, v) ->
    Alcotest.(check (pair int int)) "recycled cell pops" (7, 424242) (Time.to_ns t, v)
  | None -> Alcotest.fail "recycled event lost"

let test_queue_push_unit_pop_apply () =
  let q = Event_queue.create () in
  Event_queue.push_unit q ~time:(Time.of_ns 20) "b";
  Event_queue.push_unit q ~time:(Time.of_ns 10) "a";
  Event_queue.push_unit q ~time:(Time.of_ns 20) "c";
  let acc = ref [] in
  let f t v = acc := (Time.to_ns t, v) :: !acc in
  Alcotest.(check bool) "pop_apply consumes" true (Event_queue.pop_apply q f);
  Alcotest.(check bool) "pop_apply_until respects limit" false
    (Event_queue.pop_apply_until q ~limit:(Time.of_ns 15) f);
  Alcotest.(check bool) "pop_apply_until at limit" true
    (Event_queue.pop_apply_until q ~limit:(Time.of_ns 20) f);
  Alcotest.(check bool) "last event" true (Event_queue.pop_apply q f);
  Alcotest.(check bool) "empty pop_apply" false (Event_queue.pop_apply q f);
  Alcotest.(check (list (pair int string)))
    "order with FIFO ties"
    [ (10, "a"); (20, "b"); (20, "c") ]
    (List.rev !acc)

(* ---- Engine ---- *)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule_after e (Time.span_ms 5) (fun () -> seen := 5 :: !seen));
  ignore (Engine.schedule_after e (Time.span_ms 2) (fun () -> seen := 2 :: !seen));
  Engine.run e;
  Alcotest.(check (list int)) "ordered execution" [ 5; 2 ] !seen;
  Alcotest.(check int) "clock at last event" 5_000_000 (Time.to_ns (Engine.now e))

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_after e (Time.span_ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e (Time.span_ms 1) (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested runs after" [ "inner"; "outer" ] !log;
  Alcotest.(check int) "events executed" 2 (Engine.events_executed e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule_after e (Time.span_ms 1) (fun () -> fired := true) in
  Engine.cancel e timer;
  Engine.run e;
  Alcotest.(check bool) "cancelled timer does not fire" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule_after e (Time.span_ms 1) (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule_after e (Time.span_ms 10) (fun () -> fired := 10 :: !fired));
  Engine.run_until e (Time.of_ns 5_000_000);
  Alcotest.(check (list int)) "only events before limit" [ 1 ] !fired;
  Alcotest.(check int) "clock at limit" 5_000_000 (Time.to_ns (Engine.now e));
  Alcotest.(check int) "pending event remains" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "rest runs later" [ 10; 1 ] !fired

let test_engine_rejects_past () =
  let e = Engine.create () in
  ignore (Engine.schedule_after e (Time.span_ms 2) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule_at: instant in the past") (fun () ->
      ignore (Engine.schedule_at e (Time.of_ns 1) (fun () -> ())))

(* ---- Cpu ---- *)

let test_cpu_fifo_and_busy () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let done_at = ref [] in
  ignore
    (Engine.schedule_after e Time.span_zero (fun () ->
         Cpu.submit cpu ~cost:(Time.span_ms 3) (fun () ->
             done_at := ("a", Time.to_ns (Engine.now e)) :: !done_at);
         Cpu.submit cpu ~cost:(Time.span_ms 2) (fun () ->
             done_at := ("b", Time.to_ns (Engine.now e)) :: !done_at)));
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "FIFO completion with queueing"
    [ ("b", 5_000_000); ("a", 3_000_000) ]
    !done_at;
  Alcotest.(check int) "busy time accumulated" 5_000_000
    (Time.span_to_ns (Cpu.busy_time cpu))

let test_cpu_idle_gap () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let finish = ref 0 in
  ignore
    (Engine.schedule_after e Time.span_zero (fun () ->
         Cpu.submit cpu ~cost:(Time.span_ms 1) (fun () -> ())));
  ignore
    (Engine.schedule_after e (Time.span_ms 10) (fun () ->
         Cpu.submit cpu ~cost:(Time.span_ms 1) (fun () ->
             finish := Time.to_ns (Engine.now e))));
  Engine.run e;
  Alcotest.(check int) "idle gap not charged" 11_000_000 !finish;
  let util = Cpu.utilization cpu ~since:Time.zero in
  Alcotest.(check bool)
    (Printf.sprintf "utilization ~2/11 (got %f)" util)
    true
    (util > 0.17 && util < 0.19)

let test_cpu_charge () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let finish = ref 0 in
  ignore
    (Engine.schedule_after e Time.span_zero (fun () ->
         Cpu.charge cpu (Time.span_ms 4);
         Cpu.submit cpu ~cost:(Time.span_ms 1) (fun () ->
             finish := Time.to_ns (Engine.now e))));
  Engine.run e;
  Alcotest.(check int) "charge pushes back later work" 5_000_000 !finish

(* ---- Trace ---- *)

let test_trace () =
  let e = Engine.create () in
  let tr = Trace.create e in
  ignore (Engine.schedule_after e (Time.span_ms 1) (fun () -> Trace.record tr "one"));
  ignore (Engine.schedule_after e (Time.span_ms 2) (fun () -> Trace.record tr "two"));
  Engine.run e;
  Alcotest.(check (list string)) "events in order" [ "one"; "two" ] (Trace.events tr);
  Alcotest.(check int) "length" 2 (Trace.length tr);
  match Trace.find_last tr ~f:(fun v -> v = "one") with
  | Some entry -> Alcotest.(check int) "timestamped" 1_000_000 (Time.to_ns entry.Trace.at)
  | None -> Alcotest.fail "entry not found"

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "basics" `Quick test_time_basics;
          Alcotest.test_case "invalid arguments" `Quick test_time_invalid;
          Alcotest.test_case "ordering" `Quick test_time_order;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "event-queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_time_order;
          Alcotest.test_case "FIFO tie-break" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "cancel after pop (regression)" `Quick
            test_queue_cancel_after_pop;
          Alcotest.test_case "peek" `Quick test_queue_peek;
          Alcotest.test_case "cancel-heavy stress" `Quick test_queue_cancel_heavy_stress;
          Alcotest.test_case "push_unit / pop_apply" `Quick
            test_queue_push_unit_pop_apply;
          QCheck_alcotest.to_alcotest prop_queue_sorted;
          QCheck_alcotest.to_alcotest prop_queue_cancel_subset;
          QCheck_alcotest.to_alcotest prop_queue_matches_heap;
        ] );
      ( "engine",
        [
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "FIFO and busy time" `Quick test_cpu_fifo_and_busy;
          Alcotest.test_case "idle gap" `Quick test_cpu_idle_gap;
          Alcotest.test_case "charge" `Quick test_cpu_charge;
        ] );
      ("trace", [ Alcotest.test_case "record and query" `Quick test_trace ]);
    ]
