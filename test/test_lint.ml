(* Tests for the repro-lint pass: each determinism rule against a fixture
   with violations at known lines (test/lint_fixtures/), the boundary
   checker's spec semantics against synthetic edges, the committed
   lint/boundaries.spec against the references it exists to reject, and an
   end-to-end run asserting the repo's own lib/ is violation-free modulo
   the committed waivers.

   The test binary runs in _build/default/test, so fixture .cmt files are
   under lint_fixtures/ and the repo's under ../lib; the committed spec and
   waiver files are declared as test deps in test/dune. *)

open Repro_lint

let spec_file = "../lint/boundaries.spec"
let waivers_file = "../lint/lint.waivers"

(* ---- fixtures ---- *)

let fixture_report =
  lazy
    (match Lint.run ~build_root:"." ~src_dirs:[ "lint_fixtures" ] () with
    | Ok r -> r
    | Error e -> Alcotest.failf "lint of fixtures failed: %s" e)

(* (rule, line) pairs reported in one fixture file, in report order. *)
let hits base =
  let r = Lazy.force fixture_report in
  List.filter_map
    (fun (v : Violation.t) ->
      if Filename.basename v.Violation.file = base then
        Some (v.Violation.rule, v.Violation.line)
      else None)
    r.Lint.violations

let rule_line = Alcotest.(pair string int)

let test_fixture_random () =
  Alcotest.(check (list rule_line))
    "Random.int, Random.bool, module alias; R.bool not double-counted"
    [ ("random", 2); ("random", 3); ("random", 5) ]
    (hits "fx_random.ml")

let test_fixture_wallclock () =
  Alcotest.(check (list rule_line))
    "Unix.gettimeofday and Sys.time"
    [ ("wall-clock", 2); ("wall-clock", 3) ]
    (hits "fx_wallclock.ml")

let test_fixture_hashtbl () =
  Alcotest.(check (list rule_line))
    "iter and unsorted fold flagged; fold piped into List.sort sanctioned"
    [ ("hashtbl-order", 4); ("hashtbl-order", 7) ]
    (hits "fx_hashtbl.ml")

let test_fixture_physeq () =
  Alcotest.(check (list rule_line))
    "(==) at int list flagged, at int exempt"
    [ ("phys-eq", 3) ]
    (hits "fx_physeq.ml")

let test_fixture_polycompare () =
  Alcotest.(check (list rule_line))
    "compare on closures and (=) on refs flagged; int and x = None exempt"
    [ ("poly-compare", 4); ("poly-compare", 6) ]
    (hits "fx_polycompare.ml")

let test_fixture_topstate () =
  Alcotest.(check (list rule_line))
    "toplevel ref/Hashtbl/submodule Buffer flagged; function-local and \
     indirectly-built state exempt"
    [ ("toplevel-state", 6); ("toplevel-state", 8); ("toplevel-state", 11) ]
    (hits "fx_topstate.ml")

let test_fixture_clean () =
  Alcotest.(check (list rule_line)) "clean fixture stays clean" [] (hits "fx_clean.ml")

(* ---- spec semantics on synthetic edges ---- *)

let u lib m = { Boundaries.lib; m }

let edge src dst =
  { Boundaries.src; dst; file = "synthetic.ml"; line = 1 }

let check_spec rules edges =
  List.length (Boundaries.check ~spec_name:"test.spec" rules edges)

let parse_ok spec =
  match Boundaries.parse_spec spec with
  | Ok rules -> rules
  | Error e -> Alcotest.failf "spec did not parse: %s" e

let test_spec_parse () =
  let rules =
    parse_ok
      "# comment\n\nonly a -> a b\ndeny a.M -> b.N c # trailing\nallow * -> a\n"
  in
  Alcotest.(check int) "three rules" 3 (List.length rules);
  (match Boundaries.parse_spec "frobnicate a -> b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown keyword accepted");
  match Boundaries.parse_spec "only a ->" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing destination accepted"

let test_spec_only () =
  let rules = parse_ok "only a -> a b" in
  Alcotest.(check int) "in-list edge passes" 0
    (check_spec rules [ edge (u "a" "M") (u "b" "N") ]);
  Alcotest.(check int) "out-of-list edge violates" 1
    (check_spec rules [ edge (u "a" "M") (u "c" "N") ]);
  Alcotest.(check int) "other sources unconstrained" 0
    (check_spec rules [ edge (u "z" "M") (u "c" "N") ])

let test_spec_deny_allow () =
  let rules = parse_ok "allow a.M -> b.Special\ndeny a -> b" in
  Alcotest.(check int) "deny matches lib-wide" 1
    (check_spec rules [ edge (u "a" "Other") (u "b" "N") ]);
  Alcotest.(check int) "allow wins over deny" 0
    (check_spec rules [ edge (u "a" "M") (u "b" "Special") ]);
  Alcotest.(check int) "allow is module-precise" 1
    (check_spec rules [ edge (u "a" "M") (u "b" "N") ])

(* The committed spec must reject direct references among the protocol
   modules (they compose only through Framework wiring in Replica), and
   keep the one sanctioned section-4 fusion. *)
let test_committed_spec_isolation () =
  let rules =
    match Boundaries.load_spec spec_file with
    | Ok r -> r
    | Error e -> Alcotest.failf "committed spec did not load: %s" e
  in
  let violates src dst = check_spec rules [ edge src dst ] > 0 in
  let modular = u "core" "Abcast_modular"
  and consensus = u "core" "Consensus"
  and rbcast = u "core" "Rbcast"
  and monolithic = u "core" "Abcast_monolithic" in
  Alcotest.(check bool) "abcast -> consensus rejected" true
    (violates modular consensus);
  Alcotest.(check bool) "consensus -> abcast rejected" true
    (violates consensus modular);
  Alcotest.(check bool) "consensus -> rbcast rejected" true
    (violates consensus rbcast);
  Alcotest.(check bool) "abcast -> rbcast rejected" true (violates modular rbcast);
  Alcotest.(check bool) "abcast -> framework wiring rejected" true
    (violates modular (u "framework" "Event_bus"));
  Alcotest.(check bool) "monolithic fusion of rbcast sanctioned" false
    (violates monolithic rbcast);
  Alcotest.(check bool) "monolithic -> consensus still rejected" true
    (violates monolithic consensus);
  Alcotest.(check bool) "replica may wire consensus" false
    (violates (u "core" "Replica") consensus);
  Alcotest.(check bool) "obs -> core rejected" true
    (violates (u "obs" "Obs") (u "core" "Msg"));
  Alcotest.(check bool) "sim -> framework rejected" true
    (violates (u "sim" "Engine") (u "framework" "Event_bus"));
  (* The parallel pool is a harness utility: workload and fault may fan
     runs over it, protocol layers must never see it, and it must stay a
     leaf (no dependency back into the stack). *)
  Alcotest.(check bool) "workload -> parallel sanctioned" false
    (violates (u "workload" "Parmap") (u "parallel" "Pool"));
  Alcotest.(check bool) "fault -> parallel sanctioned" false
    (violates (u "fault" "Campaign") (u "parallel" "Pool"));
  Alcotest.(check bool) "core -> parallel rejected" true
    (violates (u "core" "Replica") (u "parallel" "Pool"));
  Alcotest.(check bool) "net -> parallel rejected" true
    (violates (u "net" "Network") (u "parallel" "Pool"));
  Alcotest.(check bool) "sim -> parallel rejected" true
    (violates (u "sim" "Engine") (u "parallel" "Pool"));
  Alcotest.(check bool) "parallel stays a leaf" true
    (violates (u "parallel" "Pool") (u "sim" "Engine"))

(* ---- waivers ---- *)

let test_waiver_parse () =
  let ws =
    match Waivers.parse "# c\nhashtbl-order lib/x.ml -- commutative fold\n" with
    | Ok ws -> ws
    | Error e -> Alcotest.failf "waiver did not parse: %s" e
  in
  (match ws with
  | [ w ] ->
    Alcotest.(check string) "rule" "hashtbl-order" w.Waivers.rule;
    Alcotest.(check string) "path" "lib/x.ml" w.Waivers.path;
    Alcotest.(check string) "reason" "commutative fold" w.Waivers.reason
  | _ -> Alcotest.failf "expected one waiver, got %d" (List.length ws));
  match Waivers.parse "hashtbl-order lib/x.ml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "waiver without justification accepted"

let test_waiver_apply () =
  let v rule file =
    { Violation.rule; file; line = 1; col = 0; message = "m" }
  in
  let w rule path = { Waivers.rule; path; reason = "r"; line = 1 } in
  let active, waived, unused =
    Waivers.apply
      [ w "random" "lib/a.ml"; w "phys-eq" "lib/never.ml" ]
      [ v "random" "lib/a.ml"; v "random" "lib/b.ml" ]
  in
  Alcotest.(check int) "one active" 1 (List.length active);
  Alcotest.(check int) "one waived" 1 (List.length waived);
  (match active with
  | [ a ] -> Alcotest.(check string) "b.ml stays active" "lib/b.ml" a.Violation.file
  | _ -> Alcotest.fail "wrong active set");
  match unused with
  | [ un ] -> Alcotest.(check string) "unused reported" "phys-eq" un.Waivers.rule
  | _ -> Alcotest.fail "expected exactly one unused waiver"

(* ---- dot export ---- *)

let test_dot_export () =
  let dot =
    Boundaries.to_dot
      [ edge (u "core" "Replica") (u "framework" "Event_bus") ]
  in
  let has needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph");
  Alcotest.(check bool) "cluster per lib" true (has "cluster_framework");
  Alcotest.(check bool) "edge present" true
    (has "\"core.Replica\" -> \"framework.Event_bus\"")

(* ---- end to end: the repo lints clean ---- *)

let test_repo_is_clean () =
  match
    Lint.run ~build_root:".." ~spec_file ~waivers_file ()
  with
  | Error e -> Alcotest.failf "repo lint failed to run: %s" e
  | Ok r ->
    List.iter
      (fun v -> Fmt.epr "unexpected: %a@." Violation.pp v)
      r.Lint.violations;
    Alcotest.(check int) "lib/ violation-free modulo waivers" 0
      (List.length r.Lint.violations);
    Alcotest.(check bool) "waiver budget respected (<= 5)" true
      (List.length r.Lint.waived <= 5);
    Alcotest.(check int) "no rotting waivers" 0 (List.length r.Lint.unused_waivers);
    Alcotest.(check bool) "graph is non-trivial" true (List.length r.Lint.edges > 100)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "random" `Quick test_fixture_random;
          Alcotest.test_case "wall-clock" `Quick test_fixture_wallclock;
          Alcotest.test_case "hashtbl-order" `Quick test_fixture_hashtbl;
          Alcotest.test_case "phys-eq" `Quick test_fixture_physeq;
          Alcotest.test_case "poly-compare" `Quick test_fixture_polycompare;
          Alcotest.test_case "toplevel-state" `Quick test_fixture_topstate;
          Alcotest.test_case "clean" `Quick test_fixture_clean;
        ] );
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "only" `Quick test_spec_only;
          Alcotest.test_case "deny/allow" `Quick test_spec_deny_allow;
          Alcotest.test_case "committed isolation" `Quick
            test_committed_spec_isolation;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "parse" `Quick test_waiver_parse;
          Alcotest.test_case "apply" `Quick test_waiver_apply;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
      ("repo", [ Alcotest.test_case "clean" `Quick test_repo_is_clean ]);
    ]
