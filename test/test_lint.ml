(* Tests for the repro-lint pass: each determinism rule against a fixture
   with violations at known lines (test/lint_fixtures/), the boundary
   checker's spec semantics against synthetic edges, the committed
   lint/boundaries.spec against the references it exists to reject, and an
   end-to-end run asserting the repo's own lib/ is violation-free modulo
   the committed waivers.

   The test binary runs in _build/default/test, so fixture .cmt files are
   under lint_fixtures/ and the repo's under ../lib; the committed spec and
   waiver files are declared as test deps in test/dune. *)

open Repro_lint

let spec_file = "../lint/boundaries.spec"
let waivers_file = "../lint/lint.waivers"

(* ---- fixtures ---- *)

let fixture_report =
  lazy
    (match Lint.run ~build_root:"." ~src_dirs:[ "lint_fixtures" ] () with
    | Ok r -> r
    | Error e -> Alcotest.failf "lint of fixtures failed: %s" e)

(* (rule, line) pairs reported in one fixture file, in report order. *)
let hits base =
  let r = Lazy.force fixture_report in
  List.filter_map
    (fun (v : Violation.t) ->
      if Filename.basename v.Violation.file = base then
        Some (v.Violation.rule, v.Violation.line)
      else None)
    r.Lint.violations

let rule_line = Alcotest.(pair string int)

let test_fixture_random () =
  Alcotest.(check (list rule_line))
    "Random.int, Random.bool, module alias; R.bool not double-counted"
    [ ("random", 2); ("random", 3); ("random", 5) ]
    (hits "fx_random.ml")

let test_fixture_wallclock () =
  Alcotest.(check (list rule_line))
    "Unix.gettimeofday and Sys.time"
    [ ("wall-clock", 2); ("wall-clock", 3) ]
    (hits "fx_wallclock.ml")

let test_fixture_hashtbl () =
  Alcotest.(check (list rule_line))
    "iter and unsorted fold flagged; fold piped into List.sort sanctioned"
    [ ("hashtbl-order", 4); ("hashtbl-order", 7) ]
    (hits "fx_hashtbl.ml")

let test_fixture_physeq () =
  Alcotest.(check (list rule_line))
    "(==) at int list flagged, at int exempt"
    [ ("phys-eq", 3) ]
    (hits "fx_physeq.ml")

let test_fixture_polycompare () =
  Alcotest.(check (list rule_line))
    "compare on closures and (=) on refs flagged; int and x = None exempt"
    [ ("poly-compare", 4); ("poly-compare", 6) ]
    (hits "fx_polycompare.ml")

let test_fixture_topstate () =
  Alcotest.(check (list rule_line))
    "toplevel ref/Hashtbl/submodule Buffer flagged; function-local and \
     indirectly-built state exempt"
    [ ("toplevel-state", 6); ("toplevel-state", 8); ("toplevel-state", 11) ]
    (hits "fx_topstate.ml")

let test_fixture_clean () =
  Alcotest.(check (list rule_line)) "clean fixture stays clean" [] (hits "fx_clean.ml")

let test_fixture_snapshot () =
  Alcotest.(check (list rule_line))
    "unread mutable field and unread Hashtbl flagged; arrow and constant \
     array exempt; helper-read and whole-record-copy pairs pass"
    [ ("snapshot-completeness", 6); ("snapshot-completeness", 7) ]
    (hits "fx_snapshot.ml")

let test_fixture_capture () =
  Alcotest.(check (list rule_line))
    "captures of a toplevel ref, a Hashtbl parameter and a written-through \
     array flagged at Pool.map sites; pure task + ~collect sanctioned \
     (line 4 is the fixture's own toplevel-state hit)"
    [
      ("toplevel-state", 4);
      ("domain-capture", 7);
      ("domain-capture", 10);
      ("domain-capture", 13);
    ]
    (hits "fx_capture.ml")

let test_fixture_rng () =
  Alcotest.(check (list rule_line))
    "raw seed arithmetic, foreign-stream draw and cross-boundary handoff \
     flagged; derive and split-then-draw sanctioned"
    [ ("rng-stream", 7); ("rng-stream", 10); ("rng-stream", 16) ]
    (hits "fx_rng.ml")

(* ---- snapshot-completeness against the real tree ----

   The acceptance check for the rule's teeth: on the real lib/net and
   lib/sim codecs, the obligation set is non-empty and every obligation
   is currently covered — so deleting any of those field reads from
   [snapshot] flips exactly that pair into a violation (the failing side
   of the mechanism is pinned by fx_snapshot.ml above). *)

let structure_of_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> Alcotest.failf "%s: unreadable .cmt" path
  | cmt -> (
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      (str, Boundaries.unit_of_modname cmt.Cmt_format.cmt_modname)
    | _ -> Alcotest.failf "%s: not an implementation .cmt" path)

let test_snapshot_obligations_real () =
  let check_unit cmt must_include =
    let str, unit = structure_of_cmt cmt in
    let obligations, coverage = Snapshot_rule.debug_pairs ?unit str in
    Alcotest.(check bool)
      (cmt ^ ": pair has obligations")
      true (obligations <> []);
    List.iter
      (fun ob ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: obligation %s.%s present" cmt (fst ob) (snd ob))
          true (List.mem ob obligations))
      must_include;
    List.iter
      (fun (tname, label) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s.%s read by snapshot" cmt tname label)
          true
          (List.mem (tname, label) coverage))
      obligations
  in
  check_unit "../lib/net/.repro_net.objs/byte/repro_net__Rchannel.cmt"
    [ ("link_out", "backoff"); ("t", "retransmissions") ];
  check_unit "../lib/sim/.repro_sim.objs/byte/repro_sim__Event_queue.cmt"
    [ ("t", "pending"); ("t", "next_seq") ]

(* ---- JSON output ---- *)

let test_json_roundtrip () =
  let r = Lazy.force fixture_report in
  let lines = Lint.json_lines r in
  Alcotest.(check bool) "fixtures produce json lines" true (lines <> []);
  let parsed =
    List.map
      (fun l ->
        match Violation.of_json l with
        | Ok p -> p
        | Error e -> Alcotest.failf "unparseable json line %s (%s)" l e)
      lines
  in
  let expect =
    List.map (fun v -> (v, false)) r.Lint.violations
    @ List.map (fun v -> (v, true)) r.Lint.waived
  in
  Alcotest.(check int) "line count" (List.length expect) (List.length parsed);
  List.iter2
    (fun (v, w) (v', w') ->
      Alcotest.(check bool)
        (Printf.sprintf "%s:%d round-trips" v.Violation.file v.Violation.line)
        true
        (v = v' && w = w'))
    expect parsed

let test_json_escaping () =
  let v =
    {
      Violation.rule = "rule-x";
      file = "dir \"q\"/b\\c.ml";
      line = 42;
      col = 7;
      message = "tab\there, newline\nthere, \"quotes\" and a ctrl \001 byte";
    }
  in
  match Violation.of_json (Violation.to_json ~waived:true v) with
  | Ok (v', true) ->
    Alcotest.(check bool) "escaped violation round-trips" true (v = v')
  | Ok (_, false) -> Alcotest.fail "waived flag lost"
  | Error e -> Alcotest.failf "escaped violation unparseable: %s" e

(* ---- stale-artifact guard ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Unix.mkdir dir 0o755
  end

let copy_file src dst =
  let contents = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc contents)

let contains_substring needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_stale_guard () =
  (* A fake build tree holding one real fixture .cmt back-dated to the
     epoch, and a fake checkout whose matching source is newer. *)
  let tmp = Filename.temp_file "lint_stale" "" in
  Sys.remove tmp;
  let build_root = Filename.concat tmp "build" in
  let source_root = Filename.concat tmp "src" in
  let cmt_dir = Filename.concat build_root "fx" in
  mkdir_p cmt_dir;
  let cmt = Filename.concat cmt_dir "lint_fixtures__Fx_clean.cmt" in
  copy_file "lint_fixtures/.lint_fixtures.objs/byte/lint_fixtures__Fx_clean.cmt"
    cmt;
  (* The .cmt records its source as test/lint_fixtures/fx_clean.ml. *)
  let src = Filename.concat source_root "test/lint_fixtures/fx_clean.ml" in
  mkdir_p (Filename.dirname src);
  Out_channel.with_open_text src (fun oc ->
      Out_channel.output_string oc "(* newer than the artifact *)\n");
  Unix.utimes cmt 1000.0 1000.0;
  Alcotest.(check bool) "is_stale sees the gap" true (Lint.is_stale ~cmt ~source:src);
  (match
     Lint.run ~build_root ~src_dirs:[ "fx" ] ~source_root ()
   with
  | Error e ->
    Alcotest.(check bool) "stale artifacts are an error" true
      (contains_substring "stale" e)
  | Ok _ -> Alcotest.fail "stale artifact not rejected");
  (match
     Lint.run ~build_root ~src_dirs:[ "fx" ] ~source_root ~allow_stale:true ()
   with
  | Error e -> Alcotest.failf "--allow-stale still failed: %s" e
  | Ok r ->
    Alcotest.(check (list (pair string string)))
      "stale pair carried in the report"
      [ ("test/lint_fixtures/fx_clean.ml", cmt) ]
      r.Lint.stale);
  (* Source older than the artifact: not stale, guard stays quiet. *)
  Unix.utimes src 500.0 500.0;
  Unix.utimes cmt 1000.0 1000.0;
  Alcotest.(check bool) "fresh artifact passes" false
    (Lint.is_stale ~cmt ~source:src);
  match Lint.run ~build_root ~src_dirs:[ "fx" ] ~source_root () with
  | Error e -> Alcotest.failf "fresh artifact rejected: %s" e
  | Ok r -> Alcotest.(check int) "no stale entries" 0 (List.length r.Lint.stale)

(* ---- waivers against the new rules, end to end ---- *)

let test_waiver_new_rules () =
  let waivers_tmp = Filename.temp_file "lint_waiver" ".waivers" in
  Out_channel.with_open_text waivers_tmp (fun oc ->
      Out_channel.output_string oc
        "snapshot-completeness test/lint_fixtures/fx_snapshot.ml -- fixture \
         exercises the rule\n\
         rng-stream test/lint_fixtures/fx_clean.ml -- matches nothing, must \
         be reported unused\n");
  match
    Lint.run ~build_root:"." ~src_dirs:[ "lint_fixtures" ]
      ~waivers_file:waivers_tmp ()
  with
  | Error e -> Alcotest.failf "fixture lint with waivers failed: %s" e
  | Ok r ->
    let waived_snapshot =
      List.filter
        (fun v -> v.Violation.rule = "snapshot-completeness")
        r.Lint.waived
    in
    Alcotest.(check int) "both snapshot violations waived" 2
      (List.length waived_snapshot);
    Alcotest.(check bool) "no active snapshot-completeness left" false
      (List.exists
         (fun v -> v.Violation.rule = "snapshot-completeness")
         r.Lint.violations);
    Alcotest.(check bool) "other new rules stay active" true
      (List.exists (fun v -> v.Violation.rule = "domain-capture") r.Lint.violations
      && List.exists (fun v -> v.Violation.rule = "rng-stream") r.Lint.violations);
    (match r.Lint.unused_waivers with
    | [ w ] ->
      Alcotest.(check string) "unused waiver reported" "rng-stream" w.Waivers.rule
    | ws -> Alcotest.failf "expected one unused waiver, got %d" (List.length ws));
    (* Waived findings survive into the JSON stream, marked waived. *)
    let waived_json =
      List.filter
        (fun l ->
          match Violation.of_json l with
          | Ok (v, true) -> v.Violation.rule = "snapshot-completeness"
          | _ -> false)
        (Lint.json_lines r)
    in
    Alcotest.(check int) "waived findings marked in json" 2
      (List.length waived_json)

(* ---- spec semantics on synthetic edges ---- *)

let u lib m = { Boundaries.lib; m }

let edge src dst =
  { Boundaries.src; dst; file = "synthetic.ml"; line = 1 }

let check_spec rules edges =
  List.length (Boundaries.check ~spec_name:"test.spec" rules edges)

let parse_ok spec =
  match Boundaries.parse_spec spec with
  | Ok rules -> rules
  | Error e -> Alcotest.failf "spec did not parse: %s" e

let test_spec_parse () =
  let rules =
    parse_ok
      "# comment\n\nonly a -> a b\ndeny a.M -> b.N c # trailing\nallow * -> a\n"
  in
  Alcotest.(check int) "three rules" 3 (List.length rules);
  (match Boundaries.parse_spec "frobnicate a -> b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown keyword accepted");
  match Boundaries.parse_spec "only a ->" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing destination accepted"

let test_spec_only () =
  let rules = parse_ok "only a -> a b" in
  Alcotest.(check int) "in-list edge passes" 0
    (check_spec rules [ edge (u "a" "M") (u "b" "N") ]);
  Alcotest.(check int) "out-of-list edge violates" 1
    (check_spec rules [ edge (u "a" "M") (u "c" "N") ]);
  Alcotest.(check int) "other sources unconstrained" 0
    (check_spec rules [ edge (u "z" "M") (u "c" "N") ])

let test_spec_deny_allow () =
  let rules = parse_ok "allow a.M -> b.Special\ndeny a -> b" in
  Alcotest.(check int) "deny matches lib-wide" 1
    (check_spec rules [ edge (u "a" "Other") (u "b" "N") ]);
  Alcotest.(check int) "allow wins over deny" 0
    (check_spec rules [ edge (u "a" "M") (u "b" "Special") ]);
  Alcotest.(check int) "allow is module-precise" 1
    (check_spec rules [ edge (u "a" "M") (u "b" "N") ])

(* The committed spec must reject direct references among the protocol
   modules (they compose only through Framework wiring in Replica), and
   keep the one sanctioned section-4 fusion. *)
let test_committed_spec_isolation () =
  let rules =
    match Boundaries.load_spec spec_file with
    | Ok r -> r
    | Error e -> Alcotest.failf "committed spec did not load: %s" e
  in
  let violates src dst = check_spec rules [ edge src dst ] > 0 in
  let modular = u "core" "Abcast_modular"
  and consensus = u "core" "Consensus"
  and rbcast = u "core" "Rbcast"
  and monolithic = u "core" "Abcast_monolithic" in
  Alcotest.(check bool) "abcast -> consensus rejected" true
    (violates modular consensus);
  Alcotest.(check bool) "consensus -> abcast rejected" true
    (violates consensus modular);
  Alcotest.(check bool) "consensus -> rbcast rejected" true
    (violates consensus rbcast);
  Alcotest.(check bool) "abcast -> rbcast rejected" true (violates modular rbcast);
  Alcotest.(check bool) "abcast -> framework wiring rejected" true
    (violates modular (u "framework" "Event_bus"));
  Alcotest.(check bool) "monolithic fusion of rbcast sanctioned" false
    (violates monolithic rbcast);
  Alcotest.(check bool) "monolithic -> consensus still rejected" true
    (violates monolithic consensus);
  Alcotest.(check bool) "replica may wire consensus" false
    (violates (u "core" "Replica") consensus);
  Alcotest.(check bool) "obs -> core rejected" true
    (violates (u "obs" "Obs") (u "core" "Msg"));
  Alcotest.(check bool) "sim -> framework rejected" true
    (violates (u "sim" "Engine") (u "framework" "Event_bus"));
  (* The parallel pool is a harness utility: workload and fault may fan
     runs over it, protocol layers must never see it, and it must stay a
     leaf (no dependency back into the stack). *)
  Alcotest.(check bool) "workload -> parallel sanctioned" false
    (violates (u "workload" "Parmap") (u "parallel" "Pool"));
  Alcotest.(check bool) "fault -> parallel sanctioned" false
    (violates (u "fault" "Campaign") (u "parallel" "Pool"));
  Alcotest.(check bool) "core -> parallel rejected" true
    (violates (u "core" "Replica") (u "parallel" "Pool"));
  Alcotest.(check bool) "net -> parallel rejected" true
    (violates (u "net" "Network") (u "parallel" "Pool"));
  Alcotest.(check bool) "sim -> parallel rejected" true
    (violates (u "sim" "Engine") (u "parallel" "Pool"));
  Alcotest.(check bool) "parallel stays a leaf" true
    (violates (u "parallel" "Pool") (u "sim" "Engine"))

(* ---- waivers ---- *)

let test_waiver_parse () =
  let ws =
    match Waivers.parse "# c\nhashtbl-order lib/x.ml -- commutative fold\n" with
    | Ok ws -> ws
    | Error e -> Alcotest.failf "waiver did not parse: %s" e
  in
  (match ws with
  | [ w ] ->
    Alcotest.(check string) "rule" "hashtbl-order" w.Waivers.rule;
    Alcotest.(check string) "path" "lib/x.ml" w.Waivers.path;
    Alcotest.(check string) "reason" "commutative fold" w.Waivers.reason
  | _ -> Alcotest.failf "expected one waiver, got %d" (List.length ws));
  match Waivers.parse "hashtbl-order lib/x.ml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "waiver without justification accepted"

let test_waiver_apply () =
  let v rule file =
    { Violation.rule; file; line = 1; col = 0; message = "m" }
  in
  let w rule path = { Waivers.rule; path; reason = "r"; line = 1 } in
  let active, waived, unused =
    Waivers.apply
      [ w "random" "lib/a.ml"; w "phys-eq" "lib/never.ml" ]
      [ v "random" "lib/a.ml"; v "random" "lib/b.ml" ]
  in
  Alcotest.(check int) "one active" 1 (List.length active);
  Alcotest.(check int) "one waived" 1 (List.length waived);
  (match active with
  | [ a ] -> Alcotest.(check string) "b.ml stays active" "lib/b.ml" a.Violation.file
  | _ -> Alcotest.fail "wrong active set");
  match unused with
  | [ un ] -> Alcotest.(check string) "unused reported" "phys-eq" un.Waivers.rule
  | _ -> Alcotest.fail "expected exactly one unused waiver"

(* ---- dot export ---- *)

let test_dot_export () =
  let dot =
    Boundaries.to_dot
      [ edge (u "core" "Replica") (u "framework" "Event_bus") ]
  in
  let has needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph");
  Alcotest.(check bool) "cluster per lib" true (has "cluster_framework");
  Alcotest.(check bool) "edge present" true
    (has "\"core.Replica\" -> \"framework.Event_bus\"")

(* ---- end to end: the repo lints clean ---- *)

let test_repo_is_clean () =
  match
    Lint.run ~build_root:".." ~spec_file ~waivers_file ()
  with
  | Error e -> Alcotest.failf "repo lint failed to run: %s" e
  | Ok r ->
    List.iter
      (fun v -> Fmt.epr "unexpected: %a@." Violation.pp v)
      r.Lint.violations;
    Alcotest.(check int) "lib/ violation-free modulo waivers" 0
      (List.length r.Lint.violations);
    Alcotest.(check bool) "waiver budget respected (<= 5)" true
      (List.length r.Lint.waived <= 5);
    Alcotest.(check int) "no rotting waivers" 0 (List.length r.Lint.unused_waivers);
    Alcotest.(check bool) "graph is non-trivial" true (List.length r.Lint.edges > 100)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "random" `Quick test_fixture_random;
          Alcotest.test_case "wall-clock" `Quick test_fixture_wallclock;
          Alcotest.test_case "hashtbl-order" `Quick test_fixture_hashtbl;
          Alcotest.test_case "phys-eq" `Quick test_fixture_physeq;
          Alcotest.test_case "poly-compare" `Quick test_fixture_polycompare;
          Alcotest.test_case "toplevel-state" `Quick test_fixture_topstate;
          Alcotest.test_case "clean" `Quick test_fixture_clean;
          Alcotest.test_case "snapshot-completeness" `Quick test_fixture_snapshot;
          Alcotest.test_case "domain-capture" `Quick test_fixture_capture;
          Alcotest.test_case "rng-stream" `Quick test_fixture_rng;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "real snapshot obligations covered" `Quick
            test_snapshot_obligations_real;
        ] );
      ( "json",
        [
          Alcotest.test_case "report round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
        ] );
      ( "stale",
        [ Alcotest.test_case "guard" `Quick test_stale_guard ] );
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "only" `Quick test_spec_only;
          Alcotest.test_case "deny/allow" `Quick test_spec_deny_allow;
          Alcotest.test_case "committed isolation" `Quick
            test_committed_spec_isolation;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "parse" `Quick test_waiver_parse;
          Alcotest.test_case "apply" `Quick test_waiver_apply;
          Alcotest.test_case "new rules end-to-end" `Quick test_waiver_new_rules;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
      ("repo", [ Alcotest.test_case "clean" `Quick test_repo_is_clean ]);
    ]
