(* End-to-end fault injection on both full stacks with the live heartbeat
   failure detector: coordinator crashes, non-coordinator crashes, crashes
   mid-broadcast, wrong suspicions. The optimizations of §3 and §4 must
   preserve atomic broadcast's properties in all these runs. *)

open Repro_sim
open Repro_net
open Repro_fd
open Repro_core

let fd_mode = `Heartbeat Heartbeat_fd.default_config

let make kind ?(n = 3) ?(seed = 0) () =
  let params = { (Params.default ~n) with Params.seed } in
  Group.create ~kind ~params ~fd_mode ()

let run_for g span = Group.run_for g span

(* Uniform agreement + total order among the given (correct) processes:
   every pair of delivery logs must be prefix-compatible, and eventually
   equal; we check equality after a long settling period. *)
let check_survivors g correct ~expect =
  let logs = List.map (fun p -> Group.deliveries g p) correct in
  match logs with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun log ->
        Alcotest.(check bool) "survivors share the delivery sequence" true (log = first))
      rest;
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (Fmt.str "%a delivered at survivors" App_msg.pp_id id)
          true (List.mem id first))
      expect

let prefix_of shorter longer =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && go a' b'
  in
  if List.length shorter <= List.length longer then go shorter longer else go longer shorter

let id ~origin ~seq = { App_msg.origin; seq }

let test_non_coordinator_crash kind () =
  let g = make kind () in
  Group.abcast g 0 ~size:256;
  Group.abcast g 2 ~size:256;
  run_for g (Time.span_ms 50);
  Group.crash g 2;
  Group.abcast g 0 ~size:256;
  Group.abcast g 1 ~size:256;
  run_for g (Time.span_s 3);
  check_survivors g [ 0; 1 ]
    ~expect:[ id ~origin:0 ~seq:0; id ~origin:0 ~seq:1; id ~origin:1 ~seq:0 ]

let test_coordinator_crash kind () =
  (* p1 (the good-run coordinator of both stacks) crashes while traffic is
     flowing; the heartbeat detector suspects it and the survivors keep
     ordering messages. *)
  let g = make kind () in
  Group.abcast g 1 ~size:256;
  run_for g (Time.span_ms 50);
  Group.crash g 0;
  run_for g (Time.span_ms 10);
  Group.abcast g 1 ~size:256;
  Group.abcast g 2 ~size:256;
  run_for g (Time.span_s 5);
  check_survivors g [ 1; 2 ]
    ~expect:[ id ~origin:1 ~seq:0; id ~origin:1 ~seq:1; id ~origin:2 ~seq:0 ]

let test_coordinator_crash_mid_broadcast kind () =
  (* The coordinator dies part-way through a fan-out (the §3.3 dangerous
     scenario): survivors must stay consistent — a message the coordinator
     was relaying is either delivered at both survivors or at neither. *)
  let g = make kind () in
  Group.abcast g 1 ~size:256;
  Group.abcast g 2 ~size:256;
  run_for g (Time.span_ms 20);
  Network.crash_after_sends (Group.network g) 0 1;
  Group.abcast g 1 ~size:256;
  run_for g (Time.span_s 5);
  let l1 = Group.deliveries g 1 and l2 = Group.deliveries g 2 in
  Alcotest.(check bool) "survivor logs prefix-compatible" true (prefix_of l1 l2);
  (* Liveness: the survivors' own later message must be delivered. *)
  check_survivors g [ 1; 2 ] ~expect:[ id ~origin:1 ~seq:1 ]

let test_crash_under_load kind () =
  let g = make kind ~n:5 () in
  let engine = Group.engine g in
  let rec pump i =
    if i < 400 then begin
      List.iter (fun p -> if not (Network.is_crashed (Group.network g) p) then
        Group.abcast g p ~size:512) (Pid.all ~n:5);
      ignore (Engine.schedule_after engine (Time.span_ms 2) (fun () -> pump (i + 1)))
    end
  in
  pump 0;
  ignore (Engine.schedule_after engine (Time.span_ms 200) (fun () -> Group.crash g 0));
  ignore (Engine.schedule_after engine (Time.span_ms 350) (fun () -> Group.crash g 3));
  run_for g (Time.span_s 6);
  let survivors = [ 1; 2; 4 ] in
  let logs = List.map (fun p -> Group.deliveries g p) survivors in
  let first = List.hd logs in
  List.iter
    (fun log ->
      Alcotest.(check bool) "survivors share the delivery sequence" true (log = first))
    (List.tl logs);
  Alcotest.(check bool) "substantial progress after crashes" true
    (List.length first > 200);
  Alcotest.(check int) "no duplicates" (List.length first)
    (List.length (List.sort_uniq compare first))

let test_false_suspicion_isolation kind () =
  (* Temporarily cut p1's heartbeats towards p2 so that p2 falsely suspects
     the coordinator, then heal. Safety must hold throughout and the system
     must keep delivering afterwards. Protocol traffic still flows in both
     directions (only the FD path of p1->p2 heartbeats is what we sever —
     heartbeats share links with protocol messages, so we cut and quickly
     heal instead of a long partition). *)
  let g = make kind () in
  Group.abcast g 0 ~size:128;
  run_for g (Time.span_ms 30);
  Network.cut (Group.network g) ~src:0 ~dst:1;
  run_for g (Time.span_ms 120);
  (* p2 has now likely suspected p1. Heal and continue. *)
  Network.heal (Group.network g) ~src:0 ~dst:1;
  Group.abcast g 1 ~size:128;
  Group.abcast g 2 ~size:128;
  run_for g (Time.span_s 5);
  check_survivors g [ 0; 1; 2 ]
    ~expect:[ id ~origin:0 ~seq:0; id ~origin:1 ~seq:0; id ~origin:2 ~seq:0 ]

(* Property: for random crash schedules of a minority, survivors always
   agree and always make progress (both stacks). *)
let prop_random_minority_crashes kind name =
  QCheck.Test.make ~name ~count:25
    QCheck.(
      triple (oneofl [ 3; 5 ]) (int_bound 500)
        (pair (int_bound 999) (int_bound 1)))
    (fun (n, crash_ms, (seed, extra_crash)) ->
      let g = make kind ~n ~seed () in
      let engine = Group.engine g in
      let f = (n - 1) / 2 in
      let crashes = min f (1 + extra_crash) in
      let dead = List.init crashes (fun i -> (seed + i) mod n) |> List.sort_uniq compare in
      let rec pump i =
        if i < 200 then begin
          List.iter
            (fun p ->
              if not (Network.is_crashed (Group.network g) p) then
                Group.abcast g p ~size:256)
            (Pid.all ~n);
          ignore (Engine.schedule_after engine (Time.span_ms 3) (fun () -> pump (i + 1)))
        end
      in
      pump 0;
      ignore
        (Engine.schedule_after engine (Time.span_ms crash_ms) (fun () ->
             List.iter (fun p -> Group.crash g p) dead));
      run_for g (Time.span_s 8);
      let survivors = List.filter (fun p -> not (List.mem p dead)) (Pid.all ~n) in
      let logs = List.map (fun p -> Group.deliveries g p) survivors in
      match logs with
      | [] -> false
      | first :: rest ->
        List.for_all (( = ) first) rest
        && List.length first > 0
        && List.length (List.sort_uniq compare first) = List.length first)

(* ---- Fault-injection campaign (lib/fault) ---- *)

module Schedule = Repro_fault.Schedule
module Campaign = Repro_fault.Campaign
module Monitor = Repro_fault.Monitor

(* Generated fault plans round-trip through the concrete file syntax
   exactly, so a campaign verdict's schedule re-runs bit-for-bit from the
   printed form. *)
let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"random schedules round-trip through the plan syntax" ~count:100
    QCheck.(pair (int_bound 9999) (oneofl [ 3; 5; 7 ]))
    (fun (seed, n) ->
      let s = Campaign.random_schedule (Rng.create ~seed) ~n ~horizon:(Time.span_s 2) in
      (match Schedule.validate ~n s with Ok _ -> () | Error e -> QCheck.Test.fail_report e);
      match Schedule.of_string (Schedule.to_string s) with
      | Ok s' -> Schedule.equal s s'
      | Error e -> QCheck.Test.fail_report e)

(* The shrinker's contract, against an arbitrary "violation" that needs a
   random subset of the steps to reproduce: the result is a subsequence of
   the input, still fails, and is 1-minimal. *)
let prop_shrink_minimal =
  QCheck.Test.make ~name:"shrunk schedule is a failing 1-minimal subsequence" ~count:100
    QCheck.(pair (int_bound 9999) (int_bound 9999))
    (fun (seed, pseed) ->
      let s = Campaign.random_schedule (Rng.create ~seed) ~n:5 ~horizon:(Time.span_s 2) in
      QCheck.assume (s <> []);
      let prng = Rng.create ~seed:pseed in
      let required = List.filter (fun _ -> Rng.bool prng) s in
      let required = if required = [] then [ List.hd s ] else required in
      (* Physical membership: shrinking only removes steps, never rebuilds
         them, so the surviving steps are the very same values. *)
      let fails sched = List.for_all (fun st -> List.memq st sched) required in
      let minimal = Campaign.shrink ~fails s in
      Schedule.is_subsequence minimal ~of_:s
      && fails minimal
      && List.for_all
           (fun st -> not (fails (List.filter (fun x -> x != st) minimal)))
           minimal)

let test_monitor_catches_seeded_violation () =
  (* Integrity: a replayed log that delivers the same id twice. *)
  let m = Monitor.create ~n:3 () in
  Monitor.observe m 0 (id ~origin:0 ~seq:0);
  Monitor.observe m 0 (id ~origin:0 ~seq:0);
  (match Monitor.first_violation m with
  | Some v ->
    Alcotest.(check string) "duplicate delivery flagged" "integrity"
      (Monitor.invariant_name v.Monitor.invariant)
  | None -> Alcotest.fail "expected an integrity violation");
  (* Total order: two processes that swap two messages. *)
  let m = Monitor.create ~n:3 () in
  Monitor.observe m 0 (id ~origin:0 ~seq:0);
  Monitor.observe m 0 (id ~origin:1 ~seq:0);
  Monitor.observe m 1 (id ~origin:1 ~seq:0);
  Monitor.observe m 1 (id ~origin:0 ~seq:0);
  (match Monitor.first_violation m with
  | Some v ->
    Alcotest.(check string) "order swap flagged" "total-order"
      (Monitor.invariant_name v.Monitor.invariant);
    Alcotest.(check int) "at the diverging process" 1 v.Monitor.at_process
  | None -> Alcotest.fail "expected a total-order violation")

let test_seeded_violation_shrinks () =
  (* Seed a violation into a replay harness: p2's log diverges from p1's
     iff the plan both crashes someone and opens a loss window. Shrinking
     the six-step plan must keep exactly those two steps, still reproduce,
     and survive a round-trip through the file syntax. *)
  let step at action = { Schedule.at = Time.span_ms at; action } in
  let noisy =
    [
      step 10 (Schedule.Delay_spike (Time.span_ms 2));
      step 20 (Schedule.Cut (0, 1));
      step 30 (Schedule.Crash 0);
      step 40 Schedule.Heal_all;
      step 50 (Schedule.Loss_rate 0.02);
      step 60 (Schedule.Loss_rate 0.);
    ]
  in
  let triggers sched =
    List.exists
      (fun s -> match s.Schedule.action with Schedule.Crash _ -> true | _ -> false)
      sched
    && List.exists
         (fun s -> match s.Schedule.action with Schedule.Loss_rate r -> r > 0. | _ -> false)
         sched
  in
  let fails sched =
    let m = Monitor.create ~schedule:sched ~n:3 () in
    Monitor.observe m 0 (id ~origin:0 ~seq:0);
    Monitor.observe m 0 (id ~origin:1 ~seq:0);
    if triggers sched then begin
      Monitor.observe m 1 (id ~origin:1 ~seq:0);
      Monitor.observe m 1 (id ~origin:0 ~seq:0)
    end
    else begin
      Monitor.observe m 1 (id ~origin:0 ~seq:0);
      Monitor.observe m 1 (id ~origin:1 ~seq:0)
    end;
    Monitor.first_violation m <> None
  in
  Alcotest.(check bool) "seeded violation is caught" true (fails noisy);
  let minimal = Campaign.shrink ~fails noisy in
  Alcotest.(check bool) "minimal is a subsequence of the original" true
    (Schedule.is_subsequence minimal ~of_:noisy);
  Alcotest.(check bool) "minimal still reproduces the violation" true (fails minimal);
  Alcotest.(check int) "only the two triggering steps survive" 2 (List.length minimal);
  match Schedule.of_string (Schedule.to_string minimal) with
  | Error e -> Alcotest.failf "minimal plan does not round-trip: %s" e
  | Ok reparsed ->
    Alcotest.(check bool) "round-tripped plan is identical" true
      (Schedule.equal minimal reparsed);
    Alcotest.(check bool) "round-tripped plan reproduces" true (fails reparsed)

let test_run_one_deterministic () =
  (* The reproduction contract: the same (stack, n, seed, schedule) yields
     the same verdict, field for field. *)
  let seed = 42 in
  let schedule = Campaign.random_schedule (Rng.create ~seed) ~n:3 ~horizon:(Time.span_s 2) in
  let run () = Campaign.run_one ~kind:Replica.Modular ~n:3 ~seed ~schedule () in
  let v1 = run () and v2 = run () in
  Alcotest.(check bool) "same outcome" true (v1.Campaign.outcome = v2.Campaign.outcome);
  Alcotest.(check int) "same deliveries" v1.Campaign.delivered v2.Campaign.delivered;
  Alcotest.(check int) "same admissions" v1.Campaign.admitted v2.Campaign.admitted;
  Alcotest.(check bool) "same latency, bit for bit" true
    (Int64.bits_of_float v1.Campaign.mean_latency_ms
    = Int64.bits_of_float v2.Campaign.mean_latency_ms);
  Alcotest.(check bool) "same schedule" true
    (Schedule.equal v1.Campaign.schedule v2.Campaign.schedule)

(* ---- Message adversary (lib/fault extensions) ---- *)

module Nemesis = Repro_fault.Nemesis

(* The extended syntax (adversary actions, fractional durations) must
   round-trip exactly too, so adversary campaign reproducers re-run
   bit-for-bit from the printed plan. *)
let prop_adversary_roundtrip =
  QCheck.Test.make ~name:"adversary schedules round-trip through the plan syntax"
    ~count:100
    QCheck.(pair (int_bound 9999) (oneofl [ 3; 5; 7 ]))
    (fun (seed, n) ->
      let s =
        Campaign.random_schedule ~adversary:true ~equivocation:true
          (Rng.create ~seed) ~n ~horizon:(Time.span_s 2)
      in
      (match Schedule.validate ~n s with Ok _ -> () | Error e -> QCheck.Test.fail_report e);
      match Schedule.of_string (Schedule.to_string s) with
      | Ok s' -> Schedule.equal s s'
      | Error e -> QCheck.Test.fail_report e)

let test_fractional_spans () =
  (match Schedule.of_string "at 1.5ms crash p1" with
  | Ok [ { Schedule.at; action = Schedule.Crash 0 } ] ->
    Alcotest.(check int) "1.5ms is 1_500_000 ns" 1_500_000 (Time.span_to_ns at)
  | Ok _ -> Alcotest.fail "unexpected parse of a fractional timestamp"
  | Error e -> Alcotest.failf "fractional duration rejected: %s" e);
  let s = [ { Schedule.at = Time.span_ns 1_500_000; action = Schedule.Crash 0 } ] in
  (match Schedule.of_string (Schedule.to_string s) with
  | Ok s' ->
    Alcotest.(check bool) "fractional span round-trips" true (Schedule.equal s s')
  | Error e -> Alcotest.failf "printed fractional plan does not re-parse: %s" e);
  List.iter
    (fun bad ->
      match Schedule.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed duration: %S" bad
      | Error _ -> ())
    [ "at 1.ms crash p1"; "at .5ms crash p1"; "at 1.5ns crash p1" ]

let test_install_validates () =
  let step ms action = { Schedule.at = Time.span_ms ms; action } in
  let g = make Replica.Modular () in
  (match Nemesis.install g [ step 10 (Schedule.Crash 9) ] with
  | Ok _ -> Alcotest.fail "out-of-range pid accepted at n=3"
  | Error _ -> ());
  (match Nemesis.install g [ step 10 (Schedule.Adv_drop_budget 2) ] with
  | Ok _ -> Alcotest.fail "drop budget above n-2 accepted at n=3"
  | Error _ -> ());
  (* Nothing half-installed by the rejections: a good plan still goes in,
     and rejected steps never registered any event. *)
  match
    Nemesis.install g
      [ step 10 (Schedule.Adv_drop_budget 1); step 20 (Schedule.Adv_drop_budget 0) ]
  with
  | Ok nem -> Alcotest.(check int) "nothing applied yet" 0 (List.length (Nemesis.applied nem))
  | Error e -> Alcotest.failf "valid adversary plan rejected: %s" e

let test_coarsen_snaps_timestamps () =
  let step ns action = { Schedule.at = Time.span_ns ns; action } in
  let noisy =
    [ step 937_561_000 (Schedule.Crash 0); step 1_412_003_117 (Schedule.Loss_rate 0.02) ]
  in
  (* A violation indifferent to timing: every timestamp snaps to 1s. *)
  let coarse = Campaign.coarsen ~fails:(fun s -> List.length s = 2) noisy in
  List.iter
    (fun st ->
      Alcotest.(check int) "snapped to the 1s grid" 0
        (Time.span_to_ns st.Schedule.at mod 1_000_000_000))
    coarse;
  Alcotest.(check bool) "still non-decreasing and valid" true
    (match Schedule.validate ~n:3 coarse with Ok _ -> true | Error _ -> false);
  (* A violation that needs the exact nanoseconds: coarsening backs off. *)
  let exact s = Schedule.equal s noisy in
  Alcotest.(check bool) "unchanged when no coarser grid reproduces" true
    (Schedule.equal (Campaign.coarsen ~fails:exact noisy) noisy)

let test_monitor_adversary_invariants () =
  (* Equivocation: the same id delivered with diverging payload
     fingerprints at two processes. *)
  let m = Monitor.create ~n:3 () in
  Monitor.observe m ~fingerprint:1024 0 (id ~origin:0 ~seq:0);
  Monitor.observe m ~fingerprint:1025 1 (id ~origin:0 ~seq:0);
  (match Monitor.first_violation m with
  | Some v ->
    Alcotest.(check string) "diverging fingerprints flagged" "equivocation"
      (Monitor.invariant_name v.Monitor.invariant)
  | None -> Alcotest.fail "expected an equivocation violation");
  Alcotest.(check string) "equivocation is a safety violation" "safety-violation"
    (Monitor.degradation_name (Monitor.classify m));
  (* Corruption: a detected tamper is graceful, a silent one is not. *)
  let m = Monitor.create ~n:3 () in
  Monitor.note_tamper m 0 ~detected:true;
  Alcotest.(check int) "detected tamper counted" 1 (Monitor.tampered_detected m);
  Alcotest.(check string) "detected tamper stays live" "live"
    (Monitor.degradation_name (Monitor.classify m));
  Monitor.note_tamper m 1 ~detected:false;
  Alcotest.(check int) "silent tamper counted" 1 (Monitor.tampered_silent m);
  Alcotest.(check string) "silent corruption is a safety violation" "safety-violation"
    (Monitor.degradation_name (Monitor.classify m))

let test_monitor_classification () =
  (* Clean symmetric run: live. *)
  let m = Monitor.create ~n:3 () in
  List.iter (fun p -> Monitor.observe m p (id ~origin:0 ~seq:0)) [ 0; 1; 2 ];
  Monitor.check_final m ~correct:[ 0; 1; 2 ] ();
  Alcotest.(check string) "clean run is live" "live"
    (Monitor.degradation_name (Monitor.classify m));
  (* No deliveries anywhere: liveness lost, safety intact — safe stall. *)
  let m = Monitor.create ~n:3 () in
  Monitor.check_final m ~correct:[ 0; 1; 2 ] ();
  Alcotest.(check string) "liveness-only loss is a safe stall" "safe-stall"
    (Monitor.degradation_name (Monitor.classify m))

(* The determinism cornerstone of the adversary layer: a plan that arms
   every knob at zero strength draws nothing from the adversary stream and
   must leave the run bit-for-bit identical to an adversary-free one, on
   every stack. The control plan is a no-op of the same duration (run
   length follows the last timestamp), so armed-but-idle is the only
   difference between the two runs. *)
let test_zero_knob_non_perturbation () =
  let step ms action = { Schedule.at = Time.span_ms ms; action } in
  let zero =
    [
      step 1000 (Schedule.Adv_drop_budget 0);
      step 1000 (Schedule.Corrupt_rate 0.0);
      step 1000 (Schedule.Duplicate_rate 0.0);
      step 1000 (Schedule.Reorder_window Time.span_zero);
      step 1000 (Schedule.Equivocate_rate 0.0);
    ]
  in
  let control = [ step 1000 (Schedule.Delay_spike Time.span_zero) ] in
  Alcotest.(check bool) "control never arms the adversary" false
    (Schedule.uses_adversary control);
  List.iter
    (fun kind ->
      let run schedule = Campaign.run_one ~kind ~n:3 ~seed:7 ~schedule () in
      let v0 = run control and vz = run zero in
      Alcotest.(check bool) "same outcome" true
        (v0.Campaign.outcome = vz.Campaign.outcome);
      Alcotest.(check int) "same deliveries" v0.Campaign.delivered vz.Campaign.delivered;
      Alcotest.(check int) "same admissions" v0.Campaign.admitted vz.Campaign.admitted;
      Alcotest.(check bool) "same latency, bit for bit" true
        (Int64.bits_of_float v0.Campaign.mean_latency_ms
        = Int64.bits_of_float vz.Campaign.mean_latency_ms))
    [ Replica.Modular; Replica.Monolithic; Replica.Indirect ]

(* Random adversary schedules (no equivocation — detection, not
   absorption, is the contract there) must leave every stack's safety and
   liveness intact: corruption is caught by checksums, suppressed relays
   are repaired by the consensus catch-up, duplicates and reordering are
   absorbed by the protocols. *)
let prop_campaign_adversary_schedule kind name =
  QCheck.Test.make ~name ~count:5
    QCheck.(int_bound 9999)
    (fun seed ->
      let schedule =
        Campaign.random_schedule ~adversary:true (Rng.create ~seed) ~n:3
          ~horizon:(Time.span_s 2)
      in
      let v = Campaign.run_one ~kind ~n:3 ~seed ~schedule () in
      match v.Campaign.outcome with
      | Campaign.Pass -> true
      | Campaign.Fail viol -> QCheck.Test.fail_reportf "%a" Monitor.pp_violation viol)

let adversary_cases =
  [
    Alcotest.test_case "fractional durations" `Quick test_fractional_spans;
    Alcotest.test_case "install validates plans up front" `Quick test_install_validates;
    Alcotest.test_case "coarsen snaps timestamps" `Quick test_coarsen_snaps_timestamps;
    Alcotest.test_case "monitor catches corruption and equivocation" `Quick
      test_monitor_adversary_invariants;
    Alcotest.test_case "degradation classification" `Quick test_monitor_classification;
    Alcotest.test_case "zero-strength knobs do not perturb runs" `Slow
      test_zero_knob_non_perturbation;
    QCheck_alcotest.to_alcotest prop_adversary_roundtrip;
    QCheck_alcotest.to_alcotest ~long:true
      (prop_campaign_adversary_schedule Replica.Modular
         "modular passes random adversary schedules");
    QCheck_alcotest.to_alcotest ~long:true
      (prop_campaign_adversary_schedule Replica.Monolithic
         "monolithic passes random adversary schedules");
    QCheck_alcotest.to_alcotest ~long:true
      (prop_campaign_adversary_schedule Replica.Indirect
         "indirect passes random adversary schedules");
  ]

(* Total order + agreement under random crash / partition / heal schedules,
   on a live group with heartbeat failure detection — the campaign's
   invariants must hold on every stack, the indirect one included. *)
let prop_campaign_random_schedule kind name =
  QCheck.Test.make ~name ~count:5
    QCheck.(int_bound 9999)
    (fun seed ->
      let schedule = Campaign.random_schedule (Rng.create ~seed) ~n:3 ~horizon:(Time.span_s 2) in
      let v = Campaign.run_one ~kind ~n:3 ~seed ~schedule () in
      match v.Campaign.outcome with
      | Campaign.Pass -> true
      | Campaign.Fail viol ->
        QCheck.Test.fail_reportf "%a" Monitor.pp_violation viol)

let campaign_cases =
  [
    Alcotest.test_case "monitor catches seeded violations" `Quick
      test_monitor_catches_seeded_violation;
    Alcotest.test_case "seeded violation shrinks to a minimal reproducer" `Quick
      test_seeded_violation_shrinks;
    Alcotest.test_case "verdicts reproduce bit-for-bit" `Slow test_run_one_deterministic;
    QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
    QCheck_alcotest.to_alcotest prop_shrink_minimal;
    QCheck_alcotest.to_alcotest ~long:true
      (prop_campaign_random_schedule Replica.Modular
         "modular passes random fault schedules");
    QCheck_alcotest.to_alcotest ~long:true
      (prop_campaign_random_schedule Replica.Monolithic
         "monolithic passes random fault schedules");
    QCheck_alcotest.to_alcotest ~long:true
      (prop_campaign_random_schedule Replica.Indirect
         "indirect passes random fault schedules");
  ]

let cases kind tag =
  [
    Alcotest.test_case "non-coordinator crash" `Quick (test_non_coordinator_crash kind);
    Alcotest.test_case "coordinator crash" `Quick (test_coordinator_crash kind);
    Alcotest.test_case "coordinator crash mid-broadcast" `Quick
      (test_coordinator_crash_mid_broadcast kind);
    Alcotest.test_case "two crashes under load (n=5)" `Slow (test_crash_under_load kind);
    Alcotest.test_case "false suspicion" `Quick (test_false_suspicion_isolation kind);
    QCheck_alcotest.to_alcotest
      (prop_random_minority_crashes kind (tag ^ " survives random minority crashes"));
  ]

let () =
  Alcotest.run "faults"
    [
      ("modular", cases Replica.Modular "modular");
      ("monolithic", cases Replica.Monolithic "monolithic");
      ("campaign", campaign_cases);
      ("adversary", adversary_cases);
    ]
