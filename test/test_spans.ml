(* Tests for causal spans (Obs.Span), critical-path reconstruction
   (Analysis.Critical_path), and benchmark reports (Analysis.Bench_report).

   The load-bearing properties, per stack: a deterministic 3-process run
   produces a trace with no orphan parents; every application delivery
   terminates a chain rooted at an App/publish; and the critical-path
   segments telescope — their sum is exactly the measured end-to-end
   latency, so the breakdown accounts for every nanosecond. *)

open Repro_sim
open Repro_core
module Obs = Repro_obs.Obs
module Span = Repro_obs.Span
module Jsonl = Repro_obs.Jsonl
module Cp = Repro_analysis.Critical_path
module Br = Repro_analysis.Bench_report

let stacks =
  [
    ("modular", Replica.Modular);
    ("indirect", Replica.Indirect);
    ("monolithic", Replica.Monolithic);
  ]

let msgs = 10

let run_stack ~kind ~obs =
  let params = Params.default ~n:3 in
  let group = Group.create ~kind ~params ~obs () in
  for i = 0 to msgs - 1 do
    Group.abcast group (i mod 3) ~size:(256 * (i + 1))
  done;
  ignore (Group.run_until_quiescent group ~limit:(Time.span_s 2) ());
  group

let traced kind =
  let obs = Obs.create () in
  ignore (run_stack ~kind ~obs);
  obs

(* ---- Chain integrity ---- *)

let test_no_orphans (name, kind) () =
  let obs = traced kind in
  let spans = Obs.spans obs in
  Alcotest.(check bool) (name ^ ": spans recorded") true (List.length spans > 0);
  Alcotest.(check int) (name ^ ": nothing dropped") 0 (Obs.dropped_spans obs);
  Alcotest.(check (list int))
    (name ^ ": no span references a missing parent")
    []
    (List.map (fun (s : Span.t) -> s.Span.sid) (Span.orphans spans))

let test_complete_chains (name, kind) () =
  let obs = traced kind in
  let spans = Obs.spans obs in
  let tbl = Span.index spans in
  let deliveries = List.filter Cp.is_delivery spans in
  (* Every message is adelivered at each of the 3 processes. *)
  Alcotest.(check int) (name ^ ": one delivery span per message per process")
    (3 * msgs) (List.length deliveries);
  List.iter
    (fun (d : Span.t) ->
      let chain = Span.chain tbl d in
      let root = List.hd chain in
      Alcotest.(check bool) (name ^ ": chain rooted (no truncation)") true
        (Span.is_root root);
      Alcotest.(check string) (name ^ ": root is an application publish")
        "app/publish"
        (Span.layer_name root.Span.layer ^ "/" ^ root.Span.phase);
      Alcotest.(check bool) (name ^ ": chain crosses module boundaries") true
        (List.length chain >= 4);
      (* A delivery at a process other than the publisher must have crossed
         the wire at least once. *)
      if d.Span.pid <> root.Span.pid then
        Alcotest.(check bool) (name ^ ": remote delivery crossed the wire") true
          (List.exists2
             (fun (a : Span.t) (b : Span.t) -> a.Span.pid <> b.Span.pid)
             (List.filteri (fun i _ -> i < List.length chain - 1) chain)
             (List.tl chain)))
    deliveries

let test_telescoping (name, kind) () =
  let obs = traced kind in
  let paths = Cp.paths ~pid:0 (Obs.spans obs) in
  Alcotest.(check int) (name ^ ": one path per delivery at p1") msgs
    (List.length paths);
  List.iter
    (fun (p : Cp.path) ->
      let sum = List.fold_left (fun acc (s : Cp.segment) -> acc + s.Cp.ns) 0 p.Cp.segments in
      Alcotest.(check int) (name ^ ": segments sum to end-to-end latency")
        p.Cp.total_ns sum;
      Alcotest.(check int) (name ^ ": total is delivery - root")
        (Time.to_ns p.Cp.delivery.Span.at - Time.to_ns p.Cp.root.Span.at)
        p.Cp.total_ns)
    paths;
  (* And so does the aggregate: row totals sum to the summed latency. *)
  let b = Cp.breakdown paths in
  let row_sum = List.fold_left (fun acc (r : Cp.breakdown_row) -> acc +. r.Cp.total_ms) 0.0 b.Cp.rows in
  Alcotest.(check (float 1e-6)) (name ^ ": breakdown rows partition the total")
    b.Cp.end_to_end_ms row_sum

(* ---- Instrumentation does not perturb the run ---- *)

let test_spans_do_not_perturb (name, kind) () =
  let plain = run_stack ~kind ~obs:Obs.noop in
  let obs = Obs.create () in
  let observed = run_stack ~kind ~obs in
  Alcotest.(check bool) (name ^ ": spans were recorded") true
    (Obs.span_count obs > 0);
  let ids g =
    List.concat_map
      (fun p ->
        List.map
          (fun (id : App_msg.id) -> (id.App_msg.origin, id.App_msg.seq))
          (Group.deliveries g p))
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list (pair int int)))
    (name ^ ": same delivery order at every process")
    (ids plain) (ids observed);
  Alcotest.(check int) (name ^ ": same final virtual time")
    (Time.to_ns (Engine.now (Group.engine plain)))
    (Time.to_ns (Engine.now (Group.engine observed)))

(* ---- JSONL round-trip ---- *)

let test_span_jsonl_roundtrip () =
  let obs = traced Replica.Modular in
  let spans = Obs.spans obs in
  let lines = Jsonl.span_lines obs in
  Alcotest.(check int) "one line per span" (List.length spans) (List.length lines);
  let parsed =
    match Jsonl.parse_lines (String.concat "\n" lines) with
    | Ok l -> l
    | Error e -> Alcotest.failf "unparsable span JSONL: %s" e
  in
  let decoded = Jsonl.spans_of_lines parsed in
  Alcotest.(check int) "every line decodes" (List.length spans)
    (List.length decoded);
  List.iter2
    (fun (a : Span.t) (b : Span.t) ->
      Alcotest.(check int) "sid" a.Span.sid b.Span.sid;
      Alcotest.(check int) "parent" a.Span.parent b.Span.parent;
      Alcotest.(check int) "at" (Time.to_ns a.Span.at) (Time.to_ns b.Span.at);
      Alcotest.(check int) "pid" a.Span.pid b.Span.pid;
      Alcotest.(check string) "layer" (Span.layer_name a.Span.layer)
        (Span.layer_name b.Span.layer);
      Alcotest.(check string) "phase" a.Span.phase b.Span.phase;
      Alcotest.(check string) "detail" a.Span.detail b.Span.detail)
    spans decoded

let test_span_cap_and_drop_counter () =
  let obs = Obs.create ~max_events:25 () in
  ignore (run_stack ~kind:Replica.Modular ~obs);
  Alcotest.(check int) "retained exactly the cap" 25 (Obs.span_count obs);
  Alcotest.(check bool) "dropped the rest" true (Obs.dropped_spans obs > 0);
  (* Sids keep advancing past the cap, so the retained prefix stays
     globally consistent: parents of retained spans are retained. *)
  Alcotest.(check (list int)) "truncated trace has no orphans" []
    (List.map (fun (s : Span.t) -> s.Span.sid) (Span.orphans (Obs.spans obs)));
  let lines = Jsonl.span_lines obs in
  Alcotest.(check int) "cap lines + truncation marker" 26 (List.length lines);
  match Jsonl.parse (List.nth lines 25) with
  | Ok j ->
    Alcotest.(check (option string)) "marker type" (Some "trace_truncated")
      Jsonl.(to_string_opt (member "type" j));
    Alcotest.(check (option string)) "marker stream" (Some "spans")
      Jsonl.(to_string_opt (member "stream" j));
    Alcotest.(check (option int)) "marker count" (Some (Obs.dropped_spans obs))
      Jsonl.(to_int_opt (member "dropped" j))
  | Error e -> Alcotest.failf "unparsable truncation marker: %s" e

(* ---- Bench reports ---- *)

let test_summarize () =
  let s = Br.summarize [ 4.0; 1.0; 3.0; 2.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Br.median;
  Alcotest.(check (float 1e-9)) "iqr" 2.0 s.Br.iqr;
  let one = Br.summarize [ 7.5 ] in
  Alcotest.(check (float 1e-9)) "singleton median" 7.5 one.Br.median;
  Alcotest.(check (float 1e-9)) "singleton iqr" 0.0 one.Br.iqr

let report entries =
  { Br.meta = [ ("mode", "test") ]; entries; breakdown = [] }

let lat ?(iqr = 0.02) median =
  { Br.name = "modular/n3/latency_ms"; median; iqr; unit_ = "ms"; higher_is_better = false }

let tput ?(iqr = 10.0) median =
  { Br.name = "modular/n3/throughput"; median; iqr; unit_ = "msgs/s"; higher_is_better = true }

let test_compare_identical () =
  let r = report [ lat 1.0; tput 500.0 ] in
  let verdicts = Br.compare_reports ~old_report:r ~new_report:r in
  Alcotest.(check int) "both entries compared" 2 (List.length verdicts);
  Alcotest.(check int) "no regressions" 0 (List.length (Br.regressions verdicts))

let test_compare_flags_regression () =
  let old_report = report [ lat 1.0; tput 500.0 ] in
  (* +50% latency: far outside both the IQR band and the 3% threshold. *)
  let worse = report [ lat 1.5; tput 500.0 ] in
  (match Br.regressions (Br.compare_reports ~old_report ~new_report:worse) with
  | [ v ] ->
    Alcotest.(check string) "the latency entry" "modular/n3/latency_ms" v.Br.entry_name;
    Alcotest.(check (float 1e-6)) "delta" 50.0 v.Br.delta_pct
  | other -> Alcotest.failf "expected 1 regression, got %d" (List.length other));
  (* A throughput drop regresses in the other direction. *)
  let slower = report [ lat 1.0; tput 400.0 ] in
  match Br.regressions (Br.compare_reports ~old_report ~new_report:slower) with
  | [ v ] ->
    Alcotest.(check string) "the throughput entry" "modular/n3/throughput" v.Br.entry_name
  | other -> Alcotest.failf "expected 1 regression, got %d" (List.length other)

let test_compare_tolerates_noise_and_improvement () =
  let old_report = report [ lat 1.0; tput 500.0 ] in
  (* Within the IQR noise band: not a regression even though > 3%. *)
  let noisy = report [ lat ~iqr:0.2 1.08; tput 500.0 ] in
  Alcotest.(check int) "noise-band change tolerated" 0
    (List.length (Br.regressions (Br.compare_reports ~old_report ~new_report:noisy)));
  (* Outside the band but under the relative threshold: also tolerated. *)
  let tiny = report [ lat 1.0; tput ~iqr:1.0 495.0 ] in
  Alcotest.(check int) "sub-threshold change tolerated" 0
    (List.length (Br.regressions (Br.compare_reports ~old_report ~new_report:tiny)));
  (* Improvements are never regressions. *)
  let better = report [ lat 0.5; tput 700.0 ] in
  Alcotest.(check int) "improvement tolerated" 0
    (List.length (Br.regressions (Br.compare_reports ~old_report ~new_report:better)))

let test_report_file_roundtrip () =
  let r =
    {
      Br.meta = [ ("mode", "test"); ("repeats", "2") ];
      entries = [ lat 1.25; tput 512.0 ];
      breakdown =
        [ { Br.stack = "modular"; label = "wire"; mean_ms = 0.15; share = 0.2 } ];
    }
  in
  let path = Filename.temp_file "bench_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Br.write_file path r;
      match Br.read_file path with
      | Error e -> Alcotest.failf "read back failed: %s" e
      | Ok r' ->
        Alcotest.(check (list (pair string string))) "meta" r.Br.meta r'.Br.meta;
        Alcotest.(check int) "entries" 2 (List.length r'.Br.entries);
        let e = List.hd r'.Br.entries in
        Alcotest.(check string) "entry name" "modular/n3/latency_ms" e.Br.name;
        Alcotest.(check (float 1e-9)) "entry median" 1.25 e.Br.median;
        Alcotest.(check bool) "direction preserved" false e.Br.higher_is_better;
        match r'.Br.breakdown with
        | [ b ] ->
          Alcotest.(check string) "breakdown label" "wire" b.Br.label;
          Alcotest.(check (float 1e-9)) "breakdown share" 0.2 b.Br.share
        | other -> Alcotest.failf "expected 1 breakdown row, got %d" (List.length other))

let per_stack name f = List.map (fun s -> Alcotest.test_case (fst s) `Quick (f s)) stacks |> fun cases -> (name, cases)

let () =
  Alcotest.run "spans"
    [
      per_stack "no orphans" test_no_orphans;
      per_stack "complete chains" test_complete_chains;
      per_stack "telescoping" test_telescoping;
      per_stack "non-perturbation" test_spans_do_not_perturb;
      ( "jsonl",
        [
          Alcotest.test_case "span round-trip" `Quick test_span_jsonl_roundtrip;
          Alcotest.test_case "cap and drop counter" `Quick
            test_span_cap_and_drop_counter;
        ] );
      ( "bench-report",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "identical inputs ok" `Quick test_compare_identical;
          Alcotest.test_case "regression flagged" `Quick test_compare_flags_regression;
          Alcotest.test_case "noise and improvement tolerated" `Quick
            test_compare_tolerates_noise_and_improvement;
          Alcotest.test_case "file round-trip" `Quick test_report_file_roundtrip;
        ] );
    ]
