(* The time-travel subsystem (lib/replay + the per-module snapshot
   pairs): codec round-trips, snapshot/restore round-trips, and the
   observational-equivalence property the whole design rests on — a
   suffix resumed from any frame reproduces the t=0 run's observable
   bytes exactly, for all three stacks, and recording at any cadence
   leaves the run's results bit-for-bit identical to the unrecorded
   engine. *)

open Repro_sim
open Repro_core
module Experiment = Repro_workload.Experiment
module Campaign = Repro_fault.Campaign
module Schedule = Repro_fault.Schedule
module Monitor = Repro_fault.Monitor
module Obs = Repro_obs.Obs
module Jsonl = Repro_obs.Jsonl
module Replay = Repro_replay.Replay

let with_temp_log f =
  let path = Filename.temp_file "test_replay" ".rlog" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let all_kinds = [ Replica.Modular; Replica.Indirect; Replica.Monolithic ]

let kind_name = Experiment.kind_name

(* ---- codec round-trip (qcheck) ---- *)

let field_gen =
  QCheck.Gen.(
    let base =
      oneof
        [
          map (fun b -> Snapshot.Bool b) bool;
          map (fun i -> Snapshot.Int i) int;
          map (fun i -> Snapshot.I64 (Int64.of_int i)) int;
          map (fun f -> Snapshot.Float f) float;
          map (fun s -> Snapshot.String s) string_printable;
        ]
    in
    oneof [ base; map (fun l -> Snapshot.List l) (list_size (int_bound 4) base) ])

let section_gen =
  QCheck.Gen.(
    map3
      (fun name fields data ->
        Snapshot.make ~name
          ~version:(1 + String.length name)
          ~data
          (List.mapi (fun i f -> (Printf.sprintf "k%d" i, f)) fields))
      string_printable
      (list_size (int_bound 8) field_gen)
      string)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"encode_sections/decode_sections round-trip" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_bound 5) section_gen))
    (fun sections ->
      let back = Snapshot.decode_sections (Snapshot.encode_sections sections) in
      List.length back = List.length sections
      && List.for_all2 Snapshot.equal_section sections back)

(* ---- snapshot/restore round-trips over a live group ---- *)

let fd_mode = `Heartbeat Repro_fd.Heartbeat_fd.default_config

let busy_group kind =
  let params = { (Params.default ~n:3) with Params.seed = 9 } in
  let g = Group.create ~kind ~params ~fd_mode () in
  List.iter (fun p -> Group.abcast g p ~size:256) [ 0; 1; 2 ];
  Group.run_for g (Time.span_ms 500);
  List.iter (fun p -> Group.abcast g p ~size:256) [ 0; 1; 2 ];
  Group.run_for g (Time.span_ms 500);
  g

(* Same-instant whole-world round-trip: restoring every section right
   back and re-snapshotting must reproduce the identical sections — the
   restore side writes exactly the state the snapshot side reads, module
   by module (tables are genuinely rebuilt, not skipped). *)
let test_group_sections_roundtrip kind () =
  let g = busy_group kind in
  let secs = Group.sections g in
  Alcotest.(check bool) "a rich composition" true (List.length secs > 10);
  Group.restore_sections g secs;
  let secs' = Group.sections g in
  Alcotest.(check int) "same section list" (List.length secs) (List.length secs');
  List.iter2
    (fun (a : Snapshot.section) b ->
      Alcotest.(check bool)
        (Printf.sprintf "section %s round-trips" a.Snapshot.name)
        true (Snapshot.equal_section a b))
    secs secs'

(* Cross-time restore of one replica's modules: snapshot at t1, keep
   running, restore the t1 sections, and the re-read sections must equal
   the t1 ones — the protocol modules' data planes really roll back. *)
let test_replica_restore_rolls_back kind () =
  let g = busy_group kind in
  let r = Group.replica g 0 in
  let secs1 = Replica.sections r in
  List.iter (fun p -> Group.abcast g p ~size:256) [ 0; 1; 2 ];
  Group.run_for g (Time.span_ms 700);
  let changed =
    List.exists2
      (fun (a : Snapshot.section) b -> not (Snapshot.equal_section a b))
      secs1 (Replica.sections r)
  in
  Alcotest.(check bool) "running on changed the state" true changed;
  Replica.restore_sections r secs1;
  List.iter2
    (fun (a : Snapshot.section) b ->
      Alcotest.(check bool)
        (Printf.sprintf "section %s rolled back" a.Snapshot.name)
        true (Snapshot.equal_section a b))
    secs1 (Replica.sections r)

(* ---- recording is invisible: any cadence = the unrecorded engine ---- *)

let tiny_config kind =
  Experiment.config ~kind ~n:3 ~offered_load:400.0 ~size:512 ~warmup_s:0.3
    ~measure_s:0.7 ~seed:1 ()

let strip_snapshot_counters lines =
  List.filter
    (fun line ->
      not
        (List.exists
           (fun m ->
             let needle = Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\"" m in
             String.length line >= String.length needle
             && String.sub line 0 (String.length needle) = needle)
           Replay.snapshot_metrics))
    lines

let test_recording_invisible kind () =
  let obs1 = Obs.create () in
  let lat1, r1 = Experiment.run_raw ~obs:obs1 (tiny_config kind) in
  with_temp_log @@ fun path ->
  let obs2 = Obs.create () in
  let lat2, r2 =
    Replay.record_report ~obs:obs2 ~every_ns:100_000_000 ~path (tiny_config kind)
  in
  Alcotest.(check bool) "latency samples identical" true (lat1 = lat2);
  Alcotest.(check bool) "results identical" true (r1 = r2);
  Alcotest.(check bool)
    "metric lines identical modulo the snapshot counters" true
    (strip_snapshot_counters (Jsonl.metric_lines obs1)
    = strip_snapshot_counters (Jsonl.metric_lines obs2));
  Alcotest.(check bool)
    "trace and span lines identical" true
    (Jsonl.trace_lines obs1 @ Jsonl.span_lines obs1
    = Jsonl.trace_lines obs2 @ Jsonl.span_lines obs2)

(* ---- observational equivalence: every frame's suffix reproduces ---- *)

let check_verify log =
  match Replay.verify log with
  | [] -> ()
  | d :: _ ->
    Alcotest.failf "replay diverged at frame %d, stream %s: %s" d.Replay.d_frame
      d.Replay.d_stream d.Replay.d_detail

let test_verify_report kind () =
  with_temp_log @@ fun path ->
  let obs = Obs.create () in
  let _ = Replay.record_report ~obs ~every_ns:200_000_000 ~path (tiny_config kind) in
  let log = Replay.load path in
  Alcotest.(check bool) "several frames recorded" true (Replay.frame_count log >= 5);
  check_verify log

(* An armed message adversary on top: drops, corruption, duplication and
   reordering all snapshot/restore through the frames. *)
let adversary_schedule n =
  Campaign.random_schedule ~adversary:true (Rng.create ~seed:11) ~n
    ~horizon:(Time.span_s 1)

let test_verify_nemesis kind () =
  let schedule = adversary_schedule 3 in
  with_temp_log @@ fun path ->
  let obs = Obs.create ~max_events:5_000 () in
  let v =
    Replay.record_nemesis ~obs ~kind ~n:3 ~seed:5 ~schedule ~offered_load:400.0
      ~settle_s:0.5 ~every_ns:300_000_000 ~path ()
  in
  let v' =
    Campaign.run_one ~kind ~n:3 ~seed:5 ~schedule ~offered_load:400.0 ~settle_s:0.5 ()
  in
  Alcotest.(check string)
    "recorded verdict equals the plain run_one"
    (Campaign.verdict_line v') (Campaign.verdict_line v);
  check_verify (Replay.load path)

(* ---- bisect: localize a real violation to one inter-frame window ---- *)

let steward_partition_plan =
  "at 300ms partition p1 | p2 p3 p4 p5\nat 1800ms heal-all\n"

let test_bisect_localizes () =
  let schedule =
    match Schedule.of_string steward_partition_plan with
    | Ok s -> s
    | Error e -> Alcotest.failf "plan did not parse: %s" e
  in
  with_temp_log @@ fun path ->
  let obs = Obs.create ~max_events:2_000 () in
  let v =
    Replay.record_nemesis ~obs ~kind:Replica.Monolithic ~n:5 ~seed:3 ~schedule
      ~offered_load:600.0 ~settle_s:0.5 ~every_ns:250_000_000 ~path ()
  in
  (match v.Campaign.outcome with
  | Campaign.Fail _ -> ()
  | Campaign.Pass -> Alcotest.fail "the steward-partition reproducer must fail");
  let log = Replay.load path in
  match Replay.bisect log with
  | None -> Alcotest.fail "bisect found no violation in a failing run"
  | Some r ->
    Alcotest.(check string) "invariant" "total-order" r.Replay.b_invariant;
    Alcotest.(check (option int))
      "the window is a single inter-frame step"
      (Some (r.Replay.b_from_frame + 1))
      r.Replay.b_to_frame;
    Alcotest.(check bool)
      "the violation time lies inside the window" true
      (r.Replay.b_at_ms > r.Replay.b_from_ms && r.Replay.b_at_ms <= r.Replay.b_to_ms);
    Alcotest.(check bool) "non-empty state diff" true (r.Replay.b_diff <> []);
    let monitor_diff =
      List.find_opt
        (fun (d : Snapshot.section_diff) -> d.Snapshot.section = "fault.monitor")
        r.Replay.b_diff
    in
    Alcotest.(check bool)
      "the monitor's violation counter flips inside the window" true
      (match monitor_diff with
      | Some d ->
        List.exists (fun (c : Snapshot.field_diff) -> c.Snapshot.key = "violations") d.Snapshot.changed
      | None -> false);
    Alcotest.(check bool)
      "report lines render" true
      (List.length (Replay.bisect_report_lines r) > List.length r.Replay.b_diff)

(* A passing run has nothing to bisect. *)
let test_bisect_clean_run () =
  let schedule =
    match Schedule.of_string "at 100ms crash p3\n" with
    | Ok s -> s
    | Error e -> Alcotest.failf "plan did not parse: %s" e
  in
  with_temp_log @@ fun path ->
  let v =
    Replay.record_nemesis ~kind:Replica.Modular ~n:3 ~seed:1 ~schedule
      ~offered_load:300.0 ~settle_s:0.5 ~every_ns:200_000_000 ~path ()
  in
  (match v.Campaign.outcome with
  | Campaign.Pass -> ()
  | Campaign.Fail _ -> Alcotest.fail "minority crash must pass");
  Alcotest.(check bool)
    "nothing to bisect" true
    (Replay.bisect (Replay.load path) = None)

let per_kind mk =
  List.map (fun kind -> mk kind (kind_name kind)) all_kinds

let () =
  Alcotest.run "replay"
    [
      ( "codec",
        [ QCheck_alcotest.to_alcotest prop_codec_roundtrip ] );
      ( "roundtrip",
        per_kind (fun kind tag ->
            Alcotest.test_case
              (tag ^ ": whole-group sections round-trip") `Quick
              (test_group_sections_roundtrip kind))
        @ per_kind (fun kind tag ->
              Alcotest.test_case
                (tag ^ ": replica restore rolls back") `Quick
                (test_replica_restore_rolls_back kind)) );
      ( "equivalence",
        per_kind (fun kind tag ->
            Alcotest.test_case
              (tag ^ ": recording is invisible") `Quick
              (test_recording_invisible kind))
        @ per_kind (fun kind tag ->
              Alcotest.test_case
                (tag ^ ": every frame verifies (report)") `Slow
                (test_verify_report kind))
        @ per_kind (fun kind tag ->
              Alcotest.test_case
                (tag ^ ": every frame verifies (adversary nemesis)") `Slow
                (test_verify_nemesis kind)) );
      ( "bisect",
        [
          Alcotest.test_case "localizes the steward-partition violation" `Slow
            test_bisect_localizes;
          Alcotest.test_case "clean run has nothing to bisect" `Quick
            test_bisect_clean_run;
        ] );
    ]
