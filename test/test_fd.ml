(* Tests for failure detectors: the oracle used in protocol tests and the
   heartbeat-based eventually-perfect detector. *)

open Repro_sim
open Repro_net
open Repro_fd

(* ---- Oracle ---- *)

let test_oracle_basics () =
  let o = Oracle_fd.create () in
  let fd = Oracle_fd.fd o in
  Alcotest.(check bool) "initially trusts" false (Fd.is_suspected fd 1);
  let events = ref [] in
  Fd.on_suspect fd (fun p -> events := p :: !events);
  Oracle_fd.suspect o 1;
  Oracle_fd.suspect o 1;
  (* idempotent *)
  Alcotest.(check bool) "suspected" true (Fd.is_suspected fd 1);
  Alcotest.(check (list int)) "edge notification fired once" [ 1 ] !events;
  Oracle_fd.restore o 1;
  Alcotest.(check bool) "restored" false (Fd.is_suspected fd 1);
  Alcotest.(check (list int)) "suspects list" [] (Oracle_fd.suspects o)

let test_never_suspects () =
  Alcotest.(check bool) "trusts everyone" false (Fd.is_suspected Fd.never_suspects 3)

(* ---- Heartbeat detector over the simulated network ---- *)

type hb_world = {
  engine : Engine.t;
  net : unit Network.t;
  detectors : Heartbeat_fd.t array;
}

let make_world ?(n = 3) ?(config = Heartbeat_fd.default_config) () =
  let engine = Engine.create () in
  let net = Network.create engine ~n ~payload_bytes:(fun () -> 8) () in
  let detectors =
    Array.init n (fun me ->
        Heartbeat_fd.create engine config ~n ~me ~send_heartbeat:(fun ~dst ->
            Network.send net ~src:me ~dst ()))
  in
  Array.iteri
    (fun me hb -> Network.register net me (fun ~src () -> Heartbeat_fd.on_heartbeat hb ~src))
    detectors;
  { engine; net; detectors }

let run_for w span = Engine.run_until w.engine (Time.add (Engine.now w.engine) span)

let test_heartbeat_no_false_suspicion () =
  let w = make_world () in
  run_for w (Time.span_s 2);
  Array.iteri
    (fun me hb ->
      Alcotest.(check (list int))
        (Printf.sprintf "p%d suspects nobody" (me + 1))
        [] (Heartbeat_fd.suspects hb))
    w.detectors

let test_heartbeat_detects_crash () =
  let w = make_world () in
  run_for w (Time.span_ms 200);
  Network.crash w.net 2;
  Heartbeat_fd.stop w.detectors.(2);
  run_for w (Time.span_s 1);
  Alcotest.(check (list int)) "p1 suspects p3" [ 2 ] (Heartbeat_fd.suspects w.detectors.(0));
  Alcotest.(check (list int)) "p2 suspects p3" [ 2 ] (Heartbeat_fd.suspects w.detectors.(1))

let test_heartbeat_suspicion_notification () =
  let w = make_world () in
  let notified = ref [] in
  Fd.on_suspect (Heartbeat_fd.fd w.detectors.(0)) (fun p -> notified := p :: !notified);
  run_for w (Time.span_ms 100);
  Network.crash w.net 1;
  Heartbeat_fd.stop w.detectors.(1);
  run_for w (Time.span_s 1);
  Alcotest.(check (list int)) "listener fired for p2" [ 1 ] !notified

let test_heartbeat_recovers_from_false_suspicion () =
  (* Cut the links from p2 to p1 long enough to trigger a suspicion, then
     heal: p1 must unsuspect p2 and raise its timeout (eventual accuracy). *)
  let w = make_world () in
  run_for w (Time.span_ms 100);
  Network.cut w.net ~src:1 ~dst:0;
  run_for w (Time.span_ms 200);
  Alcotest.(check (list int)) "p1 falsely suspects p2" [ 1 ]
    (Heartbeat_fd.suspects w.detectors.(0));
  Network.heal w.net ~src:1 ~dst:0;
  run_for w (Time.span_ms 200);
  Alcotest.(check (list int)) "suspicion retracted" []
    (Heartbeat_fd.suspects w.detectors.(0));
  (* And the detector must now be more patient: a silence of the original
     timeout must no longer trigger a suspicion. *)
  Network.cut w.net ~src:1 ~dst:0;
  run_for w (Time.span_ms 60);
  Alcotest.(check (list int)) "timeout increased after false suspicion" []
    (Heartbeat_fd.suspects w.detectors.(0));
  Network.heal w.net ~src:1 ~dst:0

let test_heartbeat_timeout_decays () =
  (* Regression for adaptive timeout decay: a false suspicion inflates the
     per-peer timeout (eventual accuracy), but a long healthy stretch must
     decay it back to the configured floor so a transient partition does not
     permanently slow crash detection. *)
  let w = make_world () in
  run_for w (Time.span_ms 100);
  let hb = w.detectors.(0) in
  let initial = Time.span_to_ns (Heartbeat_fd.current_timeout hb 1) in
  Alcotest.(check int) "starts at the configured timeout"
    (Time.span_to_ns Heartbeat_fd.default_config.initial_timeout)
    initial;
  (* Silence p2 long enough for a false suspicion, then heal. *)
  Network.cut w.net ~src:1 ~dst:0;
  run_for w (Time.span_ms 200);
  Network.heal w.net ~src:1 ~dst:0;
  run_for w (Time.span_ms 50);
  let grown = Time.span_to_ns (Heartbeat_fd.current_timeout hb 1) in
  Alcotest.(check bool)
    (Printf.sprintf "timeout grew after false suspicion (%d > %d)" grown initial)
    true (grown > initial);
  (* Healthy heartbeats every 10 ms, decaying 1 ms each: 2 s is ample to walk
     a 50 ms increment all the way back down, and the floor must hold. *)
  run_for w (Time.span_s 2);
  let decayed = Time.span_to_ns (Heartbeat_fd.current_timeout hb 1) in
  Alcotest.(check int) "decayed back to the floor, not below it" initial decayed;
  Alcotest.(check (list int)) "no suspicion while decaying" [] (Heartbeat_fd.suspects hb)

let test_heartbeat_stop_quiesces () =
  let w = make_world () in
  Array.iter Heartbeat_fd.stop w.detectors;
  (* With all detectors stopped, activity must die out. *)
  run_for w (Time.span_s 1);
  let before = Engine.pending w.engine in
  Alcotest.(check bool)
    (Printf.sprintf "no periodic events linger (pending=%d)" before)
    true (before = 0)

(* ---- Chen adaptive detector over the simulated network ---- *)

type chen_world = {
  c_engine : Engine.t;
  c_net : unit Network.t;
  c_detectors : Chen_fd.t array;
}

let make_chen_world ?(n = 3) ?(config = Chen_fd.default_config) () =
  let engine = Engine.create () in
  let net = Network.create engine ~n ~payload_bytes:(fun () -> 8) () in
  let detectors =
    Array.init n (fun me ->
        Chen_fd.create engine config ~n ~me ~send_heartbeat:(fun ~dst ->
            Network.send net ~src:me ~dst ()))
  in
  Array.iteri
    (fun me cd -> Network.register net me (fun ~src () -> Chen_fd.on_heartbeat cd ~src))
    detectors;
  { c_engine = engine; c_net = net; c_detectors = detectors }

let chen_run w span = Engine.run_until w.c_engine (Time.add (Engine.now w.c_engine) span)

let test_chen_no_false_suspicion () =
  let w = make_chen_world () in
  chen_run w (Time.span_s 2);
  Array.iteri
    (fun me cd ->
      Alcotest.(check (list int))
        (Printf.sprintf "p%d suspects nobody on a stable link" (me + 1))
        [] (Chen_fd.suspects cd))
    w.c_detectors

let test_chen_detects_crash () =
  let w = make_chen_world () in
  chen_run w (Time.span_ms 300);
  Network.crash w.c_net 2;
  Chen_fd.stop w.c_detectors.(2);
  chen_run w (Time.span_s 1);
  Alcotest.(check (list int)) "p1 suspects p3" [ 2 ] (Chen_fd.suspects w.c_detectors.(0));
  Alcotest.(check (list int)) "p2 suspects p3" [ 2 ] (Chen_fd.suspects w.c_detectors.(1))

let test_chen_detection_speed () =
  (* The adaptive deadline must sit close to period + margin after a warm
     window — much tighter than a conservative fixed timeout. *)
  let w = make_chen_world () in
  chen_run w (Time.span_ms 500);
  let cd = w.c_detectors.(0) in
  match Chen_fd.predicted_deadline cd 1 with
  | None -> Alcotest.fail "expected a prediction after warm-up"
  | Some deadline ->
    let slack =
      Time.span_to_ms_float (Time.diff deadline (Engine.now w.c_engine))
    in
    Alcotest.(check bool)
      (Printf.sprintf "deadline within ~2 periods + margin (%.1f ms)" slack)
      true
      (slack > 0.0 && slack < 35.0)

let test_chen_retracts () =
  let w = make_chen_world () in
  chen_run w (Time.span_ms 300);
  Network.cut w.c_net ~src:1 ~dst:0;
  chen_run w (Time.span_ms 100);
  Alcotest.(check (list int)) "p1 falsely suspects p2" [ 1 ]
    (Chen_fd.suspects w.c_detectors.(0));
  Network.heal w.c_net ~src:1 ~dst:0;
  chen_run w (Time.span_ms 100);
  Alcotest.(check (list int)) "suspicion retracted on next heartbeat" []
    (Chen_fd.suspects w.c_detectors.(0))

let test_chen_drives_abcast_recovery () =
  (* End to end: the full stack over the Chen detector survives a
     coordinator crash. *)
  let open Repro_core in
  let params = Params.default ~n:3 in
  let g = Group.create ~kind:Replica.Monolithic ~params ~fd_mode:(`Chen Chen_fd.default_config) () in
  Group.abcast g 1 ~size:256;
  Group.run_for g (Time.span_ms 100);
  Group.crash g 0;
  Group.abcast g 1 ~size:256;
  Group.abcast g 2 ~size:256;
  Group.run_for g (Time.span_s 5);
  let l1 = Group.deliveries g 1 and l2 = Group.deliveries g 2 in
  Alcotest.(check bool) "survivors agree" true (l1 = l2);
  Alcotest.(check bool) "progress after crash" true (List.length l1 >= 3)

let () =
  Alcotest.run "fd"
    [
      ( "oracle",
        [
          Alcotest.test_case "scripted suspicion" `Quick test_oracle_basics;
          Alcotest.test_case "never_suspects" `Quick test_never_suspects;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "no false suspicion in good runs" `Quick
            test_heartbeat_no_false_suspicion;
          Alcotest.test_case "detects a crash (completeness)" `Quick
            test_heartbeat_detects_crash;
          Alcotest.test_case "edge notification" `Quick test_heartbeat_suspicion_notification;
          Alcotest.test_case "retracts false suspicion (accuracy)" `Quick
            test_heartbeat_recovers_from_false_suspicion;
          Alcotest.test_case "timeout decays after false suspicion" `Quick
            test_heartbeat_timeout_decays;
          Alcotest.test_case "stop quiesces" `Quick test_heartbeat_stop_quiesces;
        ] );
      ( "chen",
        [
          Alcotest.test_case "no false suspicion on stable links" `Quick
            test_chen_no_false_suspicion;
          Alcotest.test_case "detects a crash" `Quick test_chen_detects_crash;
          Alcotest.test_case "tight adaptive deadline" `Quick test_chen_detection_speed;
          Alcotest.test_case "retracts false suspicion" `Quick test_chen_retracts;
          Alcotest.test_case "drives abcast recovery end-to-end" `Quick
            test_chen_drives_abcast_recovery;
        ] );
    ]
