(* Shared-mutable captures at Pool.map sites for the domain-capture
   rule; the ~collect path and pure task closures are sanctioned. *)

let total = ref 0

let bad_toplevel items =
  Repro_parallel.Pool.map (fun x -> total := !total + x; x) items

let bad_accumulator (acc : (int, int) Hashtbl.t) items =
  Repro_parallel.Pool.map (fun x -> Hashtbl.replace acc x x; x) items

let bad_mutation (arr : int array) idxs =
  Repro_parallel.Pool.map (fun i -> arr.(i) <- 2 * i; i) idxs

(* Sanctioned: the task is pure; merging happens in the calling domain
   via the labelled ~collect callback. *)
let good_collect items =
  Repro_parallel.Pool.map
    ~collect:(fun _ r -> total := !total + r)
    (fun x -> 2 * x)
    items
