(* Broken and sanctioned snapshot/restore pairs for the
   snapshot-completeness rule. *)

type t = {
  mutable covered : int; (* read by snapshot: fine *)
  mutable missed : int; (* never read: violation *)
  log : (int, int) Hashtbl.t; (* accumulator, never read: violation *)
  on_event : int -> unit; (* arrow: runtime topology, exempt *)
  table : int array; (* immutable array: constant table, exempt *)
  mutable head : int; (* read via the helper: fine *)
}

let head_of t = t.head
let snapshot t = (t.covered, head_of t)

let restore t (c, h) =
  t.covered <- c;
  t.head <- h

(* A complete pair: the whole-record copy covers every field. *)
module Ok_pair = struct
  type t = { mutable a : int; mutable b : int }

  let snapshot t = { t with a = t.a }

  let restore t (s : t) =
    t.a <- s.a;
    t.b <- s.b
end
