(* RNG-stream discipline: raw seed arithmetic, foreign-stream draws and
   cross-boundary stream handoff, each next to its sanctioned
   counterpart. *)

open Repro_sim

let bad_create seed = Rng.create ~seed:(seed lxor 0xbeef)
let good_create seed = Rng.derive ~seed ~salt:0xbeef

let bad_draw e = Rng.int (Engine.rng e) 6

let good_draw e =
  let mine = Rng.split (Engine.rng e) in
  Rng.int mine 6

let bad_handoff (rng : Rng.t) = Snapshot.pack rng
let good_handoff seed = Snapshot.pack (seed : int)
