(* Lint fixture: hash-order escapes. [keys_sorted] is the sanctioned
   shape (fold piped straight into a sort) and must stay clean. *)
let visit (tbl : (int, string) Hashtbl.t) =
  Hashtbl.iter (fun _ v -> ignore v) tbl

let keys_unsorted (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let keys_sorted (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
