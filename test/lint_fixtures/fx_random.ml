(* Lint fixture: every stdlib Random use below must be flagged. *)
let roll () = Random.int 6
let coin () = Random.bool ()

module R = Random

let reexported = R.bool
