(* Lint fixture: physical equality; only the non-immediate case is
   flagged (int is unboxed, so (==) on it is well-defined). *)
let same_list (a : int list) (b : int list) = a == b

let same_int (a : int) (b : int) = a == b
