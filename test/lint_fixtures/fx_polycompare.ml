(* Lint fixture: polymorphic compare at risky types. The int case is
   fine, and [none_check] exercises the tag-only-comparison exemption
   (x = None inspects a tag even when the payload holds a closure). *)
let cmp_fns (a : int -> int) (b : int -> int) = compare a b

let eq_refs (a : int ref) (b : int ref) = a = b

let cmp_ints (a : int) (b : int) = compare a b

let none_check (x : (int -> int) option) = x = None
