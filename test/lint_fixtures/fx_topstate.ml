(* Lint fixture: module-toplevel mutable state. The toplevel ref, the
   toplevel Hashtbl and a binding nested inside a submodule are flagged;
   a ref allocated inside a function is per-call state and exempt, as is
   a toplevel binding that merely *calls* something returning state it
   does not syntactically allocate. *)
let counter = ref 0

let cache : (string, int) Hashtbl.t = Hashtbl.create 16

module Inner = struct
  let buf = Buffer.create 64
end

let fresh () =
  let local = ref 0 in
  incr local;
  !local

let make_table () = Hashtbl.create 8

let indirect : (string, int) Hashtbl.t = make_table ()
