(* Lint fixture: host-clock reads; both must be flagged. *)
let now () = Unix.gettimeofday ()
let cpu_seconds () = Sys.time ()
