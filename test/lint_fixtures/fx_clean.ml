(* Lint fixture: nothing here may be flagged. *)
let add a b = a + b

let sorted xs = List.sort Int.compare xs
