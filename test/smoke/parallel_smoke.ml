(* The @parallel-smoke alias: end-to-end determinism check of the domain
   pool through the public bench executable. Runs the tiny seeded
   benchmark twice — sequentially (--jobs 1) and on a pool (--jobs 4) —
   and requires the two reports to be byte-identical once the
   timing-only meta fields (jobs, wallclock_s, speedup_vs_seq,
   events_per_sec) are stripped: every simulated number, per-cell and
   pooled — including the deterministic events_executed count, which is
   deliberately NOT stripped — must not depend on the worker count.
   Wired into `dune runtest`. *)

module Br = Repro_analysis.Bench_report

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("parallel-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let run_cli bin args =
  let cmd = String.concat " " (List.map Filename.quote (bin :: args)) in
  let code = Sys.command (cmd ^ " > /dev/null") in
  if code <> 0 then fail "%s %s exited with %d" bin (String.concat " " args) code

let timing_keys =
  [
    "jobs";
    "wallclock_s";
    "speedup_vs_seq";
    "events_per_sec";
    (* Snapshot-recording provenance (bench --snapshot-every): how the
       report was produced, not what it measured. *)
    "snapshots_taken";
    "snapshot_bytes";
    "restore_count";
  ]

let strip_timing (r : Br.t) =
  { r with Br.meta = List.filter (fun (k, _) -> not (List.mem k timing_keys)) r.Br.meta }

let canonical path =
  match Br.read_file path with
  | Error e -> fail "report %s unreadable: %s" path e
  | Ok r ->
    let stripped = strip_timing r in
    let tmp = path ^ ".stripped" in
    Br.write_file tmp stripped;
    let ic = open_in_bin tmp in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    (stripped, body)

let () =
  let bench_exe =
    match Sys.argv with
    | [| _; bench |] -> bench
    | _ -> fail "usage: parallel_smoke BENCH_EXE"
  in
  let seq_path = "parallel_smoke_j1.json"
  and par_path = "parallel_smoke_j4.json" in
  run_cli bench_exe [ "--smoke"; "--jobs"; "1"; "--json-out"; seq_path ];
  run_cli bench_exe [ "--smoke"; "--jobs"; "4"; "--json-out"; par_path ];
  let seq, seq_body = canonical seq_path in
  let par, par_body = canonical par_path in
  if seq.Br.entries = [] then fail "sequential report has no bench_entry lines";
  (* The timing fields must actually be present before stripping. *)
  let has_meta path (r : Br.t) =
    List.iter
      (fun k ->
        if not (List.mem_assoc k r.Br.meta) then
          fail "%s: bench_meta lacks %S" path k)
      timing_keys
  in
  (match Br.read_file seq_path with
  | Ok r -> has_meta seq_path r
  | Error e -> fail "reread failed: %s" e);
  (match Br.read_file par_path with
  | Ok r -> has_meta par_path r
  | Error e -> fail "reread failed: %s" e);
  if String.length seq_body = 0 then fail "stripped sequential report is empty";
  if not (String.equal seq_body par_body) then begin
    (* Point at the first differing line to make failures diagnosable. *)
    let ls = String.split_on_char '\n' seq_body
    and lp = String.split_on_char '\n' par_body in
    let rec first_diff i = function
      | a :: tl_a, b :: tl_b ->
        if String.equal a b then first_diff (i + 1) (tl_a, tl_b)
        else Some (i, a, b)
      | [], b :: _ -> Some (i, "<eof>", b)
      | a :: _, [] -> Some (i, a, "<eof>")
      | [], [] -> None
    in
    (match first_diff 1 (ls, lp) with
    | Some (i, a, b) ->
      Printf.eprintf "line %d\n  jobs=1: %s\n  jobs=4: %s\n" i a b
    | None -> ());
    fail "--jobs 1 and --jobs 4 reports differ beyond timing meta"
  end;
  ignore par;
  print_endline "parallel-smoke: OK"
