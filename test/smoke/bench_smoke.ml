(* The @bench-smoke alias: end-to-end check of the benchmark regression
   pipeline through the public executables. Runs the tiny seeded benchmark
   (bench --smoke --json-out), validates the report, then drives
   `repro compare` twice: against the identical report (must exit 0) and
   against a synthetically regressed copy (must exit nonzero). Wired into
   `dune runtest`. *)

module Br = Repro_analysis.Bench_report

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("bench-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let command bin args =
  let cmd = String.concat " " (List.map Filename.quote (bin :: args)) in
  Sys.command (cmd ^ " > /dev/null")

let run_cli bin args =
  let code = command bin args in
  if code <> 0 then fail "%s %s exited with %d" bin (String.concat " " args) code

let () =
  let bench_exe, repro_bin =
    match Sys.argv with
    | [| _; bench; repro |] -> (bench, repro)
    | _ -> fail "usage: bench_smoke BENCH_EXE REPRO_BIN"
  in
  let report_path = "bench_smoke.json" in
  run_cli bench_exe [ "--smoke"; "--json-out"; report_path ];
  let report =
    match Br.read_file report_path with
    | Ok r -> r
    | Error e -> fail "report unreadable: %s" e
  in
  if report.Br.entries = [] then fail "report has no bench_entry lines";
  if report.Br.breakdown = [] then fail "report has no critical-path breakdown";
  List.iter
    (fun (e : Br.entry) ->
      if Float.is_nan e.Br.median || e.Br.median <= 0.0 then
        fail "entry %s has a degenerate median %g" e.Br.name e.Br.median)
    report.Br.entries;
  (* Identical inputs: the gate must pass. *)
  run_cli repro_bin [ "compare"; report_path; report_path ];
  (* Inject a synthetic regression — worse in each metric's own bad
     direction, far beyond IQR and the 3% threshold — and require the gate
     to fail. *)
  let regressed_path = "bench_smoke_regressed.json" in
  let regressed =
    {
      report with
      Br.entries =
        List.map
          (fun (e : Br.entry) ->
            {
              e with
              Br.median =
                (if e.Br.higher_is_better then e.Br.median *. 0.5
                 else e.Br.median *. 1.5);
            })
          report.Br.entries;
    }
  in
  Br.write_file regressed_path regressed;
  (match command repro_bin [ "compare"; report_path; regressed_path ] with
  | 0 -> fail "compare accepted a 50%% synthetic regression"
  | _ -> ());
  print_endline "bench-smoke: OK"
