(* The @replay-smoke alias: end-to-end check of the time-travel tooling
   through the public CLI. Records a monitored nemesis run and a report
   run as frame logs, lists/replays/verifies them, bisects both a passing
   log (nothing to bisect) and a misused one (report logs carry no
   monitor), converts a span trace to Chrome Trace Event Format, and
   checks that half-specified snapshot flags are rejected before any
   simulation starts. Wired into `dune runtest`. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("replay-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let command ?(stdout = "/dev/null") bin args =
  let cmd = String.concat " " (List.map Filename.quote (bin :: args)) in
  Sys.command (cmd ^ " > " ^ Filename.quote stdout ^ " 2> /dev/null")

let run_cli ?stdout bin args =
  let code = command ?stdout bin args in
  if code <> 0 then
    fail "%s exited with %d" (String.concat " " (bin :: args)) code

let expect_rejection bin args ~what =
  let code = command bin args in
  if code = 0 then fail "%s was accepted (exit 0), expected a rejection" what

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let () =
  let bin = if Array.length Sys.argv > 1 then Sys.argv.(1) else "repro" in
  let tmp = Filename.temp_file "replay_smoke" "" in
  Sys.remove tmp;
  let plan = tmp ^ ".plan" in
  let nem_log = tmp ^ ".nem.rlog" and rep_log = tmp ^ ".rep.rlog" in
  let trace = tmp ^ ".trace.jsonl" and chrome = tmp ^ ".chrome.json" in
  let out = tmp ^ ".out" in

  (* Record a passing monitored run as a frame log. *)
  write_file plan
    "at 100ms crash p3\nat 400ms duplicate 0.05\nat 600ms duplicate 0\n";
  run_cli bin
    [
      "nemesis"; "--fault-plan"; plan; "--stack"; "modular"; "-n"; "3"; "--seed";
      "1"; "--load"; "300"; "--settle"; "0.5"; "--snapshot-every"; "100";
      "--snapshot-out"; nem_log;
    ];

  (* List the frames, resume from one, and self-verify every frame. *)
  run_cli ~stdout:out bin [ "replay"; nem_log; "--list" ];
  let listing = read_file out in
  if not (contains ~needle:"frame   0 at" listing) then
    fail "replay --list shows no frame 0:\n%s" listing;
  if not (contains ~needle:"\"mode\":\"nemesis\"" listing) then
    fail "replay --list shows no descriptor:\n%s" listing;
  run_cli ~stdout:out bin [ "replay"; nem_log; "--frame"; "2" ];
  if not (contains ~needle:"\"type\":\"verdict\"" (read_file out)) then
    fail "replay --frame 2 printed no verdict: %s" (read_file out);
  run_cli ~stdout:out bin [ "replay"; nem_log; "--verify" ];
  if not (contains ~needle:"byte-identical" (read_file out)) then
    fail "replay --verify did not report byte-identical frames: %s" (read_file out);

  (* A passing log has nothing to bisect — and says so. *)
  run_cli ~stdout:out bin [ "bisect"; nem_log ];
  if not (contains ~needle:"nothing to bisect" (read_file out)) then
    fail "bisect on a passing log: %s" (read_file out);

  (* Record a report run with a span trace; verify and export it. *)
  run_cli bin
    [
      "run"; "--stack"; "monolithic"; "-n"; "3"; "--load"; "300"; "--size";
      "512"; "--warmup"; "0.2"; "--measure"; "0.4"; "--trace-out"; trace;
      "--snapshot-every"; "100"; "--snapshot-out"; rep_log;
    ];
  run_cli ~stdout:out bin [ "replay"; rep_log; "--verify" ];
  if not (contains ~needle:"byte-identical" (read_file out)) then
    fail "report replay --verify: %s" (read_file out);
  run_cli bin [ "trace-export"; "--trace"; trace; "--chrome-out"; chrome ];
  let exported = read_file chrome in
  if not (contains ~needle:"\"traceEvents\"" exported) then
    fail "chrome export has no traceEvents array";
  if not (contains ~needle:"\"ph\":\"X\"" exported) then
    fail "chrome export has no complete (X) span events";

  (* Misuse is rejected up front. *)
  expect_rejection bin
    [ "run"; "--snapshot-every"; "5"; "--warmup"; "0.1"; "--measure"; "0.1" ]
    ~what:"--snapshot-every without --snapshot-out";
  expect_rejection bin
    [ "run"; "--snapshot-out"; tmp ^ ".x.rlog"; "--warmup"; "0.1"; "--measure"; "0.1" ]
    ~what:"--snapshot-out without --snapshot-every";
  expect_rejection bin [ "bisect"; rep_log ] ~what:"bisect on an unmonitored report log";
  expect_rejection bin [ "replay"; rep_log; "--frame"; "9999" ]
    ~what:"replay from an out-of-range frame";

  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ plan; nem_log; rep_log; trace; chrome; out ];
  print_endline "replay-smoke: OK"
