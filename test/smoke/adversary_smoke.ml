(* The @adversary-smoke alias: end-to-end check of the message-adversary
   pipeline through the public CLI. Runs an adversary fault plan on every
   stack, checks that invalid adversary plans are rejected before any
   simulation starts, runs a tiny adversary campaign whose verdicts must
   all pass, and runs the robustness sweep (`repro study --adversary`)
   under --jobs 1 and --jobs 2 — stdout and JSONL must be byte-identical,
   with checksums catching every tampered copy. Wired into `dune runtest`. *)

module Jsonl = Repro_obs.Jsonl

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("adversary-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let command ?(stdout = "/dev/null") bin args =
  let cmd = String.concat " " (List.map Filename.quote (bin :: args)) in
  Sys.command (cmd ^ " > " ^ Filename.quote stdout ^ " 2> /dev/null")

let run_cli ?stdout bin args =
  let code = command ?stdout bin args in
  if code <> 0 then
    fail "%s exited with %d" (String.concat " " (bin :: args)) code

let expect_rejection bin args ~what =
  let code = command bin args in
  if code = 0 then fail "%s was accepted (exit 0), expected a rejection" what

let str_field name j = Jsonl.(to_string_opt (member name j))
let int_field name j = Jsonl.(to_int_opt (member name j))

let () =
  let bin = if Array.length Sys.argv > 1 then Sys.argv.(1) else "repro" in
  let tmp = Filename.temp_file "adversary_smoke" "" in
  Sys.remove tmp;
  (* a fresh path prefix *)
  let plan = tmp ^ ".plan" and bad = tmp ^ ".bad" in
  let out = tmp ^ ".jsonl" and out2 = tmp ^ ".2.jsonl" in
  let txt = tmp ^ ".txt" and txt2 = tmp ^ ".2.txt" in

  (* A full adversary window — drop budget, corruption, duplication,
     reordering — armed then disarmed must leave every stack with a
     passing verdict: checksums discard the tampered copies and
     retransmission/catch-up repairs the suppressed ones. *)
  write_file plan
    "# adversary-smoke plan\n\
     at 100ms adv-drop-budget 1\n\
     at 100ms corrupt 0.02\n\
     at 100ms duplicate 0.05\n\
     at 100ms reorder 1ms\n\
     at 600ms adv-drop-budget 0\n\
     at 600ms corrupt 0\n\
     at 600ms duplicate 0\n\
     at 600ms reorder 0ms\n";
  List.iter
    (fun stack ->
      run_cli bin [ "nemesis"; "--fault-plan"; plan; "--stack"; stack; "-n"; "3" ])
    [ "modular"; "monolithic"; "indirect" ];

  (* Invalid adversary plans fail fast, before any simulation. *)
  write_file bad "at 100ms adv-drop-budget 2\n";
  expect_rejection bin
    [ "nemesis"; "--fault-plan"; bad; "-n"; "3" ]
    ~what:"drop budget above n-2";
  write_file bad "at 100ms corrupt 1.5\n";
  expect_rejection bin
    [ "nemesis"; "--fault-plan"; bad; "-n"; "3" ]
    ~what:"corrupt rate above 1";

  (* A tiny adversary campaign: every verdict is a pass. *)
  run_cli bin
    [ "campaign"; "-n"; "3"; "--campaign-seeds"; "2"; "--adversary"; "--out"; out ];
  (match Jsonl.parse_lines (read_file out) with
  | Error e -> fail "campaign JSONL unparsable: %s" e
  | Ok lines ->
    let verdicts = List.filter (fun j -> str_field "type" j = Some "verdict") lines in
    if List.length verdicts <> 6 then
      fail "expected 6 verdicts (2 seeds x 3 stacks), got %d" (List.length verdicts);
    List.iter
      (fun j ->
        match str_field "result" j with
        | Some "pass" -> ()
        | r ->
          fail "adversary campaign seed %s stack %s: result %s"
            (Option.value ~default:"?" (str_field "seed" j))
            (Option.value ~default:"?" (str_field "stack" j))
            (Option.value ~default:"none" r))
      verdicts);
  Sys.remove out;

  (* The robustness sweep: byte-identical whatever --jobs, 12 rows
     (3 stacks x 4 levels), every row classified, no silent corruption. *)
  run_cli ~stdout:txt bin
    [ "study"; "--adversary"; "-n"; "3"; "--jobs"; "1"; "--out"; out ];
  run_cli ~stdout:txt2 bin
    [ "study"; "--adversary"; "-n"; "3"; "--jobs"; "2"; "--out"; out2 ];
  if read_file txt <> read_file txt2 then
    fail "study --adversary stdout differs between --jobs 1 and --jobs 2";
  if read_file out <> read_file out2 then
    fail "study --adversary JSONL differs between --jobs 1 and --jobs 2";
  (match Jsonl.parse_lines (read_file out) with
  | Error e -> fail "study JSONL unparsable: %s" e
  | Ok lines ->
    let rows =
      List.filter (fun j -> str_field "type" j = Some "study-adversary") lines
    in
    if List.length rows <> 12 then
      fail "expected 12 study-adversary rows, got %d" (List.length rows);
    List.iter
      (fun j ->
        let cell () =
          Printf.sprintf "%s/%s"
            (Option.value ~default:"?" (str_field "stack" j))
            (Option.value ~default:"?" (str_field "level" j))
        in
        (match str_field "degradation" j with
        | Some ("live" | "safe-stall" | "safety-violation") -> ()
        | d ->
          fail "%s: unknown degradation %s" (cell ())
            (Option.value ~default:"none" d));
        match int_field "tampered_silent" j with
        | Some 0 -> ()
        | s ->
          fail "%s: %d silently corrupted copies (checksums are on)" (cell ())
            (Option.value ~default:(-1) s))
      rows);
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ plan; bad; out; out2; txt; txt2 ];
  print_endline "adversary-smoke: OK"
