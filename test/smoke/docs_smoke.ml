(* The @docs-smoke alias: keeps README's CLI quick-reference table in
   lock-step with the binary. Parses the COMMANDS section of
   `repro --help=plain` and the README table rows of the form
   `| `repro NAME` | ... |`, and requires the two subcommand sets to be
   identical — adding, renaming or removing a subcommand fails
   `dune runtest` until the documentation follows. Wired into
   `dune runtest`. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("docs-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let read_lines path =
  let ic = try open_in path with Sys_error e -> fail "cannot open %s: %s" path e in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* Subcommand names from the COMMANDS section: entry lines are indented
   with exactly seven spaces and start with the command name; the section
   ends at the next column-0 header. *)
let help_commands repro =
  let out = Filename.temp_file "docs_smoke_help" ".txt" in
  let cmd =
    Printf.sprintf "%s --help=plain > %s" (Filename.quote repro) (Filename.quote out)
  in
  let code = Sys.command cmd in
  if code <> 0 then fail "repro --help=plain exited with %d" code;
  let lines = read_lines out in
  Sys.remove out;
  let in_section = ref false in
  let names = ref [] in
  List.iter
    (fun line ->
      if line = "COMMANDS" then in_section := true
      else if !in_section && line <> "" && line.[0] <> ' ' then in_section := false
      else if
        !in_section
        && String.length line > 7
        && String.sub line 0 7 = "       "
        && line.[7] <> ' '
      then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.index_opt rest ' ' with
        | Some i -> names := String.sub rest 0 i :: !names
        | None -> names := rest :: !names
      end)
    lines;
  List.sort_uniq compare !names

(* Subcommand names from the README quick-reference rows. *)
let readme_commands readme =
  let prefix = "| `repro " in
  let names = ref [] in
  List.iter
    (fun line ->
      let plen = String.length prefix in
      if String.length line > plen && String.sub line 0 plen = prefix then begin
        let rest = String.sub line plen (String.length line - plen) in
        match String.index_opt rest '`' with
        | Some i -> names := String.sub rest 0 i :: !names
        | None -> fail "unterminated command cell in README row: %s" line
      end)
    (read_lines readme);
  List.sort_uniq compare !names

let () =
  let repro, readme =
    match Sys.argv with
    | [| _; repro; readme |] -> (repro, readme)
    | _ -> fail "usage: docs_smoke REPRO_EXE README.md"
  in
  let from_help = help_commands repro in
  let from_readme = readme_commands readme in
  if from_help = [] then fail "no subcommands parsed from repro --help=plain";
  if from_readme = [] then fail "no `| `repro NAME` |` rows found in %s" readme;
  let missing l set = List.filter (fun c -> not (List.mem c set)) l in
  (match missing from_help from_readme with
  | [] -> ()
  | l ->
    fail "subcommands missing from the README quick-reference table: %s"
      (String.concat ", " l));
  (match missing from_readme from_help with
  | [] -> ()
  | l ->
    fail "README documents subcommands the binary does not have: %s"
      (String.concat ", " l));
  Printf.printf "docs-smoke: OK (%d subcommands in sync)\n" (List.length from_help)
