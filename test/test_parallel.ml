(* Tests for the parallel harness (PR 5): the domain pool's ordering and
   failure contracts, the Obs merge layer it leans on, and end-to-end
   jobs-equivalence — a parallel schedule must be byte-identical to the
   sequential one for results, callback order, metrics JSONL and the
   campaign verdict stream. *)

module Pool = Repro_parallel.Pool
module Parmap = Repro_workload.Parmap
module Obs = Repro_obs.Obs
module Jsonl = Repro_obs.Jsonl
open Repro_core
open Repro_workload

(* ---- Pool ---- *)

let test_default_jobs () =
  Alcotest.(check bool) "at least one worker" true (Pool.default_jobs () >= 1)

let test_map_ordering () =
  List.iter
    (fun jobs ->
      let collected = ref [] in
      let results =
        Pool.map ~jobs
          ~collect:(fun i y -> collected := (i, y) :: !collected)
          (fun x -> x * x)
          [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
      in
      Alcotest.(check (list int))
        (Printf.sprintf "results in input order (jobs=%d)" jobs)
        [ 0; 1; 4; 9; 16; 25; 36; 49; 64; 81 ]
        results;
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "collect streams in task order (jobs=%d)" jobs)
        (List.init 10 (fun i -> (i, i * i)))
        (List.rev !collected))
    [ 1; 2; 4 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~jobs:4 (fun x -> x + 1) [ 6 ])

exception Boom of int

let test_map_exception () =
  List.iter
    (fun jobs ->
      let collected = ref [] in
      let raised =
        try
          ignore
            (Pool.map ~jobs
               ~collect:(fun i _ -> collected := i :: !collected)
               (fun x -> if x = 5 then raise (Boom x) else x)
               [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
          None
        with Boom x -> Some x
      in
      Alcotest.(check (option int))
        (Printf.sprintf "original exception propagates (jobs=%d)" jobs)
        (Some 5) raised;
      (* Exactly the prefix before the failing task is collected: the
         sequential contract, independent of how the domains interleaved. *)
      Alcotest.(check (list int))
        (Printf.sprintf "collect saw exactly the prefix (jobs=%d)" jobs)
        [ 0; 1; 2; 3; 4 ]
        (List.rev !collected))
    [ 1; 2; 4 ]

(* ---- Obs.absorb: merged per-task sinks = one shared sequential sink ---- *)

let record_task obs k =
  (* A mix of every stream, keyed by the task index so merge order is
     visible in the output. *)
  Obs.incr obs ~by:(k + 1) "task.count";
  Obs.incr obs (Printf.sprintf "task.%d.only" k);
  Obs.set_gauge obs "task.last" (float_of_int k);
  Obs.observe obs "task.lat" (float_of_int (10 * k));
  Obs.event obs ~pid:k ~layer:`App ~phase:"work" ~detail:(string_of_int k) ();
  let root = Obs.span obs ~pid:k ~layer:`App ~phase:"root" () in
  ignore (Obs.span obs ~parent:root ~pid:k ~layer:`App ~phase:"child" ())

let dump obs = String.concat "\n" (Jsonl.metric_lines ~tags:[] obs)

let dump_trace obs = String.concat "\n" (Jsonl.span_lines ~tags:[] obs)

let test_absorb_equals_sequential () =
  let tasks = [ 0; 1; 2; 3 ] in
  let shared = Obs.create () in
  List.iter (record_task shared) tasks;
  let merged = Obs.create () in
  let sinks = List.map (fun k -> let s = Obs.create () in record_task s k; s) tasks in
  List.iter (fun s -> Obs.absorb merged s) sinks;
  Alcotest.(check string) "metric JSONL identical" (dump shared) (dump merged);
  Alcotest.(check string) "span JSONL identical (ids renumbered)"
    (dump_trace shared) (dump_trace merged);
  Alcotest.(check int) "event streams same length" (Obs.event_count shared)
    (Obs.event_count merged)

let test_absorb_noop_sinks () =
  let dst = Obs.create () in
  Obs.absorb dst Obs.noop;
  Obs.absorb Obs.noop dst;
  Alcotest.(check pass) "absorbing noop in either direction is a no-op" () ();
  Alcotest.(check bool) "create_like noop is noop" false
    (Obs.enabled (Obs.create_like Obs.noop));
  Alcotest.(check bool) "create_like enabled is enabled" true
    (Obs.enabled (Obs.create_like dst))

(* ---- Parmap: shared-sink semantics across jobs ---- *)

let test_parmap_equivalence () =
  let work ~obs k =
    record_task obs k;
    k * 3
  in
  let run jobs =
    let obs = Obs.create () in
    let order = ref [] in
    let results =
      Parmap.map ~jobs ~obs
        ~collect:(fun i y -> order := (i, y) :: !order)
        work [ 0; 1; 2; 3; 4 ]
    in
    (results, List.rev !order, dump obs, dump_trace obs)
  in
  let r1, o1, m1, t1 = run 1 in
  let r4, o4, m4, t4 = run 4 in
  Alcotest.(check (list int)) "results equal" r1 r4;
  Alcotest.(check (list (pair int int))) "collect order equal" o1 o4;
  Alcotest.(check string) "metrics equal" m1 m4;
  Alcotest.(check string) "spans equal" t1 t4

(* ---- Experiment.run_repeated across jobs ---- *)

let repeated_config =
  Experiment.config ~kind:Replica.Modular ~n:3 ~offered_load:800.0 ~size:512
    ~warmup_s:0.2 ~measure_s:0.5 ~arrival:Generator.Poisson ()

let test_run_repeated_jobs_equivalence () =
  let run jobs =
    let obs = Obs.create ~max_events:0 () in
    let r = Experiment.run_repeated ~repeats:3 ~jobs ~obs repeated_config in
    (r, dump obs)
  in
  let r1, m1 = run 1 in
  let r4, m4 = run 4 in
  Alcotest.(check (float 0.0)) "pooled latency mean identical"
    r1.Experiment.early_latency_ms.Stats.mean r4.Experiment.early_latency_ms.Stats.mean;
  Alcotest.(check (float 0.0)) "throughput identical" r1.Experiment.throughput
    r4.Experiment.throughput;
  Alcotest.(check string) "accumulated metrics identical" m1 m4

let test_poisson_seeds_vary () =
  (* The BENCH iqr=0 fix: under Poisson arrivals consecutive seeds must
     actually perturb the execution (uniform arrivals consume no
     randomness on the good path and are seed-invariant). *)
  let lat seed =
    (Experiment.run { repeated_config with Experiment.seed = seed })
      .Experiment.early_latency_ms.Stats.mean
  in
  Alcotest.(check bool) "seed 0 and 1 differ" true (lat 0 <> lat 1)

(* ---- Campaign across jobs ---- *)

let test_campaign_jobs_equivalence () =
  let run jobs =
    let lines = ref [] in
    let verdicts =
      Repro_fault.Campaign.run ~kinds:[ Replica.Modular; Replica.Monolithic ]
        ~horizon_s:0.5
        ~on_verdict:(fun v -> lines := Repro_fault.Campaign.verdict_line v :: !lines)
        ~jobs ~n:3 ~seeds:3 ()
    in
    (List.map Repro_fault.Campaign.verdict_line verdicts, List.rev !lines)
  in
  let v1, l1 = run 1 in
  let v4, l4 = run 4 in
  Alcotest.(check (list string)) "verdict lines identical" v1 v4;
  Alcotest.(check (list string)) "on_verdict stream identical" l1 l4;
  Alcotest.(check (list string)) "callback order is the verdict order" v1 l1

let test_adversary_campaign_jobs_equivalence () =
  (* Same contract with the message adversary in the mix: the adversary
     draws from a group-private stream, so parallel cells stay
     byte-identical to the sequential schedule. *)
  let run jobs =
    let verdicts =
      Repro_fault.Campaign.run ~kinds:[ Replica.Modular; Replica.Indirect ]
        ~horizon_s:0.5 ~adversary:true ~jobs ~n:3 ~seeds:2 ()
    in
    List.map Repro_fault.Campaign.verdict_line verdicts
  in
  Alcotest.(check (list string)) "verdict lines identical" (run 1) (run 4)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "default-jobs" `Quick test_default_jobs;
          Alcotest.test_case "ordering" `Quick test_map_ordering;
          Alcotest.test_case "empty/singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "exception" `Quick test_map_exception;
        ] );
      ( "absorb",
        [
          Alcotest.test_case "sequential-equivalence" `Quick
            test_absorb_equals_sequential;
          Alcotest.test_case "noop" `Quick test_absorb_noop_sinks;
        ] );
      ( "parmap",
        [ Alcotest.test_case "jobs-equivalence" `Quick test_parmap_equivalence ] );
      ( "experiment",
        [
          Alcotest.test_case "run-repeated" `Quick test_run_repeated_jobs_equivalence;
          Alcotest.test_case "poisson-seeds-vary" `Quick test_poisson_seeds_vary;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs-equivalence" `Quick test_campaign_jobs_equivalence;
          Alcotest.test_case "adversary jobs-equivalence" `Slow
            test_adversary_campaign_jobs_equivalence;
        ] );
    ]
