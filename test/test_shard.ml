(* Tests for the sharding layer (ISSUE 10): router determinism, the
   population plan's shard-count invariance, 1-shard equivalence with the
   legacy single-group path, batched-hop byte-identity, and
   jobs-equivalence of sharded runs and the scale study. *)

module Router = Repro_shard.Router
module Shard = Repro_shard.Shard
module Scale = Repro_shard.Scale
module Obs = Repro_obs.Obs
module Jsonl = Repro_obs.Jsonl
module Rng = Repro_sim.Rng
module Time = Repro_sim.Time
module Event_queue = Repro_sim.Event_queue
open Repro_core
open Repro_workload

let dump obs = String.concat "\n" (Jsonl.metric_lines ~tags:[] obs)
let dump_spans obs = String.concat "\n" (Jsonl.span_lines ~tags:[] obs)

(* ---- Event queue: reserved tickets ---- *)

let test_reserved_tickets () =
  let q = Event_queue.create () in
  let t1 = Time.of_ns 100 in
  Event_queue.push_unit q ~time:t1 "a";
  let ticket = Event_queue.reserve_seq q in
  Event_queue.push_unit q ~time:t1 "c";
  (* Inserted after "c", but under the ticket drawn before it: must pop
     between "a" and "c" — reservation fixes the tie-break rank. *)
  Event_queue.push_reserved q ~time:t1 ~seq:ticket "b";
  let order = ref [] in
  while Event_queue.pop_apply q (fun _ v -> order := v :: !order) do
    ()
  done;
  Alcotest.(check (list string))
    "same-instant pops follow reservation order" [ "a"; "b"; "c" ]
    (List.rev !order)

(* ---- Router ---- *)

let test_router_basics () =
  Alcotest.(check int) "one shard takes everything" 0
    (Router.shard_of_key ~shards:1 12345);
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let key = Rng.int rng max_int in
    let s = Router.shard_of_key ~shards:5 key in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 5);
    Alcotest.(check int) "pure function: same key, same shard" s
      (Router.shard_of_key ~shards:5 key)
  done

let test_router_pow2_monotone () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 2000 do
    let key = Rng.int rng max_int in
    let m = 1 lsl Rng.int rng 6 in
    let s = Router.shard_of_key ~shards:m key in
    let s2 = Router.shard_of_key ~shards:(2 * m) key in
    Alcotest.(check bool)
      (Printf.sprintf "doubling %d -> %d splits, never shuffles" m (2 * m))
      true
      (s2 = s || s2 = s + m)
  done

let test_router_seed_stable () =
  (* Placement is a function of the key alone: plans built under different
     run seeds route every client identically. *)
  let profile = Population.profile ~clients:200 ~rate_per_client:3.0 () in
  let route ~key = Router.shard_of_key ~shards:4 key in
  let plan_seed seed =
    Population.plan ~seed profile ~route ~shards:4 ~horizon_s:0.5
  in
  let placement plan =
    Array.to_list plan.Population.scripts
    |> List.concat_map (fun script ->
           Array.to_list script
           |> List.map (fun a -> (a.Population.client, route ~key:a.Population.key)))
    |> List.sort_uniq compare
  in
  let p0 = placement (plan_seed 0) and p9 = placement (plan_seed 9) in
  List.iter
    (fun (client, shard) ->
      match List.assoc_opt client p9 with
      | None -> () (* client never drawn under seed 9 *)
      | Some shard9 ->
        Alcotest.(check int)
          (Printf.sprintf "client %d routes identically across seeds" client)
          shard shard9)
    p0

(* ---- Population plan ---- *)

let test_plan_shard_invariant () =
  (* The global arrival schedule is a pure function of (seed, profile,
     horizon): re-planning with a different shard count re-partitions the
     identical single-shard requests. *)
  let profile =
    Population.profile ~clients:500 ~rate_per_client:2.0 ~diurnal_amp:0.3
      ~diurnal_period_s:1.0
      ~flashes:[ { Population.flash_at_s = 0.2; flash_dur_s = 0.1; flash_mult = 2.0 } ]
      ()
  in
  let arrivals shards =
    let plan =
      Population.plan ~seed:3 profile
        ~route:(fun ~key -> Router.shard_of_key ~shards key)
        ~shards ~horizon_s:0.6
    in
    Array.to_list plan.Population.scripts
    |> List.concat_map Array.to_list
    |> List.map (fun a ->
           (a.Population.req, Time.to_ns a.Population.at, a.Population.client))
    |> List.sort compare
  in
  Alcotest.(check (list (triple int int int)))
    "1-shard and 8-shard plans carry the same schedule" (arrivals 1)
    (arrivals 8)

let test_plan_deterministic () =
  let profile =
    Population.profile ~clients:1_000_000 ~rate_per_client:0.001
      ~cross_fraction:0.2 ()
  in
  let route ~key = Router.shard_of_key ~shards:4 key in
  let p1 = Population.plan ~seed:5 profile ~route ~shards:4 ~horizon_s:1.0 in
  let p2 = Population.plan ~seed:5 profile ~route ~shards:4 ~horizon_s:1.0 in
  Alcotest.(check int) "same total" p1.Population.total p2.Population.total;
  Alcotest.(check int) "same cross" p1.Population.cross p2.Population.cross;
  Alcotest.(check bool) "some arrivals" true (p1.Population.total > 0);
  Alcotest.(check bool) "some cross requests" true (p1.Population.cross > 0);
  Array.iteri
    (fun s script ->
      let other = p2.Population.scripts.(s) in
      Alcotest.(check int) "script lengths" (Array.length script)
        (Array.length other))
    p1.Population.scripts

(* ---- 1-shard ≡ legacy single-group scripted run, per stack ---- *)

let small_profile =
  Population.profile ~clients:2_000 ~rate_per_client:0.25 ~size:512 ()

let test_one_shard_equivalence kind () =
  let config =
    Shard.config ~kind ~shards:1 ~n:3 ~profile:small_profile ~warmup_s:0.2
      ~measure_s:0.5 ~seed:2 ()
  in
  let plan = Shard.plan config in
  let obs_sharded = Obs.create ~max_events:0 () in
  let sharded = Shard.run ~obs:obs_sharded config in
  let obs_direct = Obs.create ~max_events:0 () in
  let _resolved, _window_lats, direct =
    Experiment.run_scripted ~obs:obs_direct ~kind ~n:3 ~seed:2 ~warmup_s:0.2
      ~measure_s:0.5
      ~arrivals:plan.Population.scripts.(0)
      ~loop:Population.Open ()
  in
  let per = sharded.Shard.per_shard.(0) in
  Alcotest.(check int) "events identical" direct.Experiment.events_executed
    per.Experiment.events_executed;
  Alcotest.(check (float 0.0)) "latency identical"
    direct.Experiment.early_latency_ms.Stats.mean
    per.Experiment.early_latency_ms.Stats.mean;
  Alcotest.(check (float 0.0)) "throughput identical"
    direct.Experiment.throughput per.Experiment.throughput;
  Alcotest.(check string) "metrics bytes identical" (dump obs_direct)
    (dump obs_sharded);
  Alcotest.(check bool) "window had traffic" true
    (per.Experiment.throughput > 0.0)

(* ---- Batched hops: byte-identical to the unbatched wire ---- *)

let batched_result ~kind ~batched =
  let params = { (Params.default ~n:3) with Params.batched_hops = batched } in
  let obs = Obs.create () in
  let config =
    Experiment.config ~kind ~n:3 ~offered_load:700.0 ~size:1024 ~warmup_s:0.2
      ~measure_s:0.5 ~seed:4 ~params ~arrival:Generator.Poisson ()
  in
  let r = Experiment.run ~obs config in
  (r, dump obs, dump_spans obs)

let test_batched_equivalence kind () =
  let r1, m1, s1 = batched_result ~kind ~batched:true in
  let r0, m0, s0 = batched_result ~kind ~batched:false in
  Alcotest.(check int) "events_executed identical" r0.Experiment.events_executed
    r1.Experiment.events_executed;
  Alcotest.(check (float 0.0)) "latency identical"
    r0.Experiment.early_latency_ms.Stats.mean
    r1.Experiment.early_latency_ms.Stats.mean;
  Alcotest.(check (float 0.0)) "throughput identical" r0.Experiment.throughput
    r1.Experiment.throughput;
  Alcotest.(check string) "metrics bytes identical" m0 m1;
  Alcotest.(check string) "span bytes identical" s0 s1

let test_batched_equivalence_sharded () =
  let run batched =
    let params = { (Params.default ~n:3) with Params.batched_hops = batched } in
    let profile =
      Population.profile ~clients:3_000 ~rate_per_client:0.3 ~cross_fraction:0.1
        ()
    in
    let config =
      Shard.config ~kind:Replica.Modular ~shards:2 ~n:3 ~profile ~warmup_s:0.2
        ~measure_s:0.4 ~seed:1 ~params ()
    in
    let obs = Obs.create ~max_events:0 () in
    let r = Shard.run ~obs config in
    (r, dump obs)
  in
  let r1, m1 = run true in
  let r0, m0 = run false in
  Alcotest.(check int) "events identical" r0.Shard.events_executed
    r1.Shard.events_executed;
  Alcotest.(check (float 0.0)) "latency identical" r0.Shard.latency_ms.Stats.mean
    r1.Shard.latency_ms.Stats.mean;
  Alcotest.(check (float 0.0)) "cross latency identical"
    r0.Shard.cross_latency_ms.Stats.mean r1.Shard.cross_latency_ms.Stats.mean;
  Alcotest.(check string) "metrics bytes identical" m0 m1

(* ---- Jobs-equivalence of sharded runs (the PR-5 contract) ---- *)

let test_shard_jobs_equivalence () =
  let profile =
    Population.profile ~clients:5_000 ~rate_per_client:0.24 ~cross_fraction:0.1
      ~diurnal_amp:0.25 ~diurnal_period_s:0.7 ()
  in
  let config =
    Shard.config ~kind:Replica.Modular ~shards:4 ~n:3 ~profile ~warmup_s:0.2
      ~measure_s:0.5 ~seed:0 ()
  in
  let run jobs =
    let obs = Obs.create () in
    let r = Shard.run ~jobs ~obs config in
    (r, dump obs, dump_spans obs)
  in
  let r1, m1, s1 = run 1 in
  let r4, m4, s4 = run 4 in
  Alcotest.(check int) "events identical" r1.Shard.events_executed
    r4.Shard.events_executed;
  Alcotest.(check (float 0.0)) "latency identical" r1.Shard.latency_ms.Stats.mean
    r4.Shard.latency_ms.Stats.mean;
  Alcotest.(check (float 0.0)) "cross latency identical"
    r1.Shard.cross_latency_ms.Stats.mean r4.Shard.cross_latency_ms.Stats.mean;
  Alcotest.(check (float 0.0)) "throughput identical" r1.Shard.throughput
    r4.Shard.throughput;
  Alcotest.(check string) "metrics bytes identical" m1 m4;
  Alcotest.(check string) "span bytes identical" s1 s4

let test_scale_jobs_equivalence () =
  let run jobs =
    let obs = Obs.create ~max_events:0 () in
    let rows =
      Scale.run ~kinds:[ Replica.Modular ] ~shard_counts:[ 1; 2 ]
        ~clients:[ 800 ] ~per_shard_load:250.0 ~warmup_s:0.15 ~measure_s:0.35
        ~jobs ~obs ()
    in
    (List.map (fun r -> Jsonl.to_string (Scale.row_json r)) rows, dump obs)
  in
  let rows1, m1 = run 1 in
  let rows2, m2 = run 2 in
  Alcotest.(check (list string)) "scale JSONL rows identical" rows1 rows2;
  Alcotest.(check string) "scale metrics identical" m1 m2

(* ---- Closed loop ---- *)

let test_closed_loop () =
  let profile =
    Population.profile ~clients:60 ~rate_per_client:0.0 ~size:256
      ~loop:(Population.Closed { think_s = 0.05 }) ()
  in
  let config =
    Shard.config ~kind:Replica.Modular ~shards:2 ~n:3 ~profile ~warmup_s:0.2
      ~measure_s:0.5 ~seed:6 ()
  in
  let r1 = Shard.run config in
  let r2 = Shard.run config in
  (* The loop actually closes: more requests complete than the population
     size, because delivered responses re-offer after the think time. *)
  Alcotest.(check bool) "requests completed in window" true
    (r1.Shard.latency_ms.Stats.count > 0);
  Alcotest.(check bool) "clients re-offer after think time" true
    (r1.Shard.throughput *. 0.5 > 0.0);
  Alcotest.(check int) "deterministic events" r1.Shard.events_executed
    r2.Shard.events_executed;
  Alcotest.(check (float 0.0)) "deterministic latency"
    r1.Shard.latency_ms.Stats.mean r2.Shard.latency_ms.Stats.mean

let () =
  Alcotest.run "shard"
    [
      ( "queue",
        [ Alcotest.test_case "reserved-tickets" `Quick test_reserved_tickets ] );
      ( "router",
        [
          Alcotest.test_case "basics" `Quick test_router_basics;
          Alcotest.test_case "pow2-monotone" `Quick test_router_pow2_monotone;
          Alcotest.test_case "seed-stable" `Quick test_router_seed_stable;
        ] );
      ( "population",
        [
          Alcotest.test_case "shard-invariant" `Quick test_plan_shard_invariant;
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
        ] );
      ( "one-shard",
        [
          Alcotest.test_case "modular" `Quick
            (test_one_shard_equivalence Replica.Modular);
          Alcotest.test_case "indirect" `Quick
            (test_one_shard_equivalence Replica.Indirect);
          Alcotest.test_case "monolithic" `Quick
            (test_one_shard_equivalence Replica.Monolithic);
        ] );
      ( "batched-hops",
        [
          Alcotest.test_case "modular" `Quick
            (test_batched_equivalence Replica.Modular);
          Alcotest.test_case "indirect" `Quick
            (test_batched_equivalence Replica.Indirect);
          Alcotest.test_case "monolithic" `Quick
            (test_batched_equivalence Replica.Monolithic);
          Alcotest.test_case "sharded" `Quick test_batched_equivalence_sharded;
        ] );
      ( "jobs-equivalence",
        [
          Alcotest.test_case "sharded-run" `Quick test_shard_jobs_equivalence;
          Alcotest.test_case "scale-study" `Quick test_scale_jobs_equivalence;
        ] );
      ("closed-loop", [ Alcotest.test_case "think-time" `Quick test_closed_loop ]);
    ]
