examples/replicated_queue.ml: Fmt Group Hashtbl List Params Pid Printf Replica Repro_core Repro_net Repro_sim Rng Smr String Time
