examples/quickstart.mli:
