examples/bank.mli:
