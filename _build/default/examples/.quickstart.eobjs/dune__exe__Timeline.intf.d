examples/timeline.mli:
