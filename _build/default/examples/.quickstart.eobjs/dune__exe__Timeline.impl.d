examples/timeline.ml: App_msg Engine Fmt Group Logs Net_stats Params Pid Replica Repro_core Repro_net Repro_sim Time
