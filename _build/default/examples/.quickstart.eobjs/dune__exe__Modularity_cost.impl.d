examples/modularity_cost.ml: Experiment Fmt Replica Repro_analysis Repro_core Repro_workload Stats
