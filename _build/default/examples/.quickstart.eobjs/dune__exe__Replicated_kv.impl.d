examples/replicated_kv.ml: App_msg Array Fmt Group Hashtbl List Params Pid Printf Replica Repro_core Repro_net Repro_sim Rng Stdlib String Time
