examples/crash_demo.ml: App_msg Array Engine Fmt Group Heartbeat_fd List Log Params Pid Replica Repro_core Repro_fd Repro_net Repro_sim Sys Time
