examples/crash_demo.mli:
