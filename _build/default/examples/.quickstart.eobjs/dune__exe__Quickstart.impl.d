examples/quickstart.ml: App_msg Engine Fmt Group List Net_stats Params Pid Replica Repro_core Repro_net Repro_sim String Time
