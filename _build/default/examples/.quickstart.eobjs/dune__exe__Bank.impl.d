examples/bank.ml: App_msg Array Fmt Group Hashtbl List Params Pid Replica Repro_core Repro_net Repro_sim Rng Time
