examples/modularity_cost.mli:
