(* Replicated work queue via the Smr façade: producers enqueue jobs from
   different processes, every replica sees the identical queue, so any
   replica can answer "what is the next job?" consistently — the classic
   leader-less dispatch pattern over atomic broadcast.

   Unlike replicated_kv.ml (which wires the command table by hand), this
   example uses the library's {!Repro_core.Smr} module directly.

   Run with: dune exec examples/replicated_queue.exe *)

open Repro_sim
open Repro_net
open Repro_core

type job = { name : string; cost : int }
type queue = { mutable jobs : job list; mutable dispatched : job list }

let apply q = function
  | `Enqueue job -> q.jobs <- q.jobs @ [ job ]
  | `Dispatch -> (
    match q.jobs with
    | [] -> ()
    | job :: rest ->
      q.jobs <- rest;
      q.dispatched <- job :: q.dispatched)

let fingerprint q = Hashtbl.hash (q.jobs, q.dispatched)

let () =
  let n = 3 in
  let group = Group.create ~kind:Replica.Monolithic ~params:(Params.default ~n) () in
  let smr =
    Smr.create group
      ~init:(fun _ -> { jobs = []; dispatched = [] })
      ~apply
      ~command_bytes:(function
        | `Enqueue job -> 16 + String.length job.name
        | `Dispatch -> 8)
      ()
  in

  (* Producers on p1 and p2; a dispatcher on p3 racing them. *)
  let rng = Rng.create ~seed:5 in
  for i = 1 to 12 do
    let origin = Rng.int rng 2 in
    Smr.submit smr origin
      (`Enqueue { name = Printf.sprintf "job-%d-from-%a" i (fun () -> Fmt.str "%a" Pid.pp) origin; cost = 1 + Rng.int rng 9 });
    if i mod 2 = 0 then Smr.submit smr 2 `Dispatch
  done;
  ignore (Group.run_until_quiescent group ~limit:(Time.span_s 10) ());

  Fmt.pr "submitted %d commands@." (Smr.submitted smr);
  List.iter
    (fun pid ->
      let q = Smr.state smr pid in
      Fmt.pr "  %a: %2d applied, %d dispatched, %d queued (next: %s)@." Pid.pp pid
        (Smr.applied smr pid)
        (List.length q.dispatched) (List.length q.jobs)
        (match q.jobs with j :: _ -> j.name | [] -> "-"))
    (Pid.all ~n);
  assert (Smr.consistent smr ~fingerprint);
  Fmt.pr "replicas agree on the queue contents and dispatch order.@."
