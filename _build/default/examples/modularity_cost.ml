(* The paper in one screen: run the same workload on the modular and the
   monolithic stack and print the cost of modularity — messages, bytes,
   latency, throughput — next to the analytical predictions of §5.2.

   Run with: dune exec examples/modularity_cost.exe *)

open Repro_core
open Repro_workload

let () =
  let n = 3 and size = 8192 and load = 3000.0 in
  Fmt.pr "workload: n=%d, %d-byte messages, %.0f msgs/s offered (saturating)@.@." n size
    load;

  let run kind =
    Experiment.run
      (Experiment.config ~kind ~n ~offered_load:load ~size ~warmup_s:1.0 ~measure_s:4.0 ())
  in
  let m = run Replica.Modular in
  let mono = run Replica.Monolithic in

  let row label f =
    Fmt.pr "%-28s %14s %14s@." label (f m) (f mono)
  in
  Fmt.pr "%-28s %14s %14s@." "" "modular" "monolithic";
  Fmt.pr "%-28s %14s %14s@." "" "-------" "----------";
  row "early latency (ms)" (fun r ->
      Fmt.str "%.2f ±%.2f" r.Experiment.early_latency_ms.Stats.mean
        r.Experiment.early_latency_ms.Stats.ci95);
  row "throughput (msgs/s)" (fun r -> Fmt.str "%.0f" r.Experiment.throughput);
  row "mean batch M" (fun r -> Fmt.str "%.2f" r.Experiment.mean_batch);
  row "messages / consensus" (fun r -> Fmt.str "%.2f" r.Experiment.msgs_per_instance);
  row "payload bytes / consensus" (fun r -> Fmt.str "%.0f" r.Experiment.bytes_per_instance);
  row "CPU utilization" (fun r -> Fmt.str "%.0f%%" (100.0 *. r.Experiment.cpu_utilization));
  row "module crossings / msg" (fun r ->
      Fmt.str "%.1f" r.Experiment.boundary_crossings_per_msg);

  Fmt.pr "@.-- the cost of modularity --@.";
  Fmt.pr "latency overhead:    %+.0f%%@."
    (100.0
    *. ((m.Experiment.early_latency_ms.Stats.mean
        /. mono.Experiment.early_latency_ms.Stats.mean)
       -. 1.0));
  Fmt.pr "throughput loss:     %+.0f%%@."
    (100.0 *. ((mono.Experiment.throughput /. m.Experiment.throughput) -. 1.0));
  Fmt.pr "message overhead:    %+.0f%%@."
    (100.0
    *. ((m.Experiment.msgs_per_instance /. mono.Experiment.msgs_per_instance) -. 1.0));
  Fmt.pr "byte overhead:       %+.0f%%  (analytical (n-1)/(n+1) = %.0f%%)@."
    (100.0
    *. ((m.Experiment.bytes_per_instance /. mono.Experiment.bytes_per_instance) -. 1.0))
    (100.0 *. Repro_analysis.Model.data_overhead ~n);
  Fmt.pr "@.analytical messages per consensus at M=4 (§5.2.1): modular %d, monolithic %d@."
    (Repro_analysis.Model.modular_messages ~n ~m:4)
    (Repro_analysis.Model.monolithic_messages ~n)
