(* Quickstart: build a 3-process group, atomically broadcast a few
   messages from different processes, and observe that every process
   adelivers them in the same total order.

   Run with: dune exec examples/quickstart.exe *)

open Repro_sim
open Repro_net
open Repro_core

let () =
  (* A group of n = 3 simulated processes running the modular stack
     (ABcast / Consensus / RBcast composed over the framework). *)
  let params = Params.default ~n:3 in
  let group = Group.create ~kind:Replica.Modular ~params () in

  (* Watch every adelivery as it happens, with its virtual timestamp. *)
  Group.on_delivery group (fun pid m ->
      Fmt.pr "  %a adeliver %a at %a@." Pid.pp pid App_msg.pp m Time.pp
        (Engine.now (Group.engine group)));

  (* Each process abcasts two messages. Flow control admits them and the
     stack diffuses + orders them through consensus. *)
  Fmt.pr "abcasting 2 messages from each of p1, p2, p3...@.";
  List.iter
    (fun p ->
      Group.abcast group p ~size:512;
      Group.abcast group p ~size:1024)
    (Pid.all ~n:3);

  (* Run the simulation until all protocol activity finishes. *)
  ignore (Group.run_until_quiescent group ~limit:(Time.span_s 10) ());

  (* The point of atomic broadcast: identical delivery order everywhere. *)
  let order p =
    Group.deliveries group p |> List.map (Fmt.str "%a" App_msg.pp_id) |> String.concat " "
  in
  Fmt.pr "@.delivery order at p1: %s@." (order 0);
  Fmt.pr "delivery order at p2: %s@." (order 1);
  Fmt.pr "delivery order at p3: %s@." (order 2);
  assert (Group.deliveries group 0 = Group.deliveries group 1);
  assert (Group.deliveries group 1 = Group.deliveries group 2);
  Fmt.pr "@.total order verified: all three processes delivered identically.@.";

  (* A peek at the cost: wire traffic of the whole run. *)
  Fmt.pr "network traffic: %a@." Net_stats.pp_snapshot
    (Net_stats.snapshot (Group.stats group))
