(* Replicated bank: concurrent transfers between accounts, replicated by
   atomic broadcast. Two invariants demonstrate why total order matters:

   - conservation: the sum of all balances never changes, on any replica;
   - consistency: all replicas end with identical balances even though
     transfers from different processes race (a transfer is rejected when
     the source balance is insufficient AT ITS POSITION in the total
     order, so replicas must evaluate rejections identically).

   Run with: dune exec examples/bank.exe *)

open Repro_sim
open Repro_net
open Repro_core

module Bank = struct
  type t = { balances : int array; mutable applied : int; mutable rejected : int }

  let create ~accounts ~initial =
    { balances = Array.make accounts initial; applied = 0; rejected = 0 }

  let transfer t ~src ~dst ~amount =
    if t.balances.(src) >= amount then begin
      t.balances.(src) <- t.balances.(src) - amount;
      t.balances.(dst) <- t.balances.(dst) + amount;
      t.applied <- t.applied + 1
    end
    else t.rejected <- t.rejected + 1

  let total t = Array.fold_left ( + ) 0 t.balances
end

type transfer = { src : int; dst : int; amount : int }

let () =
  let n = 3 and accounts = 8 and initial = 1000 in
  let params = Params.default ~n in
  let group = Group.create ~kind:Replica.Modular ~params () in

  let ledger : (App_msg.id, transfer) Hashtbl.t = Hashtbl.create 64 in
  let banks = Array.init n (fun _ -> Bank.create ~accounts ~initial) in

  Group.on_delivery group (fun pid m ->
      let { src; dst; amount } = Hashtbl.find ledger m.App_msg.id in
      Bank.transfer banks.(pid) ~src ~dst ~amount);

  (* Every process issues aggressive random transfers; many will contend
     for the same source accounts. *)
  let rng = Rng.create ~seed:7 in
  let next_seq = Array.make n 0 in
  let submit origin t =
    let seq = next_seq.(origin) in
    next_seq.(origin) <- seq + 1;
    Hashtbl.replace ledger { App_msg.origin; seq } t;
    Group.abcast group origin ~size:64
  in
  let issued = ref 0 in
  for _ = 1 to 120 do
    List.iter
      (fun p ->
        let src = Rng.int rng accounts in
        let dst = (src + 1 + Rng.int rng (accounts - 1)) mod accounts in
        submit p { src; dst; amount = 50 + Rng.int rng 400 };
        incr issued)
      (Pid.all ~n)
  done;

  ignore (Group.run_until_quiescent group ~limit:(Time.span_s 30) ());

  Fmt.pr "%d transfers issued across %d processes@." !issued n;
  Array.iteri
    (fun i b ->
      Fmt.pr "  replica %a: applied=%d rejected=%d total=%d balances=[%a]@." Pid.pp i
        b.Bank.applied b.Bank.rejected (Bank.total b)
        Fmt.(array ~sep:(any " ") int)
        b.Bank.balances)
    banks;

  (* Invariants. *)
  Array.iter
    (fun b ->
      assert (Bank.total b = accounts * initial);
      assert (b.Bank.balances = banks.(0).Bank.balances);
      assert (b.Bank.applied = banks.(0).Bank.applied))
    banks;
  Fmt.pr "invariants hold: money conserved, replicas identical.@."
