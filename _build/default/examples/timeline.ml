(* Timeline: watch one abcast message travel through the modular stack.

   Installs a Logs reporter that timestamps every protocol debug line with
   the simulation's virtual clock, then abcasts a single message from a
   non-coordinator process — the full §3.3 path becomes visible: diffusion,
   proposal, acks, DECISION tag, adelivery. Then the same message on the
   monolithic stack (§4): To_coord, combined proposal, piggybacked acks.

   Run with: dune exec examples/timeline.exe *)

open Repro_sim
open Repro_net
open Repro_core

let with_virtual_clock_reporter engine f =
  let report src _level ~over k msgf =
    let k _ = over (); k () in
    msgf (fun ?header:_ ?tags:_ fmt ->
        Fmt.kpf k Fmt.stdout
          ("  [%a] %-16s " ^^ fmt ^^ "@.")
          Time.pp (Engine.now engine) (Logs.Src.name src))
  in
  Logs.set_reporter { Logs.report };
  Logs.set_level ~all:true (Some Logs.Debug);
  f ();
  Logs.set_level None;
  Logs.set_reporter Logs.nop_reporter

let trace kind name =
  let params = Params.default ~n:3 in
  let group = Group.create ~kind ~params () in
  Fmt.pr "@.=== %s stack: p3 abcasts one 1 KiB message ===@." name;
  Group.on_delivery group (fun pid m ->
      Fmt.pr "  [%a] %-16s %a adeliver %a@." Time.pp
        (Engine.now (Group.engine group))
        "application" Pid.pp pid App_msg.pp_id m.App_msg.id);
  with_virtual_clock_reporter (Group.engine group) (fun () ->
      Group.abcast group 2 ~size:1024;
      ignore (Group.run_until_quiescent group ~limit:(Time.span_s 5) ()));
  let s = Net_stats.snapshot (Group.stats group) in
  Fmt.pr "  total: %a@." Net_stats.pp_snapshot s

let () =
  Fmt.pr "One message, two stacks: the protocol steps at virtual time.@.";
  trace Replica.Modular "modular";
  trace Replica.Monolithic "monolithic"
