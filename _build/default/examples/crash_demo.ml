(* Crash demo: the coordinator dies mid-run. The heartbeat failure
   detector suspects it, consensus rotates to a new coordinator (round 2),
   and atomic broadcast keeps delivering — in the same total order at both
   survivors. This exercises the paper's "correctness in all runs"
   requirement for the optimized stacks (§3, §4).

   Run with: dune exec examples/crash_demo.exe -- [modular|monolithic] *)

open Repro_sim
open Repro_net
open Repro_fd
open Repro_core

let kind =
  if Array.exists (fun a -> a = "monolithic") Sys.argv then Replica.Monolithic
  else Replica.Modular

(* Pass --debug to watch rounds, proposals and decisions as they happen. *)
let () = if Array.exists (fun a -> a = "--debug") Sys.argv then Log.setup ()

let kind_name = function
  | Replica.Modular -> "modular"
  | Replica.Monolithic -> "monolithic"
  | Replica.Indirect -> "indirect"

let () =
  let n = 3 in
  let params = Params.default ~n in
  (* Use the live heartbeat failure detector: ~10 ms heartbeats, 50 ms
     suspicion timeout. *)
  let group =
    Group.create ~kind ~params ~fd_mode:(`Heartbeat Heartbeat_fd.default_config) ()
  in
  let engine = Group.engine group in

  Group.on_delivery group (fun pid m ->
      if pid = 1 then
        Fmt.pr "  [%a] p2 adeliver %a@." Time.pp (Engine.now engine) App_msg.pp_id
          m.App_msg.id);

  Fmt.pr "running the %s stack with a live heartbeat failure detector@.@."
    (kind_name kind);

  (* Phase 1: healthy traffic from everyone. *)
  Fmt.pr "phase 1: all three processes abcast@.";
  List.iter (fun p -> Group.abcast group p ~size:256) (Pid.all ~n);
  Group.run_for group (Time.span_ms 100);

  (* Phase 2: crash p1 — the round-1 coordinator of every consensus
     instance in both stacks. *)
  Fmt.pr "@.phase 2: CRASH p1 (the good-run coordinator) at %a@." Time.pp
    (Engine.now engine);
  Group.crash group 0;

  (* Survivors keep broadcasting; nothing can be ordered until the failure
     detector suspects p1 and consensus moves to round 2. *)
  Group.abcast group 1 ~size:256;
  Group.abcast group 2 ~size:256;
  Group.run_for group (Time.span_s 2);

  Fmt.pr "@.phase 3: more traffic after recovery@.";
  Group.abcast group 1 ~size:256;
  Group.abcast group 2 ~size:256;
  Group.run_for group (Time.span_s 2);

  (* Survivors must agree on one sequence that contains all their own
     messages. *)
  let l1 = Group.deliveries group 1 and l2 = Group.deliveries group 2 in
  Fmt.pr "@.p2 delivered %d messages, p3 delivered %d@." (List.length l1)
    (List.length l2);
  assert (l1 = l2);
  let expect = [ (1, 0); (2, 0); (1, 1); (2, 1) ] in
  List.iter
    (fun (origin, seq) -> assert (List.mem { App_msg.origin; seq } l1))
    expect;
  Fmt.pr "survivors delivered identically, including all post-crash messages.@.";
  Fmt.pr "(messages from the crashed p1 that were ordered before the crash: %d)@."
    (List.length (List.filter (fun id -> id.App_msg.origin = 0) l1))
