(* Replicated key-value store: state-machine replication over atomic
   broadcast — the paper's motivating use case (§1: "atomic broadcast ...
   allows to maintain replicas consistency by ensuring a total order of
   message delivery").

   Each process hosts a KV replica. Writes are abcast; every replica
   applies the identical delivery sequence, so the replicas stay
   byte-for-byte consistent without any further coordination.

   Run with: dune exec examples/replicated_kv.exe *)

open Repro_sim
open Repro_net
open Repro_core

(* The replicated state machine: a string -> int map plus an operation
   counter. Commands are encoded in message identities: we keep a local
   table from message id to the command it carries, as a real system would
   carry the command in the payload. *)
module Store = struct
  module Map = Stdlib.Map.Make (String)

  type t = { mutable data : int Map.t; mutable version : int }

  let create () = { data = Map.empty; version = 0 }

  let apply t ~key ~value =
    t.data <- Map.add key value t.data;
    t.version <- t.version + 1

  let get t key = Map.find_opt key t.data

  let fingerprint t =
    Map.fold (fun k v acc -> Hashtbl.hash (acc, k, v)) t.data t.version
end

type command = { key : string; value : int }

let () =
  let n = 5 in
  let params = Params.default ~n in
  let group = Group.create ~kind:Replica.Monolithic ~params () in

  (* The command log: message identity -> command. In a deployment the
     command would be the message payload; the simulation models payloads
     by size only, so we look commands up on delivery. *)
  let commands : (App_msg.id, command) Hashtbl.t = Hashtbl.create 64 in
  let stores = Array.init n (fun _ -> Store.create ()) in

  Group.on_delivery group (fun pid m ->
      match Hashtbl.find_opt commands m.App_msg.id with
      | Some { key; value } -> Store.apply stores.(pid) ~key ~value
      | None -> assert false);

  (* Issue writes from every replica: each process writes its own counters
     and some shared keys, creating write-write conflicts that only a
     total order resolves consistently. *)
  let rng = Rng.create ~seed:2024 in
  let next_seq = Array.make n 0 in
  let submit origin ~key ~value =
    let seq = next_seq.(origin) in
    next_seq.(origin) <- seq + 1;
    (* The replica assigns ids (origin, seq) in admission order, matching
       our local numbering because offers from one process are FIFO. *)
    Hashtbl.replace commands { App_msg.origin; seq } { key; value };
    Group.abcast group origin ~size:(32 + String.length key)
  in
  for round = 0 to 39 do
    List.iter
      (fun p ->
        submit p ~key:(Printf.sprintf "own-%d" p) ~value:round;
        if Rng.bool rng then submit p ~key:"shared" ~value:((100 * p) + round))
      (Pid.all ~n)
  done;

  ignore (Group.run_until_quiescent group ~limit:(Time.span_s 30) ());

  (* Every replica applied every write, in the same order. *)
  let ops = stores.(0).Store.version in
  Fmt.pr "applied %d writes on %d replicas@." ops n;
  Array.iteri
    (fun i s ->
      Fmt.pr "  replica %a: version=%d shared=%a fingerprint=%08x@." Pid.pp i
        s.Store.version
        Fmt.(option ~none:(any "-") int)
        (Store.get s "shared") (Store.fingerprint s land 0xffffffff))
    stores;
  let f0 = Store.fingerprint stores.(0) in
  Array.iter (fun s -> assert (Store.fingerprint s = f0)) stores;
  Fmt.pr "replicas converged: identical state everywhere.@."
