let check_n n = if n < 1 then invalid_arg "Model: n must be >= 1"

let rbcast_messages ~n =
  check_n n;
  (n - 1) * ((n + 1) / 2)

let rbcast_classic_messages ~n =
  check_n n;
  n * (n - 1)

let modular_messages ~n ~m =
  check_n n;
  (n - 1) * (m + 2 + ((n + 1) / 2))

let monolithic_messages ~n =
  check_n n;
  2 * (n - 1)

let modular_bytes ~n ~m ~l =
  check_n n;
  2 * (n - 1) * m * l

let monolithic_bytes ~n ~m ~l =
  check_n n;
  float_of_int ((n - 1) * m * l) *. (1.0 +. (1.0 /. float_of_int n))

let data_overhead ~n =
  check_n n;
  float_of_int (n - 1) /. float_of_int (n + 1)

let modular_layer_messages ~n ~m =
  check_n n;
  [
    ("abcast", m * (n - 1));
    ("consensus", 2 * (n - 1));
    ("rbcast", rbcast_messages ~n);
  ]
