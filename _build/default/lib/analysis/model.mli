(** Closed-form analytical evaluation (§5.2).

    The paper derives, per consensus execution that adelivers M abcast
    messages of l bytes in a system of n processes:

    - messages sent: modular (n-1)·(M + 2 + ⌊(n+1)/2⌋), monolithic 2·(n-1);
    - payload bytes: modular 2·(n-1)·M·l, monolithic (n-1)·(1 + 1/n)·M·l;
    - hence a modular data overhead of (n-1)/(n+1): 50% at n = 3, 75% at
      n = 7.

    The assumptions: steady state (instance k+1 starts as k ends, so §4.1
    piggybacking always applies), and constant-size messages (acks, tags)
    negligible in the byte counts. *)

val modular_messages : n:int -> m:int -> int
(** Wire messages per consensus in the modular stack: M diffusions to all,
    one proposal to all, n-1 acks, and the majority-optimized reliable
    broadcast of the decision. *)

val monolithic_messages : n:int -> int
(** Wire messages per consensus in the monolithic stack: one combined
    proposal+decision to all, n-1 acks carrying the diffusions. *)

val rbcast_messages : n:int -> int
(** Messages of one majority-optimized reliable broadcast:
    (n-1)·⌊(n+1)/2⌋. *)

val rbcast_classic_messages : n:int -> int
(** Messages of one classic reliable broadcast: n·(n-1) ("n²" in §3.1's
    approximation). *)

val modular_bytes : n:int -> m:int -> l:int -> int
(** Payload bytes per consensus in the modular stack: Data_mod = 2(n-1)Ml. *)

val monolithic_bytes : n:int -> m:int -> l:int -> float
(** Payload bytes per consensus in the monolithic stack:
    Data_mono = (n-1)(1 + 1/n)Ml. *)

val data_overhead : n:int -> float
(** (Data_mod - Data_mono) / Data_mono = (n-1)/(n+1). *)

val modular_layer_messages : n:int -> m:int -> (string * int) list
(** {!modular_messages} split by the layer that sends each message, keyed
    by the observability layer names ([Repro_obs.Obs.layer_name]):
    [("abcast", M(n-1))] diffusions, [("consensus", 2(n-1))] proposal and
    acks, [("rbcast", (n-1)⌊(n+1)/2⌋)] decision broadcast. The counts sum
    to {!modular_messages}, and match the [net.msgs.<layer>] counters of
    an instrumented run divided by the number of consensus instances. *)
