lib/analysis/model.ml:
