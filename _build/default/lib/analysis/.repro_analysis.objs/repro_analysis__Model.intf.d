lib/analysis/model.mli:
