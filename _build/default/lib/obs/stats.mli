(** Sample statistics for the performance metrics.

    The paper reports means with 95% confidence intervals (§5.1); this
    module computes them, plus the quantiles used in extended reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
  ci95 : float;  (** Half-width of the 95% confidence interval of the mean. *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Summary of a sample. An empty sample yields all-zero fields. *)

val mean : float list -> float
(** Arithmetic mean; 0 on empty input. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1], by linear interpolation.
    The array must be sorted ascending. @raise Invalid_argument on empty. *)

val pp_summary : summary Fmt.t
(** Prints [mean ± ci95 (p50=…, p95=…, n=…)]. *)
