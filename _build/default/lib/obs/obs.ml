open Repro_sim

type layer = [ `Abcast | `Consensus | `Rbcast | `Net | `App ]

let layer_name = function
  | `Abcast -> "abcast"
  | `Consensus -> "consensus"
  | `Rbcast -> "rbcast"
  | `Net -> "net"
  | `App -> "app"

let all_layers : layer list = [ `Abcast; `Consensus; `Rbcast; `Net; `App ]

type event = { at : Time.t; pid : int; layer : layer; phase : string; detail : string }

type t = {
  enabled : bool;
  mutable now : unit -> Time.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  trace : event Trace.t;
  max_events : int;
  mutable dropped_events : int;
}

let make ~enabled ~max_events =
  let now = ref (fun () -> Time.zero) in
  {
    enabled;
    now = (fun () -> !now ());
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    trace = Trace.create_with_clock (fun () -> !now ());
    max_events;
    dropped_events = 0;
  }

(* The shared no-op sink: disabled forever, so every instrumentation call
   reduces to one branch. A single instance is safe because a disabled
   sink never mutates its tables. *)
let noop = make ~enabled:false ~max_events:0

let create ?(max_events = 2_000_000) () = make ~enabled:true ~max_events

let set_clock t now =
  if t.enabled then begin
    t.now <- now;
    Trace.set_clock t.trace now
  end

let of_engine engine =
  let t = create () in
  set_clock t (fun () -> Engine.now engine);
  t

let enabled t = t.enabled
let now t = t.now ()

(* ---- Metrics ---- *)

let incr t ?(by = 1) name =
  if t.enabled then
    match Hashtbl.find_opt t.counters name with
    | Some slot -> slot := !slot + by
    | None -> Hashtbl.add t.counters name (ref by)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some slot -> !slot | None -> 0

let counters t =
  Hashtbl.fold (fun name slot acc -> (name, !slot) :: acc) t.counters []
  |> List.sort compare

let set_gauge t name v =
  if t.enabled then
    match Hashtbl.find_opt t.gauges name with
    | Some slot -> slot := v
    | None -> Hashtbl.add t.gauges name (ref v)

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some slot -> Some !slot | None -> None

let gauges t =
  Hashtbl.fold (fun name slot acc -> (name, !slot) :: acc) t.gauges []
  |> List.sort compare

let histogram t ?edges name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.create ?edges () in
    Hashtbl.add t.histograms name h;
    h

let observe t ?edges name v = if t.enabled then Histogram.observe (histogram t ?edges name) v

let observe_span t ?edges name span =
  if t.enabled then Histogram.observe_span (histogram t ?edges name) span

let observe_since t ?edges name since =
  if t.enabled then
    let at = t.now () in
    (* A sink whose clock was never wired (or an event stamped before the
       clock advanced) must not crash the protocol it observes. *)
    if Time.(at >= since) then
      Histogram.observe_span (histogram t ?edges name) (Time.diff at since)

let histogram_summary t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> Some (Histogram.summary h)
  | None -> None

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- Trace ---- *)

let event t ~pid ~layer ~phase ?(detail = "") () =
  if t.enabled then begin
    if Trace.length t.trace < t.max_events then
      Trace.record t.trace { at = t.now (); pid; layer; phase; detail }
    else t.dropped_events <- t.dropped_events + 1
  end

let events t = Trace.events t.trace
let event_count t = Trace.length t.trace
let dropped_events t = t.dropped_events
let trace t = t.trace

let pp_event ppf e =
  Fmt.pf ppf "p%d %s/%s%s" (e.pid + 1) (layer_name e.layer) e.phase
    (if e.detail = "" then "" else " " ^ e.detail)
