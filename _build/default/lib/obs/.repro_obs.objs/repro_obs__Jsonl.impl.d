lib/obs/jsonl.ml: Buffer Char Float Fun Histogram List Obs Printf Repro_sim Stats String Time
