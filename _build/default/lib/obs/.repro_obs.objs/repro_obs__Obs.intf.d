lib/obs/obs.mli: Engine Fmt Histogram Repro_sim Stats Time Trace
