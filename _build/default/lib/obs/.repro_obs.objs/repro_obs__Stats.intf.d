lib/obs/stats.mli: Fmt
