lib/obs/obs.ml: Engine Fmt Hashtbl Histogram List Repro_sim Time Trace
