lib/obs/histogram.mli: Repro_sim Stats Time
