lib/obs/histogram.ml: Array Repro_sim Stats Time
