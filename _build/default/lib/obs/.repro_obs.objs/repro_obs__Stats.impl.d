lib/obs/stats.ml: Array Fmt List
