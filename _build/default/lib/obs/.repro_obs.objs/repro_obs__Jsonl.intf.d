lib/obs/jsonl.mli: Obs
