open Repro_core

(** Executes a {!Schedule} against a live group.

    Installing a schedule registers one engine event per step, at the
    step's timestamp relative to the installation instant; each event
    applies its fault through the network's injection primitives
    ({!Repro_net.Network.crash_after_sends}, [cut], [heal], [partition],
    [heal_all], [set_loss_rate], [set_extra_delay]) or through
    {!Group.crash} (so a crashed replica also stops heartbeating and
    discards queued offers).

    The nemesis never consumes randomness and the engine executes its
    events deterministically, so a (seed, schedule) pair reproduces a run
    bit-for-bit — the property the campaign shrinker relies on. *)

type t

val install : ?obs:Repro_obs.Obs.t -> Group.t -> Schedule.t -> t
(** Schedule every step of the plan. The plan should already be
    {!Schedule.validate}d; out-of-range pids raise at apply time
    otherwise. [obs] (default: the group would normally share its sink)
    records one [`Net]-layer [fault] trace event per applied action. *)

val applied : t -> Schedule.step list
(** Steps applied so far, oldest first (for assertions and reporting). *)
