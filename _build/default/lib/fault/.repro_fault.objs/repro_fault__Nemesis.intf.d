lib/fault/nemesis.mli: Group Repro_core Repro_obs Schedule
