lib/fault/nemesis.ml: Engine Group List Repro_core Repro_net Repro_obs Repro_sim Schedule Time
