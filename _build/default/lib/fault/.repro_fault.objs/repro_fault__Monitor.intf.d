lib/fault/monitor.mli: App_msg Fmt Group Pid Repro_core Repro_net Repro_sim Schedule Time
