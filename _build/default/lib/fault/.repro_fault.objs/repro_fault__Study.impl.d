lib/fault/study.ml: Experiment Fmt List Nemesis Params Printf Replica Repro_core Repro_fd Repro_obs Repro_sim Repro_workload Schedule Stats Time
