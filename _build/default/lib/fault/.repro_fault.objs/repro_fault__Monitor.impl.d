lib/fault/monitor.ml: App_msg Array Engine Fmt Group Hashtbl List Pid Replica Repro_core Repro_net Repro_sim Schedule Time
