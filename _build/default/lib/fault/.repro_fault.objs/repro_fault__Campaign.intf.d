lib/fault/campaign.mli: Fmt Monitor Replica Repro_core Repro_obs Repro_sim Rng Schedule Time
