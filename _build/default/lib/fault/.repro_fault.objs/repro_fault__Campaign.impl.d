lib/fault/campaign.ml: Array Experiment Float Fmt Generator Group List Monitor Nemesis Params Pid Replica Repro_core Repro_fd Repro_net Repro_obs Repro_sim Repro_workload Rng Schedule Time
