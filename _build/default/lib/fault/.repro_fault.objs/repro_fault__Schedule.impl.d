lib/fault/schedule.ml: Fmt List Pid Printf Repro_net Repro_sim Result String Time
