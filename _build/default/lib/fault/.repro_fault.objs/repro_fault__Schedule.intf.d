lib/fault/schedule.mli: Fmt Pid Repro_net Repro_sim Time
