lib/fault/study.mli: Experiment Fmt Replica Repro_core Repro_obs Repro_workload Schedule
