open Repro_sim
open Repro_core
module Obs = Repro_obs.Obs

type t = { mutable rev_applied : Schedule.step list }

let apply ~obs group (step : Schedule.step) =
  let net = Group.network group in
  (match step.Schedule.action with
  | Schedule.Crash p -> Group.crash group p
  | Schedule.Crash_after_sends (p, k) -> Repro_net.Network.crash_after_sends net p k
  | Schedule.Cut (src, dst) -> Repro_net.Network.cut net ~src ~dst
  | Schedule.Heal (src, dst) -> Repro_net.Network.heal net ~src ~dst
  | Schedule.Partition blocks -> Repro_net.Network.partition net blocks
  | Schedule.Heal_all -> Repro_net.Network.heal_all net
  | Schedule.Loss_rate p -> Repro_net.Network.set_loss_rate net p
  | Schedule.Delay_spike d -> Repro_net.Network.set_extra_delay net d);
  if Obs.enabled obs then
    Obs.event obs ~pid:0 ~layer:`Net ~phase:"fault"
      ~detail:(Schedule.action_to_string step.Schedule.action) ()

let install ?(obs = Obs.noop) group schedule =
  let t = { rev_applied = [] } in
  let engine = Group.engine group in
  let base = Engine.now engine in
  List.iter
    (fun (step : Schedule.step) ->
      ignore
        (Engine.schedule_at engine (Time.add base step.Schedule.at) (fun () ->
             apply ~obs group step;
             t.rev_applied <- step :: t.rev_applied)))
    schedule;
  t

let applied t = List.rev t.rev_applied
