open Repro_sim
open Repro_net

(** Declarative, serializable fault plans.

    A schedule is a time-ordered list of fault actions to inject into a
    running group: crashes (immediate or mid-broadcast), directed link
    cuts and heals, symmetric partitions, loss-rate windows and delay
    spikes. Timestamps are virtual-time spans relative to the instant the
    schedule is installed (see {!Nemesis.install}).

    Schedules have a line-oriented concrete syntax so they can be stored
    in files, passed to [repro nemesis --fault-plan], printed as minimal
    reproducers by the campaign shrinker, and re-run bit-for-bit:

    {v
# one action per line; '#' starts a comment
at 100ms  crash p1
at 150ms  crash-after-sends p2 3
at 200ms  cut p1 p3
at 250ms  heal p1 p3
at 300ms  partition p1 p2 | p3
at 500ms  heal-all
at 600ms  loss 0.02
at 900ms  loss 0
at 1s     delay 2ms
at 1200ms delay 0ms
    v}

    Times are a non-negative integer with unit [ns], [us], [ms] or [s];
    processes use the paper's 1-based [p1] … [pn] names; [partition]
    separates blocks with [|] (unlisted processes form implicit singleton
    blocks). [validate] checks a plan up front — before any simulation
    starts — so a bad plan fails fast with a position-tagged error. *)

type action =
  | Crash of Pid.t  (** Silent, permanent crash (§2.1). *)
  | Crash_after_sends of Pid.t * int
      (** Crash after [k] more point-to-point sends — mid-broadcast with
          [k] below the fan-out (§3.3). *)
  | Cut of Pid.t * Pid.t  (** Cut the directed link src -> dst. *)
  | Heal of Pid.t * Pid.t  (** Heal the directed link src -> dst. *)
  | Partition of Pid.t list list
      (** Symmetric partition into blocks ({!Network.partition}). *)
  | Heal_all  (** Heal every cut link ({!Network.heal_all}). *)
  | Loss_rate of float
      (** Set the per-copy drop probability; a window is a pair of
          actions, [Loss_rate p] then [Loss_rate baseline]. *)
  | Delay_spike of Time.span
      (** Set the extra propagation delay; end the spike with
          [Delay_spike Time.span_zero]. *)

type step = { at : Time.span;  (** Relative to installation. *) action : action }
type t = step list

val validate : n:int -> t -> (t, string) result
(** Check a plan against a group of [n] processes: timestamps must be
    non-decreasing, every pid in range, send budgets non-negative, loss
    rates in [0, 1), partition blocks disjoint. [Ok] returns the plan
    unchanged; [Error] carries a human-readable reason naming the
    offending step. *)

val crashed_pids : t -> Pid.t list
(** Processes the plan crashes (immediately or after sends), ascending
    and without duplicates — the complement of the correct set a monitor
    should check. *)

val duration : t -> Time.span
(** Timestamp of the last step ([span_zero] for the empty plan). *)

val drops_messages : t -> bool
(** Whether any step can make the network drop a message (a cut, a
    partition, or a positive loss rate — crashes and delay spikes do not
    drop anything). Such plans violate the quasi-reliable channels the
    protocols assume, so runs executing them should mount the
    retransmitting {!Repro_net.Rchannel} ({!Params.Lossy} transport). *)

val equal : t -> t -> bool

val is_subsequence : t -> of_:t -> bool
(** Whether every step of the first plan appears, in order, in the
    second — the shrinker's contract. *)

val action_to_string : action -> string
val pp_action : action Fmt.t
val pp_step : step Fmt.t
val pp : t Fmt.t

val to_string : t -> string
(** The concrete plan syntax; [of_string] round-trips it exactly. *)

val of_string : string -> (t, string) result
(** Parse the plan syntax. Errors are tagged with the line number. Does
    not check pid ranges (that needs [n]) — run {!validate} next. *)

val load : string -> (t, string) result
(** Read and parse a plan file; an unreadable path is an [Error], not an
    exception. *)
