type microprotocol = { name : string; description : string }

type t = { bus : Event_bus.t; mutable rev_modules : microprotocol list }

let create ~cpu ~dispatch_cost =
  { bus = Event_bus.create ~cpu ~dispatch_cost; rev_modules = [] }

let bus t = t.bus
let mount t m = t.rev_modules <- m :: t.rev_modules
let modules t = List.rev t.rev_modules
let boundary_crossings t = Event_bus.emissions t.bus

let pp ppf t =
  List.iter (fun m -> Fmt.pf ppf "%-12s %s@." m.name m.description) (modules t)
