open Repro_sim

(** A composed protocol stack.

    Bookkeeping for one process's composition: which microprotocols are
    mounted, over one shared event bus charged to the process's CPU. The
    paper's two stacks differ exactly here — the modular stack mounts
    [ABcast], [Consensus] and [RBcast] as three modules bound by bus ports,
    the monolithic stack mounts one module that owns everything. *)

type t

type microprotocol = {
  name : string;  (** e.g. ["ABcast"]. *)
  description : string;  (** One-line role summary. *)
}

val create : cpu:Cpu.t -> dispatch_cost:Time.span -> t
(** An empty stack whose inter-module events cost [dispatch_cost]. *)

val bus : t -> Event_bus.t
(** The stack's event bus; modules create their ports here. *)

val mount : t -> microprotocol -> unit
(** Record a module as part of this composition. *)

val modules : t -> microprotocol list
(** Mounted modules, in mount order. *)

val boundary_crossings : t -> int
(** Number of inter-module events dispatched so far — the measured
    "cost of modularity" at the framework level. *)

val pp : t Fmt.t
(** Prints the composition, one module per line. *)
