lib/framework/event_bus.ml: Cpu List Repro_sim Time
