lib/framework/event_bus.mli: Cpu Repro_sim Time
