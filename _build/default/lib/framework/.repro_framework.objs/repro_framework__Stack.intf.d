lib/framework/stack.mli: Cpu Event_bus Fmt Repro_sim Time
