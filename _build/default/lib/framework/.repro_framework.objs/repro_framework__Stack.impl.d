lib/framework/stack.ml: Event_bus Fmt List
