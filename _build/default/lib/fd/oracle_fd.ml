open Repro_net

type t = {
  mutable suspected : Pid.t list;
  mutable listeners : (Pid.t -> unit) list;
}

let create () = { suspected = []; listeners = [] }

let fd t =
  Fd.make
    ~is_suspected:(fun p -> List.mem p t.suspected)
    ~add_listener:(fun f -> t.listeners <- f :: t.listeners)

let suspect t p =
  if not (List.mem p t.suspected) then begin
    t.suspected <- p :: t.suspected;
    List.iter (fun f -> f p) (List.rev t.listeners)
  end

let restore t p = t.suspected <- List.filter (fun q -> q <> p) t.suspected
let suspects t = List.sort Pid.compare t.suspected
