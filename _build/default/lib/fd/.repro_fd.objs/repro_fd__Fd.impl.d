lib/fd/fd.ml: Pid Repro_net
