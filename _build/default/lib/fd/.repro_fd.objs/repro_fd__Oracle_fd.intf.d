lib/fd/oracle_fd.mli: Fd Pid Repro_net
