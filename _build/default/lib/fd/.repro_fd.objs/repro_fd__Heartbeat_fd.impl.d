lib/fd/heartbeat_fd.ml: Array Engine Fd List Pid Repro_net Repro_sim Time
