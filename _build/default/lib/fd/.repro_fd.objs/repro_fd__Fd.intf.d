lib/fd/fd.mli: Pid Repro_net
