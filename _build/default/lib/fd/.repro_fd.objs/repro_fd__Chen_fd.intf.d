lib/fd/chen_fd.mli: Engine Fd Pid Repro_net Repro_sim Time
