lib/fd/oracle_fd.ml: Fd List Pid Repro_net
