open Repro_sim
open Repro_net

type config = {
  period : Time.span;
  initial_timeout : Time.span;
  timeout_increment : Time.span;
  timeout_decay : Time.span;
}

let default_config =
  {
    period = Time.span_ms 10;
    initial_timeout = Time.span_ms 50;
    timeout_increment = Time.span_ms 50;
    timeout_decay = Time.span_ms 1;
  }

type peer = {
  pid : Pid.t;
  mutable timeout : Time.span;
  mutable suspected : bool;
  mutable watchdog : Engine.timer option;
}

type t = {
  engine : Engine.t;
  config : config;
  me : Pid.t;
  peers : peer array; (* indexed by pid; slot [me] is unused *)
  send_heartbeat : dst:Pid.t -> unit;
  mutable listeners : (Pid.t -> unit) list;
  mutable stopped : bool;
}

let notify t p = List.iter (fun f -> f p) (List.rev t.listeners)

let rec arm_watchdog t peer =
  peer.watchdog <-
    Some
      (Engine.schedule_after t.engine peer.timeout (fun () ->
           if not t.stopped && not peer.suspected then begin
             peer.suspected <- true;
             notify t peer.pid
           end))

and heartbeat_received t peer =
  (match peer.watchdog with
  | Some timer -> Engine.cancel t.engine timer
  | None -> ());
  if peer.suspected then begin
    (* False suspicion: be more patient with this peer from now on. *)
    peer.suspected <- false;
    peer.timeout <- Time.span_add peer.timeout t.config.timeout_increment
  end
  else begin
    (* Healthy heartbeat: decay a grown timeout back toward the configured
       floor, so a transient partition does not permanently inflate
       crash-detection latency. *)
    let floor_ns = Time.span_to_ns t.config.initial_timeout in
    let cur_ns = Time.span_to_ns peer.timeout in
    if cur_ns > floor_ns then
      peer.timeout <-
        Time.span_ns (max floor_ns (cur_ns - Time.span_to_ns t.config.timeout_decay))
  end;
  arm_watchdog t peer

let rec heartbeat_round t =
  if not t.stopped then begin
    Array.iter
      (fun peer -> if peer.pid <> t.me then t.send_heartbeat ~dst:peer.pid)
      t.peers;
    ignore (Engine.schedule_after t.engine t.config.period (fun () -> heartbeat_round t))
  end

let create engine config ~n ~me ~send_heartbeat =
  let peer pid = { pid; timeout = config.initial_timeout; suspected = false; watchdog = None } in
  let t =
    {
      engine;
      config;
      me;
      peers = Array.init n peer;
      send_heartbeat;
      listeners = [];
      stopped = false;
    }
  in
  Array.iter (fun peer -> if peer.pid <> me then arm_watchdog t peer) t.peers;
  heartbeat_round t;
  t

let fd t =
  Fd.make
    ~is_suspected:(fun p -> p <> t.me && t.peers.(p).suspected)
    ~add_listener:(fun f -> t.listeners <- f :: t.listeners)

let on_heartbeat t ~src = if not t.stopped && src <> t.me then heartbeat_received t t.peers.(src)
let stop t = t.stopped <- true

let current_timeout t p = t.peers.(p).timeout

let suspects t =
  Array.to_list t.peers
  |> List.filter_map (fun peer ->
         if peer.pid <> t.me && peer.suspected then Some peer.pid else None)
  |> List.sort Pid.compare
