open Repro_net

type t = {
  is_suspected : Pid.t -> bool;
  add_listener : (Pid.t -> unit) -> unit;
}

let make ~is_suspected ~add_listener = { is_suspected; add_listener }
let is_suspected t p = t.is_suspected p
let on_suspect t f = t.add_listener f
let never_suspects = { is_suspected = (fun _ -> false); add_listener = (fun _ -> ()) }
