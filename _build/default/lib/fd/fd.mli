open Repro_net

(** Failure-detector service interface.

    The system model (§2.1) gives every process a local failure detector
    that outputs a set of suspected processes; the list may change over time
    and may be inaccurate. Consensus consumes exactly this interface — a
    suspicion query plus change notification — and nothing more, so any
    implementation (heartbeat ◇P, test oracle) plugs in unchanged. *)

type t

val make :
  is_suspected:(Pid.t -> bool) -> add_listener:((Pid.t -> unit) -> unit) -> t
(** Wrap an implementation. [add_listener f] must arrange for [f q] to be
    called every time [q] {e becomes} suspected (edge, not level). *)

val is_suspected : t -> Pid.t -> bool
(** Whether the local module currently suspects the process. *)

val on_suspect : t -> (Pid.t -> unit) -> unit
(** Register a callback invoked each time a process becomes suspected.
    Callbacks accumulate; they are never removed (protocol layers guard
    staleness themselves, keyed on round numbers). *)

val never_suspects : t
(** The degenerate detector of a good run: suspects no one, costs nothing.
    Used by benchmarks, which measure good runs only (§5.1). *)
