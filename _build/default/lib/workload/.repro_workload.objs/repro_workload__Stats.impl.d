lib/workload/stats.ml: Array Fmt List
