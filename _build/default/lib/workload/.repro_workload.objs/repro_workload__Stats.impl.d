lib/workload/stats.ml: Repro_obs
