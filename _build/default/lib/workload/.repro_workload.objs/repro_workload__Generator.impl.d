lib/workload/generator.ml: Engine Group List Params Repro_core Repro_net Repro_sim Rng Time
