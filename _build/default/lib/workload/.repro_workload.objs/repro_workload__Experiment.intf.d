lib/workload/experiment.mli: Fmt Params Replica Repro_core Stats
