lib/workload/experiment.mli: Fmt Group Params Replica Repro_core Repro_obs Stats
