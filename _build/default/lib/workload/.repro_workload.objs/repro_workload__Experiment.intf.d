lib/workload/experiment.mli: Fmt Params Replica Repro_core Repro_obs Stats
