lib/workload/stats.mli: Repro_obs
