lib/workload/stats.mli: Fmt
