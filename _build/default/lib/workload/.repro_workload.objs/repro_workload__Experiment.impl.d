lib/workload/experiment.ml: Array Cpu Engine Fmt Generator Group List Net_stats Network Option Params Pid Replica Repro_core Repro_framework Repro_net Repro_obs Repro_sim Stats Time
