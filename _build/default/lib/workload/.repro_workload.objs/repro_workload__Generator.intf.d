lib/workload/generator.mli: Group Repro_core
