(** Sample statistics for the performance metrics.

    Alias of [Repro_obs.Stats], which owns the implementation (the
    observability layer's histograms use the same percentile machinery).
    The types are equal, so summaries flow freely between the two
    libraries. *)

include module type of struct
  include Repro_obs.Stats
end
