(* The implementation moved to [Repro_obs.Stats] so the observability
   layer's histograms can share the percentile machinery without a
   dependency cycle; this alias keeps every existing [Stats] call site
   (experiments, tests, the benchmark harness) compiling unchanged. *)
include Repro_obs.Stats
