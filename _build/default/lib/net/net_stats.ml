type snapshot = { messages : int; payload_bytes : int; wire_bytes : int }

type t = {
  mutable totals : snapshot;
  per_sender : int array;
  kinds : (string, int) Hashtbl.t;
}

let zero = { messages = 0; payload_bytes = 0; wire_bytes = 0 }
let create ~n = { totals = zero; per_sender = Array.make n 0; kinds = Hashtbl.create 16 }

let record_send t ~src ~kind ~payload_bytes ~wire_bytes =
  t.totals <-
    {
      messages = t.totals.messages + 1;
      payload_bytes = t.totals.payload_bytes + payload_bytes;
      wire_bytes = t.totals.wire_bytes + wire_bytes;
    };
  t.per_sender.(src) <- t.per_sender.(src) + 1;
  let count = match Hashtbl.find_opt t.kinds kind with Some c -> c | None -> 0 in
  Hashtbl.replace t.kinds kind (count + 1)

let by_kind t =
  Hashtbl.fold (fun kind count acc -> (kind, count) :: acc) t.kinds []
  |> List.sort compare

let snapshot t = t.totals
let sent_by t p = t.per_sender.(p)

let diff later earlier =
  {
    messages = later.messages - earlier.messages;
    payload_bytes = later.payload_bytes - earlier.payload_bytes;
    wire_bytes = later.wire_bytes - earlier.wire_bytes;
  }

let pp_snapshot ppf s =
  Fmt.pf ppf "%d msgs, %d B payload, %d B on wire" s.messages s.payload_bytes
    s.wire_bytes
