open Repro_sim
module Obs = Repro_obs.Obs

type 'msg wire = Data of { seq : int; payload : 'msg } | Ack of { cumulative : int }

type 'msg link_out = {
  mutable next_seq : int;
  mutable unacked : (int * 'msg) list; (* ascending seq, awaiting ack *)
  mutable timer : Engine.timer option;
}

type 'msg link_in = {
  mutable expected : int; (* next in-order seq *)
  mutable buffered : (int * 'msg) list; (* out-of-order, ascending *)
}

type 'msg t = {
  engine : Engine.t;
  me : Pid.t;
  send_raw : dst:Pid.t -> 'msg wire -> unit;
  deliver : src:Pid.t -> 'msg -> unit;
  rto : Time.span;
  obs : Obs.t;
  outgoing : 'msg link_out array;
  incoming : 'msg link_in array;
  mutable retransmissions : int;
  mutable halted : bool;
}

let create engine ~me ~n ~send_raw ~deliver ?(rto = Time.span_ms 20) ?(obs = Obs.noop) () =
  {
    engine;
    me;
    send_raw;
    deliver;
    rto;
    obs;
    outgoing = Array.init n (fun _ -> { next_seq = 0; unacked = []; timer = None });
    incoming = Array.init n (fun _ -> { expected = 0; buffered = [] });
    retransmissions = 0;
    halted = false;
  }

let cancel_timer t link =
  match link.timer with
  | Some timer ->
    Engine.cancel t.engine timer;
    link.timer <- None
  | None -> ()

(* Go-back-N style: on timeout, re-send everything unacknowledged. *)
let rec arm_timer t ~dst link =
  cancel_timer t link;
  if link.unacked <> [] then
    link.timer <-
      Some
        (Engine.schedule_after t.engine t.rto (fun () ->
             if (not t.halted) && link.unacked <> [] then begin
               List.iter
                 (fun (seq, payload) ->
                   t.retransmissions <- t.retransmissions + 1;
                   Obs.incr t.obs "rchannel.retransmissions";
                   if Obs.enabled t.obs then
                     Obs.event t.obs ~pid:t.me ~layer:`Net ~phase:"retransmit"
                       ~detail:(Printf.sprintf "seq %d -> p%d" seq (dst + 1))
                       ();
                   t.send_raw ~dst (Data { seq; payload }))
                 link.unacked;
               arm_timer t ~dst link
             end))

let send t ~dst payload =
  if dst = t.me then t.deliver ~src:t.me payload
  else if not t.halted then begin
    let link = t.outgoing.(dst) in
    let seq = link.next_seq in
    link.next_seq <- seq + 1;
    link.unacked <- link.unacked @ [ (seq, payload) ];
    t.send_raw ~dst (Data { seq; payload });
    if link.timer = None then arm_timer t ~dst link
  end

let handle_ack t ~src ~cumulative =
  let link = t.outgoing.(src) in
  let before = link.unacked in
  link.unacked <- List.filter (fun (seq, _) -> seq > cumulative) before;
  if link.unacked = [] then cancel_timer t link
  else if List.length link.unacked < List.length before then
    (* Progress: give the remainder a fresh timeout. *)
    arm_timer t ~dst:src link

let rec drain_in_order t ~src link =
  match link.buffered with
  | (seq, payload) :: rest when seq = link.expected ->
    link.buffered <- rest;
    link.expected <- seq + 1;
    t.deliver ~src payload;
    drain_in_order t ~src link
  | _ -> ()

let handle_data t ~src ~seq ~payload =
  let link = t.incoming.(src) in
  if seq >= link.expected && not (List.mem_assoc seq link.buffered) then begin
    link.buffered <-
      List.merge (fun (a, _) (b, _) -> compare a b) link.buffered [ (seq, payload) ];
    drain_in_order t ~src link
  end
  else Obs.incr t.obs "rchannel.duplicates";
  (* Always (re-)acknowledge what we have — lost acks are recovered by the
     sender's retransmission provoking a fresh one. *)
  t.send_raw ~dst:src (Ack { cumulative = link.expected - 1 })

let receive_raw t ~src frame =
  if not t.halted then
    match frame with
    | Data { seq; payload } -> handle_data t ~src ~seq ~payload
    | Ack { cumulative } -> handle_ack t ~src ~cumulative

let retransmissions t = t.retransmissions
let unacked t ~dst = List.length t.outgoing.(dst).unacked

let halt t =
  t.halted <- true;
  Array.iteri (fun _ link -> cancel_timer t link) t.outgoing
