open Repro_sim

type t = {
  header_bytes : int;
  bandwidth_bytes_per_s : int;
  propagation : Time.span;
  propagation_jitter : Time.span;
  send_cpu_fixed : Time.span;
  send_cpu_per_byte_ns : int;
  recv_cpu_fixed : Time.span;
  recv_cpu_per_byte_ns : int;
}

(* Calibration targets the *shape* of the paper's figures, not absolute
   milliseconds (our substrate is a simulator, theirs a 2005 cluster):
   - per-message fixed CPU cost large enough that message count dominates
     latency for small payloads (Fig. 9 left half);
   - per-byte CPU cost corresponding to a JVM-era marshalling path of a few
     tens of MB/s, so byte volume takes over for large payloads;
   - Gigabit wire so the network itself saturates only for the largest
     proposals (Fig. 11 right half). *)
let default =
  {
    header_bytes = 78; (* Ethernet 38 + IP 20 + TCP 20 *)
    bandwidth_bytes_per_s = 125_000_000;
    propagation = Time.span_us 50;
    propagation_jitter = Time.span_zero;
    send_cpu_fixed = Time.span_us 100;
    send_cpu_per_byte_ns = 25;
    recv_cpu_fixed = Time.span_us 100;
    recv_cpu_per_byte_ns = 25;
  }

let on_wire_bytes t ~payload_bytes = payload_bytes + t.header_bytes

let tx_time t ~payload_bytes =
  let bytes = on_wire_bytes t ~payload_bytes in
  (* ns = bytes * 1e9 / rate; compute in a way that cannot overflow for any
     realistic size (bytes < 2^40, rate >= 1). *)
  Time.span_ns (bytes * 1_000_000_000 / t.bandwidth_bytes_per_s)

let send_cpu_cost t ~payload_bytes =
  Time.span_add t.send_cpu_fixed (Time.span_ns (payload_bytes * t.send_cpu_per_byte_ns))

let recv_cpu_cost t ~payload_bytes =
  Time.span_add t.recv_cpu_fixed (Time.span_ns (payload_bytes * t.recv_cpu_per_byte_ns))
