lib/net/wire.ml: Repro_sim Time
