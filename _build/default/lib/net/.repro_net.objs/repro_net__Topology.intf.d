lib/net/topology.mli: Pid Repro_sim Time
