lib/net/net_stats.ml: Array Fmt Hashtbl List
