lib/net/topology.ml: Array Pid Repro_sim Time
