lib/net/wire.mli: Repro_sim Time
