lib/net/rchannel.ml: Array Engine List Pid Repro_sim Time
