lib/net/rchannel.ml: Array Engine List Pid Printf Repro_obs Repro_sim Time
