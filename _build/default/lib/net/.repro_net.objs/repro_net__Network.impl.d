lib/net/network.ml: Array Cpu Engine List Net_stats Pid Repro_sim Time Topology Wire
