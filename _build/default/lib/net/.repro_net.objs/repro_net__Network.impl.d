lib/net/network.ml: Array Cpu Engine List Net_stats Pid Printf Repro_obs Repro_sim Time Topology Wire
