lib/net/pid.ml: Fmt Fun Int List
