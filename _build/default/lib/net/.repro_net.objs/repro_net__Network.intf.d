lib/net/network.mli: Cpu Engine Net_stats Pid Repro_obs Repro_sim Time Topology Wire
