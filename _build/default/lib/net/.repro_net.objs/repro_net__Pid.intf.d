lib/net/pid.mli: Fmt
