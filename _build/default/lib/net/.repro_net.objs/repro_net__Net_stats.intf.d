lib/net/net_stats.mli: Fmt Pid
