lib/net/rchannel.mli: Engine Pid Repro_sim Time
