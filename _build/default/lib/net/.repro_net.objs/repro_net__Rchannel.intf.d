lib/net/rchannel.mli: Engine Pid Repro_obs Repro_sim Time
