open Repro_sim

type t =
  | Uniform of Time.span
  | Racks of { rack_size : int; intra : Time.span; inter : Time.span }
  | Star of { center : Pid.t; near : Time.span; far : Time.span }
  | Matrix of Time.span array array

let uniform span = Uniform span

let racks ~rack_size ~intra ~inter =
  if rack_size < 1 then invalid_arg "Topology.racks: rack_size must be >= 1";
  Racks { rack_size; intra; inter }

let star ~center ~near ~far = Star { center; near; far }

let of_matrix m =
  let n = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Topology.of_matrix: matrix not square")
    m;
  Matrix m

let latency t ~src ~dst =
  match t with
  | Uniform span -> span
  | Racks { rack_size; intra; inter } ->
    if src / rack_size = dst / rack_size then intra else inter
  | Star { center; near; far } -> if src = center || dst = center then near else far
  | Matrix m ->
    if src < 0 || dst < 0 || src >= Array.length m || dst >= Array.length m then
      invalid_arg "Topology.latency: pid out of range";
    m.(src).(dst)
