type t = int

let compare = Int.compare
let equal = Int.equal
let all ~n = List.init n Fun.id
let others ~n p = List.filter (fun q -> q <> p) (all ~n)
let pp ppf p = Fmt.pf ppf "p%d" (p + 1)
