open Repro_sim

(** Reliable FIFO channels over fair-lossy links — a simplified TCP.

    The system model of the paper (§2.1) assumes quasi-reliable channels:
    if correct [p] sends m to correct [q], then [q] eventually receives m.
    The paper's testbed gets this from TCP; the simulated {!Network}
    provides it natively. This module closes the loop: it {e implements}
    quasi-reliable FIFO channels on top of links that drop messages (the
    network's {!Network.set_loss_rate} mode), with the standard mechanism —
    per-link sequence numbers, cumulative acknowledgments, out-of-order
    buffering, and timeout-driven retransmission.

    Properties provided towards each peer, as long as both endpoints are
    correct and the link is fair-lossy (every retransmission has an
    independent chance of arriving):

    - every payload sent is eventually delivered (quasi-reliability),
    - exactly once (duplicates suppressed),
    - in send order (FIFO).

    Transport-agnostic: wrap the payloads in {!wire} frames, hand them to
    any unreliable [send_raw], and feed incoming frames to {!receive_raw}. *)

type 'msg wire =
  | Data of { seq : int; payload : 'msg }
      (** [seq] is the per-directed-link sequence number, from 0. *)
  | Ack of { cumulative : int }
      (** All [Data] frames with [seq <= cumulative] have been received. *)

type 'msg t

val create :
  Engine.t ->
  me:Pid.t ->
  n:int ->
  send_raw:(dst:Pid.t -> 'msg wire -> unit) ->
  deliver:(src:Pid.t -> 'msg -> unit) ->
  ?rto:Time.span ->
  ?obs:Repro_obs.Obs.t ->
  unit ->
  'msg t
(** [rto] is the retransmission timeout (default 20 ms). [deliver] is
    invoked exactly once per payload, in per-link FIFO order. [obs]
    (default: no-op) counts [rchannel.retransmissions] and
    [rchannel.duplicates] and traces each retransmission (layer [`Net],
    phase [retransmit]). *)

val send : 'msg t -> dst:Pid.t -> 'msg -> unit
(** Queue a payload for reliable delivery to [dst]. A self-send is
    delivered immediately without framing. *)

val receive_raw : 'msg t -> src:Pid.t -> 'msg wire -> unit
(** Feed one frame received from the unreliable network. *)

val retransmissions : 'msg t -> int
(** Total [Data] frames re-sent so far (the cost of the loss). *)

val unacked : 'msg t -> dst:Pid.t -> int
(** Frames awaiting acknowledgment towards one peer. *)

val halt : 'msg t -> unit
(** Stop all retransmission timers (when the owner crashes). *)
