type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  root_rng : Rng.t;
  mutable executed : int;
}

type timer = Event_queue.handle

let create ?(seed = 0) () =
  {
    queue = Event_queue.create ();
    clock = Time.zero;
    root_rng = Rng.create ~seed;
    executed = 0;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t time thunk =
  if Time.(time < t.clock) then invalid_arg "Engine.schedule_at: instant in the past";
  Event_queue.push t.queue ~time thunk

let schedule_after t delay thunk = schedule_at t (Time.add t.clock delay) thunk
let cancel t timer = Event_queue.cancel t.queue timer

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, thunk) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    thunk ();
    true

let run t =
  while step t do
    ()
  done

let run_until t limit =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when Time.(time <= limit) ->
      ignore (step t);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  if Time.(t.clock < limit) then t.clock <- limit

let pending t = Event_queue.length t.queue
let events_executed t = t.executed
