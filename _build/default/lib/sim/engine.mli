(** The discrete-event simulation engine.

    An engine owns the virtual clock, the event queue and the root random
    generator. Components schedule closures at future instants; [run]
    executes them in timestamp order (insertion order breaking ties),
    advancing the clock to each event's instant. All state mutation in a
    simulation happens inside scheduled closures, so a run is a
    deterministic function of the seed and the initial schedule. *)

type t

type timer
(** Names a scheduled event so it can be cancelled. *)

val create : ?seed:int -> unit -> t
(** A fresh engine with clock at {!Time.zero}. Default [seed] is 0. *)

val now : t -> Time.t
(** The current virtual instant. *)

val rng : t -> Rng.t
(** The engine's root random generator. Components that need their own
    stream should {!Rng.split} it once at setup. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> timer
(** Run the closure when the clock reaches the given instant.
    @raise Invalid_argument if the instant is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> timer
(** Run the closure after the given delay. *)

val cancel : t -> timer -> unit
(** Forget a scheduled event. No-op if it already fired or was cancelled. *)

val step : t -> bool
(** Execute the single earliest pending event. [false] if none remained. *)

val run : t -> unit
(** Execute events until the queue is empty. *)

val run_until : t -> Time.t -> unit
(** Execute events with instants [<=] the limit, then set the clock to the
    limit. Events scheduled beyond the limit stay pending. *)

val pending : t -> int
(** Number of scheduled events not yet executed or cancelled. *)

val events_executed : t -> int
(** Total closures executed since creation (a cheap progress/cost probe). *)
