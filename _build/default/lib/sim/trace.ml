type 'a entry = { at : Time.t; event : 'a }

type 'a t = {
  engine : Engine.t;
  mutable rev_entries : 'a entry list;
  mutable length : int;
}

let create engine = { engine; rev_entries = []; length = 0 }

let record t event =
  t.rev_entries <- { at = Engine.now t.engine; event } :: t.rev_entries;
  t.length <- t.length + 1

let entries t = List.rev t.rev_entries
let events t = List.rev_map (fun e -> e.event) t.rev_entries
let length t = t.length
let find_last t ~f = List.find_opt (fun e -> f e.event) t.rev_entries

let pp pp_event ppf t =
  List.iter
    (fun { at; event } -> Fmt.pf ppf "%a %a@." Time.pp at pp_event event)
    (entries t)
