type 'a cell = {
  time : Time.t;
  seq : int;
  value : 'a;
  mutable cancelled : bool;
}

type handle = H : 'a cell -> handle

type 'a t = {
  mutable heap : 'a cell array;
  (* [heap] slots at index >= size are physically present but dead; they
     keep the last popped cells alive only until overwritten, which is
     harmless. *)
  mutable size : int;
  mutable next_seq : int;
  mutable pending : int; (* live (non-cancelled) cells in the heap *)
}

let create () = { heap = [||]; size = 0; next_seq = 0; pending = 0 }

let cell_before a b =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && cell_before t.heap.(l) t.heap.(i) then l else i in
  let smallest =
    if r < t.size && cell_before t.heap.(r) t.heap.(smallest) then r else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let grow t cell =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let new_capacity = if capacity = 0 then 16 else 2 * capacity in
    let heap = Array.make new_capacity cell in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let push t ~time value =
  let cell = { time; seq = t.next_seq; value; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  grow t cell;
  t.heap.(t.size) <- cell;
  t.size <- t.size + 1;
  t.pending <- t.pending + 1;
  sift_up t (t.size - 1);
  H cell

let cancel t (H cell) =
  if not cell.cancelled then begin
    cell.cancelled <- true;
    t.pending <- t.pending - 1
  end

let pop_root t =
  let root = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  root

let rec pop t =
  if t.size = 0 then None
  else
    let root = pop_root t in
    if root.cancelled then pop t
    else begin
      t.pending <- t.pending - 1;
      (* Mark the cell as gone so a later [cancel] on its handle is a true
         no-op instead of corrupting the pending count. *)
      root.cancelled <- true;
      Some (root.time, root.value)
    end

let rec peek_time t =
  if t.size = 0 then None
  else if t.heap.(0).cancelled then begin
    ignore (pop_root t);
    peek_time t
  end
  else Some t.heap.(0).time

let is_empty t = t.pending = 0
let length t = t.pending
