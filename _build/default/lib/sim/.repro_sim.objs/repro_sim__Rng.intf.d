lib/sim/rng.mli:
