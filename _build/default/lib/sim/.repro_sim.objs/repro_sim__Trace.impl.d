lib/sim/trace.ml: Engine Fmt List Time
