lib/sim/time.mli: Fmt
