lib/sim/time.ml: Fmt Stdlib
