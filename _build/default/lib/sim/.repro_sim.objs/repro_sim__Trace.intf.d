lib/sim/trace.mli: Engine Fmt Time
