(** Priority queue of timestamped events.

    A binary min-heap keyed by [(time, sequence)]. The sequence number is
    assigned at insertion, so events scheduled for the same instant pop in
    insertion order — the tie-break that makes whole-simulation determinism
    possible. Elements can be cancelled lazily in O(1); cancelled cells are
    skipped on pop. *)

type 'a t
(** A queue of events carrying values of type ['a]. *)

type handle
(** Names one inserted event, for cancellation. *)

val create : unit -> 'a t
(** An empty queue. *)

val push : 'a t -> time:Time.t -> 'a -> handle
(** Insert an event at the given instant. *)

val cancel : 'a t -> handle -> unit
(** Remove the event named by the handle, if it is still pending. Cancelling
    an already-popped or already-cancelled event is a no-op. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest pending event, insertion order breaking
    ties. [None] if no pending event remains. *)

val peek_time : 'a t -> Time.t option
(** The instant of the earliest pending event without removing it. *)

val is_empty : 'a t -> bool
(** No pending (non-cancelled) events. *)

val length : 'a t -> int
(** Number of pending (non-cancelled) events. *)
