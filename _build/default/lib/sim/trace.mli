(** Timestamped event recorder.

    A lightweight append-only log of labelled events, used by tests to
    assert on protocol histories and by examples to narrate runs. Recording
    is O(1); the log lives entirely in memory. *)

type 'a t
(** A trace of events of type ['a]. *)

type 'a entry = { at : Time.t; event : 'a }

val create : Engine.t -> 'a t
(** A fresh empty trace stamping entries with the engine's clock. *)

val record : 'a t -> 'a -> unit
(** Append an event at the current instant. *)

val entries : 'a t -> 'a entry list
(** All entries, oldest first. *)

val events : 'a t -> 'a list
(** All events, oldest first, without timestamps. *)

val length : 'a t -> int
(** Number of recorded entries. *)

val find_last : 'a t -> f:('a -> bool) -> 'a entry option
(** The most recent entry satisfying [f], if any. *)

val pp : 'a Fmt.t -> 'a t Fmt.t
(** Prints one [<time> <event>] line per entry, oldest first. *)
