(** Log sources of the protocol stack.

    One {!Logs} source per module, so verbosity can be tuned per layer
    (e.g. debug the consensus rounds while keeping abcast quiet). All
    protocol logging is at [debug] level — silent by default and free of
    cost beyond a level check. [setup] installs a simple stderr reporter
    for executables and examples. *)

val consensus : Logs.src
(** Rounds, proposals, decisions, suspicions ("repro.consensus"). *)

val abcast : Logs.src
(** Instance lifecycle and deliveries of the modular stack
    ("repro.abcast"). *)

val mono : Logs.src
(** The monolithic stack ("repro.mono"). *)

val rbcast : Logs.src
(** Reliable broadcast relays ("repro.rbcast"). *)

val setup : ?level:Logs.level -> unit -> unit
(** Install a stderr reporter and set the global level (default [Debug]).
    Call once from an executable; libraries never call this. *)
