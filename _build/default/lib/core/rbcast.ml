open Repro_net

module Seen = Set.Make (struct
  type t = Pid.t * int

  let compare = compare
end)

type 'p t = {
  me : Pid.t;
  n : int;
  variant : Params.rbcast_variant;
  broadcast : meta:Msg.rb_meta -> 'p -> unit;
  deliver : meta:Msg.rb_meta -> 'p -> unit;
  mutable seen : Seen.t;
  mutable next_seq : int;
}

let create ~me ~n ~variant ~broadcast ~deliver () =
  { me; n; variant; broadcast; deliver; seen = Seen.empty; next_seq = 0 }

let relayers ~n ~origin =
  let count = (n - 1) / 2 in
  let rec take acc k pid =
    if k = 0 || pid >= n then List.rev acc
    else if pid = origin then take acc k (pid + 1)
    else take (pid :: acc) (k - 1) (pid + 1)
  in
  take [] count 0

let send_to_others t ~meta payload = t.broadcast ~meta payload

let rbcast t payload =
  let meta = { Msg.rb_origin = t.me; rb_seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.seen <- Seen.add (meta.rb_origin, meta.rb_seq) t.seen;
  t.deliver ~meta payload;
  send_to_others t ~meta payload

let should_relay t ~origin =
  match t.variant with
  | Params.Classic -> true
  | Params.Majority -> List.mem t.me (relayers ~n:t.n ~origin)

let receive t ~src:_ ~meta payload =
  let key = (meta.Msg.rb_origin, meta.Msg.rb_seq) in
  if not (Seen.mem key t.seen) then begin
    t.seen <- Seen.add key t.seen;
    t.deliver ~meta payload;
    if should_relay t ~origin:meta.Msg.rb_origin then send_to_others t ~meta payload
  end
