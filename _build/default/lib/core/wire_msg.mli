open Repro_net

(** What actually travels on the simulated wire.

    Under the default {!Params.Tcp_like} transport, protocol messages go
    directly ([Plain]); under {!Params.Lossy}, they are framed by the
    per-process reliable channel ([Frame] wraps data frames carrying a
    sequence number, and the channel's cumulative acks). Kind labels and
    sizes pass through to the inner message so traffic statistics stay
    comparable across transports (channel acks are labelled
    ["channel-ack"]). *)

type t = Plain of Msg.t | Frame of Msg.t Rchannel.wire

val payload_bytes : t -> int
(** Inner message size, plus 8 bytes of sequencing for data frames;
    channel acks are 16 bytes. *)

val kind : t -> string
(** The inner {!Msg.kind}, or ["channel-ack"]. *)

val layer : t -> Repro_obs.Obs.layer
(** The inner {!Msg.layer}; channel acks bill to the [`Net] layer. *)
