let consensus = Logs.Src.create "repro.consensus" ~doc:"Chandra-Toueg consensus rounds"
let abcast = Logs.Src.create "repro.abcast" ~doc:"modular atomic broadcast"
let mono = Logs.Src.create "repro.mono" ~doc:"monolithic atomic broadcast"
let rbcast = Logs.Src.create "repro.rbcast" ~doc:"reliable broadcast"

let setup ?(level = Logs.Debug) () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some level)
