lib/core/rbcast.mli: Msg Params Pid Repro_net Repro_obs
