lib/core/rbcast.mli: Msg Params Pid Repro_net
