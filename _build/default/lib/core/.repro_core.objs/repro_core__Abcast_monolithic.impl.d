lib/core/abcast_monolithic.ml: App_msg Batch Engine Fd Hashtbl List Log Logs Msg Params Pid Printf Rbcast Repro_fd Repro_net Repro_obs Repro_sim
