lib/core/wire_msg.ml: Msg Rchannel Repro_net
