lib/core/batch.mli: App_msg Fmt
