lib/core/abcast_monolithic.mli: App_msg Engine Fd Msg Params Pid Repro_fd Repro_net Repro_obs Repro_sim
