lib/core/smr.mli: Group Pid Repro_net
