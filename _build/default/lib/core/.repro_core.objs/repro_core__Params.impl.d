lib/core/params.ml: Repro_net Repro_sim Time Topology Wire
