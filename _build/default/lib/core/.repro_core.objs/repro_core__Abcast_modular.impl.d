lib/core/abcast_modular.ml: App_msg Batch Hashtbl List Log Logs Params Printf Repro_net Repro_obs
