lib/core/replica.mli: App_msg Chen_fd Heartbeat_fd Network Oracle_fd Params Pid Repro_fd Repro_framework Repro_net Repro_obs Stack Wire_msg
