lib/core/flow_control.mli:
