lib/core/app_msg.mli: Fmt Pid Repro_net Repro_sim Set Time
