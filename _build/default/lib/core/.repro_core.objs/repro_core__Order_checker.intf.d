lib/core/order_checker.mli: App_msg Fmt Group Pid Repro_net
