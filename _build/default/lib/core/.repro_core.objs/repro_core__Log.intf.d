lib/core/log.mli: Logs
