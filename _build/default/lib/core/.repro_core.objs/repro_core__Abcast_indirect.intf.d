lib/core/abcast_indirect.mli: App_msg Batch Engine Msg Params Pid Repro_net Repro_obs Repro_sim
