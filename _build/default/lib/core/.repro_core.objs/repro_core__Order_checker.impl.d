lib/core/order_checker.ml: App_msg Array Fmt Group Hashtbl List Pid Repro_net
