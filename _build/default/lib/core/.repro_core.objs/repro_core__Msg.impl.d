lib/core/msg.ml: App_msg Batch Fmt List Pid Repro_net Repro_obs
