lib/core/msg.ml: App_msg Batch Fmt List Pid Repro_net
