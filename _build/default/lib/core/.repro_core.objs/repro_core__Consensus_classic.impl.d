lib/core/consensus_classic.ml: Batch Engine Fd Hashtbl List Msg Params Pid Repro_fd Repro_net Repro_sim
