lib/core/consensus_classic.ml: Batch Engine Fd Hashtbl List Msg Params Pid Printf Repro_fd Repro_net Repro_obs Repro_sim Time
