lib/core/smr.ml: App_msg Array Group Hashtbl Params
