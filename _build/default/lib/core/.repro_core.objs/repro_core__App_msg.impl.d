lib/core/app_msg.ml: Fmt Int Pid Repro_net Repro_sim Set Time
