lib/core/abcast_modular.mli: App_msg Batch Params Repro_net Repro_obs
