lib/core/group.mli: App_msg Engine Net_stats Network Params Pid Replica Repro_net Repro_obs Repro_sim Time Wire_msg
