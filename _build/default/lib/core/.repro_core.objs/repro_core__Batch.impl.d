lib/core/batch.ml: App_msg Fmt List Map
