lib/core/consensus.mli: Batch Engine Fd Msg Params Pid Repro_fd Repro_net Repro_obs Repro_sim
