lib/core/rbcast.ml: List Msg Params Pid Repro_net Set
