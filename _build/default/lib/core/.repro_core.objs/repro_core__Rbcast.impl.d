lib/core/rbcast.ml: List Msg Params Pid Printf Repro_net Repro_obs Set
