lib/core/group.ml: App_msg Array Engine Hashtbl List Network Params Pid Replica Repro_net Repro_obs Repro_sim Time Wire_msg
