lib/core/wire_msg.mli: Msg Rchannel Repro_net Repro_obs
