lib/core/abcast_indirect.ml: App_msg Batch Engine Hashtbl List Log Logs Msg Params Pid Repro_net Repro_sim Time
