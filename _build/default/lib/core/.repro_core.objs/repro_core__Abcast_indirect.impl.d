lib/core/abcast_indirect.ml: App_msg Batch Engine Hashtbl List Log Logs Msg Params Pid Printf Repro_net Repro_obs Repro_sim Time
