lib/core/flow_control.ml:
