lib/core/consensus.ml: Batch Engine Fd Hashtbl List Log Logs Msg Params Pid Printf Repro_fd Repro_net Repro_obs Repro_sim Time
