lib/core/consensus.ml: Batch Engine Fd Hashtbl List Log Logs Msg Params Pid Repro_fd Repro_net Repro_sim
