lib/core/params.mli: Pid Repro_net Repro_sim Time Topology Wire
