lib/core/msg.mli: App_msg Batch Fmt Pid Repro_net Repro_obs
