open Repro_net

type t = Plain of Msg.t | Frame of Msg.t Rchannel.wire

let payload_bytes = function
  | Plain m -> Msg.payload_bytes m
  | Frame (Rchannel.Data { payload; _ }) -> 8 + Msg.payload_bytes payload
  | Frame (Rchannel.Ack _) -> 16

let kind = function
  | Plain m -> Msg.kind m
  | Frame (Rchannel.Data { payload; _ }) -> Msg.kind payload
  | Frame (Rchannel.Ack _) -> "channel-ack"

let layer = function
  | Plain m -> Msg.layer m
  | Frame (Rchannel.Data { payload; _ }) -> Msg.layer payload
  | Frame (Rchannel.Ack _) -> `Net
