open Repro_net

(** State-machine replication over atomic broadcast.

    The paper's motivating application (§1): replicate a deterministic
    service by funnelling all commands through atomic broadcast, so every
    replica applies the same command sequence. This module packages the
    pattern: it keeps one state per process, a command table keyed by
    message identity (the simulated network carries sizes, not contents),
    and applies commands on adelivery in total order.

    Replicas of crashed processes simply stop advancing; all live replicas
    remain mutually consistent at equal applied counts. *)

type ('state, 'cmd) t

val create :
  Group.t ->
  init:(Pid.t -> 'state) ->
  apply:('state -> 'cmd -> unit) ->
  ?command_bytes:('cmd -> int) ->
  unit ->
  ('state, 'cmd) t
(** Attach a replicated service to a group. [init] builds each process's
    initial state; [apply] must be deterministic. [command_bytes] sizes the
    abcast payload (default 64 bytes per command). Create the service
    before issuing commands, and at most one service per group. *)

val submit : ('state, 'cmd) t -> Pid.t -> 'cmd -> unit
(** Issue a command at a process: it is atomically broadcast and eventually
    applied, in the same position, at every live replica. *)

val state : ('state, 'cmd) t -> Pid.t -> 'state
(** The current state of one replica. *)

val applied : ('state, 'cmd) t -> Pid.t -> int
(** Commands applied at one replica so far. *)

val submitted : ('state, 'cmd) t -> int
(** Commands submitted through this service. *)

val consistent : ('state, 'cmd) t -> fingerprint:('state -> int) -> bool
(** Whether all replicas with equal applied counts have equal fingerprints
    — the replication invariant. Replicas that lag (crashed or still
    catching up) are compared only on the common prefix count, not the
    fingerprint. *)
