open Repro_sim
open Repro_net

(** Application messages submitted to atomic broadcast.

    A message is identified by its origin process and a per-origin sequence
    number; the payload itself is represented only by its size, which is all
    the protocols and the cost model need (§5.1 varies size, not content).
    The abcast timestamp rides along for the early-latency metric
    [L = (min_i t_i) - t0] of §5.1. *)

type id = { origin : Pid.t; seq : int }
(** Globally unique message identity. *)

type t = {
  id : id;
  size : int;  (** Payload bytes (the paper's [l]). *)
  abcast_at : Time.t;  (** Instant the abcast event completed ([t0]). *)
}

val make : origin:Pid.t -> seq:int -> size:int -> abcast_at:Time.t -> t

val compare_id : id -> id -> int
(** Lexicographic on [(origin, seq)] — the deterministic delivery order
    used inside a decided batch. *)

val compare : t -> t -> int
(** {!compare_id} on the messages' identities. *)

val equal_id : id -> id -> bool

val pp_id : id Fmt.t
(** Prints [p1#42]. *)

val pp : t Fmt.t
(** Prints [p1#42(1024B)]. *)

module Id_set : Set.S with type elt = id
(** Sets of message identities (delivered-set bookkeeping). *)
