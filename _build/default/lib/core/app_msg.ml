open Repro_sim
open Repro_net

type id = { origin : Pid.t; seq : int }
type t = { id : id; size : int; abcast_at : Time.t }

let make ~origin ~seq ~size ~abcast_at = { id = { origin; seq }; size; abcast_at }

let compare_id a b =
  match Pid.compare a.origin b.origin with 0 -> Int.compare a.seq b.seq | c -> c

let compare a b = compare_id a.id b.id
let equal_id a b = compare_id a b = 0
let pp_id ppf id = Fmt.pf ppf "%a#%d" Pid.pp id.origin id.seq
let pp ppf m = Fmt.pf ppf "%a(%dB)" pp_id m.id m.size

module Id_set = Set.Make (struct
  type t = id

  let compare = compare_id
end)
