open Repro_net

type violation = { at_process : Pid.t; position : int; description : string }

type t = {
  n : int;
  (* The reference sequence: the longest delivery order seen so far, as a
     growable array. Every process's sequence must be a prefix of it. *)
  mutable reference : App_msg.id array;
  mutable reference_len : int;
  counts : int array; (* position of each process in the reference *)
  seen : (Pid.t * App_msg.id, unit) Hashtbl.t; (* per-process integrity *)
  mutable rev_violations : violation list;
}

let create ~n =
  {
    n;
    reference = Array.make 64 { App_msg.origin = 0; seq = 0 };
    reference_len = 0;
    counts = Array.make n 0;
    seen = Hashtbl.create 1024;
    rev_violations = [];
  }

let record t at_process position description =
  t.rev_violations <- { at_process; position; description } :: t.rev_violations

let push_reference t id =
  if t.reference_len = Array.length t.reference then begin
    let bigger = Array.make (2 * t.reference_len) id in
    Array.blit t.reference 0 bigger 0 t.reference_len;
    t.reference <- bigger
  end;
  t.reference.(t.reference_len) <- id;
  t.reference_len <- t.reference_len + 1

let observe t pid id =
  if Hashtbl.mem t.seen (pid, id) then
    record t pid t.counts.(pid)
      (Fmt.str "duplicate delivery of %a" App_msg.pp_id id)
  else begin
    Hashtbl.add t.seen (pid, id) ();
    let pos = t.counts.(pid) in
    if pos < t.reference_len then begin
      (* Must match the reference order established by a faster process. *)
      if not (App_msg.equal_id t.reference.(pos) id) then
        record t pid pos
          (Fmt.str "order divergence: delivered %a where the reference order has %a"
             App_msg.pp_id id App_msg.pp_id t.reference.(pos))
    end
    else
      (* This process extends the reference. *)
      push_reference t id;
    t.counts.(pid) <- pos + 1
  end

let attach t group = Group.on_delivery group (fun pid m -> observe t pid m.App_msg.id)
let violations t = List.rev t.rev_violations
let delivered_counts t = Array.copy t.counts

let lagging t =
  let longest = Array.fold_left max 0 t.counts in
  List.filter (fun p -> t.counts.(p) < longest) (Pid.all ~n:t.n)

let common_prefix_length t = Array.fold_left min max_int t.counts

let pp_violation ppf v =
  Fmt.pf ppf "%a@%d: %s" Pid.pp v.at_process v.position v.description
