type t = {
  window : int;
  mutable in_flight : int;
  mutable on_space : unit -> unit;
}

let create ~window =
  if window < 1 then invalid_arg "Flow_control.create: window must be >= 1";
  { window; in_flight = 0; on_space = ignore }

let has_room t = t.in_flight < t.window

let acquire t =
  if not (has_room t) then invalid_arg "Flow_control.acquire: window full";
  t.in_flight <- t.in_flight + 1

let release t =
  if t.in_flight > 0 then begin
    t.in_flight <- t.in_flight - 1;
    t.on_space ()
  end

let in_flight t = t.in_flight
let set_on_space t f = t.on_space <- f
