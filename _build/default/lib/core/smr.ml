
module Id_tbl = Hashtbl.Make (struct
  type t = App_msg.id

  let equal = App_msg.equal_id
  let hash (id : App_msg.id) = Hashtbl.hash (id.App_msg.origin, id.App_msg.seq)
end)

type ('state, 'cmd) t = {
  group : Group.t;
  states : 'state array;
  applied : int array;
  commands : 'cmd Id_tbl.t;
  next_seq : int array; (* per-process submission counter, mirrors the
                           replica's admission numbering (offers are FIFO) *)
  command_bytes : 'cmd -> int;
  mutable submitted : int;
}

let create group ~init ~apply ?(command_bytes = fun _ -> 64) () =
  let n = (Group.params group).Params.n in
  let t =
    {
      group;
      states = Array.init n init;
      applied = Array.make n 0;
      commands = Id_tbl.create 1024;
      next_seq = Array.make n 0;
      command_bytes;
      submitted = 0;
    }
  in
  Group.on_delivery group (fun pid m ->
      match Id_tbl.find_opt t.commands m.App_msg.id with
      | Some cmd ->
        apply t.states.(pid) cmd;
        t.applied.(pid) <- t.applied.(pid) + 1
      | None ->
        (* A message not submitted through this service (mixed usage);
           ignore it rather than corrupting the state machines. *)
        ());
  t

let submit t pid cmd =
  let seq = t.next_seq.(pid) in
  t.next_seq.(pid) <- seq + 1;
  Id_tbl.replace t.commands { App_msg.origin = pid; seq } cmd;
  t.submitted <- t.submitted + 1;
  Group.abcast t.group pid ~size:(t.command_bytes cmd)

let state t pid = t.states.(pid)
let applied t pid = t.applied.(pid)
let submitted t = t.submitted

let consistent t ~fingerprint =
  let n = Array.length t.states in
  let groups = Hashtbl.create 4 in
  for pid = 0 to n - 1 do
    let count = t.applied.(pid) in
    let fp = fingerprint t.states.(pid) in
    match Hashtbl.find_opt groups count with
    | Some fp' -> if fp <> fp' then Hashtbl.replace groups (-1) 0
    | None -> Hashtbl.add groups count fp
  done;
  not (Hashtbl.mem groups (-1))
