open Repro_net

(** Online verifier of the atomic broadcast contract.

    Attach one checker to a group and feed it every adelivery; it
    continuously verifies, in O(1) per delivery:

    - {b uniform integrity}: no process delivers the same message twice;
    - {b total order}: the delivery sequences of any two processes are
      prefix-compatible (one is a prefix of the other at all times);
    - {b uniform agreement (eventually)}: {!lagging} reports processes
      whose sequence is behind, so a test can assert it becomes empty.

    Violations are recorded (not raised), so a test can drive the run to
    completion and then assert {!violations} is empty with full context.
    Deliveries from crashed processes may simply stop; that is not a
    violation. *)

type t

type violation = {
  at_process : Pid.t;
  position : int;  (** Index in the process's delivery sequence. *)
  description : string;
}

val create : n:int -> t

val observe : t -> Pid.t -> App_msg.id -> unit
(** Record one adelivery. *)

val attach : t -> Group.t -> unit
(** Convenience: register {!observe} as a delivery observer of the group. *)

val violations : t -> violation list
(** All contract violations seen so far, oldest first. *)

val delivered_counts : t -> int array
(** Per-process number of observed deliveries. *)

val lagging : t -> Pid.t list
(** Processes strictly behind the longest delivery sequence. *)

val common_prefix_length : t -> int
(** Length of the delivery prefix shared by all processes. *)

val pp_violation : violation Fmt.t
