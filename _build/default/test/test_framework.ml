(* Tests for the Cactus-style composition framework: typed ports, dispatch
   cost accounting, module registry. *)

open Repro_sim
open Repro_framework

let make ?(dispatch_cost = Time.span_us 10) () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine in
  let stack = Stack.create ~cpu ~dispatch_cost in
  (engine, cpu, stack)

let test_emit_subscribe () =
  let _, _, stack = make () in
  let port = Event_bus.port (Stack.bus stack) "test" in
  let got = ref [] in
  Event_bus.subscribe port (fun v -> got := v :: !got);
  Event_bus.subscribe port (fun v -> got := (v * 10) :: !got);
  Event_bus.emit port 7;
  Alcotest.(check (list int)) "handlers in subscription order" [ 70; 7 ] !got

let test_emit_charges_cpu () =
  let engine, cpu, stack = make ~dispatch_cost:(Time.span_us 10) () in
  let port = Event_bus.port (Stack.bus stack) "cost" in
  Event_bus.subscribe port ignore;
  ignore
    (Engine.schedule_after engine Time.span_zero (fun () ->
         Event_bus.emit port ();
         Event_bus.emit port ()));
  Engine.run engine;
  Alcotest.(check int) "two dispatch charges" 20_000 (Time.span_to_ns (Cpu.busy_time cpu))

let test_zero_cost_dispatch () =
  let engine, cpu, stack = make ~dispatch_cost:Time.span_zero () in
  let port = Event_bus.port (Stack.bus stack) "free" in
  Event_bus.subscribe port ignore;
  ignore (Engine.schedule_after engine Time.span_zero (fun () -> Event_bus.emit port ()));
  Engine.run engine;
  Alcotest.(check int) "no CPU charged" 0 (Time.span_to_ns (Cpu.busy_time cpu))

let test_emission_count () =
  let _, _, stack = make () in
  let a = Event_bus.port (Stack.bus stack) "a" in
  let b = Event_bus.port (Stack.bus stack) "b" in
  Event_bus.emit a ();
  Event_bus.emit a ();
  Event_bus.emit b ();
  Alcotest.(check int) "crossings counted across ports" 3 (Stack.boundary_crossings stack);
  Alcotest.(check string) "port name" "a" (Event_bus.port_name a)

let test_unsubscribed_port () =
  let _, _, stack = make () in
  let port = Event_bus.port (Stack.bus stack) "silent" in
  Event_bus.emit port 99;
  (* no subscribers: no exception, still counted *)
  Alcotest.(check int) "still counted" 1 (Stack.boundary_crossings stack)

let test_module_registry () =
  let _, _, stack = make () in
  Stack.mount stack { Stack.name = "ABcast"; description = "ordering" };
  Stack.mount stack { Stack.name = "Consensus"; description = "agreement" };
  Alcotest.(check (list string)) "mount order" [ "ABcast"; "Consensus" ]
    (List.map (fun m -> m.Stack.name) (Stack.modules stack))

let test_chained_dispatch_delays_later_work () =
  (* An emission's dispatch charge must push back CPU work submitted
     afterwards — this is how framework overhead becomes latency. *)
  let engine, cpu, stack = make ~dispatch_cost:(Time.span_us 100) () in
  let port = Event_bus.port (Stack.bus stack) "chain" in
  Event_bus.subscribe port ignore;
  let finish = ref 0 in
  ignore
    (Engine.schedule_after engine Time.span_zero (fun () ->
         Event_bus.emit port ();
         Cpu.submit cpu ~cost:(Time.span_us 1) (fun () ->
             finish := Time.to_ns (Engine.now engine))));
  Engine.run engine;
  Alcotest.(check int) "work delayed by dispatch" 101_000 !finish

let () =
  Alcotest.run "framework"
    [
      ( "event-bus",
        [
          Alcotest.test_case "emit/subscribe" `Quick test_emit_subscribe;
          Alcotest.test_case "dispatch cost charged" `Quick test_emit_charges_cpu;
          Alcotest.test_case "zero-cost dispatch" `Quick test_zero_cost_dispatch;
          Alcotest.test_case "emission count" `Quick test_emission_count;
          Alcotest.test_case "no subscribers" `Quick test_unsubscribed_port;
          Alcotest.test_case "dispatch delays later work" `Quick
            test_chained_dispatch_delays_later_work;
        ] );
      ("stack", [ Alcotest.test_case "module registry" `Quick test_module_registry ]);
    ]
