(* The @obs-smoke alias: end-to-end check of the observability pipeline
   through the public CLI. Runs a tiny modular and monolithic experiment
   with --metrics-out/--trace-out, fails if the JSONL is empty or
   unparsable, and cross-checks the per-layer message counts against the
   closed forms of Analysis.Model (§5.2.1). Wired into `dune runtest`. *)

module Jsonl = Repro_obs.Jsonl
module Model = Repro_analysis.Model

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("obs-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run_cli bin args =
  let cmd = String.concat " " (List.map Filename.quote (bin :: args)) in
  let code = Sys.command (cmd ^ " > /dev/null") in
  if code <> 0 then fail "%s exited with %d" cmd code

let parse_file what path =
  let contents = read_file path in
  if String.trim contents = "" then fail "%s JSONL is empty (%s)" what path;
  match Jsonl.parse_lines contents with
  | Ok [] -> fail "%s JSONL has no lines (%s)" what path
  | Ok lines -> lines
  | Error e -> fail "%s JSONL unparsable: %s" what e

let str_field name j = Jsonl.(to_string_opt (member name j))

let counter lines name =
  match
    List.find_opt
      (fun j ->
        str_field "type" j = Some "counter" && str_field "name" j = Some name)
      lines
  with
  | Some j -> (
    match Jsonl.(to_int_opt (member "value" j)) with
    | Some v -> v
    | None -> fail "counter %s has a non-integer value" name)
  | None -> fail "no counter %s in the metrics" name

let gauge lines name =
  match
    List.find_opt
      (fun j -> str_field "type" j = Some "gauge" && str_field "name" j = Some name)
      lines
  with
  | Some j -> (
    match Jsonl.(to_float_opt (member "value" j)) with
    | Some v -> v
    | None -> fail "gauge %s has a non-numeric value" name)
  | None -> fail "no gauge %s in the metrics" name

let () =
  let bin =
    match Sys.argv with
    | [| _; bin |] -> bin
    | _ -> fail "usage: obs_smoke <path-to-repro-binary>"
  in
  let tmp suffix = Filename.temp_file "obs_smoke" suffix in
  let metrics_mod = tmp "_mod.jsonl"
  and trace_mod = tmp "_mod_trace.jsonl"
  and metrics_mono = tmp "_mono.jsonl" in

  (* Modular, unsaturated: M = 1 exactly, so the per-layer counters over
     the whole execution match Model.modular_layer_messages per instance
     with no tolerance. consensus.decisions counts each instance once per
     process, giving the instance count. *)
  run_cli bin
    [
      "run"; "--stack"; "modular"; "-n"; "3"; "--load"; "500"; "--size"; "1024";
      "--warmup"; "0.2"; "--measure"; "0.5"; "--metrics-out"; metrics_mod;
      "--trace-out"; trace_mod;
    ];
  let m = parse_file "modular metrics" metrics_mod in
  let instances =
    let d = counter m "consensus.decisions" in
    if d = 0 || d mod 3 <> 0 then fail "consensus.decisions = %d, not 3k" d;
    d / 3
  in
  List.iter
    (fun (layer, per_instance) ->
      let got = counter m ("net.msgs." ^ layer) in
      if got <> per_instance * instances then
        fail "net.msgs.%s = %d, model says %d x %d instances" layer got
          per_instance instances)
    (Model.modular_layer_messages ~n:3 ~m:1);
  let total =
    List.fold_left (fun acc (l, _) -> acc + counter m ("net.msgs." ^ l)) 0
      (Model.modular_layer_messages ~n:3 ~m:1)
  in
  if total <> Model.modular_messages ~n:3 ~m:1 * instances then
    fail "modular total %d <> modular_messages(3,1) x %d" total instances;

  let t = parse_file "modular trace" trace_mod in
  if
    not
      (List.exists
         (fun j ->
           str_field "type" j = Some "trace" && str_field "phase" j = Some "decide")
         t)
  then fail "trace has no decide event";

  (* Monolithic, loaded enough that instances overlap (the closed form's
     steady-state assumption): the window-normalized gauge matches
     monolithic_messages = 2(n-1) = 4 within noise. *)
  run_cli bin
    [
      "run"; "--stack"; "monolithic"; "-n"; "3"; "--load"; "3000"; "--size";
      "1024"; "--warmup"; "0.5"; "--measure"; "1"; "--metrics-out"; metrics_mono;
    ];
  let mono = parse_file "monolithic metrics" metrics_mono in
  let per_instance = gauge mono "run.msgs_per_instance" in
  let expected = float_of_int (Model.monolithic_messages ~n:3) in
  if Float.abs (per_instance -. expected) > 0.2 then
    fail "monolithic msgs/instance %.3f, model says %.1f" per_instance expected;
  if counter mono "net.msgs.abcast" = 0 then
    fail "monolithic run recorded no abcast-layer traffic";

  List.iter Sys.remove [ metrics_mod; trace_mod; metrics_mono ];
  print_endline "obs-smoke: OK (JSONL parsable, per-layer counts match Model)"
