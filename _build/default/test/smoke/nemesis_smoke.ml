(* The @nemesis-smoke alias: end-to-end check of the fault-injection
   pipeline through the public CLI. Runs one scripted nemesis plan, checks
   that invalid plans are rejected before any simulation starts (nonzero
   exit, diagnostic on stderr), and runs a tiny deterministic campaign
   whose JSONL verdicts must all be passes. Wired into `dune runtest`. *)

module Jsonl = Repro_obs.Jsonl

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("nemesis-smoke: FAIL: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let command bin args =
  let cmd = String.concat " " (List.map Filename.quote (bin :: args)) in
  Sys.command (cmd ^ " > /dev/null 2> /dev/null")

let run_cli bin args =
  let code = command bin args in
  if code <> 0 then
    fail "%s exited with %d" (String.concat " " (bin :: args)) code

let expect_rejection bin args ~what =
  let code = command bin args in
  if code = 0 then fail "%s was accepted (exit 0), expected a rejection" what

let str_field name j = Jsonl.(to_string_opt (member name j))

let () =
  let bin = if Array.length Sys.argv > 1 then Sys.argv.(1) else "repro" in
  let tmp = Filename.temp_file "nemesis_smoke" "" in
  Sys.remove tmp;
  (* a fresh path prefix *)
  let plan = tmp ^ ".plan" and bad = tmp ^ ".bad" and out = tmp ^ ".jsonl" in

  (* A scripted run: coordinator crash plus a healed loss window must still
     yield a passing verdict on both full stacks. *)
  write_file plan
    "# nemesis-smoke plan\nat 100ms loss 0.02\nat 400ms loss 0\nat 500ms crash p1\n";
  List.iter
    (fun stack ->
      run_cli bin [ "nemesis"; "--fault-plan"; plan; "--stack"; stack; "-n"; "3" ])
    [ "modular"; "monolithic" ];

  (* Invalid plans fail fast — before any simulation — with nonzero exit:
     a pid out of range, a syntax error, and a missing file. *)
  write_file bad "at 100ms crash p9\n";
  expect_rejection bin
    [ "nemesis"; "--fault-plan"; bad; "-n"; "3" ]
    ~what:"plan with out-of-range pid";
  write_file bad "at 100ms explode p1\n";
  expect_rejection bin
    [ "nemesis"; "--fault-plan"; bad; "-n"; "3" ]
    ~what:"plan with unknown action";
  expect_rejection bin
    [ "nemesis"; "--fault-plan"; tmp ^ ".does-not-exist"; "-n"; "3" ]
    ~what:"missing plan file";

  (* A tiny deterministic campaign: every verdict in the JSONL is a pass. *)
  run_cli bin [ "campaign"; "-n"; "3"; "--campaign-seeds"; "2"; "--out"; out ];
  let lines =
    match Jsonl.parse_lines (read_file out) with
    | Ok [] -> fail "campaign JSONL has no lines (%s)" out
    | Ok lines -> lines
    | Error e -> fail "campaign JSONL unparsable: %s" e
  in
  let verdicts = List.filter (fun j -> str_field "type" j = Some "verdict") lines in
  if List.length verdicts <> 6 then
    fail "expected 6 verdicts (2 seeds x 3 stacks), got %d" (List.length verdicts);
  List.iter
    (fun j ->
      match str_field "result" j with
      | Some "pass" -> ()
      | r ->
        fail "seed %s stack %s: result %s"
          (Option.value ~default:"?" (str_field "seed" j))
          (Option.value ~default:"?" (str_field "stack" j))
          (Option.value ~default:"none" r))
    verdicts;
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ plan; bad; out ];
  print_endline "nemesis-smoke: OK"
