(* Tests for the reliable-channel layer: exactly-once FIFO delivery over
   lossy links — the construction that justifies the paper's §2.1
   quasi-reliable channel assumption. *)

open Repro_sim
open Repro_net

type world = {
  engine : Engine.t;
  net : string Rchannel.wire Network.t;
  channels : string Rchannel.t array;
  received : (Pid.t * string) list ref array;
}

let frame_bytes = function
  | Rchannel.Data { payload; _ } -> 16 + String.length payload
  | Rchannel.Ack _ -> 16

let make ?(n = 3) ?(loss = 0.0) ?(seed = 0) ?rto () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine ~n ~payload_bytes:frame_bytes () in
  Network.set_loss_rate net loss;
  let received = Array.init n (fun _ -> ref []) in
  let channels =
    Array.init n (fun me ->
        Rchannel.create engine ~me ~n
          ~send_raw:(fun ~dst frame -> Network.send net ~src:me ~dst frame)
          ~deliver:(fun ~src payload ->
            received.(me) := (src, payload) :: !(received.(me)))
          ?rto ())
  in
  Array.iteri
    (fun me ch ->
      Network.register net me (fun ~src frame -> Rchannel.receive_raw ch ~src frame))
    channels;
  { engine; net; channels; received }

let got w p = List.rev !(w.received.(p))

let test_lossless_passthrough () =
  let w = make () in
  Rchannel.send w.channels.(0) ~dst:1 "a";
  Rchannel.send w.channels.(0) ~dst:1 "b";
  Engine.run w.engine;
  Alcotest.(check (list (pair int string))) "in order" [ (0, "a"); (0, "b") ] (got w 1);
  Alcotest.(check int) "no retransmissions without loss" 0
    (Rchannel.retransmissions w.channels.(0))

let test_self_send () =
  let w = make () in
  Rchannel.send w.channels.(2) ~dst:2 "me";
  Alcotest.(check (list (pair int string))) "local" [ (2, "me") ] (got w 2)

let test_delivery_under_heavy_loss () =
  let w = make ~loss:0.4 ~seed:11 ~rto:(Time.span_ms 5) () in
  let count = 200 in
  for i = 1 to count do
    Rchannel.send w.channels.(0) ~dst:1 (string_of_int i)
  done;
  (* Run long enough for retransmissions to push everything through. *)
  Engine.run_until w.engine (Time.of_ns 60_000_000_000);
  let received = got w 1 in
  Alcotest.(check int) "all delivered despite 40% loss" count (List.length received);
  Alcotest.(check (list string)) "exactly once, FIFO"
    (List.init count (fun i -> string_of_int (i + 1)))
    (List.map snd received);
  Alcotest.(check bool) "losses actually happened (retransmissions > 0)" true
    (Rchannel.retransmissions w.channels.(0) > 0);
  Alcotest.(check int) "everything acknowledged in the end" 0
    (Rchannel.unacked w.channels.(0) ~dst:1)

let test_bidirectional_and_crossing () =
  let w = make ~loss:0.3 ~seed:3 ~rto:(Time.span_ms 5) () in
  for i = 1 to 50 do
    Rchannel.send w.channels.(0) ~dst:1 (Printf.sprintf "a%d" i);
    Rchannel.send w.channels.(1) ~dst:0 (Printf.sprintf "b%d" i);
    Rchannel.send w.channels.(2) ~dst:0 (Printf.sprintf "c%d" i)
  done;
  Engine.run_until w.engine (Time.of_ns 60_000_000_000);
  let from src p = List.filter_map (fun (s, x) -> if s = src then Some x else None) (got w p) in
  Alcotest.(check (list string)) "p1->p2 FIFO"
    (List.init 50 (fun i -> Printf.sprintf "a%d" (i + 1)))
    (from 0 1);
  Alcotest.(check (list string)) "p2->p1 FIFO"
    (List.init 50 (fun i -> Printf.sprintf "b%d" (i + 1)))
    (from 1 0);
  Alcotest.(check (list string)) "p3->p1 FIFO"
    (List.init 50 (fun i -> Printf.sprintf "c%d" (i + 1)))
    (from 2 0)

let test_halt_stops_retransmission () =
  let w = make ~loss:0.99999 () in
  (* Loss rate ~1: nothing gets through; halting must silence the timers. *)
  Network.set_loss_rate w.net 0.0;
  Network.cut w.net ~src:0 ~dst:1;
  Rchannel.send w.channels.(0) ~dst:1 "stuck";
  Engine.run_until w.engine (Time.of_ns 100_000_000);
  Alcotest.(check bool) "retransmitting while cut" true
    (Rchannel.retransmissions w.channels.(0) > 0);
  Rchannel.halt w.channels.(0);
  let before = Rchannel.retransmissions w.channels.(0) in
  Engine.run_until w.engine (Time.of_ns 300_000_000);
  Alcotest.(check int) "no retransmissions after halt" before
    (Rchannel.retransmissions w.channels.(0));
  Alcotest.(check int) "engine quiesces" 0 (Engine.pending w.engine)

(* Property: for any loss rate and workload, delivery is exactly-once FIFO. *)
let prop_reliable_fifo =
  QCheck.Test.make ~name:"exactly-once FIFO for any loss rate" ~count:60
    QCheck.(triple (int_range 1 80) (int_bound 700) (int_bound 9999))
    (fun (msgs, loss_millis, seed) ->
      let loss = float_of_int loss_millis /. 1000.0 in
      let w = make ~loss ~seed ~rto:(Time.span_ms 4) () in
      for i = 1 to msgs do
        Rchannel.send w.channels.(0) ~dst:2 (string_of_int i)
      done;
      Engine.run_until w.engine (Time.of_ns 120_000_000_000);
      List.map snd (got w 2) = List.init msgs (fun i -> string_of_int (i + 1)))

let () =
  Alcotest.run "rchannel"
    [
      ( "reliable-channels",
        [
          Alcotest.test_case "lossless passthrough" `Quick test_lossless_passthrough;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "heavy loss" `Quick test_delivery_under_heavy_loss;
          Alcotest.test_case "bidirectional crossing traffic" `Quick
            test_bidirectional_and_crossing;
          Alcotest.test_case "halt stops retransmission" `Quick
            test_halt_stops_retransmission;
          QCheck_alcotest.to_alcotest prop_reliable_fifo;
        ] );
    ]
