(* Tests for the observability layer (lib/obs): histogram bucketing,
   percentile summaries, JSONL round-trips, and — the property everything
   else depends on — that observing a run changes nothing about it. *)

open Repro_sim
open Repro_core
module Obs = Repro_obs.Obs
module Histogram = Repro_obs.Histogram
module Jsonl = Repro_obs.Jsonl
module Stats = Repro_obs.Stats

(* ---- Histogram ---- *)

let test_histogram_buckets () =
  let h = Histogram.create ~edges:[| 1.0; 2.0; 5.0 |] () in
  List.iter (Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0; 7.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  (* A value lands in the first bucket with v <= edge; beyond the last
     edge is the overflow bucket. 1.0 is on the edge: first bucket. *)
  let expected = [ (Some 1.0, 2); (Some 2.0, 1); (Some 5.0, 1); (None, 1) ] in
  Alcotest.(check (list (pair (option (float 1e-9)) int)))
    "per-bucket counts" expected (Histogram.buckets h)

let test_histogram_bad_edges () =
  Alcotest.check_raises "non-increasing edges rejected"
    (Invalid_argument "Histogram.create: edges must be strictly increasing")
    (fun () -> ignore (Histogram.create ~edges:[| 1.0; 1.0 |] ()))

let test_default_edges_ascending () =
  let e = Histogram.default_edges in
  Alcotest.(check bool) "at least a few buckets" true (Array.length e > 4);
  for i = 1 to Array.length e - 1 do
    Alcotest.(check bool) "strictly increasing" true (e.(i) > e.(i - 1))
  done

let test_histogram_summary () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i)
  done;
  let s = Histogram.summary h in
  Alcotest.(check int) "count" 100 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.Stats.mean;
  (* Exact percentiles over the retained samples, not bucket edges. *)
  Alcotest.(check (float 1e-9)) "p50" 50.5 s.Stats.p50;
  Alcotest.(check (float 1e-6)) "p95" 95.05 s.Stats.p95;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 100.0 s.Stats.max

(* ---- Sink basics ---- *)

let test_counters_and_gauges () =
  let obs = Obs.create () in
  Obs.incr obs "a.x";
  Obs.incr obs ~by:41 "a.x";
  Obs.incr obs "b.y";
  Obs.set_gauge obs "g" 1.5;
  Obs.set_gauge obs "g" 2.5;
  Alcotest.(check int) "counter accumulates" 42 (Obs.counter_value obs "a.x");
  Alcotest.(check int) "unknown counter is 0" 0 (Obs.counter_value obs "nope");
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("a.x", 42); ("b.y", 1) ]
    (Obs.counters obs);
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 2.5)
    (Obs.gauge_value obs "g")

let test_noop_records_nothing () =
  Alcotest.(check bool) "noop disabled" false (Obs.enabled Obs.noop);
  Obs.incr Obs.noop "a";
  Obs.set_gauge Obs.noop "g" 1.0;
  Obs.observe Obs.noop "h" 1.0;
  Obs.event Obs.noop ~pid:0 ~layer:`Net ~phase:"tx" ();
  Alcotest.(check int) "no counter" 0 (Obs.counter_value Obs.noop "a");
  Alcotest.(check (option (float 0.))) "no gauge" None (Obs.gauge_value Obs.noop "g");
  Alcotest.(check int) "no events" 0 (Obs.event_count Obs.noop)

(* ---- JSONL round-trip ---- *)

let str_field name j = Jsonl.(to_string_opt (member name j))
let int_field name j = Jsonl.(to_int_opt (member name j))

let make_populated_obs () =
  let engine = Engine.create () in
  let obs = Obs.of_engine engine in
  Obs.incr obs ~by:7 "net.msgs.consensus";
  Obs.set_gauge obs "run.throughput" 123.5;
  Obs.observe obs "abcast.e2e_ms" 1.25;
  Obs.observe obs "abcast.e2e_ms" 9999.0;
  ignore
    (Engine.schedule_after engine (Time.span_us 3) (fun () ->
         Obs.event obs ~pid:2 ~layer:`Consensus ~phase:"propose" ~detail:"i0 r1" ()));
  Engine.run engine;
  obs

let test_jsonl_metrics_roundtrip () =
  let obs = make_populated_obs () in
  let lines = Jsonl.metric_lines ~tags:[ ("stack", "modular") ] obs in
  Alcotest.(check int) "one line per metric" 3 (List.length lines);
  let parsed =
    match Jsonl.parse_lines (String.concat "\n" lines) with
    | Ok l -> l
    | Error e -> Alcotest.failf "unparsable metrics JSONL: %s" e
  in
  let find ty name =
    match
      List.find_opt
        (fun j -> str_field "type" j = Some ty && str_field "name" j = Some name)
        parsed
    with
    | Some j -> j
    | None -> Alcotest.failf "no %s line for %s" ty name
  in
  let c = find "counter" "net.msgs.consensus" in
  Alcotest.(check (option int)) "counter value" (Some 7) (int_field "value" c);
  Alcotest.(check (option string)) "tag on every line" (Some "modular")
    (str_field "stack" c);
  let h = find "histogram" "abcast.e2e_ms" in
  Alcotest.(check (option int)) "histogram count" (Some 2) (int_field "count" h);
  (match Jsonl.member "buckets" h with
  | Some (Jsonl.List buckets) ->
    (* Per-bucket [edge, count] pairs; the overflow bucket has a null edge
       and holds the out-of-range sample. *)
    (match List.rev buckets with
    | Jsonl.List [ Jsonl.Null; Jsonl.Int overflow ] :: _ ->
      Alcotest.(check int) "overflow bucket count" 1 overflow
    | _ -> Alcotest.fail "last bucket is not [null, count]")
  | _ -> Alcotest.fail "histogram line has no buckets array");
  match find "gauge" "run.throughput" with
  | g ->
    Alcotest.(check (option (float 1e-9))) "gauge value" (Some 123.5)
      Jsonl.(to_float_opt (member "value" g))

let test_jsonl_trace_roundtrip () =
  let obs = make_populated_obs () in
  let lines = Jsonl.trace_lines obs in
  Alcotest.(check int) "one line per event" 1 (List.length lines);
  let j =
    match Jsonl.parse (List.hd lines) with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparsable trace line: %s" e
  in
  Alcotest.(check (option string)) "type" (Some "trace") (str_field "type" j);
  Alcotest.(check (option int)) "virtual-clock stamp" (Some 3000)
    (int_field "at_ns" j);
  Alcotest.(check (option int)) "pid" (Some 2) (int_field "pid" j);
  Alcotest.(check (option string)) "layer" (Some "consensus") (str_field "layer" j);
  Alcotest.(check (option string)) "phase" (Some "propose") (str_field "phase" j);
  Alcotest.(check (option string)) "detail" (Some "i0 r1") (str_field "detail" j)

let test_jsonl_parse_errors () =
  (match Jsonl.parse "{\"a\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object accepted");
  match Jsonl.parse_lines "{\"a\":1}\nnot json\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad line accepted"

(* ---- Observation does not perturb the run ---- *)

(* The whole design contract (DESIGN.md §7): an instrumented run must have
   the identical virtual-time history to an uninstrumented one. Run the
   same modular group twice, once observed, and compare everything the
   simulation exposes. *)
let run_modular ~obs =
  let params = Params.default ~n:3 in
  let group = Group.create ~kind:Replica.Modular ~params ~obs () in
  for i = 0 to 9 do
    Group.abcast group (i mod 3) ~size:(256 * (i + 1))
  done;
  ignore (Group.run_until_quiescent group ~limit:(Time.span_s 2) ());
  group

let test_noop_sink_changes_nothing () =
  let plain = run_modular ~obs:Obs.noop in
  let obs = Obs.create () in
  let observed = run_modular ~obs in
  let ids g =
    List.concat_map
      (fun p ->
        List.map
          (fun (id : App_msg.id) -> (id.App_msg.origin, id.App_msg.seq))
          (Group.deliveries g p))
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list (pair int int)))
    "same delivery order at every process" (ids plain) (ids observed);
  let final g = Time.to_ns (Engine.now (Group.engine g)) in
  Alcotest.(check int) "same final virtual time" (final plain) (final observed);
  let wire g = (Repro_net.Net_stats.snapshot (Group.stats g)).Repro_net.Net_stats.messages in
  Alcotest.(check int) "same wire traffic" (wire plain) (wire observed);
  let lat g =
    List.map
      (fun (r : Group.latency_record) ->
        ((r.Group.id.App_msg.origin, r.Group.id.App_msg.seq),
         Time.to_ns r.Group.first_delivery))
      (Group.latencies g)
  in
  Alcotest.(check (list (pair (pair int int) int)))
    "same latency records" (lat plain) (lat observed);
  (* And the observation itself saw the run: per-layer traffic matches the
     Net_stats total, and decisions were recorded for every instance. *)
  let by_layer =
    List.fold_left
      (fun acc l -> acc + Obs.counter_value obs ("net.msgs." ^ Obs.layer_name l))
      0 Obs.all_layers
  in
  Alcotest.(check int) "layer counters partition the wire total" (wire observed)
    by_layer;
  Alcotest.(check bool) "decisions recorded" true
    (Obs.counter_value obs "consensus.decisions" > 0);
  Alcotest.(check bool) "trace non-empty" true (Obs.event_count obs > 0)

(* The analytical cross-check of the ISSUE: per-layer counts of a
   deterministic n=3 modular run against Analysis.Model, layer by layer. *)
let test_layer_counts_match_model () =
  let obs = Obs.create () in
  let params = Params.default ~n:3 in
  let group = Group.create ~kind:Replica.Modular ~params ~obs () in
  Group.abcast group 0 ~size:1024;
  ignore (Group.run_until_quiescent group ~limit:(Time.span_s 2) ());
  (* One instance, M = 1: every process decided it exactly once. *)
  Alcotest.(check int) "3 decisions = 1 instance" 3
    (Obs.counter_value obs "consensus.decisions");
  List.iter
    (fun (layer, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "net.msgs.%s" layer)
        expected
        (Obs.counter_value obs ("net.msgs." ^ layer)))
    (Repro_analysis.Model.modular_layer_messages ~n:3 ~m:1);
  let total =
    List.fold_left
      (fun acc (l, _) -> acc + Obs.counter_value obs ("net.msgs." ^ l))
      0
      (Repro_analysis.Model.modular_layer_messages ~n:3 ~m:1)
  in
  Alcotest.(check int) "sum = modular_messages"
    (Repro_analysis.Model.modular_messages ~n:3 ~m:1)
    total

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_histogram_buckets;
          Alcotest.test_case "bad edges rejected" `Quick test_histogram_bad_edges;
          Alcotest.test_case "default edges ascending" `Quick
            test_default_edges_ascending;
          Alcotest.test_case "percentile summary" `Quick test_histogram_summary;
        ] );
      ( "sink",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "noop records nothing" `Quick test_noop_records_nothing;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "metrics round-trip" `Quick test_jsonl_metrics_roundtrip;
          Alcotest.test_case "trace round-trip" `Quick test_jsonl_trace_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_jsonl_parse_errors;
        ] );
      ( "non-perturbation",
        [
          Alcotest.test_case "noop sink changes nothing" `Quick
            test_noop_sink_changes_nothing;
          Alcotest.test_case "layer counts match Model" `Quick
            test_layer_counts_match_model;
        ] );
    ]
