(* Tests for the simulated network: delivery, timing, FIFO channels, crash
   and partition injection, traffic statistics. *)

open Repro_sim
open Repro_net

type msg = { label : string; bytes : int }

let make_net ?(n = 3) ?(wire = Wire.default) () =
  let engine = Engine.create () in
  let net =
    Network.create engine ~wire ~kind_of:(fun m -> m.label) ~n
      ~payload_bytes:(fun m -> m.bytes)
      ()
  in
  (engine, net)

let collect net pid log =
  Network.register net pid (fun ~src m ->
      log := (src, m.label, Time.to_ns (Engine.now (Network.engine net))) :: !log)

(* ---- Wire model ---- *)

let test_wire_model () =
  let w = Wire.default in
  Alcotest.(check int) "on-wire bytes add headers" (1000 + w.Wire.header_bytes)
    (Wire.on_wire_bytes w ~payload_bytes:1000);
  (* Gigabit: 125 bytes per microsecond. *)
  let tx = Wire.tx_time w ~payload_bytes:(125_000 - w.Wire.header_bytes) in
  Alcotest.(check int) "tx time at bandwidth" 1_000_000 (Time.span_to_ns tx);
  let c0 = Wire.send_cpu_cost w ~payload_bytes:0 in
  let c1 = Wire.send_cpu_cost w ~payload_bytes:1024 in
  Alcotest.(check bool) "send cost grows with size" true
    (Time.span_to_ns c1 > Time.span_to_ns c0);
  Alcotest.(check int) "fixed part" (Time.span_to_ns w.Wire.send_cpu_fixed)
    (Time.span_to_ns c0)

(* ---- Basic delivery ---- *)

let test_delivery () =
  let engine, net = make_net () in
  let log = ref [] in
  collect net 1 log;
  Network.send net ~src:0 ~dst:1 { label = "hello"; bytes = 100 };
  Engine.run engine;
  match !log with
  | [ (src, label, at) ] ->
    Alcotest.(check int) "from p1" 0 src;
    Alcotest.(check string) "payload" "hello" label;
    (* send cpu + tx + propagation + recv cpu, all > 0 *)
    Alcotest.(check bool) "took positive time" true (at > 0)
  | other -> Alcotest.failf "expected one delivery, got %d" (List.length other)

let test_delivery_timing () =
  let engine, net = make_net () in
  let w = Network.wire net in
  let log = ref [] in
  collect net 1 log;
  Network.send net ~src:0 ~dst:1 { label = "m"; bytes = 1000 };
  Engine.run engine;
  let expected =
    Time.span_to_ns (Wire.send_cpu_cost w ~payload_bytes:1000)
    + Time.span_to_ns (Wire.tx_time w ~payload_bytes:1000)
    + Time.span_to_ns w.Wire.propagation
    + Time.span_to_ns (Wire.recv_cpu_cost w ~payload_bytes:1000)
  in
  match !log with
  | [ (_, _, at) ] -> Alcotest.(check int) "end-to-end latency decomposition" expected at
  | _ -> Alcotest.fail "expected one delivery"

let test_fifo_per_link () =
  let engine, net = make_net () in
  let log = ref [] in
  collect net 1 log;
  for i = 1 to 20 do
    Network.send net ~src:0 ~dst:1 { label = string_of_int i; bytes = 100 * i }
  done;
  Engine.run engine;
  let labels = List.rev_map (fun (_, l, _) -> l) !log in
  Alcotest.(check (list string)) "FIFO order" (List.init 20 (fun i -> string_of_int (i + 1)))
    labels

let test_self_send_local () =
  let engine, net = make_net () in
  let log = ref [] in
  collect net 0 log;
  Network.send net ~src:0 ~dst:0 { label = "self"; bytes = 50 };
  Engine.run engine;
  Alcotest.(check int) "delivered locally" 1 (List.length !log);
  Alcotest.(check int) "not counted in stats" 0
    (Net_stats.snapshot (Network.stats net)).Net_stats.messages

let test_send_to_others () =
  let engine, net = make_net ~n:4 () in
  let logs = Array.init 4 (fun _ -> ref []) in
  List.iter (fun p -> collect net p logs.(p)) (Pid.all ~n:4);
  Network.send_to_others net ~src:2 { label = "b"; bytes = 10 };
  Engine.run engine;
  Alcotest.(check (list int)) "everyone but sender got one" [ 1; 1; 0; 1 ]
    (List.map (fun p -> List.length !(logs.(p))) (Pid.all ~n:4))

let test_multicast_marshal_once () =
  (* Two destinations must cost one per-byte charge at the sender: the
     second copy leaves earlier than two independent sends would allow. *)
  let engine, net = make_net ~n:3 () in
  let w = Network.wire net in
  let log = ref [] in
  collect net 2 log;
  Network.multicast net ~src:0 ~dsts:[ 1; 2 ] { label = "mc"; bytes = 100_000 };
  Engine.run engine;
  let per_byte_once =
    (2 * Time.span_to_ns w.Wire.send_cpu_fixed)
    + (100_000 * w.Wire.send_cpu_per_byte_ns)
    + (2 * Time.span_to_ns (Wire.tx_time w ~payload_bytes:100_000))
    + Time.span_to_ns w.Wire.propagation
    + Time.span_to_ns (Wire.recv_cpu_cost w ~payload_bytes:100_000)
  in
  match !log with
  | [ (_, _, at) ] -> Alcotest.(check int) "marshal charged once" per_byte_once at
  | _ -> Alcotest.fail "expected one delivery at p3"

(* ---- Crashes ---- *)

let test_crash_stops_send_and_receive () =
  let engine, net = make_net () in
  let log1 = ref [] and log2 = ref [] in
  collect net 1 log1;
  collect net 2 log2;
  Network.crash net 0;
  Network.send net ~src:0 ~dst:1 { label = "x"; bytes = 10 };
  Network.send net ~src:1 ~dst:0 { label = "y"; bytes = 10 };
  Network.send net ~src:1 ~dst:2 { label = "z"; bytes = 10 };
  Engine.run engine;
  Alcotest.(check bool) "crashed cannot send" true (!log1 = []);
  Alcotest.(check int) "others unaffected" 1 (List.length !log2);
  Alcotest.(check bool) "crashed flag" true (Network.is_crashed net 0)

let test_crash_after_sends_partial_broadcast () =
  let engine, net = make_net ~n:5 () in
  let logs = Array.init 5 (fun _ -> ref []) in
  List.iter (fun p -> collect net p logs.(p)) (Pid.all ~n:5);
  Network.crash_after_sends net 0 2;
  Network.send_to_others net ~src:0 { label = "partial"; bytes = 10 };
  Engine.run engine;
  let received = List.map (fun p -> List.length !(logs.(p))) (Pid.all ~n:5) in
  Alcotest.(check (list int)) "only first two destinations reached" [ 0; 1; 1; 0; 0 ]
    received;
  Alcotest.(check bool) "sender now crashed" true (Network.is_crashed net 0)

let test_in_flight_message_to_crashed_dropped () =
  let engine, net = make_net () in
  let log = ref [] in
  collect net 1 log;
  Network.send net ~src:0 ~dst:1 { label = "late"; bytes = 10 };
  (* Crash the receiver before the message can arrive. *)
  Network.crash net 1;
  Engine.run engine;
  Alcotest.(check bool) "dropped at crashed receiver" true (!log = [])

(* ---- Partitions ---- *)

let test_cut_and_heal () =
  let engine, net = make_net () in
  let log = ref [] in
  collect net 1 log;
  Network.cut net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 { label = "lost"; bytes = 10 };
  Engine.run engine;
  Alcotest.(check bool) "cut link drops" true (!log = []);
  Network.heal net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 { label = "after"; bytes = 10 };
  Engine.run engine;
  Alcotest.(check int) "healed link delivers" 1 (List.length !log)

let test_cut_is_directional () =
  let engine, net = make_net () in
  let log0 = ref [] and log1 = ref [] in
  collect net 0 log0;
  collect net 1 log1;
  Network.cut net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 { label = "x"; bytes = 10 };
  Network.send net ~src:1 ~dst:0 { label = "y"; bytes = 10 };
  Engine.run engine;
  Alcotest.(check bool) "forward cut" true (!log1 = []);
  Alcotest.(check int) "reverse open" 1 (List.length !log0)

let test_partition_and_heal_all () =
  let engine, net = make_net () in
  let logs = Array.init 3 (fun _ -> ref []) in
  List.iter (fun p -> collect net p logs.(p)) (Pid.all ~n:3);
  Network.partition net [ [ 0 ]; [ 1; 2 ] ];
  Network.send net ~src:0 ~dst:1 { label = "cross-fwd"; bytes = 10 };
  Network.send net ~src:2 ~dst:0 { label = "cross-rev"; bytes = 10 };
  Network.send net ~src:1 ~dst:2 { label = "intra"; bytes = 10 };
  Engine.run engine;
  Alcotest.(check bool) "cross-block 0->1 dropped" true (!(logs.(1)) = []);
  Alcotest.(check bool) "cross-block 2->0 dropped" true (!(logs.(0)) = []);
  Alcotest.(check int) "intra-block 1->2 delivered" 1 (List.length !(logs.(2)));
  Network.heal_all net;
  Network.send net ~src:0 ~dst:1 { label = "after-fwd"; bytes = 10 };
  Network.send net ~src:2 ~dst:0 { label = "after-rev"; bytes = 10 };
  Engine.run engine;
  Alcotest.(check int) "healed 0->1 delivers" 1 (List.length !(logs.(1)));
  Alcotest.(check int) "healed 2->0 delivers" 1 (List.length !(logs.(0)))

let test_extra_delay () =
  let engine, net = make_net () in
  let log = ref [] in
  collect net 1 log;
  Network.send net ~src:0 ~dst:1 { label = "base"; bytes = 100 };
  Engine.run engine;
  let base_latency =
    match !log with [ (_, _, at) ] -> at | _ -> Alcotest.fail "expected one delivery"
  in
  (* Same message, same (idle) CPUs, plus a 5 ms spike: arrival must shift by
     exactly the configured extra delay. *)
  let sent_at = Time.to_ns (Engine.now engine) in
  Network.set_extra_delay net (Time.span_ms 5);
  log := [];
  Network.send net ~src:0 ~dst:1 { label = "slow"; bytes = 100 };
  Engine.run engine;
  let slow_latency =
    match !log with [ (_, _, at) ] -> at - sent_at | _ -> Alcotest.fail "expected one delivery"
  in
  Alcotest.(check int) "delay spike shifts arrival by exactly 5 ms"
    (base_latency + Time.span_to_ns (Time.span_ms 5))
    slow_latency;
  (* Resetting to zero restores the baseline. *)
  let sent_at = Time.to_ns (Engine.now engine) in
  Network.set_extra_delay net Time.span_zero;
  log := [];
  Network.send net ~src:0 ~dst:1 { label = "back"; bytes = 100 };
  Engine.run engine;
  let back_latency =
    match !log with [ (_, _, at) ] -> at - sent_at | _ -> Alcotest.fail "expected one delivery"
  in
  Alcotest.(check int) "clearing the spike restores baseline latency" base_latency back_latency

(* ---- Topology ---- *)

let test_topology_uniform () =
  let t = Topology.uniform (Time.span_us 50) in
  Alcotest.(check int) "same everywhere" 50_000
    (Time.span_to_ns (Topology.latency t ~src:0 ~dst:5))

let test_topology_racks () =
  let t = Topology.racks ~rack_size:2 ~intra:(Time.span_us 10) ~inter:(Time.span_us 500) in
  Alcotest.(check int) "same rack" 10_000 (Time.span_to_ns (Topology.latency t ~src:0 ~dst:1));
  Alcotest.(check int) "cross rack" 500_000
    (Time.span_to_ns (Topology.latency t ~src:1 ~dst:2));
  Alcotest.check_raises "rack_size >= 1"
    (Invalid_argument "Topology.racks: rack_size must be >= 1") (fun () ->
      ignore (Topology.racks ~rack_size:0 ~intra:Time.span_zero ~inter:Time.span_zero))

let test_topology_star () =
  let t = Topology.star ~center:0 ~near:(Time.span_us 10) ~far:(Time.span_us 200) in
  Alcotest.(check int) "to center" 10_000 (Time.span_to_ns (Topology.latency t ~src:2 ~dst:0));
  Alcotest.(check int) "from center" 10_000
    (Time.span_to_ns (Topology.latency t ~src:0 ~dst:2));
  Alcotest.(check int) "spoke to spoke" 200_000
    (Time.span_to_ns (Topology.latency t ~src:1 ~dst:2))

let test_topology_matrix () =
  let m =
    [|
      [| Time.span_zero; Time.span_us 1 |];
      [| Time.span_us 7; Time.span_zero |];
    |]
  in
  let t = Topology.of_matrix m in
  Alcotest.(check int) "asymmetric" 7_000 (Time.span_to_ns (Topology.latency t ~src:1 ~dst:0));
  Alcotest.check_raises "square required"
    (Invalid_argument "Topology.of_matrix: matrix not square") (fun () ->
      ignore (Topology.of_matrix [| [| Time.span_zero |]; [||] |]))

let test_network_uses_topology () =
  (* Two receivers at very different distances: the far one's delivery must
     arrive exactly (far - near) later. *)
  let engine = Engine.create () in
  let topology = Topology.star ~center:0 ~near:(Time.span_us 10) ~far:(Time.span_us 10) in
  ignore topology;
  let t =
    Topology.of_matrix
      [|
        [| Time.span_zero; Time.span_us 10; Time.span_ms 5 |];
        [| Time.span_us 10; Time.span_zero; Time.span_us 10 |];
        [| Time.span_ms 5; Time.span_us 10; Time.span_zero |];
      |]
  in
  let net =
    Network.create engine ~topology:t ~n:3 ~payload_bytes:(fun (_ : msg) -> 100) ()
  in
  let at = Array.make 3 0 in
  List.iter
    (fun p ->
      Network.register net p (fun ~src:_ _ -> at.(p) <- Time.to_ns (Engine.now engine)))
    [ 1; 2 ];
  Network.send_to_others net ~src:0 { label = "m"; bytes = 100 };
  Engine.run engine;
  (* Identical costs except propagation (and p3's copy serializes after
     p2's on the NIC). *)
  let tx = Time.span_to_ns (Wire.tx_time (Network.wire net) ~payload_bytes:100) in
  Alcotest.(check int) "far link slower by latency difference - nic gap"
    (Time.span_to_ns (Time.span_ms 5) - Time.span_to_ns (Time.span_us 10) + tx)
    (at.(2) - at.(1))

let test_jitter_preserves_fifo () =
  let engine = Engine.create ~seed:42 () in
  let wire = { Wire.default with Wire.propagation_jitter = Time.span_ms 2 } in
  let net = Network.create engine ~wire ~n:2 ~payload_bytes:(fun (_ : msg) -> 10) () in
  let received = ref [] in
  Network.register net 1 (fun ~src:_ m -> received := m.label :: !received);
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 { label = string_of_int i; bytes = 10 }
  done;
  Engine.run engine;
  Alcotest.(check (list string)) "FIFO despite jitter"
    (List.init 50 (fun i -> string_of_int (i + 1)))
    (List.rev !received)

let test_nic_busy_accounting () =
  let engine, net = make_net () in
  Network.register net 1 (fun ~src:_ _ -> ());
  Network.register net 2 (fun ~src:_ _ -> ());
  Network.send_to_others net ~src:0 { label = "x"; bytes = 125_000 - 78 };
  Engine.run engine;
  (* Two copies of 125000 wire bytes at 125 MB/s = 2 ms NIC busy. *)
  Alcotest.(check int) "sender NIC busy time" 2_000_000
    (Time.span_to_ns (Network.nic_busy_time net 0));
  Alcotest.(check int) "receiver NIC idle" 0 (Time.span_to_ns (Network.nic_busy_time net 1))

(* ---- Statistics ---- *)

let test_stats_counting () =
  let engine, net = make_net () in
  let w = Network.wire net in
  Network.register net 1 (fun ~src:_ _ -> ());
  Network.register net 2 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 { label = "a"; bytes = 100 };
  Network.send net ~src:0 ~dst:2 { label = "a"; bytes = 100 };
  Network.send net ~src:1 ~dst:2 { label = "b"; bytes = 50 };
  Engine.run engine;
  let s = Net_stats.snapshot (Network.stats net) in
  Alcotest.(check int) "messages" 3 s.Net_stats.messages;
  Alcotest.(check int) "payload bytes" 250 s.Net_stats.payload_bytes;
  Alcotest.(check int) "wire bytes" (250 + (3 * w.Wire.header_bytes)) s.Net_stats.wire_bytes;
  Alcotest.(check int) "per sender p1" 2 (Net_stats.sent_by (Network.stats net) 0);
  Alcotest.(check (list (pair string int))) "by kind" [ ("a", 2); ("b", 1) ]
    (Net_stats.by_kind (Network.stats net))

let test_stats_diff () =
  let a = { Net_stats.messages = 10; payload_bytes = 100; wire_bytes = 200 } in
  let b = { Net_stats.messages = 4; payload_bytes = 30; wire_bytes = 80 } in
  let d = Net_stats.diff a b in
  Alcotest.(check int) "messages" 6 d.Net_stats.messages;
  Alcotest.(check int) "payload" 70 d.Net_stats.payload_bytes;
  Alcotest.(check int) "wire" 120 d.Net_stats.wire_bytes

(* Property: per-link FIFO holds for arbitrary interleaved sends from two
   sources. *)
let prop_fifo =
  QCheck.Test.make ~name:"per-link FIFO under interleaving" ~count:100
    QCheck.(list (pair bool (int_range 1 2000)))
    (fun sends ->
      let engine, net = make_net () in
      let received = ref [] in
      Network.register net 2 (fun ~src m -> received := (src, m.label) :: !received);
      List.iteri
        (fun i (from_p1, bytes) ->
          let src = if from_p1 then 0 else 1 in
          Network.send net ~src ~dst:2 { label = string_of_int i; bytes })
        sends;
      Engine.run engine;
      let received = List.rev !received in
      let per_src src =
        List.filter_map (fun (s, l) -> if s = src then Some (int_of_string l) else None)
          received
      in
      let increasing l = List.sort compare l = l in
      increasing (per_src 0) && increasing (per_src 1)
      && List.length received = List.length sends)

let () =
  Alcotest.run "net"
    [
      ("wire", [ Alcotest.test_case "cost model" `Quick test_wire_model ]);
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_delivery;
          Alcotest.test_case "timing decomposition" `Quick test_delivery_timing;
          Alcotest.test_case "FIFO per link" `Quick test_fifo_per_link;
          Alcotest.test_case "self send is local" `Quick test_self_send_local;
          Alcotest.test_case "send_to_others" `Quick test_send_to_others;
          Alcotest.test_case "multicast marshals once" `Quick test_multicast_marshal_once;
          QCheck_alcotest.to_alcotest prop_fifo;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash stops I/O" `Quick test_crash_stops_send_and_receive;
          Alcotest.test_case "crash mid-broadcast" `Quick
            test_crash_after_sends_partial_broadcast;
          Alcotest.test_case "in-flight to crashed dropped" `Quick
            test_in_flight_message_to_crashed_dropped;
        ] );
      ( "partition",
        [
          Alcotest.test_case "cut and heal" `Quick test_cut_and_heal;
          Alcotest.test_case "cut is directional" `Quick test_cut_is_directional;
          Alcotest.test_case "partition and heal_all" `Quick test_partition_and_heal_all;
          Alcotest.test_case "extra delay spike" `Quick test_extra_delay;
        ] );
      ( "topology",
        [
          Alcotest.test_case "uniform" `Quick test_topology_uniform;
          Alcotest.test_case "racks" `Quick test_topology_racks;
          Alcotest.test_case "star" `Quick test_topology_star;
          Alcotest.test_case "matrix" `Quick test_topology_matrix;
          Alcotest.test_case "network uses per-link latency" `Quick
            test_network_uses_topology;
          Alcotest.test_case "jitter preserves FIFO" `Quick test_jitter_preserves_fifo;
          Alcotest.test_case "NIC busy accounting" `Quick test_nic_busy_accounting;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counting" `Quick test_stats_counting;
          Alcotest.test_case "diff" `Quick test_stats_diff;
        ] );
    ]
