(* Tests for the closed-form model of §5.2. *)

open Repro_analysis

let test_messages () =
  (* §5.2.1 worked example: n=3, M=4 — modular 16, monolithic 4. *)
  Alcotest.(check int) "modular n=3 M=4" 16 (Model.modular_messages ~n:3 ~m:4);
  Alcotest.(check int) "monolithic n=3" 4 (Model.monolithic_messages ~n:3);
  Alcotest.(check int) "modular n=7 M=4" 60 (Model.modular_messages ~n:7 ~m:4);
  Alcotest.(check int) "monolithic n=7" 12 (Model.monolithic_messages ~n:7)

let test_rbcast_counts () =
  (* §3.1: (n-1)(floor((n-1)/2) + 1) = (n-1) * floor((n+1)/2). *)
  Alcotest.(check int) "majority n=3" 4 (Model.rbcast_messages ~n:3);
  Alcotest.(check int) "majority n=5" 12 (Model.rbcast_messages ~n:5);
  Alcotest.(check int) "majority n=7" 24 (Model.rbcast_messages ~n:7);
  Alcotest.(check int) "classic n=3" 6 (Model.rbcast_classic_messages ~n:3);
  Alcotest.(check int) "classic n=7" 42 (Model.rbcast_classic_messages ~n:7)

let test_bytes () =
  (* §5.2.2: Data_mod = 2(n-1)Ml; Data_mono = (n-1)(1+1/n)Ml. *)
  Alcotest.(check int) "modular n=3 M=4 l=1000" 16_000
    (Model.modular_bytes ~n:3 ~m:4 ~l:1000);
  Alcotest.(check (float 1e-6)) "monolithic n=3 M=4 l=1000"
    (2.0 *. (1.0 +. (1.0 /. 3.0)) *. 4000.0)
    (Model.monolithic_bytes ~n:3 ~m:4 ~l:1000);
  Alcotest.(check int) "modular n=7" 48_000 (Model.modular_bytes ~n:7 ~m:4 ~l:1000)

let test_overhead () =
  (* §5.2.2: 50% at n=3, 75% at n=7. *)
  Alcotest.(check (float 1e-9)) "n=3" 0.5 (Model.data_overhead ~n:3);
  Alcotest.(check (float 1e-9)) "n=7" 0.75 (Model.data_overhead ~n:7)

let test_overhead_consistency () =
  (* The overhead formula must equal the ratio of the byte formulas. *)
  List.iter
    (fun n ->
      let m = 4 and l = 512 in
      let dmod = float_of_int (Model.modular_bytes ~n ~m ~l) in
      let dmono = Model.monolithic_bytes ~n ~m ~l in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "n=%d consistent" n)
        (Model.data_overhead ~n)
        ((dmod -. dmono) /. dmono))
    [ 2; 3; 4; 5; 6; 7; 9; 15 ]

let test_invalid () =
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Model: n must be >= 1")
    (fun () -> ignore (Model.monolithic_messages ~n:0))

let prop_modular_dominates =
  QCheck.Test.make ~name:"modular always costs more (n >= 2, M >= 1)" ~count:200
    QCheck.(pair (int_range 2 20) (int_range 1 100))
    (fun (n, m) ->
      Model.modular_messages ~n ~m > Model.monolithic_messages ~n
      && float_of_int (Model.modular_bytes ~n ~m ~l:100)
         > Model.monolithic_bytes ~n ~m ~l:100)

let () =
  Alcotest.run "analysis"
    [
      ( "model",
        [
          Alcotest.test_case "message counts (§5.2.1)" `Quick test_messages;
          Alcotest.test_case "rbcast counts (§3.1)" `Quick test_rbcast_counts;
          Alcotest.test_case "byte counts (§5.2.2)" `Quick test_bytes;
          Alcotest.test_case "overhead (n-1)/(n+1)" `Quick test_overhead;
          Alcotest.test_case "overhead consistent with byte formulas" `Quick
            test_overhead_consistency;
          Alcotest.test_case "invalid arguments" `Quick test_invalid;
          QCheck_alcotest.to_alcotest prop_modular_dominates;
        ] );
    ]
