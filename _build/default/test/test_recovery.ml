(* Targeted tests of the recovery machinery — the paths that never run in
   good runs and that the paper's optimizations must keep correct (§3, §4):

   - the §3.3 timeout: a partially-diffused message still gets ordered
     because the holder's round-1 "kick" estimate wakes the coordinator;
   - the §4.2 re-piggyback: a non-coordinator's messages survive the death
     of the coordinator they were piggybacked to;
   - the decision-tag recovery: a process that receives a DECISION tag
     without the matching proposal fetches the value explicitly;
   - steward re-routing: To_coord traffic reaches the new coordinator after
     the original crashes. *)

open Repro_sim
open Repro_net
open Repro_fd
open Repro_core

let fd_mode = `Heartbeat Heartbeat_fd.default_config

(* ---- §3.3: partial diffusion + kick ---- *)

let test_modular_partial_diffusion_kick () =
  (* p2 abcasts m but crashes after reaching only p3 (pids: p1=0, p2=1,
     p3=2; p2's fan-out goes to p1 first, so budget 1 reaches p1... use
     budget 1 = first destination in ascending order = p1. To strand the
     message AWAY from the coordinator, have p3 (pid 2) crash after
     reaching only p2 (pid 1): others of p3 = [p1; p2], budget must be...
     ascending order sends to p1 first. So instead: p2 (pid 1) crashes
     after 1 send; others of p2 = [p1(0); p3(2)]; budget 1 reaches p1 = the
     coordinator, which needs no kick. To exercise the kick we want the
     holder to be a NON-coordinator: crash p1? p1 is the coordinator...

     Cleanest construction: cut the links p2->p1 BEFORE the abcast so the
     diffusion reaches only p3, then crash p2. p3 now holds an undelivered
     message the coordinator has never seen, and no consensus is running:
     only the §3.3 kick can save it. *)
  let g = Group.create ~kind:Replica.Modular ~params:(Params.default ~n:3) ~fd_mode () in
  let net = Group.network g in
  Network.cut net ~src:1 ~dst:0;
  Group.abcast g 1 ~size:256;
  Group.run_for g (Time.span_ms 20);
  Group.crash g 1;
  (* Nothing happens until p3's round-1 kick (500 ms) wakes p1. *)
  Group.run_for g (Time.span_ms 200);
  Alcotest.(check int) "not yet delivered at p1" 0
    (Replica.delivered_count (Group.replica g 0));
  Group.run_for g (Time.span_s 2);
  let expect = { App_msg.origin = 1; seq = 0 } in
  Alcotest.(check bool) "delivered at p1 after kick" true
    (List.mem expect (Group.deliveries g 0));
  Alcotest.(check bool) "delivered at p3" true (List.mem expect (Group.deliveries g 2));
  Alcotest.(check bool) "same order" true (Group.deliveries g 0 = Group.deliveries g 2)

(* ---- §4.2: re-piggyback after coordinator death ---- *)

let test_mono_repiggyback_after_coordinator_crash () =
  (* p2's message is sent To_coord to p1, which crashes after receiving it
     but before proposing. The message exists nowhere except p1 (dead) and
     p2's own outstanding set; only the §4.2 re-piggyback (estimate to the
     new coordinator) or the kick timer can recover it. *)
  let g =
    Group.create ~kind:Replica.Monolithic ~params:(Params.default ~n:3) ~fd_mode ()
  in
  (* Prevent p1 from ever proposing: crash it the moment the To_coord
     message is in flight. *)
  Group.abcast g 1 ~size:256;
  Group.run_for g (Time.span_us 300);
  Group.crash g 0;
  Group.run_for g (Time.span_s 3);
  let expect = { App_msg.origin = 1; seq = 0 } in
  Alcotest.(check bool) "recovered at p2" true (List.mem expect (Group.deliveries g 1));
  Alcotest.(check bool) "recovered at p3" true (List.mem expect (Group.deliveries g 2));
  Alcotest.(check bool) "survivors agree" true
    (Group.deliveries g 1 = Group.deliveries g 2)

let test_mono_to_coord_rerouted_to_new_steward () =
  (* After p1 is dead and suspected, a fresh abcast at p3 must reach the
     new steward (p2) and be ordered without p1. *)
  let g =
    Group.create ~kind:Replica.Monolithic ~params:(Params.default ~n:3) ~fd_mode ()
  in
  Group.abcast g 0 ~size:128;
  Group.run_for g (Time.span_ms 50);
  Group.crash g 0;
  Group.run_for g (Time.span_ms 500);
  (* FD has suspected p1 by now. *)
  Group.abcast g 2 ~size:128;
  Group.run_for g (Time.span_s 3);
  let expect = { App_msg.origin = 2; seq = 0 } in
  Alcotest.(check bool) "ordered by the new steward" true
    (List.mem expect (Group.deliveries g 1));
  Alcotest.(check bool) "survivors agree" true
    (Group.deliveries g 1 = Group.deliveries g 2)

(* ---- Decision-tag recovery (both stacks) ---- *)

let test_modular_tag_without_proposal () =
  (* Unit-level: feed a consensus module a decision tag for a proposal it
     never saw; it must broadcast a Decision_request, and decide once the
     full value arrives. *)
  let params = Params.default ~n:3 in
  let engine = Engine.create () in
  let sent = ref [] in
  let decided = ref None in
  let c =
    Consensus.create ~engine ~params ~me:2 ~fd:Fd.never_suspects
      ~send:(fun ~dst msg -> sent := (dst, msg) :: !sent)
      ~broadcast:(fun msg ->
        List.iter (fun dst -> sent := (dst, msg) :: !sent) [ 0; 1 ])
      ~rbcast_decision:(fun ~inst:_ ~round:_ ~value:_ -> ())
      ~on_decide:(fun ~inst:_ value -> decided := Some value)
      ()
  in
  (* The tag arrives via rbcast relay, but p3 never saw the proposal. *)
  Consensus.rb_deliver c ~proposer:0 ~inst:0 ~round:1 ~value:None;
  let requests =
    List.filter (fun (_, m) -> match m with Msg.Decision_request _ -> true | _ -> false)
      !sent
  in
  Alcotest.(check int) "request broadcast to both peers" 2 (List.length requests);
  Alcotest.(check bool) "not yet decided" true (!decided = None);
  (* A peer answers with the full value. *)
  let v = Batch.of_list [ App_msg.make ~origin:0 ~seq:0 ~size:10 ~abcast_at:Time.zero ] in
  Consensus.receive c ~src:0 (Msg.Decision_full { inst = 0; value = v });
  match !decided with
  | Some w -> Alcotest.(check bool) "decided the fetched value" true (Batch.equal v w)
  | None -> Alcotest.fail "decision_full must decide"

let test_mono_tag_without_proposal () =
  let params = Params.default ~n:3 in
  let engine = Engine.create () in
  let sent = ref [] in
  let delivered = ref [] in
  let mono =
    Abcast_monolithic.create ~engine ~params ~me:2 ~fd:Fd.never_suspects
      ~send:(fun ~dst msg -> sent := (dst, msg) :: !sent)
      ~broadcast:(fun msg ->
        List.iter (fun dst -> sent := (dst, msg) :: !sent) [ 0; 1 ])
      ~on_adeliver:(fun m -> delivered := m :: !delivered)
      ()
  in
  (* A Prop_dec for instance 1 carries the decision tag of instance 0 —
     which this process never saw. *)
  let v1 = Batch.of_list [ App_msg.make ~origin:0 ~seq:1 ~size:10 ~abcast_at:Time.zero ] in
  Abcast_monolithic.receive mono ~src:0
    (Msg.Prop_dec { inst = 1; round = 1; proposal = v1; decided = Some (0, 1) });
  let requests =
    List.filter (fun (_, m) -> match m with Msg.Decision_request _ -> true | _ -> false)
      !sent
  in
  Alcotest.(check bool) "requested the missing instance-0 value" true
    (List.length requests >= 1);
  (* The value arrives; instances 0 then 1 must deliver in order. *)
  let v0 = Batch.of_list [ App_msg.make ~origin:0 ~seq:0 ~size:10 ~abcast_at:Time.zero ] in
  Abcast_monolithic.receive mono ~src:0 (Msg.Decision_full { inst = 0; value = v0 });
  Abcast_monolithic.receive mono ~src:0 (Msg.Mono_decision_tag { inst = 1; round = 1 });
  let order = List.rev_map (fun m -> m.App_msg.id.App_msg.seq) !delivered in
  Alcotest.(check (list int)) "both instances delivered in order" [ 0; 1 ] order

(* ---- Buffered out-of-order decisions ---- *)

let test_modular_out_of_order_decisions () =
  let params = Params.default ~n:3 in
  let delivered = ref [] in
  let abcast =
    Abcast_modular.create ~params ~me:0
      ~diffuse:(fun _ -> ())
      ~consensus:{ Abcast_modular.propose = (fun ~inst:_ _ -> ()) }
      ~on_adeliver:(fun m -> delivered := m.App_msg.id.App_msg.seq :: !delivered)
      ()
  in
  let batch seq =
    Batch.of_list [ App_msg.make ~origin:1 ~seq ~size:10 ~abcast_at:Time.zero ]
  in
  Abcast_modular.on_decide abcast ~inst:2 (batch 2);
  Abcast_modular.on_decide abcast ~inst:1 (batch 1);
  Alcotest.(check (list int)) "nothing delivered before instance 0" [] !delivered;
  Abcast_modular.on_decide abcast ~inst:0 (batch 0);
  Alcotest.(check (list int)) "drained in instance order" [ 2; 1; 0 ] !delivered;
  Alcotest.(check int) "next instance" 3 (Abcast_modular.next_instance abcast)

let () =
  Alcotest.run "recovery"
    [
      ( "modular",
        [
          Alcotest.test_case "§3.3 kick saves a stranded message" `Quick
            test_modular_partial_diffusion_kick;
          Alcotest.test_case "tag without proposal" `Quick test_modular_tag_without_proposal;
          Alcotest.test_case "out-of-order decisions buffered" `Quick
            test_modular_out_of_order_decisions;
        ] );
      ( "monolithic",
        [
          Alcotest.test_case "§4.2 re-piggyback after coordinator crash" `Quick
            test_mono_repiggyback_after_coordinator_crash;
          Alcotest.test_case "To_coord re-routed to new steward" `Quick
            test_mono_to_coord_rerouted_to_new_steward;
          Alcotest.test_case "tag without proposal" `Quick test_mono_tag_without_proposal;
        ] );
    ]
